package cellwheels

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/nuwins/cellwheels/internal/fleet"
	"github.com/nuwins/cellwheels/internal/obs"
)

// fleetTestBase is the shared small campaign the fleet tests run: short
// drive, no apps/static/passive, so an 18-campaign matrix stays fast
// even under -race.
var fleetTestBase = Config{LimitKm: 8, SkipApps: true, SkipStatic: true, SkipPassive: true}

// TestFleetSingleRunMatchesRun pins the fleet's degenerate case to the
// single-campaign engine: a 1-replicate, empty-sweep fleet must archive
// a dataset byte-identical to plain Run with the derived seed — the
// fleet layer adds orchestration, never simulation.
func TestFleetSingleRunMatchesRun(t *testing.T) {
	dir := t.TempDir()
	res, err := RunFleet(FleetConfig{
		MasterSeed: 9,
		Replicates: 1,
		Base:       fleetTestBase,
		ArchiveDir: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs() != 1 || res.Failed() != 0 {
		t.Fatalf("fleet ran %d runs (%d failed), want exactly 1 ok", res.Runs(), res.Failed())
	}
	archived, err := os.ReadFile(filepath.Join(dir, "run-000.json"))
	if err != nil {
		t.Fatal(err)
	}

	direct := fleetTestBase
	direct.Seed = fleet.RunSeed(9, "", 0)
	study, err := Run(direct)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := study.WriteJSON(&want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(archived, want.Bytes()) {
		t.Error("fleet-archived dataset differs from plain Run with the derived seed")
	}
}

// fleetOutputs runs the canonical 6-run test fleet (2 sweep cells × 3
// replicates) and returns its report and manifest bytes.
func fleetOutputs(t *testing.T, workers int, rec *obs.Recorder) (string, []byte) {
	t.Helper()
	res, err := RunFleet(FleetConfig{
		MasterSeed: 4,
		Replicates: 3,
		Base:       fleetTestBase,
		Sweep: []SweepAxis{{
			Field:  "disable_edge",
			Values: []json.RawMessage{json.RawMessage("false"), json.RawMessage("true")},
		}},
		Workers: workers,
		Obs:     rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed() != 0 {
		t.Fatalf("%d of %d runs failed", res.Failed(), res.Runs())
	}
	var man bytes.Buffer
	if err := res.WriteManifest(&man); err != nil {
		t.Fatal(err)
	}
	return res.Report(), man.Bytes()
}

// TestFleetReportWorkerInvariant is the fleet-level determinism
// acceptance test: a 6-run sweep fleet produces a byte-identical report
// and manifest for workers 1, 2, and 4. CI runs it under -race, which
// also exercises the pool's synchronization.
func TestFleetReportWorkerInvariant(t *testing.T) {
	report1, manifest1 := fleetOutputs(t, 1, nil)
	for _, w := range []int{2, 4} {
		report, manifest := fleetOutputs(t, w, nil)
		if report != report1 {
			t.Errorf("report differs between workers=1 and workers=%d", w)
		}
		if !bytes.Equal(manifest, manifest1) {
			t.Errorf("manifest differs between workers=1 and workers=%d", w)
		}
	}
	// The same fleet with observability attached must also be invariant:
	// obs is a side channel at the fleet level exactly as per campaign.
	reportObs, manifestObs := fleetOutputs(t, 2, obs.New())
	if reportObs != report1 {
		t.Error("report differs with observability attached")
	}
	if !bytes.Equal(manifestObs, manifest1) {
		t.Error("manifest differs with observability attached")
	}
}

// TestFleetPanicContainment pins the failure contract through RunFleet:
// an injected panic becomes a manifest failure entry and leaves every
// sibling run intact.
func TestFleetPanicContainment(t *testing.T) {
	var panicked string
	res, err := RunFleet(FleetConfig{
		MasterSeed: 6,
		Replicates: 3,
		Base:       fleetTestBase,
		Workers:    2,
		TestHookStart: func(index int, cell string, replicate int) {
			if index == 1 {
				panicked = cell
				panic("injected fleet failure")
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed() != 1 || res.Runs() != 3 {
		t.Fatalf("runs = %d, failed = %d; want 3 runs with 1 failure", res.Runs(), res.Failed())
	}
	var buf bytes.Buffer
	if err := res.WriteManifest(&buf); err != nil {
		t.Fatal(err)
	}
	man, err := fleet.ReadManifest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range man.Runs {
		if rec.Index == 1 {
			if rec.Status != fleet.RunFailed || !strings.Contains(rec.Error, "injected fleet failure") {
				t.Errorf("run 1 = %+v, want the contained panic", rec)
			}
		} else if rec.Status != fleet.RunOK {
			t.Errorf("sibling run %d was killed: %+v", rec.Index, rec)
		}
	}
	if panicked != "" {
		t.Errorf("hook saw cell %q, want the base cell", panicked)
	}
	// The surviving replicates still feed the report.
	if !strings.Contains(res.Report(), "2/3 replicates ok") {
		t.Errorf("report does not show the survivors:\n%s", res.Report())
	}
}

// TestFleetObsCountsRuns checks the fleet-level obs wiring: run counters
// and fleet phase timers land in the merged manifest, and the identity
// labels are fleet-level, not whichever run stamped last.
func TestFleetObsCountsRuns(t *testing.T) {
	rec := obs.New()
	res, err := RunFleet(FleetConfig{
		MasterSeed: 11,
		Replicates: 2,
		Base:       fleetTestBase,
		Obs:        rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	man := rec.Manifest()
	if got := man.Counters["fleet/runs_ok"]; got != int64(res.Runs()) {
		t.Errorf("fleet/runs_ok = %d, want %d", got, res.Runs())
	}
	if got := man.Counters["fleet/runs_failed"]; got != 0 {
		t.Errorf("fleet/runs_failed = %d, want 0", got)
	}
	for _, phase := range []string{"fleet/expand", "fleet/runs", "fleet/reduce"} {
		if _, ok := man.PhaseMS[phase]; !ok {
			t.Errorf("phase %q missing from the merged manifest", phase)
		}
	}
	if got := man.Labels["seed"]; got != "11" {
		t.Errorf("seed label = %q, want the fleet master seed", got)
	}
	if got := man.Labels["fleet_runs"]; got != "2" {
		t.Errorf("fleet_runs label = %q, want 2", got)
	}
}

func TestParseFleetScenario(t *testing.T) {
	cfg, err := ParseFleetScenario(strings.NewReader(`{
		"master_seed": 7,
		"replicates": 3,
		"base": {"limit_km": 25, "skip_apps": true},
		"sweep": [{"field": "disable_edge", "values": [false, true]}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.MasterSeed != 7 || cfg.Replicates != 3 || cfg.Base.LimitKm != 25 ||
		!cfg.Base.SkipApps || len(cfg.Sweep) != 1 || cfg.Sweep[0].Field != "disable_edge" {
		t.Errorf("parsed scenario = %+v", cfg)
	}
	if _, err := ParseFleetScenario(strings.NewReader(`{"master_sed": 7}`)); err == nil {
		t.Error("scenario with a typo'd key was accepted")
	}
	if _, err := ParseFleetScenario(strings.NewReader(`{"base": {"limit_kms": 1}}`)); err == nil {
		t.Error("scenario with an unknown base field was accepted")
	}
}

// TestFleetRejectsBadSweep: malformed sweeps fail fast, before any
// campaign runs.
func TestFleetRejectsBadSweep(t *testing.T) {
	cases := []SweepAxis{
		{Field: "no_such_field", Values: []json.RawMessage{json.RawMessage("1")}},
		{Field: "limit_km", Values: []json.RawMessage{json.RawMessage(`"not a number"`)}},
		{Field: "limit_km"},
	}
	for _, axis := range cases {
		_, err := RunFleet(FleetConfig{Base: fleetTestBase, Sweep: []SweepAxis{axis}})
		if err == nil {
			t.Errorf("RunFleet accepted bad sweep axis %+v", axis)
		}
	}
}

// TestApplyFleetOverrides exercises the JSON round-trip override path
// directly.
func TestApplyFleetOverrides(t *testing.T) {
	base := Config{LimitKm: 10, SkipApps: true}
	got, err := applyFleetOverrides(base, []fleet.Override{
		{Field: "limit_km", Value: json.RawMessage("50")},
		{Field: "disable_policy", Value: json.RawMessage("true")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.LimitKm != 50 || !got.DisablePolicy || !got.SkipApps {
		t.Errorf("override result = %+v", got)
	}
	if _, err := applyFleetOverrides(base, []fleet.Override{{Field: "Obs", Value: json.RawMessage("null")}}); err == nil {
		t.Error("the Obs side channel must not be sweepable")
	}
}
