package cellwheels

import (
	"bytes"
	"encoding/csv"
	"os"
	"path/filepath"
	"testing"

	"github.com/nuwins/cellwheels/internal/obs"
)

// TestObsDatasetByteIdentical is the observability subsystem's core
// contract: attaching a Recorder must not perturb the simulation by a
// single byte. The obs layer is write-only — if instrumentation ever
// leaked back into a simulation decision (or reordered one), this is the
// test that catches it.
func TestObsDatasetByteIdentical(t *testing.T) {
	cfg := Config{Seed: 33, LimitKm: 30, VideoSeconds: 15, GamingSeconds: 10, Workers: 3}

	jsonFor := func(rec *obs.Recorder) []byte {
		t.Helper()
		c := cfg
		c.Obs = rec
		s, err := Run(c)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := s.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	off := jsonFor(nil)
	on := jsonFor(obs.New())
	if !bytes.Equal(off, on) {
		t.Error("dataset with observability on differs from observability off")
	}
}

// TestObsManifestCountsMatchDataset runs an instrumented campaign and
// checks the manifest's table/* counters against the exported dataset:
// the manifest must describe the run it shipped with, not an estimate.
func TestObsManifestCountsMatchDataset(t *testing.T) {
	rec := obs.New()
	s, err := Run(Config{Seed: 11, LimitKm: 30, VideoSeconds: 15, GamingSeconds: 10, Obs: rec})
	if err != nil {
		t.Fatal(err)
	}
	man := rec.Manifest()

	if got, want := man.Counters["table/tests"], int64(s.Summary().Tests); got != want {
		t.Errorf("table/tests = %d, dataset has %d", got, want)
	}

	dir := t.TempDir()
	if err := s.WriteCSV(dir); err != nil {
		t.Fatal(err)
	}
	tables := []struct {
		counter string
		file    string
	}{
		{"table/throughput", "throughput.csv"},
		{"table/rtt", "rtt.csv"},
		{"table/handovers", "handovers.csv"},
		{"table/appruns", "appruns.csv"},
	}
	for _, tab := range tables {
		f, err := os.Open(filepath.Join(dir, tab.file))
		if err != nil {
			t.Fatal(err)
		}
		rows, err := csv.NewReader(f).ReadAll()
		f.Close()
		if err != nil {
			t.Fatal(err)
		}
		// One header row; the rest are data.
		if got, want := man.Counters[tab.counter], int64(len(rows)-1); got != want {
			t.Errorf("%s = %d, %s has %d data rows", tab.counter, got, tab.file, want)
		}
	}

	// The run is stamped with its seed and config hash, and the config
	// hash must not depend on the Obs pointer itself.
	if man.Labels["seed"] != "11" {
		t.Errorf("seed label = %q", man.Labels["seed"])
	}
	plain := Config{Seed: 11, LimitKm: 30, VideoSeconds: 15, GamingSeconds: 10}
	if got, want := man.Labels["config_sha256"], plain.fingerprint(); got != want {
		t.Errorf("config_sha256 = %q, fingerprint of Obs-free config = %q", got, want)
	}

	// Phases cover every lane plus merge and the run itself.
	for _, phase := range []string{"run", "merge", "lane/V", "lane/T", "lane/A"} {
		if _, ok := man.PhaseMS[phase]; !ok {
			t.Errorf("manifest missing phase %q (have %v)", phase, man.PhaseMS)
		}
	}
}
