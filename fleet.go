package cellwheels

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"

	"github.com/nuwins/cellwheels/internal/fleet"
	"github.com/nuwins/cellwheels/internal/obs"
	"github.com/nuwins/cellwheels/internal/radio"
)

// SweepAxis is one dimension of a fleet sweep: a Config field — named by
// its JSON key, e.g. "disable_edge" or "limit_km" — and the JSON values
// it takes. A fleet runs the cartesian product of its axes.
type SweepAxis struct {
	Field  string            `json:"field"`
	Values []json.RawMessage `json:"values"`
}

// FleetConfig parameterizes RunFleet: a base campaign Config, a sweep
// grid over its fields, and a replicate count per sweep cell. The JSON
// tags define the fleet scenario file format (see ParseFleetScenario).
type FleetConfig struct {
	// MasterSeed seeds the whole fleet. Every run's campaign seed is
	// forked from it as a pure function of (master seed, sweep cell,
	// replicate index) — independent of execution order and worker
	// count, so run identity is positional.
	MasterSeed int64 `json:"master_seed"`
	// Replicates is how many seeded runs execute per sweep cell;
	// values below 1 mean 1.
	Replicates int `json:"replicates"`
	// Base is the campaign configuration every run starts from. Its
	// Seed is ignored (per-run seeds are derived from MasterSeed) and
	// its Obs is overridden by the fleet's own recorder.
	Base Config `json:"base"`
	// Sweep is the grid of field overrides; empty sweeps run a single
	// base cell.
	Sweep []SweepAxis `json:"sweep,omitempty"`
	// Workers caps how many whole runs execute concurrently
	// (0 = GOMAXPROCS). Any value produces a byte-identical fleet
	// report and manifest.
	Workers int `json:"workers,omitempty"`
	// ArchiveDir, when non-empty, archives each successful run's full
	// dataset as <dir>/run-NNN.json (atomic writes). When empty, each
	// dataset is discarded as soon as its headline metrics are folded
	// into the fleet accumulators — the streaming-reduction contract
	// that lets a 100-run fleet hold ~zero datasets in memory.
	ArchiveDir string `json:"archive_dir,omitempty"`
	// Obs receives fleet-level phase timings and run counters plus the
	// merged per-run campaign metrics (every run shares this recorder,
	// so counters accumulate across the whole fleet). Side channel
	// only: it never changes the report, manifest, or datasets.
	Obs *obs.Recorder `json:"-"`
	// CellFilter, when non-nil, restricts the fleet to the sweep cells it
	// returns true for (index is the cell's position in sweep order, key
	// its canonical "f1=v1|f2=v2" identity). The kept runs retain their
	// full-matrix indexes and positional seeds, so disjoint workers
	// produce runs a fleetsync collector merges into exactly the
	// single-process result.
	CellFilter func(index int, key string) bool `json:"-"`
	// OnRun, when non-nil, streams each finished run's manifest record
	// and flat metrics, in completion order on a single goroutine — the
	// worker-side seam fleetsync pushes runs from. Its first error fails
	// the fleet after in-flight runs drain.
	OnRun func(rec fleet.RunRecord, m fleet.Metrics) error `json:"-"`
	// TestHookStart, when non-nil, runs at the start of every fleet run
	// on its worker goroutine — a test-only seam for injecting failures
	// (including panics, which the pool contains and records in the
	// manifest). Production callers leave it nil.
	TestHookStart func(index int, cell string, replicate int) `json:"-"`
}

// ParseFleetScenario decodes a fleet scenario file: a JSON object with
// the FleetConfig layout, e.g.
//
//	{
//	  "master_seed": 7,
//	  "replicates": 3,
//	  "base": {"limit_km": 25, "video_seconds": 20},
//	  "sweep": [{"field": "disable_edge", "values": [false, true]}]
//	}
//
// Decoding is strict: unknown keys are errors, so a typo fails the fleet
// before any campaign runs.
func ParseFleetScenario(r io.Reader) (FleetConfig, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var cfg FleetConfig
	if err := dec.Decode(&cfg); err != nil {
		return FleetConfig{}, fmt.Errorf("cellwheels: fleet scenario: %w", err)
	}
	return cfg, nil
}

// FleetResult is a completed fleet: cross-replicate statistics per sweep
// cell plus the manifest of every run.
type FleetResult struct {
	res *fleet.Result
}

// Report renders the fleet's headline metrics, one block per sweep cell,
// each metric as "median [p25–p75] (min–max)" over the cell's completed
// replicates. Byte-identical for any Workers value.
func (r *FleetResult) Report() string { return r.res.Report() }

// Runs reports the size of the executed run matrix.
func (r *FleetResult) Runs() int { return len(r.res.Manifest.Runs) }

// Failed reports how many runs failed (errored or panicked). Failed runs
// are recorded in the manifest; their replicate slots are excluded from
// the report's statistics.
func (r *FleetResult) Failed() int { return r.res.Manifest.Failed }

// WriteManifest serializes the fleet manifest — the full run matrix with
// per-run seeds, outcomes, errors, and archive paths — as indented JSON.
// The manifest carries no wall-clock fields, so it is byte-identical for
// any Workers value.
func (r *FleetResult) WriteManifest(w io.Writer) error {
	return r.res.Manifest.WriteJSON(w)
}

// Validate rejects malformed scenarios — bad sweeps, unknown override
// fields, type-mismatched values, an unsupported base config — without
// running anything: the same early checks RunFleet performs before any
// campaign starts. Services use it to refuse a bad job at submission.
func (cfg FleetConfig) Validate() error {
	base := cfg.Base
	base.Seed = 0
	base.Obs = nil
	base.SharedTimeline = nil
	if err := base.Validate(); err != nil {
		return err
	}
	axes := make([]fleet.Axis, len(cfg.Sweep))
	for i, a := range cfg.Sweep {
		axes[i] = fleet.Axis{Field: a.Field, Values: a.Values}
	}
	cells, err := fleet.Expand(axes)
	if err != nil {
		return fmt.Errorf("cellwheels: fleet: %w", err)
	}
	for _, cell := range cells {
		if _, err := applyFleetOverrides(base, cell.Overrides); err != nil {
			return fmt.Errorf("cellwheels: fleet: cell %s: %w", cell.Label(), err)
		}
	}
	return nil
}

// RunFleet executes many campaigns as one deterministic job: the sweep
// grid times the replicate count is expanded into a run matrix, each run
// executes Run with its derived seed and overridden config, and finished
// runs are folded streamingly into per-cell accumulators. An error is
// returned only for malformed scenarios or archive-setup failures;
// individual run failures (including panics) are contained, recorded in
// the manifest, and do not stop sibling runs — check FleetResult.Failed.
func RunFleet(cfg FleetConfig) (*FleetResult, error) {
	base := cfg.Base
	base.Seed = 0
	base.Obs = nil
	// A precomputed timeline is seed-specific and fleet runs fork their
	// own seeds, so a base timeline could never match; drop it rather
	// than fail every run on the fingerprint guard.
	base.SharedTimeline = nil

	axes := make([]fleet.Axis, len(cfg.Sweep))
	for i, a := range cfg.Sweep {
		axes[i] = fleet.Axis{Field: a.Field, Values: a.Values}
	}
	// Validate every cell's overrides before any campaign runs: a
	// typo'd field name should fail the fleet fast, not produce a
	// manifest full of identical failures.
	cells, err := fleet.Expand(axes)
	if err != nil {
		return nil, fmt.Errorf("cellwheels: fleet: %w", err)
	}
	for _, cell := range cells {
		if _, err := applyFleetOverrides(base, cell.Overrides); err != nil {
			return nil, fmt.Errorf("cellwheels: fleet: cell %s: %w", cell.Label(), err)
		}
	}
	if cfg.ArchiveDir != "" {
		if err := os.MkdirAll(cfg.ArchiveDir, 0o755); err != nil {
			return nil, fmt.Errorf("cellwheels: fleet: %w", err)
		}
	}

	runner := func(spec fleet.RunSpec) (fleet.RunResult, error) {
		runCfg, err := applyFleetOverrides(base, spec.Cell.Overrides)
		if err != nil {
			return fleet.RunResult{}, err
		}
		runCfg.Seed = spec.Seed
		runCfg.Obs = cfg.Obs
		study, err := Run(runCfg)
		if err != nil {
			return fleet.RunResult{}, err
		}
		out := fleet.RunResult{Metrics: fleetMetrics(study.Summary())}
		if cfg.ArchiveDir != "" {
			name := fmt.Sprintf("run-%03d.json", spec.Index)
			if err := study.WriteJSONFile(filepath.Join(cfg.ArchiveDir, name)); err != nil {
				return fleet.RunResult{}, err
			}
			out.Dataset = name
		}
		// study goes out of scope here: the dataset is on disk (or
		// dropped) and only the flat metric map flows back to the fleet.
		return out, nil
	}

	var start func(fleet.RunSpec)
	if cfg.TestHookStart != nil {
		hook := cfg.TestHookStart
		start = func(s fleet.RunSpec) { hook(s.Index, s.Cell.Key, s.Replicate) }
	}
	var filter func(int, fleet.Cell) bool
	if cfg.CellFilter != nil {
		keep := cfg.CellFilter
		filter = func(i int, c fleet.Cell) bool { return keep(i, c.Key) }
	}

	res, err := fleet.Run(fleet.Config{
		MasterSeed:  cfg.MasterSeed,
		Replicates:  cfg.Replicates,
		Sweep:       axes,
		Workers:     cfg.Workers,
		Run:         runner,
		MetricOrder: fleetMetricOrder(),
		Obs:         cfg.Obs,
		CellFilter:  filter,
		OnRun:       cfg.OnRun,
		Start:       start,
	})
	if err != nil {
		return nil, fmt.Errorf("cellwheels: fleet: %w", err)
	}

	// Every run stamped the shared recorder with its own seed and config
	// hash, in completion order; overwrite them with the fleet-level
	// identity so the final obs manifest is deterministic in those
	// labels whatever order runs finished in.
	cfg.Obs.SetLabel("seed", strconv.FormatInt(cfg.MasterSeed, 10))
	fp := cfg
	fp.Obs = nil
	fp.TestHookStart = nil
	fp.CellFilter = nil
	fp.OnRun = nil
	cfg.Obs.SetLabel("config_sha256", obs.Fingerprint(fp))
	cfg.Obs.SetLabel("fleet_runs", strconv.Itoa(len(res.Manifest.Runs)))
	return &FleetResult{res: res}, nil
}

// FleetReducer builds the collector-side reduction for a scenario: a
// fleet.Reducer expecting the scenario's full run matrix with positional
// seeds and the campaign metric order, so runs executed by remote workers
// fold into a Result byte-identical to RunFleet's over the same scenario.
func FleetReducer(cfg FleetConfig) (*fleet.Reducer, error) {
	axes := make([]fleet.Axis, len(cfg.Sweep))
	for i, a := range cfg.Sweep {
		axes[i] = fleet.Axis{Field: a.Field, Values: a.Values}
	}
	red, err := fleet.NewReducer(cfg.MasterSeed, cfg.Replicates, axes, nil, fleetMetricOrder())
	if err != nil {
		return nil, fmt.Errorf("cellwheels: fleet: %w", err)
	}
	return red, nil
}

// FleetCells lists a scenario's sweep cells — their canonical keys, in
// sweep order — without running anything. Worker cell subsets (fleetrun
// -cells) are validated and reported against this list.
func FleetCells(cfg FleetConfig) ([]string, error) {
	axes := make([]fleet.Axis, len(cfg.Sweep))
	for i, a := range cfg.Sweep {
		axes[i] = fleet.Axis{Field: a.Field, Values: a.Values}
	}
	cells, err := fleet.Expand(axes)
	if err != nil {
		return nil, fmt.Errorf("cellwheels: fleet: %w", err)
	}
	keys := make([]string, len(cells))
	for i, c := range cells {
		keys[i] = c.Key
	}
	return keys, nil
}

// applyFleetOverrides returns base with a sweep cell's field overrides
// applied, by round-tripping through the config's JSON form: marshal the
// base, patch the named keys, strict-unmarshal back. Unknown fields and
// type-mismatched values error rather than silently doing nothing.
func applyFleetOverrides(base Config, overrides []fleet.Override) (Config, error) {
	if len(overrides) == 0 {
		return base, nil
	}
	raw, err := json.Marshal(base)
	if err != nil {
		return Config{}, err
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(raw, &m); err != nil {
		return Config{}, err
	}
	for _, o := range overrides {
		if _, ok := m[o.Field]; !ok {
			return Config{}, fmt.Errorf("unknown config field %q (sweep fields use Config's JSON keys, e.g. \"limit_km\")", o.Field)
		}
		m[o.Field] = o.Value
	}
	patched, err := json.Marshal(m)
	if err != nil {
		return Config{}, err
	}
	var out Config
	dec := json.NewDecoder(bytes.NewReader(patched))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&out); err != nil {
		return Config{}, fmt.Errorf("bad override value: %w", err)
	}
	out.Obs = base.Obs
	return out, nil
}

// fleetMetrics flattens a study's headline numbers into the fleet's flat
// metric map: the fleet-wide figures plus, per carrier, the paper's
// driving medians, handover rate, and app QoE figures.
func fleetMetrics(s Summary) fleet.Metrics {
	m := fleet.Metrics{
		"route_km":         s.RouteKm,
		"tests":            float64(s.Tests),
		"frac_below_5mbps": s.FracBelow5Mbps,
	}
	for _, c := range s.Carriers {
		p := c.Operator + "/"
		m[p+"share_5g"] = c.Share5G
		m[p+"drive_dl_mbps"] = c.DrivingDLMedianMbps
		m[p+"drive_ul_mbps"] = c.DrivingULMedianMbps
		m[p+"drive_rtt_ms"] = c.DrivingRTTMedianMS
		m[p+"static_dl_mbps"] = c.StaticDLMedianMbps
		m[p+"ho_per_mile"] = c.HandoversPerMileMedian
		m[p+"video_qoe"] = c.VideoQoEMedian
		m[p+"gaming_mbps"] = c.GamingBitrateMedian
	}
	return m
}

// fleetMetricOrder is the canonical report order of fleetMetrics' keys:
// fleet-wide figures first, then each carrier's block in operator order.
func fleetMetricOrder() []string {
	order := []string{"route_km", "tests", "frac_below_5mbps"}
	for _, op := range radio.Operators() {
		p := op.String() + "/"
		order = append(order,
			p+"share_5g",
			p+"drive_dl_mbps",
			p+"drive_ul_mbps",
			p+"drive_rtt_ms",
			p+"static_dl_mbps",
			p+"ho_per_mile",
			p+"video_qoe",
			p+"gaming_mbps",
		)
	}
	return order
}
