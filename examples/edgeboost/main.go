// Edgeboost: quantify the paper's recommendation §8-(3) — "network
// operators and cloud providers should collaborate in deploying more edge
// services" — by running the same Verizon campaign slice twice, once with
// the Wavelength edge servers and once without, and comparing the AR
// app's end-to-end latency and the RTT tests.
//
//	go run ./examples/edgeboost
package main

import (
	"fmt"
	"log"
	"sort"

	"github.com/nuwins/cellwheels/internal/core"
	"github.com/nuwins/cellwheels/internal/dataset"
	"github.com/nuwins/cellwheels/internal/radio"
	"github.com/nuwins/cellwheels/internal/unit"
)

func run(disableEdge bool) *dataset.DB {
	cfg := core.Config{
		Seed:        11,
		Limit:       120 * unit.Kilometer, // LA region, where an edge site exists
		SkipPassive: true,
		SkipStatic:  true,
		DisableEdge: disableEdge,
		Operators:   []radio.Operator{radio.Verizon},
	}
	db, err := core.NewCampaign(cfg).RunAndMerge()
	if err != nil {
		log.Fatal(err)
	}
	return db
}

func main() {
	withEdge := run(false)
	cloudOnly := run(true)

	fmt.Println("Verizon, 120 km around Los Angeles, same seed:")
	fmt.Println()

	arE2E := func(db *dataset.DB) float64 {
		var xs []float64
		for _, r := range db.AppRuns {
			if r.Kind == dataset.AppAR && r.Compressed && r.E2EMS > 0 {
				xs = append(xs, r.E2EMS)
			}
		}
		return median(xs)
	}
	rttMed := func(db *dataset.DB) float64 {
		return median(dataset.RTTValues(db.RTT))
	}
	fmt.Printf("  AR app E2E median:   %6.1f ms with edge   vs %6.1f ms cloud-only\n",
		arE2E(withEdge), arE2E(cloudOnly))
	fmt.Printf("  ping RTT median:     %6.1f ms with edge   vs %6.1f ms cloud-only\n",
		rttMed(withEdge), rttMed(cloudOnly))

	// Count how many tests actually used an edge server.
	edgeTests := withEdge.TestsWhere(func(t dataset.Test) bool { return t.Edge })
	fmt.Printf("  tests served by a Wavelength edge site: %d of %d\n",
		len(edgeTests), len(withEdge.Tests))
	fmt.Println()
	fmt.Println("The paper's §5.2: \"the use of an edge server brings a significant")
	fmt.Println("improvement to both throughput and RTT compared to a cloud server\".")
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	return cp[len(cp)/2]
}
