// Coveragemap: reproduce the paper's Fig 1 lesson interactively — the
// technology a passive logger sees is not the technology an active,
// backlogged UE gets. Prints side-by-side ASCII coverage strips for the
// first 1,500 km of the route, plus the policy ablation: with the
// traffic-aware elevation policy disabled, the passive and active strips
// collapse onto each other.
//
//	go run ./examples/coveragemap
package main

import (
	"fmt"
	"log"

	"github.com/nuwins/cellwheels/internal/core"
	"github.com/nuwins/cellwheels/internal/geo"
	"github.com/nuwins/cellwheels/internal/radio"
	"github.com/nuwins/cellwheels/internal/unit"
)

func run(disablePolicy bool) core.CoverageMaps {
	cfg := core.Config{
		Seed:          3,
		Limit:         1500 * unit.Kilometer,
		SkipApps:      true,
		SkipStatic:    true,
		DisablePolicy: disablePolicy,
	}
	c := core.NewCampaign(cfg)
	db, err := c.RunAndMerge()
	if err != nil {
		log.Fatal(err)
	}
	return core.FigureCoverageMaps(db, geo.DefaultRoute(), 90)
}

func main() {
	fmt.Println("== with the operators' real elevation policies (the paper's Fig 1) ==")
	maps := run(false)
	fmt.Print(maps.Render())
	fmt.Println()

	fmt.Println("== policy ablation: every UE always gets the best deployed tech ==")
	ablated := run(true)
	fmt.Print(ablated.Render())
	fmt.Println()

	for _, op := range radio.Operators() {
		fmt.Printf("%-8s passive-vs-active 5G gap: %5.1f pts with policy, %5.1f pts ablated\n",
			op,
			100*(maps.Active5G[op]-maps.Passive5G[op]),
			100*(ablated.Active5G[op]-ablated.Passive5G[op]))
	}
	fmt.Println()
	fmt.Println("Lesson (§4.1): passive logging under light traffic is not a reliable")
	fmt.Println("coverage methodology; operators only elevate UEs that offer load.")
}
