// Quickstart: run a small slice of the LA→Boston campaign and print the
// headline numbers plus two of the paper's figures.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"github.com/nuwins/cellwheels"
)

func main() {
	// 150 km out of Los Angeles: urban LA, suburbs, and the first
	// stretch of I-15. Takes a few seconds.
	study, err := cellwheels.Run(cellwheels.Config{
		Seed:          42,
		LimitKm:       150,
		VideoSeconds:  60, // shorten the two long app tests for the demo
		GamingSeconds: 45,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Print(study.Summary())
	fmt.Println()

	for _, id := range []string{"fig2", "fig3"} {
		section, err := study.Section(id)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(section)
	}

	fmt.Println("For the full paper-style report over the whole route, run:")
	fmt.Println("  go run ./cmd/wheelsreport -seed 42")
}
