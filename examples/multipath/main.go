// Multipath: quantify the paper's recommendation §8-(2) — "smartphone
// vendors should explore multipath solutions over multiple cellular
// networks" — by replaying the dataset's concurrent samples and comparing
// three strategies at every instant:
//
//	single:    stay on one fixed carrier (the per-carrier baseline)
//	best-of-3: an oracle that picks the best carrier each 500 ms
//	aggregate: an MPTCP-style bond summing all three carriers
//
// The gap between "single" and the other two rows is the diversity gain
// Fig 6 implies.
//
//	go run ./examples/multipath
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"github.com/nuwins/cellwheels/internal/core"
	"github.com/nuwins/cellwheels/internal/dataset"
	"github.com/nuwins/cellwheels/internal/deploy"
	"github.com/nuwins/cellwheels/internal/geo"
	"github.com/nuwins/cellwheels/internal/radio"
	"github.com/nuwins/cellwheels/internal/ran"
	"github.com/nuwins/cellwheels/internal/simrand"
	"github.com/nuwins/cellwheels/internal/transport"
	"github.com/nuwins/cellwheels/internal/unit"
)

func main() {
	cfg := core.Config{
		Seed:        7,
		Limit:       400 * unit.Kilometer,
		SkipApps:    true,
		SkipStatic:  true,
		SkipPassive: true,
	}
	db, err := core.NewCampaign(cfg).RunAndMerge()
	if err != nil {
		log.Fatal(err)
	}

	for _, dir := range radio.Directions() {
		// Bucket samples by their 500 ms window start.
		type window map[radio.Operator]float64
		windows := map[time.Time]window{}
		for _, s := range db.Throughput {
			if s.Dir != dir || s.Static {
				continue
			}
			key := s.Time.Truncate(500 * time.Millisecond)
			w, ok := windows[key]
			if !ok {
				w = window{}
				windows[key] = w
			}
			w[s.Op] = s.Mbps
		}

		// Walk windows in time order, not map order: the per-window values
		// are appended to slices (and summed in floating point), so a
		// randomized order would change the printed medians run to run.
		starts := make([]time.Time, 0, len(windows))
		for key := range windows {
			starts = append(starts, key)
		}
		sort.SliceStable(starts, func(i, j int) bool { return starts[i].Before(starts[j]) })

		single := map[radio.Operator][]float64{}
		var best, bonded []float64
		for _, key := range starts {
			w := windows[key]
			if len(w) != 3 {
				continue // need all three carriers measured concurrently
			}
			mx, sum := 0.0, 0.0
			for _, op := range radio.Operators() {
				v := w[op]
				single[op] = append(single[op], v)
				if v > mx {
					mx = v
				}
				sum += v
			}
			best = append(best, mx)
			bonded = append(bonded, sum)
		}

		fmt.Printf("=== %s: %d concurrent 500 ms windows ===\n", dir, len(best))
		for _, op := range radio.Operators() {
			fmt.Printf("  single %-9s median %6.1f Mbps\n", op, median(single[op]))
		}
		fmt.Printf("  best-of-3 oracle   median %6.1f Mbps\n", median(best))
		fmt.Printf("  3-way aggregate    median %6.1f Mbps\n", median(bonded))

		// How often does switching carriers rescue a dead link?
		rescued := 0
		for _, w := range windows {
			if len(w) != 3 {
				continue
			}
			worst, bst := 1e18, 0.0
			for _, v := range w {
				if v < worst {
					worst = v
				}
				if v > bst {
					bst = v
				}
			}
			if worst < 5 && bst >= 5 {
				rescued++
			}
		}
		fmt.Printf("  windows where one carrier was <5 Mbps but another wasn't: %d (%.0f%%)\n\n",
			rescued, 100*float64(rescued)/float64(len(best)))
	}
	fmt.Println(dataset.Kinds()[0], "and", dataset.Kinds()[1], "tests were used; see Fig 6 for the underlying diversity.")
	fmt.Println()
	mechanismBond()
}

// mechanismBond goes one level deeper than the sample-level oracle: it
// runs an actual MPTCP-style bond (one CUBIC subflow per carrier, with a
// head-of-line reassembly penalty) over three live UEs driving the same
// stretch, against a single-carrier flow under identical conditions.
func mechanismBond() {
	route := geo.DefaultRoute()
	rng := simrand.New(21)
	ops := radio.Operators()
	maps := make([]*deploy.Map, len(ops))
	ues := make([]*ran.UE, len(ops))
	for i, op := range ops {
		maps[i] = deploy.NewMap(op, route, rng)
		ues[i] = ran.NewUE(ran.UEConfig{Op: op, Map: maps[i]}, rng.Fork("ue"+op.Short()))
	}
	drive := geo.NewDrive(route, geo.DefaultDriveConfig(), rng)
	for i := range ues {
		ues[i].SetTraffic(deploy.HeavyDL, drive.State().Time, drive.State().Waypoint)
	}

	bond := transport.NewBond(len(ops), rng.Fork("bond"), transport.Options{})
	single := transport.NewFlow(rng.Fork("single"))
	tick := 50 * time.Millisecond
	span := 20 * time.Minute
	var bonded, alone unit.Bytes
	caps := make([]unit.BitRate, len(ops))
	rtts := make([]time.Duration, len(ops))
	loss := make([]float64, len(ops))
	for elapsed := time.Duration(0); elapsed < span; elapsed += tick {
		ds := drive.Step(tick)
		for i := range ues {
			st := ues[i].Step(ds.Time, ds.Waypoint, ds.Speed.MPH(), tick)
			caps[i] = st.CapacityDL
			rtts[i] = 60 * time.Millisecond
			loss[i] = st.BLER
		}
		bonded += bond.Step(tick, caps, rtts, loss).Delivered
		// The single-carrier flow rides the first carrier only.
		alone += single.Step(tick, caps[0], rtts[0], loss[0]).Delivered
	}
	fmt.Printf("=== mechanism-level bond, 20 simulated minutes of driving ===\n")
	fmt.Printf("  single carrier (%s): %6.1f Mbps mean\n", ops[0], alone.RateOver(span).Mbps())
	fmt.Printf("  3-way MPTCP bond:    %6.1f Mbps mean\n", bonded.RateOver(span).Mbps())
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	return cp[len(cp)/2]
}
