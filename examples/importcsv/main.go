// Importcsv: demonstrate the real-data path. The analysis side of this
// repository runs on any dataset in its CSV schema — including actual
// drive-test logs massaged into the same columns. This example exports a
// small simulated campaign to CSV, reads it back as if it were external
// data, and runs the analysis suite on the imported tables.
//
//	go run ./examples/importcsv
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"github.com/nuwins/cellwheels/internal/core"
	"github.com/nuwins/cellwheels/internal/dataset"
	"github.com/nuwins/cellwheels/internal/unit"
)

func main() {
	dir, err := os.MkdirTemp("", "cellwheels-csv-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Stage 1: produce CSV tables (in a real workflow these come from an
	// external pipeline — XCAL exports, Android logs, anything that can
	// emit the documented columns).
	cfg := core.Config{Seed: 5, Limit: 80 * unit.Kilometer, SkipApps: true, SkipPassive: true}
	db, err := core.NewCampaign(cfg).RunAndMerge()
	if err != nil {
		log.Fatal(err)
	}
	write := func(name string, fn func(f *os.File) error) string {
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := fn(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		return path
	}
	tputPath := write("throughput.csv", func(f *os.File) error { return db.WriteThroughputCSV(f) })
	rttPath := write("rtt.csv", func(f *os.File) error { return db.WriteRTTCSV(f) })
	hoPath := write("handovers.csv", func(f *os.File) error { return db.WriteHandoverCSV(f) })
	fmt.Printf("exported %d throughput, %d RTT, %d handover rows to %s\n",
		len(db.Throughput), len(db.RTT), len(db.Handovers), dir)

	// Stage 2: import the tables as external data.
	imported := &dataset.DB{}
	read := func(path string, load func(*os.File) error) {
		f, err := os.Open(path)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close() //lint:allow uncheckederr — the CSV is only read; a close failure cannot corrupt it
		if err := load(f); err != nil {
			log.Fatal(err)
		}
	}
	read(tputPath, func(f *os.File) error {
		rows, err := dataset.ReadThroughputCSV(f)
		imported.Throughput = rows
		return err
	})
	read(rttPath, func(f *os.File) error {
		rows, err := dataset.ReadRTTCSV(f)
		imported.RTT = rows
		return err
	})
	read(hoPath, func(f *os.File) error {
		rows, err := dataset.ReadHandoverCSV(f)
		imported.Handovers = rows
		return err
	})

	// Stage 3: the analysis suite runs on the imported data unchanged.
	fmt.Println()
	fmt.Print(core.FigureStaticVsDriving(imported).Render())
	fmt.Println()
	fmt.Print(core.TableKPICorrelation(imported).Render())
	fmt.Println()
	fmt.Println("Any dataset in this schema — simulated or from a real drive —")
	fmt.Println("feeds the same tables and figures.")
}
