package cellwheels_test

import (
	"fmt"
	"log"

	"github.com/nuwins/cellwheels"
)

// Example runs a tiny slice of the campaign and prints how many of the
// paper's section identifiers the study can render. Real uses pass a
// larger LimitKm (or zero for the whole route) and print Report().
func Example() {
	study, err := cellwheels.Run(cellwheels.Config{
		Seed:        1,
		LimitKm:     10,
		SkipApps:    true,
		SkipStatic:  true,
		SkipPassive: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	rendered := 0
	for _, id := range cellwheels.SectionIDs() {
		if _, err := study.Section(id); err == nil {
			rendered++
		}
	}
	fmt.Printf("%d sections rendered\n", rendered)
	// Output: 22 sections rendered
}

// ExampleStudy_Section renders one figure by its paper identifier.
func ExampleStudy_Section() {
	study, err := cellwheels.Run(cellwheels.Config{
		Seed:        1,
		LimitKm:     10,
		SkipApps:    true,
		SkipStatic:  true,
		SkipPassive: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := study.Section("table2"); err != nil {
		log.Fatal(err)
	}
	_, err = study.Section("fig99")
	fmt.Println(err)
	// Output: cellwheels: unknown section "fig99"
}
