// Package cellwheels reproduces the measurement study "Performance of
// Cellular Networks on the Wheels" (ACM IMC 2023) as a deterministic
// simulation: a cross-continental US drive (LA → Boston, 5,711 km) during
// which three phones — one per major US carrier — run a round-robin of
// bulk-TCP throughput tests, ICMP RTT tests, and four latency-critical
// "5G killer" applications, while XCAL-style instruments log PHY KPIs and
// control-plane signaling, and passive handover-logger phones record
// coverage.
//
// The package is a facade over the internal substrates (geography, radio,
// deployment, RAN, transport, logging, log synchronization, apps,
// analysis). A Study is a pure function of its Config: the same seed
// always reproduces the same dataset, tables, and figures.
//
// Quick use:
//
//	study, err := cellwheels.Run(cellwheels.Config{Seed: 42, LimitKm: 150})
//	if err != nil { ... }
//	fmt.Println(study.Report())
package cellwheels

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"github.com/nuwins/cellwheels/internal/atomicio"
	"github.com/nuwins/cellwheels/internal/core"
	"github.com/nuwins/cellwheels/internal/dataset"
	"github.com/nuwins/cellwheels/internal/geo"
	"github.com/nuwins/cellwheels/internal/obs"
	"github.com/nuwins/cellwheels/internal/radio"
	"github.com/nuwins/cellwheels/internal/stats"
	"github.com/nuwins/cellwheels/internal/unit"
	"github.com/nuwins/cellwheels/internal/xcal"
)

// Config parameterizes a study. The zero value runs the paper's full
// 8-day methodology over the whole route. The JSON tags are the field
// names fleet scenarios use, both in a scenario's "base" section and as
// sweep axis fields (see RunFleet).
type Config struct {
	// Seed makes the study reproducible; equal configs with equal seeds
	// produce identical datasets.
	Seed int64 `json:"seed"`
	// LimitKm truncates the drive after this many kilometers; 0 means
	// the full 5,711 km route. Small values make quick demos.
	LimitKm float64 `json:"limit_km"`
	// SkipApps drops the four application workloads from the rotation.
	SkipApps bool `json:"skip_apps"`
	// SkipStatic drops the per-city static baselines.
	SkipStatic bool `json:"skip_static"`
	// SkipPassive drops the passive handover-logger phones.
	SkipPassive bool `json:"skip_passive"`
	// DisableEdge removes the Wavelength edge servers (ablation).
	DisableEdge bool `json:"disable_edge"`
	// DisablePolicy serves every UE from the best deployed technology
	// regardless of traffic (ablation of the elevation policy).
	DisablePolicy bool `json:"disable_policy"`
	// VideoSeconds and GamingSeconds shorten the two long app tests;
	// zero keeps the paper's durations (180 s and 90 s).
	VideoSeconds  int `json:"video_seconds"`
	GamingSeconds int `json:"gaming_seconds"`
	// Workers caps how many operator lanes are simulated concurrently;
	// 0 means GOMAXPROCS. Any value produces byte-identical output.
	Workers int `json:"workers"`
	// CrowdSize attaches this many background UEs per operator — the
	// metro-scale crowd. 0 keeps the classic six-handset campaign.
	CrowdSize int `json:"crowd_size"`
	// CrowdSamples is how many crowd UEs run speedtest measurements
	// during the campaign; 0 defaults to 120 when a crowd is enabled.
	CrowdSamples int `json:"crowd_samples"`
	// LoadModel selects the sector-load backend the handsets see:
	// "" or LoadModelStandin keeps the per-UE stand-in (byte-identical to
	// the historical campaign); LoadModelDemand couples handsets to the
	// crowd registry's aggregate demand.
	LoadModel string `json:"load_model"`
	// Obs, when non-nil, receives metrics, phase timings, and progress
	// from the run (see internal/obs). It is a write-only side channel:
	// enabling it never changes the dataset — the simulation is
	// byte-identical with Obs set or nil (pinned by a regression test).
	Obs *obs.Recorder `json:"-"`
	// SharedTimeline, when non-nil, replays a drive schedule precomputed
	// by PrecomputeTimeline instead of building one inside the run — the
	// expensive route scan is paid once and shared across any number of
	// concurrent runs. The timeline must have been precomputed for a
	// config with the same Fingerprint; Run rejects mismatches. Output is
	// byte-identical with or without it (pinned by a regression test).
	SharedTimeline *Timeline `json:"-"`
}

// fingerprint hashes the deterministic inputs of the config — everything
// except the observability and timeline-sharing side channels — for the
// run manifest and the daemon's timeline cache key.
func (c Config) fingerprint() string {
	c.Obs = nil
	c.SharedTimeline = nil
	return obs.Fingerprint(c)
}

// Fingerprint is the config's Obs-free sha256 — the value stamped into
// run manifests as config_sha256, and the key wheelsd caches precomputed
// timelines under. Equal fingerprints mean byte-identical runs.
func (c Config) Fingerprint() string { return c.fingerprint() }

// Validate rejects configs outside the supported envelope without
// running anything — the check Run performs first. Services use it to
// refuse a bad job at submission time rather than at execution time.
func (c Config) Validate() error { return c.validate() }

// Timeline is an opaque precomputed drive schedule: the deterministic
// tick sequence (including static hold windows) every operator lane of a
// campaign replays. Precomputing it once and passing it to many runs via
// Config.SharedTimeline skips the per-run route scan; replay is
// stateless, so one Timeline is safe to share between any number of
// concurrent runs.
type Timeline struct {
	tl  *geo.Timeline
	key string // fingerprint of the config it was precomputed for
}

// Ticks reports how many simulation steps the schedule contains.
func (t *Timeline) Ticks() int { return t.tl.Ticks() }

// PrecomputeTimeline builds the shared drive schedule for cfg. The
// result is only valid for configs with cfg's exact Fingerprint — the
// schedule depends on the seed, the route limit, and the hold budget
// (itself derived from the test rotation) — and Run enforces that.
func PrecomputeTimeline(cfg Config) (*Timeline, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Timeline{tl: core.PrecomputeTimeline(cfg.internal()), key: cfg.fingerprint()}, nil
}

// stamp records the config facts the manifest reports.
func (c Config) stamp() {
	c.Obs.SetLabel("seed", strconv.FormatInt(c.Seed, 10))
	c.Obs.SetLabel("config_sha256", c.fingerprint())
}

// Load model backends for Config.LoadModel.
const (
	LoadModelStandin = core.LoadModelStandin
	LoadModelDemand  = core.LoadModelDemand
)

// validate rejects configs outside the supported envelope before any
// simulation state is built, so fleet sweeps fail fast with a clear error
// instead of deep inside a lane.
func (c Config) validate() error {
	switch c.LoadModel {
	case "", LoadModelStandin, LoadModelDemand:
	default:
		return fmt.Errorf("cellwheels: unknown load_model %q (want %q or %q)", c.LoadModel, LoadModelStandin, LoadModelDemand)
	}
	if c.CrowdSize < 0 {
		return fmt.Errorf("cellwheels: crowd_size must be >= 0, got %d", c.CrowdSize)
	}
	if c.CrowdSamples < 0 {
		return fmt.Errorf("cellwheels: crowd_samples must be >= 0, got %d", c.CrowdSamples)
	}
	if c.SharedTimeline != nil && c.SharedTimeline.key != c.fingerprint() {
		return fmt.Errorf("cellwheels: shared timeline was precomputed for a different config (timeline %.12s…, config %.12s…)",
			c.SharedTimeline.key, c.fingerprint())
	}
	return nil
}

func (c Config) internal() core.Config {
	cfg := core.Config{
		Seed:          c.Seed,
		SkipApps:      c.SkipApps,
		SkipStatic:    c.SkipStatic,
		SkipPassive:   c.SkipPassive,
		DisableEdge:   c.DisableEdge,
		DisablePolicy: c.DisablePolicy,
		Workers:       c.Workers,
		CrowdSize:     c.CrowdSize,
		CrowdSamples:  c.CrowdSamples,
		LoadModel:     c.LoadModel,
		Obs:           c.Obs,
	}
	if c.LimitKm > 0 {
		cfg.Limit = unit.Meters(c.LimitKm) * unit.Kilometer
	}
	if c.VideoSeconds > 0 {
		cfg.VideoDuration = time.Duration(c.VideoSeconds) * time.Second
	}
	if c.GamingSeconds > 0 {
		cfg.GamingDuration = time.Duration(c.GamingSeconds) * time.Second
	}
	if c.SharedTimeline != nil {
		cfg.SharedTimeline = c.SharedTimeline.tl
	}
	return cfg
}

// Study is a completed campaign: the consolidated dataset plus everything
// needed to regenerate the paper's tables and figures.
type Study struct {
	db       *dataset.DB
	route    *geo.Route
	campaign *core.Campaign
	obs      *obs.Recorder
}

// Run executes a campaign and consolidates its logs.
func Run(cfg Config) (*Study, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cfg.stamp()
	c := core.NewCampaign(cfg.internal())
	db, err := c.RunAndMerge()
	if err != nil {
		return nil, fmt.Errorf("cellwheels: %w", err)
	}
	return &Study{db: db, route: c.Route(), campaign: c, obs: cfg.Obs}, nil
}

// RunArchivingRaw executes a campaign like Run, additionally writing
// every raw XCAL capture as a binary .drm container into dir — the raw
// 388 GB log archive of the real study, in miniature. The files are
// written before log synchronization, so the archive is exactly what the
// instruments produced.
func RunArchivingRaw(cfg Config, dir string) (*Study, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cellwheels: %w", err)
	}
	cfg.stamp()
	c := core.NewCampaign(cfg.internal())
	raw := c.Run()
	stopArchive := cfg.Obs.StartPhase("archive")
	for _, f := range raw.Files {
		if err := writeDRMFile(filepath.Join(dir, f.Name), f); err != nil {
			return nil, fmt.Errorf("cellwheels: %w", err)
		}
	}
	stopArchive()
	db, rep, err := c.Merge(raw)
	if err != nil {
		return nil, fmt.Errorf("cellwheels: %w", err)
	}
	if len(rep.UnmatchedFiles) > 0 {
		return nil, fmt.Errorf("cellwheels: %d unmatched files after sync", len(rep.UnmatchedFiles))
	}
	return &Study{db: db, route: c.Route(), campaign: c, obs: cfg.Obs}, nil
}

// writeDRMFile archives one capture atomically via the shared writer, so
// a mid-archive failure never leaves a truncated .drm behind.
func writeDRMFile(path string, f xcal.File) error {
	return atomicio.WriteFile(path, 0o644, func(w io.Writer) error {
		return f.WriteDRM(w)
	})
}

// WriteCoverageGeoJSON writes map-ready GeoJSON into dir: the route with
// its cities, and one file per (operator, technology) with that
// technology's coverage fragments. Only available on studies produced by
// Run (the deployment ground truth does not survive JSON round trips).
func (s *Study) WriteCoverageGeoJSON(dir string) error {
	if s.campaign == nil {
		return fmt.Errorf("cellwheels: coverage GeoJSON requires a freshly run study")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("cellwheels: %w", err)
	}
	routeJSON, err := s.route.GeoJSON(0)
	if err != nil {
		return fmt.Errorf("cellwheels: %w", err)
	}
	if err := os.WriteFile(filepath.Join(dir, "route.geojson"), routeJSON, 0o644); err != nil {
		return fmt.Errorf("cellwheels: %w", err)
	}
	// Iterate operators in their canonical order, not map order, so the
	// set of written files is produced (and any error surfaced)
	// deterministically.
	maps := s.campaign.Maps()
	for _, op := range radio.Operators() {
		m, ok := maps[op]
		if !ok {
			continue
		}
		for _, tech := range radio.Technologies() {
			frags := m.Fragments(tech)
			if len(frags) == 0 {
				continue
			}
			segs := make([][2]unit.Meters, len(frags))
			for i, f := range frags {
				segs[i] = [2]unit.Meters{f.Start, f.End}
			}
			label := op.String() + " " + tech.String()
			out, err := s.route.SegmentsGeoJSON(label, segs, 0)
			if err != nil {
				return fmt.Errorf("cellwheels: %w", err)
			}
			name := op.Short() + "-" + tech.String() + ".geojson"
			if err := os.WriteFile(filepath.Join(dir, name), out, 0o644); err != nil {
				return fmt.Errorf("cellwheels: %w", err)
			}
		}
	}
	return nil
}

// Load reads a dataset previously written with WriteJSON.
func Load(r io.Reader) (*Study, error) {
	db, err := dataset.ReadJSON(r)
	if err != nil {
		return nil, fmt.Errorf("cellwheels: %w", err)
	}
	return &Study{db: db, route: geo.DefaultRoute()}, nil
}

// WriteJSON serializes the full dataset.
func (s *Study) WriteJSON(w io.Writer) error { return s.db.WriteJSON(w) }

// WriteJSONFile serializes the full dataset to path atomically via the
// shared writer, so a failed or interrupted write never leaves a
// truncated dataset behind. The bytes written are exactly WriteJSON's.
func (s *Study) WriteJSONFile(path string) error {
	return atomicio.WriteFile(path, 0o644, s.WriteJSON)
}

// WriteCSV writes the per-table CSV files into dir.
func (s *Study) WriteCSV(dir string) error {
	write := func(name string, fn func(io.Writer) error) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		werr := fn(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		return werr
	}
	if err := write("throughput.csv", s.db.WriteThroughputCSV); err != nil {
		return err
	}
	if err := write("rtt.csv", s.db.WriteRTTCSV); err != nil {
		return err
	}
	if err := write("handovers.csv", s.db.WriteHandoverCSV); err != nil {
		return err
	}
	return write("appruns.csv", s.db.WriteAppRunCSV)
}

// MeasuredOokla renders the measured variant of Table 3: the crowd
// column is simulated with the SpeedTest methodology (static users,
// nearby servers, parallel flows) over this study's deployments, instead
// of copied from the published Ookla report. Only available on studies
// produced by Run (not Load); samples is per carrier.
func (s *Study) MeasuredOokla(samples int) string {
	if s.campaign == nil {
		return "measured Ookla comparison requires a freshly run study"
	}
	crowd := s.campaign.MeasureSpeedtestCrowd(samples)
	return core.TableOoklaMeasured(s.db, crowd).Render()
}

// Report renders every table and figure of the paper, in paper order.
func (s *Study) Report() string {
	defer s.obs.StartPhase("report")()
	maps := core.FigureCoverageMaps(s.db, s.route, 100)
	return core.Report(s.db, maps)
}

// Section renders one table or figure by its paper identifier: "table1",
// "table2", "table3", "table4", "table5", or "fig1" .. "fig16".
// Unknown identifiers return an error.
func (s *Study) Section(id string) (string, error) {
	switch id {
	case "table1":
		return core.TableDatasetStats(s.db).Render(), nil
	case "table2":
		return core.TableKPICorrelation(s.db).Render(), nil
	case "table3":
		return core.TableOoklaComparison(s.db).Render(), nil
	case "table4":
		return core.TableAppConfigs(), nil
	case "table5":
		return core.TableMAP(), nil
	case "fig1":
		return core.FigureCoverageMaps(s.db, s.route, 100).Render(), nil
	case "fig2":
		return core.FigureCoverage(s.db).Render(), nil
	case "fig3":
		return core.FigureStaticVsDriving(s.db).Render(), nil
	case "fig4":
		return core.FigurePerTechnology(s.db).Render(), nil
	case "fig5":
		return core.FigureTimezone(s.db).Render(), nil
	case "fig6":
		return core.FigureOperatorDiversity(s.db).Render(), nil
	case "fig7", "fig8":
		return core.FigureSpeedScatter(s.db).Render(), nil
	case "fig9":
		return core.FigureLongTimescale(s.db).Render(), nil
	case "fig10":
		return core.FigureHighSpeed5GShare(s.db).Render(), nil
	case "fig11":
		return core.FigureHandoverStats(s.db).Render(), nil
	case "fig12":
		return core.FigureHandoverImpact(s.db).Render(), nil
	case "fig13":
		return core.FigureARApp(s.db).Render(), nil
	case "fig14":
		return core.FigureCAVApp(s.db).Render(), nil
	case "fig15":
		return core.FigureVideo(s.db).Render(), nil
	case "fig16":
		return core.FigureGaming(s.db).Render(), nil
	case "multivariate":
		return core.AnalyzeMultivariate(s.db).Render(), nil
	default:
		return "", fmt.Errorf("cellwheels: unknown section %q", id)
	}
}

// SectionIDs lists the identifiers Section accepts, in paper order.
func SectionIDs() []string {
	return []string{
		"table1", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6",
		"fig7", "fig8", "table2", "fig9", "fig10", "table3",
		"fig11", "fig12", "fig13", "fig14", "fig15", "fig16",
		"table4", "table5", "multivariate",
	}
}

// CarrierSummary is one operator's headline numbers.
type CarrierSummary struct {
	Operator string
	// Share5G is the fraction of driven miles served by any NR flavor.
	Share5G float64
	// ShareHighSpeed is the mid/mmWave share of driven miles.
	ShareHighSpeed float64
	// DrivingDLMedianMbps and friends are medians over 500 ms samples.
	DrivingDLMedianMbps float64
	DrivingULMedianMbps float64
	DrivingRTTMedianMS  float64
	// StaticDLMedianMbps is the city-baseline median.
	StaticDLMedianMbps float64
	// HandoversPerMileMedian is over downlink throughput tests.
	HandoversPerMileMedian float64
	// VideoQoEMedian and GamingBitrateMedian summarize two of the apps.
	VideoQoEMedian      float64
	GamingBitrateMedian float64
}

// Summary computes the study's headline numbers.
type Summary struct {
	RouteKm  float64
	Tests    int
	Samples  int
	Carriers []CarrierSummary
	// FracBelow5Mbps pools both directions' driving samples.
	FracBelow5Mbps float64
}

// Summary extracts the headline numbers a quickstart would print.
func (s *Study) Summary() Summary {
	cov := core.FigureCoverage(s.db)
	svd := core.FigureStaticVsDriving(s.db)
	hos := core.FigureHandoverStats(s.db)
	vid := core.FigureVideo(s.db)
	game := core.FigureGaming(s.db)

	out := Summary{
		RouteKm: s.db.Meta.RouteKm,
		Tests:   len(s.db.Tests),
		Samples: len(s.db.Throughput) + len(s.db.RTT),
	}
	var all []float64
	for _, smp := range s.db.Throughput {
		if !smp.Static {
			all = append(all, smp.Mbps)
		}
	}
	out.FracBelow5Mbps = stats.NewCDF(all).FracBelow(5)

	for _, op := range radio.Operators() {
		cs := CarrierSummary{Operator: op.String()}
		cs.Share5G = core.Share5G(cov.Overall[op])
		cs.ShareHighSpeed = core.ShareHighSpeed(cov.Overall[op])
		cs.DrivingDLMedianMbps = svd.ThroughputOf(op, radio.Downlink, false).Median
		cs.DrivingULMedianMbps = svd.ThroughputOf(op, radio.Uplink, false).Median
		cs.StaticDLMedianMbps = svd.ThroughputOf(op, radio.Downlink, true).Median
		cs.DrivingRTTMedianMS = svd.RTTOf(op, false).Median
		cs.HandoversPerMileMedian = hos.PerMileOf(op, radio.Downlink).Median
		cs.VideoQoEMedian = vid.QoE[op].Median
		cs.GamingBitrateMedian = game.Bitrate[op].Median
		out.Carriers = append(out.Carriers, cs)
	}
	return out
}

// String renders the summary in a few lines.
func (s Summary) String() string {
	out := fmt.Sprintf("cellwheels study: %.0f km, %d tests, %d samples, %.0f%% of driving samples < 5 Mbps\n",
		s.RouteKm, s.Tests, s.Samples, 100*s.FracBelow5Mbps)
	for _, c := range s.Carriers {
		out += fmt.Sprintf("  %-8s 5G %.0f%% (high-speed %.0f%%) | drive DL %.1f / UL %.1f Mbps, RTT %.1f ms | static DL %.1f | HO/mi %.1f | video QoE %.1f | gaming %.1f Mbps\n",
			c.Operator, 100*c.Share5G, 100*c.ShareHighSpeed,
			c.DrivingDLMedianMbps, c.DrivingULMedianMbps, c.DrivingRTTMedianMS,
			c.StaticDLMedianMbps, c.HandoversPerMileMedian,
			c.VideoQoEMedian, c.GamingBitrateMedian)
	}
	return out
}
