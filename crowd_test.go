package cellwheels

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// rawJSON wraps JSON literals as sweep axis values.
func rawJSON(vals ...string) []json.RawMessage {
	out := make([]json.RawMessage, len(vals))
	for i, v := range vals {
		out[i] = json.RawMessage(v)
	}
	return out
}

// crowdConfig is the shared shape of the crowd identity tests: a short
// drive with a metro-scale population and a handful of measuring UEs.
func crowdConfig(workers int) Config {
	return Config{
		Seed:         31,
		LimitKm:      2,
		SkipApps:     true,
		SkipStatic:   true,
		CrowdSize:    100_000,
		CrowdSamples: 3,
		LoadModel:    LoadModelDemand,
		Workers:      workers,
	}
}

// TestCrowdWorkersByteIdentical pins the PR's headline invariant: a
// 10⁵-UE crowd campaign produces byte-identical datasets and reports for
// every worker count. Each lane owns its registry and every crowd draw is
// positional, so no cross-lane coordination exists to get wrong.
func TestCrowdWorkersByteIdentical(t *testing.T) {
	type outputs struct {
		dataset []byte
		report  string
		ookla   string
	}
	runWith := func(workers int) outputs {
		t.Helper()
		s, err := Run(crowdConfig(workers))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := s.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return outputs{dataset: buf.Bytes(), report: s.Report(), ookla: s.MeasuredOokla(0)}
	}
	serial := runWith(1)
	for _, workers := range []int{2, 4} {
		got := runWith(workers)
		if !bytes.Equal(serial.dataset, got.dataset) {
			t.Errorf("Workers:%d crowd dataset differs from Workers:1", workers)
		}
		if serial.report != got.report {
			t.Errorf("Workers:%d crowd report differs from Workers:1", workers)
		}
		if serial.ookla != got.ookla {
			t.Errorf("Workers:%d measured Ookla table differs from Workers:1", workers)
		}
	}
}

// TestLoadModelStandinIsDefault pins backward compatibility: naming the
// stand-in backend explicitly is byte-identical to leaving LoadModel
// empty, which is itself the seed campaign's historical output.
func TestLoadModelStandinIsDefault(t *testing.T) {
	jsonFor := func(model string) []byte {
		t.Helper()
		s, err := Run(Config{Seed: 9, LimitKm: 10, SkipApps: true, SkipStatic: true, LoadModel: model})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := s.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(jsonFor(""), jsonFor(LoadModelStandin)) {
		t.Error("LoadModel standin differs from the empty default")
	}
}

// TestDemandModelChangesLoad sanity-checks that the demand backend is
// actually wired through: a heavily loaded crowd must shift the handsets'
// measurements away from the stand-in's.
func TestDemandModelChangesLoad(t *testing.T) {
	run := func(model string, crowd int) string {
		t.Helper()
		s, err := Run(Config{Seed: 9, LimitKm: 10, SkipApps: true, SkipStatic: true,
			CrowdSize: crowd, CrowdSamples: 1, LoadModel: model})
		if err != nil {
			t.Fatal(err)
		}
		return s.Summary().String()
	}
	standin := run(LoadModelStandin, 50_000)
	demand := run(LoadModelDemand, 50_000)
	if standin == demand {
		t.Error("demand-driven load produced the same summary as the stand-in")
	}
}

// TestCrowdMeasuredOokla pins the measured Table 3 path: with a crowd
// enabled, MeasuredOokla summarizes the in-run crowd flows and renders a
// row per operator.
func TestCrowdMeasuredOokla(t *testing.T) {
	s, err := Run(Config{Seed: 17, LimitKm: 5, SkipApps: true, SkipStatic: true,
		CrowdSize: 20_000, CrowdSamples: 2, LoadModel: LoadModelDemand})
	if err != nil {
		t.Fatal(err)
	}
	out := s.MeasuredOokla(0)
	for _, want := range []string{"Verizon", "T-Mobile", "AT&T", "crowd DL"} {
		if !strings.Contains(out, want) {
			t.Errorf("measured Ookla table missing %q:\n%s", want, out)
		}
	}
}

// TestCrowdConfigValidation pins the facade's envelope checks.
func TestCrowdConfigValidation(t *testing.T) {
	cases := []Config{
		{Seed: 1, LoadModel: "bogus"},
		{Seed: 1, CrowdSize: -5},
		{Seed: 1, CrowdSamples: -1},
	}
	for _, cfg := range cases {
		if _, err := Run(cfg); err == nil {
			t.Errorf("Run accepted invalid config %+v", cfg)
		}
	}
	if _, err := RunArchivingRaw(Config{Seed: 1, LoadModel: "bogus"}, t.TempDir()); err == nil {
		t.Error("RunArchivingRaw accepted an invalid load model")
	}
}

// TestFleetCrowdSweepAxis pins the new config fields as fleet sweep axes:
// crowd_size and load_model patch cleanly through the JSON override path
// and every cell of the matrix completes.
func TestFleetCrowdSweepAxis(t *testing.T) {
	base := Config{LimitKm: 2, SkipApps: true, SkipStatic: true, SkipPassive: true, CrowdSamples: 1}
	res, err := RunFleet(FleetConfig{
		MasterSeed: 12,
		Replicates: 1,
		Base:       base,
		Sweep: []SweepAxis{
			{Field: "crowd_size", Values: rawJSON("0", "5000")},
			{Field: "load_model", Values: rawJSON(`"standin"`, `"demand"`)},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs() != 4 || res.Failed() != 0 {
		t.Fatalf("fleet ran %d runs (%d failed), want 4 ok", res.Runs(), res.Failed())
	}
	if report := res.Report(); !strings.Contains(report, "crowd_size") {
		t.Error("fleet report does not mention the crowd_size axis")
	}
}

// TestFleetRejectsBadCrowdCell pins that facade validation reaches fleet
// cells: a sweep value outside the load-model envelope fails that run.
func TestFleetRejectsBadCrowdCell(t *testing.T) {
	res, err := RunFleet(FleetConfig{
		MasterSeed: 12,
		Replicates: 1,
		Base:       Config{LimitKm: 2, SkipApps: true, SkipStatic: true, SkipPassive: true},
		Sweep: []SweepAxis{
			{Field: "load_model", Values: rawJSON(`"bogus"`)},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed() != 1 {
		t.Fatalf("fleet reported %d failures, want the bogus load model to fail its run", res.Failed())
	}
}
