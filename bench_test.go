package cellwheels

// The benchmark harness regenerates every table and figure of the paper's
// evaluation. Each BenchmarkTableN / BenchmarkFigN builds (once) a
// mid-size campaign dataset and then times the analysis that produces the
// corresponding result, printing the rows/series once so `go test
// -bench=. -v` doubles as a report generator. The Ablation benches run
// paired campaigns with one design choice toggled and report the effect
// as custom metrics.
//
// Absolute numbers are not expected to match the paper's testbed — the
// substrate is a simulator — but the shapes (who wins, by what factor,
// where the crossovers fall) are asserted in the test suite and recorded
// in EXPERIMENTS.md.

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/nuwins/cellwheels/internal/core"
	"github.com/nuwins/cellwheels/internal/dataset"
	"github.com/nuwins/cellwheels/internal/geo"
	"github.com/nuwins/cellwheels/internal/radio"
	"github.com/nuwins/cellwheels/internal/transport"
	"github.com/nuwins/cellwheels/internal/unit"
)

// benchDB builds the shared benchmark dataset once: 700 km of the route
// with the full test rotation, static baselines, and passive loggers.
var (
	benchOnce sync.Once
	benchData *dataset.DB
)

func benchDB(b *testing.B) *dataset.DB {
	b.Helper()
	benchOnce.Do(func() {
		cfg := core.Config{
			Seed:           1,
			Limit:          700 * unit.Kilometer,
			VideoDuration:  60 * time.Second,
			GamingDuration: 40 * time.Second,
		}
		db, err := core.NewCampaign(cfg).RunAndMerge()
		if err != nil {
			panic(err)
		}
		benchData = db
	})
	return benchData
}

// printOnce emits a bench's rows exactly once across all iterations.
var printed sync.Map

func printOnce(name, rows string) {
	if _, loaded := printed.LoadOrStore(name, true); !loaded {
		fmt.Printf("\n%s\n", rows)
	}
}

func BenchmarkTable1DatasetStats(b *testing.B) {
	db := benchDB(b)
	b.ResetTimer()
	var out core.DatasetStats
	for i := 0; i < b.N; i++ {
		out = core.TableDatasetStats(db)
	}
	printOnce("table1", out.Render())
}

func BenchmarkFig1CoverageMaps(b *testing.B) {
	db := benchDB(b)
	route := geo.DefaultRoute()
	b.ResetTimer()
	var out core.CoverageMaps
	for i := 0; i < b.N; i++ {
		out = core.FigureCoverageMaps(db, route, 100)
	}
	printOnce("fig1", out.Render())
}

func BenchmarkFig2Coverage(b *testing.B) {
	db := benchDB(b)
	b.ResetTimer()
	var out core.Coverage
	for i := 0; i < b.N; i++ {
		out = core.FigureCoverage(db)
	}
	printOnce("fig2", out.Render())
}

func BenchmarkFig3StaticVsDriving(b *testing.B) {
	db := benchDB(b)
	b.ResetTimer()
	var out core.StaticVsDriving
	for i := 0; i < b.N; i++ {
		out = core.FigureStaticVsDriving(db)
	}
	printOnce("fig3", out.Render())
}

func BenchmarkFig4PerTechnology(b *testing.B) {
	db := benchDB(b)
	b.ResetTimer()
	var out core.PerTechnology
	for i := 0; i < b.N; i++ {
		out = core.FigurePerTechnology(db)
	}
	printOnce("fig4", out.Render())
}

func BenchmarkFig5Timezone(b *testing.B) {
	db := benchDB(b)
	b.ResetTimer()
	var out core.TimezonePerf
	for i := 0; i < b.N; i++ {
		out = core.FigureTimezone(db)
	}
	printOnce("fig5", out.Render())
}

func BenchmarkFig6OperatorDiversity(b *testing.B) {
	db := benchDB(b)
	b.ResetTimer()
	var out core.OperatorDiversity
	for i := 0; i < b.N; i++ {
		out = core.FigureOperatorDiversity(db)
	}
	printOnce("fig6", out.Render())
}

func BenchmarkFig7SpeedScatter(b *testing.B) {
	db := benchDB(b)
	b.ResetTimer()
	var out core.SpeedScatter
	for i := 0; i < b.N; i++ {
		out = core.FigureSpeedScatter(db)
	}
	printOnce("fig7+8", out.Render())
}

func BenchmarkFig8RTTSpeed(b *testing.B) {
	// Fig 8 shares its computation with Fig 7; this bench isolates the
	// RTT panel's cost by rendering only it.
	db := benchDB(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = core.FigureSpeedScatter(db).RTT
	}
}

func BenchmarkTable2KPICorrelation(b *testing.B) {
	db := benchDB(b)
	b.ResetTimer()
	var out core.KPICorrelation
	for i := 0; i < b.N; i++ {
		out = core.TableKPICorrelation(db)
	}
	printOnce("table2", out.Render())
}

func BenchmarkFig9LongTimescale(b *testing.B) {
	db := benchDB(b)
	b.ResetTimer()
	var out core.LongTimescale
	for i := 0; i < b.N; i++ {
		out = core.FigureLongTimescale(db)
	}
	printOnce("fig9", out.Render())
}

func BenchmarkFig10HighSpeed5GShare(b *testing.B) {
	db := benchDB(b)
	b.ResetTimer()
	var out core.HighSpeedShare
	for i := 0; i < b.N; i++ {
		out = core.FigureHighSpeed5GShare(db)
	}
	printOnce("fig10", out.Render())
}

func BenchmarkTable3Ookla(b *testing.B) {
	db := benchDB(b)
	b.ResetTimer()
	var out core.OoklaComparison
	for i := 0; i < b.N; i++ {
		out = core.TableOoklaComparison(db)
	}
	printOnce("table3", out.Render())
}

func BenchmarkFig11HandoverStats(b *testing.B) {
	db := benchDB(b)
	b.ResetTimer()
	var out core.HandoverStats
	for i := 0; i < b.N; i++ {
		out = core.FigureHandoverStats(db)
	}
	printOnce("fig11", out.Render())
}

func BenchmarkFig12HandoverImpact(b *testing.B) {
	db := benchDB(b)
	b.ResetTimer()
	var out core.HandoverImpact
	for i := 0; i < b.N; i++ {
		out = core.FigureHandoverImpact(db)
	}
	printOnce("fig12", out.Render())
}

func BenchmarkFig13ARApp(b *testing.B) {
	db := benchDB(b)
	b.ResetTimer()
	var out core.OffloadAppResult
	for i := 0; i < b.N; i++ {
		out = core.FigureARApp(db)
	}
	printOnce("fig13", out.Render())
}

func BenchmarkFig14CAVApp(b *testing.B) {
	db := benchDB(b)
	b.ResetTimer()
	var out core.OffloadAppResult
	for i := 0; i < b.N; i++ {
		out = core.FigureCAVApp(db)
	}
	printOnce("fig14", out.Render())
}

func BenchmarkFig15Video(b *testing.B) {
	db := benchDB(b)
	b.ResetTimer()
	var out core.VideoResult
	for i := 0; i < b.N; i++ {
		out = core.FigureVideo(db)
	}
	printOnce("fig15", out.Render())
}

func BenchmarkFig16Gaming(b *testing.B) {
	db := benchDB(b)
	b.ResetTimer()
	var out core.GamingResult
	for i := 0; i < b.N; i++ {
		out = core.FigureGaming(db)
	}
	printOnce("fig16", out.Render())
}

func BenchmarkTable4AppConfigs(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = core.TableAppConfigs()
	}
	printOnce("table4", out)
}

func BenchmarkTable5MAPTable(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = core.TableMAP()
	}
	printOnce("table5", out)
}

func BenchmarkTable3OoklaMeasured(b *testing.B) {
	// The measured variant of Table 3: the crowd column is simulated with
	// the speedtest methodology (static users, nearby server, parallel
	// flows) instead of copied from the published report.
	db := benchDB(b)
	campaign := core.NewCampaign(core.Config{Seed: 1})
	crowd := campaign.MeasureSpeedtestCrowd(40)
	b.ResetTimer()
	var out core.OoklaMeasured
	for i := 0; i < b.N; i++ {
		out = core.TableOoklaMeasured(db, crowd)
	}
	printOnce("table3-measured", out.Render())
}

func BenchmarkMultivariate(b *testing.B) {
	// The paper's §5.5 future work: joint OLS of throughput on all KPIs.
	db := benchDB(b)
	b.ResetTimer()
	var out core.Multivariate
	for i := 0; i < b.N; i++ {
		out = core.AnalyzeMultivariate(db)
	}
	printOnce("multivariate", out.Render())
}

// --- Ablation benches: design choices DESIGN.md calls out ---

// ablationCampaign runs a small campaign with the given config tweak,
// cached by name.
var ablationCache sync.Map

func ablationDB(b *testing.B, name string, mutate func(*core.Config)) *dataset.DB {
	b.Helper()
	if v, ok := ablationCache.Load(name); ok {
		return v.(*dataset.DB)
	}
	cfg := core.Config{
		Seed:        2,
		Limit:       250 * unit.Kilometer,
		SkipStatic:  true,
		SkipPassive: true,
	}
	mutate(&cfg)
	db, err := core.NewCampaign(cfg).RunAndMerge()
	if err != nil {
		b.Fatal(err)
	}
	ablationCache.Store(name, db)
	return db
}

func medianDL(db *dataset.DB, op radio.Operator) float64 {
	return core.FigureStaticVsDriving(db).ThroughputOf(op, radio.Downlink, false).Median
}

// BenchmarkAblationPolicyPassive measures the C3 mechanism: with the
// traffic-aware elevation policy disabled, the passive/active coverage
// disparity of Fig 1 collapses.
func BenchmarkAblationPolicyPassive(b *testing.B) {
	on := ablationDB(b, "policy-on", func(cfg *core.Config) { cfg.SkipApps = true; cfg.SkipPassive = false })
	off := ablationDB(b, "policy-off", func(cfg *core.Config) {
		cfg.SkipApps = true
		cfg.SkipPassive = false
		cfg.DisablePolicy = true
	})
	route := geo.DefaultRoute()
	var gapOn, gapOff float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mOn := core.FigureCoverageMaps(on, route, 60)
		mOff := core.FigureCoverageMaps(off, route, 60)
		gapOn = mOn.Active5G[radio.TMobile] - mOn.Passive5G[radio.TMobile]
		gapOff = mOff.Active5G[radio.TMobile] - mOff.Passive5G[radio.TMobile]
	}
	b.ReportMetric(100*gapOn, "gap-pts/policy-on")
	b.ReportMetric(100*gapOff, "gap-pts/policy-off")
	printOnce("ablation-policy", fmt.Sprintf(
		"Ablation: T-Mobile passive-vs-active 5G gap = %.1f pts with policy, %.1f pts without",
		100*gapOn, 100*gapOff))
}

// BenchmarkAblationEdgeServers measures what removing the Wavelength
// deployment costs Verizon's RTT.
func BenchmarkAblationEdgeServers(b *testing.B) {
	with := ablationDB(b, "edge-on", func(cfg *core.Config) { cfg.SkipApps = true })
	without := ablationDB(b, "edge-off", func(cfg *core.Config) { cfg.SkipApps = true; cfg.DisableEdge = true })
	var rttWith, rttWithout float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rttWith = core.FigureStaticVsDriving(with).RTTOf(radio.Verizon, false).Median
		rttWithout = core.FigureStaticVsDriving(without).RTTOf(radio.Verizon, false).Median
	}
	b.ReportMetric(rttWith, "ms/edge-on")
	b.ReportMetric(rttWithout, "ms/edge-off")
	printOnce("ablation-edge", fmt.Sprintf(
		"Ablation: Verizon driving RTT median = %.1f ms with edge, %.1f ms cloud-only",
		rttWith, rttWithout))
}

// BenchmarkAblationCompression measures frame compression's effect on the
// CAV app (§7.1.2: ~8× E2E reduction).
func BenchmarkAblationCompression(b *testing.B) {
	db := ablationDB(b, "apps", func(cfg *core.Config) {})
	var raw, comp float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := core.FigureCAVApp(db)
		raw = r.E2E[radio.Verizon][0].Median
		comp = r.E2E[radio.Verizon][1].Median
	}
	b.ReportMetric(raw, "ms/raw")
	b.ReportMetric(comp, "ms/compressed")
	printOnce("ablation-compression", fmt.Sprintf(
		"Ablation: Verizon CAV E2E median = %.0f ms raw, %.0f ms compressed (%.1fx)",
		raw, comp, raw/comp))
}

// BenchmarkAblationBufferbloat sweeps the bottleneck buffer size and
// reports the driving RTT tail it produces.
func BenchmarkAblationBufferbloat(b *testing.B) {
	deep := ablationDB(b, "buf-deep", func(cfg *core.Config) { cfg.SkipApps = true })
	shallow := ablationDB(b, "buf-shallow", func(cfg *core.Config) {
		cfg.SkipApps = true
		cfg.Transport = transport.Options{BufferBDPs: 1}
	})
	var tputDeep, tputShallow float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tputDeep = medianDL(deep, radio.TMobile)
		tputShallow = medianDL(shallow, radio.TMobile)
	}
	b.ReportMetric(tputDeep, "Mbps/6bdp")
	b.ReportMetric(tputShallow, "Mbps/1bdp")
	printOnce("ablation-bufferbloat", fmt.Sprintf(
		"Ablation: T-Mobile driving DL median = %.1f Mbps at 6 BDP buffers, %.1f at 1 BDP",
		tputDeep, tputShallow))
}

// BenchmarkAblationMultipath compares the best single carrier against an
// oracle bond over all three — recommendation §8-(2).
func BenchmarkAblationMultipath(b *testing.B) {
	db := ablationDB(b, "apps", func(cfg *core.Config) {})
	var bestSingle, bonded float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bestSingle, bonded = multipathGain(db)
	}
	b.ReportMetric(bestSingle, "Mbps/best-single")
	b.ReportMetric(bonded, "Mbps/bonded")
	printOnce("ablation-multipath", fmt.Sprintf(
		"Ablation: driving DL median = %.1f Mbps best single carrier, %.1f Mbps 3-way bond",
		bestSingle, bonded))
}

// multipathGain computes median best-single vs bonded throughput over
// concurrent windows.
func multipathGain(db *dataset.DB) (bestSingle, bonded float64) {
	windows := map[time.Time]map[radio.Operator]float64{}
	for _, s := range db.Throughput {
		if s.Dir != radio.Downlink || s.Static {
			continue
		}
		key := s.Time.Truncate(500 * time.Millisecond)
		if windows[key] == nil {
			windows[key] = map[radio.Operator]float64{}
		}
		windows[key][s.Op] = s.Mbps
	}
	var bests, sums []float64
	for _, w := range windows {
		if len(w) != 3 {
			continue
		}
		mx, sum := 0.0, 0.0
		for _, v := range w {
			if v > mx {
				mx = v
			}
			sum += v
		}
		bests = append(bests, mx)
		sums = append(sums, sum)
	}
	sortFloats(bests)
	sortFloats(sums)
	if len(bests) == 0 {
		return 0, 0
	}
	return bests[len(bests)/2], sums[len(sums)/2]
}

func sortFloats(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// BenchmarkCampaignRun tracks the lane-engine speedup: the same campaign
// at 1, 2, and 3 concurrent operator lanes. The output is byte-identical
// across worker counts, so the sub-benchmarks differ only in wall clock.
func BenchmarkCampaignRun(b *testing.B) {
	for _, workers := range []int{1, 2, 3} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := core.Config{
					Seed:           1,
					Limit:          80 * unit.Kilometer,
					Workers:        workers,
					VideoDuration:  20 * time.Second,
					GamingDuration: 15 * time.Second,
				}
				core.NewCampaign(cfg).Run()
			}
		})
	}
}

// BenchmarkFleetRun tracks the fleet engine's scaling: the same 4-run
// fleet (2 sweep cells × 2 replicates) at 1, 2, and 4 concurrent runs.
// The fleet report and manifest are byte-identical across worker counts,
// so the sub-benchmarks differ only in wall clock.
func BenchmarkFleetRun(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := RunFleet(FleetConfig{
					MasterSeed: 1,
					Replicates: 2,
					Base:       Config{LimitKm: 40, VideoSeconds: 20, GamingSeconds: 15, SkipStatic: true},
					Sweep: []SweepAxis{{
						Field:  "disable_edge",
						Values: []json.RawMessage{json.RawMessage("false"), json.RawMessage("true")},
					}},
					Workers: workers,
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.Failed() > 0 {
					b.Fatalf("%d fleet runs failed", res.Failed())
				}
			}
		})
	}
}

// BenchmarkReport times the paper-report assembly over the shared
// benchmark dataset: every table and figure analysis plus rendering into
// the final text report.
func BenchmarkReport(b *testing.B) {
	db := benchDB(b)
	maps := core.FigureCoverageMaps(db, geo.DefaultRoute(), 100)
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		out = core.Report(db, maps)
	}
	if len(out) == 0 {
		b.Fatal("empty report")
	}
}

// BenchmarkLogsyncMerge times log reconciliation alone: a campaign's raw
// logs are collected once, and each iteration re-merges them into the
// consolidated database.
func BenchmarkLogsyncMerge(b *testing.B) {
	cfg := core.Config{
		Seed:           1,
		Limit:          80 * unit.Kilometer,
		VideoDuration:  20 * time.Second,
		GamingDuration: 15 * time.Second,
	}
	c := core.NewCampaign(cfg)
	raw := c.Run()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.Merge(raw); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCampaignEndToEnd times the full pipeline on a short slice:
// drive + RAN + transport + logging + sync + merge.
func BenchmarkCampaignEndToEnd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := core.Config{
			Seed:        int64(i + 1),
			Limit:       30 * unit.Kilometer,
			SkipApps:    true,
			SkipStatic:  true,
			SkipPassive: true,
		}
		if _, err := core.NewCampaign(cfg).RunAndMerge(); err != nil {
			b.Fatal(err)
		}
	}
}
