GO ?= go

.PHONY: build test race vet bench ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# bench runs the lane-engine scaling benchmark; the full figure/table
# benches live in bench_test.go and run with `go test -bench=.`.
bench:
	$(GO) test -run=NONE -bench=BenchmarkCampaignRun -benchtime=1x .

ci: vet build race
