GO ?= go

.PHONY: build test race vet bench bench-manifest bench-check lint lint-baseline lint-sarif lint-fixtures lint-inject-smoke smoke fleet-smoke fleet-sync-smoke crowd-smoke serve-smoke ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# bench runs the lane-engine scaling benchmark; the full figure/table
# benches live in bench_test.go and run with `go test -bench=.`.
bench:
	$(GO) test -run=NONE -bench=BenchmarkCampaignRun -benchtime=1x .

# bench-manifest runs the headline benchmarks (campaign, fleet, crowd
# step, report, logsync merge) and writes their ns/op and allocs/op to
# BENCH_0007.json — the machine-readable record CI uploads as an
# artifact and bench-check ratchets against.
bench-manifest:
	$(GO) run ./cmd/benchmanifest -o BENCH_0007.json

# bench-check is the perf half of the repo's ratchet: rerun the headline
# benchmarks and fail on a >15% ns/op regression or any allocs/op
# increase against the checked-in manifest. Intentional changes move the
# manifest via `make bench-manifest` and commit the result.
bench-check:
	$(GO) run ./cmd/benchmanifest -check BENCH_0007.json

# lint runs the in-repo determinism & correctness linter (internal/lint)
# over every package; findings fail the build. Suppress intentional uses
# at the call site with `//lint:allow <rule> — reason`.
lint:
	$(GO) run ./cmd/lintwheels ./...

# lint-baseline checks findings against the checked-in ratchet file:
# baselined findings are suppressed, stale entries fail the build, so
# the file can only shrink. It is expected to stay empty at merge;
# regenerate during a rule rollout with
#   $(GO) run ./cmd/lintwheels -baseline lint-baseline.json -write-baseline ./...
lint-baseline:
	$(GO) run ./cmd/lintwheels -baseline lint-baseline.json ./...

# lint-sarif renders the machine-readable SARIF 2.1.0 report CI uploads
# as an artifact. Generation never fails the target — the artifact must
# exist precisely when there are findings — lint/lint-baseline do the
# gating.
lint-sarif:
	$(GO) run ./cmd/lintwheels -format sarif -o lint.sarif ./... || true

# lint-fixtures self-checks the rule corpus: every rule's testdata
# fixtures must produce exactly the golden diagnostics — including the
# concurrency/resource corpora (goleak, ctxflow, lockhold, resleak).
lint-fixtures:
	$(GO) test ./internal/lint/...

# lint-inject-smoke proves the concurrency/resource gate end to end: a
# file with a leaked goroutine, a ctx-less blocking call, a held lock,
# and a leaked file is injected into internal/serve; lintwheels must
# fail naming all four rules, and the injection is removed again.
lint-inject-smoke:
	./scripts/lint_inject_smoke.sh

# smoke runs a short instrumented campaign end to end through the real
# CLI: dataset + CSV export + run manifest (manifest.json is the CI
# artifact). Fails on any CLI regression the unit tests sit below.
smoke:
	$(GO) run ./cmd/drivetest -seed 1 -limit-km 50 -metrics manifest.json -out smoke-dataset.json

# fleet-smoke runs a 3-replicate fleet through the real fleetrun binary:
# scenario parsing, the worker pool, streaming reduction, and the report/
# manifest writers all on the real CLI path. fleet-out/fleet-manifest.json
# is the CI artifact.
fleet-smoke:
	$(GO) run ./cmd/fleetrun -scenario testdata/fleet-smoke.json -workers 2 -out fleet-out

# fleet-sync-smoke runs a distributed fleet over loopback through the
# real fleetrun binary: a -serve collector fed by two -push workers, the
# merged report and manifest diffed byte-for-byte against a
# single-process run of the same scenario.
# fleet-sync-out/collector/fleet-manifest.json is the CI artifact.
fleet-sync-smoke:
	./scripts/fleet_sync_smoke.sh

# crowd-smoke drives a 10⁴-UE metro-scale crowd through the real
# drivetest CLI path — registry construction, event wheel, demand-driven
# load, and in-run crowd measurements — over a short route.
# crowd-manifest.json (events, attached, measurements) is the CI artifact.
crowd-smoke:
	$(GO) run ./cmd/drivetest -seed 1 -limit-km 10 -crowd 10000 -crowd-samples 4 -load-model demand -skip-apps -out crowd-dataset.json -metrics crowd-manifest.json

# serve-smoke runs the wheelsd daemon end to end over loopback: a
# campaign job, a fleet job, and a collect job (fed by real fleetrun
# -push workers through the daemon's /fleetsync/v1 mount) are submitted
# via curl and their downloaded artifacts byte-diffed against direct
# drivetest/fleetrun runs; a final SIGTERM mid-job pins the graceful
# drain. serve-out/wheelsd-manifest.json is the CI artifact.
serve-smoke:
	./scripts/serve_smoke.sh

# lint-sarif runs before the lint gates so the artifact exists for CI
# upload even when lint fails the build.
ci: vet build lint-sarif lint lint-baseline lint-inject-smoke race smoke fleet-smoke fleet-sync-smoke crowd-smoke serve-smoke bench-check
