GO ?= go

.PHONY: build test race vet bench lint lint-fixtures smoke fleet-smoke ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# bench runs the lane-engine scaling benchmark; the full figure/table
# benches live in bench_test.go and run with `go test -bench=.`.
bench:
	$(GO) test -run=NONE -bench=BenchmarkCampaignRun -benchtime=1x .

# lint runs the in-repo determinism & correctness linter (internal/lint)
# over every package; findings fail the build. Suppress intentional uses
# at the call site with `//lint:allow <rule> — reason`.
lint:
	$(GO) run ./cmd/lintwheels ./...

# lint-fixtures self-checks the rule corpus: every rule's testdata
# fixtures must produce exactly the golden diagnostics.
lint-fixtures:
	$(GO) test ./internal/lint/...

# smoke runs a short instrumented campaign end to end through the real
# CLI: dataset + CSV export + run manifest (manifest.json is the CI
# artifact). Fails on any CLI regression the unit tests sit below.
smoke:
	$(GO) run ./cmd/drivetest -seed 1 -limit-km 50 -metrics manifest.json -out smoke-dataset.json

# fleet-smoke runs a 3-replicate fleet through the real fleetrun binary:
# scenario parsing, the worker pool, streaming reduction, and the report/
# manifest writers all on the real CLI path. fleet-out/fleet-manifest.json
# is the CI artifact.
fleet-smoke:
	$(GO) run ./cmd/fleetrun -scenario testdata/fleet-smoke.json -workers 2 -out fleet-out

ci: vet build lint race smoke fleet-smoke
