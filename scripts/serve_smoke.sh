#!/usr/bin/env bash
# serve-smoke: the wheelsd daemon end to end over loopback through real
# processes — submit a campaign job via curl, poll it, download its
# artifacts, and byte-diff them against a direct drivetest run; then a
# fleet job and a collect job (fed by real fleetrun -push workers
# through the daemon's /fleetsync/v1 mount) diffed against a
# single-process fleetrun; and finally a SIGTERM mid-job, pinning the
# graceful-drain contract: the daemon exits 0 and the in-flight job's
# artifacts are complete and byte-identical on disk.
set -euo pipefail
cd "$(dirname "$0")/.."

scenario=testdata/fleet-sync-smoke.json
out=serve-out
rm -rf "$out"
mkdir -p "$out"

go build -o "$out/wheelsd" ./cmd/wheelsd
go build -o "$out/drivetest" ./cmd/drivetest
go build -o "$out/fleetrun" ./cmd/fleetrun

# json_field NAME JSON: extract one string field without depending on jq.
json_field() {
  printf '%s' "$2" | sed -n 's/.*"'"$1"'":"\([^"]*\)".*/\1/p'
}

# wait_state ID WANT: poll a job until it reaches the wanted state.
wait_state() {
  for _ in $(seq 1 600); do
    status=$(curl -sS "$url/v1/jobs/$1")
    state=$(json_field state "$status")
    case "$state" in
      "$2") return 0 ;;
      failed) echo "serve-smoke: job $1 failed: $status" >&2; exit 1 ;;
    esac
    sleep 0.1
  done
  echo "serve-smoke: job $1 never reached $2 (last: $status)" >&2
  exit 1
}

echo "serve-smoke: CLI baselines" >&2
"$out/drivetest" -seed 1 -limit-km 25 -skip-apps -out "$out/cli-dataset.json" -csv "$out/cli-csv" 2>/dev/null
"$out/fleetrun" -scenario "$scenario" -workers 2 -out "$out/cli-fleet" >/dev/null

echo "serve-smoke: starting wheelsd" >&2
"$out/wheelsd" -addr 127.0.0.1:0 -data "$out/daemon" -workers 2 \
  -metrics "$out/wheelsd-manifest.json" 2>"$out/wheelsd.log" &
daemon=$!
trap 'kill "$daemon" 2>/dev/null || true' EXIT

addr_file="$out/daemon/wheelsd-addr.txt"
for _ in $(seq 1 100); do
  [ -s "$addr_file" ] && break
  sleep 0.1
done
[ -s "$addr_file" ] || { echo "serve-smoke: wheelsd never published its address" >&2; exit 1; }
url="http://$(cat "$addr_file")"

echo "serve-smoke: campaign job" >&2
spec='{"kind":"campaign","csv":true,"config":{"seed":1,"limit_km":25,"skip_apps":true}}'
created=$(curl -sS -X POST "$url/v1/jobs" -d "$spec")
id=$(json_field id "$created")
[ -n "$id" ] || { echo "serve-smoke: no job ID in $created" >&2; exit 1; }

# Idempotent re-submit: same spec (reformatted) maps to the same job.
resub=$(curl -sS -X POST "$url/v1/jobs" \
  -d '{ "config":{"skip_apps":true,"seed":1,"limit_km":25}, "csv":true, "kind":"campaign" }')
[ "$(json_field id "$resub")" = "$id" ] || {
  echo "serve-smoke: re-submit produced a different job ID" >&2; exit 1; }

wait_state "$id" done

progress=$(curl -sS "$url/v1/jobs/$id/progress")
printf '%s' "$progress" | grep -q '"counters"' || {
  echo "serve-smoke: progress endpoint reported no counters: $progress" >&2; exit 1; }

curl -sSf "$url/v1/jobs/$id/artifacts/dataset.json" -o "$out/daemon-dataset.json"
curl -sSf "$url/v1/jobs/$id/artifacts/report.txt" -o "$out/daemon-report.txt"
cmp "$out/cli-dataset.json" "$out/daemon-dataset.json"
[ -s "$out/daemon-report.txt" ] || { echo "serve-smoke: empty report artifact" >&2; exit 1; }
for csv in throughput rtt handovers appruns; do
  curl -sSf "$url/v1/jobs/$id/artifacts/$csv.csv" -o "$out/daemon-$csv.csv"
  cmp "$out/cli-csv/$csv.csv" "$out/daemon-$csv.csv"
done
echo "serve-smoke: campaign artifacts are byte-identical to drivetest" >&2

echo "serve-smoke: fleet job" >&2
fleet_spec='{"kind":"fleet","scenario":'$(cat "$scenario")'}'
fleet_id=$(json_field id "$(curl -sS -X POST "$url/v1/jobs" -d "$fleet_spec")")
wait_state "$fleet_id" done
curl -sSf "$url/v1/jobs/$fleet_id/artifacts/fleet-report.txt" -o "$out/daemon-fleet-report.txt"
curl -sSf "$url/v1/jobs/$fleet_id/artifacts/fleet-manifest.json" -o "$out/daemon-fleet-manifest.json"
cmp "$out/cli-fleet/fleet-report.txt" "$out/daemon-fleet-report.txt"
cmp "$out/cli-fleet/fleet-manifest.json" "$out/daemon-fleet-manifest.json"
echo "serve-smoke: fleet artifacts are byte-identical to fleetrun" >&2

echo "serve-smoke: collect job + fleetrun -push workers" >&2
# CLI workers fingerprint the scenario file's exact bytes, so the
# submission pins the same hash for the daemon's collector.
fp=$(sha256sum "$scenario" | cut -d' ' -f1)
collect_spec='{"kind":"collect","fingerprint":"'"$fp"'","scenario":'$(cat "$scenario")'}'
collect_id=$(json_field id "$(curl -sS -X POST "$url/v1/jobs" -d "$collect_spec")")
"$out/fleetrun" -scenario "$scenario" -push "$url" -cells 0
"$out/fleetrun" -scenario "$scenario" -push "$url" -cells 1
wait_state "$collect_id" done
curl -sSf "$url/v1/jobs/$collect_id/artifacts/fleet-report.txt" -o "$out/collect-fleet-report.txt"
curl -sSf "$url/v1/jobs/$collect_id/artifacts/fleet-manifest.json" -o "$out/collect-fleet-manifest.json"
cmp "$out/cli-fleet/fleet-report.txt" "$out/collect-fleet-report.txt"
cmp "$out/cli-fleet/fleet-manifest.json" "$out/collect-fleet-manifest.json"
echo "serve-smoke: collected artifacts are byte-identical to the single-process fleet" >&2

echo "serve-smoke: SIGTERM drain" >&2
"$out/drivetest" -seed 2 -limit-km 25 -skip-apps -out "$out/cli-dataset2.json" 2>/dev/null
drain_spec='{"kind":"campaign","config":{"seed":2,"limit_km":25,"skip_apps":true}}'
drain_id=$(json_field id "$(curl -sS -X POST "$url/v1/jobs" -d "$drain_spec")")
kill -TERM "$daemon"
wait "$daemon" || { echo "serve-smoke: wheelsd exited nonzero after SIGTERM" >&2; exit 1; }
trap - EXIT
grep -q "draining" "$out/wheelsd.log" || {
  echo "serve-smoke: no drain notice in wheelsd.log" >&2; exit 1; }
# The in-flight job was accepted before the signal: its artifacts must
# be complete on disk and byte-identical to the direct run.
cmp "$out/cli-dataset2.json" "$out/daemon/jobs/$drain_id/dataset.json"
[ -s "$out/wheelsd-manifest.json" ] || {
  echo "serve-smoke: wheelsd wrote no obs manifest on exit" >&2; exit 1; }
echo "serve-smoke: drained job artifacts are byte-identical; daemon exited cleanly"
