#!/usr/bin/env bash
# lint-inject-smoke: proves the concurrency/resource lint gate fails the
# build END TO END, not just in fixture tests. A file carrying one
# violation per rule — a leaked goroutine, a ctx-less blocking call, a
# lock held across an HTTP round-trip, a leaked file — is injected into
# internal/serve, lintwheels must exit nonzero naming all four rules at
# that file, and the injection is removed again on every exit path.
set -euo pipefail
cd "$(dirname "$0")/.."

inject=internal/serve/zz_injected_violations.go
trap 'rm -f "$inject"' EXIT

cat > "$inject" <<'EOF'
package serve

// Injected by scripts/lint_inject_smoke.sh — one violation per
// concurrency/resource rule. Never committed; deleted by the script's
// exit trap.

import (
	"context"
	"net/http"
	"os"
	"sync"
	"time"
)

func zzLeakedSpawn() {
	go func() {
		for {
			time.Sleep(time.Second)
		}
	}()
}

func zzCtxlessBlock(ctx context.Context, ch chan int) int {
	return <-ch
}

type zzBox struct{ mu sync.Mutex }

func (b *zzBox) zzHeldPush(c *http.Client, req *http.Request) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	resp, err := c.Do(req)
	if err != nil {
		return err
	}
	return resp.Body.Close()
}

func zzLeakedOpen(path string, skip bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	if skip {
		return nil
	}
	return f.Close()
}
EOF

echo "lint-inject-smoke: running lintwheels against the injected violations"
if out=$(go run ./cmd/lintwheels -rules goleak,ctxflow,lockhold,resleak ./internal/serve 2>&1); then
	echo "lint-inject-smoke: FAIL — lintwheels exited 0 despite injected violations" >&2
	printf '%s\n' "$out" >&2
	exit 1
fi

fail=0
for rule in goleak ctxflow lockhold resleak; do
	if ! printf '%s\n' "$out" | grep -q "zz_injected_violations\.go:[0-9]*:[0-9]*: \[$rule\]"; then
		echo "lint-inject-smoke: FAIL — no $rule finding at the injected file" >&2
		fail=1
	fi
done
if [ "$fail" -ne 0 ]; then
	printf '%s\n' "$out" >&2
	exit 1
fi

printf '%s\n' "$out"
echo "lint-inject-smoke: OK — all four injected violations detected and the gate failed as required"
