#!/usr/bin/env bash
# fleet-sync-smoke: a distributed fleet over loopback through the real
# fleetrun binary — one -serve collector fed by two -push workers, each
# running one sweep cell — diffed byte-for-byte against a single-process
# run of the same scenario. This is the CI pin of the fleetsync
# determinism contract on real processes and a real TCP socket.
set -euo pipefail
cd "$(dirname "$0")/.."

scenario=testdata/fleet-sync-smoke.json
out=fleet-sync-out
rm -rf "$out"
mkdir -p "$out"

go build -o "$out/fleetrun" ./cmd/fleetrun

echo "fleet-sync-smoke: single-process baseline" >&2
"$out/fleetrun" -scenario "$scenario" -workers 2 -out "$out/single" >/dev/null

echo "fleet-sync-smoke: collector + 2 workers" >&2
"$out/fleetrun" -scenario "$scenario" -serve 127.0.0.1:0 -out "$out/collector" >/dev/null &
collector=$!
trap 'kill "$collector" 2>/dev/null || true' EXIT

# The collector publishes its bound address (it was started on port 0)
# once the listener is live.
addr_file="$out/collector/fleetsync-addr.txt"
for _ in $(seq 1 100); do
  [ -s "$addr_file" ] && break
  sleep 0.1
done
[ -s "$addr_file" ] || { echo "fleet-sync-smoke: collector never published its address" >&2; exit 1; }
url="http://$(cat "$addr_file")"

"$out/fleetrun" -scenario "$scenario" -push "$url" -cells 0
"$out/fleetrun" -scenario "$scenario" -push "$url" -cells 1

# The collector exits on its own once every expected run has arrived.
wait "$collector"
trap - EXIT

diff "$out/single/fleet-report.txt" "$out/collector/fleet-report.txt"
diff "$out/single/fleet-manifest.json" "$out/collector/fleet-manifest.json"
echo "fleet-sync-smoke: distributed output is byte-identical to the single-process run"
