package cellwheels

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

// TestSharedTimelineByteIdentical pins the timeline-sharing contract the
// wheelsd cache rests on: a run replaying a precomputed Timeline
// produces the exact dataset and report bytes of a run that builds its
// own — including when many concurrent runs share one Timeline.
func TestSharedTimelineByteIdentical(t *testing.T) {
	cfg := Config{Seed: 11, LimitKm: 20, VideoSeconds: 15, GamingSeconds: 10}

	plain, err := Run(cfg)
	if err != nil {
		t.Fatalf("plain run: %v", err)
	}
	var wantData bytes.Buffer
	if err := plain.WriteJSON(&wantData); err != nil {
		t.Fatalf("plain WriteJSON: %v", err)
	}
	wantReport := plain.Report()

	tl, err := PrecomputeTimeline(cfg)
	if err != nil {
		t.Fatalf("PrecomputeTimeline: %v", err)
	}
	if tl.Ticks() == 0 {
		t.Fatal("precomputed timeline has no ticks")
	}

	const runs = 3
	var wg sync.WaitGroup
	errs := make([]error, runs)
	datasets := make([]bytes.Buffer, runs)
	reports := make([]string, runs)
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			shared := cfg
			shared.SharedTimeline = tl
			s, err := Run(shared)
			if err != nil {
				errs[i] = err
				return
			}
			if errs[i] = s.WriteJSON(&datasets[i]); errs[i] != nil {
				return
			}
			reports[i] = s.Report()
		}(i)
	}
	wg.Wait()
	for i := 0; i < runs; i++ {
		if errs[i] != nil {
			t.Fatalf("shared run %d: %v", i, errs[i])
		}
		if !bytes.Equal(wantData.Bytes(), datasets[i].Bytes()) {
			t.Errorf("shared run %d: dataset differs from plain run", i)
		}
		if wantReport != reports[i] {
			t.Errorf("shared run %d: report differs from plain run", i)
		}
	}
}

// TestSharedTimelineWrongConfig: injecting a timeline precomputed for a
// different config is rejected before any simulation state is built.
func TestSharedTimelineWrongConfig(t *testing.T) {
	tl, err := PrecomputeTimeline(Config{Seed: 1, LimitKm: 10})
	if err != nil {
		t.Fatalf("PrecomputeTimeline: %v", err)
	}
	_, err = Run(Config{Seed: 2, LimitKm: 10, SharedTimeline: tl})
	if err == nil || !strings.Contains(err.Error(), "different config") {
		t.Fatalf("want fingerprint-mismatch error, got %v", err)
	}
}

// TestFingerprintIgnoresSideChannels: the exported Fingerprint — the
// daemon's cache key — must not change when side channels are attached.
func TestFingerprintIgnoresSideChannels(t *testing.T) {
	cfg := Config{Seed: 4, LimitKm: 10}
	base := cfg.Fingerprint()
	tl, err := PrecomputeTimeline(cfg)
	if err != nil {
		t.Fatalf("PrecomputeTimeline: %v", err)
	}
	cfg.SharedTimeline = tl
	if got := cfg.Fingerprint(); got != base {
		t.Errorf("fingerprint changed with SharedTimeline attached: %s != %s", got, base)
	}
	if other := (Config{Seed: 5, LimitKm: 10}).Fingerprint(); other == base {
		t.Error("different seeds share a fingerprint")
	}
}
