package cellwheels

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// facadeStudy caches one quick study for the facade tests.
var facadeStudy *Study

func quickStudy(t *testing.T) *Study {
	t.Helper()
	if facadeStudy != nil {
		return facadeStudy
	}
	s, err := Run(Config{Seed: 5, LimitKm: 60, VideoSeconds: 30, GamingSeconds: 20})
	if err != nil {
		t.Fatal(err)
	}
	facadeStudy = s
	return s
}

func TestRunAndSummary(t *testing.T) {
	s := quickStudy(t)
	sum := s.Summary()
	if sum.Tests == 0 || sum.Samples == 0 {
		t.Fatalf("empty summary: %+v", sum)
	}
	if len(sum.Carriers) != 3 {
		t.Fatalf("carriers = %d", len(sum.Carriers))
	}
	for _, c := range sum.Carriers {
		if c.DrivingDLMedianMbps <= 0 {
			t.Errorf("%s: DL median %v", c.Operator, c.DrivingDLMedianMbps)
		}
		if c.DrivingRTTMedianMS <= 0 {
			t.Errorf("%s: RTT median %v", c.Operator, c.DrivingRTTMedianMS)
		}
	}
	out := sum.String()
	for _, want := range []string{"Verizon", "T-Mobile", "AT&T", "km"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q", want)
		}
	}
}

func TestSections(t *testing.T) {
	s := quickStudy(t)
	for _, id := range SectionIDs() {
		out, err := s.Section(id)
		if err != nil {
			t.Errorf("section %s: %v", id, err)
			continue
		}
		if len(out) == 0 {
			t.Errorf("section %s empty", id)
		}
	}
	if _, err := s.Section("fig99"); err == nil {
		t.Error("unknown section accepted")
	}
}

func TestReportContainsEverything(t *testing.T) {
	s := quickStudy(t)
	rep := s.Report()
	for _, want := range []string{"Table 1", "Figure 16", "Table 5"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

// TestReportByteIdentical pins the determinism invariant end to end: two
// independent runs of the same config must render byte-for-byte the same
// report. Aggregation walking a map in randomized order would break this
// (float summation is order-sensitive) — exactly what the maprange lint
// rule guards against statically.
func TestReportByteIdentical(t *testing.T) {
	cfg := Config{Seed: 17, LimitKm: 30, VideoSeconds: 15, GamingSeconds: 10}
	report := func() string {
		t.Helper()
		s, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return s.Report()
	}
	if a, b := report(), report(); a != b {
		t.Error("Study.Report() differs between two runs of the same config")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	s := quickStudy(t)
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Summary().Tests != s.Summary().Tests {
		t.Error("round trip changed test count")
	}
	if _, err := Load(strings.NewReader("{")); err == nil {
		t.Error("bad JSON accepted")
	}
}

func TestWriteCSV(t *testing.T) {
	s := quickStudy(t)
	dir := t.TempDir()
	if err := s.WriteCSV(dir); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"throughput.csv", "rtt.csv", "handovers.csv", "appruns.csv"} {
		fi, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if fi.Size() == 0 {
			t.Errorf("%s empty", name)
		}
	}
}

// TestWorkersByteIdentical is the engine's determinism contract: the same
// config produces byte-identical datasets run-over-run and for any worker
// count. Apps, static batteries, and passive loggers are all enabled so
// every lane subsystem is exercised; -race covers the lane scheduling.
func TestWorkersByteIdentical(t *testing.T) {
	jsonFor := func(workers int) []byte {
		t.Helper()
		s, err := Run(Config{Seed: 21, LimitKm: 40, VideoSeconds: 20, GamingSeconds: 15, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := s.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial := jsonFor(1)
	if again := jsonFor(1); !bytes.Equal(serial, again) {
		t.Error("Workers:1 is not reproducible run-over-run")
	}
	if parallel := jsonFor(3); !bytes.Equal(serial, parallel) {
		t.Error("Workers:3 output differs from Workers:1")
	}
}

func TestDeterminism(t *testing.T) {
	cfg := Config{Seed: 9, LimitKm: 25, SkipApps: true, SkipStatic: true, SkipPassive: true}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Summary().String() != b.Summary().String() {
		t.Error("same config+seed produced different summaries")
	}
}

func TestConfigKnobs(t *testing.T) {
	s, err := Run(Config{Seed: 3, LimitKm: 25, SkipApps: true, SkipStatic: true, SkipPassive: true, DisableEdge: true})
	if err != nil {
		t.Fatal(err)
	}
	sum := s.Summary()
	if sum.Tests == 0 {
		t.Fatal("no tests")
	}
	for _, c := range sum.Carriers {
		if c.VideoQoEMedian != 0 {
			t.Error("video metric with SkipApps")
		}
	}
}

func TestRunArchivingRaw(t *testing.T) {
	dir := t.TempDir()
	s, err := RunArchivingRaw(Config{Seed: 6, LimitKm: 15, SkipApps: true, SkipStatic: true, SkipPassive: true}, dir)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no raw captures archived")
	}
	drm := 0
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".drm") {
			drm++
		}
	}
	if drm != len(entries) {
		t.Errorf("%d of %d files are .drm", drm, len(entries))
	}
	// The archived count matches the study's test count.
	if got := s.Summary().Tests; got != drm {
		t.Errorf("tests = %d, archived captures = %d", got, drm)
	}
}

func TestWriteCoverageGeoJSON(t *testing.T) {
	s := quickStudy(t)
	dir := t.TempDir()
	if err := s.WriteCoverageGeoJSON(dir); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	haveRoute := false
	geojson := 0
	for _, e := range entries {
		if e.Name() == "route.geojson" {
			haveRoute = true
		}
		if strings.HasSuffix(e.Name(), ".geojson") {
			geojson++
		}
	}
	if !haveRoute {
		t.Error("route.geojson missing")
	}
	// Route + at least one coverage layer per operator.
	if geojson < 4 {
		t.Errorf("only %d geojson files", geojson)
	}
	// Loaded studies cannot export coverage ground truth.
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := loaded.WriteCoverageGeoJSON(t.TempDir()); err == nil {
		t.Error("loaded study exported coverage GeoJSON")
	}
}
