module github.com/nuwins/cellwheels

go 1.22
