package stats

import (
	"errors"
	"fmt"
	"math"
)

// Regression is an ordinary-least-squares fit of y on several predictor
// columns plus an intercept — the multivariate analysis the paper names
// as future work in §5.5 ("an in-depth understanding of the impact of
// multiple KPIs on performance requires a multivariate analysis").
type Regression struct {
	// Names of the predictor columns, in coefficient order.
	Names []string
	// Coef[i] is the fitted coefficient of Names[i]; Intercept is the
	// constant term.
	Coef      []float64
	Intercept float64
	// R2 is the coefficient of determination on the fitting data.
	R2 float64
	// N is the number of observations.
	N int
	// StdCoef[i] is the standardized (beta) coefficient — the effect of
	// a one-standard-deviation move in the predictor, in standard
	// deviations of y. Comparable across predictors with different units.
	StdCoef []float64
}

// ErrSingular is returned when the normal equations cannot be solved
// (collinear or constant predictors).
var ErrSingular = errors.New("stats: singular design matrix")

// OLS fits y = b0 + Σ bi·xi by solving the normal equations with
// Gaussian elimination. cols maps name → column values; every column
// must have len(y) entries.
func OLS(y []float64, names []string, cols map[string][]float64) (Regression, error) {
	n := len(y)
	p := len(names)
	if n == 0 {
		return Regression{}, ErrEmpty
	}
	if n <= p+1 {
		return Regression{}, fmt.Errorf("stats: %d observations for %d predictors", n, p)
	}
	for _, name := range names {
		if len(cols[name]) != n {
			return Regression{}, fmt.Errorf("stats: column %q has %d values, want %d", name, len(cols[name]), n)
		}
	}

	// Build X'X and X'y with the intercept as column 0.
	d := p + 1
	xtx := make([][]float64, d)
	for i := range xtx {
		xtx[i] = make([]float64, d)
	}
	xty := make([]float64, d)
	row := make([]float64, d)
	for k := 0; k < n; k++ {
		row[0] = 1
		for j, name := range names {
			row[j+1] = cols[name][k]
		}
		for i := 0; i < d; i++ {
			for j := 0; j < d; j++ {
				xtx[i][j] += row[i] * row[j]
			}
			xty[i] += row[i] * y[k]
		}
	}

	beta, err := solve(xtx, xty)
	if err != nil {
		return Regression{}, err
	}

	// R² from residuals.
	var meanY float64
	for _, v := range y {
		meanY += v
	}
	meanY /= float64(n)
	var ssTot, ssRes float64
	for k := 0; k < n; k++ {
		pred := beta[0]
		for j, name := range names {
			pred += beta[j+1] * cols[name][k]
		}
		r := y[k] - pred
		ssRes += r * r
		dTot := y[k] - meanY
		ssTot += dTot * dTot
	}
	r2 := 0.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}

	reg := Regression{
		Names:     append([]string(nil), names...),
		Coef:      beta[1:],
		Intercept: beta[0],
		R2:        r2,
		N:         n,
	}

	// Standardized coefficients.
	sy := stddev(y)
	reg.StdCoef = make([]float64, p)
	for j, name := range names {
		sx := stddev(cols[name])
		if sy > 0 {
			reg.StdCoef[j] = reg.Coef[j] * sx / sy
		}
	}
	return reg, nil
}

func stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// solve performs Gaussian elimination with partial pivoting on a copy of
// the inputs.
func solve(a [][]float64, b []float64) ([]float64, error) {
	n := len(b)
	m := make([][]float64, n)
	for i := range m {
		m[i] = append(append([]float64(nil), a[i]...), b[i])
	}
	for col := 0; col < n; col++ {
		// Pivot.
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[piv][col]) {
				piv = r
			}
		}
		if math.Abs(m[piv][col]) < 1e-12 {
			return nil, ErrSingular
		}
		m[col], m[piv] = m[piv], m[col]
		// Eliminate below.
		for r := col + 1; r < n; r++ {
			f := m[r][col] / m[col][col]
			for c := col; c <= n; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	// Back substitution.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		v := m[i][n]
		for j := i + 1; j < n; j++ {
			v -= m[i][j] * x[j]
		}
		x[i] = v / m[i][i]
	}
	return x, nil
}

// Predict evaluates the fitted model on one observation.
func (r Regression) Predict(obs map[string]float64) float64 {
	v := r.Intercept
	for j, name := range r.Names {
		v += r.Coef[j] * obs[name]
	}
	return v
}
