// Package stats implements the descriptive statistics the paper's
// evaluation is built from: empirical CDFs and quantiles, Pearson
// correlation (Table 2), mean/standard deviation summaries (Fig 9), and
// value binning (speed bins, technology bins, HT/LT bins).
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned by summaries of empty sample sets.
var ErrEmpty = errors.New("stats: empty sample set")

// CDF is an empirical cumulative distribution over a sample set.
// The zero value is an empty distribution; add samples with Add or
// construct directly from a slice with NewCDF.
type CDF struct {
	samples []float64
	sorted  bool
}

// NewCDF builds a distribution from xs. The input slice is copied.
func NewCDF(xs []float64) *CDF {
	c := &CDF{samples: append([]float64(nil), xs...)}
	return c
}

// Add appends one sample.
func (c *CDF) Add(x float64) {
	c.samples = append(c.samples, x)
	c.sorted = false
}

// Len reports the number of samples.
func (c *CDF) Len() int { return len(c.samples) }

func (c *CDF) ensureSorted() {
	if !c.sorted {
		sort.Float64s(c.samples)
		c.sorted = true
	}
}

// At reports the empirical CDF value P(X <= x).
func (c *CDF) At(x float64) float64 {
	if len(c.samples) == 0 {
		return 0
	}
	c.ensureSorted()
	i := sort.SearchFloat64s(c.samples, x)
	// advance past equal values so At is P(X <= x), not P(X < x)
	for i < len(c.samples) && c.samples[i] == x {
		i++
	}
	return float64(i) / float64(len(c.samples))
}

// Quantile reports the q-th quantile (q in [0, 1]) using linear
// interpolation between order statistics. Quantile(0.5) is the median.
func (c *CDF) Quantile(q float64) float64 {
	if len(c.samples) == 0 {
		return math.NaN()
	}
	c.ensureSorted()
	if q <= 0 {
		return c.samples[0]
	}
	if q >= 1 {
		return c.samples[len(c.samples)-1]
	}
	pos := q * float64(len(c.samples)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return c.samples[lo]
	}
	frac := pos - float64(lo)
	return c.samples[lo]*(1-frac) + c.samples[hi]*frac
}

// Median is Quantile(0.5).
func (c *CDF) Median() float64 { return c.Quantile(0.5) }

// Min reports the smallest sample, or NaN if empty.
func (c *CDF) Min() float64 {
	if len(c.samples) == 0 {
		return math.NaN()
	}
	c.ensureSorted()
	return c.samples[0]
}

// Max reports the largest sample, or NaN if empty.
func (c *CDF) Max() float64 {
	if len(c.samples) == 0 {
		return math.NaN()
	}
	c.ensureSorted()
	return c.samples[len(c.samples)-1]
}

// Mean reports the arithmetic mean, or NaN if empty.
func (c *CDF) Mean() float64 {
	if len(c.samples) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range c.samples {
		sum += x
	}
	return sum / float64(len(c.samples))
}

// FracBelow reports the fraction of samples strictly below x — the form
// the paper uses for statements like "35% of samples are below 5 Mbps".
func (c *CDF) FracBelow(x float64) float64 {
	if len(c.samples) == 0 {
		return 0
	}
	c.ensureSorted()
	return float64(sort.SearchFloat64s(c.samples, x)) / float64(len(c.samples))
}

// Points renders the CDF as n evenly spaced (value, probability) pairs,
// suitable for plotting or textual figure output.
func (c *CDF) Points(n int) []Point {
	if len(c.samples) == 0 || n <= 0 {
		return nil
	}
	c.ensureSorted()
	pts := make([]Point, 0, n)
	for i := 0; i < n; i++ {
		q := float64(i) / float64(n-1)
		if n == 1 {
			q = 0.5
		}
		pts = append(pts, Point{X: c.Quantile(q), P: q})
	}
	return pts
}

// Point is one (value, cumulative probability) pair of a rendered CDF.
type Point struct {
	X float64
	P float64
}

// Summary bundles the descriptive statistics the paper tabulates for a
// sample set.
type Summary struct {
	N      int
	Mean   float64
	Std    float64
	Min    float64
	P25    float64
	Median float64
	P75    float64
	P90    float64
	Max    float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	c := NewCDF(xs)
	mean := c.Mean()
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	std := 0.0
	if len(xs) > 1 {
		std = math.Sqrt(ss / float64(len(xs)-1))
	}
	return Summary{
		N:      len(xs),
		Mean:   mean,
		Std:    std,
		Min:    c.Min(),
		P25:    c.Quantile(0.25),
		Median: c.Median(),
		P75:    c.Quantile(0.75),
		P90:    c.Quantile(0.90),
		Max:    c.Max(),
	}, nil
}

// String renders the summary in one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.2f std=%.2f min=%.2f p25=%.2f med=%.2f p75=%.2f p90=%.2f max=%.2f",
		s.N, s.Mean, s.Std, s.Min, s.P25, s.Median, s.P75, s.P90, s.Max)
}

// Pearson computes the Pearson correlation coefficient between two
// equal-length sample vectors, as used in Table 2. It returns an error if
// the lengths differ, fewer than two points are given, or either vector
// has zero variance.
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("stats: length mismatch %d vs %d", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return 0, ErrEmpty
	}
	n := float64(len(xs))
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var cov, vx, vy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return 0, errors.New("stats: zero variance")
	}
	return cov / math.Sqrt(vx*vy), nil
}

// Binner assigns values to labelled half-open bins [edge[i], edge[i+1]).
// Values below the first edge go to bin 0; values at or above the last
// edge go to the final bin. This matches the paper's speed bins:
// low (0–20 mph), mid (20–60), high (60+).
type Binner struct {
	Edges  []float64 // interior edges, ascending; len(Edges) = len(Labels)-1
	Labels []string
}

// NewBinner builds a binner from interior edges and one label per bin.
func NewBinner(edges []float64, labels []string) (*Binner, error) {
	if len(labels) != len(edges)+1 {
		return nil, fmt.Errorf("stats: %d labels for %d edges; want edges+1", len(labels), len(edges))
	}
	for i := 1; i < len(edges); i++ {
		if edges[i] <= edges[i-1] {
			return nil, fmt.Errorf("stats: edges not ascending at %d", i)
		}
	}
	return &Binner{Edges: append([]float64(nil), edges...), Labels: append([]string(nil), labels...)}, nil
}

// Index reports which bin x belongs to.
func (b *Binner) Index(x float64) int {
	return sort.SearchFloat64s(b.Edges, x+smallestStep(x))
}

// smallestStep nudges x so that values exactly on an edge land in the
// upper bin, giving half-open [lo, hi) semantics with SearchFloat64s.
func smallestStep(x float64) float64 {
	return math.Nextafter(math.Abs(x), math.Inf(1)) - math.Abs(x)
}

// Label reports the label of x's bin.
func (b *Binner) Label(x float64) string { return b.Labels[b.Index(x)] }

// Bins reports the number of bins.
func (b *Binner) Bins() int { return len(b.Labels) }

// SpeedBins is the paper's three-way vehicle-speed binning in mph.
func SpeedBins() *Binner {
	b, err := NewBinner([]float64{20, 60}, []string{"0-20 mph", "20-60 mph", "60+ mph"})
	if err != nil {
		panic(err) // static construction cannot fail
	}
	return b
}

// Histogram counts occurrences of each label over values, using the binner.
func (b *Binner) Histogram(xs []float64) map[string]int {
	h := make(map[string]int, b.Bins())
	for _, l := range b.Labels {
		h[l] = 0
	}
	for _, x := range xs {
		h[b.Label(x)]++
	}
	return h
}

// Share converts a count map into fractional shares of the total.
// An all-zero map yields all-zero shares.
func Share(counts map[string]int) map[string]float64 {
	total := 0
	for _, c := range counts {
		total += c
	}
	out := make(map[string]float64, len(counts))
	for k, c := range counts {
		if total == 0 {
			out[k] = 0
		} else {
			out[k] = float64(c) / float64(total)
		}
	}
	return out
}
