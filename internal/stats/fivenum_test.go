package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

// groundTruthFiveNum recomputes the five-number summary directly from a
// sorted copy of the cleaned input, using the same linear interpolation
// between order statistics as CDF.Quantile — the independent reference
// the property tests compare FiveNum against.
func groundTruthFiveNum(xs []float64) (median, p25, p75, lo, hi float64) {
	var clean []float64
	for _, x := range xs {
		if !math.IsNaN(x) {
			clean = append(clean, x)
		}
	}
	if len(clean) == 0 {
		nan := math.NaN()
		return nan, nan, nan, nan, nan
	}
	sort.Float64s(clean)
	q := func(p float64) float64 {
		pos := p * float64(len(clean)-1)
		i := int(math.Floor(pos))
		j := int(math.Ceil(pos))
		if i == j {
			return clean[i]
		}
		frac := pos - float64(i)
		return clean[i]*(1-frac) + clean[j]*frac
	}
	return q(0.5), q(0.25), q(0.75), clean[0], clean[len(clean)-1]
}

func eqOrBothNaN(a, b float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	return math.Abs(a-b) <= 1e-12*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

// TestFiveNumAgainstSortedGroundTruth is the core property test: for
// arbitrary inputs (including NaNs), FiveNum must agree with the
// sorted-slice reference implementation.
func TestFiveNumAgainstSortedGroundTruth(t *testing.T) {
	prop := func(xs []float64, nanMask []bool) bool {
		// Sprinkle NaNs using the second generated vector as a mask.
		in := append([]float64(nil), xs...)
		for i := range in {
			if i < len(nanMask) && nanMask[i] {
				in[i] = math.NaN()
			}
		}
		med, p25, p75, lo, hi := FiveNum(in)
		wm, w25, w75, wlo, whi := groundTruthFiveNum(in)
		return eqOrBothNaN(med, wm) && eqOrBothNaN(p25, w25) &&
			eqOrBothNaN(p75, w75) && eqOrBothNaN(lo, wlo) && eqOrBothNaN(hi, whi)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestFiveNumPermutationInvariant pins what the fleet engine leans on:
// fold order cannot show in the summary.
func TestFiveNumPermutationInvariant(t *testing.T) {
	prop := func(xs []float64) bool {
		if len(xs) < 2 {
			return true
		}
		rev := make([]float64, len(xs))
		for i, x := range xs {
			rev[len(xs)-1-i] = x
		}
		m1, a1, b1, l1, h1 := FiveNum(xs)
		m2, a2, b2, l2, h2 := FiveNum(rev)
		return eqOrBothNaN(m1, m2) && eqOrBothNaN(a1, a2) &&
			eqOrBothNaN(b1, b2) && eqOrBothNaN(l1, l2) && eqOrBothNaN(h1, h2)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestFiveNumOrdering(t *testing.T) {
	prop := func(xs []float64) bool {
		med, p25, p75, lo, hi := FiveNum(xs)
		if math.IsNaN(med) {
			return true
		}
		return lo <= p25 && p25 <= med && med <= p75 && p75 <= hi
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestFiveNumEmptyAndNaN(t *testing.T) {
	for _, in := range [][]float64{nil, {}, {math.NaN()}, {math.NaN(), math.NaN()}} {
		med, p25, p75, lo, hi := FiveNum(in)
		for _, v := range []float64{med, p25, p75, lo, hi} {
			if !math.IsNaN(v) {
				t.Errorf("FiveNum(%v) produced finite %v, want all NaN", in, v)
			}
		}
	}
	// A single NaN among finite values is dropped, not propagated.
	med, p25, p75, lo, hi := FiveNum([]float64{3, math.NaN(), 1, 2})
	if med != 2 || p25 != 1.5 || p75 != 2.5 || lo != 1 || hi != 3 {
		t.Errorf("FiveNum with one NaN = %v %v %v %v %v", med, p25, p75, lo, hi)
	}
}

func TestFiveNumDoesNotMutateInput(t *testing.T) {
	in := []float64{3, 1, 2}
	FiveNum(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Errorf("input mutated: %v", in)
	}
}

func TestIQROverlap(t *testing.T) {
	cases := []struct {
		aLo, aHi, bLo, bHi float64
		want               bool
	}{
		{0, 1, 2, 3, false},
		{2, 3, 0, 1, false},
		{0, 2, 1, 3, true},
		{0, 1, 1, 2, true}, // touching bounds overlap
		{1, 1, 1, 1, true}, // degenerate equal points
		{0, 1, math.NaN(), 2, true}, // NaN cannot rule out overlap
		{math.NaN(), math.NaN(), math.NaN(), math.NaN(), true},
	}
	for _, tc := range cases {
		if got := IQROverlap(tc.aLo, tc.aHi, tc.bLo, tc.bHi); got != tc.want {
			t.Errorf("IQROverlap(%v, %v, %v, %v) = %v, want %v", tc.aLo, tc.aHi, tc.bLo, tc.bHi, got, tc.want)
		}
	}
}

// TestIQROverlapSymmetric: overlap is order-free — swap the ranges and
// the answer holds.
func TestIQROverlapSymmetric(t *testing.T) {
	prop := func(a, b, c, d float64) bool {
		aLo, aHi := math.Min(a, b), math.Max(a, b)
		bLo, bHi := math.Min(c, d), math.Max(c, d)
		return IQROverlap(aLo, aHi, bLo, bHi) == IQROverlap(bLo, bHi, aLo, aHi)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
