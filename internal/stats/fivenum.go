package stats

import "math"

// FiveNum computes the five-number summary of xs — median, p25, p75,
// min, max — with the same interpolated quantiles as CDF.Quantile, after
// dropping NaNs (in the fleet engine a failed replicate leaves a NaN
// slot, and one failure must not poison its cell's statistics). An empty
// or all-NaN input yields five NaNs. The input slice is not modified.
//
// This is the replicate-summary primitive of the fleet report: every
// statistic it returns is an order statistic of the sorted values, so the
// result is invariant under permutation of xs — fold order, and therefore
// worker count, cannot show in it.
func FiveNum(xs []float64) (median, p25, p75, min, max float64) {
	clean := make([]float64, 0, len(xs))
	for _, x := range xs {
		if !math.IsNaN(x) {
			clean = append(clean, x)
		}
	}
	if len(clean) == 0 {
		nan := math.NaN()
		return nan, nan, nan, nan, nan
	}
	c := NewCDF(clean)
	return c.Median(), c.Quantile(0.25), c.Quantile(0.75), c.Min(), c.Max()
}

// IQROverlap reports whether the interquartile ranges [aLo, aHi] and
// [bLo, bHi] intersect. The fleet report uses it as a bootstrap-free
// screen for sweep effects: when a cell's IQR is disjoint from the
// baseline cell's, replicate spread alone does not explain the
// difference. Any NaN bound reports true — overlap cannot be ruled out
// without both ranges.
func IQROverlap(aLo, aHi, bLo, bHi float64) bool {
	if math.IsNaN(aLo) || math.IsNaN(aHi) || math.IsNaN(bLo) || math.IsNaN(bHi) {
		return true
	}
	return aLo <= bHi && bLo <= aHi
}
