package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestCDFAt(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4})
	cases := []struct{ x, want float64 }{
		{0.5, 0},
		{1, 0.25},
		{2.5, 0.5},
		{4, 1},
		{9, 1},
	}
	for _, tc := range cases {
		if got := c.At(tc.x); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("At(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
}

func TestCDFAtEmpty(t *testing.T) {
	var c CDF
	if got := c.At(1); got != 0 {
		t.Errorf("At on empty = %v, want 0", got)
	}
}

func TestCDFQuantile(t *testing.T) {
	c := NewCDF([]float64{10, 20, 30, 40, 50})
	if got := c.Median(); got != 30 {
		t.Errorf("Median = %v, want 30", got)
	}
	if got := c.Quantile(0); got != 10 {
		t.Errorf("Quantile(0) = %v, want 10", got)
	}
	if got := c.Quantile(1); got != 50 {
		t.Errorf("Quantile(1) = %v, want 50", got)
	}
	if got := c.Quantile(0.25); got != 20 {
		t.Errorf("Quantile(0.25) = %v, want 20", got)
	}
	// interpolation between order statistics
	if got := c.Quantile(0.375); got != 25 {
		t.Errorf("Quantile(0.375) = %v, want 25", got)
	}
}

func TestCDFQuantileEmpty(t *testing.T) {
	var c CDF
	if got := c.Quantile(0.5); !math.IsNaN(got) {
		t.Errorf("Quantile on empty = %v, want NaN", got)
	}
}

func TestCDFAddUnsorted(t *testing.T) {
	var c CDF
	for _, x := range []float64{5, 1, 9, 3} {
		c.Add(x)
	}
	if got := c.Min(); got != 1 {
		t.Errorf("Min = %v, want 1", got)
	}
	if got := c.Max(); got != 9 {
		t.Errorf("Max = %v, want 9", got)
	}
	c.Add(0.5) // re-sorting after more adds
	if got := c.Min(); got != 0.5 {
		t.Errorf("Min after Add = %v, want 0.5", got)
	}
}

func TestCDFMean(t *testing.T) {
	c := NewCDF([]float64{2, 4, 6})
	if got := c.Mean(); got != 4 {
		t.Errorf("Mean = %v, want 4", got)
	}
}

func TestCDFFracBelow(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4, 5})
	if got := c.FracBelow(3); got != 0.4 {
		t.Errorf("FracBelow(3) = %v, want 0.4", got)
	}
	if got := c.FracBelow(0); got != 0 {
		t.Errorf("FracBelow(0) = %v, want 0", got)
	}
	if got := c.FracBelow(100); got != 1 {
		t.Errorf("FracBelow(100) = %v, want 1", got)
	}
}

func TestCDFPoints(t *testing.T) {
	c := NewCDF([]float64{0, 10})
	pts := c.Points(3)
	if len(pts) != 3 {
		t.Fatalf("Points len = %d, want 3", len(pts))
	}
	if pts[0].X != 0 || pts[2].X != 10 {
		t.Errorf("endpoints = %v, %v", pts[0], pts[2])
	}
	if pts[1].P != 0.5 {
		t.Errorf("middle P = %v, want 0.5", pts[1].P)
	}
	if got := c.Points(0); got != nil {
		t.Errorf("Points(0) = %v, want nil", got)
	}
}

func TestCDFQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) < 2 {
			return true
		}
		c := NewCDF(xs)
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := c.Quantile(q)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCDFAtQuantileConsistencyProperty(t *testing.T) {
	// For any sample x in the set, At(x) >= its rank fraction.
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		c := NewCDF(xs)
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		for i, x := range sorted {
			if c.At(x) < float64(i+1)/float64(len(sorted))-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 5 || s.Mean != 3 || s.Median != 3 || s.Min != 1 || s.Max != 5 {
		t.Errorf("Summary = %+v", s)
	}
	// sample std of 1..5 is sqrt(2.5)
	if math.Abs(s.Std-math.Sqrt(2.5)) > 1e-9 {
		t.Errorf("Std = %v, want %v", s.Std, math.Sqrt(2.5))
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if _, err := Summarize(nil); err != ErrEmpty {
		t.Errorf("err = %v, want ErrEmpty", err)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s, err := Summarize([]float64{7})
	if err != nil {
		t.Fatal(err)
	}
	if s.Std != 0 {
		t.Errorf("Std of single sample = %v, want 0", s.Std)
	}
}

func TestSummaryString(t *testing.T) {
	s, _ := Summarize([]float64{1, 2, 3})
	if got := s.String(); got == "" {
		t.Error("String is empty")
	}
}

func TestPearsonPerfect(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	r, err := Pearson(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-1) > 1e-12 {
		t.Errorf("r = %v, want 1", r)
	}
	neg := []float64{8, 6, 4, 2}
	r, _ = Pearson(xs, neg)
	if math.Abs(r+1) > 1e-12 {
		t.Errorf("r = %v, want -1", r)
	}
}

func TestPearsonUncorrelated(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{1, -1, 1, -1}
	r, err := Pearson(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r) > 0.5 {
		t.Errorf("r = %v, want near 0", r)
	}
}

func TestPearsonErrors(t *testing.T) {
	if _, err := Pearson([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch not rejected")
	}
	if _, err := Pearson([]float64{1}, []float64{2}); err == nil {
		t.Error("too-few points not rejected")
	}
	if _, err := Pearson([]float64{1, 1}, []float64{2, 3}); err == nil {
		t.Error("zero variance not rejected")
	}
}

func TestPearsonBoundedProperty(t *testing.T) {
	f := func(pairs [][2]float64) bool {
		if len(pairs) < 3 {
			return true
		}
		xs := make([]float64, len(pairs))
		ys := make([]float64, len(pairs))
		for i, p := range pairs {
			// Restrict to magnitudes where the sums of squares cannot
			// overflow; KPI values in this codebase are far smaller still.
			if math.IsNaN(p[0]) || math.IsNaN(p[1]) ||
				math.Abs(p[0]) > 1e100 || math.Abs(p[1]) > 1e100 {
				return true
			}
			xs[i], ys[i] = p[0], p[1]
		}
		r, err := Pearson(xs, ys)
		if err != nil {
			return true
		}
		return r >= -1-1e-9 && r <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBinner(t *testing.T) {
	b := SpeedBins()
	cases := []struct {
		x    float64
		want string
	}{
		{0, "0-20 mph"},
		{19.9, "0-20 mph"},
		{20, "20-60 mph"},
		{59.9, "20-60 mph"},
		{60, "60+ mph"},
		{85, "60+ mph"},
	}
	for _, c := range cases {
		if got := b.Label(c.x); got != c.want {
			t.Errorf("Label(%v) = %q, want %q", c.x, got, c.want)
		}
	}
}

func TestNewBinnerValidation(t *testing.T) {
	if _, err := NewBinner([]float64{1, 2}, []string{"a", "b"}); err == nil {
		t.Error("label count mismatch not rejected")
	}
	if _, err := NewBinner([]float64{2, 1}, []string{"a", "b", "c"}); err == nil {
		t.Error("descending edges not rejected")
	}
}

func TestBinnerHistogram(t *testing.T) {
	b := SpeedBins()
	h := b.Histogram([]float64{5, 10, 25, 70, 70, 70})
	if h["0-20 mph"] != 2 || h["20-60 mph"] != 1 || h["60+ mph"] != 3 {
		t.Errorf("Histogram = %v", h)
	}
}

func TestBinnerIndexTotalProperty(t *testing.T) {
	b := SpeedBins()
	f := func(x float64) bool {
		if math.IsNaN(x) {
			return true
		}
		i := b.Index(x)
		return i >= 0 && i < b.Bins()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestShare(t *testing.T) {
	s := Share(map[string]int{"a": 1, "b": 3})
	if s["a"] != 0.25 || s["b"] != 0.75 {
		t.Errorf("Share = %v", s)
	}
	z := Share(map[string]int{"a": 0})
	if z["a"] != 0 {
		t.Errorf("Share of zero total = %v", z)
	}
}
