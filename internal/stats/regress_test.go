package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestOLSExactLinear(t *testing.T) {
	// y = 3 + 2a − b, noise-free: recovered exactly, R² = 1.
	a := []float64{1, 2, 3, 4, 5, 6, 7}
	b := []float64{2, 1, 4, 3, 6, 5, 8}
	y := make([]float64, len(a))
	for i := range y {
		y[i] = 3 + 2*a[i] - b[i]
	}
	r, err := OLS(y, []string{"a", "b"}, map[string][]float64{"a": a, "b": b})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Intercept-3) > 1e-9 {
		t.Errorf("intercept = %v, want 3", r.Intercept)
	}
	if math.Abs(r.Coef[0]-2) > 1e-9 || math.Abs(r.Coef[1]+1) > 1e-9 {
		t.Errorf("coefs = %v, want [2, -1]", r.Coef)
	}
	if math.Abs(r.R2-1) > 1e-9 {
		t.Errorf("R² = %v, want 1", r.R2)
	}
	if r.N != 7 {
		t.Errorf("N = %d", r.N)
	}
}

func TestOLSPredict(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	y := []float64{3, 5, 7, 9, 11} // y = 1 + 2a
	r, err := OLS(y, []string{"a"}, map[string][]float64{"a": a})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Predict(map[string]float64{"a": 10}); math.Abs(got-21) > 1e-9 {
		t.Errorf("Predict(10) = %v, want 21", got)
	}
}

func TestOLSNoisyR2Bounded(t *testing.T) {
	// Pure noise target: R² near 0 but within [0, 1].
	a := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	y := []float64{5, -3, 8, 1, -7, 2, 9, -4, 6, 0}
	r, err := OLS(y, []string{"a"}, map[string][]float64{"a": a})
	if err != nil {
		t.Fatal(err)
	}
	if r.R2 < -1e-9 || r.R2 > 0.5 {
		t.Errorf("R² = %v for noise", r.R2)
	}
}

func TestOLSErrors(t *testing.T) {
	if _, err := OLS(nil, nil, nil); err != ErrEmpty {
		t.Errorf("empty err = %v", err)
	}
	// Too few observations.
	if _, err := OLS([]float64{1, 2}, []string{"a", "b"},
		map[string][]float64{"a": {1, 2}, "b": {3, 4}}); err == nil {
		t.Error("underdetermined fit accepted")
	}
	// Column length mismatch.
	if _, err := OLS([]float64{1, 2, 3, 4}, []string{"a"},
		map[string][]float64{"a": {1, 2}}); err == nil {
		t.Error("length mismatch accepted")
	}
	// Collinear predictors.
	a := []float64{1, 2, 3, 4, 5, 6}
	b := []float64{2, 4, 6, 8, 10, 12} // b = 2a
	y := []float64{1, 2, 3, 4, 5, 6}
	if _, err := OLS(y, []string{"a", "b"},
		map[string][]float64{"a": a, "b": b}); err == nil {
		t.Error("collinear design accepted")
	}
}

func TestOLSStandardizedCoefficients(t *testing.T) {
	// With one predictor, the standardized coefficient equals Pearson r.
	a := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	y := []float64{2, 4, 5, 4, 5, 7, 8, 9}
	r, err := OLS(y, []string{"a"}, map[string][]float64{"a": a})
	if err != nil {
		t.Fatal(err)
	}
	pr, err := Pearson(a, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.StdCoef[0]-pr) > 1e-9 {
		t.Errorf("std coef = %v, Pearson = %v", r.StdCoef[0], pr)
	}
}

func TestOLSR2AtLeastBestSingleProperty(t *testing.T) {
	// Adding predictors never lowers in-sample R² below the single-
	// predictor fit.
	f := func(seed uint8) bool {
		n := 40
		a := make([]float64, n)
		b := make([]float64, n)
		y := make([]float64, n)
		x := float64(seed) + 1
		for i := 0; i < n; i++ {
			x = math.Mod(x*37+11, 97)
			a[i] = x
			x = math.Mod(x*53+7, 89)
			b[i] = x
			y[i] = 0.5*a[i] - 0.2*b[i] + math.Mod(x*13, 5)
		}
		one, err1 := OLS(y, []string{"a"}, map[string][]float64{"a": a})
		two, err2 := OLS(y, []string{"a", "b"}, map[string][]float64{"a": a, "b": b})
		if err1 != nil || err2 != nil {
			return true
		}
		return two.R2 >= one.R2-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSolveIdentity(t *testing.T) {
	a := [][]float64{{1, 0}, {0, 1}}
	x, err := solve(a, []float64{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-3) > 1e-12 || math.Abs(x[1]-4) > 1e-12 {
		t.Errorf("x = %v", x)
	}
}

func TestSolveSingular(t *testing.T) {
	a := [][]float64{{1, 1}, {2, 2}}
	if _, err := solve(a, []float64{1, 2}); err != ErrSingular {
		t.Errorf("err = %v, want ErrSingular", err)
	}
}
