package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"testing"
)

func rawVals(vals ...string) []json.RawMessage {
	out := make([]json.RawMessage, len(vals))
	for i, v := range vals {
		out[i] = json.RawMessage(v)
	}
	return out
}

func TestExpandEmpty(t *testing.T) {
	cells, err := Expand(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 1 || cells[0].Key != "" || len(cells[0].Overrides) != 0 {
		t.Fatalf("empty sweep = %+v, want single base cell", cells)
	}
	if got := cells[0].Label(); got != "(base)" {
		t.Errorf("base label = %q", got)
	}
}

func TestExpandCartesian(t *testing.T) {
	cells, err := Expand([]Axis{
		{Field: "a", Values: rawVals("1", "2")},
		{Field: "b", Values: rawVals("true", "false")},
	})
	if err != nil {
		t.Fatal(err)
	}
	var keys []string
	for _, c := range cells {
		keys = append(keys, c.Key)
	}
	want := []string{"a=1|b=true", "a=1|b=false", "a=2|b=true", "a=2|b=false"}
	if strings.Join(keys, " ") != strings.Join(want, " ") {
		t.Errorf("cells = %v, want %v (first axis slowest)", keys, want)
	}
}

func TestExpandCanonicalizesValues(t *testing.T) {
	a, err := Expand([]Axis{{Field: "x", Values: rawVals(`{"k": 1}`)}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Expand([]Axis{{Field: "x", Values: rawVals(`{ "k":1 }`)}})
	if err != nil {
		t.Fatal(err)
	}
	if a[0].Key != b[0].Key {
		t.Errorf("equal values spaced differently produce keys %q vs %q", a[0].Key, b[0].Key)
	}
}

func TestExpandErrors(t *testing.T) {
	cases := []struct {
		name string
		axes []Axis
	}{
		{"empty field", []Axis{{Field: "", Values: rawVals("1")}}},
		{"no values", []Axis{{Field: "a"}}},
		{"duplicate field", []Axis{{Field: "a", Values: rawVals("1")}, {Field: "a", Values: rawVals("2")}}},
		{"bad json", []Axis{{Field: "a", Values: rawVals("{")}}},
	}
	for _, tc := range cases {
		if _, err := Expand(tc.axes); err == nil {
			t.Errorf("%s: Expand accepted a malformed sweep", tc.name)
		}
	}
}

// TestRunSeedPositional pins the seed-derivation contract: seeds are a
// pure function of (master, cell, replicate), distinct across runs, and
// unaffected by everything else (there is nothing else to pass).
func TestRunSeedPositional(t *testing.T) {
	if RunSeed(7, "a=1", 0) != RunSeed(7, "a=1", 0) {
		t.Error("RunSeed is not deterministic")
	}
	seen := map[int64]string{}
	for _, cell := range []string{"", "a=1", "a=2"} {
		for rep := 0; rep < 3; rep++ {
			s := RunSeed(7, cell, rep)
			id := fmt.Sprintf("%s/%d", cell, rep)
			if prev, dup := seen[s]; dup {
				t.Errorf("seed collision between %s and %s", prev, id)
			}
			seen[s] = id
		}
	}
	if RunSeed(7, "a=1", 0) == RunSeed(8, "a=1", 0) {
		t.Error("master seed does not reach the derived seed")
	}
}

// stubRun derives metrics purely from the spec, so fleets over it are
// fully deterministic and cheap.
func stubRun(spec RunSpec) (RunResult, error) {
	return RunResult{Metrics: Metrics{
		"m":    float64(spec.Seed%1000) + float64(spec.Replicate),
		"nan":  math.NaN(),
		"zeta": 1, // name sorting: not in MetricOrder, must come last
	}}, nil
}

func fleetOutputs(t *testing.T, cfg Config) (string, []byte) {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Manifest.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return res.Report(), buf.Bytes()
}

// TestRunWorkerInvariant is the engine-level determinism contract: the
// same scenario produces byte-identical report and manifest for workers
// 1, 2, and 4 (run under -race in CI).
func TestRunWorkerInvariant(t *testing.T) {
	base := Config{
		MasterSeed: 3,
		Replicates: 3,
		Sweep:      []Axis{{Field: "edge", Values: rawVals("false", "true")}},
		Run:        stubRun,
		MetricOrder: []string{"m"},
	}
	cfg1 := base
	cfg1.Workers = 1
	report1, manifest1 := fleetOutputs(t, cfg1)
	for _, w := range []int{2, 4} {
		cfg := base
		cfg.Workers = w
		report, manifest := fleetOutputs(t, cfg)
		if report != report1 {
			t.Errorf("report differs between workers=1 and workers=%d:\n%s\nvs\n%s", w, report1, report)
		}
		if !bytes.Equal(manifest, manifest1) {
			t.Errorf("manifest differs between workers=1 and workers=%d", w)
		}
	}
	if !strings.Contains(report1, "zeta") {
		t.Error("metric outside MetricOrder missing from report")
	}
	if strings.Index(report1, "m ") > strings.Index(report1, "zeta") {
		t.Error("MetricOrder not respected: zeta printed before m")
	}
}

// TestRunPanicContainment pins the failure contract: a panicking run
// becomes a manifest failure entry with the panic message, its replicate
// slot is excluded from the statistics, and every sibling run completes.
func TestRunPanicContainment(t *testing.T) {
	res, err := Run(Config{
		MasterSeed: 5,
		Replicates: 3,
		Workers:    2,
		Run:        stubRun,
		Start: func(spec RunSpec) {
			if spec.Index == 1 {
				panic("injected failure")
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	man := res.Manifest
	if man.Failed != 1 {
		t.Fatalf("Failed = %d, want 1", man.Failed)
	}
	if len(man.Runs) != 3 {
		t.Fatalf("manifest has %d runs, want 3", len(man.Runs))
	}
	for _, rec := range man.Runs {
		if rec.Index == 1 {
			if rec.Status != RunFailed || !strings.Contains(rec.Error, "injected failure") {
				t.Errorf("run 1 = %+v, want failed with the panic message", rec)
			}
		} else if rec.Status != RunOK {
			t.Errorf("sibling run %d did not complete: %+v", rec.Index, rec)
		}
	}
	if got := res.Cells[0].OK; got != 2 {
		t.Errorf("cell OK = %d, want 2 (the survivors)", got)
	}
	for _, m := range res.Cells[0].Metrics {
		if m.Name == "m" && m.N != 2 {
			t.Errorf("metric %q folded %d replicates, want 2", m.Name, m.N)
		}
		if m.Name == "nan" && m.N != 0 {
			t.Errorf("NaN metric reports N = %d, want 0", m.N)
		}
	}
}

// TestRunErrorRecorded mirrors the panic test for plain errors.
func TestRunErrorRecorded(t *testing.T) {
	res, err := Run(Config{
		Replicates: 2,
		Run: func(spec RunSpec) (RunResult, error) {
			if spec.Replicate == 1 {
				return RunResult{}, fmt.Errorf("boom %d", spec.Index)
			}
			return RunResult{Metrics: Metrics{"m": 1}, Dataset: "run-000.json"}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Manifest.Failed != 1 {
		t.Fatalf("Failed = %d, want 1", res.Manifest.Failed)
	}
	if got := res.Manifest.Runs[1].Error; got != "boom 1" {
		t.Errorf("run 1 error = %q", got)
	}
	if got := res.Manifest.Runs[0].Dataset; got != "run-000.json" {
		t.Errorf("run 0 dataset = %q, want the archive path", got)
	}
}

func TestRunNilRunFunc(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Error("Run accepted a nil RunFunc")
	}
}

func TestManifestRoundTrip(t *testing.T) {
	res, err := Run(Config{MasterSeed: 2, Replicates: 2, Run: stubRun})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Manifest.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != ManifestSchema || got.MasterSeed != 2 || len(got.Runs) != 2 {
		t.Errorf("round-tripped manifest = %+v", got)
	}
	if got.Runs[1].Seed != RunSeed(2, "", 1) {
		t.Errorf("manifest seed %d does not match RunSeed", got.Runs[1].Seed)
	}
}

// TestReportSingleCellNoFootnote checks the IQR footnote only appears
// when some metric was actually flagged against a baseline.
func TestReportSingleCellNoFootnote(t *testing.T) {
	res, err := Run(Config{Replicates: 2, Run: stubRun})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(res.Report(), "IQR disjoint") {
		t.Error("single-cell report carries the IQR footnote")
	}
}
