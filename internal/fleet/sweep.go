package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
)

// Axis is one sweep dimension: a configuration field name and the values
// it takes. Values are raw JSON, so the engine stays agnostic to the
// config type being swept — the caller's RunFunc interprets them.
type Axis struct {
	Field  string            `json:"field"`
	Values []json.RawMessage `json:"values"`
}

// Override is one (field, value) binding of a sweep cell. Overrides are
// kept as an ordered slice, not a map, so every walk over them is
// deterministic.
type Override struct {
	Field string
	Value json.RawMessage
}

// Cell is one point of the sweep grid.
type Cell struct {
	// Key canonically identifies the cell: "f1=v1|f2=v2" in axis order,
	// with compacted JSON values; "" for the empty sweep. Run seeds and
	// manifest rows key off it, so it is part of the determinism
	// contract — equal scenarios produce equal keys.
	Key string
	// Overrides are the cell's field bindings, in axis order.
	Overrides []Override
}

// Label is the human-readable cell name; the empty sweep reads "(base)".
func (c Cell) Label() string {
	if c.Key == "" {
		return "(base)"
	}
	return c.Key
}

// Expand builds the cartesian product of the axes — the sweep grid —
// with the first axis varying slowest. An empty axis list yields the
// single base cell.
func Expand(axes []Axis) ([]Cell, error) {
	seen := map[string]bool{}
	for _, a := range axes {
		if a.Field == "" {
			return nil, fmt.Errorf("fleet: sweep axis with empty field name")
		}
		if seen[a.Field] {
			return nil, fmt.Errorf("fleet: duplicate sweep field %q", a.Field)
		}
		seen[a.Field] = true
		if len(a.Values) == 0 {
			return nil, fmt.Errorf("fleet: sweep field %q has no values", a.Field)
		}
	}
	cells := []Cell{{}}
	for _, a := range axes {
		next := make([]Cell, 0, len(cells)*len(a.Values))
		for _, base := range cells {
			for _, v := range a.Values {
				canon, err := canonJSON(v)
				if err != nil {
					return nil, fmt.Errorf("fleet: sweep field %q: bad value %s: %w", a.Field, v, err)
				}
				over := append(append([]Override(nil), base.Overrides...), Override{Field: a.Field, Value: canon})
				next = append(next, Cell{Key: cellKey(over), Overrides: over})
			}
		}
		cells = next
	}
	return cells, nil
}

// cellKey renders the canonical "f1=v1|f2=v2" identity of an override
// set.
func cellKey(over []Override) string {
	parts := make([]string, len(over))
	for i, o := range over {
		parts[i] = o.Field + "=" + string(o.Value)
	}
	return strings.Join(parts, "|")
}

// canonJSON compacts a raw JSON value so equal values always produce
// equal cell keys, however the scenario author spaced them.
func canonJSON(v json.RawMessage) (json.RawMessage, error) {
	var buf bytes.Buffer
	if err := json.Compact(&buf, v); err != nil {
		return nil, err
	}
	return json.RawMessage(buf.Bytes()), nil
}
