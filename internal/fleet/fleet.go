// Package fleet orchestrates many measurement campaigns as one
// deterministic job: a scenario — a sweep grid over configuration fields
// plus a replicate count — is expanded into a run matrix, every run gets
// a seed forked from the fleet master seed, a bounded worker pool
// executes the runs concurrently with per-run panic containment, and
// finished runs are folded streamingly into per-cell replicate
// accumulators, so a 100-run fleet never holds 100 datasets in memory.
//
// The package is the scenario layer above the single-campaign engine and
// deliberately knows nothing about campaigns: a run is whatever the
// caller's RunFunc does, and all the engine sees of it is a flat metric
// map. cellwheels.RunFleet supplies the campaign runner.
//
// Determinism contract (the fleet-level restatement of the per-campaign
// one): the report and the manifest are byte-identical for any worker
// count. Three properties carry it:
//
//   - run identity is positional: each run's seed is a pure function of
//     (master seed, cell key, replicate index), via simrand-style stream
//     forking — never of execution order (see RunSeed);
//   - reduction is slot-addressed: a finished run's metrics land in the
//     (cell, metric, replicate) slot they belong to, so the folded state
//     is independent of completion order;
//   - failures are contained and recorded: a run that errors or panics
//     becomes a manifest entry, its replicate slot stays empty (NaN,
//     ignored by the five-number summaries), and every sibling run still
//     executes.
package fleet

import (
	"errors"

	"github.com/nuwins/cellwheels/internal/obs"
)

// Metrics is one run's headline numbers, keyed by metric name (e.g.
// "Verizon/drive_dl_mbps"). Values may be NaN when a run cannot produce
// a metric (e.g. apps skipped); NaNs are dropped by the reduction.
type Metrics map[string]float64

// RunResult is what a RunFunc hands back to the engine.
type RunResult struct {
	// Metrics is folded into the run's sweep cell; the run's full
	// output (dataset, logs) must not be returned — archive it to disk
	// or discard it, that is the streaming-reduction contract.
	Metrics Metrics
	// Dataset optionally records where the run's full dataset was
	// archived. The engine stores it in the manifest and never reads it.
	Dataset string
}

// RunSpec identifies one run of the expanded matrix.
type RunSpec struct {
	// Index is the run's position in the matrix: cells in sweep order,
	// replicates within a cell. It names archive files and manifest rows.
	Index int
	// Cell is the sweep cell the run belongs to.
	Cell Cell
	// Replicate is the run's replicate number within its cell, from 0.
	Replicate int
	// Seed is the run's derived campaign seed (see RunSeed).
	Seed int64
}

// RunFunc executes one run. It is called from pool goroutines and must
// be safe to run concurrently with other runs; a panic is contained and
// recorded as that run's failure.
type RunFunc func(RunSpec) (RunResult, error)

// Config parameterizes a fleet.
type Config struct {
	// MasterSeed seeds the whole fleet; per-run seeds are forked from it.
	MasterSeed int64
	// Replicates is how many seeded runs execute per sweep cell;
	// values below 1 mean 1.
	Replicates int
	// Sweep is the grid of field overrides; empty means one base cell.
	Sweep []Axis
	// Workers caps how many runs execute concurrently (0 = GOMAXPROCS).
	// Any value produces a byte-identical report and manifest.
	Workers int
	// Run executes one run of the matrix. Required.
	Run RunFunc
	// MetricOrder fixes the order metrics print in the report; names not
	// listed are appended in sorted order.
	MetricOrder []string
	// Obs receives fleet-level phase timings and run counters. Side
	// channel only: nil and non-nil recorders produce identical results.
	Obs *obs.Recorder
	// CellFilter, when non-nil, restricts execution to the sweep cells it
	// returns true for (index is the cell's position in sweep order).
	// Filtered fleets keep the full matrix's positional run indexes and
	// seeds, so two workers covering disjoint cell subsets produce runs a
	// collector can merge into exactly the single-process result. The
	// Result covers only the kept cells.
	CellFilter func(index int, c Cell) bool
	// OnRun, when non-nil, streams every finished run — its manifest
	// record plus its folded metrics — in completion order on the
	// collect goroutine (never concurrently). It is the worker-side push
	// seam: fleetsync pushes each run to the collector from here. The
	// first error stops further OnRun calls and fails Run after the
	// remaining pool runs drain.
	OnRun func(RunRecord, Metrics) error
	// Start, when non-nil, runs at the beginning of every run on its
	// worker goroutine — a test-only seam for injecting failures
	// (including panics) into the pool. Production callers leave it nil.
	Start func(RunSpec)
}

// Result is a completed fleet: cross-replicate statistics per sweep cell
// plus the manifest of every run.
type Result struct {
	// Cells holds one summary per sweep cell, in sweep order.
	Cells []CellSummary
	// Manifest records the full run matrix with per-run outcomes.
	Manifest Manifest
}

// Run expands the scenario into its run matrix and executes it. An error
// is returned only for a malformed scenario; individual run failures are
// contained, counted in Manifest.Failed, and recorded per run.
func Run(cfg Config) (*Result, error) {
	if cfg.Run == nil {
		return nil, errors.New("fleet: Config.Run is nil")
	}
	if cfg.Replicates < 1 {
		cfg.Replicates = 1
	}

	stopExpand := cfg.Obs.StartPhase("fleet/expand")
	red, err := NewReducer(cfg.MasterSeed, cfg.Replicates, cfg.Sweep, cfg.CellFilter, cfg.MetricOrder)
	stopExpand()
	if err != nil {
		return nil, err
	}

	stopRuns := cfg.Obs.StartPhase("fleet/runs")
	okCounter := cfg.Obs.Counter("fleet/runs_ok")
	failCounter := cfg.Obs.Counter("fleet/runs_failed")
	var onRunErr error
	// collect runs on a single goroutine (see runAll), so the folds and
	// counters below need no locking.
	collect := func(spec RunSpec, res RunResult, err error) {
		rec := RunRecord{
			Index:     spec.Index,
			Cell:      spec.Cell.Key,
			Replicate: spec.Replicate,
			Seed:      spec.Seed,
		}
		if err != nil {
			rec.Status = RunFailed
			rec.Error = err.Error()
			failCounter.Add(1)
		} else {
			rec.Status = RunOK
			rec.Dataset = res.Dataset
			okCounter.Add(1)
		}
		// The records come straight from the reducer's own spec list, so
		// Fold's validation cannot fail here.
		if ferr := red.Fold(rec, res.Metrics); ferr != nil && onRunErr == nil {
			onRunErr = ferr
		}
		if cfg.OnRun != nil && onRunErr == nil {
			if perr := cfg.OnRun(rec, res.Metrics); perr != nil {
				onRunErr = perr
			}
		}
	}
	runAll(red.Specs(), cfg.Workers, cfg.Run, cfg.Start, collect)
	stopRuns()
	if onRunErr != nil {
		return nil, onRunErr
	}

	defer cfg.Obs.StartPhase("fleet/reduce")()
	return red.Result(), nil
}
