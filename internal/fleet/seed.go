package fleet

import (
	"strconv"

	"github.com/nuwins/cellwheels/internal/simrand"
)

// RunSeed derives the campaign seed for one run of the fleet matrix via
// simrand's stable stream forking: the seed is a pure function of
// (master seed, cell key, replicate index) — never of execution order,
// worker count, or which other runs exist. Raising the replicate count
// therefore never reseeds existing replicates, and two fleets with the
// same master seed agree on every (cell, replicate) they share.
//
// The scheme is the fleet-level twin of the campaign's own stream tree:
// the master seed roots a stream, each run names a path below it
// ("fleet" / cell key / replicate), and the first draw of that stream is
// the run's seed.
func RunSeed(master int64, cellKey string, replicate int) int64 {
	return simrand.New(master).
		Fork("fleet").
		Fork("cell=" + cellKey).
		Fork("rep=" + strconv.Itoa(replicate)).
		Int63()
}
