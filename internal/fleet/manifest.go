package fleet

import (
	"encoding/json"
	"fmt"
	"io"
)

// ManifestSchema identifies the fleet manifest layout; bump on breaking
// change.
const ManifestSchema = 1

// Run statuses recorded in the manifest.
const (
	RunOK     = "ok"
	RunFailed = "failed"
)

// RunRecord is one run's row in the fleet manifest.
type RunRecord struct {
	Index     int    `json:"index"`
	Cell      string `json:"cell"`
	Replicate int    `json:"replicate"`
	Seed      int64  `json:"seed"`
	Status    string `json:"status"`
	// Error carries the run's failure (including contained panics);
	// empty for successful runs.
	Error string `json:"error,omitempty"`
	// Dataset is where the run's full dataset was archived, relative to
	// the fleet output directory; empty when datasets are discarded.
	Dataset string `json:"dataset,omitempty"`
}

// Manifest is the machine-readable fleet record: the full run matrix
// with per-run seeds and outcomes, in matrix order. It deliberately
// carries no wall-clock fields — wall time lives in the obs side
// channel's own manifest — so a fleet manifest is byte-identical for any
// worker count.
type Manifest struct {
	Schema     int         `json:"schema"`
	MasterSeed int64       `json:"master_seed"`
	Replicates int         `json:"replicates"`
	Cells      []string    `json:"cells"`
	Failed     int         `json:"failed"`
	Runs       []RunRecord `json:"runs"`
}

// WriteJSON serializes the manifest as indented JSON.
func (m Manifest) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// ReadManifest parses a manifest written by WriteJSON.
func ReadManifest(r io.Reader) (Manifest, error) {
	var m Manifest
	if err := json.NewDecoder(r).Decode(&m); err != nil {
		return Manifest{}, fmt.Errorf("fleet: manifest: %w", err)
	}
	return m, nil
}
