package fleet

import (
	"fmt"
	"math"
	"strings"

	"github.com/nuwins/cellwheels/internal/stats"
)

// Report renders the fleet's cross-replicate statistics, one block per
// sweep cell in sweep order. Every metric prints as
// "median [p25–p75] (min–max)" over the cell's completed replicates. For
// each cell after the first, a metric whose interquartile range does not
// overlap the first cell's is marked with '*' — a bootstrap-free "the
// replicate spread alone does not explain this difference" flag.
//
// The rendering reads only slot-addressed state, so the report is
// byte-identical for any worker count.
func (r *Result) Report() string {
	var b strings.Builder
	man := r.Manifest
	fmt.Fprintf(&b, "fleet: master seed %d — %d cells × %d replicates = %d runs, %d failed\n",
		man.MasterSeed, len(man.Cells), man.Replicates, len(man.Runs), man.Failed)

	var baseline map[string]MetricSummary
	flagged := false
	for ci, cs := range r.Cells {
		fmt.Fprintf(&b, "\ncell %s — %d/%d replicates ok\n", cs.Cell.Label(), cs.OK, man.Replicates)
		width := 0
		for _, m := range cs.Metrics {
			if len(m.Name) > width {
				width = len(m.Name)
			}
		}
		for _, m := range cs.Metrics {
			mark := ""
			if ci > 0 {
				if base, ok := baseline[m.Name]; ok && m.N > 0 && base.N > 0 &&
					!stats.IQROverlap(m.P25, m.P75, base.P25, base.P75) {
					mark = " *"
					flagged = true
				}
			}
			fmt.Fprintf(&b, "  %-*s  %s%s\n", width, m.Name, renderFiveNum(m), mark)
		}
		if ci == 0 {
			baseline = make(map[string]MetricSummary, len(cs.Metrics))
			for _, m := range cs.Metrics {
				baseline[m.Name] = m
			}
		}
	}
	if flagged {
		b.WriteString("\n* IQR disjoint from the first cell's — replicate spread alone does not explain the difference\n")
	}
	return b.String()
}

// renderFiveNum formats one metric row; cells with no finite replicate
// values render as "-".
func renderFiveNum(m MetricSummary) string {
	if m.N == 0 {
		return "-"
	}
	return fmt.Sprintf("%s [%s–%s] (%s–%s) n=%d",
		fnum(m.Median), fnum(m.P25), fnum(m.P75), fnum(m.Min), fnum(m.Max), m.N)
}

func fnum(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf("%.2f", v)
}
