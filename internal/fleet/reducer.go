package fleet

import (
	"fmt"
	"sort"
)

// Reducer is the exported face of the slot-addressed streaming reduction:
// finished runs — wherever they executed — are folded one at a time into
// per-cell replicate slots, and the Result read out at the end is
// byte-identical to a single-process Run over the same scenario. fleet.Run
// folds its own pool's runs through a Reducer; the fleetsync collector
// folds runs pushed to it over HTTP through an identical one, which is
// exactly why a distributed fleet's merged report cannot drift from a
// local run's.
//
// A Reducer knows the full expected run matrix (cells × replicates, with
// positional seeds), so Fold validates every incoming record against the
// spec it claims to be: wrong index, cell, replicate, or seed is an
// error, not a silent mis-fold. Fold is not goroutine-safe; callers
// serialize (fleet.Run folds on its collect goroutine, the collector
// under its mutex).
type Reducer struct {
	masterSeed int64
	replicates int
	cells      []Cell // the kept (reduced-over) cells, in sweep order
	acc        *accumulator
	order      []string

	// expected is the kept slice of the full run matrix, ordered by
	// full-matrix index; pos maps a full-matrix index to its position in
	// expected.
	expected []RunSpec
	pos      map[int]int
	records  []RunRecord
	seen     []bool
	received int
	okByCell []int
	failed   int
}

// NewReducer builds the reduction for a scenario: the full sweep grid is
// expanded from axes, keep (nil = keep everything) selects the cells this
// reducer covers, and every kept run's seed is derived positionally — so
// two reducers over the same scenario expect byte-for-byte the same
// matrix, whatever machines the runs land on.
func NewReducer(masterSeed int64, replicates int, axes []Axis, keep func(index int, c Cell) bool, metricOrder []string) (*Reducer, error) {
	if replicates < 1 {
		replicates = 1
	}
	all, err := Expand(axes)
	if err != nil {
		return nil, err
	}
	var cells []Cell
	kept := make([]bool, len(all))
	for i, c := range all {
		if keep == nil || keep(i, c) {
			kept[i] = true
			cells = append(cells, c)
		}
	}
	if len(cells) == 0 {
		return nil, fmt.Errorf("fleet: cell filter keeps no cells (%d expanded)", len(all))
	}
	r := &Reducer{
		masterSeed: masterSeed,
		replicates: replicates,
		cells:      cells,
		acc:        newAccumulator(cells, replicates),
		order:      metricOrder,
		pos:        map[int]int{},
	}
	index := 0
	for i, c := range all {
		for rep := 0; rep < replicates; rep++ {
			if kept[i] {
				r.pos[index] = len(r.expected)
				r.expected = append(r.expected, RunSpec{
					Index:     index,
					Cell:      c,
					Replicate: rep,
					Seed:      RunSeed(masterSeed, c.Key, rep),
				})
			}
			index++
		}
	}
	r.records = make([]RunRecord, len(r.expected))
	r.seen = make([]bool, len(r.expected))
	r.okByCell = make([]int, len(cells))
	return r, nil
}

// Specs lists the runs this reducer expects, ordered by full-matrix
// index. Workers execute exactly this list.
func (r *Reducer) Specs() []RunSpec { return r.expected }

// Total reports how many runs the reducer expects.
func (r *Reducer) Total() int { return len(r.expected) }

// Received reports how many expected runs have been folded so far.
func (r *Reducer) Received() int { return r.received }

// Complete reports whether every expected run has been folded.
func (r *Reducer) Complete() bool { return r.received == len(r.expected) }

// Seen reports whether the run with the given full-matrix index has been
// folded already — the idempotency check for re-pushed runs.
func (r *Reducer) Seen(index int) bool {
	p, ok := r.pos[index]
	return ok && r.seen[p]
}

// Missing lists the full-matrix indexes of expected runs not yet folded,
// ascending.
func (r *Reducer) Missing() []int {
	var idx []int
	for p, s := range r.seen {
		if !s {
			idx = append(idx, r.expected[p].Index)
		}
	}
	sort.Ints(idx)
	return idx
}

// Fold validates one finished run against its expected spec and stores it
// in its slots. The record must carry the positional identity NewReducer
// derived for its index — a mismatched cell, replicate, or seed means the
// sender ran a different scenario, and folding it would silently corrupt
// the reduction.
func (r *Reducer) Fold(rec RunRecord, m Metrics) error {
	p, ok := r.pos[rec.Index]
	if !ok {
		return fmt.Errorf("fleet: reduce: run index %d is not in the expected matrix", rec.Index)
	}
	spec := r.expected[p]
	if rec.Cell != spec.Cell.Key {
		return fmt.Errorf("fleet: reduce: run %d claims cell %q, expected %q", rec.Index, rec.Cell, spec.Cell.Key)
	}
	if rec.Replicate != spec.Replicate {
		return fmt.Errorf("fleet: reduce: run %d claims replicate %d, expected %d", rec.Index, rec.Replicate, spec.Replicate)
	}
	if rec.Seed != spec.Seed {
		return fmt.Errorf("fleet: reduce: run %d claims seed %d, expected the positional seed %d", rec.Index, rec.Seed, spec.Seed)
	}
	if r.seen[p] {
		return fmt.Errorf("fleet: reduce: run %d folded twice", rec.Index)
	}
	switch rec.Status {
	case RunOK:
		r.acc.fold(spec, m)
		r.okByCell[r.acc.index[spec.Cell.Key]]++
	case RunFailed:
		r.failed++
	default:
		return fmt.Errorf("fleet: reduce: run %d has unknown status %q", rec.Index, rec.Status)
	}
	r.seen[p] = true
	r.received++
	r.records[p] = rec
	return nil
}

// Result reads out the reduction: cross-replicate statistics per kept
// cell plus the manifest of every folded run, in matrix order. The bytes
// derived from it depend only on what was folded, never on fold order.
func (r *Reducer) Result() *Result {
	keys := make([]string, len(r.cells))
	for i, c := range r.cells {
		keys[i] = c.Key
	}
	records := make([]RunRecord, len(r.records))
	copy(records, r.records)
	return &Result{
		Cells: r.acc.summarize(r.order, r.okByCell),
		Manifest: Manifest{
			Schema:     ManifestSchema,
			MasterSeed: r.masterSeed,
			Replicates: r.replicates,
			Cells:      keys,
			Failed:     r.failed,
			Runs:       records,
		},
	}
}
