package fleet

import (
	"math"
	"sort"

	"github.com/nuwins/cellwheels/internal/stats"
)

// accumulator folds finished runs into per-cell replicate slots. Values
// are slot-addressed by (cell, metric, replicate), so the folded state —
// and everything derived from it — is independent of the order runs
// complete in, which is what makes the fleet report byte-identical for
// any worker count. Only the flat metric maps are retained; the runs'
// datasets are archived or discarded by the RunFunc before folding.
type accumulator struct {
	cells []Cell
	reps  int
	index map[string]int // cell key → position in cells
	// values[cell][metric] is a replicate-indexed slice. Slots of failed
	// or metric-less runs stay NaN and are dropped by the five-number
	// summaries.
	values []map[string][]float64
}

func newAccumulator(cells []Cell, reps int) *accumulator {
	a := &accumulator{
		cells:  cells,
		reps:   reps,
		index:  make(map[string]int, len(cells)),
		values: make([]map[string][]float64, len(cells)),
	}
	for i, c := range cells {
		a.index[c.Key] = i
		a.values[i] = map[string][]float64{}
	}
	return a
}

// fold stores one finished run's metrics in their replicate slots.
func (a *accumulator) fold(spec RunSpec, m Metrics) {
	slot := a.values[a.index[spec.Cell.Key]]
	for name, v := range m {
		vs, ok := slot[name]
		if !ok {
			vs = nanSlice(a.reps)
			slot[name] = vs
		}
		vs[spec.Replicate] = v
	}
}

func nanSlice(n int) []float64 {
	vs := make([]float64, n)
	for i := range vs {
		vs[i] = math.NaN()
	}
	return vs
}

// CellSummary is the cross-replicate statistics of one sweep cell.
type CellSummary struct {
	Cell Cell
	// OK counts the cell's replicates that completed.
	OK int
	// Metrics holds one five-number summary per metric, in report order.
	Metrics []MetricSummary
}

// MetricSummary is one metric's five-number summary across a cell's
// replicates.
type MetricSummary struct {
	Name string
	// N counts the replicates that produced a finite value.
	N                          int
	Median, P25, P75, Min, Max float64
}

// summarize reduces the slots to per-metric five-number summaries. Each
// cell's metrics follow order first, then any remaining names sorted, so
// the report layout is deterministic whatever order runs finished in.
func (a *accumulator) summarize(order []string, okByCell []int) []CellSummary {
	out := make([]CellSummary, len(a.cells))
	for i, c := range a.cells {
		slot := a.values[i]
		cs := CellSummary{Cell: c, OK: okByCell[i]}
		for _, name := range orderedNames(slot, order) {
			vs := slot[name]
			med, p25, p75, lo, hi := stats.FiveNum(vs)
			n := 0
			for _, v := range vs {
				if !math.IsNaN(v) {
					n++
				}
			}
			cs.Metrics = append(cs.Metrics, MetricSummary{
				Name: name, N: n,
				Median: med, P25: p25, P75: p75, Min: lo, Max: hi,
			})
		}
		out[i] = cs
	}
	return out
}

// orderedNames lists slot's metric names: those in order first (in that
// order), the rest sorted.
func orderedNames(slot map[string][]float64, order []string) []string {
	used := make(map[string]bool, len(order))
	var names []string
	for _, n := range order {
		if _, ok := slot[n]; ok && !used[n] {
			names = append(names, n)
			used[n] = true
		}
	}
	var rest []string
	for n := range slot {
		if !used[n] {
			rest = append(rest, n)
		}
	}
	sort.Strings(rest)
	return append(names, rest...)
}
