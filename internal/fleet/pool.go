package fleet

import (
	"fmt"
	"runtime"
	"sync"
)

// outcome pairs a finished run with what happened to it.
type outcome struct {
	spec RunSpec
	res  RunResult
	err  error
}

// runAll executes every spec through fn on a pool of at most workers
// goroutines and streams finished runs into collect on a single
// goroutine (the caller's), in completion order. collect therefore needs
// no locking; everything it folds into must be slot-addressed so the
// completion order cannot show in the output.
func runAll(specs []RunSpec, workers int, fn RunFunc, start func(RunSpec), collect func(RunSpec, RunResult, error)) {
	if len(specs) == 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(specs) {
		workers = len(specs)
	}

	jobs := make(chan RunSpec)
	results := make(chan outcome)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for spec := range jobs {
				res, err := safeRun(spec, fn, start)
				results <- outcome{spec: spec, res: res, err: err}
			}
		}()
	}
	go func() {
		for _, s := range specs {
			jobs <- s
		}
		close(jobs)
		wg.Wait()
		close(results)
	}()
	for o := range results {
		collect(o.spec, o.res, o.err)
	}
}

// safeRun invokes one run with panic containment: a panicking run is
// converted into an error attributed to that run, so a single failure
// never takes down the pool or its sibling runs. The recovered value is
// rendered without a stack trace — goroutine ids and addresses would
// make the manifest nondeterministic.
func safeRun(spec RunSpec, fn RunFunc, start func(RunSpec)) (res RunResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			res = RunResult{}
			err = fmt.Errorf("fleet: run panicked: %v", r)
		}
	}()
	if start != nil {
		start(spec)
	}
	return fn(spec)
}
