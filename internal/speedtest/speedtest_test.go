package speedtest

import (
	"testing"
	"time"

	"github.com/nuwins/cellwheels/internal/deploy"
	"github.com/nuwins/cellwheels/internal/geo"
	"github.com/nuwins/cellwheels/internal/radio"
	"github.com/nuwins/cellwheels/internal/simrand"
)

func crowdFor(t *testing.T, op radio.Operator, samples int, seed int64) []Result {
	t.Helper()
	route := geo.DefaultRoute()
	rng := simrand.New(seed)
	m := deploy.NewMap(op, route, rng)
	cfg := DefaultConfig()
	cfg.Samples = samples
	cfg.TestDuration = 6 * time.Second
	return Crowd(route, m, cfg, rng)
}

func TestCrowdProducesResults(t *testing.T) {
	results := crowdFor(t, radio.TMobile, 30, 1)
	if len(results) != 30 {
		t.Fatalf("results = %d", len(results))
	}
	for i, r := range results {
		if r.DLMbps < 0 || r.ULMbps < 0 {
			t.Fatalf("result %d: negative throughput %+v", i, r)
		}
		if r.RTTMS <= 0 || r.RTTMS > 3100 {
			t.Errorf("result %d: RTT %v", i, r.RTTMS)
		}
	}
}

func TestCrowdStaticBeatsDrivingScale(t *testing.T) {
	// Static crowd medians land well above the paper's driving medians —
	// the Table 3 signature. Driving DL medians are ~20-35 Mbps; the
	// static crowd should be far higher.
	results := crowdFor(t, radio.TMobile, 60, 2)
	sum := Summarize(results)
	if sum.DL.Median < 40 {
		t.Errorf("crowd DL median = %v Mbps, want well above driving levels", sum.DL.Median)
	}
	if sum.DL.Median <= sum.UL.Median {
		t.Error("DL median not above UL median")
	}
	// Nearby servers: RTT below the driving medians (60-76 ms).
	if sum.RTT.Median >= 65 {
		t.Errorf("crowd RTT median = %v ms, want below driving levels", sum.RTT.Median)
	}
}

func TestCrowdUrbanBias(t *testing.T) {
	results := crowdFor(t, radio.Verizon, 80, 3)
	counts := map[geo.Region]int{}
	for _, r := range results {
		counts[r.Region]++
	}
	if counts[geo.Urban]+counts[geo.Suburban] <= counts[geo.Highway] {
		t.Errorf("crowd not urban-biased: %v", counts)
	}
}

func TestCrowdDeterministic(t *testing.T) {
	a := crowdFor(t, radio.ATT, 10, 42)
	b := crowdFor(t, radio.ATT, 10, 42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("result %d diverged", i)
		}
	}
}

func TestSummarizeEmpty(t *testing.T) {
	sum := Summarize(nil)
	if sum.DL.N != 0 || sum.RTT.N != 0 {
		t.Errorf("summary of nothing = %+v", sum)
	}
}

func TestConfigDefaults(t *testing.T) {
	var cfg Config
	cfg.applyDefaults()
	if cfg.Samples != 120 || cfg.Flows != 4 {
		t.Errorf("defaults = %+v", cfg)
	}
}

func TestItoa(t *testing.T) {
	for i, want := range map[int]string{0: "0", 7: "7", 42: "42", 119: "119"} {
		if got := itoa(i); got != want {
			t.Errorf("itoa(%d) = %q", i, got)
		}
	}
}
