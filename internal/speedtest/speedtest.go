// Package speedtest simulates the crowdsourced static measurements the
// paper compares against in Table 3 (Ookla SpeedTest, Q3 2022). The
// methodology differs from the drive tests in exactly the ways §5.6
// lists: users are static (mostly in towns and cities), the app picks a
// server close to the user, and it opens multiple parallel TCP
// connections to measure peak bandwidth rather than single-flow
// application throughput.
//
// Running this alongside a campaign turns Table 3's published-constants
// column into a measured one, with both sides produced by the same
// radio and transport substrates.
package speedtest

import (
	"time"

	"github.com/nuwins/cellwheels/internal/deploy"
	"github.com/nuwins/cellwheels/internal/geo"
	"github.com/nuwins/cellwheels/internal/radio"
	"github.com/nuwins/cellwheels/internal/ran"
	"github.com/nuwins/cellwheels/internal/simrand"
	"github.com/nuwins/cellwheels/internal/stats"
	"github.com/nuwins/cellwheels/internal/transport"
	"github.com/nuwins/cellwheels/internal/unit"
)

// Config parameterizes the crowd simulation.
type Config struct {
	// Samples is the number of crowd measurements per operator.
	Samples int
	// Flows is the number of parallel TCP connections per test
	// (SpeedTest uses several; the drive tests used one).
	Flows int
	// TestDuration is the length of each direction's transfer.
	TestDuration time.Duration
	// ServerRTT is the base RTT to the nearby test server SpeedTest
	// selects; small because the server is close.
	ServerRTT time.Duration
}

// DefaultConfig mirrors the characteristics §5.6 attributes to the app.
func DefaultConfig() Config {
	return Config{
		Samples:      120,
		Flows:        4,
		TestDuration: 12 * time.Second,
		ServerRTT:    9 * time.Millisecond,
	}
}

func (c *Config) applyDefaults() {
	d := DefaultConfig()
	if c.Samples <= 0 {
		c.Samples = d.Samples
	}
	if c.Flows <= 0 {
		c.Flows = d.Flows
	}
	if c.TestDuration <= 0 {
		c.TestDuration = d.TestDuration
	}
	if c.ServerRTT <= 0 {
		c.ServerRTT = d.ServerRTT
	}
}

// Result is one crowd measurement.
type Result struct {
	Op     radio.Operator
	DLMbps float64
	ULMbps float64
	RTTMS  float64
	Tech   radio.Technology
	Region geo.Region
}

// Summary aggregates one operator's crowd results.
type Summary struct {
	DL  stats.Summary
	UL  stats.Summary
	RTT stats.Summary
}

// tick matches the campaign's simulation step.
const tick = 50 * time.Millisecond

// Crowd runs the crowd simulation over an operator's deployment.
// Positions are drawn where crowdsourced users actually live: mostly
// cities and towns, rarely on the interstate.
func Crowd(route *geo.Route, m *deploy.Map, cfg Config, rng *simrand.Source) []Result {
	cfg.applyDefaults()
	src := rng.Fork("speedtest/" + m.Op.Short())
	results := make([]Result, 0, cfg.Samples)
	for i := 0; i < cfg.Samples; i++ {
		pos := drawPosition(route, src)
		results = append(results, measure(route, m, cfg, pos, crowdAnchor(), src.Fork(itoa(i)), nil))
	}
	return results
}

// crowdAnchor is the fixed instant the sampled (post-hoc) crowd measures
// at: early evening during the drive window, when crowdsourced tests
// cluster.
func crowdAnchor() time.Time {
	return time.Date(2022, 8, 12, 18, 0, 0, 0, time.UTC)
}

// MeasureAt runs one crowd-style measurement — a DL transfer, a UL
// transfer, and a ping burst over parallel flows — at a fixed position
// and instant. A non-nil load backend replaces the per-UE load stand-in,
// which is how registry crowd UEs measure against the demand their own
// population generates.
func MeasureAt(route *geo.Route, m *deploy.Map, cfg Config, odo unit.Meters, now time.Time, src *simrand.Source, load ran.LoadBackend) Result {
	cfg.applyDefaults()
	return measure(route, m, cfg, odo, now, src, load)
}

// drawPosition samples an odometer position with a strong urban bias.
func drawPosition(route *geo.Route, src *simrand.Source) unit.Meters {
	for attempt := 0; attempt < 64; attempt++ {
		odo := unit.Meters(src.Uniform(0, float64(route.Total())))
		region := route.At(odo).Region
		accept := 0.08 // highway users are rare
		switch region {
		case geo.Urban:
			accept = 1.0
		case geo.Suburban:
			accept = 0.5
		}
		if src.Bool(accept) {
			return odo
		}
	}
	return unit.Meters(src.Uniform(0, float64(route.Total())))
}

// measure runs one user's DL transfer, UL transfer, and ping burst.
func measure(route *geo.Route, m *deploy.Map, cfg Config, odo unit.Meters, now time.Time, src *simrand.Source, load ran.LoadBackend) Result {
	wp := route.At(odo)
	ue := ran.NewUE(ran.UEConfig{Op: m.Op, Map: m, Load: load}, src)
	res := Result{Op: m.Op, Region: wp.Region}

	run := func(dir radio.Direction, traffic deploy.Traffic) float64 {
		ue.SetTraffic(traffic, now, wp)
		bond := transport.NewBond(cfg.Flows, src.Fork("flows/"+dir.String()), transport.Options{})
		caps := make([]unit.BitRate, cfg.Flows)
		rtts := make([]time.Duration, cfg.Flows)
		loss := make([]float64, cfg.Flows)
		var total unit.Bytes
		for elapsed := time.Duration(0); elapsed < cfg.TestDuration; elapsed += tick {
			st := ue.Step(now, wp, 0, tick)
			now = now.Add(tick)
			// Parallel connections share the same bottleneck evenly.
			share := unit.BitRate(float64(st.Capacity(dir)) / float64(cfg.Flows))
			base := cfg.ServerRTT + unit.DurationFromMS(radio.BaseRadioRTT(st.Tech))
			for f := 0; f < cfg.Flows; f++ {
				caps[f] = share
				rtts[f] = base
				loss[f] = st.BLER
			}
			total += bond.Step(tick, caps, rtts, loss).Delivered
		}
		res.Tech = ue.Tech()
		return total.RateOver(cfg.TestDuration).Mbps()
	}

	res.DLMbps = run(radio.Downlink, deploy.HeavyDL)
	res.ULMbps = run(radio.Uplink, deploy.HeavyUL)

	// Ping burst against the nearby server.
	pinger := transport.NewPinger(src.Fork("ping"))
	ue.SetTraffic(deploy.Idle, now, wp)
	var rtts []float64
	for elapsed := time.Duration(0); elapsed < 3*time.Second; elapsed += tick {
		st := ue.Step(now, wp, 0, tick)
		now = now.Add(tick)
		base := cfg.ServerRTT + unit.DurationFromMS(radio.BaseRadioRTT(st.Tech))
		for _, s := range pinger.Step(tick, st.CapacityDL, base, st.Load, st.InHandover) {
			if !s.Lost {
				rtts = append(rtts, unit.Milliseconds(s.RTT))
			}
		}
	}
	if len(rtts) > 0 {
		res.RTTMS = stats.NewCDF(rtts).Median()
	}
	return res
}

// Summarize aggregates results per metric.
func Summarize(results []Result) Summary {
	var dl, ul, rtt []float64
	for _, r := range results {
		dl = append(dl, r.DLMbps)
		ul = append(ul, r.ULMbps)
		if r.RTTMS > 0 {
			rtt = append(rtt, r.RTTMS)
		}
	}
	sum := Summary{}
	if s, err := stats.Summarize(dl); err == nil {
		sum.DL = s
	}
	if s, err := stats.Summarize(ul); err == nil {
		sum.UL = s
	}
	if s, err := stats.Summarize(rtt); err == nil {
		sum.RTT = s
	}
	return sum
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [8]byte
	n := len(buf)
	for i > 0 {
		n--
		buf[n] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[n:])
}
