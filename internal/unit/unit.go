// Package unit defines the physical quantities used throughout the
// simulator — data rates, signal power, frequencies, distances, and
// speeds — together with conversions between the units the paper mixes
// freely (Mbps and bytes, dBm and mW, miles and kilometers, mph and m/s).
//
// All quantities are thin named float64/int64 types so arithmetic stays
// cheap, but the names keep call sites honest about what a number means.
package unit

import (
	"fmt"
	"math"
	"time"
)

// BitRate is a data rate in bits per second.
type BitRate float64

// Common bit-rate scales.
const (
	BitPerSecond BitRate = 1
	Kbps                 = 1e3 * BitPerSecond
	Mbps                 = 1e6 * BitPerSecond
	Gbps                 = 1e9 * BitPerSecond
)

// Mbps reports the rate in megabits per second.
func (r BitRate) Mbps() float64 { return float64(r) / 1e6 }

// Gbps reports the rate in gigabits per second.
func (r BitRate) Gbps() float64 { return float64(r) / 1e9 }

// BytesIn reports how many whole bytes the rate delivers in d.
func (r BitRate) BytesIn(d time.Duration) Bytes {
	return Bytes(float64(r) * d.Seconds() / 8)
}

// String renders the rate with an adaptive scale suffix.
func (r BitRate) String() string {
	switch {
	case r >= Gbps:
		return fmt.Sprintf("%.2f Gbps", r.Gbps())
	case r >= Mbps:
		return fmt.Sprintf("%.2f Mbps", r.Mbps())
	case r >= Kbps:
		return fmt.Sprintf("%.2f Kbps", float64(r)/1e3)
	default:
		return fmt.Sprintf("%.0f bps", float64(r))
	}
}

// Bytes is a byte count.
type Bytes int64

// Common byte scales.
const (
	Byte Bytes = 1
	KB         = 1000 * Byte
	MB         = 1000 * KB
	GB         = 1000 * MB
)

// Bits reports the count in bits.
func (b Bytes) Bits() float64 { return float64(b) * 8 }

// MB reports the count in (decimal) megabytes.
func (b Bytes) MB() float64 { return float64(b) / 1e6 }

// GB reports the count in (decimal) gigabytes.
func (b Bytes) GB() float64 { return float64(b) / 1e9 }

// RateOver reports the average rate needed to move b bytes in d.
func (b Bytes) RateOver(d time.Duration) BitRate {
	if d <= 0 {
		return 0
	}
	return BitRate(b.Bits() / d.Seconds())
}

// String renders the count with an adaptive scale suffix.
func (b Bytes) String() string {
	switch {
	case b >= GB:
		return fmt.Sprintf("%.2f GB", b.GB())
	case b >= MB:
		return fmt.Sprintf("%.2f MB", b.MB())
	case b >= KB:
		return fmt.Sprintf("%.2f KB", float64(b)/1e3)
	default:
		return fmt.Sprintf("%d B", int64(b))
	}
}

// DBm is signal power in decibel-milliwatts (RSRP, TX power).
type DBm float64

// MilliWatts converts from the logarithmic to the linear domain.
func (p DBm) MilliWatts() float64 { return math.Pow(10, float64(p)/10) }

// DBmFromMilliWatts converts linear milliwatts to dBm.
func DBmFromMilliWatts(mw float64) DBm {
	if mw <= 0 {
		return DBm(math.Inf(-1))
	}
	return DBm(10 * math.Log10(mw))
}

// DB is a dimensionless power ratio in decibels (path loss, SINR, gain).
type DB float64

// Linear converts the ratio to the linear domain.
func (g DB) Linear() float64 { return math.Pow(10, float64(g)/10) }

// DBFromLinear converts a linear ratio to decibels.
func DBFromLinear(x float64) DB {
	if x <= 0 {
		return DB(math.Inf(-1))
	}
	return DB(10 * math.Log10(x))
}

// MHz is a frequency or bandwidth in megahertz.
type MHz float64

// Hz reports the frequency in hertz.
func (f MHz) Hz() float64 { return float64(f) * 1e6 }

// GHz reports the frequency in gigahertz.
func (f MHz) GHz() float64 { return float64(f) / 1e3 }

// Meters is a distance in meters.
type Meters float64

// Common distances.
const (
	Meter     Meters = 1
	Kilometer        = 1000 * Meter
	Mile             = 1609.344 * Meter
)

// Km reports the distance in kilometers.
func (m Meters) Km() float64 { return float64(m) / 1000 }

// Miles reports the distance in statute miles.
func (m Meters) Miles() float64 { return float64(m) / float64(Mile) }

// String renders the distance with an adaptive scale suffix.
func (m Meters) String() string {
	if m >= Kilometer {
		return fmt.Sprintf("%.2f km", m.Km())
	}
	return fmt.Sprintf("%.1f m", float64(m))
}

// MetersPerSecond is a speed.
type MetersPerSecond float64

// MPH reports the speed in miles per hour.
func (v MetersPerSecond) MPH() float64 { return float64(v) * 3600 / float64(Mile) }

// KPH reports the speed in kilometers per hour.
func (v MetersPerSecond) KPH() float64 { return float64(v) * 3.6 }

// SpeedFromMPH converts miles per hour to meters per second.
func SpeedFromMPH(mph float64) MetersPerSecond {
	return MetersPerSecond(mph * float64(Mile) / 3600)
}

// DistanceIn reports how far the speed carries in d.
func (v MetersPerSecond) DistanceIn(d time.Duration) Meters {
	return Meters(float64(v) * d.Seconds())
}

// Milliseconds renders a duration as fractional milliseconds, the unit
// the paper reports RTTs and handover durations in.
func Milliseconds(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// DurationFromMS builds a duration from fractional milliseconds.
func DurationFromMS(ms float64) time.Duration {
	return time.Duration(ms * float64(time.Millisecond))
}

// Clamp bounds x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	switch {
	case x < lo:
		return lo
	case x > hi:
		return hi
	default:
		return x
	}
}
