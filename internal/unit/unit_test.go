package unit

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestBitRateConversions(t *testing.T) {
	r := 100 * Mbps
	if got := r.Mbps(); got != 100 {
		t.Errorf("Mbps() = %v, want 100", got)
	}
	if got := r.Gbps(); got != 0.1 {
		t.Errorf("Gbps() = %v, want 0.1", got)
	}
	if got := (2.5 * Gbps).Mbps(); got != 2500 {
		t.Errorf("Gbps→Mbps = %v, want 2500", got)
	}
}

func TestBitRateBytesIn(t *testing.T) {
	// 8 Mbps for one second delivers exactly 1 MB.
	if got := (8 * Mbps).BytesIn(time.Second); got != 1*MB {
		t.Errorf("BytesIn = %v, want 1 MB", got)
	}
	// Half a second halves the bytes.
	if got := (8 * Mbps).BytesIn(500 * time.Millisecond); got != 500*KB {
		t.Errorf("BytesIn(500ms) = %v, want 500 KB", got)
	}
}

func TestBitRateString(t *testing.T) {
	cases := []struct {
		r    BitRate
		want string
	}{
		{1.5 * Gbps, "1.50 Gbps"},
		{30 * Mbps, "30.00 Mbps"},
		{64 * Kbps, "64.00 Kbps"},
		{500, "500 bps"},
	}
	for _, c := range cases {
		if got := c.r.String(); got != c.want {
			t.Errorf("String(%v bps) = %q, want %q", float64(c.r), got, c.want)
		}
	}
}

func TestBytesRateOver(t *testing.T) {
	if got := (1 * MB).RateOver(time.Second); got != 8*Mbps {
		t.Errorf("RateOver = %v, want 8 Mbps", got)
	}
	if got := (1 * MB).RateOver(0); got != 0 {
		t.Errorf("RateOver(0) = %v, want 0", got)
	}
	if got := (1 * MB).RateOver(-time.Second); got != 0 {
		t.Errorf("RateOver(neg) = %v, want 0", got)
	}
}

func TestBytesString(t *testing.T) {
	if got := (777 * GB).String(); got != "777.00 GB" {
		t.Errorf("GB String = %q", got)
	}
	if got := (2 * MB).String(); got != "2.00 MB" {
		t.Errorf("MB String = %q", got)
	}
	if got := (38 * KB).String(); got != "38.00 KB" {
		t.Errorf("KB String = %q", got)
	}
	if got := (12 * Byte).String(); got != "12 B" {
		t.Errorf("B String = %q", got)
	}
}

func TestDBmRoundTrip(t *testing.T) {
	f := func(p float64) bool {
		if math.Abs(p) > 200 {
			return true // outside physical range; skip
		}
		back := DBmFromMilliWatts(DBm(p).MilliWatts())
		return math.Abs(float64(back)-p) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDBmFromMilliWattsNonPositive(t *testing.T) {
	if got := DBmFromMilliWatts(0); !math.IsInf(float64(got), -1) {
		t.Errorf("DBmFromMilliWatts(0) = %v, want -Inf", got)
	}
	if got := DBmFromMilliWatts(-1); !math.IsInf(float64(got), -1) {
		t.Errorf("DBmFromMilliWatts(-1) = %v, want -Inf", got)
	}
}

func TestDBLinearRoundTrip(t *testing.T) {
	f := func(g float64) bool {
		if math.Abs(g) > 200 {
			return true
		}
		back := DBFromLinear(DB(g).Linear())
		return math.Abs(float64(back)-g) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDBKnownValues(t *testing.T) {
	if got := DB(3).Linear(); math.Abs(got-1.9953) > 1e-3 {
		t.Errorf("3 dB linear = %v, want ≈1.995", got)
	}
	if got := DB(10).Linear(); math.Abs(got-10) > 1e-9 {
		t.Errorf("10 dB linear = %v, want 10", got)
	}
	if got := DBFromLinear(100); math.Abs(float64(got)-20) > 1e-9 {
		t.Errorf("linear 100 = %v dB, want 20", got)
	}
}

func TestFrequency(t *testing.T) {
	f := MHz(28000)
	if got := f.GHz(); got != 28 {
		t.Errorf("GHz = %v, want 28", got)
	}
	if got := MHz(100).Hz(); got != 1e8 {
		t.Errorf("Hz = %v, want 1e8", got)
	}
}

func TestDistances(t *testing.T) {
	if got := (5 * Kilometer).Km(); got != 5 {
		t.Errorf("Km = %v, want 5", got)
	}
	if got := Mile.Km(); math.Abs(got-1.609344) > 1e-9 {
		t.Errorf("Mile in km = %v", got)
	}
	if got := (10 * Mile).Miles(); math.Abs(got-10) > 1e-9 {
		t.Errorf("Miles = %v, want 10", got)
	}
}

func TestMetersString(t *testing.T) {
	if got := (1500 * Meter).String(); got != "1.50 km" {
		t.Errorf("String = %q", got)
	}
	if !strings.HasSuffix((42 * Meter).String(), " m") {
		t.Errorf("String = %q, want meter suffix", (42 * Meter).String())
	}
}

func TestSpeedConversions(t *testing.T) {
	v := SpeedFromMPH(60)
	if got := v.MPH(); math.Abs(got-60) > 1e-9 {
		t.Errorf("MPH round trip = %v, want 60", got)
	}
	if got := v.KPH(); math.Abs(got-96.56064) > 1e-4 {
		t.Errorf("60 mph in kph = %v, want ≈96.56", got)
	}
	// 60 mph covers exactly one mile in a minute.
	if got := v.DistanceIn(time.Minute).Miles(); math.Abs(got-1) > 1e-9 {
		t.Errorf("distance in 1 min = %v miles, want 1", got)
	}
}

func TestSpeedRoundTripProperty(t *testing.T) {
	f := func(mph float64) bool {
		if mph < 0 || mph > 1000 {
			return true
		}
		return math.Abs(SpeedFromMPH(mph).MPH()-mph) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMilliseconds(t *testing.T) {
	if got := Milliseconds(61 * time.Millisecond); got != 61 {
		t.Errorf("Milliseconds = %v, want 61", got)
	}
	if got := DurationFromMS(53); got != 53*time.Millisecond {
		t.Errorf("DurationFromMS = %v", got)
	}
	if got := Milliseconds(DurationFromMS(76.5)); math.Abs(got-76.5) > 1e-6 {
		t.Errorf("round trip = %v, want 76.5", got)
	}
}

func TestClamp(t *testing.T) {
	cases := []struct{ x, lo, hi, want float64 }{
		{5, 0, 10, 5},
		{-1, 0, 10, 0},
		{11, 0, 10, 10},
		{0, 0, 0, 0},
	}
	for _, c := range cases {
		if got := Clamp(c.x, c.lo, c.hi); got != c.want {
			t.Errorf("Clamp(%v,%v,%v) = %v, want %v", c.x, c.lo, c.hi, got, c.want)
		}
	}
}

func TestClampProperty(t *testing.T) {
	f := func(x float64) bool {
		got := Clamp(x, -1, 1)
		return got >= -1 && got <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
