package transport

import (
	"testing"
	"time"

	"github.com/nuwins/cellwheels/internal/simrand"
	"github.com/nuwins/cellwheels/internal/unit"
)

// TestPingerStepAllocs pins the hotalloc fix in Pinger.Step: samples are
// collected into a receiver-owned buffer, so the per-tick call allocates
// nothing once the buffer has grown to the window's sample count.
func TestPingerStepAllocs(t *testing.T) {
	p := NewPinger(simrand.New(3))
	dt := 50 * time.Millisecond
	for i := 0; i < 100; i++ {
		p.Step(dt, 100*unit.Mbps, 30*time.Millisecond, 0.3, false)
	}
	avg := testing.AllocsPerRun(500, func() {
		p.Step(dt, 100*unit.Mbps, 30*time.Millisecond, 0.3, false)
	})
	if avg != 0 {
		t.Errorf("steady-state Pinger.Step allocates %.2f objects per call, want 0", avg)
	}
}
