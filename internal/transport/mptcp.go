package transport

import (
	"time"

	"github.com/nuwins/cellwheels/internal/simrand"
	"github.com/nuwins/cellwheels/internal/unit"
)

// Bond is an MPTCP-style multi-connectivity transfer over several
// cellular paths at once — the solution the paper recommends smartphone
// vendors explore (§8-(2), citing RAVEN and 5G link aggregation over
// MPTCP). Each path runs its own congestion-controlled subflow; the
// receiver reassembles in order, so goodput is the sum of subflow
// deliveries discounted by a head-of-line penalty that grows with the
// RTT spread between the paths.
type Bond struct {
	flows []*Flow
}

// NewBond creates a bond with one subflow per path.
func NewBond(paths int, rng *simrand.Source, opts Options) *Bond {
	b := &Bond{}
	for i := 0; i < paths; i++ {
		b.flows = append(b.flows, NewFlowOptions(rng.Fork(pathName(i)), opts))
	}
	return b
}

func pathName(i int) string {
	return "mptcp/path" + string(rune('0'+i%10))
}

// Paths reports the number of subflows.
func (b *Bond) Paths() int { return len(b.flows) }

// BondResult reports one tick of the bond.
type BondResult struct {
	// Delivered is the in-order goodput this tick, after the
	// reassembly discount.
	Delivered unit.Bytes
	// PerPath is each subflow's raw delivery.
	PerPath []unit.Bytes
	// Efficiency is the reassembly factor applied this tick, in (0, 1].
	Efficiency float64
}

// Step advances every subflow by dt. The slices must have one entry per
// path; missing entries are treated as dead paths.
func (b *Bond) Step(dt time.Duration, capacities []unit.BitRate, baseRTTs []time.Duration, extraLoss []float64) BondResult {
	res := BondResult{PerPath: make([]unit.Bytes, len(b.flows)), Efficiency: 1}
	var total unit.Bytes
	minRTT, maxRTT := time.Duration(1<<62), time.Duration(0)
	active := 0
	for i, f := range b.flows {
		var c unit.BitRate
		var rtt time.Duration = 50 * time.Millisecond
		var loss float64
		if i < len(capacities) {
			c = capacities[i]
		}
		if i < len(baseRTTs) {
			rtt = baseRTTs[i]
		}
		if i < len(extraLoss) {
			loss = extraLoss[i]
		}
		r := f.Step(dt, c, rtt, loss)
		res.PerPath[i] = r.Delivered
		total += r.Delivered
		if r.Delivered > 0 {
			active++
			if r.RTT < minRTT {
				minRTT = r.RTT
			}
			if r.RTT > maxRTT {
				maxRTT = r.RTT
			}
		}
	}
	if active > 1 && maxRTT > 0 {
		// Head-of-line blocking at the reassembly buffer: a path whose
		// RTT is far above the fastest path's delays in-order delivery.
		spread := float64(maxRTT-minRTT) / float64(maxRTT)
		res.Efficiency = 1 - 0.3*spread
	}
	res.Delivered = unit.Bytes(float64(total) * res.Efficiency)
	return res
}
