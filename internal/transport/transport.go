// Package transport simulates the end-to-end transport behaviour the
// paper measures: a single nuttcp-style bulk TCP flow under CUBIC
// congestion control (§5's methodology) riding a time-varying cellular
// link, and the ICMP ping process used for RTT tests.
//
// The TCP model is a fluid approximation stepped at the simulation tick:
// the congestion window grows by CUBIC's cubic function (slow start before
// the first loss), traffic drains through a droptail bottleneck buffer
// sized as a multiple of the bandwidth-delay product — which is what
// inflates driving RTTs to the multi-second maxima the paper reports —
// and losses come from buffer overflow plus a residual link-layer loss
// floor. Handovers and deep fades show up as capacity collapses that the
// window needs several RTTs to recover from; that recovery sluggishness
// is a large part of why measured driving throughput sits so far below
// link capacity.
package transport

import (
	"math"
	"time"

	"github.com/nuwins/cellwheels/internal/simrand"
	"github.com/nuwins/cellwheels/internal/unit"
)

// MSS is the TCP maximum segment size in bytes.
const MSS = 1448

// MaxRTT caps every reported round-trip time, flow and pinger alike, at
// the paper's observed 3 s driving maxima: beyond that real stacks time
// out rather than report ever-larger RTTs.
const MaxRTT = 3 * time.Second

// CUBIC constants (RFC 8312).
const (
	cubicC    = 0.4 // scaling constant, MSS/s³
	cubicBeta = 0.7 // multiplicative decrease factor
)

// Options tunes the path model. The zero value takes defaults.
type Options struct {
	// BufferBDPs sizes the droptail bottleneck buffer as a multiple of
	// the bandwidth-delay product. Cellular bottlenecks are famously
	// overbuffered; the default of 6 produces the paper's multi-second
	// driving RTT tails. The bufferbloat ablation bench sweeps this.
	BufferBDPs float64
	// MinBuffer is the buffer floor in bytes.
	MinBuffer float64
}

func (o *Options) applyDefaults() {
	if o.BufferBDPs <= 0 {
		o.BufferBDPs = 6.0
	}
	if o.MinBuffer <= 0 {
		o.MinBuffer = 96 * 1024
	}
}

// Flow is one bulk TCP transfer.
type Flow struct {
	rng  *simrand.Source
	opts Options

	cwnd     float64 // bytes
	ssthresh float64 // bytes
	wmax     float64 // bytes at last loss
	epoch    float64 // seconds since last loss
	queue    float64 // bytes in the bottleneck buffer

	lastRTT time.Duration
}

// NewFlow starts a flow in slow start with the standard 10-MSS initial
// window and default path options.
func NewFlow(rng *simrand.Source) *Flow {
	return NewFlowOptions(rng, Options{})
}

// NewFlowOptions starts a flow with explicit path options.
func NewFlowOptions(rng *simrand.Source, opts Options) *Flow {
	opts.applyDefaults()
	return &Flow{
		rng:      rng.Fork("tcp"),
		opts:     opts,
		cwnd:     10 * MSS,
		ssthresh: math.Inf(1),
		lastRTT:  50 * time.Millisecond,
	}
}

// StepResult reports what one tick of the flow produced.
type StepResult struct {
	// Delivered is the application-layer bytes that arrived this tick.
	Delivered unit.Bytes
	// RTT is the smoothed round-trip time including queueing delay.
	RTT time.Duration
	// Lost reports whether a loss event (backoff) happened this tick.
	Lost bool
}

// Step advances the flow by dt over a link with the given instantaneous
// capacity and base (unloaded) RTT. A capacity of zero models a handover
// or outage: nothing drains, and the queue holds.
func (f *Flow) Step(dt time.Duration, capacity unit.BitRate, baseRTT time.Duration, extraLoss float64) StepResult {
	seconds := dt.Seconds()
	capBps := float64(capacity) / 8 // bytes per second

	// Queueing delay rides on top of the base RTT.
	rtt := baseRTT
	if capBps > 0 {
		rtt += time.Duration(f.queue / capBps * float64(time.Second))
	} else if f.queue > 0 {
		// Outage: the queue is stuck; report inflated RTT against the
		// last known service rate. Capped: lastRTT feeds back into rtt
		// (and rtt into lastRTT below), so without a ceiling a
		// multi-second zero-capacity window doubles the reported RTT
		// every tick without bound. MaxRTT matches the pinger's 3 s
		// ceiling — the largest RTT any instrument in the testbed reports.
		rtt += f.lastRTT
	}
	if rtt < time.Millisecond {
		rtt = time.Millisecond
	}
	if rtt > MaxRTT {
		rtt = MaxRTT
	}
	f.lastRTT = rtt

	// Fluid arrival and service.
	arrival := f.cwnd / rtt.Seconds() * seconds
	inflow := arrival + f.queue
	service := capBps * seconds
	out := math.Min(inflow, service)
	f.queue = inflow - out

	res := StepResult{Delivered: unit.Bytes(out), RTT: rtt}

	// Droptail overflow.
	buffer := math.Max(f.opts.BufferBDPs*capBps*baseRTT.Seconds(), f.opts.MinBuffer)
	lost := false
	if f.queue > buffer {
		f.queue = buffer
		lost = true
	}
	// Residual link loss that HARQ did not repair. The event rate is per
	// wall-clock second (link-layer loss is a property of the radio, not
	// of the flow's round-trip time): a per-RTT rate would starve
	// short-RTT, high-bandwidth paths, whose CUBIC recovery is wall-clock.
	if !lost && capBps > 0 {
		perSec := 0.02 + 0.55*unit.Clamp(extraLoss, 0, 1)
		if f.rng.Bool(perSec * seconds) {
			lost = true
		}
	}

	if lost {
		f.wmax = f.cwnd
		f.cwnd = math.Max(2*MSS, f.cwnd*cubicBeta)
		f.ssthresh = f.cwnd
		f.epoch = 0
		res.Lost = true
		return res
	}

	// Window growth.
	if f.cwnd < f.ssthresh {
		// Slow start: double per RTT.
		f.cwnd += f.cwnd * seconds / rtt.Seconds()
		if f.cwnd > f.ssthresh {
			f.cwnd = f.ssthresh
		}
	} else {
		f.epoch += seconds
		// RFC 8312's TCP-friendly region, simplified: growth never falls
		// below Reno's one MSS per RTT, which is what rescues tiny
		// windows after an early loss (pure cubic growth from a small
		// Wmax is glacial).
		reno := f.cwnd + MSS*seconds/rtt.Seconds()
		f.cwnd = math.Max(f.cubicWindow(), reno)
	}
	// The window never grows far past what the path can use; cap at
	// buffer + BDP to keep the fluid model stable.
	if capBps > 0 {
		bdp := capBps * baseRTT.Seconds()
		limit := math.Max(bdp+buffer, 4*MSS)
		if f.cwnd > limit {
			f.cwnd = limit
		}
	}
	if f.cwnd < 2*MSS {
		f.cwnd = 2 * MSS
	}
	return res
}

// cubicWindow evaluates W(t) = C(t−K)³ + Wmax in bytes.
func (f *Flow) cubicWindow() float64 {
	wmaxMSS := f.wmax / MSS
	if wmaxMSS < 1 {
		wmaxMSS = 1
	}
	k := math.Cbrt(wmaxMSS * (1 - cubicBeta) / cubicC)
	t := f.epoch - k
	w := cubicC*t*t*t + wmaxMSS
	grown := w * MSS
	if grown < f.cwnd {
		// CUBIC never shrinks the window during avoidance.
		return f.cwnd
	}
	return grown
}

// Window reports the current congestion window in bytes, for tests and
// diagnostics.
func (f *Flow) Window() float64 { return f.cwnd }

// Queue reports the bytes currently sitting in the bottleneck buffer.
func (f *Flow) Queue() float64 { return f.queue }

// Pinger is the ICMP RTT test process: one 38-byte echo every 200 ms
// (§3's handover-logger traffic and §5's RTT tests).
type Pinger struct {
	rng      *simrand.Source
	interval time.Duration
	since    time.Duration
	// buf backs Step's result between calls so the per-tick path does not
	// grow a fresh slice; see Step's aliasing note.
	buf []PingSample
}

// PingInterval is the paper's probing interval.
const PingInterval = 200 * time.Millisecond

// NewPinger returns a pinger on the paper's 200 ms schedule.
func NewPinger(rng *simrand.Source) *Pinger {
	return &Pinger{rng: rng.Fork("ping"), interval: PingInterval}
}

// PingSample is one echo result.
type PingSample struct {
	RTT  time.Duration
	Lost bool
}

// Step advances the pinger by dt and returns any samples due in that
// window. capacity and baseRTT describe the link at this instant;
// inHandover marks the handover execution window, during which echoes are
// delayed by the remaining interruption or lost.
//
// The returned slice aliases an internal buffer and is only valid until
// the next Step call; callers consume it immediately (the phone folds
// samples into its RTT series on the spot).
func (p *Pinger) Step(dt time.Duration, capacity unit.BitRate, baseRTT time.Duration, load float64, inHandover bool) []PingSample {
	p.since += dt
	p.buf = p.buf[:0]
	for p.since >= p.interval {
		p.since -= p.interval
		p.buf = append(p.buf, p.sample(capacity, baseRTT, load, inHandover))
	}
	return p.buf
}

func (p *Pinger) sample(capacity unit.BitRate, baseRTT time.Duration, load float64, inHandover bool) PingSample {
	if inHandover {
		if p.rng.Bool(0.3) {
			return PingSample{Lost: true}
		}
		return PingSample{RTT: baseRTT + unit.DurationFromMS(p.rng.Uniform(30, 120))}
	}
	rtt := float64(baseRTT) / float64(time.Millisecond)
	// Scheduling delay grows with cell load.
	rtt += p.rng.Uniform(0, 28) * (0.4 + load)
	// Jitter floor.
	rtt += p.rng.LogNormalMedian(6, 0.8)
	switch {
	case capacity <= 0:
		return PingSample{Lost: true}
	case capacity < 2*unit.Mbps:
		// Deep fade: heavy retransmission delay, sometimes seconds —
		// the source of the paper's 2–3 s driving RTT maxima.
		rtt += p.rng.LogNormalMedian(250, 1.0)
		if p.rng.Bool(0.15) {
			return PingSample{Lost: true}
		}
	case capacity < 20*unit.Mbps:
		if p.rng.Bool(0.25) {
			rtt += p.rng.LogNormalMedian(40, 0.8)
		}
	}
	if ceil := unit.Milliseconds(MaxRTT); rtt > ceil {
		rtt = ceil
	}
	return PingSample{RTT: unit.DurationFromMS(rtt)}
}
