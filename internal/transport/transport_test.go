package transport

import (
	"testing"
	"time"

	"github.com/nuwins/cellwheels/internal/simrand"
	"github.com/nuwins/cellwheels/internal/unit"
)

const tick = 50 * time.Millisecond

// runFlow drives a flow over a constant link and reports mean goodput.
func runFlow(f *Flow, capacity unit.BitRate, rtt time.Duration, span time.Duration) unit.BitRate {
	var delivered unit.Bytes
	n := int(span / tick)
	for i := 0; i < n; i++ {
		r := f.Step(tick, capacity, rtt, 0)
		delivered += r.Delivered
	}
	return delivered.RateOver(span)
}

func TestFlowUtilizesStableLink(t *testing.T) {
	f := NewFlow(simrand.New(1))
	got := runFlow(f, 100*unit.Mbps, 40*time.Millisecond, 30*time.Second)
	if got < 55*unit.Mbps {
		t.Errorf("goodput on stable 100 Mbps link = %v, want > 55 Mbps", got)
	}
	if got > 100*unit.Mbps {
		t.Errorf("goodput %v exceeds capacity", got)
	}
}

func TestFlowNeverExceedsCapacity(t *testing.T) {
	f := NewFlow(simrand.New(2))
	capacity := 20 * unit.Mbps
	var delivered unit.Bytes
	for i := 0; i < 2000; i++ {
		r := f.Step(tick, capacity, 60*time.Millisecond, 0)
		delivered += r.Delivered
		perTick := capacity.BytesIn(tick)
		if r.Delivered > perTick+1 {
			t.Fatalf("tick delivered %v > capacity %v", r.Delivered, perTick)
		}
	}
	if delivered == 0 {
		t.Fatal("nothing delivered")
	}
}

func TestFlowSlowStartRampsQuickly(t *testing.T) {
	f := NewFlow(simrand.New(3))
	// After 2 seconds on a clean link, the window should be far above the
	// initial 10 MSS.
	runFlow(f, 200*unit.Mbps, 30*time.Millisecond, 2*time.Second)
	if f.Window() < 40*MSS {
		t.Errorf("window after slow start = %.0f bytes", f.Window())
	}
}

func TestFlowBacksOffOnLoss(t *testing.T) {
	f := NewFlow(simrand.New(4))
	runFlow(f, 100*unit.Mbps, 40*time.Millisecond, 5*time.Second)
	before := f.Window()
	// Force overflow by collapsing capacity: the queue fills and drops.
	sawLoss := false
	for i := 0; i < 400; i++ {
		r := f.Step(tick, 1*unit.Mbps, 40*time.Millisecond, 0)
		if r.Lost {
			sawLoss = true
			break
		}
	}
	if !sawLoss {
		t.Fatal("no loss after capacity collapse")
	}
	if f.Window() >= before {
		t.Errorf("window did not shrink: %.0f -> %.0f", before, f.Window())
	}
}

func TestFlowRecoversAfterOutage(t *testing.T) {
	f := NewFlow(simrand.New(5))
	runFlow(f, 100*unit.Mbps, 40*time.Millisecond, 5*time.Second)
	// 100 ms outage (a handover).
	f.Step(tick, 0, 40*time.Millisecond, 0)
	f.Step(tick, 0, 40*time.Millisecond, 0)
	after := runFlow(f, 100*unit.Mbps, 40*time.Millisecond, 5*time.Second)
	if after < 40*unit.Mbps {
		t.Errorf("post-outage goodput = %v", after)
	}
}

func TestFlowOutageRTTCapped(t *testing.T) {
	// Regression: the outage branch adds lastRTT to the reported RTT, and
	// the report feeds back into lastRTT — so before the MaxRTT cap a
	// multi-second zero-capacity window doubled the RTT every tick without
	// bound (50 ms → minutes within a simulated five seconds).
	f := NewFlow(simrand.New(8))
	runFlow(f, 50*unit.Mbps, 40*time.Millisecond, 3*time.Second)
	if f.Queue() == 0 {
		t.Fatal("no queue built before the outage; the test needs one")
	}
	prev := time.Duration(0)
	for i := 0; i < int(5*time.Second/tick); i++ {
		r := f.Step(tick, 0, 40*time.Millisecond, 0)
		if r.RTT > MaxRTT {
			t.Fatalf("tick %d: outage RTT %v exceeds MaxRTT %v", i, r.RTT, MaxRTT)
		}
		if prev >= MaxRTT && r.RTT > prev {
			t.Fatalf("tick %d: RTT still growing past the cap: %v -> %v", i, prev, r.RTT)
		}
		prev = r.RTT
	}
	if prev != MaxRTT {
		t.Errorf("after a 5 s outage RTT = %v, want pinned at MaxRTT %v", prev, MaxRTT)
	}
}

func TestFlowOutageDeliversNothing(t *testing.T) {
	f := NewFlow(simrand.New(6))
	runFlow(f, 50*unit.Mbps, 40*time.Millisecond, 2*time.Second)
	r := f.Step(tick, 0, 40*time.Millisecond, 0)
	if r.Delivered != 0 {
		t.Errorf("delivered %v during outage", r.Delivered)
	}
}

func TestFlowBufferbloatInflatesRTT(t *testing.T) {
	f := NewFlow(simrand.New(7))
	base := 50 * time.Millisecond
	var maxRTT time.Duration
	for i := 0; i < 1200; i++ {
		r := f.Step(tick, 10*unit.Mbps, base, 0)
		if r.RTT > maxRTT {
			maxRTT = r.RTT
		}
	}
	if maxRTT < 2*base {
		t.Errorf("max RTT %v never exceeded 2× base %v; no bufferbloat", maxRTT, base)
	}
}

func TestFlowHigherLossLowersGoodput(t *testing.T) {
	// With a shallow buffer there is no queue to ride out backoffs, so
	// loss visibly costs goodput.
	shallow := Options{BufferBDPs: 0.5, MinBuffer: 8 * 1024}
	run := func(extraLoss float64) unit.BitRate {
		f := NewFlowOptions(simrand.New(8), shallow)
		var delivered unit.Bytes
		n := int(30 * time.Second / tick)
		for i := 0; i < n; i++ {
			delivered += f.Step(tick, 100*unit.Mbps, 40*time.Millisecond, extraLoss).Delivered
		}
		return delivered.RateOver(30 * time.Second)
	}
	clean, lossy := run(0), run(0.8)
	if lossy >= clean {
		t.Errorf("lossy goodput %v not below clean %v", lossy, clean)
	}
}

func TestFlowShallowBufferLowersRTTTail(t *testing.T) {
	// The bufferbloat ablation: shrinking the buffer cuts the RTT tail.
	maxRTT := func(opts Options) time.Duration {
		f := NewFlowOptions(simrand.New(77), opts)
		var worst time.Duration
		for i := 0; i < 1200; i++ {
			if r := f.Step(tick, 10*unit.Mbps, 50*time.Millisecond, 0); r.RTT > worst {
				worst = r.RTT
			}
		}
		return worst
	}
	deep := maxRTT(Options{BufferBDPs: 6})
	shallow := maxRTT(Options{BufferBDPs: 1})
	if shallow >= deep {
		t.Errorf("shallow-buffer max RTT %v not below deep %v", shallow, deep)
	}
}

func TestFlowTracksVaryingCapacity(t *testing.T) {
	f := NewFlow(simrand.New(9))
	// Alternate 5 s at 100 Mbps and 5 s at 2 Mbps; goodput should land
	// between the two but well below the high phase.
	var delivered unit.Bytes
	span := 40 * time.Second
	for elapsed := time.Duration(0); elapsed < span; elapsed += tick {
		c := 100 * unit.Mbps
		if (elapsed/(5*time.Second))%2 == 1 {
			c = 2 * unit.Mbps
		}
		delivered += f.Step(tick, c, 50*time.Millisecond, 0).Delivered
	}
	got := delivered.RateOver(span)
	if got < 2*unit.Mbps || got > 60*unit.Mbps {
		t.Errorf("goodput on alternating link = %v", got)
	}
}

func TestFlowDeterministic(t *testing.T) {
	run := func() unit.BitRate {
		return runFlow(NewFlow(simrand.New(42)), 80*unit.Mbps, 45*time.Millisecond, 10*time.Second)
	}
	if a, b := run(), run(); a != b {
		t.Errorf("same seed diverged: %v vs %v", a, b)
	}
}

func TestPingerSchedule(t *testing.T) {
	p := NewPinger(simrand.New(1))
	total := 0
	for i := 0; i < int(20*time.Second/tick); i++ {
		total += len(p.Step(tick, 50*unit.Mbps, 40*time.Millisecond, 0.3, false))
	}
	// 20 s at 200 ms per echo = 100 samples.
	if total < 95 || total > 105 {
		t.Errorf("samples in 20 s = %d, want ≈100", total)
	}
}

func TestPingerRTTAboveBase(t *testing.T) {
	p := NewPinger(simrand.New(2))
	base := 40 * time.Millisecond
	for i := 0; i < 2000; i++ {
		for _, s := range p.Step(tick, 100*unit.Mbps, base, 0.2, false) {
			if s.Lost {
				continue
			}
			if s.RTT < base {
				t.Fatalf("RTT %v below base %v", s.RTT, base)
			}
			if s.RTT > 3100*time.Millisecond {
				t.Fatalf("RTT %v above cap", s.RTT)
			}
		}
	}
}

func TestPingerFadeInflatesRTT(t *testing.T) {
	collect := func(capacity unit.BitRate) (med float64) {
		p := NewPinger(simrand.New(3))
		var xs []float64
		for i := 0; i < 4000; i++ {
			for _, s := range p.Step(tick, capacity, 40*time.Millisecond, 0.3, false) {
				if !s.Lost {
					xs = append(xs, unit.Milliseconds(s.RTT))
				}
			}
		}
		return medianOf(xs)
	}
	good := collect(100 * unit.Mbps)
	faded := collect(1 * unit.Mbps)
	if faded < good*2 {
		t.Errorf("fade median %v not well above good median %v", faded, good)
	}
}

func TestPingerHandoverDelaysOrDrops(t *testing.T) {
	p := NewPinger(simrand.New(4))
	lost, delayed := 0, 0
	for i := 0; i < 4000; i++ {
		for _, s := range p.Step(tick, 50*unit.Mbps, 40*time.Millisecond, 0.2, true) {
			if s.Lost {
				lost++
			} else if s.RTT > 60*time.Millisecond {
				delayed++
			}
		}
	}
	if lost == 0 {
		t.Error("no pings lost during handover")
	}
	if delayed == 0 {
		t.Error("no pings delayed during handover")
	}
}

func TestPingerOutageLosesAll(t *testing.T) {
	p := NewPinger(simrand.New(5))
	for i := 0; i < 400; i++ {
		for _, s := range p.Step(tick, 0, 40*time.Millisecond, 0, false) {
			if !s.Lost {
				t.Fatal("ping survived zero capacity")
			}
		}
	}
}

func medianOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	return cp[len(cp)/2]
}
