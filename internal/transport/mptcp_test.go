package transport

import (
	"testing"
	"time"

	"github.com/nuwins/cellwheels/internal/simrand"
	"github.com/nuwins/cellwheels/internal/unit"
)

// runBond drives a bond over constant per-path links for span and
// reports mean goodput.
func runBond(b *Bond, caps []unit.BitRate, rtts []time.Duration, span time.Duration) unit.BitRate {
	loss := make([]float64, len(caps))
	var total unit.Bytes
	for elapsed := time.Duration(0); elapsed < span; elapsed += tick {
		total += b.Step(tick, caps, rtts, loss).Delivered
	}
	return total.RateOver(span)
}

func TestBondAggregatesPaths(t *testing.T) {
	single := runFlow(NewFlow(simrand.New(1)), 30*unit.Mbps, 50*time.Millisecond, 20*time.Second)
	bond := NewBond(3, simrand.New(1), Options{})
	caps := []unit.BitRate{30 * unit.Mbps, 30 * unit.Mbps, 30 * unit.Mbps}
	rtts := []time.Duration{50 * time.Millisecond, 50 * time.Millisecond, 50 * time.Millisecond}
	got := runBond(bond, caps, rtts, 20*time.Second)
	if got < 2*single {
		t.Errorf("bonded goodput %v not well above single %v", got, single)
	}
	if got > 90*unit.Mbps {
		t.Errorf("bonded goodput %v exceeds total capacity", got)
	}
}

func TestBondSurvivesOnePathDying(t *testing.T) {
	bond := NewBond(2, simrand.New(2), Options{})
	caps := []unit.BitRate{40 * unit.Mbps, 40 * unit.Mbps}
	rtts := []time.Duration{40 * time.Millisecond, 40 * time.Millisecond}
	runBond(bond, caps, rtts, 10*time.Second)
	// Kill path 1; the bond keeps delivering on path 0.
	caps[1] = 0
	got := runBond(bond, caps, rtts, 10*time.Second)
	if got < 15*unit.Mbps {
		t.Errorf("goodput with one dead path = %v", got)
	}
}

func TestBondHoLPenaltyOnAsymmetricRTTs(t *testing.T) {
	even := NewBond(2, simrand.New(3), Options{})
	caps := []unit.BitRate{40 * unit.Mbps, 40 * unit.Mbps}
	sym := runBond(even, caps, []time.Duration{40 * time.Millisecond, 40 * time.Millisecond}, 15*time.Second)

	skewed := NewBond(2, simrand.New(3), Options{})
	asym := runBond(skewed, caps, []time.Duration{20 * time.Millisecond, 400 * time.Millisecond}, 15*time.Second)
	if asym >= sym {
		t.Errorf("asymmetric-RTT bond %v not below symmetric %v", asym, sym)
	}
}

func TestBondEfficiencyBounds(t *testing.T) {
	bond := NewBond(3, simrand.New(4), Options{})
	caps := []unit.BitRate{10 * unit.Mbps, 50 * unit.Mbps, 100 * unit.Mbps}
	rtts := []time.Duration{20 * time.Millisecond, 60 * time.Millisecond, 200 * time.Millisecond}
	for i := 0; i < 2000; i++ {
		r := bond.Step(tick, caps, rtts, nil)
		if r.Efficiency <= 0.5 || r.Efficiency > 1 {
			t.Fatalf("efficiency %v out of (0.5, 1]", r.Efficiency)
		}
		var sum unit.Bytes
		for _, p := range r.PerPath {
			sum += p
		}
		if r.Delivered > sum {
			t.Fatal("delivered above raw per-path sum")
		}
	}
}

func TestBondShortSlices(t *testing.T) {
	// Fewer capacity entries than paths: missing paths are dead, not a
	// panic.
	bond := NewBond(3, simrand.New(5), Options{})
	r := bond.Step(tick, []unit.BitRate{10 * unit.Mbps}, nil, nil)
	if len(r.PerPath) != 3 {
		t.Fatalf("per-path len = %d", len(r.PerPath))
	}
	if r.PerPath[1] != 0 || r.PerPath[2] != 0 {
		t.Error("dead paths delivered")
	}
}

func TestBondPaths(t *testing.T) {
	if got := NewBond(4, simrand.New(6), Options{}).Paths(); got != 4 {
		t.Errorf("Paths = %d", got)
	}
}

func TestBondDeterministic(t *testing.T) {
	run := func() unit.BitRate {
		b := NewBond(2, simrand.New(7), Options{})
		return runBond(b,
			[]unit.BitRate{25 * unit.Mbps, 35 * unit.Mbps},
			[]time.Duration{40 * time.Millisecond, 70 * time.Millisecond},
			10*time.Second)
	}
	if a, b := run(), run(); a != b {
		t.Errorf("same seed diverged: %v vs %v", a, b)
	}
}
