// Package deploy models each operator's network build-out along the route
// and the service-elevation policy that decides which available technology
// actually serves a UE.
//
// Coverage of each technology is a fragment process: a two-state Markov
// chain walked along the route whose stationary probability is calibrated,
// per (operator, region, timezone), to the technology shares of Fig 2, and
// whose mean fragment length produces the paper's "highly fragmented"
// coverage. Within covered fragments, discrete cell sites are placed at
// radius-scaled spacing; the RAN layer attaches to and hands over between
// these sites.
//
// The policy layer reproduces the paper's central methodological finding
// (§4.1): what serves a UE depends on offered traffic. Backlogged downlink
// traffic gets the best available technology; uplink traffic is often held
// on low-band or LTE; idle (ICMP-only) UEs are rarely upgraded to 5G at
// all — which is why the passive handover-logger saw almost no 5G.
package deploy

import (
	"fmt"
	"math"
	"sort"

	"github.com/nuwins/cellwheels/internal/geo"
	"github.com/nuwins/cellwheels/internal/radio"
	"github.com/nuwins/cellwheels/internal/simrand"
	"github.com/nuwins/cellwheels/internal/unit"
)

// TechSet is a bitmask of available technologies at a point.
type TechSet uint8

// With returns the set with t added.
func (s TechSet) With(t radio.Technology) TechSet { return s | 1<<uint(t) }

// Has reports whether t is in the set.
func (s TechSet) Has(t radio.Technology) bool { return s&(1<<uint(t)) != 0 }

// Best reports the fastest technology in the set. The empty set reports
// LTE, which is always deployed.
func (s TechSet) Best() radio.Technology {
	for t := radio.NRMmWave; t > radio.LTE; t-- {
		if s.Has(t) {
			return t
		}
	}
	return radio.LTE
}

// Techs lists the set's members, oldest first.
func (s TechSet) Techs() []radio.Technology {
	var out []radio.Technology
	for _, t := range radio.Technologies() {
		if s.Has(t) {
			out = append(out, t)
		}
	}
	return out
}

// Fragment is one contiguous covered stretch of a technology.
type Fragment struct {
	Tech  radio.Technology
	Start unit.Meters
	End   unit.Meters
}

// Len reports the fragment length.
func (f Fragment) Len() unit.Meters { return f.End - f.Start }

// Cell is one deployed cell site.
type Cell struct {
	ID       string
	Op       radio.Operator
	Tech     radio.Technology
	Index    int         // position in the technology's odometer-ordered slice
	Odometer unit.Meters // along-route position
	Lateral  unit.Meters // perpendicular offset from the road
	LoadMean float64     // long-run background load of the sector
}

// Distance reports the straight-line distance from a route odometer
// position to the cell.
func (c Cell) Distance(odo unit.Meters) unit.Meters {
	along := float64(odo - c.Odometer)
	lat := float64(c.Lateral)
	return unit.Meters(math.Hypot(along, lat))
}

// Map is one operator's deployment along a route.
type Map struct {
	Op        radio.Operator
	route     *geo.Route
	fragments [radio.NumTechnologies][]Fragment
	cells     [radio.NumTechnologies][]Cell
}

// stepSize is the granularity of the coverage walk.
const stepSize = 500 * unit.Meter

// meanFragment is the mean covered-fragment length per technology,
// producing the paper's fragmentation scale.
func meanFragment(t radio.Technology) unit.Meters {
	switch t {
	case radio.NRMmWave:
		return 900 * unit.Meter
	case radio.NRMid:
		return 5 * unit.Kilometer
	case radio.NRLow:
		return 15 * unit.Kilometer
	default: // LTE-A
		return 35 * unit.Kilometer
	}
}

// regionBase is the availability probability of a technology by region,
// before timezone scaling. Calibrated to Fig 2a/2d (see DESIGN.md §5).
func regionBase(op radio.Operator, t radio.Technology, r geo.Region) float64 {
	type key struct {
		op radio.Operator
		t  radio.Technology
	}
	// [urban, suburban, highway]
	table := map[key][3]float64{
		{radio.Verizon, radio.NRMmWave}: {0.55, 0.02, 0.002},
		{radio.Verizon, radio.NRMid}:    {0.35, 0.15, 0.08},
		{radio.Verizon, radio.NRLow}:    {0.30, 0.15, 0.06},
		{radio.Verizon, radio.LTEA}:     {0.75, 0.60, 0.55},

		{radio.TMobile, radio.NRMmWave}: {0.06, 0.005, 0},
		{radio.TMobile, radio.NRMid}:    {0.60, 0.45, 0.38},
		{radio.TMobile, radio.NRLow}:    {0.70, 0.60, 0.50},
		{radio.TMobile, radio.LTEA}:     {0.60, 0.60, 0.60},

		{radio.ATT, radio.NRMmWave}: {0.12, 0, 0},
		{radio.ATT, radio.NRMid}:    {0.15, 0.04, 0.01},
		{radio.ATT, radio.NRLow}:    {0.35, 0.25, 0.15},
		{radio.ATT, radio.LTEA}:     {0.80, 0.75, 0.72},
	}
	v, ok := table[key{op, t}]
	if !ok {
		return 0
	}
	return v[r]
}

// tzFactor scales availability by timezone, reproducing Fig 2c's regional
// deployment diversity: T-Mobile's midband strongest in the Pacific,
// AT&T's 5G nearly absent in the Mountain/Central zones, Verizon's 5G
// stronger in the eastern half.
func tzFactor(op radio.Operator, t radio.Technology, z geo.Timezone) float64 {
	if t == radio.LTEA {
		return 1
	}
	switch op {
	case radio.Verizon:
		return [...]float64{0.75, 0.55, 1.25, 1.45}[z]
	case radio.TMobile:
		if t == radio.NRMid {
			return [...]float64{1.5, 0.8, 0.9, 1.0}[z]
		}
		return 1
	default: // AT&T
		return [...]float64{1.4, 0.3, 0.4, 1.5}[z]
	}
}

// availProb is the stationary coverage probability at a waypoint.
func availProb(op radio.Operator, t radio.Technology, wp geo.Waypoint) float64 {
	p := regionBase(op, t, wp.Region) * tzFactor(op, t, wp.Timezone)
	return unit.Clamp(p, 0, 0.98)
}

// NewMap generates one operator's deployment over a route.
func NewMap(op radio.Operator, route *geo.Route, rng *simrand.Source) *Map {
	m := &Map{Op: op, route: route}
	src := rng.Fork("deploy/" + op.Short())

	// LTE blankets the route.
	m.fragments[radio.LTE] = []Fragment{{Tech: radio.LTE, Start: 0, End: route.Total()}}

	for _, t := range []radio.Technology{radio.LTEA, radio.NRLow, radio.NRMid, radio.NRMmWave} {
		m.fragments[t] = m.walkCoverage(t, src.Fork("frag/"+t.String()))
	}
	for _, t := range radio.Technologies() {
		m.cells[t] = m.placeCells(t, src.Fork("cells/"+t.String()))
	}
	return m
}

// walkCoverage runs the two-state Markov chain along the route.
func (m *Map) walkCoverage(t radio.Technology, src *simrand.Source) []Fragment {
	var frags []Fragment
	covered := false
	var start unit.Meters
	meanCov := float64(meanFragment(t))
	step := float64(stepSize)

	for odo := unit.Meters(0); odo <= m.route.Total(); odo += stepSize {
		p := availProb(m.Op, t, m.route.At(odo))
		var next bool
		if covered {
			// Leave with rate 1/meanCov per meter.
			next = !src.Bool(step / meanCov)
		} else {
			if p <= 0 {
				next = false
			} else if p >= 0.98 {
				next = true
			} else {
				// Enter with the gap rate that yields stationary p.
				meanGap := meanCov * (1 - p) / p
				next = src.Bool(step / meanGap)
			}
		}
		if next && !covered {
			start = odo
		}
		if !next && covered {
			frags = append(frags, Fragment{Tech: t, Start: start, End: odo})
		}
		covered = next
	}
	if covered {
		frags = append(frags, Fragment{Tech: t, Start: start, End: m.route.Total()})
	}
	return frags
}

// cellSpacing is the multiple of cell radius between adjacent sites.
const cellSpacing = 1.35

// placeCells drops cell sites inside each covered fragment.
func (m *Map) placeCells(t radio.Technology, src *simrand.Source) []Cell {
	radius := float64(radio.Band(t).CellRadius)
	var cells []Cell
	n := 0
	for _, f := range m.fragments[t] {
		for pos := float64(f.Start); pos < float64(f.End)+radius; pos += radius * src.Uniform(cellSpacing*0.8, cellSpacing*1.2) {
			lateral := src.Uniform(30, 300)
			if t == radio.NRMmWave {
				lateral = src.Uniform(20, 120)
			}
			wp := m.route.At(unit.Meters(pos))
			cells = append(cells, Cell{
				ID:       fmt.Sprintf("%s-%s-%04d", m.Op.Short(), t, n),
				Op:       m.Op,
				Tech:     t,
				Odometer: unit.Meters(pos),
				Lateral:  unit.Meters(lateral),
				LoadMean: loadMean(wp.Region, src),
			})
			n++
		}
	}
	// Fragment overhang (a site just past a fragment's end) can place a
	// cell beyond the next fragment's first site; keep the slice ordered
	// for binary search.
	// Stable sort with an ID tie-breaker: two cells at the same odometer
	// (possible at fragment boundaries) must keep one canonical order.
	sort.SliceStable(cells, func(i, j int) bool {
		if cells[i].Odometer != cells[j].Odometer {
			return cells[i].Odometer < cells[j].Odometer
		}
		return cells[i].ID < cells[j].ID
	})
	// Index is the cell's position in the final ordering — the key the
	// crowd registry's per-cell shards are addressed by.
	for i := range cells {
		cells[i].Index = i
	}
	return cells
}

// loadMean draws a sector's long-run background load by region. Urban
// sectors carry more subscribers; every sector gets idiosyncratic spread
// so that "full 5G coverage" does not imply good performance (§5.6).
func loadMean(r geo.Region, src *simrand.Source) float64 {
	var base float64
	switch r {
	case geo.Urban:
		base = 0.60
	case geo.Suburban:
		base = 0.58 // sparser provisioning between towns (§5.5)
	default:
		base = 0.52
	}
	return unit.Clamp(src.Normal(base, 0.15), 0.08, 0.90)
}

// Available reports the technology set deployed at an odometer position.
// LTE is always present. Binary search over the ordered fragments keeps
// this O(log fragments) — it sits on the handsets' per-tick path and on
// the crowd's attach path.
func (m *Map) Available(odo unit.Meters) TechSet {
	s := TechSet(0).With(radio.LTE)
	for _, t := range []radio.Technology{radio.LTEA, radio.NRLow, radio.NRMid, radio.NRMmWave} {
		frags := m.fragments[t]
		// Inlined sort.Search(len(frags), End > odo): the closure would
		// capture odo and heap-allocate on every per-tick call.
		i, j := 0, len(frags)
		for i < j {
			h := int(uint(i+j) >> 1)
			if frags[h].End > odo {
				j = h
			} else {
				i = h + 1
			}
		}
		if i < len(frags) && frags[i].Start <= odo {
			s = s.With(t)
		}
	}
	return s
}

// AvailableWithin reports every technology deployed anywhere inside the
// window around odo. Static baseline tests use this: the testers sought
// out the best base station in the city rather than testing wherever the
// vehicle happened to stop (§5.1).
func (m *Map) AvailableWithin(odo, window unit.Meters) TechSet {
	s := TechSet(0).With(radio.LTE)
	lo, hi := odo-window, odo+window
	for _, t := range []radio.Technology{radio.LTEA, radio.NRLow, radio.NRMid, radio.NRMmWave} {
		for _, f := range m.fragments[t] {
			if f.End < lo {
				continue
			}
			if f.Start > hi {
				break
			}
			s = s.With(t)
			break
		}
	}
	return s
}

// Fragments returns the coverage fragments of a technology.
func (m *Map) Fragments(t radio.Technology) []Fragment {
	return append([]Fragment(nil), m.fragments[t]...)
}

// Cells returns the cell sites of a technology, ordered by odometer.
func (m *Map) Cells(t radio.Technology) []Cell {
	return append([]Cell(nil), m.cells[t]...)
}

// TotalCells reports the operator's total site count across technologies.
func (m *Map) TotalCells() int {
	n := 0
	for _, t := range radio.Technologies() {
		n += len(m.cells[t])
	}
	return n
}

// CellRange reports the half-open index range [lo, hi) of sites of
// technology t within the window around odo, allocation-free.
func (m *Map) CellRange(odo unit.Meters, t radio.Technology, window unit.Meters) (lo, hi int) {
	cells := m.cells[t]
	// Both bounds are inlined sort.Search calls — the closures would
	// capture odo/window/cells and heap-allocate per handover evaluation.
	min, max := odo-window, odo+window
	lo, hi = 0, len(cells)
	for lo < hi {
		h := int(uint(lo+hi) >> 1)
		if cells[h].Odometer >= min {
			hi = h
		} else {
			lo = h + 1
		}
	}
	hi2, n := lo, len(cells)
	for hi2 < n {
		h := int(uint(hi2+n) >> 1)
		if cells[h].Odometer > max {
			n = h
		} else {
			hi2 = h + 1
		}
	}
	return lo, hi2
}

// CellsNear returns indices (into Cells(t)'s ordering) of sites within
// the window around odo.
func (m *Map) CellsNear(odo unit.Meters, t radio.Technology, window unit.Meters) []int {
	lo, hi := m.CellRange(odo, t, window)
	idx := make([]int, 0, hi-lo)
	for i := lo; i < hi; i++ {
		idx = append(idx, i)
	}
	return idx
}

// CellAt returns a pointer to the i-th cell of technology t. The pointer
// stays valid for the life of the map.
func (m *Map) CellAt(t radio.Technology, i int) *Cell { return &m.cells[t][i] }

// CellCount reports the number of sites of technology t.
func (m *Map) CellCount(t radio.Technology) int { return len(m.cells[t]) }
