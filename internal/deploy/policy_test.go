package deploy

import (
	"testing"

	"github.com/nuwins/cellwheels/internal/geo"
	"github.com/nuwins/cellwheels/internal/radio"
	"github.com/nuwins/cellwheels/internal/simrand"
	"github.com/nuwins/cellwheels/internal/unit"
)

func fullSet() TechSet {
	var s TechSet
	for _, t := range radio.Technologies() {
		s = s.With(t)
	}
	return s
}

func TestTrafficStrings(t *testing.T) {
	if Idle.String() != "idle" || HeavyDL.String() != "heavy-dl" || HeavyUL.String() != "heavy-ul" {
		t.Error("traffic strings wrong")
	}
}

func TestHeavyDLAlwaysBest(t *testing.T) {
	rng := simrand.New(1).Fork("policy")
	for _, op := range radio.Operators() {
		for i := 0; i < 100; i++ {
			got := ChooseTech(op, fullSet(), HeavyDL, geo.Central, rng)
			if got != radio.NRMmWave {
				t.Fatalf("%v: HeavyDL chose %v with mmWave available", op, got)
			}
		}
	}
	// Without 5G, best 4G wins.
	s := TechSet(0).With(radio.LTE).With(radio.LTEA)
	if got := ChooseTech(radio.Verizon, s, HeavyDL, geo.Central, rng); got != radio.LTEA {
		t.Errorf("HeavyDL on 4G-only chose %v", got)
	}
}

// techFreq samples the policy many times and reports per-tech frequency.
func techFreq(op radio.Operator, s TechSet, tr Traffic, z geo.Timezone, seed int64) map[radio.Technology]float64 {
	rng := simrand.New(seed).Fork("freq")
	const n = 5000
	counts := map[radio.Technology]int{}
	for i := 0; i < n; i++ {
		counts[ChooseTech(op, s, tr, z, rng)]++
	}
	out := map[radio.Technology]float64{}
	for k, c := range counts {
		out[k] = float64(c) / n
	}
	return out
}

func TestHeavyULPrefersLowerTiers(t *testing.T) {
	// With everything available, the uplink high-speed share must be well
	// below the downlink's 100% (§4.2, Fig 2b) for every operator.
	for _, op := range radio.Operators() {
		f := techFreq(op, fullSet(), HeavyUL, geo.Central, 2)
		hs := f[radio.NRMmWave] + f[radio.NRMid]
		if hs >= 0.9 {
			t.Errorf("%v: uplink high-speed share = %.2f, want < 0.9", op, hs)
		}
		if hs <= 0.05 {
			t.Errorf("%v: uplink high-speed share = %.2f; should sometimes elevate", op, hs)
		}
	}
	// T-Mobile is the most willing to elevate uplink traffic.
	tm := techFreq(radio.TMobile, fullSet(), HeavyUL, geo.Central, 3)
	at := techFreq(radio.ATT, fullSet(), HeavyUL, geo.Central, 3)
	if tm[radio.NRMmWave]+tm[radio.NRMid] <= at[radio.NRMmWave]+at[radio.NRMid] {
		t.Error("T-Mobile uplink elevation not above AT&T's")
	}
}

func TestIdleATTNever5G(t *testing.T) {
	f := techFreq(radio.ATT, fullSet(), Idle, geo.Eastern, 4)
	for _, tech := range []radio.Technology{radio.NRLow, radio.NRMid, radio.NRMmWave} {
		if f[tech] > 0 {
			t.Errorf("AT&T idle elevated to %v with frequency %v", tech, f[tech])
		}
	}
	if f[radio.LTEA] == 0 {
		t.Error("AT&T idle never used LTE-A")
	}
}

func TestIdleTMobileEastWestSplit(t *testing.T) {
	// Fig 1c vs 1f: passive and active T-Mobile coverage agree in the
	// east but diverge in the west.
	east := techFreq(radio.TMobile, fullSet(), Idle, geo.Eastern, 5)
	west := techFreq(radio.TMobile, fullSet(), Idle, geo.Pacific, 5)
	e5 := east[radio.NRLow] + east[radio.NRMid] + east[radio.NRMmWave]
	w5 := west[radio.NRLow] + west[radio.NRMid] + west[radio.NRMmWave]
	if e5 < 0.5 {
		t.Errorf("T-Mobile idle east 5G share = %.2f, want majority", e5)
	}
	if w5 > 0.3 {
		t.Errorf("T-Mobile idle west 5G share = %.2f, want minority", w5)
	}
}

func TestIdleVerizonMostly4G(t *testing.T) {
	f := techFreq(radio.Verizon, fullSet(), Idle, geo.Central, 6)
	g5 := f[radio.NRLow] + f[radio.NRMid] + f[radio.NRMmWave]
	if g5 > 0.35 {
		t.Errorf("Verizon idle 5G share = %.2f, want small", g5)
	}
	if f[radio.NRMmWave] > 0 {
		t.Error("Verizon idle elevated to mmWave")
	}
}

func TestIdleFallbackWithoutLTEA(t *testing.T) {
	rng := simrand.New(7).Fork("fb")
	s := TechSet(0).With(radio.LTE)
	for _, op := range radio.Operators() {
		if got := ChooseTech(op, s, Idle, geo.Mountain, rng); got != radio.LTE {
			t.Errorf("%v: LTE-only idle chose %v", op, got)
		}
	}
}

func TestPolicyCoverageInteraction(t *testing.T) {
	// End to end: the passive view of a T-Mobile deployment in the west
	// shows far less 5G than the active view — the paper's Fig 1 lesson.
	m := NewMap(radio.TMobile, geo.DefaultRoute(), simrand.New(11))
	rng := simrand.New(12).Fork("interact")
	route := geo.DefaultRoute()

	activeHS, passiveHS := 0, 0
	for odo := unit.Meters(0); odo < 1500*unit.Kilometer; odo += 2 * unit.Kilometer { // western half
		wp := route.At(odo)
		avail := m.Available(odo)
		if ChooseTech(radio.TMobile, avail, HeavyDL, wp.Timezone, rng).Is5G() {
			activeHS++
		}
		if ChooseTech(radio.TMobile, avail, Idle, wp.Timezone, rng).Is5G() {
			passiveHS++
		}
	}
	if activeHS == 0 {
		t.Fatal("active probing saw no 5G at all")
	}
	if float64(passiveHS) > 0.5*float64(activeHS) {
		t.Errorf("passive 5G %d not well below active %d in the west", passiveHS, activeHS)
	}
}
