package deploy

import (
	"math"
	"testing"

	"github.com/nuwins/cellwheels/internal/geo"
	"github.com/nuwins/cellwheels/internal/radio"
	"github.com/nuwins/cellwheels/internal/simrand"
	"github.com/nuwins/cellwheels/internal/unit"
)

func testMaps(t *testing.T) map[radio.Operator]*Map {
	t.Helper()
	route := geo.DefaultRoute()
	rng := simrand.New(7)
	out := map[radio.Operator]*Map{}
	for _, op := range radio.Operators() {
		out[op] = NewMap(op, route, rng)
	}
	return out
}

func TestTechSet(t *testing.T) {
	var s TechSet
	if s.Has(radio.NRMid) {
		t.Error("empty set has midband")
	}
	s = s.With(radio.LTE).With(radio.NRMid)
	if !s.Has(radio.LTE) || !s.Has(radio.NRMid) || s.Has(radio.NRMmWave) {
		t.Errorf("set membership wrong: %b", s)
	}
	if got := s.Best(); got != radio.NRMid {
		t.Errorf("Best = %v", got)
	}
	if got := TechSet(0).Best(); got != radio.LTE {
		t.Errorf("empty Best = %v, want LTE", got)
	}
	techs := s.Techs()
	if len(techs) != 2 || techs[0] != radio.LTE || techs[1] != radio.NRMid {
		t.Errorf("Techs = %v", techs)
	}
}

func TestFragmentLen(t *testing.T) {
	f := Fragment{Start: 100, End: 350}
	if f.Len() != 250 {
		t.Errorf("Len = %v", f.Len())
	}
}

func TestCellDistance(t *testing.T) {
	c := Cell{Odometer: 1000, Lateral: 30}
	if got := c.Distance(1000); math.Abs(float64(got)-30) > 1e-9 {
		t.Errorf("lateral-only distance = %v", got)
	}
	if got := c.Distance(1040); math.Abs(float64(got)-50) > 1e-9 {
		t.Errorf("3-4-5 distance = %v", got)
	}
}

func TestLTEBlanketsRoute(t *testing.T) {
	maps := testMaps(t)
	for op, m := range maps {
		frags := m.Fragments(radio.LTE)
		if len(frags) != 1 || frags[0].Start != 0 || frags[0].End != geo.DefaultRoute().Total() {
			t.Errorf("%v: LTE fragments = %v", op, frags)
		}
		for odo := unit.Meters(0); odo < geo.DefaultRoute().Total(); odo += 50 * unit.Kilometer {
			if !m.Available(odo).Has(radio.LTE) {
				t.Fatalf("%v: no LTE at %v", op, odo)
			}
		}
	}
}

// servingShares computes the distribution of the best available
// technology over the route — the paper's Fig 2a under heavy DL traffic.
func servingShares(m *Map) map[radio.Technology]float64 {
	counts := map[radio.Technology]int{}
	n := 0
	for odo := unit.Meters(0); odo < geo.DefaultRoute().Total(); odo += unit.Kilometer {
		counts[m.Available(odo).Best()]++
		n++
	}
	out := map[radio.Technology]float64{}
	for k, c := range counts {
		out[k] = float64(c) / float64(n)
	}
	return out
}

func TestCoverageSharesMatchPaper(t *testing.T) {
	maps := testMaps(t)

	share5G := func(s map[radio.Technology]float64) float64 {
		return s[radio.NRLow] + s[radio.NRMid] + s[radio.NRMmWave]
	}
	shareHS := func(s map[radio.Technology]float64) float64 {
		return s[radio.NRMid] + s[radio.NRMmWave]
	}

	tm := servingShares(maps[radio.TMobile])
	if g := share5G(tm); g < 0.55 || g > 0.82 {
		t.Errorf("T-Mobile 5G share = %.2f, want ≈0.68", g)
	}
	if h := shareHS(tm); h < 0.28 || h > 0.50 {
		t.Errorf("T-Mobile high-speed share = %.2f, want ≈0.38", h)
	}

	vz := servingShares(maps[radio.Verizon])
	if g := share5G(vz); g < 0.12 || g > 0.32 {
		t.Errorf("Verizon 5G share = %.2f, want ≈0.20", g)
	}

	at := servingShares(maps[radio.ATT])
	if g := share5G(at); g < 0.12 || g > 0.32 {
		t.Errorf("AT&T 5G share = %.2f, want ≈0.20", g)
	}
	if h := shareHS(at); h > 0.08 {
		t.Errorf("AT&T high-speed share = %.2f, want ≈0.03", h)
	}

	// T-Mobile has by far the widest 5G coverage.
	if share5G(tm) <= share5G(vz) || share5G(tm) <= share5G(at) {
		t.Error("T-Mobile 5G coverage not dominant")
	}
	// Verizon offers the most mmWave.
	if vz[radio.NRMmWave] <= tm[radio.NRMmWave] || vz[radio.NRMmWave] <= at[radio.NRMmWave] {
		t.Errorf("Verizon mmWave %.3f not dominant (T %.3f, A %.3f)",
			vz[radio.NRMmWave], tm[radio.NRMmWave], at[radio.NRMmWave])
	}
	// AT&T has the strongest LTE-A footprint.
	if at[radio.LTEA] <= vz[radio.LTEA] || at[radio.LTEA] <= tm[radio.LTEA] {
		t.Error("AT&T LTE-A share not dominant")
	}
}

func TestCoverageIsFragmented(t *testing.T) {
	maps := testMaps(t)
	// Midband coverage must come in many pieces, not one blanket.
	for op, m := range maps {
		frags := m.Fragments(radio.NRMid)
		if len(frags) < 10 {
			t.Errorf("%v: only %d midband fragments; coverage should be fragmented", op, len(frags))
		}
		for _, f := range frags {
			if f.Len() <= 0 {
				t.Errorf("%v: degenerate fragment %+v", op, f)
			}
		}
	}
}

func TestFragmentsSortedAndDisjoint(t *testing.T) {
	maps := testMaps(t)
	for op, m := range maps {
		for _, tech := range radio.Technologies() {
			frags := m.Fragments(tech)
			for i := 1; i < len(frags); i++ {
				if frags[i].Start < frags[i-1].End {
					t.Errorf("%v/%v: overlapping fragments %v, %v", op, tech, frags[i-1], frags[i])
				}
			}
		}
	}
}

func TestTMobileMidbandStrongestInPacific(t *testing.T) {
	m := testMaps(t)[radio.TMobile]
	route := geo.DefaultRoute()
	counts := map[geo.Timezone][2]int{} // [midband, total]
	for odo := unit.Meters(0); odo < route.Total(); odo += unit.Kilometer {
		z := route.At(odo).Timezone
		c := counts[z]
		c[1]++
		if m.Available(odo).Has(radio.NRMid) {
			c[0]++
		}
		counts[z] = c
	}
	frac := func(z geo.Timezone) float64 {
		c := counts[z]
		return float64(c[0]) / float64(c[1])
	}
	if frac(geo.Pacific) <= frac(geo.Mountain) || frac(geo.Pacific) <= frac(geo.Central) || frac(geo.Pacific) <= frac(geo.Eastern) {
		t.Errorf("T-Mobile midband by tz: P=%.2f M=%.2f C=%.2f E=%.2f; Pacific should lead",
			frac(geo.Pacific), frac(geo.Mountain), frac(geo.Central), frac(geo.Eastern))
	}
}

func TestMmWaveIsUrban(t *testing.T) {
	maps := testMaps(t)
	route := geo.DefaultRoute()
	for op, m := range maps {
		urban, other := 0, 0
		for _, f := range m.Fragments(radio.NRMmWave) {
			mid := (f.Start + f.End) / 2
			if route.At(mid).Region == geo.Urban {
				urban++
			} else {
				other++
			}
		}
		if urban == 0 {
			t.Errorf("%v: no urban mmWave fragments", op)
		}
		if other > urban {
			t.Errorf("%v: mmWave mostly outside cities (%d urban vs %d other)", op, urban, other)
		}
	}
}

func TestCellCountsMatchTable1Scale(t *testing.T) {
	maps := testMaps(t)
	// Table 1: 3020 (V), 4038 (T), 3150 (A) unique cells connected. Site
	// counts should be of that order of magnitude.
	for op, m := range maps {
		n := m.TotalCells()
		if n < 800 || n > 9000 {
			t.Errorf("%v: %d cells; implausible scale", op, n)
		}
	}
	if maps[radio.TMobile].TotalCells() <= maps[radio.Verizon].TotalCells() {
		t.Log("note: T-Mobile usually has most cells (wider 5G); not fatal")
	}
}

func TestCellsSortedWithSaneFields(t *testing.T) {
	maps := testMaps(t)
	seen := map[string]bool{}
	for op, m := range maps {
		for _, tech := range radio.Technologies() {
			cells := m.Cells(tech)
			for i, c := range cells {
				if i > 0 && c.Odometer < cells[i-1].Odometer {
					t.Fatalf("%v/%v: cells unsorted at %d", op, tech, i)
				}
				if c.LoadMean < 0 || c.LoadMean > 0.9 {
					t.Errorf("cell %s load %v", c.ID, c.LoadMean)
				}
				if c.Lateral <= 0 {
					t.Errorf("cell %s lateral %v", c.ID, c.Lateral)
				}
				if seen[c.ID] {
					t.Errorf("duplicate cell ID %s", c.ID)
				}
				seen[c.ID] = true
				if c.Op != op || c.Tech != tech {
					t.Errorf("cell %s mislabeled: %v/%v", c.ID, c.Op, c.Tech)
				}
			}
		}
	}
}

func TestCellsNearWindow(t *testing.T) {
	m := testMaps(t)[radio.Verizon]
	cells := m.Cells(radio.LTE)
	if len(cells) == 0 {
		t.Fatal("no LTE cells")
	}
	mid := cells[len(cells)/2].Odometer
	idx := m.CellsNear(mid, radio.LTE, 30*unit.Kilometer)
	if len(idx) == 0 {
		t.Fatal("no cells near a cell position")
	}
	for _, i := range idx {
		c := m.CellAt(radio.LTE, i)
		d := c.Odometer - mid
		if d < -30*unit.Kilometer || d > 30*unit.Kilometer {
			t.Errorf("cell %s outside window: %v", c.ID, d)
		}
	}
}

func TestMapDeterministic(t *testing.T) {
	route := geo.DefaultRoute()
	a := NewMap(radio.TMobile, route, simrand.New(5))
	b := NewMap(radio.TMobile, route, simrand.New(5))
	if a.TotalCells() != b.TotalCells() {
		t.Fatalf("cell counts differ: %d vs %d", a.TotalCells(), b.TotalCells())
	}
	fa, fb := a.Fragments(radio.NRMid), b.Fragments(radio.NRMid)
	if len(fa) != len(fb) {
		t.Fatalf("fragment counts differ")
	}
	for i := range fa {
		if fa[i] != fb[i] {
			t.Fatalf("fragment %d differs", i)
		}
	}
}

func TestAvailableConsistentWithFragments(t *testing.T) {
	m := testMaps(t)[radio.ATT]
	for _, f := range m.Fragments(radio.NRLow) {
		mid := (f.Start + f.End) / 2
		if !m.Available(mid).Has(radio.NRLow) {
			t.Fatalf("fragment midpoint %v not available", mid)
		}
	}
}
