package deploy

import (
	"github.com/nuwins/cellwheels/internal/geo"
	"github.com/nuwins/cellwheels/internal/radio"
	"github.com/nuwins/cellwheels/internal/simrand"
)

// Traffic is the offered-traffic profile the elevation policy reacts to.
type Traffic int

// Traffic profiles. Idle corresponds to the handover-logger phones'
// 38-byte ICMP keepalives; the heavy profiles correspond to backlogged
// nuttcp transfers and the apps.
const (
	Idle Traffic = iota
	HeavyDL
	HeavyUL
)

// String implements fmt.Stringer.
func (t Traffic) String() string {
	switch t {
	case HeavyDL:
		return "heavy-dl"
	case HeavyUL:
		return "heavy-ul"
	default:
		return "idle"
	}
}

// Chooser is the randomness the elevation policy consumes: a weighted
// coin. *simrand.Source satisfies it; the crowd registry adapts its
// per-slot positional hash draws to it.
type Chooser interface {
	Bool(p float64) bool
}

// ChooseTech applies the operator's service-elevation policy: given the
// technologies deployed at the UE's position and the offered traffic,
// which one serves?
//
// The shapes implemented here come straight from the paper's findings:
//
//   - Heavy downlink traffic is always elevated to the best deployed
//     technology (operators "are more willing to upgrade UEs to
//     high-speed 5G in the presence of heavy downlink traffic", §4.2).
//   - Heavy uplink traffic is elevated reluctantly: mmWave and midband
//     are chosen with operator-specific probabilities, otherwise the UE
//     is held on 5G-low or LTE/LTE-A (§4.2, Fig 2b).
//   - Idle UEs mostly stay on 4G. AT&T never elevates an idle UE (the
//     handover-logger saw only LTE/LTE-A on AT&T, Fig 1d); T-Mobile
//     elevates idle UEs in the eastern half of the country but not the
//     western half (Figs 1c vs 1f); Verizon rarely elevates (Fig 1b).
func ChooseTech(op radio.Operator, avail TechSet, traffic Traffic, z geo.Timezone, rng *simrand.Source) radio.Technology {
	return ChooseTechWith(op, avail, traffic, z, rng)
}

// ChooseTechWith is ChooseTech over any Chooser. The draw sequence is
// identical — ChooseTech delegates here — so handsets (full simrand
// streams) and crowd slots (positional hash draws) run the same policy.
func ChooseTechWith(op radio.Operator, avail TechSet, traffic Traffic, z geo.Timezone, rng Chooser) radio.Technology {
	switch traffic {
	case HeavyDL:
		return avail.Best()
	case HeavyUL:
		return chooseUplink(op, avail, rng)
	default:
		return chooseIdle(op, avail, z, rng)
	}
}

// chooseUplink walks down the technology ladder, keeping each high-speed
// tier with an operator-specific probability.
func chooseUplink(op radio.Operator, avail TechSet, rng Chooser) radio.Technology {
	// Per-operator keep probabilities; a switch rather than map literals
	// because this runs on the crowd's attach/handover path and a map
	// literal allocates on every call.
	var keepMM, keepMid, keepLow float64
	switch op {
	case radio.Verizon:
		keepMM, keepMid, keepLow = 0.30, 0.50, 0.60
	case radio.TMobile:
		keepMM, keepMid, keepLow = 0.45, 0.75, 0.80
	case radio.ATT:
		keepMM, keepMid, keepLow = 0.15, 0.35, 0.50
	}

	if avail.Has(radio.NRMmWave) && rng.Bool(keepMM) {
		return radio.NRMmWave
	}
	if avail.Has(radio.NRMid) && rng.Bool(keepMid) {
		return radio.NRMid
	}
	if avail.Has(radio.NRLow) && rng.Bool(keepLow) {
		return radio.NRLow
	}
	if avail.Has(radio.LTEA) {
		return radio.LTEA
	}
	return radio.LTE
}

// chooseIdle models the conservative elevation the paper's passive
// logging exposed.
func chooseIdle(op radio.Operator, avail TechSet, z geo.Timezone, rng Chooser) radio.Technology {
	switch op {
	case radio.ATT:
		// Never elevated while idle.
	case radio.TMobile:
		elevate := 0.10
		if z == geo.Central || z == geo.Eastern {
			elevate = 0.75
		}
		if rng.Bool(elevate) {
			if avail.Has(radio.NRMid) {
				return radio.NRMid
			}
			if avail.Has(radio.NRLow) {
				return radio.NRLow
			}
		}
	default: // Verizon
		if avail.Has(radio.NRMid) && rng.Bool(0.06) {
			return radio.NRMid
		}
		if avail.Has(radio.NRLow) && rng.Bool(0.15) {
			return radio.NRLow
		}
	}
	if avail.Has(radio.LTEA) {
		return radio.LTEA
	}
	return radio.LTE
}

// StickyRetainProb is the probability that a UE whose traffic just turned
// idle keeps its previously elevated technology for a while instead of
// immediately re-running the idle policy. This is what puts the few
// near-stationary mmWave points on the paper's RTT-vs-speed plots (Fig 8):
// a ping test launched right after a backlogged test can inherit mmWave.
const StickyRetainProb = 0.5
