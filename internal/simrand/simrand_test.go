package simrand

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestForkDeterminism(t *testing.T) {
	a := New(42).Fork("ran").Fork("cell7")
	b := New(42).Fork("ran").Fork("cell7")
	for i := 0; i < 100; i++ {
		if x, y := a.Float64(), b.Float64(); x != y {
			t.Fatalf("draw %d: same path diverged: %v vs %v", i, x, y)
		}
	}
}

func TestForkIndependentOfSiblingOrder(t *testing.T) {
	// Creating unrelated sibling streams must not perturb a named stream.
	root1 := New(7)
	_ = root1.Fork("noise-a")
	target1 := root1.Fork("target")

	root2 := New(7)
	target2 := root2.Fork("target")
	_ = root2.Fork("noise-b")

	for i := 0; i < 50; i++ {
		if x, y := target1.Float64(), target2.Float64(); x != y {
			t.Fatalf("draw %d: sibling creation order changed stream: %v vs %v", i, x, y)
		}
	}
}

func TestForkDistinctPathsDiffer(t *testing.T) {
	root := New(1)
	a, b := root.Fork("a"), root.Fork("b")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("distinct streams matched %d/100 draws; expected near 0", same)
	}
}

func TestForkSeedSensitivity(t *testing.T) {
	a := New(1).Fork("x")
	b := New(2).Fork("x")
	if a.Float64() == b.Float64() {
		t.Error("different seeds produced identical first draw")
	}
}

func TestName(t *testing.T) {
	s := New(0).Fork("ran").Fork("cell3")
	if got := s.Name(); got != "/ran/cell3" {
		t.Errorf("Name = %q", got)
	}
}

func TestNormalMoments(t *testing.T) {
	s := New(99).Fork("normal")
	const n = 20000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		x := s.Normal(5, 2)
		sum += x
		sumsq += x * x
	}
	mean := sum / n
	std := math.Sqrt(sumsq/n - mean*mean)
	if math.Abs(mean-5) > 0.1 {
		t.Errorf("mean = %v, want ≈5", mean)
	}
	if math.Abs(std-2) > 0.1 {
		t.Errorf("std = %v, want ≈2", std)
	}
}

func TestLogNormalMedian(t *testing.T) {
	s := New(3).Fork("lognormal")
	const n = 20001
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = s.LogNormalMedian(53, 0.4)
	}
	// The sample median should sit near the configured median.
	med := quickMedian(xs)
	if med < 48 || med > 58 {
		t.Errorf("median = %v, want ≈53", med)
	}
	for _, x := range xs {
		if x <= 0 {
			t.Fatalf("lognormal produced non-positive value %v", x)
		}
	}
}

func TestExpMean(t *testing.T) {
	s := New(8).Fork("exp")
	const n = 20000
	var sum float64
	for i := 0; i < n; i++ {
		x := s.Exp(10)
		if x < 0 {
			t.Fatalf("Exp produced negative %v", x)
		}
		sum += x
	}
	if mean := sum / n; math.Abs(mean-10) > 0.5 {
		t.Errorf("mean = %v, want ≈10", mean)
	}
}

func TestBoolProbability(t *testing.T) {
	s := New(5).Fork("bool")
	hits := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if s.Bool(0.3) {
			hits++
		}
	}
	if p := float64(hits) / n; math.Abs(p-0.3) > 0.03 {
		t.Errorf("Bool(0.3) frequency = %v", p)
	}
	if s.Bool(0) {
		t.Error("Bool(0) returned true")
	}
}

func TestUniformRange(t *testing.T) {
	s := New(6).Fork("uniform")
	f := func(seed uint8) bool {
		x := s.Uniform(-3, 7)
		return x >= -3 && x < 7
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPickWeights(t *testing.T) {
	s := New(11).Fork("pick")
	counts := make([]int, 3)
	const n = 30000
	for i := 0; i < n; i++ {
		counts[s.Pick([]float64{1, 2, 1})]++
	}
	if p := float64(counts[1]) / n; math.Abs(p-0.5) > 0.03 {
		t.Errorf("middle weight frequency = %v, want ≈0.5", p)
	}
}

func TestPickZeroWeightNeverChosen(t *testing.T) {
	s := New(12).Fork("pickzero")
	for i := 0; i < 1000; i++ {
		if got := s.Pick([]float64{0, 1, 0}); got != 1 {
			t.Fatalf("Pick chose zero-weight index %d", got)
		}
	}
}

func TestPickAllNonPositive(t *testing.T) {
	s := New(13).Fork("picknone")
	if got := s.Pick([]float64{0, -1, 0}); got != 0 {
		t.Errorf("Pick with no positive weights = %d, want 0", got)
	}
}

func TestOUStaysInBounds(t *testing.T) {
	s := New(21).Fork("ou")
	p := &OU{Mean: 0.4, Revert: 0.05, Sigma: 0.1, Min: 0, Max: 0.9}
	for i := 0; i < 5000; i++ {
		v := p.Step(s)
		if v < 0 || v > 0.9 {
			t.Fatalf("step %d: OU out of bounds: %v", i, v)
		}
	}
}

func TestOURevertsToMean(t *testing.T) {
	s := New(22).Fork("ou2")
	p := &OU{Mean: 0.5, Revert: 0.1, Sigma: 0.02, Min: 0, Max: 1}
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		sum += p.Step(s)
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.05 {
		t.Errorf("long-run mean = %v, want ≈0.5", mean)
	}
}

func TestOUValueMatchesLastStep(t *testing.T) {
	s := New(23).Fork("ou3")
	p := &OU{Mean: 0.3, Revert: 0.1, Sigma: 0.05, Min: 0, Max: 1}
	last := p.Step(s)
	if p.Value() != last {
		t.Errorf("Value = %v, want %v", p.Value(), last)
	}
}

// quickMedian returns the median without disturbing the caller's slice.
func quickMedian(xs []float64) float64 {
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	return cp[len(cp)/2]
}
