// Package simrand provides deterministic, forkable random-number streams
// for the simulator.
//
// Every stochastic component of the campaign — shadowing, cell load, test
// noise, handover durations — draws from its own named stream, forked from
// a single campaign seed. Forking is stable: the stream named
// "ran/cell42/load" produces the same sequence regardless of how many other
// streams exist or in which order they were created. This is what makes a
// whole campaign a pure function of (Config, seed), which in turn is what
// every regression test in this repository leans on.
package simrand

import (
	"hash/fnv"
	"math"
	"math/rand"
)

// Source is a named deterministic random stream.
//
// The zero value is not usable; construct with New or Fork.
type Source struct {
	rng  *rand.Rand
	seed int64
	name string
}

// New returns the root stream for a campaign seed.
func New(seed int64) *Source {
	return &Source{rng: rand.New(rand.NewSource(seed)), seed: seed, name: ""}
}

// Fork derives an independent child stream. The child's sequence depends
// only on the root seed and the full path of names from the root, never on
// sibling streams or draw order.
func (s *Source) Fork(name string) *Source {
	full := s.name + "/" + name
	h := fnv.New64a()
	h.Write([]byte(full))
	child := s.seed ^ int64(h.Sum64())
	return &Source{rng: rand.New(rand.NewSource(child)), seed: s.seed, name: full}
}

// Name reports the stream's path from the root, for diagnostics.
func (s *Source) Name() string { return s.name }

// Float64 draws from [0, 1).
func (s *Source) Float64() float64 { return s.rng.Float64() }

// Intn draws a uniform integer from [0, n). n must be positive.
func (s *Source) Intn(n int) int { return s.rng.Intn(n) }

// Int63 draws a non-negative 63-bit integer.
func (s *Source) Int63() int64 { return s.rng.Int63() }

// Normal draws from a Gaussian with the given mean and standard deviation.
func (s *Source) Normal(mean, stddev float64) float64 {
	return mean + stddev*s.rng.NormFloat64()
}

// LogNormal draws a value whose logarithm is Normal(mu, sigma).
// The median of the distribution is exp(mu).
func (s *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(s.Normal(mu, sigma))
}

// LogNormalMedian draws from a lognormal parameterized by its median and
// the sigma of the underlying normal — the natural way to express the
// paper's "median handover duration 53 ms with a long tail".
func (s *Source) LogNormalMedian(median, sigma float64) float64 {
	return s.LogNormal(math.Log(median), sigma)
}

// Exp draws from an exponential distribution with the given mean.
func (s *Source) Exp(mean float64) float64 {
	return s.rng.ExpFloat64() * mean
}

// Bool reports true with probability p.
func (s *Source) Bool(p float64) bool { return s.rng.Float64() < p }

// Uniform draws from [lo, hi).
func (s *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.rng.Float64()
}

// Pick returns an index in [0, len(weights)) with probability proportional
// to the weight. Zero or negative weights are never picked unless all
// weights are non-positive, in which case Pick returns 0.
func (s *Source) Pick(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return 0
	}
	x := s.rng.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// OU is a discrete-time Ornstein–Uhlenbeck process, used for slowly
// varying quantities such as cell background load: it reverts toward a
// mean with configurable correlation time while wandering with Gaussian
// noise, clamped to [Min, Max].
type OU struct {
	Mean    float64 // long-run mean
	Revert  float64 // per-step reversion rate in (0, 1]
	Sigma   float64 // per-step noise standard deviation
	Min     float64 // lower clamp
	Max     float64 // upper clamp
	value   float64
	started bool
}

// Step advances the process one tick and returns the new value.
func (p *OU) Step(s *Source) float64 {
	if !p.started {
		p.value = clamp(s.Normal(p.Mean, p.Sigma*3), p.Min, p.Max)
		p.started = true
		return p.value
	}
	p.value += p.Revert*(p.Mean-p.value) + s.Normal(0, p.Sigma)
	p.value = clamp(p.value, p.Min, p.Max)
	return p.value
}

// Value reports the current value without advancing.
func (p *OU) Value() float64 { return p.value }

// Seed initializes the process at the given value (clamped) instead of a
// random draw around the mean.
func (p *OU) Seed(v float64) {
	p.value = clamp(v, p.Min, p.Max)
	p.started = true
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
