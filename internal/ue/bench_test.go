package ue

import (
	"fmt"
	"testing"
	"time"

	"github.com/nuwins/cellwheels/internal/deploy"
	"github.com/nuwins/cellwheels/internal/geo"
	"github.com/nuwins/cellwheels/internal/radio"
	"github.com/nuwins/cellwheels/internal/simrand"
	"github.com/nuwins/cellwheels/internal/unit"
)

// BenchmarkCrowdStep measures the cost of advancing an attached-but-idle
// crowd 1000 ticks (50 simulated seconds). The dwell means are set far
// past the measured window, so attached UEs generate no events at all:
// ns/op should be nearly flat across the 10× difference in UE count —
// idle UEs cost nothing per tick, only events cost — which is the figure
// BENCH_0006.json tracks.
func BenchmarkCrowdStep(b *testing.B) {
	route := geo.DefaultRoute()
	m := deploy.NewMap(radio.Verizon, route, simrand.New(7))
	for _, size := range []int{10_000, 100_000} {
		b.Run(fmt.Sprintf("ues=%d", size), func(b *testing.B) {
			r := NewRegistry(Config{
				Op: radio.Verizon, Map: m, Route: route,
				Size: size, Span: 100 * unit.Kilometer, Seed: 13,
				HorizonTicks: 1 << 40,
				SessionMean:  10_000 * time.Hour, ActiveMean: 10_000 * time.Hour,
				ReselectMean: 10_000 * time.Hour, DetachMean: 100_000 * time.Hour,
			})
			now := time.Date(2022, 8, 12, 9, 0, 0, 0, time.UTC)
			// Drain the attach window first so the steady state, not the
			// one-time attach burst, is what gets measured.
			for i := 0; i < 1200; i++ {
				r.Advance(now)
				now = now.Add(50 * time.Millisecond)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := 0; j < 1000; j++ {
					r.Advance(now)
					now = now.Add(50 * time.Millisecond)
				}
			}
		})
	}
}
