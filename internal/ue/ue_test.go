package ue

import (
	"math/rand"
	"testing"
	"time"

	"github.com/nuwins/cellwheels/internal/deploy"
	"github.com/nuwins/cellwheels/internal/geo"
	"github.com/nuwins/cellwheels/internal/radio"
	"github.com/nuwins/cellwheels/internal/simrand"
	"github.com/nuwins/cellwheels/internal/unit"
)

// testMap builds one operator's deployment for registry tests.
func testMap(t *testing.T) (*geo.Route, *deploy.Map) {
	t.Helper()
	route := geo.DefaultRoute()
	return route, deploy.NewMap(radio.Verizon, route, simrand.New(7))
}

// anchor is the fixed instant tests advance at; the registry never reads
// a wall clock.
func anchor() time.Time { return time.Date(2022, 8, 12, 9, 0, 0, 0, time.UTC) }

// checkInvariants cross-checks the SoA store against itself: shard
// membership, swap-remove position indices, attached accounting, and the
// demand aggregates CellLoad serves from.
func checkInvariants(t *testing.T, r *Registry) {
	t.Helper()
	attached := 0
	for tech := 0; tech < radio.NumTechnologies; tech++ {
		for ci := range r.shards[tech] {
			sh := &r.shards[tech][ci]
			var demand int64
			for i, slot := range sh.slots {
				if r.state[slot] != stAttached {
					t.Fatalf("shard (%d,%d) holds detached slot %d", tech, ci, slot)
				}
				if int(r.tech[slot]) != tech || r.cell[slot] != int32(ci) {
					t.Fatalf("slot %d thinks it serves (%d,%d), shard is (%d,%d)",
						slot, r.tech[slot], r.cell[slot], tech, ci)
				}
				if r.pos[slot] != int32(i) {
					t.Fatalf("slot %d pos=%d, actual index %d", slot, r.pos[slot], i)
				}
				demand += int64(r.session[slot] + r.measure[slot])
			}
			if sh.demand != demand {
				t.Fatalf("shard (%d,%d) aggregate %d, per-slot sum %d", tech, ci, sh.demand, demand)
			}
			attached += len(sh.slots)
		}
	}
	if attached != r.attached {
		t.Fatalf("shards hold %d slots, attached counter says %d", attached, r.attached)
	}
}

// refUE is the naive reference model's per-UE record.
type refUE struct {
	tech   radio.Technology
	cell   int32
	demand int32
}

// TestRegistryMatchesReferenceModel drives the low-level SoA operations
// with a pseudorandom op sequence while mirroring every step in a naive
// map-of-structs model, then compares membership and aggregates. This is
// the property test pinning the sharded store against the obvious
// implementation.
func TestRegistryMatchesReferenceModel(t *testing.T) {
	route, m := testMap(t)
	const n = 300
	r := NewRegistry(Config{Op: radio.Verizon, Map: m, Route: route, Size: n, Seed: 11})
	// Start from a blank slate: the constructor scheduled attach events,
	// but this test drives the store directly instead of via the wheel.
	ref := map[int32]*refUE{}

	rng := rand.New(rand.NewSource(42))
	techs := []radio.Technology{radio.LTE, radio.LTEA, radio.NRLow, radio.NRMid, radio.NRMmWave}
	randomCell := func(tech radio.Technology) int32 {
		if c := m.CellCount(tech); c > 0 {
			return int32(rng.Intn(c))
		}
		return -1
	}

	for step := 0; step < 20000; step++ {
		slot := int32(rng.Intn(n))
		u, attached := ref[slot]
		switch op := rng.Intn(4); {
		case op == 0 && !attached: // attach
			tech := techs[rng.Intn(len(techs))]
			ci := randomCell(tech)
			if ci < 0 {
				continue
			}
			r.attachSlot(slot, tech, ci)
			ref[slot] = &refUE{tech: tech, cell: ci}
		case op == 1 && attached: // detach
			r.detachSlot(slot)
			delete(ref, slot)
		case op == 2 && attached: // move
			tech := techs[rng.Intn(len(techs))]
			ci := randomCell(tech)
			if ci < 0 {
				continue
			}
			r.moveSlot(slot, tech, ci)
			u.tech, u.cell = tech, ci
		case op == 3 && attached: // toggle session demand
			if r.session[slot] == 0 {
				d := int32(1 + rng.Intn(30))
				r.session[slot] = d
				r.addDemand(slot, d)
				u.demand = d
			} else {
				r.addDemand(slot, -r.session[slot])
				r.session[slot] = 0
				u.demand = 0
			}
		}
	}

	checkInvariants(t, r)
	if len(ref) != r.Attached() {
		t.Fatalf("reference model has %d attached, registry %d", len(ref), r.Attached())
	}
	// Aggregate the reference model per cell and compare every shard.
	type cellKey struct {
		tech radio.Technology
		cell int32
	}
	wantDemand := map[cellKey]int64{}
	wantCount := map[cellKey]int{}
	for slot, u := range ref {
		if int(r.tech[slot]) != int(u.tech) || r.cell[slot] != u.cell {
			t.Fatalf("slot %d: registry serves (%d,%d), reference (%d,%d)",
				slot, r.tech[slot], r.cell[slot], u.tech, u.cell)
		}
		k := cellKey{u.tech, u.cell}
		wantDemand[k] += int64(u.demand)
		wantCount[k]++
	}
	for tech := 0; tech < radio.NumTechnologies; tech++ {
		for ci := range r.shards[tech] {
			k := cellKey{radio.Technology(tech), int32(ci)}
			sh := &r.shards[tech][ci]
			if sh.demand != wantDemand[k] {
				t.Fatalf("shard (%d,%d): demand %d, reference %d", tech, ci, sh.demand, wantDemand[k])
			}
			if len(sh.slots) != wantCount[k] {
				t.Fatalf("shard (%d,%d): %d slots, reference %d", tech, ci, len(sh.slots), wantCount[k])
			}
		}
	}
}

// TestRegistryInvariantsUnderAdvance runs the full event-driven engine and
// re-checks the store invariants periodically — the wheel, the handlers,
// and the SoA ops all have to agree.
func TestRegistryInvariantsUnderAdvance(t *testing.T) {
	route, m := testMap(t)
	r := NewRegistry(Config{
		Op: radio.Verizon, Map: m, Route: route,
		Size: 2000, Span: 50 * unit.Kilometer, Seed: 3,
		HorizonTicks: 20000,
		SessionMean:  5 * time.Second,
		ActiveMean:   2 * time.Second,
		ReselectMean: 10 * time.Second,
		DetachMean:   30 * time.Second,
		ReattachMean: 5 * time.Second,
		MeasureSlots: 8, MeasureTicks: 100, MeasureUnits: 30,
	})
	now := anchor()
	for i := 0; i < 20000; i++ {
		r.Advance(now)
		now = now.Add(50 * time.Millisecond)
		if i%2500 == 0 {
			checkInvariants(t, r)
		}
	}
	checkInvariants(t, r)
	if r.Attached() == 0 {
		t.Fatal("no UEs attached after 20k ticks")
	}
	if r.MeasurementsStarted() == 0 {
		t.Fatal("no measurements started")
	}
}

// TestRegistryDeterministic pins positional identity: two registries with
// the same config, advanced independently, hold byte-equal state.
func TestRegistryDeterministic(t *testing.T) {
	route, m := testMap(t)
	cfg := Config{
		Op: radio.Verizon, Map: m, Route: route,
		Size: 1000, Span: 40 * unit.Kilometer, Seed: 99,
		HorizonTicks: 8000,
		SessionMean:  5 * time.Second, ActiveMean: 2 * time.Second,
		DetachMean: 20 * time.Second, ReattachMean: 4 * time.Second,
		MeasureSlots: 4, MeasureTicks: 50, MeasureUnits: 30,
	}
	a, b := NewRegistry(cfg), NewRegistry(cfg)
	now := anchor()
	for i := 0; i < 8000; i++ {
		a.Advance(now)
		b.Advance(now)
		now = now.Add(50 * time.Millisecond)
	}
	if a.Attached() != b.Attached() || a.EventsProcessed() != b.EventsProcessed() {
		t.Fatalf("diverged: attached %d vs %d, events %d vs %d",
			a.Attached(), b.Attached(), a.EventsProcessed(), b.EventsProcessed())
	}
	for slot := range a.state {
		if a.state[slot] != b.state[slot] || a.cell[slot] != b.cell[slot] ||
			a.tech[slot] != b.tech[slot] || a.session[slot] != b.session[slot] ||
			a.seq[slot] != b.seq[slot] {
			t.Fatalf("slot %d state diverged", slot)
		}
	}
	for tech := 0; tech < radio.NumTechnologies; tech++ {
		for ci := range a.shards[tech] {
			if a.shards[tech][ci].demand != b.shards[tech][ci].demand {
				t.Fatalf("shard (%d,%d) demand diverged", tech, ci)
			}
		}
	}
}

// TestEventDrivenCostIsSubLinear pins the point of the event wheel: an
// attached-but-quiet crowd costs O(events), not O(UEs × ticks). With
// hour-scale dwell means, 10k UEs over 10k ticks must process far fewer
// events than the 100M a polling loop would spend.
func TestEventDrivenCostIsSubLinear(t *testing.T) {
	route, m := testMap(t)
	const size, ticks = 10000, 10000
	r := NewRegistry(Config{
		Op: radio.Verizon, Map: m, Route: route,
		Size: size, Span: 50 * unit.Kilometer, Seed: 5,
		HorizonTicks: ticks,
		SessionMean:  time.Hour, ActiveMean: time.Hour,
		ReselectMean: time.Hour, DetachMean: 24 * time.Hour,
	})
	now := anchor()
	for i := 0; i < ticks; i++ {
		r.Advance(now)
		now = now.Add(50 * time.Millisecond)
	}
	naive := int64(size) * int64(ticks)
	if r.EventsProcessed()*100 > naive {
		t.Fatalf("processed %d events for a quiet crowd; want < 1%% of the %d naive polls",
			r.EventsProcessed(), naive)
	}
	if r.Attached() < size/2 {
		t.Fatalf("only %d/%d attached — the quiet crowd should be nearly fully attached", r.Attached(), size)
	}
}

// TestMeasurementCallbacks pins the measuring crowd: every designated slot
// fires OnMeasure exactly once, in deterministic order, with its demand
// landing after the callback (a measurement never sees its own load).
func TestMeasurementCallbacks(t *testing.T) {
	route, m := testMap(t)
	const samples = 6
	r := NewRegistry(Config{
		Op: radio.Verizon, Map: m, Route: route,
		Size: 600, Span: 30 * unit.Kilometer, Seed: 21,
		HorizonTicks: 6000, MeasureSlots: samples,
		MeasureTicks: 40, MeasureUnits: 25,
	})
	var slots []int
	r.OnMeasure = func(slot int, odo unit.Meters, now time.Time) {
		if r.measure[slot] != 0 {
			t.Fatalf("slot %d already carries measurement demand during its own callback", slot)
		}
		slots = append(slots, slot)
	}
	now := anchor()
	for i := 0; i < 6000; i++ {
		r.Advance(now)
		now = now.Add(50 * time.Millisecond)
	}
	if len(slots) != samples {
		t.Fatalf("OnMeasure fired %d times, want %d (slots %v)", len(slots), samples, slots)
	}
	if r.MeasurementsStarted() != samples {
		t.Fatalf("MeasurementsStarted() = %d, want %d", r.MeasurementsStarted(), samples)
	}
	seen := map[int]bool{}
	for _, s := range slots {
		if seen[s] {
			t.Fatalf("slot %d measured twice", s)
		}
		seen[s] = true
	}
	checkInvariants(t, r)
	// All measurement windows (40 ticks) ended long before tick 6000, so
	// no measurement demand may remain parked anywhere.
	for tech := 0; tech < radio.NumTechnologies; tech++ {
		for ci := range r.shards[tech] {
			for _, slot := range r.shards[tech][ci].slots {
				if r.measure[slot] != 0 {
					t.Fatalf("slot %d still carries measurement demand after its window", slot)
				}
			}
		}
	}
}

// TestCellLoadBounds pins the demand→load mapping: empty cells sit at the
// base floor and loaded cells never exceed the stand-in's ceiling.
func TestCellLoadBounds(t *testing.T) {
	route, m := testMap(t)
	r := NewRegistry(Config{Op: radio.Verizon, Map: m, Route: route, Size: 50, Seed: 1})
	c := m.CellAt(radio.LTE, 0)
	if got := r.CellLoad(c, anchor()); got != baseLoad {
		t.Fatalf("empty cell load = %v, want base %v", got, baseLoad)
	}
	// Pile implausible demand onto one cell and check the clamp.
	for slot := int32(0); slot < 50; slot++ {
		r.attachSlot(slot, radio.LTE, 0)
		r.session[slot] = 10000
		r.addDemand(slot, 10000)
	}
	if got := r.CellLoad(c, anchor()); got != maxLoad {
		t.Fatalf("saturated cell load = %v, want clamp %v", got, maxLoad)
	}
}

// TestWheelFarEvents pins the overflow path: events scheduled beyond the
// ring's horizon fire on exactly their due tick.
func TestWheelFarEvents(t *testing.T) {
	var w wheel
	w.init()
	ringSize := int64(len(w.ring))
	due := []int64{1, 2, ringSize - 1, ringSize, ringSize + 1, 3 * ringSize, 10*ringSize + 7}
	for i, at := range due {
		w.schedule(event{at: at, slot: int32(i)}, 0)
	}
	if w.depth != len(due) {
		t.Fatalf("depth = %d after scheduling, want %d", w.depth, len(due))
	}
	got := map[int64][]int32{}
	for tick := int64(1); tick <= 10*ringSize+8; tick++ {
		for _, ev := range w.take(tick) {
			got[tick] = append(got[tick], ev.slot)
		}
	}
	if w.depth != 0 {
		t.Fatalf("depth = %d after draining, want 0", w.depth)
	}
	for i, at := range due {
		found := false
		for _, s := range got[at] {
			if s == int32(i) {
				found = true
			}
		}
		if !found {
			t.Fatalf("event %d (due %d) did not fire on its tick; fired: %v", i, at, got[at])
		}
	}
}

// TestStaleEventsDropped pins generation fencing: events scheduled before
// a detach must not fire after it.
func TestStaleEventsDropped(t *testing.T) {
	route, m := testMap(t)
	r := NewRegistry(Config{Op: radio.Verizon, Map: m, Route: route, Size: 1, Seed: 8})
	// Manually attach and schedule a session, then detach: the session
	// event carries the old generation and must be dropped.
	r.attachSlot(0, radio.LTE, 0)
	r.schedule(evSession, 0, 1)
	r.detachSlot(0)
	r.gen[0]++
	r.Advance(anchor())
	// The stale session event is skipped before dispatch; the slot must
	// not have opened a session.
	if r.session[0] != 0 {
		t.Fatal("stale session event fired after detach")
	}
	checkInvariants(t, r)
}
