package ue

import (
	"github.com/nuwins/cellwheels/internal/geo"
	"github.com/nuwins/cellwheels/internal/unit"
)

// rasterStep is the along-route granularity of the region/timezone
// raster. Region and timezone change on multi-kilometer scales, so 250 m
// is comfortably finer than anything the crowd can observe.
const rasterStep = 250 * unit.Meter

// raster precomputes region and timezone along the crowd's span so that
// drawing 10⁵–10⁶ positions costs array lookups instead of route
// interpolation per attempt.
type raster struct {
	regions   []uint8
	timezones []uint8
}

func newRaster(route *geo.Route, span unit.Meters) raster {
	n := int(span/rasterStep) + 2
	r := raster{
		regions:   make([]uint8, n),
		timezones: make([]uint8, n),
	}
	for i := 0; i < n; i++ {
		wp := route.At(unit.Meters(i) * rasterStep)
		r.regions[i] = uint8(wp.Region)
		r.timezones[i] = uint8(wp.Timezone)
	}
	return r
}

func (r raster) idx(odo unit.Meters) int {
	i := int(odo / rasterStep)
	if i < 0 {
		return 0
	}
	if i >= len(r.regions) {
		return len(r.regions) - 1
	}
	return i
}

func (r raster) region(odo unit.Meters) geo.Region {
	return geo.Region(r.regions[r.idx(odo)])
}

func (r raster) timezone(odo unit.Meters) geo.Timezone {
	return geo.Timezone(r.timezones[r.idx(odo)])
}
