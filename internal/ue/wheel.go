package ue

// event is one scheduled occurrence for a slot. The generation stamp
// lets a detach cancel every event still in flight for the slot without
// searching the wheel: stale generations are dropped at fire time.
type event struct {
	at   int64
	slot int32
	gen  uint32
	kind uint8
}

// wheelBits sizes the wheel's ring: 2^13 ticks ≈ 410 s of horizon at the
// 50 ms step. Events further out wait in per-epoch overflow buckets and
// are folded into the ring when their epoch begins, so scheduling and
// firing stay O(1) amortized whatever the horizon.
const wheelBits = 13

// wheel is a tick-indexed timer wheel: a ring of near-term buckets plus
// keyed overflow for far-future epochs. It imposes no order within a
// bucket — Advance sorts each bucket by (kind, slot) before applying it,
// which is the registry's ordering contract.
type wheel struct {
	ring  [][]event
	far   map[int64][]event // epoch (tick >> wheelBits) -> events
	spare [][]event         // fired buckets' storage, awaiting reuse
	depth int               // scheduled but not yet fired
}

// spareCap bounds the recycled-bucket pool; beyond it, storage is simply
// dropped for the GC. One bucket fires per tick, so over a full ring
// revolution the pool can absorb up to a ring's worth of fired storage —
// exactly the demand the next epoch fold and the epoch's first-touch
// schedules create. A smaller cap would leak steady-state allocations
// back into Advance; a larger one can never fill.
const spareCap = 1 << wheelBits

func (w *wheel) init() {
	w.ring = make([][]event, 1<<wheelBits)
	w.far = map[int64][]event{}
}

// schedule files an event due strictly after the current tick.
func (w *wheel) schedule(ev event, now int64) {
	if ev.at>>wheelBits == now>>wheelBits {
		w.emplace(ev.at&(1<<wheelBits-1), ev)
	} else {
		e := ev.at >> wheelBits
		w.far[e] = append(w.far[e], ev)
	}
	w.depth++
}

// emplace appends ev to ring slot i, seeding an empty slot from the
// spare pool so steady-state filing reuses fired buckets' storage
// instead of growing fresh ones.
func (w *wheel) emplace(i int64, ev event) {
	if w.ring[i] == nil && len(w.spare) > 0 {
		w.ring[i] = w.spare[len(w.spare)-1]
		w.spare = w.spare[:len(w.spare)-1]
	}
	w.ring[i] = append(w.ring[i], ev)
}

// take returns (and removes) the bucket due at tick. On the first tick
// of an epoch the epoch's overflow is folded into the ring first. The
// overflow map is only ever indexed by epoch key, never iterated, so no
// map-order nondeterminism can leak into results.
func (w *wheel) take(tick int64) []event {
	mask := int64(1<<wheelBits - 1)
	if tick&mask == 0 {
		epoch := tick >> wheelBits
		if evs, ok := w.far[epoch]; ok {
			for _, ev := range evs {
				w.emplace(ev.at&mask, ev)
			}
			delete(w.far, epoch)
		}
	}
	b := w.ring[tick&mask]
	w.ring[tick&mask] = nil
	w.depth -= len(b)
	return b
}

// recycle returns a fired bucket's storage to the spare pool. The caller
// must be completely done with the bucket: the next schedule may hand the
// same backing array to a new ring slot.
func (w *wheel) recycle(b []event) {
	if cap(b) == 0 || len(w.spare) >= spareCap {
		return
	}
	w.spare = append(w.spare, b[:0])
}
