package ue

import (
	"testing"
	"time"

	"github.com/nuwins/cellwheels/internal/deploy"
	"github.com/nuwins/cellwheels/internal/geo"
	"github.com/nuwins/cellwheels/internal/radio"
	"github.com/nuwins/cellwheels/internal/simrand"
	"github.com/nuwins/cellwheels/internal/unit"
)

// TestAdvanceSteadyStateAllocs pins the crowd tick's allocation profile
// with a live event mix (sessions, reselections, detaches all enabled):
// after the attach burst drains and the wheel's bucket pool and shard
// slices have grown to steady state, Advance must average well under one
// allocation per tick. The wheel's bucket recycling, the insertion sort
// replacing sort.SliceStable, and the pointer-passed chooser are what
// this guards — before those fixes every non-empty tick allocated.
func TestAdvanceSteadyStateAllocs(t *testing.T) {
	route := geo.DefaultRoute()
	m := deploy.NewMap(radio.TMobile, route, simrand.New(7))
	// Dwell means are shortened so the whole event mix lands inside the
	// wheel's 410 s ring horizon: the recycling pool serves ring buckets,
	// and events past the horizon go through the far-overflow map, which
	// allocates by design (rarely, amortized) and isn't what this pins.
	r := NewRegistry(Config{
		Op: radio.TMobile, Map: m, Route: route,
		Size: 5000, Span: 100 * unit.Kilometer, Seed: 21,
		HorizonTicks: 1 << 40,
		SessionMean:  20 * time.Second,
		ActiveMean:   8 * time.Second,
		ReselectMean: 45 * time.Second,
		DetachMean:   90 * time.Second,
		ReattachMean: 30 * time.Second,
	})
	now := time.Date(2022, 8, 12, 9, 0, 0, 0, time.UTC)
	// Drain the attach window and let dwell processes reach steady state.
	for i := 0; i < 5000; i++ {
		r.Advance(now)
		now = now.Add(50 * time.Millisecond)
	}

	avg := testing.AllocsPerRun(5000, func() {
		r.Advance(now)
		now = now.Add(50 * time.Millisecond)
	})
	// The budget is an average over live ticks, not zero: far-map appends
	// and occasional bucket growth beyond a spare's capacity still
	// allocate, amortized. The pre-fix engine sat at 3+ per tick
	// (comparator closure and slice-header boxing on every sorted bucket,
	// fresh ring buckets every epoch).
	if avg > 0.2 {
		t.Errorf("steady-state Advance averages %.3f allocs per tick, want <= 0.2", avg)
	}
}
