// Package ue is the metro-scale crowd engine: a registry of background
// UEs stored struct-of-arrays and sharded by serving cell, advanced by an
// event wheel instead of per-UE polling.
//
// The six-handset campaign ticks every phone every 50 ms; that model is
// exact but costs O(UEs × ticks), which makes city-scale populations —
// 10⁵–10⁶ subscribers sharing the sectors the test phones drive through —
// unaffordable. The registry inverts the loop: a UE consumes work only
// when something happens to it (attach, session open/close, reselection,
// detach, measurement), and every event is scheduled on a tick-indexed
// wheel, so the cost of a quiet crowd is O(events), not O(UEs × ticks).
//
// Two properties the rest of the repository depends on:
//
//   - Positional identity. Every random draw a slot ever makes is a pure
//     function of (Config.Seed, slot index, per-slot draw counter) via a
//     splitmix64 hash — the same derivation idea as fleet.RunSeed's
//     positional seeds, but stateless, because a math/rand stream per
//     slot (~5 KB each) is infeasible at 10⁶ UEs. No slot's sequence
//     depends on any other slot or on scheduling, so crowd state is
//     byte-identical for any worker count.
//   - Deterministic event order. Events due on the same tick are applied
//     in ascending (kind, slot) order — the wheel's ordering contract
//     (see DESIGN.md Appendix D) — so wheel internals can be reorganized
//     freely without changing results.
//
// Per-cell aggregate demand (integer units, exact under any summation
// order) is the registry's output surface: it backs the demand-driven
// load model behind ran.LoadBackend.
package ue

import (
	"math"
	"time"

	"github.com/nuwins/cellwheels/internal/deploy"
	"github.com/nuwins/cellwheels/internal/geo"
	"github.com/nuwins/cellwheels/internal/obs"
	"github.com/nuwins/cellwheels/internal/radio"
	"github.com/nuwins/cellwheels/internal/unit"
)

// Config parameterizes one operator lane's crowd.
type Config struct {
	Op    radio.Operator
	Map   *deploy.Map
	Route *geo.Route

	// Size is the number of background UEs (slots). Zero is a valid empty
	// crowd: the registry still answers CellLoad with the base load.
	Size int
	// Span bounds drawn positions to [0, Span] along the route; zero
	// means the full route. Campaigns pass their driven limit so the
	// crowd lives where the handsets drive.
	Span unit.Meters
	// Seed roots every slot's positional draw sequence. Campaigns derive
	// it per (master seed, operator) the way fleet.RunSeed derives
	// replicate seeds.
	Seed int64
	// Tick is the simulation step; zero means 50 ms.
	Tick time.Duration
	// HorizonTicks is the campaign length, used to spread measurement
	// slots across the run.
	HorizonTicks int64

	// Dwell-time means of the per-slot session process; zeros take the
	// defaults noted here.
	SessionMean  time.Duration // idle dwell before a session opens (60 s)
	ActiveMean   time.Duration // session length (20 s)
	ReselectMean time.Duration // gap between reselection checks (2 min)
	DetachMean   time.Duration // attached lifetime before detaching (15 min)
	ReattachMean time.Duration // detached dwell before re-attaching (2 min)
	AttachWindow time.Duration // initial attach staggering window (30 s)

	// MeasureSlots designates this many evenly spaced slots as measuring
	// UEs (the speedtest crowd); their measurement start events are spread
	// across the horizon. Clamped to Size.
	MeasureSlots int
	// MeasureTicks is how long one measurement occupies its serving cell.
	MeasureTicks int64
	// MeasureUnits is the demand a running measurement adds to its cell.
	MeasureUnits int32

	// Obs receives the crowd counters and gauges (events, attached UEs,
	// wheel depth, measurements). Write-only and nil-safe, as everywhere.
	Obs *obs.Recorder
}

// Slot lifecycle states.
const (
	stDetached uint8 = iota
	stAttached
)

// Event kinds, in their within-tick processing order. Events due on the
// same tick apply in ascending (kind, slot): attaches first, then
// detaches, reselections, session toggles, and measurement edges.
const (
	evAttach uint8 = iota
	evDetach
	evHandover
	evSession
	evMeasureEnd
	evMeasureStart
)

// cellShard is one cell's slice of the registry: the slots attached to
// the cell and their aggregate demand in integer units. Integer demand
// makes the aggregate exact under any update order.
type cellShard struct {
	demand int64
	slots  []int32
}

// Registry is one operator's crowd. Not safe for concurrent use; each
// campaign lane owns one and advances it on the lane's goroutine.
type Registry struct {
	cfg  Config
	tick int64

	// Struct-of-arrays slot store. pos[i] is slot i's index within its
	// serving shard's slot list (swap-remove bookkeeping).
	odo     []unit.Meters
	tz      []uint8
	state   []uint8
	gen     []uint32
	tech    []uint8
	cell    []int32
	pos     []int32
	session []int32 // demand units of an open session, 0 while idle
	measure []int32 // demand units of a running measurement
	seq     []uint64
	isMeas  []bool

	shards [radio.NumTechnologies][]cellShard
	wheel  wheel

	attached  int
	processed int64
	started   int64 // measurements started

	// OnMeasure, when set, is invoked synchronously at each measurement
	// slot's start event with the slot, its position, and the simulation
	// time. The campaign layer hangs the actual speedtest flow simulation
	// here; invocation order is the wheel's deterministic event order.
	OnMeasure func(slot int, odo unit.Meters, now time.Time)

	// Dwell means in ticks.
	sessionT, activeT, reselectT, detachT, reattachT float64
	attachW                                          int64

	rast raster

	// chooser is the reusable policy-randomness adapter: handleAttach and
	// handleHandover set its slot and pass &r.chooser, so the per-event
	// interface conversion carries a pointer instead of boxing a value.
	chooser slotChooser

	obsEvents   *obs.Counter
	obsMeasures *obs.Counter
	obsAttached *obs.Gauge
	obsDepth    *obs.Gauge
}

// Demand-to-load calibration: a cell's load is the base floor plus its
// aggregate demand over the technology's capacity units, clamped to the
// same band the stand-in OU model uses.
const (
	baseLoad = 0.12
	minLoad  = 0.02
	maxLoad  = 0.92
)

// capacityUnits scales demand units into load per technology: wider
// pipes absorb more concurrent sessions before the sector saturates.
func capacityUnits(t radio.Technology) float64 {
	switch t {
	case radio.NRMmWave:
		return 1500
	case radio.NRMid:
		return 1000
	case radio.NRLow:
		return 700
	case radio.LTEA:
		return 500
	default:
		return 400
	}
}

func (c *Config) applyDefaults() {
	if c.Tick <= 0 {
		c.Tick = 50 * time.Millisecond
	}
	if c.SessionMean <= 0 {
		c.SessionMean = 60 * time.Second
	}
	if c.ActiveMean <= 0 {
		c.ActiveMean = 20 * time.Second
	}
	if c.ReselectMean <= 0 {
		c.ReselectMean = 2 * time.Minute
	}
	if c.DetachMean <= 0 {
		c.DetachMean = 15 * time.Minute
	}
	if c.ReattachMean <= 0 {
		c.ReattachMean = 2 * time.Minute
	}
	if c.AttachWindow <= 0 {
		c.AttachWindow = 30 * time.Second
	}
	if c.MeasureSlots > c.Size {
		c.MeasureSlots = c.Size
	}
}

// NewRegistry builds a crowd: draws every slot's position (urban-biased,
// like the speedtest crowd), and schedules the initial attach events
// across the attach window plus the measurement slots across the horizon.
// All the per-UE work — attaching, sessions, reselections — happens
// event-driven during Advance.
func NewRegistry(cfg Config) *Registry {
	cfg.applyDefaults()
	n := cfg.Size
	r := &Registry{
		cfg:     cfg,
		odo:     make([]unit.Meters, n),
		tz:      make([]uint8, n),
		state:   make([]uint8, n),
		gen:     make([]uint32, n),
		tech:    make([]uint8, n),
		cell:    make([]int32, n),
		pos:     make([]int32, n),
		session: make([]int32, n),
		measure: make([]int32, n),
		seq:     make([]uint64, n),
		isMeas:  make([]bool, n),

		sessionT:  ticksOf(cfg.SessionMean, cfg.Tick),
		activeT:   ticksOf(cfg.ActiveMean, cfg.Tick),
		reselectT: ticksOf(cfg.ReselectMean, cfg.Tick),
		detachT:   ticksOf(cfg.DetachMean, cfg.Tick),
		reattachT: ticksOf(cfg.ReattachMean, cfg.Tick),
		attachW:   int64(ticksOf(cfg.AttachWindow, cfg.Tick)),

		obsEvents:   cfg.Obs.Counter("crowd/" + cfg.Op.Short() + "/events"),
		obsMeasures: cfg.Obs.Counter("crowd/" + cfg.Op.Short() + "/measurements"),
		obsAttached: cfg.Obs.Gauge("crowd/" + cfg.Op.Short() + "/attached"),
		obsDepth:    cfg.Obs.Gauge("crowd/" + cfg.Op.Short() + "/wheel_depth"),
	}
	r.chooser.r = r
	r.wheel.init()
	for t := 0; t < radio.NumTechnologies; t++ {
		r.shards[t] = make([]cellShard, cfg.Map.CellCount(radio.Technology(t)))
	}

	span := cfg.Route.Total()
	if cfg.Span > 0 && cfg.Span < span {
		span = cfg.Span
	}
	r.rast = newRaster(cfg.Route, span)

	for slot := int32(0); slot < int32(n); slot++ {
		r.cell[slot] = -1
		r.odo[slot] = r.drawPosition(slot, span)
		r.tz[slot] = uint8(r.rast.timezone(r.odo[slot]))
		r.schedule(evAttach, slot, 1+r.intn(slot, r.attachW))
	}
	r.scheduleMeasurements()
	return r
}

// ticksOf converts a duration to ticks as a float mean (for exponential
// dwell draws), never below one tick.
func ticksOf(d, tick time.Duration) float64 {
	t := float64(d) / float64(tick)
	if t < 1 {
		return 1
	}
	return t
}

// scheduleMeasurements designates evenly spaced slots as measuring UEs
// and spreads their start events across the usable horizon, after the
// attach window. Starts that would not finish before the horizon are
// scheduled anyway and simply never fire — the campaign ends first.
func (r *Registry) scheduleMeasurements() {
	m := r.cfg.MeasureSlots
	if m <= 0 || r.cfg.Size <= 0 {
		return
	}
	stride := int64(r.cfg.Size / m)
	if stride < 1 {
		stride = 1
	}
	gap := int64(1)
	if usable := r.cfg.HorizonTicks - r.attachW - r.cfg.MeasureTicks; usable > int64(m) {
		gap = usable / int64(m)
	}
	for i := int64(0); i < int64(m); i++ {
		slot := int32(i * stride)
		r.isMeas[slot] = true
		r.schedule(evMeasureStart, slot, r.attachW+1+i*gap)
	}
}

// Advance moves the crowd one tick forward and applies every event due,
// in (kind, slot) order. The caller supplies the simulation instant —
// tick→time is not linear (the timeline jumps overnight between trip
// days), so the lane, which walks the timeline, owns the clock.
//
//lint:hotroot — the crowd engine's per-tick entry point
func (r *Registry) Advance(now time.Time) {
	r.tick++
	bucket := r.wheel.take(r.tick)
	if len(bucket) > 1 {
		// Stable insertion sort in (kind, slot) order. Buckets are tiny —
		// a handful of events share a tick — and sort.SliceStable would
		// box the slice and allocate its comparator on every tick. Shifting
		// only on strict inequality preserves the order of equal elements,
		// so the result is byte-identical to the sort.SliceStable it
		// replaces.
		for i := 1; i < len(bucket); i++ {
			ev := bucket[i]
			j := i
			for j > 0 && (ev.kind < bucket[j-1].kind ||
				(ev.kind == bucket[j-1].kind && ev.slot < bucket[j-1].slot)) {
				bucket[j] = bucket[j-1]
				j--
			}
			bucket[j] = ev
		}
	}
	for _, ev := range bucket {
		if ev.gen != r.gen[ev.slot] {
			continue // cancelled by a detach after scheduling
		}
		switch ev.kind {
		case evAttach:
			r.handleAttach(ev.slot)
		case evDetach:
			r.handleDetach(ev.slot)
		case evHandover:
			r.handleHandover(ev.slot)
		case evSession:
			r.handleSession(ev.slot)
		case evMeasureStart:
			r.handleMeasureStart(ev.slot, now)
		case evMeasureEnd:
			r.handleMeasureEnd(ev.slot)
		}
	}
	if n := int64(len(bucket)); n > 0 {
		r.processed += n
		r.obsEvents.Add(n)
	}
	r.obsAttached.Set(float64(r.attached))
	r.obsDepth.Set(float64(r.wheel.depth))
	// Every event has been applied; hand the bucket's storage back so the
	// next tick's schedules reuse it instead of allocating.
	r.wheel.recycle(bucket)
}

// CellLoad reports a cell's background load from its shard's aggregate
// demand. This is the demand-driven ran.LoadBackend: the handsets and
// the crowd's own measurement flows read the same aggregates the crowd
// writes. The instant is unused — shard state is tick-synchronous.
func (r *Registry) CellLoad(c *deploy.Cell, _ time.Time) float64 {
	sh := &r.shards[c.Tech][c.Index]
	return unit.Clamp(baseLoad+float64(sh.demand)/capacityUnits(c.Tech), minLoad, maxLoad)
}

// Attached reports how many slots are currently attached.
func (r *Registry) Attached() int { return r.attached }

// EventsProcessed reports the total events applied so far — the figure
// the sub-linearity test and bench compare against Size × ticks.
func (r *Registry) EventsProcessed() int64 { return r.processed }

// MeasurementsStarted reports how many measurement start events fired.
func (r *Registry) MeasurementsStarted() int64 { return r.started }

// Size reports the slot count.
func (r *Registry) Size() int { return r.cfg.Size }

// schedule enqueues an event for this slot at the given delay (minimum
// one tick), stamped with the slot's current generation so a later
// detach invalidates it.
func (r *Registry) schedule(kind uint8, slot int32, delay int64) {
	if delay < 1 {
		delay = 1
	}
	r.wheel.schedule(event{at: r.tick + delay, slot: slot, gen: r.gen[slot], kind: kind}, r.tick)
}

// handleAttach runs the idle elevation policy at the slot's position and
// joins the nearest cell of the chosen technology, falling back to LTE
// (always deployed) when the choice has no site in range. A slot with no
// reachable site at all retries after a reattach dwell.
func (r *Registry) handleAttach(slot int32) {
	if r.state[slot] != stDetached {
		return
	}
	odo := r.odo[slot]
	avail := r.cfg.Map.Available(odo)
	r.chooser.slot = slot
	tech := deploy.ChooseTechWith(r.cfg.Op, avail, deploy.Idle, geo.Timezone(r.tz[slot]), &r.chooser)
	ci := r.nearestCell(odo, tech)
	if ci < 0 && tech != radio.LTE {
		tech = radio.LTE
		ci = r.nearestCell(odo, radio.LTE)
	}
	if ci < 0 {
		r.schedule(evAttach, slot, r.expTicks(slot, r.reattachT))
		return
	}
	r.attachSlot(slot, tech, int32(ci))
	r.schedule(evSession, slot, r.expTicks(slot, r.sessionT))
	r.schedule(evHandover, slot, r.expTicks(slot, r.reselectT))
	if !r.isMeas[slot] {
		// Measuring slots stay attached for the whole campaign so a
		// detach can never race their measurement window.
		r.schedule(evDetach, slot, r.expTicks(slot, r.detachT))
	}
}

// handleDetach removes the slot from its shard and bumps its generation,
// cancelling every event still in flight for it, then schedules the
// re-attach that keeps the population stationary.
func (r *Registry) handleDetach(slot int32) {
	if r.state[slot] != stAttached {
		return
	}
	r.detachSlot(slot)
	r.gen[slot]++
	r.schedule(evAttach, slot, r.expTicks(slot, r.reattachT))
}

// handleHandover re-runs the elevation policy — active slots count as
// heavy-downlink traffic, which is what pulls the loaded part of the
// crowd onto 5G — and moves the slot if a different (tech, cell) wins.
func (r *Registry) handleHandover(slot int32) {
	if r.state[slot] != stAttached {
		return
	}
	odo := r.odo[slot]
	traffic := deploy.Idle
	if r.session[slot] > 0 || r.measure[slot] > 0 {
		traffic = deploy.HeavyDL
	}
	avail := r.cfg.Map.Available(odo)
	r.chooser.slot = slot
	tech := deploy.ChooseTechWith(r.cfg.Op, avail, traffic, geo.Timezone(r.tz[slot]), &r.chooser)
	ci := r.nearestCell(odo, tech)
	if ci < 0 && tech != radio.LTE {
		tech = radio.LTE
		ci = r.nearestCell(odo, radio.LTE)
	}
	if ci >= 0 && (uint8(tech) != r.tech[slot] || int32(ci) != r.cell[slot]) {
		r.moveSlot(slot, tech, int32(ci))
	}
	r.schedule(evHandover, slot, r.expTicks(slot, r.reselectT))
}

// handleSession toggles the slot between idle and active, moving its
// session demand in or out of the serving shard.
func (r *Registry) handleSession(slot int32) {
	if r.state[slot] != stAttached {
		return
	}
	var next int64
	if r.session[slot] == 0 {
		u := int32(4 + r.intn(slot, 25)) // 4..28 demand units per session
		r.session[slot] = u
		r.addDemand(slot, u)
		next = r.expTicks(slot, r.activeT)
	} else {
		r.addDemand(slot, -r.session[slot])
		r.session[slot] = 0
		next = r.expTicks(slot, r.sessionT)
	}
	r.schedule(evSession, slot, next)
}

// handleMeasureStart fires the measurement callback and then parks the
// measurement's demand on the serving cell until the end event. The
// demand lands after the callback so a measurement never counts its own
// flow as background load; concurrent measurements still see each other
// because their start events differ in time.
func (r *Registry) handleMeasureStart(slot int32, now time.Time) {
	r.started++
	r.obsMeasures.Add(1)
	if r.OnMeasure != nil {
		r.OnMeasure(int(slot), r.odo[slot], now)
	}
	if r.state[slot] == stAttached && r.cfg.MeasureUnits > 0 {
		r.measure[slot] = r.cfg.MeasureUnits
		r.addDemand(slot, r.cfg.MeasureUnits)
		r.schedule(evMeasureEnd, slot, r.cfg.MeasureTicks)
	}
}

// handleMeasureEnd releases the measurement's demand.
func (r *Registry) handleMeasureEnd(slot int32) {
	if r.measure[slot] > 0 {
		r.addDemand(slot, -r.measure[slot])
		r.measure[slot] = 0
	}
}

// attachSlot joins a shard. The slot must be detached and carry no
// demand.
func (r *Registry) attachSlot(slot int32, tech radio.Technology, ci int32) {
	sh := &r.shards[tech][ci]
	r.state[slot] = stAttached
	r.tech[slot] = uint8(tech)
	r.cell[slot] = ci
	r.pos[slot] = int32(len(sh.slots))
	sh.slots = append(sh.slots, slot)
	r.attached++
}

// detachSlot releases the slot's demand and swap-removes it from its
// shard.
func (r *Registry) detachSlot(slot int32) {
	if r.session[slot] > 0 {
		r.addDemand(slot, -r.session[slot])
		r.session[slot] = 0
	}
	if r.measure[slot] > 0 {
		r.addDemand(slot, -r.measure[slot])
		r.measure[slot] = 0
	}
	r.removeFromShard(slot)
	r.state[slot] = stDetached
	r.cell[slot] = -1
	r.attached--
}

// moveSlot hands the slot (and its demand) from its current shard to a
// new (tech, cell).
func (r *Registry) moveSlot(slot int32, tech radio.Technology, ci int32) {
	d := int64(r.session[slot] + r.measure[slot])
	r.shards[r.tech[slot]][r.cell[slot]].demand -= d
	r.removeFromShard(slot)
	sh := &r.shards[tech][ci]
	r.tech[slot] = uint8(tech)
	r.cell[slot] = ci
	r.pos[slot] = int32(len(sh.slots))
	sh.slots = append(sh.slots, slot)
	sh.demand += d
}

// removeFromShard swap-removes the slot from its serving shard's slot
// list, fixing the moved slot's position index.
func (r *Registry) removeFromShard(slot int32) {
	sh := &r.shards[r.tech[slot]][r.cell[slot]]
	i := r.pos[slot]
	last := int32(len(sh.slots) - 1)
	moved := sh.slots[last]
	sh.slots[i] = moved
	r.pos[moved] = i
	sh.slots = sh.slots[:last]
}

// addDemand moves the slot's demand delta into its serving shard's
// aggregate.
func (r *Registry) addDemand(slot int32, delta int32) {
	r.shards[r.tech[slot]][r.cell[slot]].demand += int64(delta)
}

// nearestCell picks the closest site of a technology within the usual
// attachment window, or -1 when none is in range.
func (r *Registry) nearestCell(odo unit.Meters, t radio.Technology) int {
	window := 3 * radio.Band(t).CellRadius
	lo, hi := r.cfg.Map.CellRange(odo, t, window)
	best, bestIdx := math.Inf(1), -1
	for i := lo; i < hi; i++ {
		if d := float64(r.cfg.Map.CellAt(t, i).Distance(odo)); d < best {
			best, bestIdx = d, i
		}
	}
	return bestIdx
}

// drawPosition samples the slot's home position with the same urban bias
// the speedtest crowd uses: crowdsourced users live in cities and towns,
// rarely on the interstate.
func (r *Registry) drawPosition(slot int32, span unit.Meters) unit.Meters {
	for attempt := 0; attempt < 8; attempt++ {
		odo := unit.Meters(r.f64(slot) * float64(span))
		accept := 0.08
		switch r.rast.region(odo) {
		case geo.Urban:
			accept = 1.0
		case geo.Suburban:
			accept = 0.5
		}
		if r.f64(slot) < accept {
			return odo
		}
	}
	return unit.Meters(r.f64(slot) * float64(span))
}

// slotChooser adapts a slot's positional draw stream to the Bool-only
// randomness the elevation policy consumes. The registry holds one and
// passes its address so the deploy.Chooser conversion never boxes.
type slotChooser struct {
	r    *Registry
	slot int32
}

// Bool reports true with probability p, consuming one slot draw.
func (c *slotChooser) Bool(p float64) bool { return c.r.f64(c.slot) < p }
