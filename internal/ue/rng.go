package ue

import "math"

// Per-slot positional randomness. A forked simrand.Source per slot would
// cost ~5 KB of math/rand state each — gigabytes at 10⁶ UEs — so slots
// draw from a stateless splitmix64 hash instead: draw k of slot s is
// mix64(slotKey(seed, s) + k·golden). The only per-slot state is the
// 8-byte draw counter, and the k-th draw of slot s is a pure function of
// (seed, s, k) — positional identity, independent of every other slot.

const (
	golden   = 0x9e3779b97f4a7c15
	slotSalt = 0x632be59bd9b4e019
)

// mix64 is the splitmix64 finalizer (same constants the RAN layer's
// hashNormal uses).
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// draw returns the slot's next 64-bit value and advances its counter.
func (r *Registry) draw(slot int32) uint64 {
	k := r.seq[slot]
	r.seq[slot] = k + 1
	key := mix64(uint64(r.cfg.Seed) ^ mix64(uint64(slot)+slotSalt))
	return mix64(key + golden*k)
}

// f64 draws a uniform from [0, 1).
func (r *Registry) f64(slot int32) float64 {
	return float64(r.draw(slot)>>11) / (1 << 53)
}

// intn draws a uniform integer from [0, n). n must be positive.
func (r *Registry) intn(slot int32, n int64) int64 {
	return int64(r.draw(slot) % uint64(n))
}

// expTicks draws an exponential dwell with the given mean (in ticks),
// floored at one tick so rescheduled events always move forward.
func (r *Registry) expTicks(slot int32, mean float64) int64 {
	u := r.f64(slot)
	t := int64(-mean * math.Log(1-u))
	if t < 1 {
		return 1
	}
	return t
}
