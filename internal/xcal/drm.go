package xcal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// This file implements a compact binary container for capture files —
// the stand-in for the proprietary .drm format that the real study could
// only decode through Accuver's licensed XCAP-M software (§B). Encoding
// and decoding round-trips File exactly, and the decoder is defensive:
// real post-processing pipelines meet truncated and corrupted captures.

// drmMagic identifies the container; drmVersion gates format changes.
var drmMagic = [4]byte{'D', 'R', 'M', '1'}

// ErrBadDRM reports a malformed container.
var ErrBadDRM = errors.New("xcal: malformed drm container")

// drmMaxString bounds decoded string lengths against corrupted inputs.
const drmMaxString = 1 << 16

// drmMaxRecords bounds decoded record counts against corrupted inputs.
const drmMaxRecords = 1 << 24

// WriteDRM encodes the file into its binary container form.
func (f File) WriteDRM(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(drmMagic[:]); err != nil {
		return err
	}
	if err := writeString(bw, f.Name); err != nil {
		return err
	}
	if err := writeString(bw, f.Op); err != nil {
		return err
	}
	if err := writeString(bw, f.Label); err != nil {
		return err
	}
	if err := writeU32(bw, uint32(len(f.Rows))); err != nil {
		return err
	}
	for _, r := range f.Rows {
		if err := writeRow(bw, r); err != nil {
			return err
		}
	}
	if err := writeU32(bw, uint32(len(f.Signals))); err != nil {
		return err
	}
	for _, s := range f.Signals {
		if err := writeSignal(bw, s); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadDRM decodes a container written by WriteDRM.
func ReadDRM(r io.Reader) (File, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return File{}, fmt.Errorf("%w: magic: %v", ErrBadDRM, err)
	}
	if magic != drmMagic {
		return File{}, fmt.Errorf("%w: bad magic %q", ErrBadDRM, magic[:])
	}
	var f File
	var err error
	if f.Name, err = readString(br); err != nil {
		return File{}, err
	}
	if f.Op, err = readString(br); err != nil {
		return File{}, err
	}
	if f.Label, err = readString(br); err != nil {
		return File{}, err
	}
	nRows, err := readU32(br)
	if err != nil {
		return File{}, err
	}
	if nRows > drmMaxRecords {
		return File{}, fmt.Errorf("%w: %d rows", ErrBadDRM, nRows)
	}
	for i := uint32(0); i < nRows; i++ {
		row, err := readRow(br)
		if err != nil {
			return File{}, fmt.Errorf("row %d: %w", i, err)
		}
		f.Rows = append(f.Rows, row)
	}
	nSig, err := readU32(br)
	if err != nil {
		return File{}, err
	}
	if nSig > drmMaxRecords {
		return File{}, fmt.Errorf("%w: %d signals", ErrBadDRM, nSig)
	}
	for i := uint32(0); i < nSig; i++ {
		sig, err := readSignal(br)
		if err != nil {
			return File{}, fmt.Errorf("signal %d: %w", i, err)
		}
		f.Signals = append(f.Signals, sig)
	}
	return f, nil
}

func writeRow(w io.Writer, r Row) error {
	for _, s := range []string{r.TimeEDT, r.Tech, r.CellID} {
		if err := writeString(w, s); err != nil {
			return err
		}
	}
	for _, v := range []float64{r.RSRP, r.SINR, r.BLER, r.Load, r.AppMbps, r.Lat, r.Lon, r.SpeedMPH} {
		if err := writeF64(w, v); err != nil {
			return err
		}
	}
	for _, v := range []uint32{uint32(r.MCS), uint32(r.CCDL), uint32(r.CCUL)} {
		if err := writeU32(w, v); err != nil {
			return err
		}
	}
	b := byte(0)
	if r.InHandover {
		b = 1
	}
	_, err := w.Write([]byte{b})
	return err
}

func readRow(r io.Reader) (Row, error) {
	var row Row
	var err error
	if row.TimeEDT, err = readString(r); err != nil {
		return row, err
	}
	if row.Tech, err = readString(r); err != nil {
		return row, err
	}
	if row.CellID, err = readString(r); err != nil {
		return row, err
	}
	floats := []*float64{&row.RSRP, &row.SINR, &row.BLER, &row.Load, &row.AppMbps, &row.Lat, &row.Lon, &row.SpeedMPH}
	for _, p := range floats {
		if *p, err = readF64(r); err != nil {
			return row, err
		}
	}
	ints := []*int{&row.MCS, &row.CCDL, &row.CCUL}
	for _, p := range ints {
		v, err := readU32(r)
		if err != nil {
			return row, err
		}
		*p = int(v)
	}
	var b [1]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return row, fmt.Errorf("%w: flags: %v", ErrBadDRM, err)
	}
	row.InHandover = b[0] == 1
	return row, nil
}

func writeSignal(w io.Writer, s Signal) error {
	for _, str := range []string{s.TimeEDT, s.Event, s.FromTech, s.ToTech, s.FromCell, s.ToCell} {
		if err := writeString(w, str); err != nil {
			return err
		}
	}
	return writeF64(w, s.DurationMS)
}

func readSignal(r io.Reader) (Signal, error) {
	var s Signal
	var err error
	strs := []*string{&s.TimeEDT, &s.Event, &s.FromTech, &s.ToTech, &s.FromCell, &s.ToCell}
	for _, p := range strs {
		if *p, err = readString(r); err != nil {
			return s, err
		}
	}
	s.DurationMS, err = readF64(r)
	return s, err
}

func writeString(w io.Writer, s string) error {
	if len(s) > drmMaxString {
		return fmt.Errorf("%w: string too long (%d)", ErrBadDRM, len(s))
	}
	if err := writeU32(w, uint32(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

func readString(r io.Reader) (string, error) {
	n, err := readU32(r)
	if err != nil {
		return "", err
	}
	if n > drmMaxString {
		return "", fmt.Errorf("%w: string length %d", ErrBadDRM, n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", fmt.Errorf("%w: string body: %v", ErrBadDRM, err)
	}
	return string(buf), nil
}

func writeU32(w io.Writer, v uint32) error {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	_, err := w.Write(buf[:])
	return err
}

func readU32(r io.Reader) (uint32, error) {
	var buf [4]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, fmt.Errorf("%w: u32: %v", ErrBadDRM, err)
	}
	return binary.LittleEndian.Uint32(buf[:]), nil
}

func writeF64(w io.Writer, v float64) error {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
	_, err := w.Write(buf[:])
	return err
}

func readF64(r io.Reader) (float64, error) {
	var buf [8]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, fmt.Errorf("%w: f64: %v", ErrBadDRM, err)
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(buf[:])), nil
}
