package xcal

import (
	"strings"
	"testing"
	"time"

	"github.com/nuwins/cellwheels/internal/deploy"
	"github.com/nuwins/cellwheels/internal/geo"
	"github.com/nuwins/cellwheels/internal/radio"
	"github.com/nuwins/cellwheels/internal/ran"
	"github.com/nuwins/cellwheels/internal/simrand"
	"github.com/nuwins/cellwheels/internal/unit"
)

func TestRecorderFileNameUsesLocalTime(t *testing.T) {
	r := NewRecorder(radio.Verizon)
	// 16:00 UTC is 09:00 Pacific.
	now := time.Date(2022, 8, 8, 16, 0, 0, 0, time.UTC)
	r.StartFile("DL", now, geo.Pacific)
	f := r.CloseFile()
	if !strings.HasPrefix(f.Name, "V_DL_20220808_090000") {
		t.Errorf("file name = %q, want local 09:00 stamp", f.Name)
	}
	if !strings.HasSuffix(f.Name, ".drm") {
		t.Errorf("file name = %q, want .drm suffix", f.Name)
	}
}

func TestRecorderContentUsesEDT(t *testing.T) {
	r := NewRecorder(radio.Verizon)
	now := time.Date(2022, 8, 8, 16, 0, 0, 0, time.UTC) // 12:00 EDT
	r.StartFile("DL", now, geo.Pacific)
	st := ran.LinkState{Time: now, Tech: radio.NRMid, CellID: "V-5G-mid-0001", RSRP: -95}
	wp := geo.DefaultRoute().At(0)
	// Feed exactly one 500 ms window.
	for i := 0; i < 10; i++ {
		st.Time = now.Add(time.Duration(i) * 50 * time.Millisecond)
		r.Observe(50*time.Millisecond, st, wp, 30, 10*unit.KB)
	}
	f := r.CloseFile()
	if len(f.Rows) == 0 {
		t.Fatal("no rows")
	}
	if !strings.HasPrefix(f.Rows[0].TimeEDT, "08/08/2022 12:00:00") {
		t.Errorf("content timestamp = %q, want EDT noon", f.Rows[0].TimeEDT)
	}
}

func TestRecorderSamplesEvery500ms(t *testing.T) {
	r := NewRecorder(radio.TMobile)
	now := time.Date(2022, 8, 10, 18, 0, 0, 0, time.UTC)
	r.StartFile("UL", now, geo.Central)
	st := ran.LinkState{Time: now, Tech: radio.LTEA}
	wp := geo.DefaultRoute().At(1000 * unit.Kilometer)
	ticks := int(30 * time.Second / (50 * time.Millisecond))
	for i := 0; i < ticks; i++ {
		st.Time = now.Add(time.Duration(i) * 50 * time.Millisecond)
		r.Observe(50*time.Millisecond, st, wp, 65, 50*unit.KB)
	}
	f := r.CloseFile()
	if len(f.Rows) != 60 {
		t.Errorf("rows in 30 s = %d, want 60", len(f.Rows))
	}
}

func TestRecorderThroughputAccounting(t *testing.T) {
	r := NewRecorder(radio.ATT)
	now := time.Date(2022, 8, 10, 18, 0, 0, 0, time.UTC)
	r.StartFile("DL", now, geo.Mountain)
	st := ran.LinkState{Time: now}
	wp := geo.DefaultRoute().At(800 * unit.Kilometer)
	// 62.5 KB per 50 ms tick = 10 Mbps.
	for i := 0; i < 10; i++ {
		st.Time = now.Add(time.Duration(i) * 50 * time.Millisecond)
		r.Observe(50*time.Millisecond, st, wp, 70, unit.Bytes(62500))
	}
	f := r.CloseFile()
	if len(f.Rows) != 1 {
		t.Fatalf("rows = %d", len(f.Rows))
	}
	if got := f.Rows[0].AppMbps; got < 9.9 || got > 10.1 {
		t.Errorf("AppMbps = %v, want 10", got)
	}
}

func TestRecorderNotRecordingIgnoresObserve(t *testing.T) {
	r := NewRecorder(radio.ATT)
	if r.Recording() {
		t.Error("recording before StartFile")
	}
	r.Observe(50*time.Millisecond, ran.LinkState{}, geo.Waypoint{}, 0, 1000)
	r.LogHandover(ran.HandoverEvent{})
	f := r.CloseFile()
	if f.Name != "" || len(f.Rows) != 0 {
		t.Errorf("phantom file: %+v", f)
	}
}

func TestRecorderLogsHandovers(t *testing.T) {
	r := NewRecorder(radio.Verizon)
	now := time.Date(2022, 8, 9, 20, 0, 0, 0, time.UTC)
	r.StartFile("DL", now, geo.Mountain)
	r.LogHandover(ran.HandoverEvent{
		Start: now.Add(time.Second), Duration: 53 * time.Millisecond,
		FromTech: radio.NRMid, ToTech: radio.LTEA,
		FromCell: "V-5G-mid-0002", ToCell: "V-LTE-A-0033",
	})
	f := r.CloseFile()
	if len(f.Signals) != 1 {
		t.Fatalf("signals = %d", len(f.Signals))
	}
	sig := f.Signals[0]
	if sig.Event != "HO" || sig.FromTech != "5G-mid" || sig.ToTech != "LTE-A" {
		t.Errorf("signal = %+v", sig)
	}
	if sig.DurationMS != 53 {
		t.Errorf("duration = %v", sig.DurationMS)
	}
	if !strings.HasPrefix(sig.TimeEDT, "08/09/2022 16:00:01") {
		t.Errorf("signal time = %q, want EDT", sig.TimeEDT)
	}
}

func TestHandoverLoggerProducesRows(t *testing.T) {
	route := geo.DefaultRoute()
	rng := simrand.New(3)
	m := deploy.NewMap(radio.ATT, route, rng)
	l := NewHandoverLogger(ran.UEConfig{Op: radio.ATT, Map: m}, rng)
	drive := geo.NewDrive(route, geo.DefaultDriveConfig(), rng)
	for i := 0; i < int(2*time.Minute/(50*time.Millisecond)); i++ {
		ds := drive.Step(50 * time.Millisecond)
		l.Step(ds.Time, ds.Waypoint, ds.Speed.MPH(), 50*time.Millisecond)
	}
	rows := l.Rows()
	if len(rows) < 110 || len(rows) > 130 {
		t.Errorf("rows in 2 min = %d, want ≈120", len(rows))
	}
	for _, row := range rows {
		if row.Zone != "Pacific" {
			t.Errorf("zone = %q", row.Zone)
		}
		if _, err := time.Parse(LoggerFormat, row.TimeLocal); err != nil {
			t.Errorf("bad local time %q: %v", row.TimeLocal, err)
		}
		// AT&T idle must never show 5G (Fig 1d).
		if strings.HasPrefix(row.Tech, "5G") {
			t.Errorf("passive AT&T row on %q", row.Tech)
		}
	}
}

func TestHandoverLoggerSeesFewer5GThanActive(t *testing.T) {
	// The Fig 1 disparity, end to end at the logger level, for Verizon.
	route := geo.DefaultRoute()
	rng := simrand.New(4)
	m := deploy.NewMap(radio.Verizon, route, rng)
	l := NewHandoverLogger(ran.UEConfig{Op: radio.Verizon, Map: m}, rng)
	active := ran.NewUE(ran.UEConfig{Op: radio.Verizon, Map: m}, rng.Fork("active"))
	drive := geo.NewDrive(route, geo.DefaultDriveConfig(), rng)
	active.SetTraffic(deploy.HeavyDL, drive.State().Time, drive.State().Waypoint)

	passive5G, active5G, n := 0, 0, 0
	for i := 0; i < int(30*time.Minute/(50*time.Millisecond)); i++ {
		ds := drive.Step(50 * time.Millisecond)
		l.Step(ds.Time, ds.Waypoint, ds.Speed.MPH(), 50*time.Millisecond)
		st := active.Step(ds.Time, ds.Waypoint, ds.Speed.MPH(), 50*time.Millisecond)
		if st.Tech.Is5G() {
			active5G++
		}
		if l.UE.Tech().Is5G() {
			passive5G++
		}
		n++
	}
	if active5G == 0 {
		t.Skip("no 5G encountered in this stretch")
	}
	if passive5G >= active5G {
		t.Errorf("passive 5G ticks %d not below active %d", passive5G, active5G)
	}
}
