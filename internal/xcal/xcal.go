// Package xcal emulates the study's cross-layer logging instruments.
//
// The Recorder stands in for an Accuver XCAL Solo attached to a phone: it
// samples the full PHY KPI surface every 500 ms and logs control-plane
// signaling (handovers), writing ".drm"-style files whose *names* carry
// local-time stamps while their *contents* carry timestamps in fixed EDT —
// exactly the mismatch §B describes, which the logsync package must undo.
//
// The HandoverLogger stands in for the three extra unrooted phones that
// passively logged coverage for the whole trip over idle ICMP traffic
// (§3). Its rows use a third format: naive local-time strings plus a
// separate zone-name column.
package xcal

import (
	"fmt"
	"time"

	"github.com/nuwins/cellwheels/internal/geo"
	"github.com/nuwins/cellwheels/internal/radio"
	"github.com/nuwins/cellwheels/internal/ran"
	"github.com/nuwins/cellwheels/internal/simrand"
	"github.com/nuwins/cellwheels/internal/transport"
	"github.com/nuwins/cellwheels/internal/unit"
)

// SampleInterval is XCAL's throughput/KPI logging frequency (§5).
const SampleInterval = 500 * time.Millisecond

// Timestamp formats of the raw logs.
const (
	// ContentFormat is the row timestamp layout, always rendered in EDT
	// regardless of where the vehicle is.
	ContentFormat = "01/02/2006 15:04:05.000"
	// FileNameFormat is the local-time stamp embedded in file names.
	FileNameFormat = "20060102_150405"
	// LoggerFormat is the handover-logger app's naive local-time layout.
	LoggerFormat = "2006-01-02 15:04:05"
)

// EDT is the fixed zone the XCAL software renders content timestamps in.
var EDT = time.FixedZone("EDT", -4*3600)

// Row is one 500 ms KPI sample.
type Row struct {
	TimeEDT    string // ContentFormat in EDT
	Tech       string
	CellID     string
	RSRP       float64
	SINR       float64
	MCS        int
	CCDL       int
	CCUL       int
	BLER       float64
	Load       float64
	AppMbps    float64 // application-layer throughput in the window
	InHandover bool
	Lat        float64
	Lon        float64
	SpeedMPH   float64
}

// Signal is one control-plane event record.
type Signal struct {
	TimeEDT    string
	Event      string // "HO"
	FromTech   string
	ToTech     string
	FromCell   string
	ToCell     string
	DurationMS float64
}

// File is one .drm-style capture, covering one test.
type File struct {
	Name    string // "<OP>_<label>_<local stamp>.drm"
	Op      string
	Label   string
	Rows    []Row
	Signals []Signal
}

// Recorder samples a UE's link state into Files.
type Recorder struct {
	op  radio.Operator
	cur *File

	sinceSample time.Duration
	winBytes    unit.Bytes
	winStart    time.Time
	pending     ran.LinkState
	pendingWP   geo.Waypoint
	pendingMPH  float64
	havePending bool
}

// NewRecorder returns a recorder for one operator's phone.
func NewRecorder(op radio.Operator) *Recorder {
	return &Recorder{op: op}
}

// StartFile begins a new capture file. The name embeds the local time at
// the vehicle's position — the format the real tool used, and the reason
// timezone crossings made file matching painful.
func (r *Recorder) StartFile(label string, nowUTC time.Time, zone geo.Timezone) {
	local := nowUTC.In(zone.Location())
	r.cur = &File{
		Name:  fmt.Sprintf("%s_%s_%s.drm", r.op.Short(), label, local.Format(FileNameFormat)),
		Op:    r.op.Short(),
		Label: label,
	}
	r.sinceSample = 0
	r.winBytes = 0
	r.winStart = nowUTC
	r.havePending = false
}

// Recording reports whether a file is open.
func (r *Recorder) Recording() bool { return r.cur != nil }

// Observe feeds one simulation tick. Delivered is the application bytes
// moved this tick; every SampleInterval the recorder flushes a row using
// the latest link state.
func (r *Recorder) Observe(dt time.Duration, state ran.LinkState, wp geo.Waypoint, speedMPH float64, delivered unit.Bytes) {
	if r.cur == nil {
		return
	}
	r.pending = state
	r.pendingWP = wp
	r.pendingMPH = speedMPH
	r.havePending = true
	r.winBytes += delivered
	r.sinceSample += dt
	if r.sinceSample >= SampleInterval {
		r.flushRow()
		r.sinceSample -= SampleInterval
		r.winBytes = 0
		r.winStart = state.Time
	}
}

func (r *Recorder) flushRow() {
	if !r.havePending {
		return
	}
	s := r.pending
	r.cur.Rows = append(r.cur.Rows, Row{
		TimeEDT:    r.winStart.In(EDT).Format(ContentFormat),
		Tech:       s.Tech.String(),
		CellID:     s.CellID,
		RSRP:       float64(s.RSRP),
		SINR:       float64(s.SINR),
		MCS:        s.MCS,
		CCDL:       s.CCDL,
		CCUL:       s.CCUL,
		BLER:       s.BLER,
		Load:       s.Load,
		AppMbps:    r.winBytes.RateOver(SampleInterval).Mbps(),
		InHandover: s.InHandover,
		Lat:        r.pendingWP.Loc.Lat,
		Lon:        r.pendingWP.Loc.Lon,
		SpeedMPH:   r.pendingMPH,
	})
}

// LogHandover records a signaling event into the open file.
func (r *Recorder) LogHandover(ev ran.HandoverEvent) {
	if r.cur == nil {
		return
	}
	r.cur.Signals = append(r.cur.Signals, Signal{
		TimeEDT:    ev.Start.In(EDT).Format(ContentFormat),
		Event:      "HO",
		FromTech:   ev.FromTech.String(),
		ToTech:     ev.ToTech.String(),
		FromCell:   ev.FromCell,
		ToCell:     ev.ToCell,
		DurationMS: unit.Milliseconds(ev.Duration),
	})
}

// CloseFile flushes any partial window and returns the finished file.
func (r *Recorder) CloseFile() File {
	if r.cur == nil {
		return File{}
	}
	if r.sinceSample > 0 && r.winBytes > 0 {
		r.flushRow()
	}
	f := *r.cur
	r.cur = nil
	return f
}

// LoggerRow is one 1 Hz observation from a passive handover-logger phone.
type LoggerRow struct {
	TimeLocal string // LoggerFormat, naive local time
	Zone      string // zone name ("Pacific", ...)
	Tech      string
	CellID    string
	Lat       float64
	Lon       float64
	SpeedMPH  float64
}

// HandoverLogger is one passive phone: it keeps the radio awake with
// 200 ms ICMP pings and records technology/cell/GPS once per second.
type HandoverLogger struct {
	UE     *ran.UE
	pinger *transport.Pinger
	rows   []LoggerRow
	since  time.Duration
}

// NewHandoverLogger attaches a passive phone to a network. The full UE
// config is taken so ablations (e.g. ForceBest) reach the passive phones
// as well as the active ones.
func NewHandoverLogger(cfg ran.UEConfig, rng *simrand.Source) *HandoverLogger {
	src := rng.Fork("hologger/" + cfg.Op.Short())
	return &HandoverLogger{
		UE:     ran.NewUE(cfg, src),
		pinger: transport.NewPinger(src),
	}
}

// Step advances the logger one simulation tick.
func (l *HandoverLogger) Step(now time.Time, wp geo.Waypoint, speedMPH float64, dt time.Duration) {
	st := l.UE.Step(now, wp, speedMPH, dt)
	// The pings exist only to keep the radio out of sleep; results unused.
	l.pinger.Step(dt, st.CapacityDL, 40*time.Millisecond, st.Load, st.InHandover)
	l.since += dt
	if l.since >= time.Second {
		l.since -= time.Second
		local := now.In(wp.Timezone.Location())
		l.rows = append(l.rows, LoggerRow{
			TimeLocal: local.Format(LoggerFormat),
			Zone:      wp.Timezone.String(),
			Tech:      st.Tech.String(),
			CellID:    st.CellID,
			Lat:       wp.Loc.Lat,
			Lon:       wp.Loc.Lon,
			SpeedMPH:  speedMPH,
		})
	}
}

// Rows returns the passive coverage log.
func (l *HandoverLogger) Rows() []LoggerRow { return append([]LoggerRow(nil), l.rows...) }
