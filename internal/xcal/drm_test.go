package xcal

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"github.com/nuwins/cellwheels/internal/geo"
	"github.com/nuwins/cellwheels/internal/radio"
	"github.com/nuwins/cellwheels/internal/ran"
	"github.com/nuwins/cellwheels/internal/unit"
)

func sampleFile() File {
	return File{
		Name:  "V_DL_20220808_090000.drm",
		Op:    "V",
		Label: "DL",
		Rows: []Row{
			{
				TimeEDT: "08/08/2022 12:00:00.000", Tech: "5G-mid", CellID: "V-5G-mid-0001",
				RSRP: -95.5, SINR: 12.25, MCS: 15, CCDL: 2, CCUL: 1,
				BLER: 0.05, Load: 0.4, AppMbps: 42.5, InHandover: false,
				Lat: 34.05, Lon: -118.24, SpeedMPH: 65,
			},
			{
				TimeEDT: "08/08/2022 12:00:00.500", Tech: "LTE-A", CellID: "",
				RSRP: -101, InHandover: true,
			},
		},
		Signals: []Signal{
			{TimeEDT: "08/08/2022 12:00:00.200", Event: "HO",
				FromTech: "5G-mid", ToTech: "LTE-A",
				FromCell: "V-5G-mid-0001", ToCell: "V-LTE-A-0033", DurationMS: 53},
		},
	}
}

func TestDRMRoundTrip(t *testing.T) {
	f := sampleFile()
	var buf bytes.Buffer
	if err := f.WriteDRM(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadDRM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f, back) {
		t.Errorf("round trip changed file:\n got %+v\nwant %+v", back, f)
	}
}

func TestDRMRoundTripEmpty(t *testing.T) {
	f := File{Name: "T_RTT_20220810_110000.drm", Op: "T", Label: "RTT"}
	var buf bytes.Buffer
	if err := f.WriteDRM(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadDRM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != f.Name || len(back.Rows) != 0 || len(back.Signals) != 0 {
		t.Errorf("round trip = %+v", back)
	}
}

func TestDRMBadMagic(t *testing.T) {
	_, err := ReadDRM(strings.NewReader("NOPE...."))
	if !errors.Is(err, ErrBadDRM) {
		t.Errorf("err = %v, want ErrBadDRM", err)
	}
}

func TestDRMTruncated(t *testing.T) {
	f := sampleFile()
	var buf bytes.Buffer
	if err := f.WriteDRM(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Every truncation point must fail cleanly, never panic.
	for cut := 0; cut < len(full)-1; cut += 7 {
		if _, err := ReadDRM(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestDRMCorruptedLengths(t *testing.T) {
	f := sampleFile()
	var buf bytes.Buffer
	if err := f.WriteDRM(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Blow up the first string length field (bytes 4..8).
	data[4], data[5], data[6], data[7] = 0xff, 0xff, 0xff, 0xff
	if _, err := ReadDRM(bytes.NewReader(data)); !errors.Is(err, ErrBadDRM) {
		t.Errorf("corrupted length: err = %v", err)
	}
}

func TestDRMFuzzRandomBytes(t *testing.T) {
	// Arbitrary byte soup never panics and (except for the vanishingly
	// unlikely valid container) returns an error.
	f := func(data []byte) bool {
		_, err := ReadDRM(bytes.NewReader(data))
		return err != nil || len(data) >= 16
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDRMRecorderIntegration(t *testing.T) {
	// A file produced by the Recorder round-trips through the container.
	rec := NewRecorder(opForTest())
	now := testStart()
	rec.StartFile("UL", now, zoneForTest())
	st := stateForTest()
	for i := 0; i < 20; i++ {
		st.Time = now
		rec.Observe(tickForTest(), st, wpForTest(), 55, 4096)
		now = now.Add(tickForTest())
	}
	f := rec.CloseFile()
	var buf bytes.Buffer
	if err := f.WriteDRM(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadDRM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f, back) {
		t.Error("recorder file did not round trip")
	}
}

// Test fixtures shared with the recorder integration test.

func opForTest() radio.Operator  { return radio.TMobile }
func zoneForTest() geo.Timezone  { return geo.Mountain }
func tickForTest() time.Duration { return 50 * time.Millisecond }
func testStart() time.Time       { return time.Date(2022, 8, 10, 18, 0, 0, 0, time.UTC) }
func wpForTest() geo.Waypoint    { return geo.DefaultRoute().At(1200 * unit.Kilometer) }
func stateForTest() ran.LinkState {
	return ran.LinkState{Tech: radio.LTEA, CellID: "T-LTE-A-0100", RSRP: -98, SINR: 14, MCS: 17, CCDL: 3, CCUL: 1, BLER: 0.04, Load: 0.5}
}
