package logsync

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
	"time"

	"github.com/nuwins/cellwheels/internal/dataset"
	"github.com/nuwins/cellwheels/internal/geo"
	"github.com/nuwins/cellwheels/internal/radio"
	"github.com/nuwins/cellwheels/internal/ran"
	"github.com/nuwins/cellwheels/internal/unit"
	"github.com/nuwins/cellwheels/internal/xcal"
)

// makeFile records a synthetic 10 s capture starting at startUTC at the
// given odometer position, and returns it with the ground-truth rows.
func makeFile(t *testing.T, op radio.Operator, label string, startUTC time.Time, odo unit.Meters, tech radio.Technology, mbps float64) xcal.File {
	t.Helper()
	route := geo.DefaultRoute()
	wp := route.At(odo)
	rec := xcal.NewRecorder(op)
	rec.StartFile(label, startUTC, wp.Timezone)
	st := ran.LinkState{Tech: tech, CellID: "X-1", RSRP: -95, SINR: 12, MCS: 14, CCDL: 2, CCUL: 1}
	tick := 50 * time.Millisecond
	perTick := unit.BitRate(mbps * 1e6).BytesIn(tick)
	for i := 0; i < int(10*time.Second/tick); i++ {
		st.Time = startUTC.Add(time.Duration(i) * tick)
		rec.Observe(tick, st, wp, 42, perTick)
	}
	return rec.CloseFile()
}

func utcStamp(t time.Time) string { return t.UTC().Format(time.RFC3339Nano) }

func TestParseContentTime(t *testing.T) {
	// Noon EDT = 16:00 UTC.
	got, err := ParseContentTime("08/08/2022 12:00:00.000")
	if err != nil {
		t.Fatal(err)
	}
	want := time.Date(2022, 8, 8, 16, 0, 0, 0, time.UTC)
	if !got.Equal(want) {
		t.Errorf("got %v, want %v", got, want)
	}
	if _, err := ParseContentTime("garbage"); err == nil {
		t.Error("garbage accepted")
	}
}

func TestAppLogStartUTC(t *testing.T) {
	// UTC stamp round-trips.
	at := time.Date(2022, 8, 10, 3, 4, 5, 0, time.UTC)
	l := AppLog{StartStamp: utcStamp(at), Stamp: StampUTC}
	got, err := l.StartUTC()
	if err != nil || !got.Equal(at) {
		t.Errorf("utc stamp: %v, %v", got, err)
	}
	// Naive local + zone resolves correctly: 09:00 Mountain = 15:00 UTC.
	l2 := AppLog{StartStamp: "2022-08-10 09:00:00", Stamp: StampLocalNaive, Zone: "Mountain"}
	got2, err := l2.StartUTC()
	if err != nil {
		t.Fatal(err)
	}
	want := time.Date(2022, 8, 10, 15, 0, 0, 0, time.UTC)
	if !got2.Equal(want) {
		t.Errorf("local stamp: got %v, want %v", got2, want)
	}
	// Unknown zone errors.
	if _, err := (AppLog{Stamp: StampLocalNaive, Zone: "Atlantis", StartStamp: "2022-08-10 09:00:00"}).StartUTC(); err == nil {
		t.Error("unknown zone accepted")
	}
}

func TestLabelRoundTrip(t *testing.T) {
	for _, k := range dataset.Kinds() {
		l := LabelOf(k)
		if l == "?" {
			t.Errorf("no label for %v", k)
		}
		if kindByLabel[l] != k {
			t.Errorf("label %q does not map back to %v", l, k)
		}
	}
}

func TestMergeMatchesAcrossTimezones(t *testing.T) {
	route := geo.DefaultRoute()
	// Three tests at positions in three different timezones, same
	// operator and kind, so matching must disambiguate via timestamps.
	starts := []time.Time{
		time.Date(2022, 8, 8, 17, 0, 0, 0, time.UTC),
		time.Date(2022, 8, 10, 18, 0, 0, 0, time.UTC),
		time.Date(2022, 8, 13, 19, 0, 0, 0, time.UTC),
	}
	odos := []unit.Meters{100 * unit.Kilometer, 2500 * unit.Kilometer, 5500 * unit.Kilometer}
	servers := []string{"srv-a", "srv-b", "srv-c"}

	var files []xcal.File
	var apps []AppLog
	for i := range starts {
		files = append(files, makeFile(t, radio.Verizon, "DL", starts[i], odos[i], radio.NRMid, 50))
		apps = append(apps, AppLog{
			Op: "V", Kind: "DL", Server: servers[i],
			StartStamp: utcStamp(starts[i]), Stamp: StampUTC, DurationSec: 10,
		})
	}
	db, rep, err := Merge(Input{Route: route, Files: files, Apps: apps})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Matched != 3 || len(rep.UnmatchedFiles) != 0 || rep.UnmatchedApps != 0 {
		t.Fatalf("report = %+v", rep)
	}
	if len(db.Tests) != 3 {
		t.Fatalf("tests = %d", len(db.Tests))
	}
	// Each test's start must equal ground truth, and its server must be
	// the one from the app log that truly belongs to that instant.
	for _, test := range db.Tests {
		matched := false
		for i := range starts {
			if test.Start.Equal(starts[i]) {
				matched = true
				if test.Server != servers[i] {
					t.Errorf("test at %v got server %q, want %q", test.Start, test.Server, servers[i])
				}
				if got := math.Abs(float64(test.StartOdo - odos[i])); got > 20e3 {
					t.Errorf("test odometer %v, want ≈%v", test.StartOdo, odos[i])
				}
			}
		}
		if !matched {
			t.Errorf("test start %v matches no ground truth", test.Start)
		}
	}
}

func TestMergeThroughputSamplesCarryKPIs(t *testing.T) {
	route := geo.DefaultRoute()
	start := time.Date(2022, 8, 9, 16, 30, 0, 0, time.UTC)
	f := makeFile(t, radio.TMobile, "DL", start, 300*unit.Kilometer, radio.NRMid, 80)
	app := AppLog{Op: "T", Kind: "DL", Server: "ec2-ca-general",
		StartStamp: utcStamp(start), Stamp: StampUTC, DurationSec: 10}
	db, _, err := Merge(Input{Route: route, Files: []xcal.File{f}, Apps: []AppLog{app}})
	if err != nil {
		t.Fatal(err)
	}
	if len(db.Throughput) != 20 { // 10 s / 500 ms
		t.Fatalf("samples = %d, want 20", len(db.Throughput))
	}
	s := db.Throughput[0]
	if s.Op != radio.TMobile || s.Dir != radio.Downlink || s.Tech != radio.NRMid {
		t.Errorf("sample context = %+v", s)
	}
	if s.Mbps < 79 || s.Mbps > 81 {
		t.Errorf("Mbps = %v, want 80", s.Mbps)
	}
	if s.RSRP != -95 || s.MCS != 14 || s.CC != 2 {
		t.Errorf("KPIs = rsrp %v mcs %d cc %d", s.RSRP, s.MCS, s.CC)
	}
	if !s.Time.Equal(start) {
		t.Errorf("first sample at %v, want %v", s.Time, start)
	}
	if s.Timezone != geo.Pacific {
		t.Errorf("timezone = %v", s.Timezone)
	}
}

func TestMergeUplinkUsesULCC(t *testing.T) {
	route := geo.DefaultRoute()
	start := time.Date(2022, 8, 9, 16, 30, 0, 0, time.UTC)
	f := makeFile(t, radio.TMobile, "UL", start, 300*unit.Kilometer, radio.NRMid, 20)
	app := AppLog{Op: "T", Kind: "UL", StartStamp: utcStamp(start), Stamp: StampUTC, DurationSec: 10}
	db, _, err := Merge(Input{Route: route, Files: []xcal.File{f}, Apps: []AppLog{app}})
	if err != nil {
		t.Fatal(err)
	}
	if db.Throughput[0].CC != 1 { // makeFile sets CCUL=1, CCDL=2
		t.Errorf("UL CC = %d, want 1", db.Throughput[0].CC)
	}
	if db.Throughput[0].Dir != radio.Uplink {
		t.Error("direction not uplink")
	}
}

func TestMergeRTTSamples(t *testing.T) {
	route := geo.DefaultRoute()
	start := time.Date(2022, 8, 11, 14, 0, 0, 0, time.UTC)
	f := makeFile(t, radio.ATT, "RTT", start, 3000*unit.Kilometer, radio.LTEA, 0)
	app := AppLog{
		Op: "A", Kind: "RTT",
		// RTT logs use naive local stamps; 3000 km is Central.
		StartStamp: start.In(geo.Central.Location()).Format(xcal.LoggerFormat),
		Stamp:      StampLocalNaive, Zone: "Central", DurationSec: 10,
		RTTs: []RTTEntry{
			{OffsetMS: 200, RTTMS: 63.5},
			{OffsetMS: 400, RTTMS: 70.1},
			{OffsetMS: 600, Lost: true},
		},
	}
	db, rep, err := Merge(Input{Route: route, Files: []xcal.File{f}, Apps: []AppLog{app}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Matched != 1 {
		t.Fatalf("report = %+v", rep)
	}
	if len(db.RTT) != 3 {
		t.Fatalf("rtt samples = %d", len(db.RTT))
	}
	if db.RTT[0].RTTMS != 63.5 || db.RTT[0].Tech != radio.LTEA {
		t.Errorf("sample = %+v", db.RTT[0])
	}
	if !db.RTT[0].Time.Equal(start.Add(200 * time.Millisecond)) {
		t.Errorf("sample time = %v", db.RTT[0].Time)
	}
	lost := 0
	for _, s := range db.RTT {
		if s.Lost {
			lost++
		}
	}
	if lost != 1 {
		t.Errorf("lost = %d", lost)
	}
}

func TestMergeAppRun(t *testing.T) {
	route := geo.DefaultRoute()
	start := time.Date(2022, 8, 12, 15, 0, 0, 0, time.UTC)
	f := makeFile(t, radio.Verizon, "AR", start, 4000*unit.Kilometer, radio.NRMid, 5)
	app := AppLog{
		Op: "V", Kind: "AR", Compressed: true, Edge: true,
		StartStamp: utcStamp(start), Stamp: StampUTC, DurationSec: 10,
		Metrics: map[string]float64{"e2e_ms": 214, "fps": 4.35, "map": 30.1},
	}
	db, _, err := Merge(Input{Route: route, Files: []xcal.File{f}, Apps: []AppLog{app}})
	if err != nil {
		t.Fatal(err)
	}
	if len(db.AppRuns) != 1 {
		t.Fatalf("app runs = %d", len(db.AppRuns))
	}
	r := db.AppRuns[0]
	if r.E2EMS != 214 || r.OffloadFPS != 4.35 || r.MAP != 30.1 || !r.Compressed || !r.Edge {
		t.Errorf("run = %+v", r)
	}
	if r.HighSpeedFrac != 1 { // all rows on NRMid
		t.Errorf("high-speed frac = %v", r.HighSpeedFrac)
	}
}

func TestMergeHandoverSignals(t *testing.T) {
	route := geo.DefaultRoute()
	start := time.Date(2022, 8, 9, 16, 30, 0, 0, time.UTC)
	f := makeFile(t, radio.Verizon, "DL", start, 300*unit.Kilometer, radio.NRMid, 50)
	f.Signals = append(f.Signals, xcal.Signal{
		TimeEDT:    start.Add(2 * time.Second).In(xcal.EDT).Format(xcal.ContentFormat),
		Event:      "HO",
		FromTech:   "5G-mid",
		ToTech:     "LTE-A",
		DurationMS: 53,
	})
	app := AppLog{Op: "V", Kind: "DL", StartStamp: utcStamp(start), Stamp: StampUTC, DurationSec: 10}
	db, _, err := Merge(Input{Route: route, Files: []xcal.File{f}, Apps: []AppLog{app}})
	if err != nil {
		t.Fatal(err)
	}
	if len(db.Handovers) != 1 {
		t.Fatalf("handovers = %d", len(db.Handovers))
	}
	h := db.Handovers[0]
	if h.FromTech != radio.NRMid || h.ToTech != radio.LTEA || h.DurationMS != 53 {
		t.Errorf("handover = %+v", h)
	}
	if !h.Vertical() {
		t.Error("5G->4G not vertical")
	}
	// The 500 ms window containing the HO must count it.
	counted := 0
	for _, s := range db.Throughput {
		counted += s.Handovers
	}
	if counted != 1 {
		t.Errorf("windows counted %d handovers, want 1", counted)
	}
}

func TestMergeUnmatchedFileReported(t *testing.T) {
	route := geo.DefaultRoute()
	start := time.Date(2022, 8, 9, 16, 30, 0, 0, time.UTC)
	f := makeFile(t, radio.Verizon, "DL", start, 300*unit.Kilometer, radio.NRMid, 50)
	// App log two hours away: no match.
	app := AppLog{Op: "V", Kind: "DL", StartStamp: utcStamp(start.Add(2 * time.Hour)), Stamp: StampUTC, DurationSec: 10}
	db, rep, err := Merge(Input{Route: route, Files: []xcal.File{f}, Apps: []AppLog{app}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Matched != 0 || len(rep.UnmatchedFiles) != 1 || rep.UnmatchedApps != 1 {
		t.Errorf("report = %+v", rep)
	}
	if len(db.Tests) != 0 {
		t.Errorf("tests = %d", len(db.Tests))
	}
}

func TestMergePassiveRows(t *testing.T) {
	route := geo.DefaultRoute()
	at := time.Date(2022, 8, 10, 20, 0, 0, 0, time.UTC) // 14:00 Mountain
	wp := route.At(1200 * unit.Kilometer)
	rows := []xcal.LoggerRow{{
		TimeLocal: at.In(wp.Timezone.Location()).Format(xcal.LoggerFormat),
		Zone:      wp.Timezone.String(),
		Tech:      "LTE-A",
		CellID:    "A-LTE-A-0042",
		Lat:       wp.Loc.Lat, Lon: wp.Loc.Lon, SpeedMPH: 68,
	}}
	db, _, err := Merge(Input{Route: route, Logger: map[string][]xcal.LoggerRow{"A": rows}})
	if err != nil {
		t.Fatal(err)
	}
	if len(db.Passive) != 1 {
		t.Fatalf("passive = %d", len(db.Passive))
	}
	p := db.Passive[0]
	if !p.Time.Equal(at) {
		t.Errorf("passive time = %v, want %v", p.Time, at)
	}
	if p.Op != radio.ATT || p.Tech != radio.LTEA {
		t.Errorf("passive = %+v", p)
	}
	if math.Abs(float64(p.Odometer-1200*unit.Kilometer)) > 20e3 {
		t.Errorf("passive odometer = %v", p.Odometer)
	}
}

func TestMergeBadInputs(t *testing.T) {
	if _, _, err := Merge(Input{}); err == nil {
		t.Error("nil route accepted")
	}
	route := geo.DefaultRoute()
	if _, _, err := Merge(Input{Route: route, Files: []xcal.File{{Name: "nonsense"}}}); err == nil {
		t.Error("malformed file name accepted")
	}
	bad := AppLog{Op: "V", Kind: "DL", StartStamp: "not-a-time", Stamp: StampUTC}
	if _, _, err := Merge(Input{Route: route, Apps: []AppLog{bad}}); err == nil {
		t.Error("malformed app stamp accepted")
	}
}

func TestMergeManyTestsAllMatchedProperty(t *testing.T) {
	// A denser scenario: 20 tests across the route and the trip days with
	// mixed stamp formats; every file must match its own app log.
	route := geo.DefaultRoute()
	var files []xcal.File
	var apps []AppLog
	base := time.Date(2022, 8, 8, 17, 0, 0, 0, time.UTC)
	for i := 0; i < 20; i++ {
		start := base.Add(time.Duration(i) * 37 * time.Minute)
		odo := unit.Meters(float64(i) / 20 * float64(route.Total()))
		op := radio.Operators()[i%3]
		files = append(files, makeFile(t, op, "DL", start, odo, radio.LTEA, 30))
		stamp := StampUTC
		ss := utcStamp(start)
		zone := ""
		if i%2 == 1 {
			stamp = StampLocalNaive
			z := route.At(odo).Timezone
			ss = start.In(z.Location()).Format(xcal.LoggerFormat)
			zone = z.String()
		}
		apps = append(apps, AppLog{
			Op: op.Short(), Kind: "DL", Server: fmt.Sprintf("srv-%02d", i),
			StartStamp: ss, Stamp: stamp, Zone: zone, DurationSec: 10,
		})
	}
	db, rep, err := Merge(Input{Route: route, Files: files, Apps: apps})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Matched != 20 || rep.UnmatchedApps != 0 || len(rep.UnmatchedFiles) != 0 {
		t.Fatalf("report = %+v", rep)
	}
	// Every test must carry the server of the app log at its exact start.
	for _, test := range db.Tests {
		i := int(test.Start.Sub(base) / (37 * time.Minute))
		want := fmt.Sprintf("srv-%02d", i)
		if test.Server != want {
			t.Errorf("test starting %v: server %q, want %q", test.Start, test.Server, want)
		}
	}
}

func TestMergeZoneResolutionProperty(t *testing.T) {
	// Property: for any trip hour and any position on the route, a file
	// named with local time matches an app log stamped in UTC, and the
	// reconstructed start equals the ground truth exactly.
	route := geo.DefaultRoute()
	f := func(hourOffset uint16, posPermille uint16) bool {
		start := time.Date(2022, 8, 8, 16, 0, 0, 0, time.UTC).
			Add(time.Duration(hourOffset%190) * time.Hour)
		odo := unit.Meters(float64(posPermille%1000) / 1000 * float64(route.Total()))
		file := makeFile(t, radio.TMobile, "UL", start, odo, radio.NRLow, 12)
		app := AppLog{Op: "T", Kind: "UL", StartStamp: utcStamp(start), Stamp: StampUTC, DurationSec: 10}
		db, rep, err := Merge(Input{Route: route, Files: []xcal.File{file}, Apps: []AppLog{app}})
		if err != nil || rep.Matched != 1 || len(db.Tests) != 1 {
			return false
		}
		return db.Tests[0].Start.Equal(start)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
