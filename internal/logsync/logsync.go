// Package logsync is the reproduction of the paper's "sophisticated
// software" for challenge C2 (§3, §B): it reconciles logs whose
// timestamps come in three inconsistent formats — XCAL file names stamped
// in the vehicle's local time, XCAL file contents stamped in fixed EDT,
// and application logs stamped either in UTC or in naive local time —
// across the four timezones the trip crosses, matches each application
// log to its XCAL capture, and emits the consolidated database the
// analysis runs on.
//
// The matcher never sees test identifiers: like the real pipeline, it has
// only operator, test label, and timestamps to go on. Matching a file
// name means trying each of the four candidate timezones and accepting
// the interpretation that lines up with an application log of the same
// operator and kind.
package logsync

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/nuwins/cellwheels/internal/dataset"
	"github.com/nuwins/cellwheels/internal/geo"
	"github.com/nuwins/cellwheels/internal/obs"
	"github.com/nuwins/cellwheels/internal/radio"
	"github.com/nuwins/cellwheels/internal/unit"
	"github.com/nuwins/cellwheels/internal/xcal"
)

// StampKind says how an application log rendered its start timestamp.
type StampKind int

// Stamp kinds.
const (
	// StampUTC is RFC3339 in UTC.
	StampUTC StampKind = iota
	// StampLocalNaive is xcal.LoggerFormat local time with a separate
	// zone-name column.
	StampLocalNaive
)

// RTTEntry is one echo result inside an RTT application log, stored as an
// offset from the test start.
type RTTEntry struct {
	OffsetMS float64
	RTTMS    float64
	Lost     bool
}

// AppLog is one application-side test log.
type AppLog struct {
	Op         string // operator short code ("V", "T", "A")
	Kind       string // file label: DL, UL, RTT, AR, CAV, VID, GAME
	Server     string
	Edge       bool
	Static     bool
	Compressed bool

	StartStamp  string
	Stamp       StampKind
	Zone        string // zone name for StampLocalNaive
	DurationSec float64

	RTTs    []RTTEntry
	Metrics map[string]float64
}

// StartUTC resolves the log's start instant.
func (l AppLog) StartUTC() (time.Time, error) {
	switch l.Stamp {
	case StampUTC:
		t, err := time.Parse(time.RFC3339Nano, l.StartStamp)
		if err != nil {
			return time.Time{}, fmt.Errorf("logsync: utc stamp %q: %w", l.StartStamp, err)
		}
		return t.UTC(), nil
	default:
		z, ok := zoneByName(l.Zone)
		if !ok {
			return time.Time{}, fmt.Errorf("logsync: unknown zone %q", l.Zone)
		}
		t, err := time.ParseInLocation(xcal.LoggerFormat, l.StartStamp, z.Location())
		if err != nil {
			return time.Time{}, fmt.Errorf("logsync: local stamp %q: %w", l.StartStamp, err)
		}
		return t.UTC(), nil
	}
}

func zoneByName(name string) (geo.Timezone, bool) {
	for z := geo.Pacific; z <= geo.Eastern; z++ {
		if z.String() == name {
			return z, true
		}
	}
	return geo.Pacific, false
}

// kindByLabel maps file labels to test kinds.
var kindByLabel = map[string]dataset.TestKind{
	"DL":   dataset.ThroughputDL,
	"UL":   dataset.ThroughputUL,
	"RTT":  dataset.RTTTest,
	"AR":   dataset.AppAR,
	"CAV":  dataset.AppCAV,
	"VID":  dataset.AppVideo,
	"GAME": dataset.AppGaming,
}

// LabelOf renders a test kind as its file label.
func LabelOf(k dataset.TestKind) string {
	for l, kk := range kindByLabel {
		if kk == k {
			return l
		}
	}
	return "?"
}

// ParseContentTime parses an XCAL content timestamp (fixed EDT) to UTC.
func ParseContentTime(s string) (time.Time, error) {
	t, err := time.ParseInLocation(xcal.ContentFormat, s, xcal.EDT)
	if err != nil {
		return time.Time{}, fmt.Errorf("logsync: content time %q: %w", s, err)
	}
	return t.UTC(), nil
}

// parsedName is the decomposition of an XCAL file name.
type parsedName struct {
	op    radio.Operator
	label string
	naive time.Time // wall-clock with unknown zone
}

// parseFileName decomposes "<OP>_<label>_<stamp>.drm".
func parseFileName(name string) (parsedName, error) {
	base := strings.TrimSuffix(name, ".drm")
	parts := strings.Split(base, "_")
	if len(parts) != 4 {
		return parsedName{}, fmt.Errorf("logsync: malformed file name %q", name)
	}
	op, ok := radio.ParseOperatorShort(parts[0])
	if !ok {
		return parsedName{}, fmt.Errorf("logsync: unknown operator in %q", name)
	}
	if _, ok := kindByLabel[parts[1]]; !ok {
		return parsedName{}, fmt.Errorf("logsync: unknown label in %q", name)
	}
	naive, err := time.Parse(xcal.FileNameFormat, parts[2]+"_"+parts[3])
	if err != nil {
		return parsedName{}, fmt.Errorf("logsync: stamp in %q: %w", name, err)
	}
	return parsedName{op: op, label: parts[1], naive: naive}, nil
}

// matchTolerance is the maximum skew accepted between a file-name stamp
// (under some zone interpretation) and an app log's start.
const matchTolerance = 3 * time.Second

// resolveFileStart tries all four timezones and reports the UTC
// interpretations of a naive file-name stamp.
func resolveFileStart(naive time.Time) [4]time.Time {
	var out [4]time.Time
	for z := geo.Pacific; z <= geo.Eastern; z++ {
		out[z] = time.Date(naive.Year(), naive.Month(), naive.Day(),
			naive.Hour(), naive.Minute(), naive.Second(), naive.Nanosecond(),
			z.Location()).UTC()
	}
	return out
}

// Input bundles everything Merge consumes.
type Input struct {
	Route  *geo.Route
	Files  []xcal.File
	Apps   []AppLog
	Logger map[string][]xcal.LoggerRow // passive rows keyed by operator short code
	Meta   dataset.Meta
	// Obs receives merge statistics (match counts, name-stamp skew, final
	// per-table row counts). Write-only and nil-safe: the merge's output
	// is byte-identical with or without it.
	Obs *obs.Recorder
}

// Report describes merge quality for diagnostics and tests.
type Report struct {
	Matched        int
	UnmatchedFiles []string
	UnmatchedApps  int
}

// Merge reconciles the raw logs into the consolidated database.
func Merge(in Input) (*dataset.DB, Report, error) {
	if in.Route == nil {
		return nil, Report{}, fmt.Errorf("logsync: nil route")
	}
	defer in.Obs.StartPhase("merge")()
	// Skew between a file-name stamp (best zone interpretation) and the
	// matched app log, in ms — the quantity matchTolerance bounds.
	skew := in.Obs.Histogram("logsync/skew_ms", []float64{1, 10, 100, 1000, 3000})
	db := &dataset.DB{Meta: in.Meta}
	rep := Report{}

	usedApps := make([]bool, len(in.Apps))
	appStarts := make([]time.Time, len(in.Apps))
	for i, a := range in.Apps {
		t, err := a.StartUTC()
		if err != nil {
			return nil, rep, err
		}
		appStarts[i] = t
	}

	// Deterministic processing order: files sorted by name.
	files := append([]xcal.File(nil), in.Files...)
	sort.SliceStable(files, func(i, j int) bool { return files[i].Name < files[j].Name })

	nextID := 1
	for _, f := range files {
		pn, err := parseFileName(f.Name)
		if err != nil {
			return nil, rep, err
		}
		candidates := resolveFileStart(pn.naive)
		bestApp, bestSkew := -1, matchTolerance+1
		var bestStart time.Time
		for i, a := range in.Apps {
			if usedApps[i] || a.Op != pn.op.Short() || a.Kind != pn.label {
				continue
			}
			for _, c := range candidates {
				skew := appStarts[i].Sub(c)
				if skew < 0 {
					skew = -skew
				}
				if skew < bestSkew {
					bestSkew, bestApp, bestStart = skew, i, appStarts[i]
				}
			}
		}
		if bestApp < 0 {
			rep.UnmatchedFiles = append(rep.UnmatchedFiles, f.Name)
			continue
		}
		usedApps[bestApp] = true
		rep.Matched++
		skew.Observe(float64(bestSkew) / float64(time.Millisecond))
		app := in.Apps[bestApp]

		id := nextID
		nextID++
		end := bestStart.Add(time.Duration(app.DurationSec * float64(time.Second)))
		test := dataset.Test{
			ID:     id,
			Kind:   kindByLabel[pn.label],
			Op:     pn.op,
			Start:  bestStart,
			End:    end,
			Server: app.Server,
			Edge:   app.Edge,
			Static: app.Static,
		}

		rows, signals, err := normalizeFile(f)
		if err != nil {
			return nil, rep, err
		}
		if len(rows) > 0 {
			first, last := rows[0].raw, rows[len(rows)-1].raw
			test.StartOdo = in.Route.OdometerOf(geo.LatLon{Lat: first.Lat, Lon: first.Lon})
			test.EndOdo = in.Route.OdometerOf(geo.LatLon{Lat: last.Lat, Lon: last.Lon})
			test.Timezone = in.Route.At(test.StartOdo).Timezone
		}
		db.Tests = append(db.Tests, test)

		// Handover records.
		for _, sig := range signals {
			db.Handovers = append(db.Handovers, dataset.Handover{
				TestID: id, Time: sig.at, Op: pn.op,
				DurationMS: sig.raw.DurationMS,
				FromTech:   sig.fromTech, ToTech: sig.toTech,
				Odometer: nearestOdo(rows, sig.at, in.Route),
			})
		}

		switch test.Kind {
		case dataset.ThroughputDL, dataset.ThroughputUL:
			dir := radio.Downlink
			if test.Kind == dataset.ThroughputUL {
				dir = radio.Uplink
			}
			for _, r := range rows {
				db.Throughput = append(db.Throughput, throughputSample(id, dir, r, signals, in.Route, test))
			}
		case dataset.RTTTest:
			for _, e := range app.RTTs {
				at := bestStart.Add(unit.DurationFromMS(e.OffsetMS))
				r := rowNear(rows, at)
				s := dataset.RTTSample{
					TestID: id, Time: at, Op: pn.op,
					RTTMS: e.RTTMS, Lost: e.Lost,
					Edge: app.Edge, Static: app.Static,
				}
				if r != nil {
					s.Tech = r.tech
					s.SpeedMPH = r.raw.SpeedMPH
					s.Odometer = in.Route.OdometerOf(geo.LatLon{Lat: r.raw.Lat, Lon: r.raw.Lon})
					s.Timezone = in.Route.At(s.Odometer).Timezone
				}
				db.RTT = append(db.RTT, s)
			}
		default:
			db.AppRuns = append(db.AppRuns, appRun(id, test, app, rows, signals))
		}
	}

	for _, used := range usedApps {
		if !used {
			rep.UnmatchedApps++
		}
	}

	// Passive coverage rows. Iterate operators in sorted-key order — map
	// iteration order would otherwise leak into tie-breaks between rows
	// with identical timestamps across operators.
	loggerOps := make([]string, 0, len(in.Logger))
	for opShort := range in.Logger {
		loggerOps = append(loggerOps, opShort)
	}
	sort.Strings(loggerOps)
	for _, opShort := range loggerOps {
		rows := in.Logger[opShort]
		op, ok := radio.ParseOperatorShort(opShort)
		if !ok {
			return nil, rep, fmt.Errorf("logsync: unknown logger operator %q", opShort)
		}
		for _, r := range rows {
			z, ok := zoneByName(r.Zone)
			if !ok {
				return nil, rep, fmt.Errorf("logsync: logger zone %q", r.Zone)
			}
			at, err := time.ParseInLocation(xcal.LoggerFormat, r.TimeLocal, z.Location())
			if err != nil {
				return nil, rep, fmt.Errorf("logsync: logger time %q: %w", r.TimeLocal, err)
			}
			tech, _ := radio.ParseTechnology(r.Tech)
			odo := in.Route.OdometerOf(geo.LatLon{Lat: r.Lat, Lon: r.Lon})
			db.Passive = append(db.Passive, dataset.CoverageSample{
				Time: at.UTC(), Op: op, Tech: tech, CellID: r.CellID,
				Odometer: odo, Timezone: z, SpeedMPH: r.SpeedMPH,
			})
		}
	}

	sortDB(db)
	recordMergeStats(in.Obs, db, rep)
	return db, rep, nil
}

// recordMergeStats publishes the merge outcome: how the matcher fared and
// how many rows each table ended up with. The table counters are the
// numbers the -metrics manifest must agree with the written dataset on.
func recordMergeStats(rec *obs.Recorder, db *dataset.DB, rep Report) {
	rec.Counter("logsync/matched").Add(int64(rep.Matched))
	rec.Counter("logsync/unmatched_files").Add(int64(len(rep.UnmatchedFiles)))
	rec.Counter("logsync/unmatched_apps").Add(int64(rep.UnmatchedApps))
	rec.Counter("table/tests").Add(int64(len(db.Tests)))
	rec.Counter("table/throughput").Add(int64(len(db.Throughput)))
	rec.Counter("table/rtt").Add(int64(len(db.RTT)))
	rec.Counter("table/handovers").Add(int64(len(db.Handovers)))
	rec.Counter("table/appruns").Add(int64(len(db.AppRuns)))
	rec.Counter("table/passive").Add(int64(len(db.Passive)))
}

// normRow is a parsed XCAL row with UTC time.
type normRow struct {
	at   time.Time
	tech radio.Technology
	raw  xcal.Row
}

// normSignal is a parsed signaling event.
type normSignal struct {
	at       time.Time
	fromTech radio.Technology
	toTech   radio.Technology
	raw      xcal.Signal
}

func normalizeFile(f xcal.File) ([]normRow, []normSignal, error) {
	rows := make([]normRow, 0, len(f.Rows))
	for _, r := range f.Rows {
		at, err := ParseContentTime(r.TimeEDT)
		if err != nil {
			return nil, nil, err
		}
		tech, _ := radio.ParseTechnology(r.Tech)
		rows = append(rows, normRow{at: at, tech: tech, raw: r})
	}
	signals := make([]normSignal, 0, len(f.Signals))
	for _, s := range f.Signals {
		at, err := ParseContentTime(s.TimeEDT)
		if err != nil {
			return nil, nil, err
		}
		ft, _ := radio.ParseTechnology(s.FromTech)
		tt, _ := radio.ParseTechnology(s.ToTech)
		signals = append(signals, normSignal{at: at, fromTech: ft, toTech: tt, raw: s})
	}
	return rows, signals, nil
}

func throughputSample(id int, dir radio.Direction, r normRow, signals []normSignal, route *geo.Route, test dataset.Test) dataset.ThroughputSample {
	odo := route.OdometerOf(geo.LatLon{Lat: r.raw.Lat, Lon: r.raw.Lon})
	wp := route.At(odo)
	cc := r.raw.CCDL
	if dir == radio.Uplink {
		cc = r.raw.CCUL
	}
	hos := 0
	for _, s := range signals {
		if !s.at.Before(r.at) && s.at.Before(r.at.Add(xcal.SampleInterval)) {
			hos++
		}
	}
	return dataset.ThroughputSample{
		TestID: id, Time: r.at, Op: test.Op, Dir: dir,
		Mbps: r.raw.AppMbps, Tech: r.tech,
		RSRP: r.raw.RSRP, SINR: r.raw.SINR, MCS: r.raw.MCS, CC: cc,
		BLER: r.raw.BLER, Load: r.raw.Load,
		SpeedMPH: r.raw.SpeedMPH, Odometer: odo,
		Timezone: wp.Timezone, Region: wp.Region,
		Handovers: hos, CellID: r.raw.CellID,
		Edge: test.Edge, Static: test.Static,
	}
}

func appRun(id int, test dataset.Test, app AppLog, rows []normRow, signals []normSignal) dataset.AppRun {
	hs := 0
	for _, r := range rows {
		if r.tech.IsHighSpeed() {
			hs++
		}
	}
	frac := 0.0
	if len(rows) > 0 {
		frac = float64(hs) / float64(len(rows))
	}
	m := app.Metrics
	return dataset.AppRun{
		TestID: id, Kind: test.Kind, Op: test.Op, Start: test.Start,
		Compressed: app.Compressed,
		E2EMS:      m["e2e_ms"], OffloadFPS: m["fps"], MAP: m["map"],
		QoE: m["qoe"], AvgBitrate: m["bitrate"], RebufferFrac: m["rebuffer"],
		SendBitrate: m["send_bitrate"], NetLatencyMS: m["net_latency_ms"], FrameDropFrac: m["frame_drop"],
		HighSpeedFrac: frac, Edge: test.Edge,
		Handovers: len(signals), Static: test.Static,
	}
}

// rowNear finds the row whose window contains (or is closest to) at.
func rowNear(rows []normRow, at time.Time) *normRow {
	if len(rows) == 0 {
		return nil
	}
	i := sort.Search(len(rows), func(i int) bool { return !rows[i].at.Before(at) })
	if i == 0 {
		return &rows[0]
	}
	if i >= len(rows) {
		return &rows[len(rows)-1]
	}
	// Pick the neighbour with smaller skew.
	if rows[i].at.Sub(at) < at.Sub(rows[i-1].at) {
		return &rows[i]
	}
	return &rows[i-1]
}

func nearestOdo(rows []normRow, at time.Time, route *geo.Route) unit.Meters {
	r := rowNear(rows, at)
	if r == nil {
		return 0
	}
	return route.OdometerOf(geo.LatLon{Lat: r.raw.Lat, Lon: r.raw.Lon})
}

// sortDB orders every table for reproducible output. Sorts are stable and
// carry explicit tie-breakers: samples from different tests (or, for
// passive rows, different operators) can share a timestamp, and a sort
// keyed on time alone would leave their relative order input-dependent.
func sortDB(db *dataset.DB) {
	sort.SliceStable(db.Tests, func(i, j int) bool { return db.Tests[i].ID < db.Tests[j].ID })
	sort.SliceStable(db.Throughput, func(i, j int) bool {
		a, b := db.Throughput[i], db.Throughput[j]
		if !a.Time.Equal(b.Time) {
			return a.Time.Before(b.Time)
		}
		return a.TestID < b.TestID
	})
	sort.SliceStable(db.RTT, func(i, j int) bool {
		a, b := db.RTT[i], db.RTT[j]
		if !a.Time.Equal(b.Time) {
			return a.Time.Before(b.Time)
		}
		return a.TestID < b.TestID
	})
	sort.SliceStable(db.Handovers, func(i, j int) bool {
		a, b := db.Handovers[i], db.Handovers[j]
		if !a.Time.Equal(b.Time) {
			return a.Time.Before(b.Time)
		}
		return a.TestID < b.TestID
	})
	sort.SliceStable(db.AppRuns, func(i, j int) bool {
		a, b := db.AppRuns[i], db.AppRuns[j]
		if !a.Start.Equal(b.Start) {
			return a.Start.Before(b.Start)
		}
		return a.TestID < b.TestID
	})
	sort.SliceStable(db.Passive, func(i, j int) bool {
		a, b := db.Passive[i], db.Passive[j]
		if !a.Time.Equal(b.Time) {
			return a.Time.Before(b.Time)
		}
		return a.Op < b.Op
	})
}
