package dataset

import (
	"bytes"
	"strings"
	"testing"
)

func TestThroughputCSVRoundTrip(t *testing.T) {
	db := sampleDB()
	var buf bytes.Buffer
	if err := db.WriteThroughputCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadThroughputCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(db.Throughput) {
		t.Fatalf("rows = %d, want %d", len(back), len(db.Throughput))
	}
	for i := range back {
		a, b := back[i], db.Throughput[i]
		// Times must match to nanosecond; everything else exactly.
		if !a.Time.Equal(b.Time) {
			t.Errorf("row %d: time %v vs %v", i, a.Time, b.Time)
		}
		a.Time = b.Time
		if a != b {
			t.Errorf("row %d: %+v != %+v", i, a, b)
		}
	}
}

func TestRTTCSVRoundTrip(t *testing.T) {
	db := sampleDB()
	var buf bytes.Buffer
	if err := db.WriteRTTCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadRTTCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(db.RTT) {
		t.Fatalf("rows = %d", len(back))
	}
	for i := range back {
		a, b := back[i], db.RTT[i]
		if !a.Time.Equal(b.Time) {
			t.Errorf("row %d time", i)
		}
		a.Time = b.Time
		if a != b {
			t.Errorf("row %d: %+v != %+v", i, a, b)
		}
	}
}

func TestHandoverCSVRoundTrip(t *testing.T) {
	db := sampleDB()
	var buf bytes.Buffer
	if err := db.WriteHandoverCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadHandoverCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 {
		t.Fatalf("rows = %d", len(back))
	}
	a, b := back[0], db.Handovers[0]
	if !a.Time.Equal(b.Time) {
		t.Error("time mismatch")
	}
	a.Time = b.Time
	if a != b {
		t.Errorf("%+v != %+v", a, b)
	}
}

// hdr renders a table's canonical header as a CSV line, so the garbage
// tests below get past header validation and exercise field parsing.
func hdr(header []string) string { return strings.Join(header, ",") + "\n" }

func TestReadCSVRejectsGarbage(t *testing.T) {
	cases := []struct {
		name string
		in   string
		call func(string) error
	}{
		{"empty", "", func(in string) error {
			_, err := ReadThroughputCSV(strings.NewReader(in))
			return err
		}},
		{"bad float", hdr(throughputHeader) + "1,2022-08-08T16:00:00Z,Verizon,DL,notafloat,LTE,0,0,0,1,0,0,0,0,Pacific,urban,0,c,0,0\n", func(in string) error {
			_, err := ReadThroughputCSV(strings.NewReader(in))
			return err
		}},
		{"bad op", hdr(rttHeader) + "1,2022-08-08T16:00:00Z,Sprint,1,0,LTE,0,0,Pacific,0,0\n", func(in string) error {
			_, err := ReadRTTCSV(strings.NewReader(in))
			return err
		}},
		{"bad tech", hdr(handoverHeader) + "1,2022-08-08T16:00:00Z,Verizon,53,6G,LTE,0\n", func(in string) error {
			_, err := ReadHandoverCSV(strings.NewReader(in))
			return err
		}},
		{"bad time", hdr(handoverHeader) + "1,yesterday,Verizon,53,LTE,LTE,0\n", func(in string) error {
			_, err := ReadHandoverCSV(strings.NewReader(in))
			return err
		}},
		{"wrong cols", "a,b\n1,2\n", func(in string) error {
			_, err := ReadThroughputCSV(strings.NewReader(in))
			return err
		}},
		{"short row", hdr(rttHeader) + "1,2022-08-08T16:00:00Z,Verizon\n", func(in string) error {
			_, err := ReadRTTCSV(strings.NewReader(in))
			return err
		}},
	}
	for _, c := range cases {
		if err := c.call(c.in); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

// TestReadCSVRejectsBadHeader pins the header validation: a file whose
// column count matches but whose header row does not name the table's
// canonical columns must be rejected, and the error must say which
// column mismatched first.
func TestReadCSVRejectsBadHeader(t *testing.T) {
	// Swap two columns of the rtt header: same count, wrong order.
	swapped := append([]string(nil), rttHeader...)
	swapped[3], swapped[4] = swapped[4], swapped[3]
	in := strings.Join(swapped, ",") + "\n1,2022-08-08T16:00:00Z,Verizon,0,0,LTE,0,0,Pacific,0,0\n"
	_, err := ReadRTTCSV(strings.NewReader(in))
	if err == nil {
		t.Fatal("accepted a column-reordered header")
	}
	for _, want := range []string{"header column 4", `"lost"`, `"rtt_ms"`} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q lacks %s", err, want)
		}
	}
}

// TestReadCSVRejectsWrongTable feeds one table's file to another table's
// reader. The handover and rtt tables have different widths, so the
// column-count check fires; the interesting case is same-width confusion,
// which only the header check can catch — here a truncated throughput
// header masquerading as rtt.
func TestReadCSVRejectsWrongTable(t *testing.T) {
	db := sampleDB()
	var buf bytes.Buffer
	if err := db.WriteHandoverCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadRTTCSV(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("rtt reader accepted a handover file")
	}

	// Same column count as rtt, different names.
	in := strings.Join(throughputHeader[:len(rttHeader)], ",") + "\n"
	_, err := ReadRTTCSV(strings.NewReader(in))
	if err == nil {
		t.Fatal("rtt reader accepted a throughput-headed file of matching width")
	}
	if !strings.Contains(err.Error(), "wrong or reordered table") {
		t.Errorf("error %q does not point at table confusion", err)
	}
}

// TestReadCSVHeaderOnly pins that a file with a valid header and no data
// rows parses to an empty, non-nil-error result.
func TestReadCSVHeaderOnly(t *testing.T) {
	rows, err := ReadRTTCSV(strings.NewReader(hdr(rttHeader)))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Errorf("header-only file parsed to %d rows", len(rows))
	}
}

func TestReadCSVErrorMentionsLocation(t *testing.T) {
	in := hdr(rttHeader) + "1,2022-08-08T16:00:00Z,Verizon,xx,0,LTE,0,0,Pacific,0,0\n"
	_, err := ReadRTTCSV(strings.NewReader(in))
	if err == nil {
		t.Fatal("accepted")
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Errorf("error %q lacks line number", err)
	}
}

// TestCSVWriteReadWriteByteEqual pins the strongest round-trip property:
// writing a table, reading it back, and writing the parsed rows again
// must reproduce the first file byte for byte, for all three readable
// tables. This is what lets real drive-test data massaged into the
// canonical columns survive repeated load/export cycles unchanged.
func TestCSVWriteReadWriteByteEqual(t *testing.T) {
	db := sampleDB()

	t.Run("throughput", func(t *testing.T) {
		var first bytes.Buffer
		if err := db.WriteThroughputCSV(&first); err != nil {
			t.Fatal(err)
		}
		rows, err := ReadThroughputCSV(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		var second bytes.Buffer
		if err := (&DB{Throughput: rows}).WriteThroughputCSV(&second); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Errorf("write-read-write differs:\n--- first ---\n%s--- second ---\n%s", first.String(), second.String())
		}
	})

	t.Run("rtt", func(t *testing.T) {
		var first bytes.Buffer
		if err := db.WriteRTTCSV(&first); err != nil {
			t.Fatal(err)
		}
		rows, err := ReadRTTCSV(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		var second bytes.Buffer
		if err := (&DB{RTT: rows}).WriteRTTCSV(&second); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Errorf("write-read-write differs:\n--- first ---\n%s--- second ---\n%s", first.String(), second.String())
		}
	})

	t.Run("handover", func(t *testing.T) {
		var first bytes.Buffer
		if err := db.WriteHandoverCSV(&first); err != nil {
			t.Fatal(err)
		}
		rows, err := ReadHandoverCSV(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		var second bytes.Buffer
		if err := (&DB{Handovers: rows}).WriteHandoverCSV(&second); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Errorf("write-read-write differs:\n--- first ---\n%s--- second ---\n%s", first.String(), second.String())
		}
	})
}
