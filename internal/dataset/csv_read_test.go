package dataset

import (
	"bytes"
	"strings"
	"testing"
)

func TestThroughputCSVRoundTrip(t *testing.T) {
	db := sampleDB()
	var buf bytes.Buffer
	if err := db.WriteThroughputCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadThroughputCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(db.Throughput) {
		t.Fatalf("rows = %d, want %d", len(back), len(db.Throughput))
	}
	for i := range back {
		a, b := back[i], db.Throughput[i]
		// Times must match to nanosecond; everything else exactly.
		if !a.Time.Equal(b.Time) {
			t.Errorf("row %d: time %v vs %v", i, a.Time, b.Time)
		}
		a.Time = b.Time
		if a != b {
			t.Errorf("row %d: %+v != %+v", i, a, b)
		}
	}
}

func TestRTTCSVRoundTrip(t *testing.T) {
	db := sampleDB()
	var buf bytes.Buffer
	if err := db.WriteRTTCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadRTTCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(db.RTT) {
		t.Fatalf("rows = %d", len(back))
	}
	for i := range back {
		a, b := back[i], db.RTT[i]
		if !a.Time.Equal(b.Time) {
			t.Errorf("row %d time", i)
		}
		a.Time = b.Time
		if a != b {
			t.Errorf("row %d: %+v != %+v", i, a, b)
		}
	}
}

func TestHandoverCSVRoundTrip(t *testing.T) {
	db := sampleDB()
	var buf bytes.Buffer
	if err := db.WriteHandoverCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadHandoverCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 {
		t.Fatalf("rows = %d", len(back))
	}
	a, b := back[0], db.Handovers[0]
	if !a.Time.Equal(b.Time) {
		t.Error("time mismatch")
	}
	a.Time = b.Time
	if a != b {
		t.Errorf("%+v != %+v", a, b)
	}
}

func TestReadCSVRejectsGarbage(t *testing.T) {
	cases := []struct {
		name string
		in   string
		call func(string) error
	}{
		{"empty", "", func(in string) error {
			_, err := ReadThroughputCSV(strings.NewReader(in))
			return err
		}},
		{"bad float", "h" + strings.Repeat(",h", 19) + "\n1,2022-08-08T16:00:00Z,Verizon,DL,notafloat,LTE,0,0,0,1,0,0,0,0,Pacific,urban,0,c,0,0\n", func(in string) error {
			_, err := ReadThroughputCSV(strings.NewReader(in))
			return err
		}},
		{"bad op", "h" + strings.Repeat(",h", 10) + "\n1,2022-08-08T16:00:00Z,Sprint,1,0,LTE,0,0,Pacific,0,0\n", func(in string) error {
			_, err := ReadRTTCSV(strings.NewReader(in))
			return err
		}},
		{"bad tech", "h" + strings.Repeat(",h", 6) + "\n1,2022-08-08T16:00:00Z,Verizon,53,6G,LTE,0\n", func(in string) error {
			_, err := ReadHandoverCSV(strings.NewReader(in))
			return err
		}},
		{"wrong cols", "a,b\n1,2\n", func(in string) error {
			_, err := ReadThroughputCSV(strings.NewReader(in))
			return err
		}},
	}
	for _, c := range cases {
		if err := c.call(c.in); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestReadCSVErrorMentionsLocation(t *testing.T) {
	in := "h" + strings.Repeat(",h", 10) + "\n1,2022-08-08T16:00:00Z,Verizon,xx,0,LTE,0,0,Pacific,0,0\n"
	_, err := ReadRTTCSV(strings.NewReader(in))
	if err == nil {
		t.Fatal("accepted")
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Errorf("error %q lacks line number", err)
	}
}
