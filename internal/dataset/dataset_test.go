package dataset

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"
	"time"

	"github.com/nuwins/cellwheels/internal/geo"
	"github.com/nuwins/cellwheels/internal/radio"
	"github.com/nuwins/cellwheels/internal/unit"
)

func sampleDB() *DB {
	t0 := time.Date(2022, 8, 8, 16, 0, 0, 0, time.UTC)
	return &DB{
		Meta: Meta{Seed: 42, RouteKm: 5711, Days: 8, Start: t0,
			BytesRx: 1 * unit.GB, BytesTx: 100 * unit.MB,
			RuntimeByOp:   map[string]time.Duration{"Verizon": time.Hour},
			UniqueCells:   map[string]int{"Verizon": 3020},
			HandoverTotal: map[string]int{"Verizon": 2657},
		},
		Tests: []Test{
			{ID: 1, Kind: ThroughputDL, Op: radio.Verizon, Start: t0, End: t0.Add(30 * time.Second),
				StartOdo: 0, EndOdo: 800, Server: "ec2-ca-general", Timezone: geo.Pacific},
			{ID: 2, Kind: RTTTest, Op: radio.TMobile, Start: t0.Add(time.Minute), End: t0.Add(80 * time.Second),
				Static: true, Timezone: geo.Pacific},
		},
		Throughput: []ThroughputSample{
			{TestID: 1, Time: t0, Op: radio.Verizon, Dir: radio.Downlink, Mbps: 42.5,
				Tech: radio.NRMid, RSRP: -95, SINR: 12, MCS: 15, CC: 2, BLER: 0.05,
				SpeedMPH: 65, Odometer: 100, Timezone: geo.Pacific, Region: geo.Highway, CellID: "V-5G-mid-0001"},
			{TestID: 1, Time: t0.Add(500 * time.Millisecond), Op: radio.Verizon, Dir: radio.Downlink,
				Mbps: 3.1, Tech: radio.LTE, Static: true},
		},
		RTT: []RTTSample{
			{TestID: 2, Time: t0, Op: radio.TMobile, RTTMS: 63.5, Tech: radio.LTEA, Static: true},
			{TestID: 2, Time: t0.Add(200 * time.Millisecond), Op: radio.TMobile, Lost: true},
		},
		Handovers: []Handover{
			{TestID: 1, Time: t0.Add(time.Second), Op: radio.Verizon, DurationMS: 53,
				FromTech: radio.NRMid, ToTech: radio.LTEA, Odometer: 300},
		},
		AppRuns: []AppRun{
			{TestID: 3, Kind: AppAR, Op: radio.Verizon, Start: t0, Compressed: true,
				E2EMS: 214, OffloadFPS: 4.35, MAP: 30.1, HighSpeedFrac: 0.4, Handovers: 2},
		},
		Passive: []CoverageSample{
			{Time: t0, Op: radio.ATT, Tech: radio.LTEA, CellID: "A-LTE-A-0001", Timezone: geo.Pacific},
		},
	}
}

func TestTestKindStrings(t *testing.T) {
	if len(Kinds()) != 7 {
		t.Errorf("Kinds() = %d, want 7", len(Kinds()))
	}
	seen := map[string]bool{}
	for _, k := range Kinds() {
		s := k.String()
		if s == "" || strings.HasPrefix(s, "TestKind(") {
			t.Errorf("kind %d has bad label %q", int(k), s)
		}
		if seen[s] {
			t.Errorf("duplicate kind label %q", s)
		}
		seen[s] = true
	}
}

func TestTestHelpers(t *testing.T) {
	db := sampleDB()
	tt := db.Tests[0]
	if got := tt.Duration(); got != 30*time.Second {
		t.Errorf("Duration = %v", got)
	}
	if got := tt.Miles(); got <= 0 || got > 1 {
		t.Errorf("Miles = %v", got)
	}
	if db.TestByID(1) == nil || db.TestByID(1).Kind != ThroughputDL {
		t.Error("TestByID(1) wrong")
	}
	if db.TestByID(99) != nil {
		t.Error("TestByID(99) should be nil")
	}
}

func TestHandoverVertical(t *testing.T) {
	h := Handover{FromTech: radio.NRMid, ToTech: radio.LTEA}
	if !h.Vertical() {
		t.Error("5G->4G not vertical")
	}
	h2 := Handover{FromTech: radio.LTE, ToTech: radio.LTEA}
	if h2.Vertical() {
		t.Error("4G->4G marked vertical")
	}
}

func TestFilters(t *testing.T) {
	db := sampleDB()
	driving := db.ThroughputWhere(func(s ThroughputSample) bool { return !s.Static })
	if len(driving) != 1 || driving[0].Mbps != 42.5 {
		t.Errorf("driving filter = %v", driving)
	}
	tests := db.TestsWhere(func(tt Test) bool { return tt.Static })
	if len(tests) != 1 || tests[0].ID != 2 {
		t.Errorf("static tests = %v", tests)
	}
	rtts := db.RTTWhere(func(s RTTSample) bool { return !s.Lost })
	if len(rtts) != 1 {
		t.Errorf("rtt filter = %v", rtts)
	}
	hos := db.HandoversWhere(func(h Handover) bool { return h.Vertical() })
	if len(hos) != 1 {
		t.Errorf("ho filter = %v", hos)
	}
	runs := db.AppRunsWhere(func(r AppRun) bool { return r.Kind == AppAR })
	if len(runs) != 1 {
		t.Errorf("app filter = %v", runs)
	}
}

func TestValueExtraction(t *testing.T) {
	db := sampleDB()
	ms := Mbps(db.Throughput)
	if len(ms) != 2 || ms[0] != 42.5 {
		t.Errorf("Mbps = %v", ms)
	}
	rs := RTTValues(db.RTT)
	if len(rs) != 1 || rs[0] != 63.5 {
		t.Errorf("RTTValues = %v (lost samples must be excluded)", rs)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	db := sampleDB()
	var buf bytes.Buffer
	if err := db.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.String() != db.String() {
		t.Errorf("round trip summary: %v vs %v", back, db)
	}
	if len(back.Throughput) != 2 || back.Throughput[0].Mbps != 42.5 {
		t.Errorf("throughput lost in round trip: %+v", back.Throughput)
	}
	if back.Meta.Seed != 42 || back.Meta.UniqueCells["Verizon"] != 3020 {
		t.Errorf("meta lost: %+v", back.Meta)
	}
	if !back.Tests[0].Start.Equal(db.Tests[0].Start) {
		t.Error("timestamps shifted")
	}
}

func TestReadJSONError(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{bad json")); err == nil {
		t.Error("bad JSON accepted")
	}
}

func TestCSVWriters(t *testing.T) {
	db := sampleDB()
	cases := []struct {
		name  string
		write func(*bytes.Buffer) error
		rows  int // data rows expected
	}{
		{"throughput", func(b *bytes.Buffer) error { return db.WriteThroughputCSV(b) }, 2},
		{"rtt", func(b *bytes.Buffer) error { return db.WriteRTTCSV(b) }, 2},
		{"handover", func(b *bytes.Buffer) error { return db.WriteHandoverCSV(b) }, 1},
		{"appruns", func(b *bytes.Buffer) error { return db.WriteAppRunCSV(b) }, 1},
	}
	for _, c := range cases {
		var buf bytes.Buffer
		if err := c.write(&buf); err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		records, err := csv.NewReader(&buf).ReadAll()
		if err != nil {
			t.Fatalf("%s: reparse: %v", c.name, err)
		}
		if len(records) != c.rows+1 {
			t.Errorf("%s: %d rows, want %d+header", c.name, len(records), c.rows)
		}
		for i, rec := range records {
			if len(rec) != len(records[0]) {
				t.Errorf("%s row %d: %d fields, want %d", c.name, i, len(rec), len(records[0]))
			}
		}
	}
}

func TestThroughputCSVContent(t *testing.T) {
	db := sampleDB()
	var buf bytes.Buffer
	if err := db.WriteThroughputCSV(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{"Verizon", "5G-mid", "42.5", "V-5G-mid-0001", "Highway"} {
		if !strings.Contains(s, want) && !strings.Contains(s, strings.ToLower(want)) {
			t.Errorf("CSV missing %q", want)
		}
	}
}

func TestDBStringSummary(t *testing.T) {
	s := sampleDB().String()
	for _, want := range []string{"tests=2", "tput=2", "rtt=2", "ho=1", "apps=1", "passive=1"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary %q missing %q", s, want)
		}
	}
}
