package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"

	"github.com/nuwins/cellwheels/internal/geo"
	"github.com/nuwins/cellwheels/internal/radio"
	"github.com/nuwins/cellwheels/internal/unit"
)

// The CSV readers invert the writers in csv.go, so datasets exported to
// CSV — or real drive-test data massaged into the same columns — can be
// loaded back into a DB and run through the full analysis suite.

// ReadThroughputCSV parses a table written by WriteThroughputCSV.
func ReadThroughputCSV(r io.Reader) ([]ThroughputSample, error) {
	rows, err := readTable(r, throughputHeader, "throughput")
	if err != nil {
		return nil, err
	}
	out := make([]ThroughputSample, 0, len(rows))
	for i, rec := range rows {
		p := newParser(rec, i+2, "throughput")
		s := ThroughputSample{
			TestID:    p.intf(0),
			Time:      p.timef(1),
			Op:        p.op(2),
			Dir:       p.dir(3),
			Mbps:      p.floatf(4),
			Tech:      p.tech(5),
			RSRP:      p.floatf(6),
			SINR:      p.floatf(7),
			MCS:       p.intf(8),
			CC:        p.intf(9),
			BLER:      p.floatf(10),
			Load:      p.floatf(11),
			SpeedMPH:  p.floatf(12),
			Odometer:  unit.Meters(p.floatf(13) * 1000),
			Timezone:  p.zone(14),
			Region:    p.region(15),
			Handovers: p.intf(16),
			CellID:    rec[17],
			Edge:      p.boolf(18),
			Static:    p.boolf(19),
		}
		if p.err != nil {
			return nil, p.err
		}
		out = append(out, s)
	}
	return out, nil
}

// ReadRTTCSV parses a table written by WriteRTTCSV.
func ReadRTTCSV(r io.Reader) ([]RTTSample, error) {
	rows, err := readTable(r, rttHeader, "rtt")
	if err != nil {
		return nil, err
	}
	out := make([]RTTSample, 0, len(rows))
	for i, rec := range rows {
		p := newParser(rec, i+2, "rtt")
		s := RTTSample{
			TestID:   p.intf(0),
			Time:     p.timef(1),
			Op:       p.op(2),
			RTTMS:    p.floatf(3),
			Lost:     p.boolf(4),
			Tech:     p.tech(5),
			SpeedMPH: p.floatf(6),
			Odometer: unit.Meters(p.floatf(7) * 1000),
			Timezone: p.zone(8),
			Edge:     p.boolf(9),
			Static:   p.boolf(10),
		}
		if p.err != nil {
			return nil, p.err
		}
		out = append(out, s)
	}
	return out, nil
}

// ReadHandoverCSV parses a table written by WriteHandoverCSV.
func ReadHandoverCSV(r io.Reader) ([]Handover, error) {
	rows, err := readTable(r, handoverHeader, "handover")
	if err != nil {
		return nil, err
	}
	out := make([]Handover, 0, len(rows))
	for i, rec := range rows {
		p := newParser(rec, i+2, "handover")
		h := Handover{
			TestID:     p.intf(0),
			Time:       p.timef(1),
			Op:         p.op(2),
			DurationMS: p.floatf(3),
			FromTech:   p.tech(4),
			ToTech:     p.tech(5),
			Odometer:   unit.Meters(p.floatf(6) * 1000),
		}
		if p.err != nil {
			return nil, p.err
		}
		out = append(out, h)
	}
	return out, nil
}

// readTable reads all rows, validates the column count, checks the header
// row against the table's canonical header, and strips it. Header
// validation is what catches a column-reordered or wrong-table CSV whose
// column count happens to match — without it such a file parses silently
// into garbage (or, worse, into plausible-looking wrong data).
func readTable(r io.Reader, header []string, table string) ([][]string, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(header)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("dataset: %s csv: %w", table, err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("dataset: %s csv: empty", table)
	}
	for i, want := range header {
		if got := rows[0][i]; got != want {
			return nil, fmt.Errorf("dataset: %s csv: header column %d is %q, want %q (wrong or reordered table?)", table, i+1, got, want)
		}
	}
	return rows[1:], nil
}

// parser accumulates the first field-level error of a row.
type parser struct {
	rec   []string
	line  int
	table string
	err   error
}

func newParser(rec []string, line int, table string) *parser {
	return &parser{rec: rec, line: line, table: table}
}

func (p *parser) fail(col int, what string, err error) {
	if p.err == nil {
		p.err = fmt.Errorf("dataset: %s csv line %d col %d (%s): %w", p.table, p.line, col+1, what, err)
	}
}

func (p *parser) intf(col int) int {
	v, err := strconv.Atoi(p.rec[col])
	if err != nil {
		p.fail(col, "int", err)
	}
	return v
}

func (p *parser) floatf(col int) float64 {
	v, err := strconv.ParseFloat(p.rec[col], 64)
	if err != nil {
		p.fail(col, "float", err)
	}
	return v
}

func (p *parser) boolf(col int) bool {
	switch p.rec[col] {
	case "1", "true":
		return true
	case "0", "false", "":
		return false
	default:
		p.fail(col, "bool", fmt.Errorf("bad value %q", p.rec[col]))
		return false
	}
}

func (p *parser) timef(col int) time.Time {
	t, err := time.Parse(time.RFC3339Nano, p.rec[col])
	if err != nil {
		p.fail(col, "time", err)
	}
	return t.UTC()
}

func (p *parser) op(col int) radio.Operator {
	for _, op := range radio.Operators() {
		if op.String() == p.rec[col] {
			return op
		}
	}
	p.fail(col, "operator", fmt.Errorf("unknown %q", p.rec[col]))
	return radio.Verizon
}

func (p *parser) dir(col int) radio.Direction {
	switch p.rec[col] {
	case "DL":
		return radio.Downlink
	case "UL":
		return radio.Uplink
	}
	p.fail(col, "direction", fmt.Errorf("unknown %q", p.rec[col]))
	return radio.Downlink
}

func (p *parser) tech(col int) radio.Technology {
	t, ok := radio.ParseTechnology(p.rec[col])
	if !ok {
		p.fail(col, "technology", fmt.Errorf("unknown %q", p.rec[col]))
	}
	return t
}

func (p *parser) zone(col int) geo.Timezone {
	for z := geo.Pacific; z <= geo.Eastern; z++ {
		if z.String() == p.rec[col] {
			return z
		}
	}
	p.fail(col, "timezone", fmt.Errorf("unknown %q", p.rec[col]))
	return geo.Pacific
}

func (p *parser) region(col int) geo.Region {
	switch p.rec[col] {
	case "urban":
		return geo.Urban
	case "suburban":
		return geo.Suburban
	case "highway":
		return geo.Highway
	}
	p.fail(col, "region", fmt.Errorf("unknown %q", p.rec[col]))
	return geo.Highway
}
