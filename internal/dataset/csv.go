package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"
)

// Canonical per-table headers, shared by the writers below and the
// readers in csv_read.go: the reader rejects any file whose header row
// does not match its writer's column for column, so a column-reordered or
// wrong-table CSV fails loudly instead of parsing into garbage.
var (
	throughputHeader = []string{
		"test_id", "time_utc", "operator", "direction", "mbps", "tech",
		"rsrp_dbm", "sinr_db", "mcs", "cc", "bler", "load", "speed_mph",
		"odometer_km", "timezone", "region", "handovers", "cell_id", "edge", "static",
	}
	rttHeader = []string{
		"test_id", "time_utc", "operator", "rtt_ms", "lost", "tech",
		"speed_mph", "odometer_km", "timezone", "edge", "static",
	}
	handoverHeader = []string{
		"test_id", "time_utc", "operator", "duration_ms", "from_tech", "to_tech", "odometer_km",
	}
	appRunHeader = []string{
		"test_id", "kind", "operator", "start_utc", "compressed",
		"e2e_ms", "offload_fps", "map", "qoe", "avg_bitrate_mbps", "rebuffer_frac",
		"send_bitrate_mbps", "net_latency_ms", "frame_drop_frac",
		"highspeed_frac", "edge", "handovers", "static",
	}
)

// WriteThroughputCSV writes the throughput table.
func (db *DB) WriteThroughputCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(throughputHeader); err != nil {
		return err
	}
	for _, s := range db.Throughput {
		rec := []string{
			strconv.Itoa(s.TestID),
			s.Time.UTC().Format(time.RFC3339Nano),
			s.Op.String(),
			s.Dir.String(),
			f(s.Mbps),
			s.Tech.String(),
			f(s.RSRP),
			f(s.SINR),
			strconv.Itoa(s.MCS),
			strconv.Itoa(s.CC),
			f(s.BLER),
			f(s.Load),
			f(s.SpeedMPH),
			f(s.Odometer.Km()),
			s.Timezone.String(),
			s.Region.String(),
			strconv.Itoa(s.Handovers),
			s.CellID,
			b(s.Edge),
			b(s.Static),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteRTTCSV writes the RTT table.
func (db *DB) WriteRTTCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(rttHeader); err != nil {
		return err
	}
	for _, s := range db.RTT {
		if err := cw.Write([]string{
			strconv.Itoa(s.TestID),
			s.Time.UTC().Format(time.RFC3339Nano),
			s.Op.String(),
			f(s.RTTMS),
			b(s.Lost),
			s.Tech.String(),
			f(s.SpeedMPH),
			f(s.Odometer.Km()),
			s.Timezone.String(),
			b(s.Edge),
			b(s.Static),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteHandoverCSV writes the handover table.
func (db *DB) WriteHandoverCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(handoverHeader); err != nil {
		return err
	}
	for _, h := range db.Handovers {
		if err := cw.Write([]string{
			strconv.Itoa(h.TestID),
			h.Time.UTC().Format(time.RFC3339Nano),
			h.Op.String(),
			f(h.DurationMS),
			h.FromTech.String(),
			h.ToTech.String(),
			f(h.Odometer.Km()),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteAppRunCSV writes the application-run table.
func (db *DB) WriteAppRunCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(appRunHeader); err != nil {
		return err
	}
	for _, r := range db.AppRuns {
		if err := cw.Write([]string{
			strconv.Itoa(r.TestID),
			r.Kind.String(),
			r.Op.String(),
			r.Start.UTC().Format(time.RFC3339Nano),
			b(r.Compressed),
			f(r.E2EMS), f(r.OffloadFPS), f(r.MAP),
			f(r.QoE), f(r.AvgBitrate), f(r.RebufferFrac),
			f(r.SendBitrate), f(r.NetLatencyMS), f(r.FrameDropFrac),
			f(r.HighSpeedFrac), b(r.Edge), strconv.Itoa(r.Handovers), b(r.Static),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func f(v float64) string { return strconv.FormatFloat(v, 'f', -1, 64) }

func b(v bool) string {
	if v {
		return "1"
	}
	return "0"
}

// String summarizes the database for logs.
func (db *DB) String() string {
	return fmt.Sprintf("dataset{tests=%d tput=%d rtt=%d ho=%d apps=%d passive=%d}",
		len(db.Tests), len(db.Throughput), len(db.RTT), len(db.Handovers), len(db.AppRuns), len(db.Passive))
}
