// Package dataset defines the consolidated database the campaign
// produces and the analysis consumes: 500 ms throughput samples joined
// with PHY KPIs, individual RTT samples, handover events, app-run QoE
// records, and passive coverage rows from the handover-logger phones.
//
// The record shapes deliberately mirror what the paper's post-processing
// pipeline extracts from XCAL + app logs, so real drive-test data can be
// loaded into the same structures. Everything serializes to JSON (whole
// database) and CSV (per table).
package dataset

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"github.com/nuwins/cellwheels/internal/geo"
	"github.com/nuwins/cellwheels/internal/radio"
	"github.com/nuwins/cellwheels/internal/unit"
)

// TestKind identifies one of the round-robin test types (§3).
type TestKind int

// Test kinds.
const (
	ThroughputDL TestKind = iota
	ThroughputUL
	RTTTest
	AppAR
	AppCAV
	AppVideo
	AppGaming
)

// Kinds returns all test kinds in round-robin order.
func Kinds() []TestKind {
	return []TestKind{ThroughputDL, ThroughputUL, RTTTest, AppAR, AppCAV, AppVideo, AppGaming}
}

// String implements fmt.Stringer.
func (k TestKind) String() string {
	switch k {
	case ThroughputDL:
		return "tput-dl"
	case ThroughputUL:
		return "tput-ul"
	case RTTTest:
		return "rtt"
	case AppAR:
		return "app-ar"
	case AppCAV:
		return "app-cav"
	case AppVideo:
		return "app-video"
	case AppGaming:
		return "app-gaming"
	default:
		return fmt.Sprintf("TestKind(%d)", int(k))
	}
}

// Test describes one executed test.
type Test struct {
	ID       int
	Kind     TestKind
	Op       radio.Operator
	Start    time.Time // UTC
	End      time.Time
	StartOdo unit.Meters
	EndOdo   unit.Meters
	Server   string
	Edge     bool // served by a Wavelength edge server
	Static   bool // city baseline rather than driving
	Timezone geo.Timezone
}

// Miles reports the distance driven during the test.
func (t Test) Miles() float64 { return (t.EndOdo - t.StartOdo).Miles() }

// Duration reports the test length.
func (t Test) Duration() time.Duration { return t.End.Sub(t.Start) }

// ThroughputSample is one 500 ms application-layer throughput interval
// joined with the KPIs XCAL logged in the same window.
type ThroughputSample struct {
	TestID    int
	Time      time.Time // UTC, start of the 500 ms window
	Op        radio.Operator
	Dir       radio.Direction
	Mbps      float64
	Tech      radio.Technology
	RSRP      float64 // dBm, primary cell
	SINR      float64 // dB
	MCS       int
	CC        int
	BLER      float64
	Load      float64
	SpeedMPH  float64
	Odometer  unit.Meters
	Timezone  geo.Timezone
	Region    geo.Region
	Handovers int // handovers inside this window
	CellID    string
	Edge      bool
	Static    bool
}

// RTTSample is one ICMP echo result.
type RTTSample struct {
	TestID   int
	Time     time.Time
	Op       radio.Operator
	RTTMS    float64
	Lost     bool
	Tech     radio.Technology
	SpeedMPH float64
	Odometer unit.Meters
	Timezone geo.Timezone
	Edge     bool
	Static   bool
}

// Handover is one recorded handover event.
type Handover struct {
	TestID     int // -1 when outside any test window
	Time       time.Time
	Op         radio.Operator
	DurationMS float64
	FromTech   radio.Technology
	ToTech     radio.Technology
	Odometer   unit.Meters
}

// Vertical reports whether the handover crossed the 4G/5G boundary.
func (h Handover) Vertical() bool { return h.FromTech.Is5G() != h.ToTech.Is5G() }

// AppRun is one application test run's QoE summary. Fields not relevant
// to the app kind are zero.
type AppRun struct {
	TestID     int
	Kind       TestKind
	Op         radio.Operator
	Start      time.Time
	Compressed bool // AR/CAV: frame compression enabled

	// AR/CAV metrics (§7.1).
	E2EMS      float64 // mean end-to-end offload latency
	OffloadFPS float64
	MAP        float64 // AR only: object detection accuracy

	// 360° video metrics (§7.2).
	QoE          float64
	AvgBitrate   float64 // Mbps
	RebufferFrac float64

	// Cloud gaming metrics (§7.3).
	SendBitrate   float64 // Mbps
	NetLatencyMS  float64
	FrameDropFrac float64

	// Context shared by all apps.
	HighSpeedFrac float64 // fraction of run on 5G mid/mmWave
	Edge          bool
	Handovers     int
	Static        bool
}

// CoverageSample is one row from the passive handover-logger phones —
// 1 Hz technology/cell observations under idle ICMP traffic (§3).
type CoverageSample struct {
	Time     time.Time
	Op       radio.Operator
	Tech     radio.Technology
	CellID   string
	Odometer unit.Meters
	Timezone geo.Timezone
	SpeedMPH float64
}

// Meta captures campaign-level context and Table 1 accounting.
type Meta struct {
	Seed          int64
	RouteKm       float64
	Days          int
	Start         time.Time
	BytesRx       unit.Bytes
	BytesTx       unit.Bytes
	RuntimeByOp   map[string]time.Duration
	UniqueCells   map[string]int
	HandoverTotal map[string]int
}

// DB is the consolidated campaign database.
type DB struct {
	Meta       Meta
	Tests      []Test
	Throughput []ThroughputSample
	RTT        []RTTSample
	Handovers  []Handover
	AppRuns    []AppRun
	Passive    []CoverageSample
}

// TestByID finds a test by ID, or nil.
func (db *DB) TestByID(id int) *Test {
	for i := range db.Tests {
		if db.Tests[i].ID == id {
			return &db.Tests[i]
		}
	}
	return nil
}

// ThroughputWhere returns samples matching the predicate.
func (db *DB) ThroughputWhere(keep func(ThroughputSample) bool) []ThroughputSample {
	var out []ThroughputSample
	for _, s := range db.Throughput {
		if keep(s) {
			out = append(out, s)
		}
	}
	return out
}

// RTTWhere returns samples matching the predicate.
func (db *DB) RTTWhere(keep func(RTTSample) bool) []RTTSample {
	var out []RTTSample
	for _, s := range db.RTT {
		if keep(s) {
			out = append(out, s)
		}
	}
	return out
}

// HandoversWhere returns events matching the predicate.
func (db *DB) HandoversWhere(keep func(Handover) bool) []Handover {
	var out []Handover
	for _, h := range db.Handovers {
		if keep(h) {
			out = append(out, h)
		}
	}
	return out
}

// AppRunsWhere returns runs matching the predicate.
func (db *DB) AppRunsWhere(keep func(AppRun) bool) []AppRun {
	var out []AppRun
	for _, r := range db.AppRuns {
		if keep(r) {
			out = append(out, r)
		}
	}
	return out
}

// TestsWhere returns tests matching the predicate.
func (db *DB) TestsWhere(keep func(Test) bool) []Test {
	var out []Test
	for _, t := range db.Tests {
		if keep(t) {
			out = append(out, t)
		}
	}
	return out
}

// Mbps extracts the throughput values of samples.
func Mbps(samples []ThroughputSample) []float64 {
	out := make([]float64, len(samples))
	for i, s := range samples {
		out[i] = s.Mbps
	}
	return out
}

// RTTValues extracts the RTT values (ms) of non-lost samples.
func RTTValues(samples []RTTSample) []float64 {
	var out []float64
	for _, s := range samples {
		if !s.Lost {
			out = append(out, s.RTTMS)
		}
	}
	return out
}

// WriteJSON serializes the whole database.
func (db *DB) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(db)
}

// ReadJSON loads a database written by WriteJSON.
func ReadJSON(r io.Reader) (*DB, error) {
	var db DB
	if err := json.NewDecoder(r).Decode(&db); err != nil {
		return nil, fmt.Errorf("dataset: decode: %w", err)
	}
	return &db, nil
}
