package lint

// GoLeakRule flags goroutines spawned with no cancellation or join path.
// A long-lived daemon accretes goroutines; any spawn that can park
// forever (channel op, HTTP round-trip, Wait, a Sleep poller) and is
// reachable by no stop signal is a leak waiting for its trigger — the
// connection that never answers, the peer that never sends. The spawn is
// clean when the spawned code transitively observes a cancel/join signal
// (receivesCancel), or when a carrier — a channel, context.Context,
// sync.WaitGroup, or sync.Cond — reaches the spawn through an argument
// or captured variable. Indirect spawns (`go fn()` through a function
// value) carry no summary and are skipped, the engine's usual
// under-approximation: miss exotic leaks, invent none.
type GoLeakRule struct{}

func (GoLeakRule) Name() string { return "goleak" }

func (GoLeakRule) Doc() string {
	return "flags goroutines that can block forever (channel ops, HTTP round-trips, Wait, Sleep loops) with no cancellation or join path reaching the spawn"
}

func (GoLeakRule) CheckModule(a *Analysis, report ReportFunc) {
	for _, fi := range a.funcs {
		if !underSim(fi.pkg.Rel) {
			continue
		}
		for _, sp := range fi.spawns {
			var blocks, cancel bool
			var why string
			if sp.lit != nil {
				blocks, why, cancel = a.litConc(fi.pkg.Info, sp.lit)
				for _, v := range sp.captured {
					cancel = cancel || cancelCarrier(v.Type())
				}
			} else {
				if sp.callee == nil {
					continue
				}
				ci := a.byObj[sp.callee]
				if ci == nil {
					continue // body outside the analyzed packages
				}
				blocks, why, cancel = ci.blocks, ci.blocksWhy, ci.receivesCancel
				for _, arg := range sp.stmt.Call.Args {
					cancel = cancel || cancelCarrier(fi.pkg.Info.TypeOf(arg))
				}
			}
			if blocks && !cancel {
				report(fi.pkg, sp.stmt.Pos(), "goroutine can block forever (%s) with no cancellation or join path — no context, channel, or WaitGroup reaches the spawn", why)
			}
		}
	}
}
