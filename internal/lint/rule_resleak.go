package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ResLeakRule flags acquired resources — files, sockets, listeners,
// pipes, HTTP response bodies — with a CFG path from the acquisition to
// a return that neither closes them nor hands them off. Leaked fds are
// the slowest-burning failure a daemon has: nothing breaks until the
// process hits its descriptor limit hours later. The analysis tracks
// each resource variable forward from its acquisition; any use of the
// variable ends the path as "handled" — a Close obviously, but also
// passing it to a callee, returning it, capturing it in a closure, or
// storing it somewhere — because after a use, ownership is no longer
// provably local. The deliberately narrow consequence: what the rule
// flags is the sharp pattern where a path reaches a return without the
// resource appearing AT ALL, i.e. the early-return leak. Returns that
// mention the acquisition's error variable are the error-handling exit
// for a failed acquisition and are exempt; a blank `_ = v` assignment is
// not a use (it is the compiler-silencing idiom, not ownership
// transfer); paths into panic or os.Exit die with the process.
type ResLeakRule struct{}

func (ResLeakRule) Name() string { return "resleak" }

func (ResLeakRule) Doc() string {
	return "flags acquired resources (files, sockets, listeners, pipes, HTTP response bodies) with a CFG path to a return that neither closes nor hands them off"
}

func (ResLeakRule) CheckModule(a *Analysis, report ReportFunc) {
	for _, fi := range a.funcs {
		if !underSim(fi.pkg.Rel) {
			continue
		}
		for _, unit := range funcUnits(fi.decl) {
			checkResourcePaths(a, fi, unit, report)
		}
	}
}

// resAcq is one tracked resource: the acquiring statement, the resource
// variable, and the error variable assigned alongside it (if any).
type resAcq struct {
	stmt   ast.Stmt
	v      types.Object
	errVar types.Object
	desc   string
}

// checkResourcePaths finds the acquisitions in one function-like unit
// and walks each forward through the CFG.
func checkResourcePaths(a *Analysis, fi *funcInfo, unit ast.Node, report ReportFunc) {
	body := bodyOf(unit)
	if body == nil {
		return
	}
	info := fi.pkg.Info
	var acqs []resAcq
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // its own unit
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		desc, ok := resourceCall(origin(calleeFunc(info, call)))
		if !ok {
			return true
		}
		var errVar types.Object
		var vars []types.Object
		for _, lhs := range as.Lhs {
			id, isIdent := ast.Unparen(lhs).(*ast.Ident)
			if !isIdent || id.Name == "_" {
				continue
			}
			obj := info.ObjectOf(id)
			if obj == nil {
				continue
			}
			if isErrorType(obj.Type()) {
				errVar = obj
				continue
			}
			vars = append(vars, obj)
		}
		for _, v := range vars {
			acqs = append(acqs, resAcq{stmt: as, v: v, errVar: errVar, desc: desc})
		}
		return true
	})
	if len(acqs) == 0 {
		return
	}
	g := a.cfgOf(unit)
	if g == nil {
		return
	}
	for _, acq := range acqs {
		blk, idx := g.locate(acq.stmt)
		if blk == nil {
			continue
		}
		if pos, kind := firstLeakPath(info, g, blk, idx, acq); kind != leakNone {
			line := fi.pkg.Fset.Position(pos).Line
			where := "the return at line"
			if kind == leakExit {
				where = "the function's end at line"
			}
			report(fi.pkg, acq.stmt.Pos(), "%s from %s is neither closed nor handed off on the path to %s %d", objName(acq.v), acq.desc, where, line)
		}
	}
}

const (
	leakNone = iota
	leakReturn
	leakExit
)

// firstLeakPath walks forward from the acquisition and returns the first
// path that reaches a return (or falls off the function's end) without
// the resource being used. DFS in block-construction order, so the
// reported path is deterministic.
func firstLeakPath(info *types.Info, g *CFG, blk *cfgBlock, idx int, acq resAcq) (token.Pos, int) {
	visited := map[int]bool{blk.id: true}
	var leakPos token.Pos
	leakKind := leakNone
	var walk func(b *cfgBlock, start int)
	walk = func(b *cfgBlock, start int) {
		if leakKind != leakNone {
			return
		}
		var last ast.Node
		for i := start; i < len(b.nodes); i++ {
			n := b.nodes[i]
			last = n
			if n == acq.stmt {
				return // looped back: the variable is reacquired here
			}
			if usesResource(info, n, acq.v) {
				return
			}
			// A STATEMENT touching the acquisition's error variable marks
			// the error-handling path (return err, lastErr = err, a log) —
			// the resource does not exist there. Condition EXPRESSIONS are
			// excluded: `if err != nil` is anchored in the block both
			// branches share, so counting it would exempt every path.
			if acq.errVar != nil {
				if _, isStmt := n.(ast.Stmt); isStmt && mentionsObj(info, n, acq.errVar) {
					return
				}
			}
			if ret, ok := n.(*ast.ReturnStmt); ok {
				leakPos, leakKind = ret.Pos(), leakReturn
				return
			}
			if terminatesProcess(info, n) {
				return
			}
		}
		if len(b.succs) == 0 {
			// Fell off the end of the unit: an implicit return.
			pos := acq.stmt.End()
			if last != nil {
				pos = last.End()
			}
			leakPos, leakKind = pos, leakExit
			return
		}
		for _, s := range b.succs {
			if !visited[s.id] {
				visited[s.id] = true
				walk(s, 0)
			}
		}
	}
	walk(blk, idx+1)
	return leakPos, leakKind
}

// usesResource reports whether node n uses v in a way that transfers or
// discharges ownership: any mention — a Close, an argument position, a
// return, a store, a closure capture — except the blank `_ = v`
// assignment, which exists precisely to fake a use.
func usesResource(info *types.Info, n ast.Node, v types.Object) bool {
	if as, ok := n.(*ast.AssignStmt); ok && blankAssign(as) {
		return false
	}
	return mentionsObj(info, n, v)
}

// blankAssign matches `_ = x` (and `_, _ = x, y`): all-blank targets
// with bare operands.
func blankAssign(as *ast.AssignStmt) bool {
	if as.Tok != token.ASSIGN {
		return false
	}
	for _, lhs := range as.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	for _, rhs := range as.Rhs {
		if _, ok := ast.Unparen(rhs).(*ast.Ident); !ok {
			return false
		}
	}
	return true
}

// mentionsObj reports whether the subtree contains an identifier
// resolving to obj.
func mentionsObj(info *types.Info, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		if id, ok := m.(*ast.Ident); ok && info.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}

// terminatesProcess reports whether n unconditionally ends the process
// or goroutine: panic, os.Exit, log.Fatal*, runtime.Goexit. Paths into
// them cannot leak into a live process.
func terminatesProcess(info *types.Info, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
				found = true
				return false
			}
		}
		fn := origin(calleeFunc(info, call))
		if fn == nil {
			return true
		}
		switch funcPkgPath(fn) {
		case "os":
			found = found || fn.Name() == "Exit"
		case "log":
			found = found || fn.Name() == "Fatal" || fn.Name() == "Fatalf" || fn.Name() == "Fatalln"
		case "runtime":
			found = found || fn.Name() == "Goexit"
		}
		return !found
	})
	return found
}

// resourceCall classifies the stdlib acquisitions the rule tracks.
func resourceCall(fn *types.Func) (string, bool) {
	if fn == nil {
		return "", false
	}
	recv, name := recvTypeName(fn), fn.Name()
	switch funcPkgPath(fn) {
	case "os":
		if recv == "" {
			switch name {
			case "Open", "OpenFile", "Create", "CreateTemp", "Pipe":
				return "os." + name, true
			}
		}
	case "net":
		if recv == "" {
			switch name {
			case "Listen", "ListenTCP", "ListenUnix", "ListenPacket", "ListenUDP",
				"Dial", "DialTimeout", "DialTCP", "DialUDP", "DialUnix", "FileListener", "FileConn":
				return "net." + name, true
			}
		}
	case "net/http":
		if recv == "Client" {
			switch name {
			case "Do", "Get", "Head", "Post", "PostForm":
				return "http.Client." + name, true
			}
		}
		if recv == "" {
			switch name {
			case "Get", "Head", "Post", "PostForm":
				return "http." + name, true
			}
		}
	}
	return "", false
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	n, ok := t.(*types.Named)
	return ok && n.Obj().Pkg() == nil && n.Obj().Name() == "error"
}

// objName renders an object for diagnostics.
func objName(obj types.Object) string {
	if obj == nil {
		return "resource"
	}
	return obj.Name()
}
