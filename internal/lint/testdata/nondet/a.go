// Fixture for the nondet rule: ambient time, environment, and global
// math/rand reads inside a simulation package.
package nondetfix

import (
	"math/rand"
	"os"
	"time"
)

func bad() (time.Time, time.Duration, string, int) {
	now := time.Now()
	d := time.Since(now)
	home := os.Getenv("HOME")
	n := rand.Intn(10)
	return now, d, home, n
}

func badLookup() (time.Duration, bool) {
	_, ok := os.LookupEnv("SEED")
	return time.Until(time.Time{}), ok
}

func allowedWithDirective() time.Time {
	return time.Now() //lint:allow nondet — fixture: documented wall-clock use
}

func okConstructorsAreSeededrandsBusiness() int {
	r := rand.New(rand.NewSource(1))
	return r.Intn(3) // method on a local *rand.Rand, not the global source
}

func okSimulatedTime(clock time.Time) time.Time {
	return clock.Add(500 * time.Millisecond)
}
