// Fixture for the units rule: KPI arithmetic mixing unit suffixes.
package unitsfix

// kpi mirrors the repository's measurement rows: unit-suffixed fields.
type kpi struct {
	rttMs       float64
	budgetSec   float64
	goodputMbps float64
	linkBps     float64
	rsrpDbm     float64
	noiseDb     float64
}

// limitSec supplies a unit through a call name.
func limitSec() float64 { return 1.5 }

func compare(k kpi, jitterMs float64) bool {
	if k.rttMs > k.budgetSec { // want finding: ms vs s comparison
		return true
	}
	sum := k.rttMs + jitterMs // clean: both sides are milliseconds
	_ = sum
	return jitterMs < limitSec() // want finding: ms vs s via call name
}

func add(k kpi) float64 {
	headroom := k.goodputMbps - k.linkBps // want finding: mbps vs bps
	margin := k.rsrpDbm - k.noiseDb       // want finding: dbm vs db
	return headroom + margin              // clean: suffix-free locals
}

func assigns(aMs, bSec float64) float64 {
	aMs = bSec  // want finding: assignment crosses ms/s
	aMs += bSec // want finding: compound assignment too
	return aMs
}

func conversions(k kpi) float64 {
	sec := k.rttMs / 1000         // clean: division is a conversion
	msAgain := k.budgetSec * 1000 // clean: multiplication too
	return sec + msAgain          // clean: locals carry no suffix
}
