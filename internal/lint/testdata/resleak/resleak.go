// Package resleak exercises the resource-leak rule: an acquired
// resource with a CFG path to a return that neither uses nor hands it
// off is flagged. Any mention of the resource discharges the path;
// returns on the acquisition's error path are exempt; the blank
// `_ = v` assignment is not a use.
package resleak

import (
	"net"
	"os"
)

// LeakEarlyReturn opens the file, survives the error check, then leaks
// it on the early return.
func LeakEarlyReturn(path string, skip bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	if skip {
		return nil // the leaking path
	}
	return f.Close()
}

// LeakFallOff acquires and falls off the end; the blank assignment is
// the compiler-silencing idiom, not a use.
func LeakFallOff(path string) {
	f, _ := os.Open(path)
	_ = f
}

// LeakListener is the early-return shape over a socket.
func LeakListener(addr string, check bool) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if check {
		return nil // the leaking path
	}
	return ln.Close()
}

// DeferClose is the canonical clean shape: the deferred Close is a use
// on every path.
func DeferClose(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return process(f)
}

// HandOffVar returns the variable — the return is a use, ownership
// moves to the caller.
func HandOffVar(path string) (*os.File, error) {
	f, err := os.Open(path)
	return f, err
}

// ErrorPathOnly closes on success and returns the error otherwise.
func ErrorPathOnly(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	return f.Close()
}

// FatalPath dies with the process on failure; a dead process cannot
// leak, and the success path hands the file off.
func FatalPath(path string) *os.File {
	f, err := os.Open(path)
	if err != nil {
		os.Exit(1)
	}
	return f
}

func process(f *os.File) error { return f.Close() }

// Allowed documents a hand-off the tracker cannot see; the suppression
// anchors at the acquisition, where the rule reports.
func Allowed(path string, skip bool) error {
	//lint:allow resleak — fixture: registry in init code owns the handle for process lifetime
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	if skip {
		return nil
	}
	return f.Close()
}
