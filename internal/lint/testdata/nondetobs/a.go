// Fixture for the nondet rule's internal/obs exemption: the same
// wall-clock reads that fire in any other simulation package must be
// silent when the package is presented at the internal/obs path, and must
// still fire when presented anywhere else. The test loads this directory
// twice — once per rel path — so the exemption itself is pinned.
package nondetobsfix

import "time"

func wallClock() (time.Time, time.Duration) {
	now := time.Now()
	return now, time.Since(now)
}
