module fixture.example/globalmut

go 1.22
