// Package obs is exempt from globalmut at its own write sites — which
// is exactly why calls into it that mutate package state must be
// flagged back at the caller.
package obs

// hits is package-level observability state.
var hits int64

// Bump mutates hits; the write site is exempt, the call site is not.
func Bump() { hits++ }

// Snapshot only reads — calling it from sim is clean.
func Snapshot() int64 { return hits }
