// Package sim holds the violations and the legal patterns side by side.
package sim

import "fixture.example/globalmut/internal/obs"

// lookup is a read-only table: the declaration and init writes below are
// initialization, not mutation.
var lookup = map[string]int{"lte": 4, "nr": 5}

// runCount is mutable package state the violations below write.
var runCount int

func init() { runCount = 0 } // clean: init writes are initialization

// Record is the violation pile.
func Record(tech string) {
	runCount++       // want finding: direct package-level write
	lookup[tech] = 9 // want finding: map store into package-level table
	obs.Bump()       // want finding: exempt callee mutates package state
}

// Gen returns table data without mutating anything — clean.
func Gen(tech string) int { return lookup[tech] }

// bumpLocal mutates only locals — clean.
func bumpLocal() int {
	n := 0
	n++
	return n
}

// viaSibling calls a sim-package mutator: that is flagged once, at
// Record's own write sites, not re-flagged here.
func viaSibling() { Record("lte") }

// Peek reads through the exempt package — clean, Snapshot writes
// nothing.
func Peek() int64 {
	_ = bumpLocal()
	return obs.Snapshot()
}
