// Fixture for the sortstable rule: unstable sorts of record slices
// versus stable sorts and scalar sorts.
package sortstablefix

import "sort"

type rec struct {
	Key  string
	Rank int
}

func bad(rs []rec) {
	sort.Slice(rs, func(i, j int) bool { return rs[i].Rank < rs[j].Rank })
}

func badPointers(rs []*rec) {
	sort.Slice(rs, func(i, j int) bool { return rs[i].Rank < rs[j].Rank })
}

func okStable(rs []rec) {
	sort.SliceStable(rs, func(i, j int) bool { return rs[i].Rank < rs[j].Rank })
}

func okTotalOrderWithDirective(rs []rec) {
	//lint:allow sortstable — fixture: (Rank, Key) is already a total order
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Rank != rs[j].Rank {
			return rs[i].Rank < rs[j].Rank
		}
		return rs[i].Key < rs[j].Key
	})
}

func okScalars(xs []int) {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
}
