// Package ctxflow exercises the context-flow rule: a function handed a
// context has promised it can be canceled, so blocking sites the
// context cannot reach are flagged. The companion check flags
// http.Server literals without a read timeout.
package ctxflow

import (
	"context"
	"net/http"
	"time"
)

// slowPoll blocks forever; calling it from a context-bearing function
// without the context is the transitive positive.
func slowPoll() {
	for {
		time.Sleep(time.Second)
	}
}

// Wait receives a context and ignores it at every blocking site.
func Wait(ctx context.Context, tick chan int, out chan<- int, urls <-chan string) {
	<-tick // receive unrelated to ctx

	out <- 1 // send unrelated to ctx

	select { // no ctx case, no default
	case v := <-tick:
		_ = v
	}

	for range urls { // loop outlives a canceled caller
	}

	slowPoll() // transitively blocking module callee, no ctx

	resp, err := http.Get("http://example.invalid/") // blocking stdlib call, no ctx
	if err == nil {
		resp.Body.Close()
	}
}

// Covered demonstrates each way the context reaches a blocking site.
func Covered(ctx context.Context, tick chan int) error {
	select { // a case on ctx.Done covers the select
	case <-ctx.Done():
		return ctx.Err()
	case v := <-tick:
		_ = v
	}

	select { // a default clause means the select cannot block
	case v := <-tick:
		_ = v
	default:
	}

	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://example.invalid/", nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req) // req carries the taint
	if err != nil {
		return err
	}
	return resp.Body.Close()
}

// Servers: a literal without ReadHeaderTimeout is flagged; either read
// timeout passes, and the suppression anchors at the literal.
func Servers(h http.Handler) (*http.Server, *http.Server, *http.Server) {
	bad := &http.Server{Handler: h}

	good := &http.Server{Handler: h, ReadHeaderTimeout: 5 * time.Second}

	//lint:allow ctxflow — fixture: test server, torn down with its listener
	allowed := &http.Server{Handler: h}

	return bad, good, allowed
}
