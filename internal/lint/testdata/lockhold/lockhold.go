// Package lockhold exercises the lock-hold rule: CFG paths that hold a
// sync.Mutex or RWMutex across a blocking operation are flagged;
// unlock-before-block, matched read locks, and sync.Cond.Wait (which
// releases the mutex while parked) pass.
package lockhold

import (
	"net/http"
	"sync"
)

// S is the guarded structure the fixture's methods share.
type S struct {
	mu    sync.Mutex
	rw    sync.RWMutex
	cond  *sync.Cond
	ready bool
	ch    chan int
	q     chan int
	v     int
}

// flush blocks on a channel send; calling it under the lock is the
// transitive positive.
func (s *S) flush() {
	s.ch <- 1
}

// Push holds s.mu across the transitively blocking callee.
func (s *S) Push() {
	s.mu.Lock()
	s.flush()
	s.mu.Unlock()
}

// Fetch holds the deferred-unlock lock across an HTTP round-trip — the
// defer keeps the lock held to the function's exit.
func (s *S) Fetch(c *http.Client, req *http.Request) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	resp, err := c.Do(req)
	if err != nil {
		return err
	}
	return resp.Body.Close()
}

// Recv blocks on a direct channel receive while holding the lock.
func (s *S) Recv() int {
	s.mu.Lock()
	v := <-s.ch
	s.mu.Unlock()
	return v
}

// ReleasedFirst unlocks before blocking — the clean ordering.
func (s *S) ReleasedFirst() int {
	s.mu.Lock()
	v := s.v
	s.mu.Unlock()
	v += <-s.ch
	return v
}

// ReadSide pairs RLock with RUnlock; the matched release ends the path.
func (s *S) ReadSide() int {
	s.rw.RLock()
	v := s.v
	s.rw.RUnlock()
	return v
}

// WaitReady parks on the condition variable, which releases the mutex
// while waiting — exempt by design.
func (s *S) WaitReady() {
	s.mu.Lock()
	for !s.ready {
		s.cond.Wait()
	}
	s.mu.Unlock()
}

// Drain documents a deliberate hold.
func (s *S) Drain() int {
	s.mu.Lock()
	//lint:allow lockhold — fixture: single-consumer drain holds the lock deliberately
	v := <-s.q
	s.mu.Unlock()
	return v
}
