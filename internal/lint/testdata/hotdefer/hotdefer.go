// The hotdefer fixture: a defer at the top level of a hot function is
// one record amortized over the call and stays clean; a defer inside a
// loop accumulates per iteration and is flagged with its loop depth; a
// //lint:allow hotdefer suppresses a specific site.
package hotdefer

// Tick is the per-tick entry point.
//
//lint:hotroot
func Tick(n int) {
	defer done() // top level: one record per call, clean
	for i := 0; i < n; i++ {
		defer release(i) // n records per call, flagged at depth 1
	}
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			defer release(j) // flagged at depth 2
		}
	}
	for i := 0; i < n; i++ {
		//lint:allow hotdefer — fixture: demonstrates suppressing a hot-defer finding
		defer release(i)
	}
}

func done() {}

func release(int) {}
