// Fixture for the seededrand rule: RNG construction outside
// internal/simrand's forkable stream tree.
package seededfix

import "math/rand"

func bad() float64 {
	r := rand.New(rand.NewSource(42))
	return r.Float64()
}

func badSourceAlone() rand.Source {
	return rand.NewSource(7)
}

func allowedWithDirective() rand.Source {
	return rand.NewSource(7) //lint:allow seededrand — fixture: documented raw source
}

func okGlobalDrawIsNondetsBusiness() int {
	return rand.Intn(3)
}
