module fixture.example/hotalloc

go 1.22
