// Package engine is the hot half of the hotalloc fixture: a declared
// hot root whose hotness must propagate through step into the helper
// package, carrying the provenance chain across the package boundary.
package engine

import "fixture.example/hotalloc/internal/helper"

// Run drives one tick per iteration.
//
//lint:hotroot
func Run(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		weights := []float64{0.2, 0.3, 0.5} // allocates per iteration
		total += step(i, weights)
	}
	return total
}

// step is hot only transitively — no directive of its own.
func step(i int, w []float64) int {
	return helper.Grow(i) + helper.Allowed(i) + helper.Cold(i) + len(w)
}
