// Package helper receives hotness from the engine package: Grow must be
// flagged with a chain rooted in engine.Run, Allowed demonstrates that a
// //lint:allow anchors at the reported site even when the hot root lives
// in another package, and Cold shows the propagation barrier.
package helper

// Grow builds a fresh slice on every call — the positive finding.
func Grow(n int) int {
	var out []int
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return len(out)
}

// Allowed has the same shape but documents why it is acceptable.
func Allowed(n int) int {
	var out []int
	for i := 0; i < n; i++ {
		//lint:allow hotalloc — fixture: demonstrates suppression at the reported site, across packages from the hot root
		out = append(out, i)
	}
	return len(out)
}

// Cold is per-campaign setup; its allocation is amortized, so the
// barrier keeps the whole body out of the hot rules.
//
//lint:cold — fixture: runs once per campaign, not per tick
func Cold(n int) int {
	buf := make([]int, n)
	return len(buf)
}
