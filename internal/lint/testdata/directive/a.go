// Fixture for //lint:allow directive semantics: what suppresses, what is
// malformed, and how far a directive reaches.
package directivefix

import "time"

func suppressedSameLine() time.Time {
	return time.Now() //lint:allow nondet — fixture: same-line suppression
}

func suppressedLineAbove() time.Time {
	//lint:allow nondet — fixture: directive on the line above
	return time.Now()
}

func wrongRuleName() time.Time {
	return time.Now() //lint:allow maprange — names a different rule, so nondet still fires
}

func unknownRuleName() time.Time {
	return time.Now() //lint:allow nosuchrule — unknown rule never suppresses
}

func missingReason() time.Time {
	return time.Now() //lint:allow nondet
}

func directiveOnUnrelatedLine() time.Time {
	//lint:allow nondet — fixture: two lines above the call, so it does not attach

	return time.Now()
}
