// Ordering fixture: findings spread over two files of one package.
package orderingp1

import "time"

func firstFile() (time.Time, time.Time) {
	a := time.Now()
	b := time.Now()
	return a, b
}
