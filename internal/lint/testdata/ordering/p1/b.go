package orderingp1

import "os"

func secondFile() string {
	return os.Getenv("PATH")
}
