// Ordering fixture: a second package whose findings must interleave
// after p1's in file order.
package orderingp2

import (
	"sort"
	"time"
)

type row struct{ n int }

func thirdFile(rs []row) time.Duration {
	sort.Slice(rs, func(i, j int) bool { return rs[i].n < rs[j].n })
	return time.Since(time.Time{})
}
