module fixture.example/directiveipa

go 1.22
