// Package obs reads the wall clock; ElapsedMs leaks it by returning a
// derived value, which is the cross-package cause the sim-side
// directives must suppress at the *reported* position.
package obs

import "time"

// begin is stamped once at startup.
var begin time.Time

func init() { begin = time.Now() }

// ElapsedMs transitively returns a time.Now-derived value.
func ElapsedMs() float64 { return float64(time.Since(begin).Milliseconds()) }
