// Package sim exercises the directive machinery against
// interprocedural findings: the cause lives in internal/obs, the
// finding (and therefore the suppression anchor) is the call site here.
package sim

import (
	"time"

	"fixture.example/directiveipa/internal/obs"
)

// suppressed pins that //lint:allow quiets a finding whose cause is in
// another package: the directive anchors at the reported call site.
func suppressed() float64 {
	//lint:allow timetaint — fixture: the cause is a package away, the anchor is here
	return obs.ElapsedMs()
}

// unsuppressed is the control: same call, no directive, must be flagged.
func unsuppressed() float64 {
	return obs.ElapsedMs() // want finding: timetaint
}

// multi pins one directive quieting two rules on one line.
func multi() float64 {
	return obs.ElapsedMs() + float64(time.Now().Unix()) //lint:allow timetaint,nondet — fixture: two rules, one directive
}

// partial allows only nondet, so the timetaint finding must survive.
func partial() float64 {
	return obs.ElapsedMs() + float64(time.Now().Unix()) //lint:allow nondet — fixture: timetaint must survive
}
