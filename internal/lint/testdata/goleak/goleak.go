// Package goleak exercises the goroutine-leak rule: a spawn whose body
// can block forever and that no cancellation or join signal reaches is
// flagged; spawns that observe a signal, or that a carrier (channel,
// context, WaitGroup, Cond) reaches through an argument or capture,
// pass.
package goleak

import (
	"context"
	"sync"
	"time"
)

// pump blocks forever on a sleep loop and observes no signal — spawning
// it bare is the named-function positive.
func pump() {
	for {
		time.Sleep(time.Second)
	}
}

// Spawns hosts the flagged spawns.
func Spawns() {
	go pump() // named function: blocks, no carrier argument

	go func() { // sleep poller with nothing captured
		for {
			time.Sleep(time.Millisecond)
		}
	}()

	go func() { // empty select parks forever
		select {}
	}()
}

// joined blocks but signals its join through the WaitGroup — the Done
// marks it cancelable, and the argument is a carrier besides.
func joined(wg *sync.WaitGroup) {
	defer wg.Done()
	time.Sleep(time.Millisecond)
}

// Clean demonstrates each cancel path the rule honors.
func Clean(ctx context.Context) {
	var wg sync.WaitGroup
	wg.Add(1)
	go joined(&wg)
	wg.Wait()

	done := make(chan struct{})
	go func() {
		<-done // the channel receive is both the block and the cancel
	}()
	close(done)

	go func() { // observes the captured context's Done channel
		for {
			select {
			case <-ctx.Done():
				return
			default:
				time.Sleep(time.Millisecond)
			}
		}
	}()
}

// Allowed documents a deliberate process-lifetime goroutine.
func Allowed() {
	//lint:allow goleak — fixture: process-lifetime ticker, dies with the process
	go func() {
		for {
			time.Sleep(time.Second)
		}
	}()
}
