// Fixture for the uncheckederr rule: dropped errors from write-path
// calls versus checked, explicitly discarded, and infallible receivers.
package uncheckedfix

import (
	"bufio"
	"hash/fnv"
	"os"
	"strings"
)

func bad(f *os.File, bw *bufio.Writer) {
	bw.Flush()
	f.Close()
	bw.WriteString("tail")
}

func badDeferredClose(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.WriteString("payload")
	return err
}

func badWriteFile(path string) {
	os.WriteFile(path, []byte("x"), 0o644)
}

func okChecked(bw *bufio.Writer) error {
	if _, err := bw.WriteString("head"); err != nil {
		return err
	}
	return bw.Flush()
}

func okExplicitDiscard(f *os.File) {
	_ = f.Close()
}

func okAllowedWithDirective(f *os.File) {
	f.Close() //lint:allow uncheckederr — fixture: read-only handle
}

func okInfallibleReceivers() uint64 {
	var b strings.Builder
	b.WriteString("never fails")
	h := fnv.New64a()
	h.Write([]byte(b.String()))
	return h.Sum64()
}
