// Fixture for the maprange rule: map iteration feeding order-sensitive
// output versus the sanctioned sorted-keys and map-fill shapes.
package maprangefix

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

func badAppend(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

func badFprintf(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

func badBuilder(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k)
	}
	return b.String()
}

func okSortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func okMapFill(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = 2 * v
	}
	return out
}

func okLoopLocalAppend(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		total += len(local)
	}
	return total
}

func okSliceRange(xs []string, w io.Writer) {
	for _, x := range xs {
		fmt.Fprintln(w, x)
	}
}
