// The hotbox fixture: implicit interface conversions of non-pointer
// values in hot code are flagged (call argument, assignment,
// declaration, return); pointers share the interface word and stay
// clean, as do compile-time constants; //lint:allow hotbox suppresses.
package hotbox

type sample struct{ x, y float64 }

func consume(v any) int {
	if v == nil {
		return 0
	}
	return 1
}

// Tick is the per-tick entry point.
//
//lint:hotroot
func Tick(n int) int {
	s := sample{1, 2}
	var v any
	v = s               // boxes the struct: flagged
	total := consume(n) // boxes the int argument: flagged
	var w any = s       // declaration boxes: flagged
	v = &s              // pointer: clean
	total += consume(3) // constant: clean
	if v != nil && w != nil {
		total++
	}
	return total + wrapped(s)
}

// wrapped is hot transitively and passes an already-boxed any through —
// interface-to-interface conversions are clean.
func wrapped(s sample) int {
	return consume(boxed(s))
}

// boxed returns its argument as any; the box is documented instead of
// removed.
func boxed(s sample) any {
	//lint:allow hotbox — fixture: demonstrates suppressing a return-site box
	return s
}
