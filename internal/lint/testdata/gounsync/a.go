// Fixture for the gounsync rule: goroutines sharing captured or
// package-level state, next to every sanctioned mediation pattern.
package gounsyncfix

import "sync"

// total gives `go bumpTotal()` a package-level write to find.
var total int

func bumpTotal() { total++ }

// scalarRace reads n after a goroutine writes it — the classic race.
func scalarRace() int {
	n := 0
	go func() { n = 1 }() // want finding: writes captured n, used after
	return n
}

// writeAfterSpawn mutates msg after the goroutine captured it.
func writeAfterSpawn() {
	msg := "before"
	go func() { println(msg) }() // want finding: msg written after spawn
	msg = "after"
	_ = msg
}

// mapRace stores into a captured map from the goroutine; map stores are
// not slot-addressed.
func mapRace(done chan struct{}) int {
	m := map[string]int{}
	go func() { m["k"] = 1; close(done) }() // want finding: map store
	<-done
	return m["k"]
}

// namedSpawn spawns a function whose summary says it mutates globals.
func namedSpawn() {
	go bumpTotal() // want finding: callee writes package-level total
}

// slotAddressed is the repository's sanctioned pattern: each goroutine
// owns one slice index, joined by a WaitGroup — clean.
func slotAddressed(vals []int) []int {
	out := make([]int, len(vals))
	var wg sync.WaitGroup
	for i, v := range vals {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out[i] = v * 2
		}()
	}
	wg.Wait()
	return out
}

// channelMediated shares nothing but channels — clean.
func channelMediated(jobs chan int) []int {
	results := make(chan int)
	go func() {
		for j := range jobs {
			results <- j * 2
		}
		close(results)
	}()
	var out []int
	for r := range results {
		out = append(out, r)
	}
	return out
}

// fireAndForget writes a capture nobody touches after the spawn — clean
// under the rule's use-after-spawn requirement.
func fireAndForget() {
	count := 0
	go func() { count++ }()
}

// buildThenSpawn writes before the spawn only: those writes are
// sequenced before the goroutine exists — clean.
func buildThenSpawn(done chan struct{}) {
	cfg := "a"
	cfg = cfg + "b"
	go func() {
		println(cfg)
		close(done)
	}()
	<-done
}
