// Package obs is the fixture's stand-in for the real observability side
// channel: it reads the wall clock and exports both clean counters and
// clock-derived values, so the taint rule has something to separate.
package obs

import "time"

// Recorder times a run. start is stamped at construction, so the keyed
// literal in New taints the field module-wide.
type Recorder struct {
	start time.Time
	ticks int64

	// LastMs is stamped with a wall-clock elapsed reading by Stamp.
	LastMs float64
}

// New starts the clock. The returned recorder is not itself a
// wall-clock reading, so constructing one from sim code is clean.
func New() *Recorder { return &Recorder{start: time.Now()} }

// sinceStart is the unexported middle hop of the taint chain.
func (r *Recorder) sinceStart() time.Duration { return time.Since(r.start) }

// Elapsed transitively returns a time.Now-derived value: the escape the
// rule must catch two hops away.
func (r *Recorder) Elapsed() time.Duration { return r.sinceStart() }

// Stamp writes wall time into an exported field; reading LastMs back
// from sim code is the field-shaped escape.
func (r *Recorder) Stamp() { r.LastMs = float64(r.sinceStart().Milliseconds()) }

// Add is a pure counter write: it consumes nothing clock-derived and
// returns nothing. Sim code may call it freely.
func (r *Recorder) Add(n int64) { r.ticks += n }

// Ticks returns plain counter state — clean.
func (r *Recorder) Ticks() int64 { return r.ticks }
