// Package sim is the fixture's simulation side: it may write into obs
// but must never read anything wall-clock-derived back out of it.
package sim

import "fixture.example/timetaint/internal/obs"

// Lane mirrors a per-run simulation struct holding an obs recorder.
type Lane struct {
	rec    *obs.Recorder
	lastMs float64
}

// NewLane wires the recorder in; constructing one is clean.
func NewLane() *Lane { return &Lane{rec: obs.New()} }

// Tick exercises both sides of the contract.
func (l *Lane) Tick() {
	l.rec.Add(1) // clean: pure counter write into obs

	d := l.rec.Elapsed() // want finding: transitive time.Since escape
	l.lastMs = float64(d.Milliseconds())

	_ = l.rec.LastMs // want finding: reading a wall-clock-stamped field

	n := l.rec.Ticks() // clean: plain counter state coming back
	_ = n
}
