module fixture.example/timetaint

go 1.22
