package lint

import (
	"go/ast"
)

// SeededRandRule enforces that every random stream flows from
// internal/simrand's forkable seed tree. A raw rand.New(rand.NewSource(n))
// anywhere else is deterministic in isolation but breaks the campaign's
// stream-independence guarantee: draws start depending on construction
// order and sibling streams, which is exactly what simrand.Fork exists to
// prevent. Only internal/simrand itself may touch the math/rand
// constructors.
type SeededRandRule struct{}

func (SeededRandRule) Name() string { return "seededrand" }

func (SeededRandRule) Doc() string {
	return "require RNGs to come from internal/simrand; no raw rand.New/rand.NewSource elsewhere"
}

func (SeededRandRule) Check(p *Package, r *Reporter) {
	if p.Rel == "internal/simrand" {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(p.Info, call)
			if fn == nil || !isPkgLevel(fn) {
				return true
			}
			switch funcPkgPath(fn) {
			case "math/rand", "math/rand/v2":
				if globalRandConstructors[fn.Name()] {
					r.Reportf(call.Pos(), "rand.%s bypasses the seeded stream tree; fork a named stream from internal/simrand instead", fn.Name())
				}
			}
			return true
		})
	}
}
