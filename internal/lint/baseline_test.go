package lint

import (
	"go/token"
	"path/filepath"
	"testing"
)

func fakeDiag(file string, line int, rule, msg string) Diagnostic {
	return Diagnostic{
		Pos:  token.Position{Filename: file, Line: line, Column: 2},
		Rule: rule,
		Msg:  msg,
	}
}

// TestBaselineRoundTrip writes a baseline from findings, reloads it, and
// verifies it suppresses exactly those findings.
func TestBaselineRoundTrip(t *testing.T) {
	diags := []Diagnostic{
		fakeDiag("a.go", 3, "nondet", "wall clock"),
		fakeDiag("a.go", 9, "nondet", "wall clock"),
		fakeDiag("b.go", 5, "units", "ms vs s"),
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := WriteBaseline(path, NewBaseline(diags)); err != nil {
		t.Fatal(err)
	}
	b, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Entries) != 2 {
		t.Fatalf("entries = %d, want 2 (two a.go findings fold into one shape)", len(b.Entries))
	}
	if e := b.Entries[0]; e.File != "a.go" || e.Rule != "nondet" || e.Count != 2 {
		t.Errorf("first entry = %+v, want a.go/nondet count 2", e)
	}

	surviving, stale := ApplyBaseline(b, diags)
	if len(surviving) != 0 {
		t.Errorf("surviving = %v, want none (baseline covers everything)", surviving)
	}
	if len(stale) != 0 {
		t.Errorf("stale = %v, want none (every entry still fires)", stale)
	}
}

// TestBaselineLinesDoNotMatter pins the matching contract: entries carry
// no line numbers, so findings that move (an edit above them) still
// match their baseline shape.
func TestBaselineLinesDoNotMatter(t *testing.T) {
	b := NewBaseline([]Diagnostic{fakeDiag("a.go", 3, "nondet", "wall clock")})
	moved := []Diagnostic{fakeDiag("a.go", 300, "nondet", "wall clock")}
	surviving, stale := ApplyBaseline(b, moved)
	if len(surviving) != 0 || len(stale) != 0 {
		t.Errorf("moved finding not matched: surviving=%v stale=%v", surviving, stale)
	}
}

// TestBaselineStaleAndExcess pins the ratchet in both directions: a
// baselined shape that stops firing is stale (the file must shrink), and
// findings beyond an entry's count survive (the file cannot grow
// silently).
func TestBaselineStaleAndExcess(t *testing.T) {
	b := NewBaseline([]Diagnostic{
		fakeDiag("a.go", 3, "nondet", "wall clock"),
		fakeDiag("gone.go", 1, "units", "ms vs s"),
	})

	now := []Diagnostic{
		fakeDiag("a.go", 3, "nondet", "wall clock"),
		fakeDiag("a.go", 8, "nondet", "wall clock"), // excess beyond count 1
	}
	surviving, stale := ApplyBaseline(b, now)
	if len(surviving) != 1 || surviving[0].Pos.Line != 8 {
		t.Errorf("surviving = %v, want exactly the excess finding at line 8", surviving)
	}
	if len(stale) != 1 || stale[0].File != "gone.go" || stale[0].Count != 1 {
		t.Errorf("stale = %v, want the gone.go entry with count 1", stale)
	}
}

// TestBaselineSchemaGuard pins that a future-format file is rejected
// rather than silently matching nothing.
func TestBaselineSchemaGuard(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := WriteBaseline(path, Baseline{Schema: 99}); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBaseline(path); err == nil {
		t.Error("schema 99 accepted, want error")
	}
}

// TestBaselineFromFixture exercises the write path against real
// diagnostics end to end: every finding the units fixture produces must
// be absorbed by a baseline generated from the same run.
func TestBaselineFromFixture(t *testing.T) {
	diags := Run(loadFixturePkgsT(t, "units"), []Rule{UnitsRule{}})
	if len(diags) == 0 {
		t.Fatal("units fixture produced no diagnostics")
	}
	surviving, stale := ApplyBaseline(NewBaseline(diags), diags)
	if len(surviving) != 0 || len(stale) != 0 {
		t.Errorf("self-generated baseline leaks: surviving=%v stale=%v", surviving, stale)
	}
}

// TestCheckedInBaselineEmpty asserts the repository's own baseline file
// stays empty: hot-path (or any other) regressions must be fixed or
// carry an explicit //lint:allow, never silently parked in the baseline.
func TestCheckedInBaselineEmpty(t *testing.T) {
	b, err := LoadBaseline(filepath.Join("..", "..", "lint-baseline.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Entries) != 0 {
		t.Errorf("checked-in lint-baseline.json has %d entries, want 0: findings must be fixed or //lint:allow'ed, not baselined", len(b.Entries))
	}
}
