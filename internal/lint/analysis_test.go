package lint

import (
	"go/types"
	"testing"
)

// findFunc looks a function or method up in the loaded fixture packages
// by module-relative dir, optional receiver type name, and name.
func findFunc(t *testing.T, pkgs []*Package, rel, recv, name string) *types.Func {
	t.Helper()
	for _, p := range pkgs {
		if p.Rel != rel {
			continue
		}
		if recv == "" {
			if fn, ok := p.Pkg.Scope().Lookup(name).(*types.Func); ok {
				return fn
			}
			continue
		}
		obj := p.Pkg.Scope().Lookup(recv)
		if obj == nil {
			continue
		}
		o, _, _ := types.LookupFieldOrMethod(types.NewPointer(obj.Type()), true, p.Pkg, name)
		if fn, ok := o.(*types.Func); ok {
			return fn
		}
	}
	t.Fatalf("fixture function %s/%s.%s not found", rel, recv, name)
	return nil
}

// TestAnalysisTaintSummaries pins the taint half of the interprocedural
// engine against the timetaint mini-module: taint enters at time.Since,
// flows through an unexported helper, and surfaces in Elapsed's summary
// with the full provenance chain — while the write-only counter surface
// stays clean.
func TestAnalysisTaintSummaries(t *testing.T) {
	pkgs := loadModuleFixtureT(t, "timetaint")
	a := Analyze(pkgs)

	tainted, why, _ := a.Summary(findFunc(t, pkgs, "internal/obs", "Recorder", "Elapsed"))
	if !tainted {
		t.Fatal("Elapsed not summarized as returning taint")
	}
	if want := "Elapsed ← sinceStart ← time.Since"; why != want {
		t.Errorf("Elapsed provenance = %q, want %q", why, want)
	}

	for _, name := range []string{"Add", "Ticks", "Stamp"} {
		if tainted, why, _ := a.Summary(findFunc(t, pkgs, "internal/obs", "Recorder", name)); tainted {
			t.Errorf("%s summarized as returning taint (%s); counter surface must stay clean", name, why)
		}
	}
	if tainted, _, _ := a.Summary(findFunc(t, pkgs, "internal/obs", "", "New")); tainted {
		t.Error("New summarized as returning taint; a recorder value is not a clock reading")
	}
}

// TestAnalysisGlobalWrites pins the global-write half: direct writes,
// the transitive closure through calls, and the read-only negative.
func TestAnalysisGlobalWrites(t *testing.T) {
	pkgs := loadModuleFixtureT(t, "globalmut")
	a := Analyze(pkgs)

	names := func(vars []*types.Var) map[string]bool {
		m := map[string]bool{}
		for _, v := range vars {
			m[v.Name()] = true
		}
		return m
	}

	_, _, bump := a.Summary(findFunc(t, pkgs, "internal/obs", "", "Bump"))
	if !names(bump)["hits"] {
		t.Errorf("Bump writesGlobals = %v, want hits", bump)
	}

	_, _, record := a.Summary(findFunc(t, pkgs, "internal/sim", "", "Record"))
	got := names(record)
	for _, want := range []string{"runCount", "lookup", "hits"} {
		if !got[want] {
			t.Errorf("Record writesGlobals missing %s (direct + transitive), got %v", want, record)
		}
	}

	if _, _, snap := a.Summary(findFunc(t, pkgs, "internal/obs", "", "Snapshot")); len(snap) != 0 {
		t.Errorf("Snapshot writesGlobals = %v, want none (read-only)", snap)
	}
	if _, _, gen := a.Summary(findFunc(t, pkgs, "internal/sim", "", "Gen")); len(gen) != 0 {
		t.Errorf("Gen writesGlobals = %v, want none (read-only)", gen)
	}
}

// TestAnalysisCallGraph pins call-graph edges and their deterministic
// ordering.
func TestAnalysisCallGraph(t *testing.T) {
	pkgs := loadModuleFixtureT(t, "globalmut")
	a := Analyze(pkgs)

	record := findFunc(t, pkgs, "internal/sim", "", "Record")
	callees := a.Callees(record)
	found := false
	for _, c := range callees {
		if c.Name() == "Bump" {
			found = true
		}
	}
	if !found {
		t.Errorf("Callees(Record) = %v, missing Bump", callees)
	}

	via := findFunc(t, pkgs, "internal/sim", "", "viaSibling")
	callees = a.Callees(via)
	if len(callees) != 1 || callees[0].Name() != "Record" {
		t.Errorf("Callees(viaSibling) = %v, want exactly Record", callees)
	}
}
