package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// The loader is a miniature, dependency-free replacement for
// golang.org/x/tools/go/packages: it discovers every package directory
// under the module root, parses the non-test sources, and typechecks them
// with go/types. Imports inside the module are resolved recursively by
// the same loader; standard-library imports are compiled from GOROOT
// source via go/importer's "source" compiler (the gc export-data importer
// no longer works since binary stdlib .a files stopped shipping).

type loader struct {
	fset    *token.FileSet
	root    string // absolute module root
	modPath string // module path from go.mod
	cache   map[string]*Package
	loading map[string]bool // import-cycle guard
	std     types.ImporterFrom
}

func newLoader(root string) (*loader, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("lint: source importer unavailable")
	}
	return &loader{
		fset:    fset,
		root:    abs,
		modPath: modPath,
		cache:   map[string]*Package{},
		loading: map[string]bool{},
		std:     std,
	}, nil
}

// modulePath extracts the module declaration from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("lint: %w (run from the module root)", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if p, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(p), nil
		}
	}
	return "", fmt.Errorf("lint: no module declaration in %s", gomod)
}

// Import implements types.Importer for the loader itself, so module
// packages can import their siblings during typechecking.
func (l *loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.root, 0)
}

// ImportFrom routes module-internal paths to the source tree and
// everything else to the GOROOT source importer.
func (l *loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if rel, ok := l.relOf(path); ok {
		p, err := l.loadRel(rel)
		if err != nil {
			return nil, err
		}
		return p.Pkg, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}

// relOf maps an import path inside the module to its module-relative dir.
func (l *loader) relOf(importPath string) (string, bool) {
	if importPath == l.modPath {
		return "", true
	}
	if rest, ok := strings.CutPrefix(importPath, l.modPath+"/"); ok {
		return rest, true
	}
	return "", false
}

// loadRel parses and typechecks the package in one module-relative dir.
func (l *loader) loadRel(rel string) (*Package, error) {
	importPath := l.modPath
	if rel != "" {
		importPath += "/" + rel
	}
	if p, ok := l.cache[importPath]; ok {
		return p, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("lint: import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	p, err := loadPackage(l.fset, l, filepath.Join(l.root, filepath.FromSlash(rel)), importPath, rel)
	if err != nil {
		return nil, err
	}
	l.cache[importPath] = p
	return p, nil
}

// loadPackage parses the non-test .go files of one directory and
// typechecks them as a single package.
func loadPackage(fset *token.FileSet, imp types.Importer, dir, importPath, rel string) (*Package, error) {
	names, err := goSources(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go source files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: typecheck %s: %w", importPath, err)
	}
	return &Package{
		Fset:  fset,
		Path:  importPath,
		Rel:   rel,
		Dir:   dir,
		Files: files,
		Pkg:   tpkg,
		Info:  info,
	}, nil
}

// goSources lists the buildable non-test .go files of dir, sorted so
// parse order (and thus position order) is deterministic.
func goSources(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// LoadModule loads every package of the module rooted at root whose
// module-relative dir matches one of the patterns. Patterns follow the
// go tool's shape: "./..." (everything), "./dir/..." (a subtree), or
// "./dir" (one package). No patterns means "./...".
func LoadModule(root string, patterns ...string) ([]*Package, error) {
	l, err := newLoader(root)
	if err != nil {
		return nil, err
	}
	rels, err := packageDirs(l.root)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, rel := range rels {
		if !matchesAny(rel, patterns) {
			continue
		}
		p, err := l.loadRel(rel)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// LoadFixture typechecks one standalone fixture directory (stdlib imports
// only), presenting it to rules as if it lived at module-relative dir
// rel — so path-scoped rules can be exercised from testdata.
func LoadFixture(dir, rel string) (*Package, error) {
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("lint: source importer unavailable")
	}
	return loadPackage(fset, std, dir, "fixture/"+filepath.Base(dir), rel)
}

// packageDirs walks the module tree and returns the module-relative dirs
// that contain Go packages, sorted. testdata, vendor, and hidden or
// underscore-prefixed directories are skipped, matching the go tool.
func packageDirs(root string) ([]string, error) {
	var rels []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		names, err := goSources(path)
		if err != nil {
			return err
		}
		if len(names) > 0 {
			rel, err := filepath.Rel(root, path)
			if err != nil {
				return err
			}
			if rel == "." {
				rel = ""
			}
			rels = append(rels, filepath.ToSlash(rel))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(rels)
	return rels, nil
}

// matchesAny reports whether a module-relative dir matches any pattern.
func matchesAny(rel string, patterns []string) bool {
	if len(patterns) == 0 {
		return true
	}
	for _, pat := range patterns {
		if matchesPattern(rel, pat) {
			return true
		}
	}
	return false
}

// matchesPattern implements the "./...", "./dir/...", "./dir" shapes.
func matchesPattern(rel, pat string) bool {
	pat = strings.TrimPrefix(filepath.ToSlash(pat), "./")
	if pat == "..." || pat == "" {
		return true
	}
	if prefix, ok := strings.CutSuffix(pat, "/..."); ok {
		return rel == prefix || strings.HasPrefix(rel, prefix+"/")
	}
	return rel == pat
}
