package lint

import (
	"strings"
)

// DirectiveRule is the pseudo-rule name under which malformed //lint:
// comments are reported. It is not a Rule: directives are parsed by the
// framework itself so a broken opt-out can never silently disable a check.
const DirectiveRule = "directive"

// allowPrefix introduces an opt-out comment:
//
//	//lint:allow <rule> — reason
//
// The reason is mandatory: an undocumented suppression is worth less than
// the finding it hides. Both the em dash and a plain "--" separate the
// rule name from the reason. A directive applies to findings of <rule> on
// its own line or on the line directly below (for a directive placed on
// its own line above the flagged statement).
const allowPrefix = "lint:allow"

// Directive is one parsed //lint:allow comment.
type Directive struct {
	Rule   string
	Reason string
	// File and Line locate the directive itself.
	File string
	Line int
}

// allowSet indexes valid directives by file and line for suppression.
type allowSet map[string]map[int]map[string]bool // file -> line -> rule

func (s allowSet) add(d Directive) {
	if s[d.File] == nil {
		s[d.File] = map[int]map[string]bool{}
	}
	if s[d.File][d.Line] == nil {
		s[d.File][d.Line] = map[string]bool{}
	}
	s[d.File][d.Line][d.Rule] = true
}

// suppresses reports whether a directive covers the diagnostic: same
// rule, same file, on the diagnostic's line or the line above it.
func (s allowSet) suppresses(d Diagnostic) bool {
	lines := s[d.Pos.Filename]
	if lines == nil {
		return false
	}
	return lines[d.Pos.Line][d.Rule] || lines[d.Pos.Line-1][d.Rule]
}

// parseAllow splits one comment's text into a directive. text is the raw
// comment including the "//" marker. ok is false when the comment is not
// a lint directive at all; errMsg is non-empty when it is one but is
// malformed (unknown verb, missing rule, missing reason).
func parseAllow(text string, known map[string]bool) (rule, reason string, ok bool, errMsg string) {
	body, isLine := strings.CutPrefix(text, "//")
	if !isLine {
		return "", "", false, "" // block comments never carry directives
	}
	body = strings.TrimSpace(body)
	if !strings.HasPrefix(body, "lint:") {
		return "", "", false, ""
	}
	rest, isAllow := strings.CutPrefix(body, allowPrefix)
	if isAllow && rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		isAllow = false // e.g. "lint:allowfoo" is an unknown verb, not allow
	}
	if !isAllow {
		verb, _, _ := strings.Cut(strings.TrimPrefix(body, "lint:"), " ")
		return "", "", true, "unknown lint directive " + strings.TrimSpace("lint:"+verb) + "; only //lint:allow <rule> — reason is recognized"
	}
	rest = strings.TrimSpace(rest)
	if rest == "" {
		return "", "", true, "lint:allow needs a rule name: //lint:allow <rule> — reason"
	}
	rule, rest, _ = strings.Cut(rest, " ")
	if !known[rule] {
		return "", "", true, "lint:allow names unknown rule " + rule + " (known: " + strings.Join(RuleNames(), ", ") + ")"
	}
	reason = strings.TrimSpace(rest)
	for _, sep := range []string{"—", "--", "-"} {
		if cut, found := strings.CutPrefix(reason, sep); found {
			reason = strings.TrimSpace(cut)
			break
		}
	}
	if reason == "" {
		return rule, "", true, "lint:allow " + rule + " needs a reason: //lint:allow " + rule + " — reason"
	}
	return rule, reason, true, ""
}

// collectDirectives extracts every //lint: comment in the package,
// returning the valid suppressions plus diagnostics for malformed ones.
func collectDirectives(p *Package, known map[string]bool) (allowSet, []Diagnostic) {
	allows := allowSet{}
	var malformed []Diagnostic
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rule, reason, isDirective, errMsg := parseAllow(c.Text, known)
				pos := p.Fset.Position(c.Pos())
				if !isDirective {
					continue
				}
				if errMsg != "" {
					malformed = append(malformed, Diagnostic{Pos: pos, Rule: DirectiveRule, Msg: errMsg})
					continue
				}
				allows.add(Directive{Rule: rule, Reason: reason, File: pos.Filename, Line: pos.Line})
			}
		}
	}
	return allows, malformed
}
