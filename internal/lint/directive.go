package lint

import (
	"go/ast"
	"strings"
)

// DirectiveRule is the pseudo-rule name under which malformed //lint:
// comments are reported. It is not a Rule: directives are parsed by the
// framework itself so a broken opt-out can never silently disable a check.
const DirectiveRule = "directive"

// allowPrefix introduces an opt-out comment:
//
//	//lint:allow <rule>[,<rule>...] — reason
//
// The reason is mandatory: an undocumented suppression is worth less than
// the finding it hides. Both the em dash and a plain "--" separate the
// rule list from the reason. Several rules may share one directive
// ("nondet,timetaint") — one line can carry findings from more than one
// rule, and each needs an explicit opt-out. A directive applies to
// findings on its own line or on the line directly below (for a
// directive placed on its own line above the flagged statement); it
// anchors at the *reported* position, so it also covers interprocedural
// findings whose root cause lives in another package.
const allowPrefix = "lint:allow"

// Directive is one parsed //lint:allow comment.
type Directive struct {
	Rules  []string
	Reason string
	// File and Line locate the directive itself.
	File string
	Line int
}

// allowSet indexes valid directives by file and line for suppression.
type allowSet map[string]map[int]map[string]bool // file -> line -> rule

func (s allowSet) add(d Directive) {
	if s[d.File] == nil {
		s[d.File] = map[int]map[string]bool{}
	}
	if s[d.File][d.Line] == nil {
		s[d.File][d.Line] = map[string]bool{}
	}
	for _, rule := range d.Rules {
		s[d.File][d.Line][rule] = true
	}
}

// merge folds another package's directives into s (files never collide
// across packages, so this is a plain union).
func (s allowSet) merge(other allowSet) {
	for file, lines := range other {
		if s[file] == nil {
			s[file] = lines
			continue
		}
		for line, rules := range lines {
			if s[file][line] == nil {
				s[file][line] = rules
				continue
			}
			for rule := range rules {
				s[file][line][rule] = true
			}
		}
	}
}

// suppresses reports whether a directive covers the diagnostic: same
// rule, same file, on the diagnostic's line or the line above it.
func (s allowSet) suppresses(d Diagnostic) bool {
	lines := s[d.Pos.Filename]
	if lines == nil {
		return false
	}
	return lines[d.Pos.Line][d.Rule] || lines[d.Pos.Line-1][d.Rule]
}

// parseAllow splits one comment's text into a directive. text is the raw
// comment including the "//" marker. ok is false when the comment is not
// a lint directive at all; errMsg is non-empty when it is one but is
// malformed (unknown verb, missing rule, unknown rule, missing reason).
func parseAllow(text string, known map[string]bool) (rules []string, reason string, ok bool, errMsg string) {
	body, isLine := strings.CutPrefix(text, "//")
	if !isLine {
		return nil, "", false, "" // block comments never carry directives
	}
	body = strings.TrimSpace(body)
	if !strings.HasPrefix(body, "lint:") {
		return nil, "", false, ""
	}
	rest, isAllow := strings.CutPrefix(body, allowPrefix)
	if isAllow && rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		isAllow = false // e.g. "lint:allowfoo" is an unknown verb, not allow
	}
	if !isAllow {
		verb, _, _ := strings.Cut(strings.TrimPrefix(body, "lint:"), " ")
		return nil, "", true, "unknown lint directive " + strings.TrimSpace("lint:"+verb) + "; recognized: //lint:allow <rule> — reason, //lint:hotroot, //lint:cold — reason"
	}
	rest = strings.TrimSpace(rest)
	if rest == "" {
		return nil, "", true, "lint:allow needs a rule name: //lint:allow <rule> — reason"
	}
	// The rule list is comma-separated; keep consuming space-separated
	// tokens while a trailing comma says the list continues, so both
	// "a,b" and "a, b" parse.
	var list string
	for {
		var tok string
		tok, rest, _ = strings.Cut(rest, " ")
		list += tok
		rest = strings.TrimSpace(rest)
		if !strings.HasSuffix(tok, ",") || rest == "" {
			break
		}
	}
	for _, rule := range strings.Split(list, ",") {
		rule = strings.TrimSpace(rule)
		if rule == "" {
			continue
		}
		if !known[rule] {
			return nil, "", true, "lint:allow names unknown rule " + rule + " (known: " + strings.Join(RuleNames(), ", ") + ")"
		}
		rules = append(rules, rule)
	}
	if len(rules) == 0 {
		return nil, "", true, "lint:allow needs a rule name: //lint:allow <rule> — reason"
	}
	reason = strings.TrimSpace(rest)
	for _, sep := range []string{"—", "--", "-"} {
		if cut, found := strings.CutPrefix(reason, sep); found {
			reason = strings.TrimSpace(cut)
			break
		}
	}
	if reason == "" {
		return rules, "", true, "lint:allow " + strings.Join(rules, ",") + " needs a reason: //lint:allow " + strings.Join(rules, ",") + " — reason"
	}
	return rules, reason, true, ""
}

// collectDirectives extracts every //lint: comment in the package,
// returning the valid suppressions plus diagnostics for malformed ones.
// Hot-path marks (//lint:hotroot, //lint:cold) are validated here too:
// they must sit in a function declaration's doc comment — anywhere else
// they would be silently inert, which is worse than an error — and one
// function cannot be both a root and a barrier.
func collectDirectives(p *Package, known map[string]bool) (allowSet, []Diagnostic) {
	allows := allowSet{}
	var malformed []Diagnostic
	for _, f := range p.Files {
		// docOwned maps comments that belong to a FuncDecl's doc group, the
		// only placement where hot marks take effect. hotVerbs tracks the
		// verbs seen per doc group to catch hotroot+cold conflicts.
		docOwned := map[*ast.Comment]bool{}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			seen := map[string]bool{}
			for _, c := range fd.Doc.List {
				docOwned[c] = true
				if verb, _, ok, errMsg := parseHotMark(c.Text); ok && errMsg == "" {
					if len(seen) > 0 {
						malformed = append(malformed, Diagnostic{
							Pos:  p.Fset.Position(c.Pos()),
							Rule: DirectiveRule,
							Msg:  "conflicting hot-path marks on " + fd.Name.Name + ": a function cannot repeat or combine //lint:hotroot and //lint:cold",
						})
					}
					seen[verb] = true
				}
			}
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				pos := p.Fset.Position(c.Pos())
				if verb, _, isHot, errMsg := parseHotMark(c.Text); isHot {
					switch {
					case errMsg != "":
						malformed = append(malformed, Diagnostic{Pos: pos, Rule: DirectiveRule, Msg: errMsg})
					case !docOwned[c]:
						malformed = append(malformed, Diagnostic{Pos: pos, Rule: DirectiveRule, Msg: "lint:" + verb + " must sit in a function declaration's doc comment"})
					}
					continue
				}
				rules, reason, isDirective, errMsg := parseAllow(c.Text, known)
				if !isDirective {
					continue
				}
				if errMsg != "" {
					malformed = append(malformed, Diagnostic{Pos: pos, Rule: DirectiveRule, Msg: errMsg})
					continue
				}
				allows.add(Directive{Rules: rules, Reason: reason, File: pos.Filename, Line: pos.Line})
			}
		}
	}
	return allows, malformed
}
