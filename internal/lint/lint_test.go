package lint

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite testdata/*/expected.txt goldens")

// loadFixtureT loads one fixture dir, presenting it at a module-relative
// path under internal/ so path-scoped rules apply.
func loadFixtureT(t *testing.T, name string) *Package {
	t.Helper()
	p, err := LoadFixture(filepath.Join("testdata", name), "internal/fixture/"+filepath.ToSlash(name))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// moduleFixtures names the fixtures that are miniature modules (own
// go.mod, several packages) rather than single directories. The
// interprocedural rules need them: taint has to cross a package boundary
// and hit the real internal/obs exemption paths.
var moduleFixtures = map[string]bool{
	"timetaint":    true,
	"globalmut":    true,
	"directiveipa": true,
	"hotalloc":     true,
}

// loadModuleFixtureT loads a mini-module fixture with the real module
// loader, so Rel values like "internal/obs" trigger the same path-scoped
// behavior they do in the repository itself.
func loadModuleFixtureT(t *testing.T, name string) []*Package {
	t.Helper()
	pkgs, err := LoadModule(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return pkgs
}

// loadFixturePkgsT dispatches on fixture shape.
func loadFixturePkgsT(t *testing.T, name string) []*Package {
	t.Helper()
	if moduleFixtures[name] {
		return loadModuleFixtureT(t, name)
	}
	return []*Package{loadFixtureT(t, name)}
}

// render formats diagnostics with fixture-relative file names, one per
// line — the exact golden format. Single-dir fixtures carry relative
// filenames, module fixtures absolute ones; both relativize against dir.
func render(dir string, diags []Diagnostic) string {
	abs, _ := filepath.Abs(dir)
	var b strings.Builder
	for _, d := range diags {
		for _, base := range []string{dir, abs} {
			if rel, err := filepath.Rel(base, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
				d.Pos.Filename = filepath.ToSlash(rel)
				break
			}
		}
		b.WriteString(d.String())
		b.WriteString("\n")
	}
	return b.String()
}

// TestRuleFixtures runs each rule over its fixture corpus and compares
// the diagnostics against the expected.txt golden. Run with -update to
// regenerate the goldens after changing a rule or fixture.
func TestRuleFixtures(t *testing.T) {
	cases := []struct {
		name  string
		rules []Rule
	}{
		{"nondet", []Rule{NondetRule{}}},
		{"seededrand", []Rule{SeededRandRule{}}},
		{"maprange", []Rule{MapRangeRule{}}},
		{"uncheckederr", []Rule{UncheckedErrRule{}}},
		{"sortstable", []Rule{SortStableRule{}}},
		{"timetaint", []Rule{TimeTaintRule{}}},
		{"globalmut", []Rule{GlobalMutRule{}}},
		{"gounsync", []Rule{GoUnsyncRule{}}},
		{"units", []Rule{UnitsRule{}}},
		{"hotalloc", []Rule{HotAllocRule{}}},
		{"hotdefer", []Rule{HotDeferRule{}}},
		{"hotbox", []Rule{HotBoxRule{}}},
		{"goleak", []Rule{GoLeakRule{}}},
		{"ctxflow", []Rule{CtxFlowRule{}}},
		{"lockhold", []Rule{LockHoldRule{}}},
		{"resleak", []Rule{ResLeakRule{}}},
		{"directive", AllRules()},
		{"directiveipa", AllRules()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := filepath.Join("testdata", tc.name)
			got := render(dir, Run(loadFixturePkgsT(t, tc.name), tc.rules))
			golden := filepath.Join(dir, "expected.txt")
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics differ from %s:\n--- got ---\n%s--- want ---\n%s", golden, got, want)
			}
		})
	}
}

// TestFixturesExerciseEveryRule guards the corpus itself: each rule must
// have at least one finding in its fixture, or the golden test is
// vacuously green.
func TestFixturesExerciseEveryRule(t *testing.T) {
	for _, rule := range AllRules() {
		diags := Run(loadFixturePkgsT(t, rule.Name()), []Rule{rule})
		found := false
		for _, d := range diags {
			if d.Rule == rule.Name() {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("fixture testdata/%s produces no %s findings", rule.Name(), rule.Name())
		}
	}
}

// TestNondetObsExemption pins the nondet rule's package-level exemption:
// wall-clock reads are findings everywhere in the simulation tree except
// internal/obs, the designated observability side channel. The same
// fixture source is loaded at both rel paths so the only variable is the
// exemption.
func TestNondetObsExemption(t *testing.T) {
	dir := filepath.Join("testdata", "nondetobs")

	asObs, err := LoadFixture(dir, "internal/obs")
	if err != nil {
		t.Fatal(err)
	}
	if diags := Run([]*Package{asObs}, []Rule{NondetRule{}}); len(diags) != 0 {
		t.Errorf("internal/obs not exempt from nondet: %v", diags)
	}

	asOther, err := LoadFixture(dir, "internal/notobs")
	if err != nil {
		t.Fatal(err)
	}
	diags := Run([]*Package{asOther}, []Rule{NondetRule{}})
	if len(diags) != 2 {
		t.Fatalf("control package produced %d nondet findings, want 2 (time.Now, time.Since): %v", len(diags), diags)
	}
	for _, d := range diags {
		if d.Rule != "nondet" {
			t.Errorf("unexpected rule %q", d.Rule)
		}
	}
}

// TestNondetFleetNotExempt pins that the obs exemption does not leak to
// the fleet engine: internal/fleet orchestrates simulations, so its
// output is part of the determinism contract, and wall-clock reads in
// fleet code must fail lint exactly as in any other simulation package.
// The same fixture source used to pin the internal/obs exemption is
// presented at the internal/fleet path and must produce findings.
func TestNondetFleetNotExempt(t *testing.T) {
	dir := filepath.Join("testdata", "nondetobs")
	asFleet, err := LoadFixture(dir, "internal/fleet")
	if err != nil {
		t.Fatal(err)
	}
	diags := Run([]*Package{asFleet}, []Rule{NondetRule{}})
	if len(diags) != 2 {
		t.Fatalf("internal/fleet produced %d nondet findings, want 2 (time.Now, time.Since): %v", len(diags), diags)
	}
	for _, d := range diags {
		if d.Rule != "nondet" {
			t.Errorf("unexpected rule %q", d.Rule)
		}
	}
}

// TestNondetUENotExempt pins that the obs exemption does not leak to the
// crowd engine: internal/ue's event wheel and positional draws are core
// simulation state, so wall-clock reads there must fail lint exactly as
// in any other simulation package. The same fixture source used to pin
// the internal/obs exemption is presented at the internal/ue path and
// must produce findings.
func TestNondetUENotExempt(t *testing.T) {
	dir := filepath.Join("testdata", "nondetobs")
	asUE, err := LoadFixture(dir, "internal/ue")
	if err != nil {
		t.Fatal(err)
	}
	diags := Run([]*Package{asUE}, []Rule{NondetRule{}})
	if len(diags) != 2 {
		t.Fatalf("internal/ue produced %d nondet findings, want 2 (time.Now, time.Since): %v", len(diags), diags)
	}
	for _, d := range diags {
		if d.Rule != "nondet" {
			t.Errorf("unexpected rule %q", d.Rule)
		}
	}
}

// TestDiagnosticOrdering feeds two multi-file packages to Run in reversed
// order and requires the output sorted by file, then position — the
// property that makes the linter's own output deterministic.
func TestDiagnosticOrdering(t *testing.T) {
	p1 := loadFixtureT(t, filepath.Join("ordering", "p1"))
	p2 := loadFixtureT(t, filepath.Join("ordering", "p2"))

	diags := Run([]*Package{p2, p1}, AllRules()) // deliberately reversed
	if len(diags) == 0 {
		t.Fatal("ordering fixtures produced no diagnostics")
	}
	for i := 1; i < len(diags); i++ {
		a, b := diags[i-1], diags[i]
		if a.Pos.Filename > b.Pos.Filename {
			t.Errorf("diagnostic %d (%s) sorted after %s", i-1, a.Pos.Filename, b.Pos.Filename)
		}
		if a.Pos.Filename == b.Pos.Filename && (a.Pos.Line > b.Pos.Line ||
			(a.Pos.Line == b.Pos.Line && a.Pos.Column > b.Pos.Column)) {
			t.Errorf("within %s, position %d:%d sorted after %d:%d",
				a.Pos.Filename, a.Pos.Line, a.Pos.Column, b.Pos.Line, b.Pos.Column)
		}
	}

	var seq []string
	for _, d := range diags {
		seq = append(seq, filepath.Base(d.Pos.Filename)+":"+d.Rule)
	}
	want := []string{
		"a.go:nondet", "a.go:nondet", // two time.Now in p1/a.go
		"b.go:nondet",     // os.Getenv in p1/b.go
		"c.go:sortstable", // sort.Slice in p2/c.go
		"c.go:nondet",     // time.Since in p2/c.go
	}
	if strings.Join(seq, " ") != strings.Join(want, " ") {
		t.Errorf("diagnostic sequence = %v, want %v", seq, want)
	}
}

// TestLoadModuleSelf loads the real module and checks the linter can see
// every package (and that this package reports itself lint-clean, since
// `make lint` gates CI on exactly that).
func TestLoadModuleSelf(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := LoadModule(root, "./internal/lint")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].Rel != "internal/lint" {
		t.Fatalf("LoadModule(./internal/lint) = %d pkgs, want exactly internal/lint", len(pkgs))
	}
	if diags := Run(pkgs, AllRules()); len(diags) != 0 {
		t.Errorf("internal/lint is not lint-clean: %v", diags)
	}
}

// TestModuleConcurrencyClean pins the PR-series contract for the
// concurrency/resource layer: the whole module runs clean under the
// four rules, with the checked-in baseline EMPTY — every real finding
// was fixed or reason-annotated at the site, not swept into the
// ratchet file.
func TestModuleConcurrencyClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	bl, err := LoadBaseline(filepath.Join(root, "lint-baseline.json"))
	if err != nil {
		t.Fatal(err)
	}
	if n := len(bl.Entries); n != 0 {
		t.Errorf("lint-baseline.json carries %d entries; the concurrency rules must hold with an empty baseline", n)
	}
	pkgs, err := LoadModule(root)
	if err != nil {
		t.Fatal(err)
	}
	rules := []Rule{GoLeakRule{}, CtxFlowRule{}, LockHoldRule{}, ResLeakRule{}}
	if diags := Run(pkgs, rules); len(diags) != 0 {
		t.Errorf("module is not clean under the concurrency/resource rules:\n%s", render(root, diags))
	}
}

// TestRunWorkersByteIdentical pins the linter's own determinism
// contract: the rendered diagnostics are byte-identical for every worker
// count, including module rules whose engine runs after the parallel
// per-package pass.
func TestRunWorkersByteIdentical(t *testing.T) {
	var pkgs []*Package
	pkgs = append(pkgs, loadModuleFixtureT(t, "timetaint")...)
	pkgs = append(pkgs, loadModuleFixtureT(t, "hotalloc")...)
	pkgs = append(pkgs, loadFixtureT(t, "gounsync"), loadFixtureT(t, "units"),
		loadFixtureT(t, "hotdefer"), loadFixtureT(t, "hotbox"),
		loadFixtureT(t, "goleak"), loadFixtureT(t, "ctxflow"),
		loadFixtureT(t, "lockhold"), loadFixtureT(t, "resleak"))

	want := render(".", RunWorkers(pkgs, AllRules(), 1))
	if want == "" {
		t.Fatal("determinism corpus produced no diagnostics")
	}
	for _, workers := range []int{2, 3, 8, 64} {
		if got := render(".", RunWorkers(pkgs, AllRules(), workers)); got != want {
			t.Errorf("workers=%d output differs:\n--- got ---\n%s--- want (workers=1) ---\n%s", workers, got, want)
		}
	}
}

// TestDirectiveCrossPackageSuppression pins satellite behavior of the
// interprocedural rules: a //lint:allow placed at the *call site*
// suppresses a timetaint finding whose root cause (the wall-clock read)
// lives in another package, because suppression anchors at the reported
// position. The control function without a directive must still be
// flagged, and a one-line multi-rule directive must quiet exactly the
// rules it names.
func TestDirectiveCrossPackageSuppression(t *testing.T) {
	pkgs := loadModuleFixtureT(t, "directiveipa")
	diags := Run(pkgs, AllRules())

	byRule := map[string]int{}
	for _, d := range diags {
		byRule[d.Rule]++
	}
	// Four timetaint sites exist (suppressed, unsuppressed, multi,
	// partial); the directives must leave exactly two: unsuppressed's and
	// partial's.
	if byRule["timetaint"] != 2 {
		t.Errorf("timetaint findings = %d, want 2 (directives must suppress the other two): %v", byRule["timetaint"], diags)
	}
	// Both direct time.Now calls carry an allow naming nondet.
	if byRule["nondet"] != 0 {
		t.Errorf("nondet findings = %d, want 0 (both sites carry allows): %v", byRule["nondet"], diags)
	}
	if byRule[DirectiveRule] != 0 {
		t.Errorf("malformed directives in fixture: %v", diags)
	}
}
