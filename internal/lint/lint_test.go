package lint

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite testdata/*/expected.txt goldens")

// loadFixtureT loads one fixture dir, presenting it at a module-relative
// path under internal/ so path-scoped rules apply.
func loadFixtureT(t *testing.T, name string) *Package {
	t.Helper()
	p, err := LoadFixture(filepath.Join("testdata", name), "internal/fixture/"+filepath.ToSlash(name))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// render formats diagnostics with fixture-relative file names, one per
// line — the exact golden format.
func render(dir string, diags []Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		if rel, err := filepath.Rel(dir, d.Pos.Filename); err == nil {
			d.Pos.Filename = filepath.ToSlash(rel)
		}
		b.WriteString(d.String())
		b.WriteString("\n")
	}
	return b.String()
}

// TestRuleFixtures runs each rule over its fixture corpus and compares
// the diagnostics against the expected.txt golden. Run with -update to
// regenerate the goldens after changing a rule or fixture.
func TestRuleFixtures(t *testing.T) {
	cases := []struct {
		name  string
		rules []Rule
	}{
		{"nondet", []Rule{NondetRule{}}},
		{"seededrand", []Rule{SeededRandRule{}}},
		{"maprange", []Rule{MapRangeRule{}}},
		{"uncheckederr", []Rule{UncheckedErrRule{}}},
		{"sortstable", []Rule{SortStableRule{}}},
		{"directive", AllRules()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := filepath.Join("testdata", tc.name)
			got := render(dir, Run([]*Package{loadFixtureT(t, tc.name)}, tc.rules))
			golden := filepath.Join(dir, "expected.txt")
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics differ from %s:\n--- got ---\n%s--- want ---\n%s", golden, got, want)
			}
		})
	}
}

// TestFixturesExerciseEveryRule guards the corpus itself: each rule must
// have at least one finding in its fixture, or the golden test is
// vacuously green.
func TestFixturesExerciseEveryRule(t *testing.T) {
	for _, rule := range AllRules() {
		p := loadFixtureT(t, rule.Name())
		diags := Run([]*Package{p}, []Rule{rule})
		found := false
		for _, d := range diags {
			if d.Rule == rule.Name() {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("fixture testdata/%s produces no %s findings", rule.Name(), rule.Name())
		}
	}
}

// TestNondetObsExemption pins the nondet rule's package-level exemption:
// wall-clock reads are findings everywhere in the simulation tree except
// internal/obs, the designated observability side channel. The same
// fixture source is loaded at both rel paths so the only variable is the
// exemption.
func TestNondetObsExemption(t *testing.T) {
	dir := filepath.Join("testdata", "nondetobs")

	asObs, err := LoadFixture(dir, "internal/obs")
	if err != nil {
		t.Fatal(err)
	}
	if diags := Run([]*Package{asObs}, []Rule{NondetRule{}}); len(diags) != 0 {
		t.Errorf("internal/obs not exempt from nondet: %v", diags)
	}

	asOther, err := LoadFixture(dir, "internal/notobs")
	if err != nil {
		t.Fatal(err)
	}
	diags := Run([]*Package{asOther}, []Rule{NondetRule{}})
	if len(diags) != 2 {
		t.Fatalf("control package produced %d nondet findings, want 2 (time.Now, time.Since): %v", len(diags), diags)
	}
	for _, d := range diags {
		if d.Rule != "nondet" {
			t.Errorf("unexpected rule %q", d.Rule)
		}
	}
}

// TestNondetFleetNotExempt pins that the obs exemption does not leak to
// the fleet engine: internal/fleet orchestrates simulations, so its
// output is part of the determinism contract, and wall-clock reads in
// fleet code must fail lint exactly as in any other simulation package.
// The same fixture source used to pin the internal/obs exemption is
// presented at the internal/fleet path and must produce findings.
func TestNondetFleetNotExempt(t *testing.T) {
	dir := filepath.Join("testdata", "nondetobs")
	asFleet, err := LoadFixture(dir, "internal/fleet")
	if err != nil {
		t.Fatal(err)
	}
	diags := Run([]*Package{asFleet}, []Rule{NondetRule{}})
	if len(diags) != 2 {
		t.Fatalf("internal/fleet produced %d nondet findings, want 2 (time.Now, time.Since): %v", len(diags), diags)
	}
	for _, d := range diags {
		if d.Rule != "nondet" {
			t.Errorf("unexpected rule %q", d.Rule)
		}
	}
}

// TestDiagnosticOrdering feeds two multi-file packages to Run in reversed
// order and requires the output sorted by file, then position — the
// property that makes the linter's own output deterministic.
func TestDiagnosticOrdering(t *testing.T) {
	p1 := loadFixtureT(t, filepath.Join("ordering", "p1"))
	p2 := loadFixtureT(t, filepath.Join("ordering", "p2"))

	diags := Run([]*Package{p2, p1}, AllRules()) // deliberately reversed
	if len(diags) == 0 {
		t.Fatal("ordering fixtures produced no diagnostics")
	}
	for i := 1; i < len(diags); i++ {
		a, b := diags[i-1], diags[i]
		if a.Pos.Filename > b.Pos.Filename {
			t.Errorf("diagnostic %d (%s) sorted after %s", i-1, a.Pos.Filename, b.Pos.Filename)
		}
		if a.Pos.Filename == b.Pos.Filename && (a.Pos.Line > b.Pos.Line ||
			(a.Pos.Line == b.Pos.Line && a.Pos.Column > b.Pos.Column)) {
			t.Errorf("within %s, position %d:%d sorted after %d:%d",
				a.Pos.Filename, a.Pos.Line, a.Pos.Column, b.Pos.Line, b.Pos.Column)
		}
	}

	var seq []string
	for _, d := range diags {
		seq = append(seq, filepath.Base(d.Pos.Filename)+":"+d.Rule)
	}
	want := []string{
		"a.go:nondet", "a.go:nondet", // two time.Now in p1/a.go
		"b.go:nondet",     // os.Getenv in p1/b.go
		"c.go:sortstable", // sort.Slice in p2/c.go
		"c.go:nondet",     // time.Since in p2/c.go
	}
	if strings.Join(seq, " ") != strings.Join(want, " ") {
		t.Errorf("diagnostic sequence = %v, want %v", seq, want)
	}
}

// TestLoadModuleSelf loads the real module and checks the linter can see
// every package (and that this package reports itself lint-clean, since
// `make lint` gates CI on exactly that).
func TestLoadModuleSelf(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := LoadModule(root, "./internal/lint")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].Rel != "internal/lint" {
		t.Fatalf("LoadModule(./internal/lint) = %d pkgs, want exactly internal/lint", len(pkgs))
	}
	if diags := Run(pkgs, AllRules()); len(diags) != 0 {
		t.Errorf("internal/lint is not lint-clean: %v", diags)
	}
}
