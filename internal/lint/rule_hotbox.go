package lint

// HotBoxRule flags implicit interface conversions in hot functions — the
// classic hidden allocation in Go. Storing a non-pointer value in an
// interface (passing an int to fmt-style variadics, assigning a struct
// to an `any`, handing a value type to an interface-typed parameter)
// heap-allocates a copy on every execution. Pointer-shaped values share
// the interface word and stay clean, as do compile-time constants.
type HotBoxRule struct{}

func (HotBoxRule) Name() string { return "hotbox" }
func (HotBoxRule) Doc() string {
	return "flags implicit interface conversions of non-pointer values in functions reachable from a //lint:hotroot — boxing allocates per execution"
}

func (HotBoxRule) CheckModule(a *Analysis, report ReportFunc) {
	for _, fi := range a.funcs {
		if !fi.hot || !underSim(fi.pkg.Rel) || fi.pkg.Rel == obsPackage {
			continue
		}
		for _, s := range hotBoxSites(fi) {
			note := ""
			if d := a.loopDepthAt(fi, s.pos); d > 0 {
				note = " inside a loop"
			}
			report(fi.pkg, s.pos, "hot path (%s)%s: %s", fi.hotWhy, note, s.desc)
		}
	}
}
