package lint

import (
	"encoding/json"
)

// SARIF 2.1.0 output, shaped for CI code-scanning upload. Only the
// static subset the spec requires is emitted — tool driver with the rule
// index, one result per diagnostic with a physical location — and every
// slice is built in the already-sorted diagnostic order, so the report
// is byte-identical across runs and worker counts like every other
// output of this package.

const (
	sarifVersion = "2.1.0"
	sarifSchema  = "https://docs.oasis-open.org/sarif/sarif/v2.1.0/errata01/os/schemas/sarif-schema-2.1.0.json"
)

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string          `json:"name"`
	InformationURI string          `json:"informationUri"`
	Rules          []sarifRuleMeta `json:"rules"`
}

type sarifRuleMeta struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// SARIFReport renders diagnostics as a SARIF 2.1.0 log. Diagnostics are
// expected pre-sorted (Run returns them that way) with file names
// already relativized by the caller; rules supplies the driver's rule
// index, listed in the given order plus the directive pseudo-rule.
func SARIFReport(diags []Diagnostic, rules []Rule) ([]byte, error) {
	metas := make([]sarifRuleMeta, 0, len(rules)+1)
	for _, r := range rules {
		metas = append(metas, sarifRuleMeta{ID: r.Name(), ShortDescription: sarifText{Text: r.Doc()}})
	}
	metas = append(metas, sarifRuleMeta{
		ID:               DirectiveRule,
		ShortDescription: sarifText{Text: "malformed //lint: directive; a broken opt-out must never silently disable a check"},
	})

	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		results = append(results, sarifResult{
			RuleID:  d.Rule,
			Level:   "error",
			Message: sarifText{Text: d.Msg},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: d.Pos.Filename},
					Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
		})
	}

	log := sarifLog{
		Schema:  sarifSchema,
		Version: sarifVersion,
		Runs: []sarifRun{{
			Tool: sarifTool{Driver: sarifDriver{
				Name:           "lintwheels",
				InformationURI: "https://github.com/nuwins/cellwheels",
				Rules:          metas,
			}},
			Results: results,
		}},
	}
	out, err := json.MarshalIndent(log, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// jsonFinding is the -format json record for one diagnostic.
type jsonFinding struct {
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	Rule string `json:"rule"`
	Msg  string `json:"msg"`
}

type jsonReport struct {
	Count    int           `json:"count"`
	Findings []jsonFinding `json:"findings"`
}

// JSONReport renders diagnostics as a stable JSON document.
func JSONReport(diags []Diagnostic) ([]byte, error) {
	rep := jsonReport{Count: len(diags), Findings: make([]jsonFinding, 0, len(diags))}
	for _, d := range diags {
		rep.Findings = append(rep.Findings, jsonFinding{
			File: d.Pos.Filename, Line: d.Pos.Line, Col: d.Pos.Column, Rule: d.Rule, Msg: d.Msg,
		})
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}
