package lint

import "go/ast"

// HotDeferRule flags defer statements inside loops of hot functions. A
// defer in a loop does not run at the end of the iteration — it
// accumulates on the function's defer stack until return, which in a
// per-tick loop means unbounded growth in both memory and exit latency.
// (A defer at the top level of a hot function is fine: one record,
// amortized over the whole call.)
type HotDeferRule struct{}

func (HotDeferRule) Name() string { return "hotdefer" }
func (HotDeferRule) Doc() string {
	return "flags defer inside a loop of a function reachable from a //lint:hotroot — deferred calls accumulate until the function returns"
}

func (HotDeferRule) CheckModule(a *Analysis, report ReportFunc) {
	for _, fi := range a.funcs {
		if !fi.hot || !underSim(fi.pkg.Rel) || fi.pkg.Rel == obsPackage {
			continue
		}
		ast.Inspect(fi.decl, func(n ast.Node) bool {
			d, ok := n.(*ast.DeferStmt)
			if !ok {
				return true
			}
			if depth := a.loopDepthAt(fi, d.Pos()); depth > 0 {
				report(fi.pkg, d.Pos(), "hot path (%s): defer inside a loop (depth %d) — deferred calls accumulate until the function returns; hoist the defer or extract the loop body into a function", fi.hotWhy, depth)
			}
			return true
		})
	}
}
