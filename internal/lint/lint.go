// Package lint is a stdlib-only static-analysis framework guarding the
// repository's determinism invariant: a campaign must be a pure function
// of (Config, seed), byte-identical across runs, worker counts, and
// hosts. Nothing in the Go toolchain enforces that — a stray time.Now, a
// global math/rand draw, or an unsorted map iteration feeding a report
// all compile fine and silently break replayability. The rules here turn
// the invariant into a machine-checked property.
//
// The framework loads every package in the module with go/parser and
// typechecks it with go/types (see load.go), then runs two kinds of
// rules: PackageRules inspect one package at a time, ModuleRules ask
// transitive questions of the interprocedural engine (see analysis.go) —
// a module-wide call graph with per-function dataflow summaries computed
// by fixed-point propagation. Diagnostics are sorted by file and
// position, and per-package work is embarrassingly parallel with
// slot-addressed results, so the linter's own output is byte-identical
// for any worker count. Intentional violations are documented at the
// call site with a directive:
//
//	//lint:allow <rule>[,<rule>...] — reason
//
// (see directive.go). The cmd/lintwheels binary drives the whole thing
// and exits non-zero on findings.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"sync"
)

// Diagnostic is one finding, addressed by resolved source position.
type Diagnostic struct {
	Pos  token.Position
	Rule string
	Msg  string
}

// String renders the canonical "file:line:col: [rule] message" form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Msg)
}

// Package is one loaded, typechecked package presented to rules.
type Package struct {
	Fset *token.FileSet
	// Path is the import path ("github.com/nuwins/cellwheels/internal/core").
	Path string
	// Rel is the module-relative directory with forward slashes; "" is the
	// module root. Rules use it for scoping (e.g. nondet applies under
	// internal/ and cmd/).
	Rel string
	// Dir is the absolute directory the files were read from.
	Dir   string
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Rule is the common surface of every check: an identifier and a doc
// line. Concrete rules implement PackageRule, ModuleRule, or both.
type Rule interface {
	// Name is the short identifier printed in brackets and accepted by
	// //lint:allow directives.
	Name() string
	// Doc is a one-line description for documentation and -rules output.
	Doc() string
}

// PackageRule is a check that inspects one package in isolation.
type PackageRule interface {
	Rule
	// Check inspects one package and reports findings.
	Check(p *Package, r *Reporter)
}

// ReportFunc records a finding for a ModuleRule at a position inside p.
type ReportFunc func(p *Package, pos token.Pos, format string, args ...any)

// ModuleRule is a check that needs the interprocedural engine: the
// module-wide call graph and dataflow summaries of Analysis.
type ModuleRule interface {
	Rule
	// CheckModule inspects the whole analyzed module.
	CheckModule(a *Analysis, report ReportFunc)
}

// Reporter collects diagnostics for one (package, rule) pair.
type Reporter struct {
	fset *token.FileSet
	rule string
	out  *[]Diagnostic
}

// Reportf records a finding at pos.
func (r *Reporter) Reportf(pos token.Pos, format string, args ...any) {
	*r.out = append(*r.out, Diagnostic{
		Pos:  r.fset.Position(pos),
		Rule: r.rule,
		Msg:  fmt.Sprintf(format, args...),
	})
}

// AllRules returns the full rule suite in documentation order.
func AllRules() []Rule {
	return []Rule{
		NondetRule{},
		SeededRandRule{},
		MapRangeRule{},
		UncheckedErrRule{},
		SortStableRule{},
		TimeTaintRule{},
		GlobalMutRule{},
		GoUnsyncRule{},
		UnitsRule{},
		HotAllocRule{},
		HotDeferRule{},
		HotBoxRule{},
		GoLeakRule{},
		CtxFlowRule{},
		LockHoldRule{},
		ResLeakRule{},
	}
}

// RuleNames reports the names AllRules answers to, plus the internal
// "directive" pseudo-rule used for malformed //lint: comments.
func RuleNames() []string {
	names := make([]string, 0, len(AllRules())+1)
	for _, r := range AllRules() {
		names = append(names, r.Name())
	}
	names = append(names, DirectiveRule)
	return names
}

// Run applies rules to every package, resolves //lint:allow directives,
// and returns the surviving diagnostics sorted by file, position, rule,
// and message — so linter output is itself deterministic.
func Run(pkgs []*Package, rules []Rule) []Diagnostic {
	return RunWorkers(pkgs, rules, 1)
}

// RunWorkers is Run with per-package checks fanned out over workers
// goroutines. Results are slot-addressed by package index and the
// interprocedural pass is single-threaded, so the output is byte-
// identical for every worker count — the same property the linter
// enforces on the simulation.
func RunWorkers(pkgs []*Package, rules []Rule, workers int) []Diagnostic {
	// Directives validate against the full suite, not the selected subset:
	// an //lint:allow naming a real rule must stay valid when the linter
	// runs with -rules restricting the pass.
	known := map[string]bool{}
	for _, r := range AllRules() {
		known[r.Name()] = true
	}
	var pkgRules []PackageRule
	var modRules []ModuleRule
	for _, r := range rules {
		if pr, ok := r.(PackageRule); ok {
			pkgRules = append(pkgRules, pr)
		}
		if mr, ok := r.(ModuleRule); ok {
			modRules = append(modRules, mr)
		}
	}

	// Per-package pass: directives plus PackageRules, slot-addressed.
	perPkg := make([][]Diagnostic, len(pkgs))    // rule findings, suppressible
	malformed := make([][]Diagnostic, len(pkgs)) // broken directives, not suppressible
	allowed := make([]allowSet, len(pkgs))
	if workers < 1 {
		workers = 1
	}
	if workers > len(pkgs) {
		workers = len(pkgs)
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				p := pkgs[i]
				allowed[i], malformed[i] = collectDirectives(p, known)
				for _, rule := range pkgRules {
					rule.Check(p, &Reporter{fset: p.Fset, rule: rule.Name(), out: &perPkg[i]})
				}
			}
		}()
	}
	for i := range pkgs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	allows := allowSet{}
	for _, a := range allowed {
		allows.merge(a)
	}

	// Module pass: the interprocedural engine, deliberately sequential —
	// summaries are shared state and the pass is cheap next to typechecking.
	var raw []Diagnostic
	for i := range pkgs {
		raw = append(raw, perPkg[i]...)
	}
	if len(modRules) > 0 {
		a := Analyze(pkgs)
		for _, rule := range modRules {
			name := rule.Name()
			rule.CheckModule(a, func(p *Package, pos token.Pos, format string, args ...any) {
				raw = append(raw, Diagnostic{
					Pos:  p.Fset.Position(pos),
					Rule: name,
					Msg:  fmt.Sprintf(format, args...),
				})
			})
		}
	}

	var diags []Diagnostic
	for i := range pkgs {
		diags = append(diags, malformed[i]...)
	}
	for _, d := range raw {
		if !allows.suppresses(d) {
			diags = append(diags, d)
		}
	}
	Sort(diags)
	return diags
}

// Sort orders diagnostics by file, then position, then rule and message.
func Sort(diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Msg < b.Msg
	})
}

// inspectWithStack walks every file of p, calling visit with each node
// and the stack of its ancestors (outermost first, n last).
func inspectWithStack(p *Package, visit func(n ast.Node, stack []ast.Node)) {
	for _, f := range p.Files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			visit(n, stack)
			return true
		})
	}
}

// enclosingFunc returns the innermost function body on the stack, or nil.
func enclosingFunc(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			return fn
		case *ast.FuncLit:
			return fn
		}
	}
	return nil
}

// calleeFunc resolves the function a call ultimately invokes, or nil for
// builtins, conversions, and indirect calls through function values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// funcPkgPath reports the defining package path of fn ("" for universe).
func funcPkgPath(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// isPkgLevel reports whether fn is a package-level function (no receiver).
func isPkgLevel(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// underSim reports whether a module-relative dir is part of the simulation
// or its drivers: the module root facade, internal/*, and cmd/*. Examples
// and the fixture corpus are out of scope.
func underSim(rel string) bool {
	if rel == "" {
		return true
	}
	return strings.HasPrefix(rel, "internal/") || rel == "internal" ||
		strings.HasPrefix(rel, "cmd/") || rel == "cmd"
}
