// Package lint is a stdlib-only static-analysis framework guarding the
// repository's determinism invariant: a campaign must be a pure function
// of (Config, seed), byte-identical across runs, worker counts, and
// hosts. Nothing in the Go toolchain enforces that — a stray time.Now, a
// global math/rand draw, or an unsorted map iteration feeding a report
// all compile fine and silently break replayability. The rules here turn
// the invariant into a machine-checked property.
//
// The framework loads every package in the module with go/parser and
// typechecks it with go/types (see load.go), then runs each Rule over
// each package. Diagnostics are sorted by file and position so the
// linter's own output is deterministic. Intentional violations are
// documented at the call site with a directive:
//
//	//lint:allow <rule> — reason
//
// (see directive.go). The cmd/lintwheels binary drives the whole thing
// and exits non-zero on findings.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding, addressed by resolved source position.
type Diagnostic struct {
	Pos  token.Position
	Rule string
	Msg  string
}

// String renders the canonical "file:line:col: [rule] message" form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Msg)
}

// Package is one loaded, typechecked package presented to rules.
type Package struct {
	Fset *token.FileSet
	// Path is the import path ("github.com/nuwins/cellwheels/internal/core").
	Path string
	// Rel is the module-relative directory with forward slashes; "" is the
	// module root. Rules use it for scoping (e.g. nondet applies under
	// internal/ and cmd/).
	Rel string
	// Dir is the absolute directory the files were read from.
	Dir   string
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Rule is one determinism/correctness check.
type Rule interface {
	// Name is the short identifier printed in brackets and accepted by
	// //lint:allow directives.
	Name() string
	// Doc is a one-line description for documentation and -rules output.
	Doc() string
	// Check inspects one package and reports findings.
	Check(p *Package, r *Reporter)
}

// Reporter collects diagnostics for one (package, rule) pair.
type Reporter struct {
	fset *token.FileSet
	rule string
	out  *[]Diagnostic
}

// Reportf records a finding at pos.
func (r *Reporter) Reportf(pos token.Pos, format string, args ...any) {
	*r.out = append(*r.out, Diagnostic{
		Pos:  r.fset.Position(pos),
		Rule: r.rule,
		Msg:  fmt.Sprintf(format, args...),
	})
}

// AllRules returns the full rule suite in documentation order.
func AllRules() []Rule {
	return []Rule{
		NondetRule{},
		SeededRandRule{},
		MapRangeRule{},
		UncheckedErrRule{},
		SortStableRule{},
	}
}

// RuleNames reports the names AllRules answers to, plus the internal
// "directive" pseudo-rule used for malformed //lint: comments.
func RuleNames() []string {
	names := make([]string, 0, len(AllRules())+1)
	for _, r := range AllRules() {
		names = append(names, r.Name())
	}
	names = append(names, DirectiveRule)
	return names
}

// Run applies rules to every package, resolves //lint:allow directives,
// and returns the surviving diagnostics sorted by file, position, rule,
// and message — so linter output is itself deterministic.
func Run(pkgs []*Package, rules []Rule) []Diagnostic {
	known := map[string]bool{}
	for _, r := range rules {
		known[r.Name()] = true
	}

	var diags []Diagnostic
	for _, p := range pkgs {
		allows, malformed := collectDirectives(p, known)
		diags = append(diags, malformed...)

		var raw []Diagnostic
		for _, rule := range rules {
			rule.Check(p, &Reporter{fset: p.Fset, rule: rule.Name(), out: &raw})
		}
		for _, d := range raw {
			if !allows.suppresses(d) {
				diags = append(diags, d)
			}
		}
	}
	Sort(diags)
	return diags
}

// Sort orders diagnostics by file, then position, then rule and message.
func Sort(diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Msg < b.Msg
	})
}

// inspectWithStack walks every file of p, calling visit with each node
// and the stack of its ancestors (outermost first, n last).
func inspectWithStack(p *Package, visit func(n ast.Node, stack []ast.Node)) {
	for _, f := range p.Files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			visit(n, stack)
			return true
		})
	}
}

// enclosingFunc returns the innermost function body on the stack, or nil.
func enclosingFunc(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			return fn
		case *ast.FuncLit:
			return fn
		}
	}
	return nil
}

// calleeFunc resolves the function a call ultimately invokes, or nil for
// builtins, conversions, and indirect calls through function values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// funcPkgPath reports the defining package path of fn ("" for universe).
func funcPkgPath(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// isPkgLevel reports whether fn is a package-level function (no receiver).
func isPkgLevel(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// underSim reports whether a module-relative dir is part of the simulation
// or its drivers: the module root facade, internal/*, and cmd/*. Examples
// and the fixture corpus are out of scope.
func underSim(rel string) bool {
	if rel == "" {
		return true
	}
	return strings.HasPrefix(rel, "internal/") || rel == "internal" ||
		strings.HasPrefix(rel, "cmd/") || rel == "cmd"
}
