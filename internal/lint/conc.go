package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file is the concurrency half of the interprocedural engine: two
// per-function summary bits — "blocks" (executing this function can park
// its goroutine indefinitely) and "receivesCancel" (the function observes
// a cancellation or join signal) — plus the blocking lattice that defines
// them. The four liveness rules are built on top:
//
//	goleak   — blocks && !receivesCancel at a `go` spawn
//	ctxflow  — blocking sites in a ctx-bearing function that ignore the ctx
//	lockhold — blocking sites on a CFG path holding a sync.(RW)Mutex
//	resleak  — CFG paths from an acquisition to exit with no release
//
// The blocking lattice is deliberately small and deep-rooted: channel
// operations (send, receive, range, select without default), HTTP round
// trips and serves, net.Listener.Accept and net.Dial, sync.WaitGroup.Wait
// and sync.Cond.Wait, time.Sleep. Mutex.Lock is deliberately NOT in it —
// treating every lock as blocking would make nearly every function in a
// concurrent package "blocking" and drown lockhold in its own cascade;
// lock-ordering hazards are out of scope. File and pipe I/O are excluded
// for the same reason: they complete, eventually, without a peer.
//
// Both bits exclude nested closures and go statements: a closure merely
// defined (or spawned) inside f does not block f. Spawned closures get
// their facts computed on demand by litConc for goleak. Propagation is
// the engine's usual monotone fixed point over the call graph, with the
// same determinism contract: callees in source order, provenance chains
// built innermost-first.

// Blocking-site kinds. Cond.Wait is separated because it atomically
// releases its mutex while parked: it still blocks (goleak, ctxflow) but
// is not a lock-held hazard (lockhold skips it).
const (
	blockKindChan = iota
	blockKindCall
	blockKindCondWait
)

// blockSite is one place a function can park its goroutine.
type blockSite struct {
	pos  token.Pos
	desc string
	kind int
}

// concFacts are the concurrency-relevant facts of one function-like body.
type concFacts struct {
	sites   []blockSite
	cancel  bool
	callees []*types.Func // resolved callees, deduplicated, source order
}

// scanConc computes fi's direct blocking sites, cancel observation, and
// the callee list used to propagate both, excluding nested closures and
// go statements.
func (a *Analysis) scanConc(fi *funcInfo) {
	f := scanConcBody(fi.pkg.Info, fi.decl.Body, true)
	fi.concSites = f.sites
	fi.concCallees = f.callees
	fi.receivesCancel = f.cancel
	if len(f.sites) > 0 {
		fi.blocks = true
		fi.blocksWhy = f.sites[0].desc
	}
}

// propagateConc closes blocks/receivesCancel over the call graph.
// Monotone over a finite lattice, so it terminates; callees are visited
// in source order so provenance chains are deterministic.
func (a *Analysis) propagateConc() {
	for changed := true; changed; {
		changed = false
		for _, fi := range a.funcs {
			for _, callee := range fi.concCallees {
				cf := a.byObj[callee]
				if cf == nil {
					continue
				}
				if cf.blocks && !fi.blocks {
					fi.blocks = true
					fi.blocksWhy = chain(shortFuncName(callee), cf.blocksWhy)
					changed = true
				}
				if cf.receivesCancel && !fi.receivesCancel {
					fi.receivesCancel = true
					changed = true
				}
			}
		}
	}
}

// Blocking exposes the blocks summary bit and its provenance (tests).
func (a *Analysis) Blocking(fn *types.Func) (bool, string) {
	fi := a.byObj[origin(fn)]
	if fi == nil {
		return false, ""
	}
	return fi.blocks, fi.blocksWhy
}

// ReceivesCancel exposes the cancel-observation summary bit (tests).
func (a *Analysis) ReceivesCancel(fn *types.Func) bool {
	fi := a.byObj[origin(fn)]
	return fi != nil && fi.receivesCancel
}

// litConc computes a spawned closure's facts on demand: its own subtree
// (nested closures included — they usually run via defer — but nested
// spawns excluded) plus its resolved callees' summaries.
func (a *Analysis) litConc(info *types.Info, lit *ast.FuncLit) (blocks bool, why string, cancel bool) {
	f := scanConcBody(info, lit.Body, false)
	cancel = f.cancel
	if len(f.sites) > 0 {
		blocks, why = true, f.sites[0].desc
	}
	for _, callee := range f.callees {
		cf := a.byObj[callee]
		if cf == nil {
			continue
		}
		if cf.blocks && !blocks {
			blocks, why = true, chain(shortFuncName(callee), cf.blocksWhy)
		}
		cancel = cancel || cf.receivesCancel
	}
	return blocks, why, cancel
}

// scanConcBody walks one body collecting blocking sites, cancel
// observations, and resolved callees. skipLits excludes nested closures
// (always true for declared functions; false when the body IS a spawned
// closure, whose nested non-spawned closures do run on its goroutine).
// Go statements are always excluded: the spawned work does not block the
// spawner. Channel operations that are a select's comm clause belong to
// the select and are not double-counted as standalone sites.
func scanConcBody(info *types.Info, body *ast.BlockStmt, skipLits bool) concFacts {
	var f concFacts
	seen := map[*types.Func]bool{}
	var comm [][2]token.Pos
	inComm := func(pos token.Pos) bool {
		for _, r := range comm {
			if r[0] <= pos && pos < r[1] {
				return true
			}
		}
		return false
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if skipLits {
				return false
			}
		case *ast.GoStmt:
			return false
		case *ast.SelectStmt:
			hasDefault := false
			for _, c := range n.Body.List {
				cc := c.(*ast.CommClause)
				if cc.Comm == nil {
					hasDefault = true
					continue
				}
				f.cancel = true
				comm = append(comm, [2]token.Pos{cc.Comm.Pos(), cc.Comm.End()})
			}
			if !hasDefault {
				f.sites = append(f.sites, blockSite{n.Pos(), "select without default", blockKindChan})
			}
		case *ast.SendStmt:
			f.cancel = true
			if !inComm(n.Pos()) {
				f.sites = append(f.sites, blockSite{n.Pos(), "channel send", blockKindChan})
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				f.cancel = true
				if !inComm(n.Pos()) {
					f.sites = append(f.sites, blockSite{n.Pos(), "channel receive", blockKindChan})
				}
			}
		case *ast.RangeStmt:
			if _, ok := typeUnder(info.TypeOf(n.X)).(*types.Chan); ok {
				f.cancel = true
				f.sites = append(f.sites, blockSite{n.Pos(), "range over channel", blockKindChan})
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "close" {
					f.cancel = true
				}
			}
			fn := origin(calleeFunc(info, n))
			if fn == nil {
				break
			}
			if desc, kind, ok := blockingCall(fn); ok {
				f.sites = append(f.sites, blockSite{n.Pos(), desc, kind})
			}
			if cancelCall(fn) {
				f.cancel = true
			}
			if !seen[fn] {
				seen[fn] = true
				f.callees = append(f.callees, fn)
			}
		}
		return true
	})
	return f
}

// typeUnder is Underlying tolerant of nil.
func typeUnder(t types.Type) types.Type {
	if t == nil {
		return nil
	}
	return t.Underlying()
}

// blockingCall classifies the stdlib entry points that can park a
// goroutine indefinitely — the call half of the blocking lattice.
func blockingCall(fn *types.Func) (desc string, kind int, ok bool) {
	recv, name := recvTypeName(fn), fn.Name()
	switch funcPkgPath(fn) {
	case "net/http":
		switch recv {
		case "Client":
			switch name {
			case "Do", "Get", "Head", "Post", "PostForm":
				return "HTTP round-trip http.Client." + name, blockKindCall, true
			}
		case "Transport", "RoundTripper":
			if name == "RoundTrip" {
				return "HTTP round-trip http." + recv + ".RoundTrip", blockKindCall, true
			}
		case "Server":
			switch name {
			case "Serve", "ServeTLS", "ListenAndServe", "ListenAndServeTLS", "Shutdown":
				return "http.Server." + name, blockKindCall, true
			}
		case "":
			switch name {
			case "Get", "Head", "Post", "PostForm":
				return "HTTP round-trip http." + name, blockKindCall, true
			case "Serve", "ServeTLS", "ListenAndServe", "ListenAndServeTLS":
				return "http." + name, blockKindCall, true
			}
		}
	case "net":
		if name == "Accept" && strings.HasSuffix(recv, "Listener") {
			return "net." + recv + ".Accept", blockKindCall, true
		}
		if recv == "" && strings.HasPrefix(name, "Dial") {
			return "net." + name, blockKindCall, true
		}
	case "sync":
		if recv == "WaitGroup" && name == "Wait" {
			return "sync.WaitGroup.Wait", blockKindCall, true
		}
		if recv == "Cond" && name == "Wait" {
			return "sync.Cond.Wait", blockKindCondWait, true
		}
	case "time":
		if recv == "" && name == "Sleep" {
			return "time.Sleep", blockKindCall, true
		}
	}
	return "", 0, false
}

// cancelCall classifies the stdlib calls that observe a cancellation or
// join signal: waiting on (or arming) a WaitGroup or Cond, and reaching
// for ctx.Done — the signals goleak accepts as "someone can stop or
// reap this goroutine".
func cancelCall(fn *types.Func) bool {
	recv, name := recvTypeName(fn), fn.Name()
	switch funcPkgPath(fn) {
	case "sync":
		return (recv == "WaitGroup" && (name == "Wait" || name == "Done")) ||
			(recv == "Cond" && name == "Wait")
	case "context":
		return recv == "Context" && name == "Done"
	}
	return false
}

// recvTypeName reports the named receiver type of a method ("" for
// package-level functions), following pointer receivers. Interface
// methods resolve too: net.Listener.Accept has receiver type Listener.
func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// cancelCarrier reports whether values of t can carry a cancellation or
// join signal into a goroutine: channels, context.Context,
// sync.WaitGroup, sync.Cond, and pointers to them.
func cancelCarrier(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		return cancelCarrier(p.Elem())
	}
	if _, ok := t.Underlying().(*types.Chan); ok {
		return true
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	switch n.Obj().Pkg().Path() {
	case "sync":
		return n.Obj().Name() == "WaitGroup" || n.Obj().Name() == "Cond"
	case "context":
		return n.Obj().Name() == "Context"
	}
	return false
}

// blockingSitesIn collects the blocking sites inside one statement or
// expression, including calls to module functions whose summary blocks —
// the node-granular query lockhold asks while walking a critical
// section. Nested closures and go statements do not run here and are
// skipped; Cond.Wait sites are skipped too (Wait releases the mutex).
func blockingSitesIn(a *Analysis, info *types.Info, root ast.Node) []blockSite {
	var out []blockSite
	var comm [][2]token.Pos
	inComm := func(pos token.Pos) bool {
		for _, r := range comm {
			if r[0] <= pos && pos < r[1] {
				return true
			}
		}
		return false
	}
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.SelectStmt:
			hasDefault := false
			for _, c := range n.Body.List {
				cc := c.(*ast.CommClause)
				if cc.Comm == nil {
					hasDefault = true
					continue
				}
				comm = append(comm, [2]token.Pos{cc.Comm.Pos(), cc.Comm.End()})
			}
			if !hasDefault {
				out = append(out, blockSite{n.Pos(), "select without default", blockKindChan})
			}
		case *ast.SendStmt:
			if !inComm(n.Pos()) {
				out = append(out, blockSite{n.Pos(), "channel send", blockKindChan})
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !inComm(n.Pos()) {
				out = append(out, blockSite{n.Pos(), "channel receive", blockKindChan})
			}
		case *ast.RangeStmt:
			if _, ok := typeUnder(info.TypeOf(n.X)).(*types.Chan); ok {
				out = append(out, blockSite{n.Pos(), "range over channel", blockKindChan})
			}
		case *ast.CallExpr:
			fn := origin(calleeFunc(info, n))
			if fn == nil {
				break
			}
			if desc, kind, ok := blockingCall(fn); ok {
				if kind != blockKindCondWait {
					out = append(out, blockSite{n.Pos(), desc, kind})
				}
				break
			}
			if cf := a.byObj[fn]; cf != nil && cf.blocks {
				out = append(out, blockSite{n.Pos(), "call to " + shortFuncName(fn) + " (" + cf.blocksWhy + ")", blockKindCall})
			}
		}
		return true
	})
	return out
}

// funcUnits returns the function-like bodies declared in decl — the decl
// itself plus every closure, in source order. The path-sensitive rules
// analyze each unit against its own CFG, because a closure's paths end
// at the closure's return, not its definer's.
func funcUnits(decl *ast.FuncDecl) []ast.Node {
	units := []ast.Node{decl}
	ast.Inspect(decl, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			units = append(units, lit)
		}
		return true
	})
	return units
}
