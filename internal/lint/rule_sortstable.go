package lint

import (
	"go/ast"
	"go/types"
)

// SortStableRule flags sort.Slice over slices of record types (structs or
// pointers to structs). sort.Slice is unstable: two records that compare
// equal under the less function may land in either order, so a table or
// report built from the result can differ between runs even though every
// individual comparison is deterministic. Record sorts must either use
// sort.SliceStable or spell out a total order with tie-breakers; sorts of
// plain scalars ([]int, []float64) are exempt because equal scalars are
// indistinguishable.
type SortStableRule struct{}

func (SortStableRule) Name() string { return "sortstable" }

func (SortStableRule) Doc() string {
	return "require sort.SliceStable (or a total order) when sorting record/report slices"
}

func (SortStableRule) Check(p *Package, r *Reporter) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(p.Info, call)
			if fn == nil || funcPkgPath(fn) != "sort" || fn.Name() != "Slice" || len(call.Args) == 0 {
				return true
			}
			if name, isRecord := recordSliceElem(p.Info.TypeOf(call.Args[0])); isRecord {
				r.Reportf(call.Pos(), "sort.Slice on []%s is not stable; equal records may reorder between runs — use sort.SliceStable or a total-order tie-breaker", name)
			}
			return true
		})
	}
}

// recordSliceElem reports whether t is a slice of structs (or pointers to
// structs) and names the element type.
func recordSliceElem(t types.Type) (string, bool) {
	if t == nil {
		return "", false
	}
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return "", false
	}
	elem := sl.Elem()
	name := types.TypeString(elem, func(p *types.Package) string { return p.Name() })
	under := elem.Underlying()
	if ptr, ok := under.(*types.Pointer); ok {
		under = ptr.Elem().Underlying()
	}
	_, isStruct := under.(*types.Struct)
	return name, isStruct
}
