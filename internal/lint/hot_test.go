package lint

import (
	"strings"
	"testing"
)

// TestParseHotMark pins the directive grammar for the two hot-path verbs.
func TestParseHotMark(t *testing.T) {
	cases := []struct {
		text    string
		verb    string
		reason  string
		ok      bool
		wantErr bool
	}{
		{"//lint:hotroot", hotrootVerb, "", true, false},
		{"//lint:hotroot — per-tick entry point", hotrootVerb, "per-tick entry point", true, false},
		{"//lint:cold — runs once per campaign", coldVerb, "runs once per campaign", true, false},
		{"//lint:cold -- runs once", coldVerb, "runs once", true, false},
		{"//lint:cold", coldVerb, "", true, true},
		{"//lint:allow nondet — x", "", "", false, false},
		{"//lint:hotrooted", "", "", false, false},
		{"// plain comment", "", "", false, false},
		{"/*lint:hotroot*/", "", "", false, false},
	}
	for _, tc := range cases {
		verb, reason, ok, errMsg := parseHotMark(tc.text)
		if ok != tc.ok || (errMsg != "") != tc.wantErr {
			t.Errorf("parseHotMark(%q) ok=%v err=%q, want ok=%v wantErr=%v", tc.text, ok, errMsg, tc.ok, tc.wantErr)
			continue
		}
		if ok && errMsg == "" && (verb != tc.verb || reason != tc.reason) {
			t.Errorf("parseHotMark(%q) = (%q, %q), want (%q, %q)", tc.text, verb, reason, tc.verb, tc.reason)
		}
	}
}

// TestHotPropagation pins the interprocedural half against the hotalloc
// mini-module: hotness crosses the package boundary from engine.Run into
// helper, carrying a provenance chain, while the cold barrier keeps Cold
// out.
func TestHotPropagation(t *testing.T) {
	pkgs := loadModuleFixtureT(t, "hotalloc")
	a := Analyze(pkgs)

	run := findFunc(t, pkgs, "internal/engine", "", "Run")
	if hot, why := a.HotPath(run); !hot || why != "Run" {
		t.Errorf("Run hot=%v why=%q, want hot root with chain \"Run\"", hot, why)
	}

	step := findFunc(t, pkgs, "internal/engine", "", "step")
	if hot, why := a.HotPath(step); !hot || why != "step ← Run" {
		t.Errorf("step hot=%v why=%q, want \"step ← Run\"", hot, why)
	}

	grow := findFunc(t, pkgs, "internal/helper", "", "Grow")
	if hot, why := a.HotPath(grow); !hot || why != "Grow ← step ← Run" {
		t.Errorf("Grow hot=%v why=%q, want cross-package chain \"Grow ← step ← Run\"", hot, why)
	}

	cold := findFunc(t, pkgs, "internal/helper", "", "Cold")
	if hot, _ := a.HotPath(cold); hot {
		t.Error("Cold marked hot despite //lint:cold barrier")
	}
	if !a.ColdMarked(cold) {
		t.Error("ColdMarked(Cold) = false, want true")
	}
}

// TestHotColdBarrierTransitive pins that cold stops propagation through
// its callees, not just at itself: a function only reachable via a cold
// function stays cold.
func TestHotColdBarrierTransitive(t *testing.T) {
	pkgs := loadModuleFixtureT(t, "timetaint")
	a := Analyze(pkgs)
	// The timetaint module declares no hot roots at all: nothing is hot.
	for _, fi := range a.funcs {
		if fi.hot {
			t.Errorf("%s hot without any //lint:hotroot in the module", fi.obj.FullName())
		}
	}
}

// TestHotRulesRespectColdFixture pins the end-to-end behavior the
// goldens rely on: running the hot rules over the hotalloc module yields
// findings only in hot functions, never in Cold's body.
func TestHotRulesRespectColdFixture(t *testing.T) {
	pkgs := loadModuleFixtureT(t, "hotalloc")
	diags := Run(pkgs, []Rule{HotAllocRule{}, HotDeferRule{}, HotBoxRule{}})
	for _, d := range diags {
		if d.Rule == DirectiveRule {
			t.Errorf("malformed directive in fixture: %v", d)
		}
	}
	for _, d := range diags {
		// Cold's make() lives on line 30 of helper.go; nothing may be
		// reported inside the cold body.
		if d.Pos.Line >= 28 && strings.HasSuffix(d.Pos.Filename, "helper.go") {
			t.Errorf("finding inside //lint:cold body: %v", d)
		}
	}
}
