package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// MapRangeRule flags `for ... range m` over a map when the loop body
// emits something order-sensitive — appends to a slice, writes to a
// writer, or produces files/records — because Go randomizes map iteration
// order per run, so the emitted sequence differs run to run. Iterations
// that only fill other maps are order-independent and stay legal, as is
// the collect-keys-then-sort idiom: an append whose target is later
// passed to a sort.* or slices.* call is recognized and not flagged.
type MapRangeRule struct{}

func (MapRangeRule) Name() string { return "maprange" }

func (MapRangeRule) Doc() string {
	return "flag map iteration that appends/writes/emits in randomized order; sort keys first"
}

// emittingMethods are method names whose call inside a map-range body
// sends data somewhere ordered (a writer, an encoder, a terminal).
var emittingMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"WriteTo": true, "Print": true, "Printf": true, "Println": true,
	"Encode": true, "Flush": true,
}

func (MapRangeRule) Check(p *Package, r *Reporter) {
	inspectWithStack(p, func(n ast.Node, stack []ast.Node) {
		rs, ok := n.(*ast.RangeStmt)
		if !ok || !isMapType(p.Info.TypeOf(rs.X)) {
			return
		}
		fn := enclosingFunc(stack)
		if why := emissionIn(p, rs, fn); why != "" {
			r.Reportf(rs.For, "map iteration order is randomized per run, but this loop %s; collect and sort the keys first", why)
		}
	})
}

func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// emissionIn scans a map-range body for order-sensitive output and
// returns a description of the first offender, or "".
func emissionIn(p *Package, rs *ast.RangeStmt, fn ast.Node) string {
	var why string
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if why != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if obj := appendTarget(p.Info, call); obj != nil {
			// A target declared inside the loop body is per-iteration
			// local; a target that is sorted later in the same function
			// is the sanctioned sorted-keys idiom.
			if declaredWithin(obj, rs.Body) || sortedLater(p, fn, obj) {
				return true
			}
			why = "appends to " + obj.Name() + " in that order"
			return false
		}
		cf := calleeFunc(p.Info, call)
		if cf == nil {
			return true
		}
		if funcPkgPath(cf) == "fmt" && strings.HasPrefix(cf.Name(), "Fprint") {
			why = "writes records via fmt." + cf.Name()
			return false
		}
		if funcPkgPath(cf) == "os" && (cf.Name() == "WriteFile" || cf.Name() == "Create") {
			why = "emits files via os." + cf.Name()
			return false
		}
		if !isPkgLevel(cf) && emittingMethods[cf.Name()] {
			why = "writes output via " + cf.Name()
			return false
		}
		return true
	})
	return why
}

// appendTarget returns the object the builtin append grows, nil when call
// is not an append or the target is not a trackable variable.
func appendTarget(info *types.Info, call *ast.CallExpr) types.Object {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || len(call.Args) == 0 {
		return nil
	}
	if b, ok := info.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
		return nil
	}
	return baseObject(info, call.Args[0])
}

// baseObject resolves the root variable of an lvalue-ish expression:
// keys -> keys, out.Rows -> out, m[k] -> m.
func baseObject(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return info.ObjectOf(x)
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// declaredWithin reports whether obj's declaration lies inside node.
func declaredWithin(obj types.Object, node ast.Node) bool {
	return obj != nil && node.Pos() <= obj.Pos() && obj.Pos() < node.End()
}

// sortedLater reports whether the enclosing function passes obj to any
// sort.* or slices.* call — the collect-then-sort idiom.
func sortedLater(p *Package, fn ast.Node, obj types.Object) bool {
	if fn == nil || obj == nil {
		return false
	}
	found := false
	ast.Inspect(fn, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		cf := calleeFunc(p.Info, call)
		if cf == nil {
			return true
		}
		if pp := funcPkgPath(cf); pp != "sort" && pp != "slices" {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && p.Info.ObjectOf(id) == obj {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}
