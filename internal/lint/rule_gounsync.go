package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoUnsyncRule is the static companion to `go test -race`: it flags
// goroutine closures sharing mutable captured variables with code outside
// the goroutine when no recognized mediation is in play. Mediation is
// type-based and deliberately coarse: channels, sync.* and sync/atomic
// types are trusted, as are element stores into captured slices — the
// repository's sanctioned slot-addressed pattern, where each goroutine
// owns a distinct index. Map stores, scalar writes, and field writes are
// not slot-addressed and are flagged. For `go f(...)` with a named
// callee, the interprocedural summaries supply the second half: spawning
// a function that transitively mutates package-level state is flagged
// even though the write is out of sight. The race detector only sees
// schedules that happen; this rule sees the ones that could.
type GoUnsyncRule struct{}

func (GoUnsyncRule) Name() string { return "gounsync" }

func (GoUnsyncRule) Doc() string {
	return "flag goroutines sharing captured or package-level mutable state without sync/atomic/channel mediation"
}

func (GoUnsyncRule) CheckModule(a *Analysis, report ReportFunc) {
	for _, fi := range a.funcs {
		if !underSim(fi.pkg.Rel) || fi.pkg.Rel == obsPackage {
			continue
		}
		for _, sp := range fi.spawns {
			checkSpawn(a, fi, sp, report)
		}
	}
}

func checkSpawn(a *Analysis, fi *funcInfo, sp goSpawn, report ReportFunc) {
	p := fi.pkg
	if sp.lit == nil {
		// go f(...): the hazard is f's transitive package-level writes.
		if sp.callee == nil {
			return
		}
		ci := a.byObj[sp.callee]
		if ci == nil || len(ci.writesGlobals) == 0 {
			return
		}
		v := sortedVars(ci.writesGlobals)[0]
		report(p, sp.stmt.Pos(), "goroutine runs %s, which mutates package-level %s; concurrent spawns race on it — pass per-run state or mediate with sync/atomic", sp.callee.Name(), v.Name())
		return
	}
	for _, v := range sp.captured {
		if mediatedType(v.Type()) {
			continue
		}
		wInside := writesVar(p.Info, sp.lit, v, nil, token.NoPos)
		// Outside writes only count after the spawn: everything textually
		// before it is sequenced before the goroutine exists (the
		// build-then-spawn idiom), so only later writes can race.
		wOutside := writesVar(p.Info, fi.decl, v, sp.lit, sp.stmt.End())
		if wOutside {
			report(p, sp.stmt.Pos(), "goroutine captures %s, which is also written outside the goroutine without sync/atomic/channel mediation", v.Name())
			continue
		}
		if wInside && mentionedAfter(p.Info, fi.decl, v, sp.stmt.End(), sp.lit) {
			report(p, sp.stmt.Pos(), "goroutine writes captured %s, which is used after the spawn without sync/atomic/channel mediation", v.Name())
		}
	}
}

// mediatedType reports whether values of t carry their own
// happens-before story: channels, sync.* / sync/atomic types, and
// pointers to them.
func mediatedType(t types.Type) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		return mediatedType(ptr.Elem())
	}
	if _, ok := t.Underlying().(*types.Chan); ok {
		return true
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	switch named.Obj().Pkg().Path() {
	case "sync", "sync/atomic":
		return true
	}
	return false
}

// writesVar reports whether root contains a mutating access to v,
// skipping the subtree `except` (the goroutine literal, when scanning the
// rest of the enclosing function) and any write at or before `after`.
// Declarations, per-iteration loop variables (for/range clauses,
// Go ≥1.22 semantics), and slice element stores (the slot-addressed
// pattern) do not count as mutation.
func writesVar(info *types.Info, root ast.Node, v *types.Var, except ast.Node, after token.Pos) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if found || n == except {
			return false
		}
		switch n := n.(type) {
		case *ast.RangeStmt:
			// Key/Value are per-iteration; inspect X and Body only.
			if targetsVar(info, n.Key, v) || targetsVar(info, n.Value, v) {
				ast.Inspect(n.Body, func(m ast.Node) bool {
					if found || m == except {
						return false
					}
					found = found || (isWriteOf(info, m, v) && nodeAfter(m, after))
					return !found
				})
				if n.X != nil {
					found = found || writesVar(info, n.X, v, except, after)
				}
				return false
			}
		case *ast.ForStmt:
			// Init/Post writes to v are the per-iteration loop clause.
			if clauseWrites(info, n, v) {
				if n.Cond != nil {
					found = found || writesVar(info, n.Cond, v, except, after)
				}
				found = found || writesVar(info, n.Body, v, except, after)
				return false
			}
		}
		found = found || (isWriteOf(info, n, v) && nodeAfter(n, after))
		return !found
	})
	return found
}

// nodeAfter reports whether n starts after pos (always true for NoPos).
func nodeAfter(n ast.Node, pos token.Pos) bool {
	return !pos.IsValid() || n.Pos() > pos
}

// clauseWrites reports whether the for statement's init/post clause is
// what writes v.
func clauseWrites(info *types.Info, f *ast.ForStmt, v *types.Var) bool {
	for _, s := range []ast.Stmt{f.Init, f.Post} {
		if s == nil {
			continue
		}
		w := false
		ast.Inspect(s, func(n ast.Node) bool {
			w = w || isWriteOf(info, n, v)
			return !w
		})
		if w {
			return true
		}
	}
	return false
}

// isWriteOf reports whether node n mutates v: a plain assignment or
// inc/dec whose target resolves to v, a map element store, or a field
// store through v. Slice element stores are the sanctioned slot-addressed
// concurrency pattern and are excluded; := definitions are declarations.
func isWriteOf(info *types.Info, n ast.Node, v *types.Var) bool {
	switch n := n.(type) {
	case *ast.AssignStmt:
		for _, lhs := range n.Lhs {
			if mutatesVar(info, lhs, v, n.Tok == token.DEFINE) {
				return true
			}
		}
	case *ast.IncDecStmt:
		return mutatesVar(info, n.X, v, false)
	}
	return false
}

// mutatesVar resolves one assignment target against v.
func mutatesVar(info *types.Info, lhs ast.Expr, v *types.Var, define bool) bool {
	switch x := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if define && info.Defs[x] != nil {
			return false // declaration, not mutation
		}
		return info.ObjectOf(x) == v
	case *ast.IndexExpr:
		if base := baseObject(info, x.X); base != v {
			return false
		}
		// Slice stores are slot-addressed; map stores are not.
		_, isMap := info.TypeOf(x.X).Underlying().(*types.Map)
		return isMap
	case *ast.SelectorExpr:
		return baseObject(info, x) == v
	case *ast.StarExpr:
		return baseObject(info, x.X) == v
	}
	return false
}

// targetsVar reports whether a range clause expr is exactly v.
func targetsVar(info *types.Info, e ast.Expr, v *types.Var) bool {
	if e == nil {
		return false
	}
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && info.ObjectOf(id) == v
}

// mentionedAfter reports whether v is used in root at a position after
// pos, outside the subtree except.
func mentionedAfter(info *types.Info, root ast.Node, v *types.Var, pos token.Pos, except ast.Node) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if found || n == except {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && id.Pos() > pos && info.ObjectOf(id) == v {
			found = true
		}
		return !found
	})
	return found
}
