package lint

// HotAllocRule flags allocation-inducing constructs inside functions on a
// hot path. Hotness comes from propagateHot (see hot.go); the constructs
// come from the intra-procedural classifier in alloc.go. Every finding
// carries the call chain back to the declaring //lint:hotroot, so the
// message itself proves the construct runs per tick — and a loop-depth
// note when the CFG places the site inside a loop, where the per-tick
// cost multiplies again.
type HotAllocRule struct{}

func (HotAllocRule) Name() string { return "hotalloc" }
func (HotAllocRule) Doc() string {
	return "flags heap allocations (composite literals, make, escaping new/&T{}, fresh-slice append, escaping closures, string conversions) in functions reachable from a //lint:hotroot"
}

// CheckModule reports the classifier's sites for every hot function in
// simulator packages. The obs facade wraps I/O and is exempt, like the
// other module rules.
func (HotAllocRule) CheckModule(a *Analysis, report ReportFunc) {
	for _, fi := range a.funcs {
		if !fi.hot || !underSim(fi.pkg.Rel) || fi.pkg.Rel == obsPackage {
			continue
		}
		for _, s := range hotAllocSites(fi) {
			note := ""
			if d := a.loopDepthAt(fi, s.pos); d > 0 {
				note = " inside a loop"
			}
			report(fi.pkg, s.pos, "hot path (%s)%s: %s", fi.hotWhy, note, s.desc)
		}
	}
}
