package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file is the intra-procedural allocation/escape classifier behind
// the hotalloc and hotbox rules. For each hot function it walks the body
// once and reports the constructs that typically force a heap allocation
// (or O(n) construction work) on every execution:
//
//   - map and slice composite literals
//   - &composite / new(T) whose address escapes
//   - make with a non-constant size, or whose result escapes
//   - append to a slice that is freshly allocated on every call
//   - closures with captured variables that escape (stored, returned,
//     or passed to another function — sort.Search's comparator is the
//     canonical per-call allocation)
//   - string <-> []byte / []rune conversions (always a copy)
//   - implicit boxing of non-pointer values into interfaces (hotbox)
//
// The escape half is deliberately one-level and under-approximate: a
// value is "escaping" when its immediate consumer is a return, a call
// argument, a store into a field/global/element, or a composite; a value
// parked in a plain local is treated as stack-bound even if a later
// statement leaks it. Matching the compiler's interprocedural escape
// analysis is not the goal — the goal is that every construct a reviewer
// would have to think about on a 50 ms path is either rewritten or
// carries a //lint:allow with a reason. Appends whose base is a field,
// global, or parameter are amortized state growth and stay clean, as do
// value struct literals (copies, not allocations).

// allocSite is one allocation-inducing construct found in a hot function.
type allocSite struct {
	pos  token.Pos
	desc string
}

// hotAllocSites classifies the allocation constructs in fi's body,
// including nested closure bodies (code in a closure defined by a hot
// function runs on the hot path when the closure is invoked there).
func hotAllocSites(fi *funcInfo) []allocSite {
	info := fi.pkg.Info
	var sites []allocSite
	add := func(pos token.Pos, desc string) {
		sites = append(sites, allocSite{pos, desc})
	}
	var stack []ast.Node
	ast.Inspect(fi.decl, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		switch n := n.(type) {
		case *ast.CompositeLit:
			classifyComposite(info, n, stack, add)
		case *ast.CallExpr:
			classifyCall(fi, n, stack, add)
		case *ast.FuncLit:
			classifyClosure(info, n, stack, add)
		}
		return true
	})
	return sites
}

// parentNode returns the enclosing node of stack's top, or nil.
func parentNode(stack []ast.Node) ast.Node {
	if len(stack) < 2 {
		return nil
	}
	return stack[len(stack)-2]
}

// classifyComposite flags map and slice literals, and value literals
// whose address escapes. Literals nested inside another literal share its
// backing store and are not separate allocations.
func classifyComposite(info *types.Info, lit *ast.CompositeLit, stack []ast.Node, add func(token.Pos, string)) {
	parent := parentNode(stack)
	switch parent.(type) {
	case *ast.CompositeLit, *ast.KeyValueExpr:
		return
	}
	t := info.TypeOf(lit)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Map:
		add(lit.Pos(), "map literal builds a fresh map on every execution; hoist it to a package-level variable or switch on the key")
	case *types.Slice:
		if r, ok := parent.(*ast.RangeStmt); ok && r.X == lit {
			return // ranged in place: stays on the stack
		}
		add(lit.Pos(), "slice literal allocates its backing array on every execution; hoist it to a package-level variable")
	case *types.Struct, *types.Array:
		if u, ok := parent.(*ast.UnaryExpr); ok && u.Op == token.AND {
			if escapesLocally(info, stack[:len(stack)-1]) {
				add(lit.Pos(), "&composite literal escapes to the heap")
			}
		}
	}
}

// classifyCall flags allocation-shaped builtins and copying conversions.
func classifyCall(fi *funcInfo, call *ast.CallExpr, stack []ast.Node, add func(token.Pos, string)) {
	info := fi.pkg.Info
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		if convCopies(tv.Type, info.TypeOf(call.Args[0])) {
			add(call.Pos(), "string conversion copies its bytes on every execution")
		}
		return
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return
	}
	if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
		return
	}
	switch id.Name {
	case "make":
		t := info.TypeOf(call)
		if t == nil {
			return
		}
		switch t.Underlying().(type) {
		case *types.Map:
			add(call.Pos(), "make(map) allocates on every execution")
		case *types.Chan:
			add(call.Pos(), "make(chan) allocates on every execution")
		case *types.Slice:
			nonConst := false
			for _, a := range call.Args[1:] {
				if tv, ok := info.Types[a]; !ok || tv.Value == nil {
					nonConst = true
				}
			}
			switch {
			case nonConst:
				add(call.Pos(), "make([]T, n) with a non-constant size allocates on every execution; use a fixed-size array or a reused buffer")
			case escapesLocally(info, stack):
				add(call.Pos(), "make with an escaping result allocates on every execution")
			}
		}
	case "new":
		if escapesLocally(info, stack) {
			add(call.Pos(), "new(T) escapes to the heap")
		}
	case "append":
		if len(call.Args) == 0 {
			return
		}
		base, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
		if !ok {
			return
		}
		v, ok := info.ObjectOf(base).(*types.Var)
		if !ok || v.IsField() {
			return
		}
		// Declared inside this function's body: the slice is fresh on
		// every call, so the append's growth is never amortized. Fields,
		// globals, and parameters are caller-owned or long-lived state.
		if fi.decl.Body != nil && v.Pos() >= fi.decl.Body.Pos() && v.Pos() < fi.decl.Body.End() {
			add(call.Pos(), fmt.Sprintf("append grows %s, a slice allocated fresh on every call; reuse a buffer owned by the receiver", v.Name()))
		}
	}
}

// classifyClosure flags closures that capture variables and escape. A
// capture-free closure is a static function value and a directly invoked
// literal is inlined, so neither allocates.
func classifyClosure(info *types.Info, lit *ast.FuncLit, stack []ast.Node, add func(token.Pos, string)) {
	caps := capturedVars(info, lit)
	if len(caps) == 0 {
		return
	}
	if call, ok := parentNode(stack).(*ast.CallExpr); ok && ast.Unparen(call.Fun) == lit {
		return
	}
	if !escapesLocally(info, stack) {
		return
	}
	names := make([]string, 0, len(caps))
	for _, v := range caps {
		if len(names) == 3 {
			names = append(names, "...")
			break
		}
		names = append(names, v.Name())
	}
	add(lit.Pos(), fmt.Sprintf("closure capturing %s escapes — the closure and its captures are heap-allocated on every execution", strings.Join(names, ", ")))
}

// escapesLocally decides whether the value on top of stack escapes its
// function, one consumer level deep: returns, call arguments, stores
// into non-local places, composites, and channel sends escape; parking
// the value in a plain local does not.
func escapesLocally(info *types.Info, stack []ast.Node) bool {
	val := stack[len(stack)-1]
	for i := len(stack) - 2; i >= 0; i-- {
		switch p := stack[i].(type) {
		case *ast.ParenExpr:
			val = p
		case *ast.ReturnStmt:
			return true
		case *ast.CallExpr:
			for _, a := range p.Args {
				if a == val {
					return true
				}
			}
			return false
		case *ast.KeyValueExpr, *ast.CompositeLit, *ast.SendStmt:
			return true
		case *ast.AssignStmt:
			for j, r := range p.Rhs {
				if r != val {
					continue
				}
				if j < len(p.Lhs) {
					return storeEscapes(info, p.Lhs[j])
				}
			}
			return true
		case *ast.ValueSpec:
			return false // var x = <val>: a local declaration
		default:
			return false
		}
	}
	return false
}

// storeEscapes reports whether an assignment target moves the stored
// value out of the function: anything but a plain local variable does.
func storeEscapes(info *types.Info, lhs ast.Expr) bool {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok {
		return true // field, element, or dereference target
	}
	if id.Name == "_" {
		return false
	}
	v, ok := info.ObjectOf(id).(*types.Var)
	if !ok {
		return true
	}
	return v.Parent() != nil && v.Parent().Parent() == types.Universe
}

// convCopies reports whether a conversion between dst and src copies its
// contents: string <-> []byte and string <-> []rune always do.
func convCopies(dst, src types.Type) bool {
	if dst == nil || src == nil {
		return false
	}
	return (isStringType(dst) && isByteOrRuneSlice(src)) ||
		(isByteOrRuneSlice(dst) && isStringType(src))
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32
}

// ---- hotbox: implicit interface conversions ----

// hotBoxSites finds the places fi's body boxes a non-pointer value into
// an interface: call arguments (including variadic ...any), assignments
// and declarations with an interface-typed target, returns, and explicit
// conversions. Pointers, channels, maps, and funcs fit an interface word
// without allocating and stay clean; compile-time constants are skipped
// (small values are interned by the runtime).
func hotBoxSites(fi *funcInfo) []allocSite {
	info := fi.pkg.Info
	var sites []allocSite
	add := func(pos token.Pos, desc string) {
		sites = append(sites, allocSite{pos, desc})
	}
	var stack []ast.Node
	ast.Inspect(fi.decl, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		switch n := n.(type) {
		case *ast.CallExpr:
			boxAtCall(info, n, add)
		case *ast.AssignStmt:
			for i, r := range n.Rhs {
				if i < len(n.Lhs) && len(n.Rhs) == len(n.Lhs) {
					boxAt(info, r, info.TypeOf(n.Lhs[i]), "assignment", add)
				}
			}
		case *ast.ValueSpec:
			if n.Type != nil {
				dt := info.TypeOf(n.Type)
				for _, v := range n.Values {
					boxAt(info, v, dt, "declaration", add)
				}
			}
		case *ast.ReturnStmt:
			boxAtReturn(info, n, stack, add)
		}
		return true
	})
	return sites
}

// boxAtCall checks every argument against its parameter type, unwrapping
// variadic parameters unless the call spreads a slice with ...
func boxAtCall(info *types.Info, call *ast.CallExpr, add func(token.Pos, string)) {
	tv, ok := info.Types[call.Fun]
	if !ok || tv.IsType() || tv.IsBuiltin() {
		if ok && tv.IsType() && len(call.Args) == 1 {
			boxAt(info, call.Args[0], tv.Type, "conversion", add)
		}
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	np := sig.Params().Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			last := sig.Params().At(np - 1).Type()
			if call.Ellipsis.IsValid() {
				pt = last // xs... hands over the slice itself
			} else if s, ok := last.Underlying().(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < np:
			pt = sig.Params().At(i).Type()
		}
		boxAt(info, arg, pt, "call argument", add)
	}
}

// boxAtReturn checks each returned expression against the innermost
// function's result types.
func boxAtReturn(info *types.Info, ret *ast.ReturnStmt, stack []ast.Node, add func(token.Pos, string)) {
	var sig *types.Signature
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			if obj, ok := info.Defs[fn.Name].(*types.Func); ok {
				sig, _ = obj.Type().(*types.Signature)
			}
		case *ast.FuncLit:
			sig, _ = info.TypeOf(fn).(*types.Signature)
		}
		if sig != nil {
			break
		}
	}
	if sig == nil || sig.Results().Len() != len(ret.Results) {
		return
	}
	for i, r := range ret.Results {
		boxAt(info, r, sig.Results().At(i).Type(), "return", add)
	}
}

// boxAt reports a finding when expr's concrete, allocation-requiring
// value meets an interface-typed destination.
func boxAt(info *types.Info, expr ast.Expr, dst types.Type, ctx string, add func(token.Pos, string)) {
	if dst == nil {
		return
	}
	if _, ok := dst.Underlying().(*types.Interface); !ok {
		return
	}
	tv, ok := info.Types[expr]
	if !ok || tv.Value != nil {
		return
	}
	src := tv.Type
	if src == nil || !boxAllocates(src) {
		return
	}
	add(expr.Pos(), fmt.Sprintf("%s boxes %s into %s — the implicit interface conversion allocates; pass a pointer or restructure", ctx, typeLabel(src), typeLabel(dst)))
}

// boxAllocates reports whether storing a value of type t in an interface
// heap-allocates: word-sized reference types (pointers, chans, maps,
// funcs, unsafe pointers) and nil do not; everything else does.
func boxAllocates(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Interface, *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	case *types.Basic:
		return u.Kind() != types.UnsafePointer && u.Kind() != types.UntypedNil
	}
	return true
}

// typeLabel renders a type with package-name qualifiers ("deploy.Chooser"
// rather than the full import path) for readable diagnostics.
func typeLabel(t types.Type) string {
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}
