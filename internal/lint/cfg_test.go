package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseFuncBody parses a function body for CFG tests and returns the
// fileset (for line lookups), the declaration, and its built CFG.
func parseFuncBody(t *testing.T, body string) (*token.FileSet, *ast.FuncDecl, *CFG) {
	t.Helper()
	src := "package p\n\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	decl := f.Decls[0].(*ast.FuncDecl)
	return fset, decl, buildCFG(decl.Body)
}

// depthAtLine queries the loop depth of the first statement-start byte on
// a given source line of the synthesized file.
func depthAtLine(t *testing.T, fset *token.FileSet, decl *ast.FuncDecl, g *CFG, marker string, src string) int {
	t.Helper()
	idx := strings.Index(src, marker)
	if idx < 0 {
		t.Fatalf("marker %q not in source", marker)
	}
	var pos token.Pos
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if n == nil || pos != token.NoPos {
			return false
		}
		if fset.Position(n.Pos()).Offset >= idx && pos == token.NoPos {
			pos = n.Pos()
			return false
		}
		return true
	})
	if pos == token.NoPos {
		t.Fatalf("no node at marker %q", marker)
	}
	return g.LoopDepthAt(pos)
}

// TestCFGLoopDepth pins the natural-loop detection across the statement
// shapes the hot rules care about: straight-line code is depth 0, for
// and range bodies depth 1, nesting accumulates, and code after a loop
// returns to depth 0.
func TestCFGLoopDepth(t *testing.T) {
	body := `	a := 0
	for i := 0; i < 10; i++ {
		a += i
		for _, v := range []int{1, 2} {
			a += v
		}
	}
	a *= 2
	for a > 0 {
		a--
	}
	_ = a`
	fset, decl, g := parseFuncBody(t, body)

	cases := []struct {
		marker string
		want   int
	}{
		{"a := 0", 0},
		{"a += i", 1},
		{"a += v", 2},
		{"a *= 2", 0},
		{"a--", 1},
		{"_ = a", 0},
	}
	full := "package p\n\nfunc f() {\n" + body + "\n}\n"
	for _, tc := range cases {
		if got := depthAtLine(t, fset, decl, g, tc.marker, full); got != tc.want {
			t.Errorf("loop depth at %q = %d, want %d", tc.marker, got, tc.want)
		}
	}
	if got := g.maxLoopDepth(); got != 2 {
		t.Errorf("maxLoopDepth = %d, want 2", got)
	}
}

// TestCFGSwitchAndSelectNotLoops pins that branching constructs do not
// count as loops: a switch case body and a select body are depth 0, but
// the same constructs inside a for are depth 1.
func TestCFGSwitchAndSelectNotLoops(t *testing.T) {
	body := `	a := 0
	switch a {
	case 0:
		a = 1
	default:
		a = 2
	}
	ch := make(chan int)
	select {
	case v := <-ch:
		a = v
	default:
		a = 3
	}
	for i := 0; i < 3; i++ {
		switch i {
		case 1:
			a += i
		}
	}
	_ = a`
	fset, decl, g := parseFuncBody(t, body)
	full := "package p\n\nfunc f() {\n" + body + "\n}\n"

	for _, tc := range []struct {
		marker string
		want   int
	}{
		{"a = 1", 0},
		{"a = 2", 0},
		{"a = v", 0},
		{"a = 3", 0},
		{"a += i", 1},
	} {
		if got := depthAtLine(t, fset, decl, g, tc.marker, full); got != tc.want {
			t.Errorf("loop depth at %q = %d, want %d", tc.marker, got, tc.want)
		}
	}
}

// TestCFGLabeledBreak pins break/continue edge targets: code after a
// labeled break out of a nested loop is back at depth 0, and the loop
// bodies keep their depths despite the branches.
func TestCFGLabeledBreak(t *testing.T) {
	body := `	a := 0
outer:
	for i := 0; i < 10; i++ {
		for j := 0; j < 10; j++ {
			if j == 5 {
				break outer
			}
			if j == 3 {
				continue
			}
			a += j
		}
	}
	_ = a`
	fset, decl, g := parseFuncBody(t, body)
	full := "package p\n\nfunc f() {\n" + body + "\n}\n"

	for _, tc := range []struct {
		marker string
		want   int
	}{
		{"a += j", 2},
		{"_ = a", 0},
	} {
		if got := depthAtLine(t, fset, decl, g, tc.marker, full); got != tc.want {
			t.Errorf("loop depth at %q = %d, want %d", tc.marker, got, tc.want)
		}
	}
}

// TestInnermostFuncNode pins that closures reset the loop count: a
// position inside a FuncLit resolves to the literal, not the enclosing
// declaration, so a defer at the top level of a closure defined inside a
// loop is not "in a loop" from the closure's own perspective.
func TestInnermostFuncNode(t *testing.T) {
	src := `package p

func f() {
	for i := 0; i < 3; i++ {
		g := func() int {
			x := i
			return x
		}
		_ = g
	}
}`
	fset, _ := token.NewFileSet(), 0
	file, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	decl := file.Decls[0].(*ast.FuncDecl)
	var lit *ast.FuncLit
	var inner token.Pos
	ast.Inspect(decl, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			lit = fl
		}
		if as, ok := n.(*ast.AssignStmt); ok {
			if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name == "x" {
				inner = as.Pos()
			}
		}
		return true
	})
	if lit == nil || inner == token.NoPos {
		t.Fatal("fixture shape not found")
	}

	if got := innermostFuncNode(decl, inner); got != ast.Node(lit) {
		t.Errorf("innermostFuncNode(x := i) = %T, want the FuncLit", got)
	}
	// Inside the closure the assignment is at depth 0 — the enclosing
	// for loop belongs to f's CFG, not the closure's.
	g := buildCFG(lit.Body)
	if got := g.LoopDepthAt(inner); got != 0 {
		t.Errorf("closure-internal loop depth = %d, want 0", got)
	}
	// From f's own CFG, the assignment to g is at depth 1.
	fg := buildCFG(decl.Body)
	if got := fg.LoopDepthAt(lit.Pos()); got != 1 {
		t.Errorf("closure literal's depth in f = %d, want 1", got)
	}
}
