package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Hotness is the second interprocedural fact the engine computes, next to
// taint: is a function reachable from the simulator's per-tick loops? Two
// doc-comment directives define the frontier:
//
//	//lint:hotroot — reason     (reason optional)
//	//lint:cold — reason        (reason mandatory)
//
// A hotroot declares a per-tick entry point (the campaign lane's tick
// loop, the crowd registry's Advance, the RAN UE step). Hotness then
// propagates through the existing call graph to a fixed point: everything
// a hot function calls is hot, except functions marked cold. Cold is the
// amortization barrier — a function that runs once per test or per
// campaign rather than once per tick (startTest, finishTest) stops
// propagation, with a mandatory reason because, like //lint:allow, it
// weakens the analysis. Indirect calls (function values, interface
// methods) carry no edge, which makes stored callbacks like OnMeasure
// natural amortization boundaries too.
//
// The hot-path rules (hotalloc, hotbox, hotdefer) only look inside hot
// functions, so the cost of a finding is always explainable as "this runs
// every 50 ms" — and every finding carries the root chain that proves it.

// Directive verbs recognized in function doc comments.
const (
	hotrootVerb = "hotroot"
	coldVerb    = "cold"
)

// parseHotMark splits a //lint:hotroot or //lint:cold comment. ok is
// false when the comment is not one of the two hot-path verbs; errMsg is
// non-empty when it is one but malformed (cold without a reason).
func parseHotMark(text string) (verb, reason string, ok bool, errMsg string) {
	body, isLine := strings.CutPrefix(text, "//")
	if !isLine {
		return "", "", false, ""
	}
	body = strings.TrimSpace(body)
	for _, v := range []string{coldVerb, hotrootVerb} {
		rest, has := strings.CutPrefix(body, "lint:"+v)
		if !has || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
			continue
		}
		reason = strings.TrimSpace(rest)
		for _, sep := range []string{"—", "--", "-"} {
			if cut, found := strings.CutPrefix(reason, sep); found {
				reason = strings.TrimSpace(cut)
				break
			}
		}
		if v == coldVerb && reason == "" {
			return v, "", true, "lint:cold needs a reason: //lint:cold — reason (it stops hotness propagation)"
		}
		return v, reason, true, ""
	}
	return "", "", false, ""
}

// collectHotMarks reads each declared function's doc comment for hotroot
// and cold marks. Placement and well-formedness are enforced separately
// by collectDirectives, so a malformed mark is both ignored here and
// reported there.
func (a *Analysis) collectHotMarks() {
	for _, fi := range a.funcs {
		if fi.decl.Doc == nil {
			continue
		}
		for _, c := range fi.decl.Doc.List {
			verb, _, ok, errMsg := parseHotMark(c.Text)
			if !ok || errMsg != "" {
				continue
			}
			switch verb {
			case hotrootVerb:
				fi.hotRoot = true
			case coldVerb:
				fi.cold = true
			}
		}
	}
}

// propagateHot runs a breadth-first closure from the declared roots over
// the call graph. BFS keeps every provenance chain shortest-in-hops, and
// both the root list and each callee expansion are processed in the
// engine's sorted function order, so chains are deterministic. Cold
// functions neither become hot nor propagate. Monotone (hot bits only
// turn on), so one pass per frontier suffices.
func (a *Analysis) propagateHot() {
	var queue []*funcInfo
	for _, fi := range a.funcs {
		if fi.hotRoot && !fi.cold {
			fi.hot = true
			fi.hotWhy = shortFuncName(fi.obj)
			queue = append(queue, fi)
		}
	}
	for len(queue) > 0 {
		fi := queue[0]
		queue = queue[1:]
		for _, callee := range a.Callees(fi.obj) {
			cf := a.byObj[callee]
			if cf == nil || cf.hot || cf.cold {
				continue
			}
			cf.hot = true
			cf.hotWhy = chain(shortFuncName(callee), fi.hotWhy)
			queue = append(queue, cf)
		}
	}
}

// HotPath exposes the hotness facts to rules and tests: whether fn is on
// a hot path and the call chain back to its root (innermost first).
func (a *Analysis) HotPath(fn *types.Func) (hot bool, why string) {
	fi := a.byObj[origin(fn)]
	if fi == nil {
		return false, ""
	}
	return fi.hot, fi.hotWhy
}

// ColdMarked reports whether fn carries a //lint:cold barrier (tests).
func (a *Analysis) ColdMarked(fn *types.Func) bool {
	fi := a.byObj[origin(fn)]
	return fi != nil && fi.cold
}

// shortFuncName renders a function for provenance chains: "Advance" for
// package-level functions, "Registry.Advance" for methods — short enough
// to chain, unambiguous enough to find.
func shortFuncName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return fn.Name()
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name() + "." + fn.Name()
	}
	return fn.Name()
}

// loopDepthAt reports how many loops enclose pos inside fi, measured in
// the innermost containing function body (closures reset the count) via
// a lazily built, cached CFG.
func (a *Analysis) loopDepthAt(fi *funcInfo, pos token.Pos) int {
	g := a.cfgOf(innermostFuncNode(fi.decl, pos))
	if g == nil {
		return 0
	}
	return g.LoopDepthAt(pos)
}

// cfgOf returns the cached CFG for a function-like node (FuncDecl or
// FuncLit), building it on first use. Shared by the hot-path loop-depth
// queries and the path-sensitive rules (lockhold, resleak).
func (a *Analysis) cfgOf(fn ast.Node) *CFG {
	body := bodyOf(fn)
	if body == nil {
		return nil
	}
	if a.cfgs == nil {
		a.cfgs = map[ast.Node]*CFG{}
	}
	g := a.cfgs[fn]
	if g == nil {
		g = buildCFG(body)
		a.cfgs[fn] = g
	}
	return g
}
