package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// UnitsRule is dimensional sanity for KPI math: identifiers in this
// repository carry their unit as a CamelCase suffix (rttMs, budgetSec,
// throughputMbps, rsrpDbm), and adding or comparing two values whose
// suffixes name different units of the same dimension (Ms vs Sec, Mbps
// vs Bps, Dbm vs Db) is almost always a missing conversion — the kind of
// silent scale mix that corrupts a correlation table without failing any
// test. Multiplication and division are exempt: they are how conversions
// are written. The check is lexical by design; it cannot prove units
// right, only catch declared ones colliding.
type UnitsRule struct{}

func (UnitsRule) Name() string { return "units" }

func (UnitsRule) Doc() string {
	return "flag +,-,comparison, and assignment mixing identifiers with conflicting unit suffixes (Ms/Sec, Mbps/Bps, Dbm/Db)"
}

// unitSuffixes maps a CamelCase identifier suffix to its (dimension,
// canonical unit). Suffixes within one dimension conflict unless they
// normalize to the same unit; suffixes of different dimensions never
// conflict (that mix is a type error a lexical rule cannot adjudicate).
var unitSuffixes = map[string][2]string{
	"Ns": {"time", "ns"}, "Nanos": {"time", "ns"},
	"Us": {"time", "us"}, "Micros": {"time", "us"},
	"Ms": {"time", "ms"}, "Msec": {"time", "ms"}, "Millis": {"time", "ms"},
	"Sec": {"time", "s"}, "Secs": {"time", "s"}, "Seconds": {"time", "s"},
	"Bps": {"rate", "bps"}, "Kbps": {"rate", "kbps"},
	"Mbps": {"rate", "mbps"}, "Gbps": {"rate", "gbps"},
	"Db": {"power", "db"}, "Dbm": {"power", "dbm"},
	"Km": {"distance", "km"}, "Meters": {"distance", "m"}, "Mi": {"distance", "mi"},
	"Hz": {"freq", "hz"}, "Khz": {"freq", "khz"},
	"Mhz": {"freq", "mhz"}, "Ghz": {"freq", "ghz"},
}

// mixableOps are the operators where operands must share a unit.
// * and / are exempt — they are how unit conversions are spelled.
var mixableOps = map[token.Token]bool{
	token.ADD: true, token.SUB: true,
	token.LSS: true, token.GTR: true, token.LEQ: true, token.GEQ: true,
	token.EQL: true, token.NEQ: true,
}

func (UnitsRule) Check(p *Package, r *Reporter) {
	if !underSim(p.Rel) {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if !mixableOps[n.Op] {
					return true
				}
				reportUnitMix(r, n.OpPos, n.Op.String(), n.X, n.Y)
			case *ast.AssignStmt:
				if n.Tok != token.ASSIGN && n.Tok != token.ADD_ASSIGN && n.Tok != token.SUB_ASSIGN {
					return true
				}
				for i, lhs := range n.Lhs {
					if i < len(n.Rhs) {
						reportUnitMix(r, n.TokPos, n.Tok.String(), lhs, n.Rhs[i])
					}
				}
			}
			return true
		})
	}
}

// reportUnitMix flags one operand pair whose unit suffixes conflict.
func reportUnitMix(r *Reporter, pos token.Pos, op string, a, b ast.Expr) {
	nameA, dimA, unitA := operandUnit(a)
	nameB, dimB, unitB := operandUnit(b)
	if dimA == "" || dimA != dimB || unitA == unitB {
		return
	}
	r.Reportf(pos, "%q mixes %s (%s) with %s (%s); convert to one %s unit before combining", op, nameA, unitA, nameB, unitB, dimA)
}

// operandUnit extracts the unit carried by an operand's name: the
// identifier itself, a selected field, or the called function's name.
func operandUnit(e ast.Expr) (name, dim, unit string) {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		name = x.Name
	case *ast.SelectorExpr:
		name = x.Sel.Name
	case *ast.CallExpr:
		switch fun := ast.Unparen(x.Fun).(type) {
		case *ast.Ident:
			name = fun.Name
		case *ast.SelectorExpr:
			name = fun.Sel.Name
		}
	}
	if name == "" {
		return "", "", ""
	}
	dim, unit = unitOf(name)
	return name, dim, unit
}

// unitOf matches the longest known CamelCase unit suffix of name. The
// character before the suffix must not be lowercase-continuing into it:
// the suffix has to be its own word, so "elapsedMs" carries ms but
// "plasma" does not carry "Ms".
func unitOf(name string) (dim, unit string) {
	best := ""
	for suf := range unitSuffixes {
		if len(suf) <= len(best) || !strings.HasSuffix(name, suf) {
			continue
		}
		best = suf
	}
	if best == "" {
		return "", ""
	}
	du := unitSuffixes[best]
	return du[0], du[1]
}
