package lint

import (
	"go/ast"
	"go/types"
)

// TimeTaintRule closes the hole the nondet rule's internal/obs exemption
// opened: obs may read the wall clock, but nothing wall-clock-derived may
// flow back out of it into simulation or dataset code — through return
// values or through struct fields. The rule asks the interprocedural
// engine's taint summaries the transitive question per call site: a sim
// package calling a function that (through any chain of calls) returns a
// time.Now/Since/Until-derived value is flagged, as is reading a struct
// field some obs-side code stamps with one. Pure writes into obs
// (Counter.Add, Gauge.Set, StartPhase's returned closure) return nothing
// tainted and stay clean. Direct time.Now in sim code is nondet's
// finding, not this rule's — the two partition the hazard between them.
type TimeTaintRule struct{}

func (TimeTaintRule) Name() string { return "timetaint" }

func (TimeTaintRule) Doc() string {
	return "flag wall-clock-derived values escaping internal/obs into simulation code via returns or struct fields"
}

func (TimeTaintRule) CheckModule(a *Analysis, report ReportFunc) {
	for _, p := range a.Pkgs {
		if !underSim(p.Rel) || p.Rel == obsPackage {
			continue
		}
		checkTaintSites(a, p, report)
	}
}

// checkTaintSites flags, inside one clean package, every materialization
// of a tainted value: calls whose summary says "returns taint" and reads
// of tainted struct fields.
func checkTaintSites(a *Analysis, p *Package, report ReportFunc) {
	inspectWithStack(p, func(n ast.Node, stack []ast.Node) {
		switch n := n.(type) {
		case *ast.CallExpr:
			fn := origin(calleeFunc(p.Info, n))
			if fn == nil {
				return
			}
			fi := a.byObj[fn]
			if fi == nil || !fi.returnsTaint {
				return
			}
			report(p, n.Pos(), "%s returns a wall-clock-derived value (%s); simulation code must not consume it — keep wall time write-only inside internal/obs", fn.Name(), fi.why)
		case *ast.SelectorExpr:
			sel, ok := p.Info.Selections[n]
			if !ok || sel.Kind() != types.FieldVal {
				return
			}
			v, ok := sel.Obj().(*types.Var)
			if !ok {
				return
			}
			why, tainted := a.taintedFields[v]
			if !tainted || isAssignTarget(stack, n) {
				return
			}
			report(p, n.Pos(), "field %s holds a wall-clock-derived value (%s); simulation code must not read it back", v.Name(), why)
		}
	})
}

// isAssignTarget reports whether expr is a left-hand side of the nearest
// enclosing assignment — a write, which the write-site rules own, rather
// than a read of the tainted value.
func isAssignTarget(stack []ast.Node, expr ast.Expr) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		as, ok := stack[i].(*ast.AssignStmt)
		if !ok {
			continue
		}
		for _, lhs := range as.Lhs {
			if containsNode(lhs, expr) {
				return true
			}
		}
		return false
	}
	return false
}

// containsNode reports whether needle appears within root.
func containsNode(root ast.Node, needle ast.Node) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if n == needle {
			found = true
		}
		return !found
	})
	return found
}
