package lint

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestSARIFShape validates the report against the SARIF 2.1.0 envelope
// shape CI scanners require: schema/version header, a tool driver with
// the rule index, and one result per diagnostic with a physical
// location. The document is round-tripped through a schemaless decode so
// the assertions check the serialized JSON, not our own structs.
func TestSARIFShape(t *testing.T) {
	diags := Run(loadFixturePkgsT(t, "units"), []Rule{UnitsRule{}})
	if len(diags) == 0 {
		t.Fatal("units fixture produced no diagnostics")
	}
	out, err := SARIFReport(diags, AllRules())
	if err != nil {
		t.Fatal(err)
	}

	var doc map[string]any
	if err := json.Unmarshal(out, &doc); err != nil {
		t.Fatalf("SARIF output is not valid JSON: %v", err)
	}
	if got := doc["$schema"]; got != sarifSchema {
		t.Errorf("$schema = %v, want %v", got, sarifSchema)
	}
	if got := doc["version"]; got != "2.1.0" {
		t.Errorf("version = %v, want 2.1.0", got)
	}

	runs, ok := doc["runs"].([]any)
	if !ok || len(runs) != 1 {
		t.Fatalf("runs = %v, want exactly one run", doc["runs"])
	}
	run := runs[0].(map[string]any)
	driver := run["tool"].(map[string]any)["driver"].(map[string]any)
	if driver["name"] != "lintwheels" {
		t.Errorf("driver name = %v, want lintwheels", driver["name"])
	}
	rules := driver["rules"].([]any)
	if len(rules) != len(AllRules())+1 {
		t.Errorf("driver rules = %d entries, want %d (AllRules + directive)", len(rules), len(AllRules())+1)
	}
	for _, r := range rules {
		meta := r.(map[string]any)
		if meta["id"] == "" || meta["shortDescription"].(map[string]any)["text"] == "" {
			t.Errorf("rule meta missing id or shortDescription: %v", meta)
		}
	}

	results := run["results"].([]any)
	if len(results) != len(diags) {
		t.Fatalf("results = %d, want %d (one per diagnostic)", len(results), len(diags))
	}
	first := results[0].(map[string]any)
	if first["ruleId"] != diags[0].Rule {
		t.Errorf("ruleId = %v, want %v", first["ruleId"], diags[0].Rule)
	}
	if first["level"] != "error" {
		t.Errorf("level = %v, want error", first["level"])
	}
	if first["message"].(map[string]any)["text"] != diags[0].Msg {
		t.Errorf("message.text = %v, want %v", first["message"], diags[0].Msg)
	}
	loc := first["locations"].([]any)[0].(map[string]any)["physicalLocation"].(map[string]any)
	if uri := loc["artifactLocation"].(map[string]any)["uri"]; uri != diags[0].Pos.Filename {
		t.Errorf("artifactLocation.uri = %v, want %v", uri, diags[0].Pos.Filename)
	}
	region := loc["region"].(map[string]any)
	if int(region["startLine"].(float64)) != diags[0].Pos.Line ||
		int(region["startColumn"].(float64)) != diags[0].Pos.Column {
		t.Errorf("region = %v, want %d:%d", region, diags[0].Pos.Line, diags[0].Pos.Column)
	}
}

// TestSARIFAndJSONStable pins that both machine formats are a pure
// function of the diagnostics — rendering twice gives identical bytes.
func TestSARIFAndJSONStable(t *testing.T) {
	diags := Run(loadFixturePkgsT(t, "units"), []Rule{UnitsRule{}})
	s1, err := SARIFReport(diags, AllRules())
	if err != nil {
		t.Fatal(err)
	}
	s2, _ := SARIFReport(diags, AllRules())
	if !bytes.Equal(s1, s2) {
		t.Error("SARIF output not stable across renders")
	}
	j1, err := JSONReport(diags)
	if err != nil {
		t.Fatal(err)
	}
	j2, _ := JSONReport(diags)
	if !bytes.Equal(j1, j2) {
		t.Error("JSON output not stable across renders")
	}
	var rep jsonReport
	if err := json.Unmarshal(j1, &rep); err != nil {
		t.Fatalf("JSON report does not round-trip: %v", err)
	}
	if rep.Count != len(diags) || len(rep.Findings) != len(diags) {
		t.Errorf("JSON report count = %d/%d findings, want %d", rep.Count, len(rep.Findings), len(diags))
	}
}
