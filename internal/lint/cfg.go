package lint

import (
	"go/ast"
	"go/token"
)

// This file is the flow-sensitive layer under the hot-path rules: a
// statement-level control-flow graph per function body, with natural-loop
// detection. The hot rules only ever ask one question of it — "how many
// loops enclose this position?" — which is what turns "defer in a hot
// function" into the much sharper "defer that accumulates once per
// iteration" and lets hotalloc say "inside a loop" when it matters.
//
// The builder decomposes compound statements (if/for/range/switch/select,
// labeled break/continue/goto) into basic blocks and edges; loop
// membership comes from the classical construction: a DFS finds back
// edges, and each back edge's natural loop is the header plus everything
// that reaches the edge's tail without passing through the header. A
// block's depth is the number of distinct loop headers whose loop
// contains it, so nesting sums naturally. Closure bodies are opaque here:
// a FuncLit is a leaf of its enclosing function's graph and gets a graph
// of its own, because a defer inside a closure unwinds at the closure's
// return, not the enclosing loop's.

// cfgBlock is one basic block: the leaf statements and header
// expressions anchored to it, its successor edges, and — after
// markLoops — its loop-nesting depth.
type cfgBlock struct {
	id    int
	nodes []ast.Node
	succs []*cfgBlock
	depth int
}

func (b *cfgBlock) add(n ast.Node) {
	if n != nil {
		b.nodes = append(b.nodes, n)
	}
}

// CFG is one function body's control-flow graph.
type CFG struct {
	entry  *cfgBlock
	blocks []*cfgBlock
}

// buildCFG constructs the graph for one function or closure body.
func buildCFG(body *ast.BlockStmt) *CFG {
	g := &CFG{}
	b := &cfgBuilder{g: g, labels: map[string]*cfgBlock{}}
	g.entry = b.newBlock()
	b.stmtList(g.entry, body.List)
	b.resolveGotos()
	g.markLoops()
	return g
}

// LoopDepthAt reports how many loops enclose pos: the depth of the block
// holding the narrowest anchored node that spans pos, or 0 when pos is
// not inside this body.
func (g *CFG) LoopDepthAt(pos token.Pos) int {
	depth := 0
	bestSize := token.Pos(1) << 62
	for _, b := range g.blocks {
		for _, n := range b.nodes {
			if n.Pos() <= pos && pos < n.End() {
				if size := n.End() - n.Pos(); size < bestSize {
					bestSize, depth = size, b.depth
				}
			}
		}
	}
	return depth
}

// locate finds the block and node index anchoring n, by node identity.
// The path-sensitive rules (lockhold, resleak) use it as the start of a
// forward walk. Returns (nil, 0) when n is not an anchored node — e.g. a
// statement nested inside another leaf — in which case callers stay
// silent rather than guess.
func (g *CFG) locate(n ast.Node) (*cfgBlock, int) {
	for _, b := range g.blocks {
		for i, m := range b.nodes {
			if m == n {
				return b, i
			}
		}
	}
	return nil, 0
}

// maxLoopDepth reports the deepest nesting anywhere in the body (tests).
func (g *CFG) maxLoopDepth() int {
	max := 0
	for _, b := range g.blocks {
		if b.depth > max {
			max = b.depth
		}
	}
	return max
}

// loopFrame is one enclosing breakable construct during the build.
// Loops accept both break and continue; switch/select frames only break.
type loopFrame struct {
	label   string
	breakTo *cfgBlock
	contTo  *cfgBlock
	isLoop  bool
}

type pendingGoto struct {
	from  *cfgBlock
	label string
}

type cfgBuilder struct {
	g      *CFG
	frames []loopFrame
	labels map[string]*cfgBlock
	gotos  []pendingGoto
	// pendingLabel names the loop/switch statement about to be built, so
	// labeled break/continue resolve to the right frame.
	pendingLabel string
	// fallTo is the next case block while building a switch clause.
	fallTo *cfgBlock
}

func (b *cfgBuilder) newBlock() *cfgBlock {
	blk := &cfgBlock{id: len(b.g.blocks)}
	b.g.blocks = append(b.g.blocks, blk)
	return blk
}

// edge connects from to to; a nil from means the predecessor terminated
// (return/branch), so there is nothing to connect.
func edge(from, to *cfgBlock) {
	if from != nil && to != nil {
		from.succs = append(from.succs, to)
	}
}

func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *cfgBuilder) stmtList(cur *cfgBlock, list []ast.Stmt) *cfgBlock {
	for _, s := range list {
		cur = b.stmt(cur, s)
	}
	return cur
}

// stmt threads one statement through the graph and returns the block
// control falls out of, or nil when control never falls through.
func (b *cfgBuilder) stmt(cur *cfgBlock, s ast.Stmt) *cfgBlock {
	if cur == nil {
		// Unreachable code still gets blocks so position queries resolve.
		cur = b.newBlock()
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		return b.stmtList(cur, s.List)

	case *ast.IfStmt:
		b.takeLabel()
		if s.Init != nil {
			cur.add(s.Init)
		}
		cur.add(s.Cond)
		join := b.newBlock()
		then := b.newBlock()
		edge(cur, then)
		edge(b.stmt(then, s.Body), join)
		if s.Else != nil {
			els := b.newBlock()
			edge(cur, els)
			edge(b.stmt(els, s.Else), join)
		} else {
			edge(cur, join)
		}
		return join

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			cur.add(s.Init)
		}
		header := b.newBlock()
		edge(cur, header)
		if s.Cond != nil {
			header.add(s.Cond)
		}
		exit := b.newBlock()
		if s.Cond != nil {
			edge(header, exit)
		}
		post := b.newBlock()
		if s.Post != nil {
			post.add(s.Post)
		}
		edge(post, header)
		body := b.newBlock()
		edge(header, body)
		b.frames = append(b.frames, loopFrame{label: label, breakTo: exit, contTo: post, isLoop: true})
		edge(b.stmt(body, s.Body), post)
		b.frames = b.frames[:len(b.frames)-1]
		return exit

	case *ast.RangeStmt:
		label := b.takeLabel()
		cur.add(s.X) // the ranged expression is evaluated once, up front
		header := b.newBlock()
		edge(cur, header)
		exit := b.newBlock()
		edge(header, exit)
		body := b.newBlock()
		edge(header, body)
		b.frames = append(b.frames, loopFrame{label: label, breakTo: exit, contTo: header, isLoop: true})
		edge(b.stmt(body, s.Body), header)
		b.frames = b.frames[:len(b.frames)-1]
		return exit

	case *ast.SwitchStmt:
		return b.switchLike(cur, s.Init, s.Tag, s.Body)

	case *ast.TypeSwitchStmt:
		return b.switchLike(cur, s.Init, nil, s.Body)

	case *ast.SelectStmt:
		label := b.takeLabel()
		join := b.newBlock()
		b.frames = append(b.frames, loopFrame{label: label, breakTo: join})
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			blk := b.newBlock()
			edge(cur, blk)
			if cc.Comm != nil {
				blk.add(cc.Comm)
			}
			edge(b.stmtList(blk, cc.Body), join)
		}
		b.frames = b.frames[:len(b.frames)-1]
		if len(s.Body.List) == 0 {
			edge(cur, join)
		}
		return join

	case *ast.LabeledStmt:
		lb := b.newBlock()
		edge(cur, lb)
		b.labels[s.Label.Name] = lb
		b.pendingLabel = s.Label.Name
		out := b.stmt(lb, s.Stmt)
		b.pendingLabel = ""
		return out

	case *ast.BranchStmt:
		cur.add(s)
		switch s.Tok {
		case token.BREAK:
			edge(cur, b.frameTarget(s.Label, false))
		case token.CONTINUE:
			edge(cur, b.frameTarget(s.Label, true))
		case token.GOTO:
			if s.Label != nil {
				b.gotos = append(b.gotos, pendingGoto{cur, s.Label.Name})
			}
		case token.FALLTHROUGH:
			edge(cur, b.fallTo)
		}
		return nil

	case *ast.ReturnStmt:
		cur.add(s)
		return nil

	default:
		cur.add(s)
		return cur
	}
}

// switchLike builds expression and type switches: every clause hangs off
// the header, fallthrough edges to the next clause, and a missing default
// lets the header fall straight to the join.
func (b *cfgBuilder) switchLike(cur *cfgBlock, init ast.Stmt, tag ast.Expr, body *ast.BlockStmt) *cfgBlock {
	label := b.takeLabel()
	if init != nil {
		cur.add(init)
	}
	if tag != nil {
		cur.add(tag)
	}
	join := b.newBlock()
	b.frames = append(b.frames, loopFrame{label: label, breakTo: join})
	clauses := body.List
	blocks := make([]*cfgBlock, len(clauses))
	hasDefault := false
	for i := range clauses {
		blocks[i] = b.newBlock()
		edge(cur, blocks[i])
	}
	savedFall := b.fallTo
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		for _, e := range cc.List {
			blocks[i].add(e)
		}
		b.fallTo = nil
		if i+1 < len(clauses) {
			b.fallTo = blocks[i+1]
		}
		edge(b.stmtList(blocks[i], cc.Body), join)
	}
	b.fallTo = savedFall
	b.frames = b.frames[:len(b.frames)-1]
	if !hasDefault {
		edge(cur, join)
	}
	return join
}

// frameTarget resolves a break/continue to its frame's target block.
func (b *cfgBuilder) frameTarget(label *ast.Ident, isContinue bool) *cfgBlock {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := b.frames[i]
		if isContinue && !f.isLoop {
			continue
		}
		if label == nil || f.label == label.Name {
			if isContinue {
				return f.contTo
			}
			return f.breakTo
		}
	}
	return nil
}

func (b *cfgBuilder) resolveGotos() {
	for _, pg := range b.gotos {
		edge(pg.from, b.labels[pg.label])
	}
}

// markLoops finds back edges by DFS and assigns each block its
// natural-loop nesting depth.
func (g *CFG) markLoops() {
	const (
		unvisited = iota
		onStack
		done
	)
	state := make([]int, len(g.blocks))
	type backEdge struct{ from, to *cfgBlock }
	var backs []backEdge
	var dfs func(b *cfgBlock)
	dfs = func(b *cfgBlock) {
		state[b.id] = onStack
		for _, s := range b.succs {
			switch state[s.id] {
			case unvisited:
				dfs(s)
			case onStack:
				backs = append(backs, backEdge{b, s})
			}
		}
		state[b.id] = done
	}
	dfs(g.entry)

	preds := make([][]*cfgBlock, len(g.blocks))
	for _, b := range g.blocks {
		for _, s := range b.succs {
			preds[s.id] = append(preds[s.id], b)
		}
	}

	// One loop per header: the union of its back edges' natural loops.
	// Depth increments are commutative, so header order is irrelevant.
	loops := map[*cfgBlock]map[int]bool{}
	for _, be := range backs {
		set := loops[be.to]
		if set == nil {
			set = map[int]bool{be.to.id: true}
			loops[be.to] = set
		}
		var stack []*cfgBlock
		if !set[be.from.id] {
			set[be.from.id] = true
			stack = append(stack, be.from)
		}
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, p := range preds[n.id] {
				if !set[p.id] {
					set[p.id] = true
					stack = append(stack, p)
				}
			}
		}
	}
	for _, set := range loops {
		for id := range set {
			g.blocks[id].depth++
		}
	}
}

// innermostFuncNode returns the narrowest FuncDecl/FuncLit containing
// pos, so loop depth is always measured within the right body — a defer
// inside a closure unwinds at the closure's return, not its definer's.
func innermostFuncNode(decl *ast.FuncDecl, pos token.Pos) ast.Node {
	var best ast.Node = decl
	bestSize := decl.End() - decl.Pos()
	ast.Inspect(decl, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		if lit.Pos() <= pos && pos < lit.End() {
			if size := lit.End() - lit.Pos(); size < bestSize {
				best, bestSize = lit, size
			}
		}
		return true
	})
	return best
}

// bodyOf extracts the body of a function-like node.
func bodyOf(n ast.Node) *ast.BlockStmt {
	switch n := n.(type) {
	case *ast.FuncDecl:
		return n.Body
	case *ast.FuncLit:
		return n.Body
	}
	return nil
}
