package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockHoldRule flags CFG paths that hold a sync.Mutex or sync.RWMutex
// across an operation that can block indefinitely. A critical section
// that parks on a channel, an HTTP round-trip, or a WaitGroup turns one
// slow peer into a pile-up: every other goroutine needing the lock — the
// whole API surface, in a daemon — queues behind it. Lock identity is
// the receiver expression's source form ("s.mu"), which is exactly the
// precision the repository's lock-per-struct idiom needs; a path is held
// from x.Lock() until a matching x.Unlock() (x.RUnlock() for RLock) on
// that path. A deferred unlock keeps the lock held to the function's
// exit, so everything after the defer is still a held region — the
// classic lock-then-defer-then-block wedge. Blocking comes from the same
// lattice as the summaries (conc.go) plus transitively-blocking module
// callees; sync.Cond.Wait is exempt because Wait releases the mutex
// while parked — the worker-pool idiom must pass clean.
type LockHoldRule struct{}

func (LockHoldRule) Name() string { return "lockhold" }

func (LockHoldRule) Doc() string {
	return "flags sync.Mutex/RWMutex critical sections with a CFG path through a blocking operation (channel op, HTTP round-trip, Wait) before the unlock"
}

func (LockHoldRule) CheckModule(a *Analysis, report ReportFunc) {
	for _, fi := range a.funcs {
		if !underSim(fi.pkg.Rel) {
			continue
		}
		for _, unit := range funcUnits(fi.decl) {
			checkLockPaths(a, fi, unit, report)
		}
	}
}

// lockAcq is one x.Lock()/x.RLock() statement.
type lockAcq struct {
	stmt  ast.Stmt
	key   string // receiver expression, e.g. "s.mu"
	rlock bool
}

// checkLockPaths walks forward from each lock acquisition in one
// function-like unit, reporting blocking sites reached while held.
func checkLockPaths(a *Analysis, fi *funcInfo, unit ast.Node, report ReportFunc) {
	body := bodyOf(unit)
	if body == nil {
		return
	}
	var acqs []lockAcq
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // its own unit
		}
		es, ok := n.(*ast.ExprStmt)
		if !ok {
			return true
		}
		if key, rlock, ok := lockCall(fi.pkg.Info, es.X); ok {
			acqs = append(acqs, lockAcq{stmt: es, key: key, rlock: rlock})
		}
		return true
	})
	if len(acqs) == 0 {
		return
	}
	g := a.cfgOf(unit)
	if g == nil {
		return
	}
	for _, acq := range acqs {
		blk, idx := g.locate(acq.stmt)
		if blk == nil {
			continue
		}
		reported := map[token.Pos]bool{}
		visited := map[int]bool{blk.id: true}
		var walk func(b *cfgBlock, start int)
		walk = func(b *cfgBlock, start int) {
			for i := start; i < len(b.nodes); i++ {
				n := b.nodes[i]
				if n != acq.stmt && releasesLock(fi.pkg.Info, n, acq) {
					return
				}
				for _, site := range blockingSitesIn(a, fi.pkg.Info, n) {
					if reported[site.pos] {
						continue
					}
					reported[site.pos] = true
					line := fi.pkg.Fset.Position(acq.stmt.Pos()).Line
					report(fi.pkg, site.pos, "%s (locked at line %d) is held across %s; release the lock before blocking", acq.key, line, site.desc)
				}
			}
			for _, s := range b.succs {
				if !visited[s.id] {
					visited[s.id] = true
					walk(s, 0)
				}
			}
		}
		walk(blk, idx+1)
	}
}

// lockCall matches x.Lock() / x.RLock() on a sync.Mutex or sync.RWMutex
// and returns the lock's identity (the rendered receiver expression).
func lockCall(info *types.Info, e ast.Expr) (key string, rlock bool, ok bool) {
	call, isCall := ast.Unparen(e).(*ast.CallExpr)
	if !isCall {
		return "", false, false
	}
	fn := origin(calleeFunc(info, call))
	if fn == nil || funcPkgPath(fn) != "sync" {
		return "", false, false
	}
	recv := recvTypeName(fn)
	if recv != "Mutex" && recv != "RWMutex" {
		return "", false, false
	}
	if fn.Name() != "Lock" && fn.Name() != "RLock" {
		return "", false, false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	return types.ExprString(sel.X), fn.Name() == "RLock", true
}

// releasesLock reports whether node n releases acq on this path: a
// non-deferred call to the matching Unlock on the same receiver
// expression. A DeferStmt never releases for path purposes — the unlock
// runs at function exit, after everything the walk still visits.
func releasesLock(info *types.Info, n ast.Node, acq lockAcq) bool {
	want := "Unlock"
	if acq.rlock {
		want = "RUnlock"
	}
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		switch m := m.(type) {
		case *ast.FuncLit, *ast.DeferStmt, *ast.GoStmt:
			return false
		case *ast.CallExpr:
			fn := origin(calleeFunc(info, m))
			if fn == nil || funcPkgPath(fn) != "sync" || fn.Name() != want {
				return true
			}
			if sel, ok := ast.Unparen(m.Fun).(*ast.SelectorExpr); ok && types.ExprString(sel.X) == acq.key {
				found = true
			}
		}
		return !found
	})
	return found
}
