package lint

import (
	"go/ast"
	"go/types"
	"sort"
)

// This file is the interprocedural half of the analyzer: a module-wide
// call graph plus per-function dataflow summaries, computed once per Run
// and handed to ModuleRules. Summaries answer transitive questions the
// per-file rules cannot: "does this function return a wall-clock-derived
// value?", "which package-level variables does it (or anything it calls)
// write?", "what does this goroutine capture?". Propagation is a
// fixed-point iteration over a finite monotone lattice — each pass can
// only turn bits on, so it terminates — and every worklist is processed
// in source order so the result (and therefore the diagnostics built
// from it) is deterministic.
//
// Known limitations, deliberate for a stdlib-only analyzer: calls
// through function values, interface methods, and reflection are not
// resolved (no edge, no taint), and pointer aliasing is not tracked.
// The rules built on top are therefore under-approximate: they miss
// exotic flows but do not invent impossible ones.

// Analysis is the module-wide interprocedural state handed to ModuleRules.
type Analysis struct {
	// Pkgs are the packages under analysis, in load order.
	Pkgs []*Package
	// funcs holds one entry per declared function or method with a body,
	// sorted by source position for deterministic iteration.
	funcs []*funcInfo
	// byObj maps the canonical (generic-origin) object to its info.
	byObj map[*types.Func]*funcInfo
	// taintedFields are struct fields that somewhere in the module are
	// assigned a wall-clock-derived value; reading one re-introduces the
	// taint at the read site, which is how taint crosses packages through
	// state rather than return values.
	taintedFields map[*types.Var]string // field -> provenance chain
	// taintedGlobals are package-level variables assigned a wall-clock-
	// derived value anywhere in the module.
	taintedGlobals map[*types.Var]string
	// cfgs caches per-function control-flow graphs, built lazily by
	// loopDepthAt (hot.go). Keyed by *ast.FuncDecl / *ast.FuncLit.
	cfgs map[ast.Node]*CFG
}

// funcInfo is one function's summary.
type funcInfo struct {
	obj  *types.Func
	pkg  *Package
	decl *ast.FuncDecl

	// returnsTaint: some return value is (transitively) derived from a
	// wall-clock read. why is the provenance chain, innermost source
	// last, e.g. "Elapsed ← time.Since".
	returnsTaint bool
	why          string

	// writesGlobals is the set of package-level variables this function
	// writes directly or through anything it (transitively) calls.
	// Writes made inside init functions are initialization, not mutation,
	// and are excluded at collection time.
	writesGlobals map[*types.Var]bool

	// calls are the resolved module-internal callees, deduplicated.
	calls map[*types.Func]bool

	// spawns records each `go` statement in the body.
	spawns []goSpawn

	// hotRoot/cold are the //lint:hotroot and //lint:cold doc directives;
	// hot is the propagated fact (reachable from a root through the call
	// graph without crossing a cold barrier), hotWhy the provenance chain.
	hotRoot bool
	cold    bool
	hot     bool
	hotWhy  string

	// blocks: executing this function can block indefinitely — a channel
	// operation, a select without default, a blocking stdlib call (HTTP
	// round-trip, Accept, Wait), or a callee that does. blocksWhy is the
	// provenance chain. receivesCancel: the function observes a
	// cancellation or join signal (channel op, select, ctx.Done,
	// WaitGroup/Cond) itself or through a callee. Both exclude code inside
	// nested closures and go statements, which run on other goroutines or
	// not at all (see conc.go).
	blocks         bool
	blocksWhy      string
	receivesCancel bool

	// concSites and concCallees are the raw material for the two bits
	// above: direct blocking sites and resolved callees outside nested
	// closures and go statements, in source order.
	concSites   []blockSite
	concCallees []*types.Func
}

// goSpawn is one `go` statement: either a closure with its captured
// variables, or a resolved named callee.
type goSpawn struct {
	stmt *ast.GoStmt
	// lit is non-nil for `go func(){...}()`.
	lit *ast.FuncLit
	// callee is the resolved function for `go f(...)` (nil for closures
	// and unresolvable calls).
	callee *types.Func
	// captured are the enclosing-function variables the closure mentions,
	// sorted by declaration position.
	captured []*types.Var
}

// Summary exposes a function's computed facts to rules and tests.
func (a *Analysis) Summary(fn *types.Func) (returnsTaint bool, why string, writesGlobals []*types.Var) {
	fi := a.byObj[origin(fn)]
	if fi == nil {
		return false, "", nil
	}
	return fi.returnsTaint, fi.why, sortedVars(fi.writesGlobals)
}

// Callees returns fn's resolved module-internal callees in source order
// of first call.
func (a *Analysis) Callees(fn *types.Func) []*types.Func {
	fi := a.byObj[origin(fn)]
	if fi == nil {
		return nil
	}
	out := make([]*types.Func, 0, len(fi.calls))
	for c := range fi.calls {
		out = append(out, c)
	}
	sort.SliceStable(out, func(i, j int) bool { return less(out[i], out[j]) })
	return out
}

// origin canonicalizes generic instantiations to their declaration.
func origin(fn *types.Func) *types.Func {
	if fn == nil {
		return nil
	}
	return fn.Origin()
}

// less orders functions by package path, then name, then position — a
// total order independent of map iteration.
func less(a, b *types.Func) bool {
	pa, pb := funcPkgPath(a), funcPkgPath(b)
	if pa != pb {
		return pa < pb
	}
	if a.FullName() != b.FullName() {
		return a.FullName() < b.FullName()
	}
	return a.Pos() < b.Pos()
}

func sortedVars(set map[*types.Var]bool) []*types.Var {
	out := make([]*types.Var, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		pa, pb := "", ""
		if a.Pkg() != nil {
			pa = a.Pkg().Path()
		}
		if b.Pkg() != nil {
			pb = b.Pkg().Path()
		}
		if pa != pb {
			return pa < pb
		}
		if a.Name() != b.Name() {
			return a.Name() < b.Name()
		}
		return a.Pos() < b.Pos()
	})
	return out
}

// Analyze builds the call graph and runs summary propagation to a fixed
// point over the given packages. Facts about functions whose bodies live
// outside pkgs (e.g. when linting a subtree) are unknown, so
// interprocedural rules are most precise over the whole module.
func Analyze(pkgs []*Package) *Analysis {
	a := &Analysis{
		Pkgs:           pkgs,
		byObj:          map[*types.Func]*funcInfo{},
		taintedFields:  map[*types.Var]string{},
		taintedGlobals: map[*types.Var]string{},
	}
	a.collectFuncs()
	a.collectHotMarks()
	a.propagate()
	a.propagateHot()
	a.propagateConc()
	return a
}

// collectFuncs indexes every declared function with a body and records
// its direct callees and go statements.
func (a *Analysis) collectFuncs() {
	for _, p := range a.Pkgs {
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, _ := p.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				fi := &funcInfo{
					obj:           obj,
					pkg:           p,
					decl:          fd,
					writesGlobals: map[*types.Var]bool{},
					calls:         map[*types.Func]bool{},
				}
				a.funcs = append(a.funcs, fi)
				a.byObj[origin(obj)] = fi
			}
		}
	}
	sort.SliceStable(a.funcs, func(i, j int) bool { return less(a.funcs[i].obj, a.funcs[j].obj) })

	for _, fi := range a.funcs {
		a.scanBody(fi)
		a.scanConc(fi)
	}
}

// scanBody fills fi's call edges, direct global writes, and goroutine
// spawns from one pass over the body.
func (a *Analysis) scanBody(fi *funcInfo) {
	isInit := fi.decl.Recv == nil && fi.decl.Name.Name == "init"
	p := fi.pkg
	ast.Inspect(fi.decl, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if cf := origin(calleeFunc(p.Info, n)); cf != nil {
				fi.calls[cf] = true
			}
		case *ast.GoStmt:
			sp := goSpawn{stmt: n}
			if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
				sp.lit = lit
				sp.captured = capturedVars(p.Info, lit)
			} else {
				sp.callee = origin(calleeFunc(p.Info, n.Call))
			}
			fi.spawns = append(fi.spawns, sp)
		case *ast.AssignStmt:
			if !isInit {
				for _, lhs := range n.Lhs {
					if v := pkgLevelVar(p.Info, lhs); v != nil {
						fi.writesGlobals[v] = true
					}
				}
			}
		case *ast.IncDecStmt:
			if !isInit {
				if v := pkgLevelVar(p.Info, n.X); v != nil {
					fi.writesGlobals[v] = true
				}
			}
		}
		return true
	})
}

// pkgLevelVar resolves an assignment target to the package-level variable
// it mutates (following selectors and indexes to the base), or nil.
func pkgLevelVar(info *types.Info, lhs ast.Expr) *types.Var {
	v, ok := baseObject(info, lhs).(*types.Var)
	if !ok || v.IsField() {
		return nil
	}
	if v.Parent() != nil && v.Parent().Parent() == types.Universe {
		return v
	}
	return nil
}

// capturedVars lists the function-local variables a closure mentions but
// does not declare: the loop/outer variables it captures by reference.
// Package-level variables are globalmut's domain and fields belong to
// their receiver, so both are excluded.
func capturedVars(info *types.Info, lit *ast.FuncLit) []*types.Var {
	seen := map[*types.Var]bool{}
	var out []*types.Var
	ast.Inspect(lit, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() || seen[v] {
			return true
		}
		// Declared inside the closure (param or local) — not a capture.
		if lit.Pos() <= v.Pos() && v.Pos() < lit.End() {
			return true
		}
		// Package-level.
		if v.Parent() != nil && v.Parent().Parent() == types.Universe {
			return true
		}
		seen[v] = true
		out = append(out, v)
		return true
	})
	sort.SliceStable(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}

// propagate runs the fixed-point loop: local taint transfer plus
// transitive closure of global writes, repeated until no summary bit
// changes. Monotone over a finite lattice, so it terminates.
func (a *Analysis) propagate() {
	for changed := true; changed; {
		changed = false
		for _, fi := range a.funcs {
			if a.transferTaint(fi) {
				changed = true
			}
			for callee := range fi.calls {
				cf := a.byObj[callee]
				if cf == nil {
					continue
				}
				for v := range cf.writesGlobals {
					if !fi.writesGlobals[v] {
						fi.writesGlobals[v] = true
						changed = true
					}
				}
			}
		}
	}
}

// wallClockSources are the stdlib entry points that mint wall-clock-
// derived values. (time.Tick and tickers deliver values through channels
// the local transfer does not model; the nondet rule bans constructing
// them in simulation code in the first place.)
func wallClockSource(fn *types.Func) bool {
	if fn == nil || funcPkgPath(fn) != "time" {
		return false
	}
	switch fn.Name() {
	case "Now", "Since", "Until":
		return true
	}
	return false
}

// transferTaint recomputes one function's taint facts from its body and
// the current global state. Returns whether anything changed.
func (a *Analysis) transferTaint(fi *funcInfo) bool {
	tr := &taintTransfer{a: a, fi: fi, local: map[*types.Var]string{}}
	// Named results participate: `defer`d or naked returns flow through them.
	tr.run()
	changed := false
	if tr.returns != "" && !fi.returnsTaint {
		fi.returnsTaint = true
		fi.why = chain(fi.obj.Name(), tr.returns)
		changed = true
	}
	return changed || tr.changedGlobal
}

// chain prepends a hop to a provenance string.
func chain(hop, rest string) string {
	if rest == "" {
		return hop
	}
	return hop + " ← " + rest
}

// taintTransfer is the per-function flow-insensitive taint pass: it
// sweeps the body repeatedly, growing the tainted-variable set until
// stable, recording whether any return value, struct field, or global
// ends up tainted.
type taintTransfer struct {
	a  *Analysis
	fi *funcInfo
	// local maps tainted variables (locals, params, named results) to a
	// provenance chain.
	local         map[*types.Var]string
	returns       string // non-empty once a return value is tainted
	changedGlobal bool   // a field/global gained taint this pass
}

func (t *taintTransfer) run() {
	for changed := true; changed; {
		changed = false
		ast.Inspect(t.fi.decl, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if t.assign(n.Lhs, n.Rhs) {
					changed = true
				}
			case *ast.ValueSpec:
				lhs := make([]ast.Expr, len(n.Names))
				for i, id := range n.Names {
					lhs[i] = id
				}
				if len(n.Values) > 0 && t.assign(lhs, n.Values) {
					changed = true
				}
			case *ast.RangeStmt:
				if t.taintOf(n.X) != "" {
					for _, e := range []ast.Expr{n.Key, n.Value} {
						if e != nil && t.mark(e, t.taintOf(n.X)) {
							changed = true
						}
					}
				}
			case *ast.CompositeLit:
				// Keyed struct literals stamp fields at construction:
				// Recorder{start: now} taints the field module-wide.
				for _, elt := range n.Elts {
					kv, ok := elt.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					key, ok := kv.Key.(*ast.Ident)
					if !ok {
						continue
					}
					why := t.taintOf(kv.Value)
					if why == "" {
						continue
					}
					if v, ok := t.fi.pkg.Info.Uses[key].(*types.Var); ok && v.IsField() {
						if _, done := t.a.taintedFields[v]; !done {
							t.a.taintedFields[v] = why
							t.changedGlobal = true
							changed = true
						}
					}
				}
			case *ast.ReturnStmt:
				for _, r := range n.Results {
					if why := t.taintOf(r); why != "" && t.returns == "" {
						t.returns = why
						changed = true
					}
				}
			case *ast.FuncDecl:
				// Naked returns: tainted named results count as returned.
				if n.Type.Results != nil {
					for _, fld := range n.Type.Results.List {
						for _, name := range fld.Names {
							if v, ok := t.fi.pkg.Info.Defs[name].(*types.Var); ok {
								if why := t.local[v]; why != "" && t.returns == "" {
									t.returns = why
									changed = true
								}
							}
						}
					}
				}
			}
			return true
		})
	}
}

// assign applies one (possibly tuple) assignment's taint transfer.
func (t *taintTransfer) assign(lhs, rhs []ast.Expr) bool {
	changed := false
	if len(lhs) > 1 && len(rhs) == 1 {
		// x, y := call() — taint every target if the call is tainted.
		if why := t.taintOf(rhs[0]); why != "" {
			for _, l := range lhs {
				if t.mark(l, why) {
					changed = true
				}
			}
		}
		return changed
	}
	for i, l := range lhs {
		if i < len(rhs) {
			if why := t.taintOf(rhs[i]); why != "" && t.mark(l, why) {
				changed = true
			}
		}
	}
	return changed
}

// mark taints an assignment target: a local variable, a struct field
// (module-wide effect), or a package-level variable (module-wide effect).
func (t *taintTransfer) mark(lhs ast.Expr, why string) bool {
	switch x := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if v, ok := t.fi.pkg.Info.Defs[x].(*types.Var); ok {
			return t.markVar(v, why)
		}
		if v, ok := t.fi.pkg.Info.Uses[x].(*types.Var); ok {
			return t.markVar(v, why)
		}
	case *ast.SelectorExpr:
		if sel, ok := t.fi.pkg.Info.Selections[x]; ok && sel.Kind() == types.FieldVal {
			if v, ok := sel.Obj().(*types.Var); ok {
				if _, done := t.a.taintedFields[v]; !done {
					t.a.taintedFields[v] = why
					t.changedGlobal = true
					return true
				}
				return false
			}
		}
		// Qualified package-level var: pkg.V = tainted.
		if v, ok := t.fi.pkg.Info.Uses[x.Sel].(*types.Var); ok && !v.IsField() {
			return t.markVar(v, why)
		}
	case *ast.IndexExpr:
		return t.mark(x.X, why)
	case *ast.StarExpr:
		return t.mark(x.X, why)
	}
	return false
}

func (t *taintTransfer) markVar(v *types.Var, why string) bool {
	if v.Parent() != nil && v.Parent().Parent() == types.Universe {
		if _, done := t.a.taintedGlobals[v]; !done {
			t.a.taintedGlobals[v] = why
			t.changedGlobal = true
			return true
		}
		return false
	}
	if _, done := t.local[v]; !done {
		t.local[v] = why
		return true
	}
	return false
}

// taintOf reports the provenance chain of an expression's value, or ""
// when it is clean under the lattice.
func (t *taintTransfer) taintOf(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if v, ok := t.fi.pkg.Info.ObjectOf(x).(*types.Var); ok {
			if why, ok := t.local[v]; ok {
				return why
			}
			if why, ok := t.a.taintedGlobals[v]; ok {
				return why
			}
		}
	case *ast.SelectorExpr:
		if sel, ok := t.fi.pkg.Info.Selections[x]; ok && sel.Kind() == types.FieldVal {
			if v, ok := sel.Obj().(*types.Var); ok {
				if why, ok := t.a.taintedFields[v]; ok {
					return why
				}
			}
			// field of a tainted struct value
			return t.taintOf(x.X)
		}
		if v, ok := t.fi.pkg.Info.Uses[x.Sel].(*types.Var); ok {
			if why, ok := t.a.taintedGlobals[v]; ok {
				return why
			}
		}
	case *ast.CallExpr:
		return t.taintOfCall(x)
	case *ast.BinaryExpr:
		if why := t.taintOf(x.X); why != "" {
			return why
		}
		return t.taintOf(x.Y)
	case *ast.UnaryExpr:
		return t.taintOf(x.X)
	case *ast.StarExpr:
		return t.taintOf(x.X)
	case *ast.IndexExpr:
		return t.taintOf(x.X)
	case *ast.TypeAssertExpr:
		return t.taintOf(x.X)
	}
	return ""
}

// taintOfCall handles the three tainting call shapes: a wall-clock
// source, a module function summarized as returning taint, a conversion
// or method that carries a tainted operand through.
func (t *taintTransfer) taintOfCall(call *ast.CallExpr) string {
	// Conversion: time.Duration(x), float64(d) — taint passes through.
	if tv, ok := t.fi.pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			return t.taintOf(call.Args[0])
		}
		return ""
	}
	fn := origin(calleeFunc(t.fi.pkg.Info, call))
	if wallClockSource(fn) {
		return "time." + fn.Name()
	}
	if fn != nil {
		if fi := t.a.byObj[fn]; fi != nil && fi.returnsTaint {
			return fi.why
		}
	}
	// Method on a tainted receiver (now.Unix(), d.Round(...)) or any
	// call with a tainted argument whose result we must assume derived
	// (now.Sub(start), min(d, cap)).
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if why := t.taintOf(sel.X); why != "" {
			return why
		}
	}
	for _, arg := range call.Args {
		if why := t.taintOf(arg); why != "" {
			// Sinks that consume time without returning it stay clean:
			// a call returning no values cannot propagate.
			if sig, ok := t.fi.pkg.Info.Types[call.Fun].Type.(*types.Signature); ok && sig.Results().Len() == 0 {
				return ""
			}
			return why
		}
	}
	return ""
}
