package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CtxFlowRule is a context taint analysis: a function handed a
// context.Context (or *http.Request, which carries one) has promised its
// caller it can be canceled, so every operation inside it that can block
// indefinitely must be reachable by that context. Taint seeds at the
// carrier parameters and grows flow-insensitively through assignments —
// ctx2 := context.WithTimeout(ctx, d), req := http.NewRequestWithContext
// (ctx, ...) — and a blocking site is clean when a tainted value flows
// into it: a select with a case on a tainted channel (<-ctx.Done()), a
// blocking call with a tainted argument or receiver. Everything else is
// a broken promise: the caller cancels, this function keeps waiting.
//
// The rule also carries one syntactic companion check with the same
// timeout-discipline rationale: an http.Server composite literal without
// ReadHeaderTimeout (or ReadTimeout), which lets one slow-header client
// hold a connection — and any graceful drain — open forever.
//
// Closures and go statements inside the function body are skipped: a
// spawned goroutine outliving the request is goleak's domain, not a
// context-flow violation at this site.
type CtxFlowRule struct{}

func (CtxFlowRule) Name() string { return "ctxflow" }

func (CtxFlowRule) Doc() string {
	return "flags blocking operations in context-bearing functions that the context cannot reach, and http.Server literals without ReadHeaderTimeout"
}

func (CtxFlowRule) CheckModule(a *Analysis, report ReportFunc) {
	for _, fi := range a.funcs {
		if !underSim(fi.pkg.Rel) {
			continue
		}
		tainted := ctxParams(fi.pkg, fi.decl)
		if len(tainted) > 0 {
			growTaint(fi.pkg.Info, fi.decl.Body, tainted)
			checkCtxSites(a, fi, tainted, report)
		}
	}
	for _, p := range a.Pkgs {
		if underSim(p.Rel) {
			checkServerLiterals(p, report)
		}
	}
}

// ctxParams collects the declared carrier parameters: context.Context
// and *http.Request.
func ctxParams(p *Package, decl *ast.FuncDecl) map[types.Object]bool {
	out := map[types.Object]bool{}
	if decl.Type.Params == nil {
		return out
	}
	for _, fld := range decl.Type.Params.List {
		if !ctxCarrierType(p.Info.TypeOf(fld.Type)) {
			continue
		}
		for _, name := range fld.Names {
			if obj := p.Info.Defs[name]; obj != nil {
				out[obj] = true
			}
		}
	}
	return out
}

// ctxCarrierType reports whether t is context.Context or *http.Request.
func ctxCarrierType(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		n, ok := ptr.Elem().(*types.Named)
		return ok && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "net/http" && n.Obj().Name() == "Request"
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "context" && n.Obj().Name() == "Context"
}

// growTaint extends the tainted set through assignments whose right side
// mentions a tainted value, to a fixed point. Flow-insensitive and
// therefore over-approximate about WHAT is tainted — which makes the
// rule under-approximate about what it flags.
func growTaint(info *types.Info, body *ast.BlockStmt, tainted map[types.Object]bool) {
	mark := func(lhs ast.Expr) bool {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			return false
		}
		obj := info.ObjectOf(id)
		if obj == nil || tainted[obj] {
			return false
		}
		tainted[obj] = true
		return true
	}
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit, *ast.GoStmt:
				return false
			case *ast.AssignStmt:
				if len(n.Lhs) > 1 && len(n.Rhs) == 1 {
					if mentionsTainted(info, n.Rhs[0], tainted) {
						for _, l := range n.Lhs {
							changed = mark(l) || changed
						}
					}
					return true
				}
				for i, l := range n.Lhs {
					if i < len(n.Rhs) && mentionsTainted(info, n.Rhs[i], tainted) {
						changed = mark(l) || changed
					}
				}
			case *ast.ValueSpec:
				for i, name := range n.Names {
					if i < len(n.Values) && mentionsTainted(info, n.Values[i], tainted) {
						changed = mark(name) || changed
					}
				}
			}
			return true
		})
	}
}

// mentionsTainted reports whether the subtree uses any tainted object.
func mentionsTainted(info *types.Info, n ast.Node, tainted map[types.Object]bool) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		if id, ok := m.(*ast.Ident); ok && tainted[info.ObjectOf(id)] {
			found = true
		}
		return !found
	})
	return found
}

// checkCtxSites walks the body and reports each blocking site the
// context cannot reach.
func checkCtxSites(a *Analysis, fi *funcInfo, tainted map[types.Object]bool, report ReportFunc) {
	info := fi.pkg.Info
	var comm [][2]token.Pos
	inComm := func(pos token.Pos) bool {
		for _, r := range comm {
			if r[0] <= pos && pos < r[1] {
				return true
			}
		}
		return false
	}
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.SelectStmt:
			covered := false
			for _, c := range n.Body.List {
				cc := c.(*ast.CommClause)
				if cc.Comm == nil {
					covered = true // default: the select cannot block
					continue
				}
				comm = append(comm, [2]token.Pos{cc.Comm.Pos(), cc.Comm.End()})
				if mentionsTainted(info, cc.Comm, tainted) {
					covered = true
				}
			}
			if !covered {
				report(fi.pkg, n.Pos(), "select can block forever in %s, which receives a context; add a <-ctx.Done() case", fi.obj.Name())
			}
		case *ast.SendStmt:
			if !inComm(n.Pos()) && !mentionsTainted(info, n.Chan, tainted) {
				report(fi.pkg, n.Pos(), "channel send can block forever in %s, which receives a context; select on it together with <-ctx.Done()", fi.obj.Name())
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !inComm(n.Pos()) && !mentionsTainted(info, n.X, tainted) {
				report(fi.pkg, n.Pos(), "channel receive can block forever in %s, which receives a context; select on it together with <-ctx.Done()", fi.obj.Name())
			}
		case *ast.RangeStmt:
			if _, ok := typeUnder(info.TypeOf(n.X)).(*types.Chan); ok && !mentionsTainted(info, n.X, tainted) {
				report(fi.pkg, n.Pos(), "range over a channel unrelated to the context in %s; the loop outlives a canceled caller", fi.obj.Name())
			}
		case *ast.CallExpr:
			fn := origin(calleeFunc(info, n))
			if fn == nil {
				break
			}
			desc, _, isBlocking := blockingCall(fn)
			if !isBlocking {
				cf := a.byObj[fn]
				if cf == nil || !cf.blocks {
					break
				}
				desc = "call to " + shortFuncName(fn) + " (" + cf.blocksWhy + ")"
			}
			if ctxReaches(info, n, tainted) {
				break
			}
			report(fi.pkg, n.Pos(), "blocking %s in %s does not receive the function's context", desc, fi.obj.Name())
		}
		return true
	})
}

// ctxReaches reports whether a tainted value flows into the call via an
// argument or the method receiver.
func ctxReaches(info *types.Info, call *ast.CallExpr, tainted map[types.Object]bool) bool {
	for _, arg := range call.Args {
		if mentionsTainted(info, arg, tainted) {
			return true
		}
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return mentionsTainted(info, sel.X, tainted)
	}
	return false
}

// checkServerLiterals flags http.Server composite literals that set
// neither ReadHeaderTimeout nor ReadTimeout.
func checkServerLiterals(p *Package, report ReportFunc) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			named, ok := p.Info.TypeOf(lit).(*types.Named)
			if !ok || named.Obj().Pkg() == nil ||
				named.Obj().Pkg().Path() != "net/http" || named.Obj().Name() != "Server" {
				return true
			}
			for _, e := range lit.Elts {
				kv, ok := e.(*ast.KeyValueExpr)
				if !ok {
					return true // positional literal names every field
				}
				if id, ok := kv.Key.(*ast.Ident); ok &&
					(id.Name == "ReadHeaderTimeout" || id.Name == "ReadTimeout") {
					return true
				}
			}
			report(p, lit.Pos(), "http.Server constructed without ReadHeaderTimeout: one slow-header client holds its connection — and any graceful drain — open forever")
			return true
		})
	}
}
