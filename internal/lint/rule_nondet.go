package lint

import (
	"go/ast"
)

// NondetRule bans ambient sources of nondeterminism — wall-clock reads,
// the process-global math/rand source, and environment lookups — inside
// the simulation packages (module root, internal/, cmd/). A campaign is
// specified to be a pure function of (Config, seed); any of these calls
// makes its output depend on the host instead. Time must come from the
// simulated clock, randomness from internal/simrand, and configuration
// from flags or Config fields.
type NondetRule struct{}

func (NondetRule) Name() string { return "nondet" }

func (NondetRule) Doc() string {
	return "ban time.Now/time.Since, global math/rand, and os.Getenv in simulation packages"
}

// globalRandConstructors are the math/rand entry points that do NOT draw
// from the process-global source; they are seededrand's business, not
// nondet's.
var globalRandConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

// obsPackage is the one simulation-tree package exempt from the nondet
// rule: internal/obs is the observability side channel, and confining
// every wall-clock read to it is exactly what lets the rest of the tree
// stay clean without per-site allows. The exemption is safe because obs
// is write-only — nothing it computes is ever read back into a simulation
// decision — a contract pinned by the obs-on-vs-off byte-identity tests.
const obsPackage = "internal/obs"

func (NondetRule) Check(p *Package, r *Reporter) {
	if !underSim(p.Rel) || p.Rel == obsPackage {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(p.Info, call)
			if fn == nil || !isPkgLevel(fn) {
				return true
			}
			switch funcPkgPath(fn) {
			case "time":
				switch fn.Name() {
				case "Now", "Since", "Until":
					r.Reportf(call.Pos(), "wall-clock time.%s makes the run depend on the host; derive timestamps from the simulated clock", fn.Name())
				}
			case "os":
				switch fn.Name() {
				case "Getenv", "LookupEnv", "Environ":
					r.Reportf(call.Pos(), "os.%s makes the run depend on the host environment; plumb settings through Config or flags", fn.Name())
				}
			case "math/rand", "math/rand/v2":
				if !globalRandConstructors[fn.Name()] {
					r.Reportf(call.Pos(), "global math/rand.%s draws from the process-wide source shared across goroutines; draw from an internal/simrand stream", fn.Name())
				}
			}
			return true
		})
	}
}
