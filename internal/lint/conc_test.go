package lint

import "testing"

// TestConcSummaries pins the concurrency half of the interprocedural
// engine against the rule fixtures: the blocks bit with its provenance
// chain, direct and through a module callee, and the receives-cancel
// bit that separates a joinable goroutine from a leak.
func TestConcSummaries(t *testing.T) {
	t.Run("direct", func(t *testing.T) {
		pkgs := []*Package{loadFixtureT(t, "goleak")}
		a := Analyze(pkgs)
		rel := "internal/fixture/goleak"

		blocks, why := a.Blocking(findFunc(t, pkgs, rel, "", "pump"))
		if !blocks {
			t.Fatal("pump not summarized as blocking")
		}
		if want := "time.Sleep"; why != want {
			t.Errorf("pump provenance = %q, want %q", why, want)
		}
		if a.ReceivesCancel(findFunc(t, pkgs, rel, "", "pump")) {
			t.Error("pump observes no signal but is summarized as cancelable")
		}

		joined := findFunc(t, pkgs, rel, "", "joined")
		if blocks, _ := a.Blocking(joined); !blocks {
			t.Error("joined (Sleep) not summarized as blocking")
		}
		if !a.ReceivesCancel(joined) {
			t.Error("joined signals wg.Done but is not summarized as cancelable")
		}
	})

	t.Run("transitive", func(t *testing.T) {
		pkgs := []*Package{loadFixtureT(t, "lockhold")}
		a := Analyze(pkgs)
		rel := "internal/fixture/lockhold"

		blocks, why := a.Blocking(findFunc(t, pkgs, rel, "S", "Push"))
		if !blocks {
			t.Fatal("Push not summarized as blocking through its callee")
		}
		if want := "S.flush ← channel send"; why != want {
			t.Errorf("Push provenance = %q, want %q", why, want)
		}
	})
}
