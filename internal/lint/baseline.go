package lint

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"github.com/nuwins/cellwheels/internal/atomicio"
)

// Baselines let a new rule land strict on new code while known findings
// are tracked instead of blocking the merge. An entry identifies a
// finding by (file, rule, message) with an occurrence count — line
// numbers are deliberately omitted so unrelated edits above a finding
// do not invalidate the baseline. Two modes:
//
//   - check (lintwheels -baseline f): findings matched by the baseline
//     are suppressed; baseline entries that no longer fire are *stale*
//     and reported as errors, so the file can only shrink over time.
//   - write (lintwheels -baseline f -write-baseline): rewrite the file
//     from the current findings.
//
// The checked-in baseline is expected to be empty at merge; the
// machinery exists so a future rule rollout over a grown module has a
// ratchet, not so today's findings can be parked.

// baselineSchema versions the file format.
const baselineSchema = 1

// BaselineEntry tracks one distinct finding shape and how often it fires.
type BaselineEntry struct {
	File  string `json:"file"`
	Rule  string `json:"rule"`
	Msg   string `json:"msg"`
	Count int    `json:"count"`
}

// Baseline is the on-disk document.
type Baseline struct {
	Schema  int             `json:"schema"`
	Entries []BaselineEntry `json:"entries"`
}

type baselineKey struct{ file, rule, msg string }

// NewBaseline folds diagnostics into a canonical baseline: entries
// sorted by file, rule, message, with per-shape counts.
func NewBaseline(diags []Diagnostic) Baseline {
	counts := map[baselineKey]int{}
	for _, d := range diags {
		counts[baselineKey{d.Pos.Filename, d.Rule, d.Msg}]++
	}
	b := Baseline{Schema: baselineSchema, Entries: []BaselineEntry{}}
	for k, n := range counts {
		b.Entries = append(b.Entries, BaselineEntry{File: k.file, Rule: k.rule, Msg: k.msg, Count: n})
	}
	sort.SliceStable(b.Entries, func(i, j int) bool {
		a, c := b.Entries[i], b.Entries[j]
		if a.File != c.File {
			return a.File < c.File
		}
		if a.Rule != c.Rule {
			return a.Rule < c.Rule
		}
		return a.Msg < c.Msg
	})
	return b
}

// WriteBaseline writes b to path atomically: a failed write leaves the
// previous baseline intact instead of a truncated ratchet file.
func WriteBaseline(path string, b Baseline) error {
	out, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return atomicio.WriteFileBytes(path, 0o644, append(out, '\n'))
}

// LoadBaseline reads a baseline file.
func LoadBaseline(path string) (Baseline, error) {
	var b Baseline
	data, err := os.ReadFile(path)
	if err != nil {
		return b, err
	}
	if err := json.Unmarshal(data, &b); err != nil {
		return b, fmt.Errorf("lint: baseline %s: %w", path, err)
	}
	if b.Schema != baselineSchema {
		return b, fmt.Errorf("lint: baseline %s: schema %d, want %d", path, b.Schema, baselineSchema)
	}
	return b, nil
}

// ApplyBaseline splits diagnostics into surviving (not covered by the
// baseline) and reports the stale entries: baseline shapes that matched
// fewer findings than their count claims. Matching ignores line numbers;
// when a shape fires more often than baselined, the excess findings
// survive (deterministically: diags arrive sorted, the first Count
// matches are absorbed).
func ApplyBaseline(b Baseline, diags []Diagnostic) (surviving []Diagnostic, stale []BaselineEntry) {
	budget := map[baselineKey]int{}
	for _, e := range b.Entries {
		budget[baselineKey{e.File, e.Rule, e.Msg}] += e.Count
	}
	for _, d := range diags {
		k := baselineKey{d.Pos.Filename, d.Rule, d.Msg}
		if budget[k] > 0 {
			budget[k]--
			continue
		}
		surviving = append(surviving, d)
	}
	for _, e := range b.Entries {
		k := baselineKey{e.File, e.Rule, e.Msg}
		if budget[k] > 0 {
			left := e
			left.Count = budget[k]
			stale = append(stale, left)
			budget[k] = 0
		}
	}
	return surviving, stale
}
