package lint

import (
	"go/ast"
)

// GlobalMutRule flags mutation of package-level state from simulation
// code. Package-level variables are process-wide: under concurrent
// operator lanes and fleet workers a write from one run is visible to
// (and races with) every other, so run output stops being a pure
// function of (Config, seed). Declarations and init-function writes are
// initialization, not mutation, and stay legal; lookup tables that are
// only ever read stay legal. The interprocedural summaries close the
// exemption hole: a call from simulation code into an exempt package
// (internal/obs) whose callee transitively writes package-level state is
// flagged at the call site, because the write site itself is outside the
// rule's jurisdiction.
type GlobalMutRule struct{}

func (GlobalMutRule) Name() string { return "globalmut" }

func (GlobalMutRule) Doc() string {
	return "flag writes to package-level mutable state from simulation code, directly or through exempt packages"
}

func (GlobalMutRule) CheckModule(a *Analysis, report ReportFunc) {
	for _, fi := range a.funcs {
		if !underSim(fi.pkg.Rel) || fi.pkg.Rel == obsPackage {
			continue
		}
		if fi.decl.Recv == nil && fi.decl.Name.Name == "init" {
			continue
		}
		checkGlobalWrites(a, fi, report)
	}
}

// checkGlobalWrites walks one simulation function and reports direct
// package-level writes plus calls into exempt code that mutates globals.
func checkGlobalWrites(a *Analysis, fi *funcInfo, report ReportFunc) {
	p := fi.pkg
	ast.Inspect(fi.decl, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if v := pkgLevelVar(p.Info, lhs); v != nil {
					report(p, lhs.Pos(), "write to package-level %s from simulation code; package state outlives the run and races across lanes — hold it in a per-run struct", v.Name())
				}
			}
		case *ast.IncDecStmt:
			if v := pkgLevelVar(p.Info, n.X); v != nil {
				report(p, n.X.Pos(), "write to package-level %s from simulation code; package state outlives the run and races across lanes — hold it in a per-run struct", v.Name())
			}
		case *ast.CallExpr:
			cf := origin(calleeFunc(p.Info, n))
			if cf == nil {
				return true
			}
			ci := a.byObj[cf]
			if ci == nil || len(ci.writesGlobals) == 0 {
				return true
			}
			// Only calls whose write site the rule cannot see (exempt or
			// out-of-scope packages) are reported here; a sim-package
			// callee is flagged once, at its own write site.
			if underSim(ci.pkg.Rel) && ci.pkg.Rel != obsPackage {
				return true
			}
			names := ""
			for _, v := range sortedVars(ci.writesGlobals) {
				if names != "" {
					names += ", "
				}
				names += v.Name()
			}
			report(p, n.Pos(), "call to %s mutates package-level state (%s) from simulation code; the write site is exempt from this rule, so the mutation is invisible at the caller", cf.Name(), names)
		}
		return true
	})
}
