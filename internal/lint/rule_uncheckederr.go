package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// UncheckedErrRule flags write-path calls whose error result is silently
// dropped: Write*/Flush/Close/Sync used as a bare statement (including
// defer and go). In the report and archive paths a swallowed error means
// a truncated CSV, a half-written .drm, or a report that differs from the
// dataset it claims to render. Receivers documented to never fail —
// strings.Builder, bytes.Buffer, and hash.Hash implementations — are
// exempt, as is an explicit `_ = call()` (a visible, reviewable discard).
type UncheckedErrRule struct{}

func (UncheckedErrRule) Name() string { return "uncheckederr" }

func (UncheckedErrRule) Doc() string {
	return "flag dropped errors from Write*/Flush/Close/Sync on writers in report/archive paths"
}

func (UncheckedErrRule) Check(p *Package, r *Reporter) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch s := n.(type) {
			case *ast.ExprStmt:
				call, _ = s.X.(*ast.CallExpr)
			case *ast.DeferStmt:
				call = s.Call
			case *ast.GoStmt:
				call = s.Call
			}
			if call == nil {
				return true
			}
			fn := calleeFunc(p.Info, call)
			if fn == nil || !isWriteish(fn.Name()) || !returnsError(fn) {
				return true
			}
			if recv := callReceiverType(p.Info, call, fn); recv != nil && infallibleWriter(recv) {
				return true
			}
			r.Reportf(call.Pos(), "the error from %s is dropped; a failed write/flush/close silently corrupts the output (check it, or `_ =` to discard explicitly)", fn.Name())
			return true
		})
	}
}

func isWriteish(name string) bool {
	switch name {
	case "Flush", "Close", "Sync":
		return true
	}
	return strings.HasPrefix(name, "Write")
}

// returnsError reports whether fn's last result is the error type.
func returnsError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	return types.Identical(last, types.Universe.Lookup("error").Type())
}

// callReceiverType reports the static type the method is invoked on. The
// selection's receiver is preferred over fn's declared receiver: a
// hash.Hash64 value calling Write resolves to io.Writer's method, but the
// exemption must judge the hash interface the caller actually holds.
func callReceiverType(info *types.Info, call *ast.CallExpr, fn *types.Func) types.Type {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s, ok := info.Selections[sel]; ok && s.Kind() == types.MethodVal {
			return s.Recv()
		}
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return sig.Recv().Type()
}

// infallibleWriter recognizes receivers whose write methods are
// documented to never return an error.
func infallibleWriter(t types.Type) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil {
		switch named.Obj().Pkg().Path() + "." + named.Obj().Name() {
		case "strings.Builder", "bytes.Buffer":
			return true
		}
	}
	// hash.Hash documents "Write (via the embedded io.Writer interface)
	// never returns an error"; recognize the contract structurally. For
	// concrete receivers consult the pointer method set, for interface
	// receivers (hash.Hash32/64 values) the interface's own.
	recv := types.Type(types.NewPointer(t))
	if types.IsInterface(t) {
		recv = t
	}
	ms := types.NewMethodSet(recv)
	for _, need := range []string{"Sum", "Reset", "Size", "BlockSize"} {
		if lookupMethod(ms, need) == nil {
			return false
		}
	}
	return true
}

func lookupMethod(ms *types.MethodSet, name string) *types.Selection {
	for i := 0; i < ms.Len(); i++ {
		if ms.At(i).Obj().Name() == name {
			return ms.At(i)
		}
	}
	return nil
}
