package lint

import (
	"strings"
	"testing"
)

func knownRules() map[string]bool {
	known := map[string]bool{}
	for _, r := range AllRules() {
		known[r.Name()] = true
	}
	return known
}

func TestParseAllow(t *testing.T) {
	known := knownRules()
	cases := []struct {
		name        string
		text        string
		wantRules   string // comma-joined
		wantReason  string
		isDirective bool
		errContains string
	}{
		{
			name: "not a directive", text: "// plain comment",
		},
		{
			name: "em dash separator", text: "//lint:allow maprange — keys are a fixed enum",
			isDirective: true, wantRules: "maprange", wantReason: "keys are a fixed enum",
		},
		{
			name: "double dash separator", text: "//lint:allow nondet -- stderr timing only",
			isDirective: true, wantRules: "nondet", wantReason: "stderr timing only",
		},
		{
			name: "leading spaces after slashes", text: "//   lint:allow sortstable — already a total order",
			isDirective: true, wantRules: "sortstable", wantReason: "already a total order",
		},
		{
			name: "multiple rules one directive", text: "//lint:allow nondet,timetaint — stderr banner timing",
			isDirective: true, wantRules: "nondet,timetaint", wantReason: "stderr banner timing",
		},
		{
			name: "multiple rules with space after comma", text: "//lint:allow nondet, timetaint — stderr banner timing",
			isDirective: true, wantRules: "nondet,timetaint", wantReason: "stderr banner timing",
		},
		{
			name: "missing rule name", text: "//lint:allow",
			isDirective: true, errContains: "needs a rule name",
		},
		{
			name: "unknown rule name", text: "//lint:allow nosuchrule — reason",
			isDirective: true, errContains: "unknown rule nosuchrule",
		},
		{
			name: "unknown rule inside list", text: "//lint:allow nondet,bogus — reason",
			isDirective: true, errContains: "unknown rule bogus",
		},
		{
			name: "missing reason", text: "//lint:allow maprange",
			isDirective: true, errContains: "needs a reason",
		},
		{
			name: "separator but empty reason", text: "//lint:allow maprange —",
			isDirective: true, errContains: "needs a reason",
		},
		{
			name: "unknown verb", text: "//lint:disable maprange",
			isDirective: true, errContains: "unknown lint directive",
		},
		{
			name: "glued verb", text: "//lint:allowmaprange",
			isDirective: true, errContains: "unknown lint directive",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rules, reason, isDirective, errMsg := parseAllow(tc.text, known)
			if isDirective != tc.isDirective {
				t.Fatalf("isDirective = %v, want %v", isDirective, tc.isDirective)
			}
			if tc.errContains != "" {
				if !strings.Contains(errMsg, tc.errContains) {
					t.Fatalf("errMsg = %q, want substring %q", errMsg, tc.errContains)
				}
				return
			}
			if errMsg != "" {
				t.Fatalf("unexpected error: %q", errMsg)
			}
			if got := strings.Join(rules, ","); got != tc.wantRules || reason != tc.wantReason {
				t.Errorf("parsed (%q, %q), want (%q, %q)", got, reason, tc.wantRules, tc.wantReason)
			}
		})
	}
}

// TestDirectiveSuppression exercises the reach of a directive through the
// directive fixture: same line and line-above suppress; wrong rule,
// unknown rule, missing reason, and a directive two lines away do not.
func TestDirectiveSuppression(t *testing.T) {
	p := loadFixtureT(t, "directive")
	diags := Run([]*Package{p}, AllRules())

	byRule := map[string]int{}
	var lines []int
	for _, d := range diags {
		byRule[d.Rule]++
		if d.Rule == "nondet" {
			lines = append(lines, d.Pos.Line)
		}
	}
	// Six time.Now calls; the two properly-directed ones are suppressed.
	if byRule["nondet"] != 4 {
		t.Errorf("nondet findings = %d (%v), want 4: wrongRule, unknownRule, missingReason, unrelatedLine", byRule["nondet"], lines)
	}
	// Two malformed directives: unknown rule name and missing reason.
	if byRule[DirectiveRule] != 2 {
		t.Errorf("directive findings = %d, want 2 (unknown rule, missing reason)", byRule[DirectiveRule])
	}
}

// TestMalformedDirectiveNeverSuppresses pins the safety property: a
// directive that fails to parse leaves the underlying finding visible.
func TestMalformedDirectiveNeverSuppresses(t *testing.T) {
	p := loadFixtureT(t, "directive")
	diags := Run([]*Package{p}, AllRules())

	// Collect the lines carrying malformed directives; each must also
	// carry (or precede) a surviving nondet finding.
	malformed := map[int]bool{}
	for _, d := range diags {
		if d.Rule == DirectiveRule {
			malformed[d.Pos.Line] = true
		}
	}
	if len(malformed) == 0 {
		t.Fatal("fixture produced no malformed directives")
	}
	for line := range malformed {
		survived := false
		for _, d := range diags {
			if d.Rule == "nondet" && (d.Pos.Line == line || d.Pos.Line == line+1) {
				survived = true
			}
		}
		if !survived {
			t.Errorf("malformed directive on line %d suppressed its finding", line)
		}
	}
}
