package radio

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/nuwins/cellwheels/internal/unit"
)

func TestOperatorStrings(t *testing.T) {
	want := map[Operator][2]string{
		Verizon: {"Verizon", "V"},
		TMobile: {"T-Mobile", "T"},
		ATT:     {"AT&T", "A"},
	}
	for op, w := range want {
		if op.String() != w[0] || op.Short() != w[1] {
			t.Errorf("%d: String=%q Short=%q", int(op), op.String(), op.Short())
		}
	}
	if len(Operators()) != NumOperators {
		t.Errorf("Operators() len = %d", len(Operators()))
	}
}

func TestTechnologyClassification(t *testing.T) {
	if LTE.Is5G() || LTEA.Is5G() {
		t.Error("4G classified as 5G")
	}
	if !NRLow.Is5G() || !NRMid.Is5G() || !NRMmWave.Is5G() {
		t.Error("NR not classified as 5G")
	}
	// HT/LT split per §5.4: only midband and mmWave are high-speed.
	if NRLow.IsHighSpeed() {
		t.Error("5G-low marked high-speed")
	}
	if !NRMid.IsHighSpeed() || !NRMmWave.IsHighSpeed() {
		t.Error("midband/mmWave not high-speed")
	}
}

func TestTechnologyStrings(t *testing.T) {
	want := map[Technology]string{
		LTE: "LTE", LTEA: "LTE-A", NRLow: "5G-low", NRMid: "5G-mid", NRMmWave: "5G-mmWave",
	}
	for tech, s := range want {
		if tech.String() != s {
			t.Errorf("String(%d) = %q, want %q", int(tech), tech.String(), s)
		}
	}
	if len(Technologies()) != NumTechnologies {
		t.Errorf("Technologies() len = %d", len(Technologies()))
	}
}

func TestDirectionStrings(t *testing.T) {
	if Downlink.String() != "DL" || Uplink.String() != "UL" {
		t.Error("direction strings wrong")
	}
	if len(Directions()) != NumDirections {
		t.Error("Directions() incomplete")
	}
}

func TestBandProfilesOrdering(t *testing.T) {
	// Higher bands have shorter range.
	if Band(NRMmWave).CellRadius >= Band(NRMid).CellRadius {
		t.Error("mmWave radius should be far below midband")
	}
	if Band(NRMid).CellRadius >= Band(NRLow).CellRadius {
		t.Error("midband radius should be below low band")
	}
	// All profiles are physically sensible.
	for _, tech := range Technologies() {
		b := Band(tech)
		if b.PathLossExp < 2 || b.PathLossExp > 4 {
			t.Errorf("%v path loss exponent %v", tech, b.PathLossExp)
		}
		if b.CellRadius <= 0 || b.ShadowSigma <= 0 {
			t.Errorf("%v degenerate profile %+v", tech, b)
		}
	}
}

func TestRSRPDecreasesWithDistance(t *testing.T) {
	for _, tech := range Technologies() {
		prev := unit.DBm(math.Inf(1))
		for d := 10 * unit.Meter; d < 10*unit.Kilometer; d *= 2 {
			r := RSRP(tech, d, 0, 0)
			if r >= prev {
				t.Errorf("%v: RSRP not decreasing at %v", tech, d)
			}
			prev = r
		}
	}
}

func TestRSRPReferencePoint(t *testing.T) {
	// At the 10 m reference distance with no shadowing/beam, RSRP equals
	// the band's reference level.
	for _, tech := range Technologies() {
		if got := RSRP(tech, 10*unit.Meter, 0, 0); got != Band(tech).RefRSRP {
			t.Errorf("%v: RSRP(10m) = %v, want %v", tech, got, Band(tech).RefRSRP)
		}
	}
	// Distances below the reference clamp to it.
	if RSRP(LTE, 1*unit.Meter, 0, 0) != RSRP(LTE, 10*unit.Meter, 0, 0) {
		t.Error("sub-reference distance not clamped")
	}
}

func TestVerizonMmWaveRSRPLowerThanATT(t *testing.T) {
	// §5.5: Verizon's wider beams yield lower RSRP than AT&T's at the
	// same distance.
	d := 150 * unit.Meter
	v := RSRP(NRMmWave, d, 0, BeamGain(Verizon, NRMmWave))
	a := RSRP(NRMmWave, d, 0, BeamGain(ATT, NRMmWave))
	if v >= a {
		t.Errorf("Verizon RSRP %v not below AT&T %v", v, a)
	}
	if diff := float64(a - v); diff < 5 || diff > 15 {
		t.Errorf("beam gap = %v dB, want 5-15", diff)
	}
	// Typical urban mmWave distances should land in the paper's ranges.
	if v < -110 || v > -75 {
		t.Errorf("Verizon mmWave RSRP %v outside -110..-75", v)
	}
	if a < -95 || a > -60 {
		t.Errorf("AT&T mmWave RSRP %v outside -95..-60", a)
	}
}

func TestBeamGainOnlyMmWave(t *testing.T) {
	for _, op := range Operators() {
		for _, tech := range Technologies() {
			g := BeamGain(op, tech)
			if tech != NRMmWave && g != 0 {
				t.Errorf("%v/%v has beam gain %v", op, tech, g)
			}
		}
	}
}

func TestSINRLoadPenalty(t *testing.T) {
	free := SINR(NRMid, -90, 0)
	busy := SINR(NRMid, -90, 1)
	if free <= busy {
		t.Error("load did not reduce SINR")
	}
	if diff := float64(free - busy); math.Abs(diff-10) > 1e-9 {
		t.Errorf("full-load penalty = %v dB, want 10", diff)
	}
}

func TestMCSRange(t *testing.T) {
	f := func(sinr float64) bool {
		if math.IsNaN(sinr) {
			return true
		}
		m := MCSFromSINR(unit.DB(sinr))
		return m >= 0 && m <= MaxMCS
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if MCSFromSINR(-100) != 0 {
		t.Error("very low SINR should map to MCS 0")
	}
	if MCSFromSINR(100) != MaxMCS {
		t.Error("very high SINR should map to MaxMCS")
	}
}

func TestMCSMonotone(t *testing.T) {
	prev := -1
	for s := -10.0; s <= 30; s += 0.5 {
		m := MCSFromSINR(unit.DB(s))
		if m < prev {
			t.Fatalf("MCS decreased at SINR %v", s)
		}
		prev = m
	}
}

func TestSpectralFactorBounds(t *testing.T) {
	f := func(sinr float64) bool {
		if math.IsNaN(sinr) || math.Abs(sinr) > 1000 {
			return true
		}
		for _, tech := range Technologies() {
			v := SpectralFactor(tech, unit.DB(sinr))
			if v < 0 || v > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if SpectralFactor(NRMid, Band(NRMid).SNRCap) != 1 {
		t.Error("factor at cap should be 1")
	}
	if SpectralFactor(NRMid, Band(NRMid).SNRCap+10) != 1 {
		t.Error("factor above cap should be 1")
	}
}

func TestBLERBehaviour(t *testing.T) {
	if BLER(0, 0, 0) <= 0 {
		t.Error("BLER floor missing")
	}
	if BLER(70, 0, 0) <= BLER(0, 0, 0) {
		t.Error("BLER not increasing with speed")
	}
	if BLER(30, 0, 0.9) <= BLER(30, 0, 0) {
		t.Error("idiosyncratic component missing")
	}
	if got := BLER(1000, 1000, 1); got > 0.6 {
		t.Errorf("BLER cap exceeded: %v", got)
	}
	if got := BLER(-50, -50, 0); got < 0 {
		t.Errorf("BLER negative: %v", got)
	}
}

func TestCAFactor(t *testing.T) {
	if CAFactor(1) != 1 {
		t.Errorf("CAFactor(1) = %v", CAFactor(1))
	}
	if CAFactor(0) != 1 {
		t.Errorf("CAFactor(0) = %v, want clamp to 1", CAFactor(0))
	}
	if CAFactor(2) != 1.75 {
		t.Errorf("CAFactor(2) = %v", CAFactor(2))
	}
	// More carriers never reduce capacity.
	for cc := 1; cc < 8; cc++ {
		if CAFactor(cc+1) <= CAFactor(cc) {
			t.Errorf("CAFactor not increasing at %d", cc)
		}
	}
}

func TestLinkTableComplete(t *testing.T) {
	for _, op := range Operators() {
		for _, tech := range Technologies() {
			for _, dir := range Directions() {
				p := Link(op, tech, dir)
				if p.PeakPerCC <= 0 || p.MaxCC < 1 {
					t.Errorf("%v/%v/%v: bad profile %+v", op, tech, dir, p)
				}
			}
		}
	}
}

func TestLinkAsymmetry(t *testing.T) {
	// Downlink peak exceeds uplink peak for every combination (§4.2:
	// "high asymmetry of downlink vs uplink bandwidth").
	for _, op := range Operators() {
		for _, tech := range Technologies() {
			dl := Link(op, tech, Downlink).Peak()
			ul := Link(op, tech, Uplink).Peak()
			if dl <= ul {
				t.Errorf("%v/%v: DL peak %v <= UL peak %v", op, tech, dl, ul)
			}
		}
	}
}

func TestLinkCalibrationOrdering(t *testing.T) {
	// T-Mobile midband is the strongest midband (§5.2 observation 3).
	tm := Link(TMobile, NRMid, Downlink).Peak()
	if tm <= Link(Verizon, NRMid, Downlink).Peak() || tm <= Link(ATT, NRMid, Downlink).Peak() {
		t.Error("T-Mobile midband not dominant")
	}
	// AT&T has the strongest LTE-A (§4.2).
	at := Link(ATT, LTEA, Downlink).Peak()
	if at <= Link(Verizon, LTEA, Downlink).Peak() || at <= Link(TMobile, LTEA, Downlink).Peak() {
		t.Error("AT&T LTE-A not dominant")
	}
	// Verizon mmWave peak approaches the paper's ~2.9 Gbps aggregate.
	if peak := Link(Verizon, NRMmWave, Downlink).Peak(); peak < 2.5*unit.Gbps || peak > 3.5*unit.Gbps {
		t.Errorf("Verizon mmWave DL peak = %v", peak)
	}
}

func TestCapacityProperties(t *testing.T) {
	// Capacity is maximal under ideal conditions and degrades with each
	// impairment.
	ideal := Capacity(Verizon, NRMmWave, Downlink, 8, 40, 0, 0)
	if ideal != Link(Verizon, NRMmWave, Downlink).Peak() {
		t.Errorf("ideal capacity %v != peak %v", ideal, Link(Verizon, NRMmWave, Downlink).Peak())
	}
	if Capacity(Verizon, NRMmWave, Downlink, 8, 10, 0, 0) >= ideal {
		t.Error("low SINR did not reduce capacity")
	}
	if Capacity(Verizon, NRMmWave, Downlink, 8, 40, 0.3, 0) >= ideal {
		t.Error("BLER did not reduce capacity")
	}
	if Capacity(Verizon, NRMmWave, Downlink, 8, 40, 0, 0.5) >= ideal {
		t.Error("load did not reduce capacity")
	}
	if Capacity(Verizon, NRMmWave, Downlink, 2, 40, 0, 0) >= ideal {
		t.Error("fewer CCs did not reduce capacity")
	}
}

func TestCapacityNeverNegative(t *testing.T) {
	f := func(sinr, bler, load float64) bool {
		if math.IsNaN(sinr) || math.IsNaN(bler) || math.IsNaN(load) {
			return true
		}
		c := Capacity(TMobile, NRMid, Uplink, 2, unit.DB(math.Mod(sinr, 60)), math.Abs(math.Mod(bler, 2)), math.Abs(math.Mod(load, 2)))
		return c >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCapacityClampsCC(t *testing.T) {
	max := Link(Verizon, LTE, Downlink).MaxCC
	a := Capacity(Verizon, LTE, Downlink, max, 40, 0, 0)
	b := Capacity(Verizon, LTE, Downlink, max+5, 40, 0, 0)
	if a != b {
		t.Errorf("CC above MaxCC changed capacity: %v vs %v", a, b)
	}
}

func TestBaseRadioRTTOrdering(t *testing.T) {
	// mmWave has the lowest access latency; LTE the highest; and LTE-A
	// beats 5G-low, matching §5.2's RTT tradeoff observation.
	if !(BaseRadioRTT(NRMmWave) < BaseRadioRTT(NRMid) &&
		BaseRadioRTT(NRMid) < BaseRadioRTT(LTEA) &&
		BaseRadioRTT(LTEA) < BaseRadioRTT(NRLow) &&
		BaseRadioRTT(NRLow) < BaseRadioRTT(LTE)) {
		t.Error("radio RTT ordering violated")
	}
}

func TestParseTechnology(t *testing.T) {
	for _, tech := range Technologies() {
		got, ok := ParseTechnology(tech.String())
		if !ok || got != tech {
			t.Errorf("ParseTechnology(%q) = %v, %v", tech.String(), got, ok)
		}
	}
	if _, ok := ParseTechnology("6G"); ok {
		t.Error("unknown technology accepted")
	}
}

func TestParseOperatorShort(t *testing.T) {
	for _, op := range Operators() {
		got, ok := ParseOperatorShort(op.Short())
		if !ok || got != op {
			t.Errorf("ParseOperatorShort(%q) = %v, %v", op.Short(), got, ok)
		}
	}
	if _, ok := ParseOperatorShort("X"); ok {
		t.Error("unknown operator accepted")
	}
}
