// Package radio defines the cellular vocabulary of the study — operators,
// technologies, traffic directions — and the physical-layer models that
// drive the simulation: path loss and RSRP, SINR under cell load,
// MCS selection, block error rate under Doppler, and per-carrier link
// capacity with carrier aggregation.
//
// Parameter values are calibrated so the simulated joint distribution of
// (technology, RSRP, MCS, CA, BLER) → throughput reproduces the shapes the
// paper reports (see DESIGN.md §5); they are not claims about any real
// network.
package radio

import (
	"fmt"
	"math"

	"github.com/nuwins/cellwheels/internal/unit"
)

// Operator is one of the three major US carriers in the study.
type Operator int

// The study's operators, in the paper's ordering.
const (
	Verizon Operator = iota
	TMobile
	ATT
	numOperators
)

// NumOperators is the number of carriers in the study.
const NumOperators = int(numOperators)

// Operators returns all carriers in canonical order.
func Operators() []Operator { return []Operator{Verizon, TMobile, ATT} }

// String implements fmt.Stringer.
func (o Operator) String() string {
	switch o {
	case Verizon:
		return "Verizon"
	case TMobile:
		return "T-Mobile"
	case ATT:
		return "AT&T"
	default:
		return fmt.Sprintf("Operator(%d)", int(o))
	}
}

// Short returns the paper's single-letter abbreviation (V/T/A).
func (o Operator) Short() string {
	switch o {
	case Verizon:
		return "V"
	case TMobile:
		return "T"
	case ATT:
		return "A"
	default:
		return "?"
	}
}

// Technology is a radio access technology generation/band class.
type Technology int

// Technologies, oldest to fastest. The paper groups NRMid and NRMmWave as
// "high-speed 5G" (HT); everything else is low-throughput (LT).
const (
	LTE Technology = iota
	LTEA
	NRLow
	NRMid
	NRMmWave
	numTechnologies
)

// NumTechnologies is the number of technology classes.
const NumTechnologies = int(numTechnologies)

// Technologies returns all technologies, oldest first.
func Technologies() []Technology {
	return []Technology{LTE, LTEA, NRLow, NRMid, NRMmWave}
}

// String implements fmt.Stringer using the paper's labels.
func (t Technology) String() string {
	switch t {
	case LTE:
		return "LTE"
	case LTEA:
		return "LTE-A"
	case NRLow:
		return "5G-low"
	case NRMid:
		return "5G-mid"
	case NRMmWave:
		return "5G-mmWave"
	default:
		//lint:allow hotbox — diagnostic fallback for invalid values; never taken for the five real technologies
		return fmt.Sprintf("Technology(%d)", int(t))
	}
}

// ParseTechnology inverts Technology.String. It reports false for
// unknown labels.
func ParseTechnology(s string) (Technology, bool) {
	for _, t := range Technologies() {
		if t.String() == s {
			return t, true
		}
	}
	return LTE, false
}

// ParseOperatorShort inverts Operator.Short. It reports false for
// unknown abbreviations.
func ParseOperatorShort(s string) (Operator, bool) {
	for _, o := range Operators() {
		if o.Short() == s {
			return o, true
		}
	}
	return Verizon, false
}

// Is5G reports whether the technology is any NR flavor.
func (t Technology) Is5G() bool { return t >= NRLow }

// IsHighSpeed reports whether the technology is "high-speed 5G"
// (midband or mmWave) in the paper's HT/LT split (§5.4).
func (t Technology) IsHighSpeed() bool { return t == NRMid || t == NRMmWave }

// Direction is the traffic direction of a test.
type Direction int

// Traffic directions.
const (
	Downlink Direction = iota
	Uplink
	numDirections
)

// NumDirections is the number of traffic directions.
const NumDirections = int(numDirections)

// Directions returns both traffic directions.
func Directions() []Direction { return []Direction{Downlink, Uplink} }

// String implements fmt.Stringer.
func (d Direction) String() string {
	if d == Uplink {
		return "UL"
	}
	return "DL"
}

// BandProfile describes the propagation environment of a technology's
// band class.
type BandProfile struct {
	// RefRSRP is the RSRP at the 10 m reference distance, beam gain
	// excluded.
	RefRSRP unit.DBm
	// PathLossExp is the log-distance path-loss exponent.
	PathLossExp float64
	// ShadowSigma is the lognormal shadowing standard deviation in dB.
	ShadowSigma float64
	// NoiseFloor is the effective noise+interference floor the SINR is
	// computed against.
	NoiseFloor unit.DBm
	// CellRadius is the nominal serving radius of one site.
	CellRadius unit.Meters
	// SNRCap is the SINR at which the modulation tops out.
	SNRCap unit.DB
}

// Band returns the propagation profile of a technology.
func Band(t Technology) BandProfile {
	switch t {
	case NRMmWave:
		return BandProfile{RefRSRP: -55, PathLossExp: 2.9, ShadowSigma: 5.0, NoiseFloor: -102, CellRadius: 250 * unit.Meter, SNRCap: 23}
	case NRMid:
		return BandProfile{RefRSRP: -42, PathLossExp: 2.6, ShadowSigma: 4.5, NoiseFloor: -104, CellRadius: 1500 * unit.Meter, SNRCap: 22}
	case NRLow:
		return BandProfile{RefRSRP: -40, PathLossExp: 2.35, ShadowSigma: 4.0, NoiseFloor: -110, CellRadius: 2 * unit.Kilometer, SNRCap: 20}
	case LTEA:
		return BandProfile{RefRSRP: -41, PathLossExp: 2.4, ShadowSigma: 4.0, NoiseFloor: -112, CellRadius: 1300 * unit.Meter, SNRCap: 20}
	default: // LTE
		return BandProfile{RefRSRP: -41, PathLossExp: 2.45, ShadowSigma: 4.5, NoiseFloor: -113, CellRadius: 1300 * unit.Meter, SNRCap: 18}
	}
}

// BeamGain is the extra antenna gain of a technology/operator pair.
// It captures §5.5's explanation of the Verizon RSRP anomaly: in most
// cities Verizon's mmWave phased arrays use fewer, wider beams than
// AT&T's, giving lower gain and hence lower measured RSRP (-80 to -110
// dBm vs -70 to -90 dBm).
func BeamGain(op Operator, t Technology) unit.DB {
	if t != NRMmWave {
		return 0
	}
	switch op {
	case Verizon:
		return 6 // wide beams
	case ATT:
		return 16 // narrow beams
	default:
		return 11
	}
}

// RSRP computes received power at the given distance with the given
// shadowing draw and beam gain.
func RSRP(t Technology, dist unit.Meters, shadow unit.DB, beam unit.DB) unit.DBm {
	b := Band(t)
	d := math.Max(float64(dist), 10)
	pl := 10 * b.PathLossExp * math.Log10(d/10)
	return b.RefRSRP + unit.DBm(beam) - unit.DBm(pl) + unit.DBm(shadow)
}

// SINR computes the effective signal-to-interference-plus-noise ratio for
// a given RSRP and cell load. Load raises the interference floor: a fully
// loaded neighborhood costs about 8 dB.
func SINR(t Technology, rsrp unit.DBm, load float64) unit.DB {
	b := Band(t)
	loadPenalty := 10 * unit.Clamp(load, 0, 1)
	return unit.DB(float64(rsrp-b.NoiseFloor) - loadPenalty)
}

// MaxMCS is the highest modulation-and-coding-scheme index, per 3GPP
// tables.
const MaxMCS = 28

// MCSFromSINR maps SINR to an MCS index in [0, MaxMCS]. The mapping is
// linear across the usable range −5..+25 dB, which approximates the
// standard CQI→MCS tables closely enough for distribution-level analysis.
func MCSFromSINR(sinr unit.DB) int {
	idx := (float64(sinr) + 5) / 30 * MaxMCS
	return int(unit.Clamp(math.Round(idx), 0, MaxMCS))
}

// SpectralFactor reports the fraction of a technology's peak rate
// achievable at the given SINR, via Shannon capacity normalized to the
// band's SNR cap.
func SpectralFactor(t Technology, sinr unit.DB) float64 {
	b := Band(t)
	if sinr >= b.SNRCap {
		return 1
	}
	top := math.Log2(1 + b.SNRCap.Linear())
	cur := math.Log2(1 + math.Max(0, sinr.Linear()))
	return unit.Clamp(cur/top, 0, 1)
}

// BLER models the residual block error rate: a floor from imperfect link
// adaptation, a Doppler term growing with vehicle speed, a burst term
// supplied by the caller for fading events, and an idiosyncratic
// component (noise, in [0,1)) from scheduling and HARQ dynamics that is
// uncorrelated with everything else — the reason the paper finds almost
// no correlation between reported BLER and throughput (Table 2).
func BLER(speedMPH, burst, noise float64) float64 {
	base := 0.012
	doppler := 0.0008 * math.Max(0, speedMPH)
	idio := 0.09 * noise
	return unit.Clamp(base+doppler+burst+idio, 0, 0.6)
}

// LinkProfile is the capacity envelope of an (operator, technology,
// direction) combination.
type LinkProfile struct {
	// PeakPerCC is the peak rate of one component carrier at top MCS.
	PeakPerCC unit.BitRate
	// MaxCC is the maximum number of aggregated component carriers.
	MaxCC int
}

// Peak reports the profile's maximum aggregate rate.
func (p LinkProfile) Peak() unit.BitRate {
	return p.PeakPerCC * unit.BitRate(CAFactor(p.MaxCC))
}

// CAFactor is the capacity multiplier of carrier aggregation: the primary
// carrier plus secondaries at 75% weight (secondary carriers are usually
// on less favourable spectrum).
func CAFactor(cc int) float64 {
	if cc < 1 {
		cc = 1
	}
	return 1 + 0.75*float64(cc-1)
}

// linkTable holds per-(operator, technology, direction) envelopes.
// Values are calibrated to the paper's static medians and driving maxima
// (DESIGN.md §5): e.g. Verizon mmWave DL up to ~2.9 Gbps aggregate,
// T-Mobile's midband clearly superior to the other two carriers' midband,
// AT&T's LTE-A the strongest 4G.
var linkTable = map[Operator]map[Technology][2]LinkProfile{
	Verizon: {
		LTE:      {{70 * unit.Mbps, 1}, {22 * unit.Mbps, 1}},
		LTEA:     {{120 * unit.Mbps, 3}, {42 * unit.Mbps, 1}},
		NRLow:    {{130 * unit.Mbps, 2}, {55 * unit.Mbps, 1}},
		NRMid:    {{250 * unit.Mbps, 2}, {85 * unit.Mbps, 2}},
		NRMmWave: {{550 * unit.Mbps, 8}, {240 * unit.Mbps, 2}},
	},
	TMobile: {
		LTE:      {{65 * unit.Mbps, 1}, {20 * unit.Mbps, 1}},
		LTEA:     {{110 * unit.Mbps, 3}, {38 * unit.Mbps, 1}},
		NRLow:    {{150 * unit.Mbps, 2}, {65 * unit.Mbps, 1}},
		NRMid:    {{400 * unit.Mbps, 2}, {70 * unit.Mbps, 2}},
		NRMmWave: {{340 * unit.Mbps, 8}, {150 * unit.Mbps, 2}},
	},
	ATT: {
		LTE:      {{90 * unit.Mbps, 1}, {26 * unit.Mbps, 1}},
		LTEA:     {{150 * unit.Mbps, 3}, {50 * unit.Mbps, 1}},
		NRLow:    {{140 * unit.Mbps, 2}, {52 * unit.Mbps, 1}},
		NRMid:    {{240 * unit.Mbps, 2}, {78 * unit.Mbps, 2}},
		NRMmWave: {{330 * unit.Mbps, 8}, {120 * unit.Mbps, 2}},
	},
}

// Link returns the capacity envelope for an operator, technology, and
// direction.
func Link(op Operator, t Technology, d Direction) LinkProfile {
	return linkTable[op][t][d]
}

// Capacity computes the instantaneous usable link rate for a serving
// configuration: the per-CC peak scaled by aggregation, spectral
// efficiency at the current SINR, residual BLER, and the share of the
// cell not consumed by background load.
//
//lint:hotroot — evaluated per tick per active instrument (often twice, up/down)
func Capacity(op Operator, t Technology, dir Direction, cc int, sinr unit.DB, bler, load float64) unit.BitRate {
	p := Link(op, t, dir)
	if cc > p.MaxCC {
		cc = p.MaxCC
	}
	rate := float64(p.PeakPerCC) * CAFactor(cc) * SpectralFactor(t, sinr)
	rate *= (1 - unit.Clamp(bler, 0, 1))
	rate *= (1 - 0.85*unit.Clamp(load, 0, 1))
	if rate < 0 {
		rate = 0
	}
	return unit.BitRate(rate)
}

// BaseRadioRTT is the access-network latency contribution of a
// technology: the air-interface plus RAN processing delay, before any
// transport queueing or internet path.
func BaseRadioRTT(t Technology) float64 {
	switch t {
	case NRMmWave:
		return 8 // ms
	case NRMid:
		return 14
	case NRLow:
		return 22
	case LTEA:
		return 18
	default:
		return 24
	}
}
