package ran

import (
	"testing"
	"time"

	"github.com/nuwins/cellwheels/internal/deploy"
	"github.com/nuwins/cellwheels/internal/geo"
	"github.com/nuwins/cellwheels/internal/radio"
	"github.com/nuwins/cellwheels/internal/simrand"
	"github.com/nuwins/cellwheels/internal/unit"
)

func testUE(t *testing.T, op radio.Operator, seed int64) (*UE, *geo.Drive) {
	t.Helper()
	route := geo.DefaultRoute()
	rng := simrand.New(seed)
	m := deploy.NewMap(op, route, rng)
	ue := NewUE(UEConfig{Op: op, Map: m}, rng)
	drive := geo.NewDrive(route, geo.DefaultDriveConfig(), rng)
	return ue, drive
}

const tick = 50 * time.Millisecond

// runFor advances the UE along the drive for the given simulated span.
func runFor(ue *UE, drive *geo.Drive, span time.Duration) []LinkState {
	n := int(span / tick)
	states := make([]LinkState, 0, n)
	for i := 0; i < n; i++ {
		ds := drive.Step(tick)
		states = append(states, ue.Step(ds.Time, ds.Waypoint, ds.Speed.MPH(), tick))
	}
	return states
}

func TestKindOf(t *testing.T) {
	cases := []struct {
		from, to radio.Technology
		want     HandoverKind
	}{
		{radio.LTE, radio.LTEA, Horizontal4G},
		{radio.NRMid, radio.NRMmWave, Horizontal5G},
		{radio.LTEA, radio.NRLow, Up},
		{radio.NRMid, radio.LTE, Down},
	}
	for _, c := range cases {
		if got := KindOf(c.from, c.to); got != c.want {
			t.Errorf("KindOf(%v,%v) = %v, want %v", c.from, c.to, got, c.want)
		}
	}
	want := map[HandoverKind]string{
		Horizontal4G: "4G->4G", Horizontal5G: "5G->5G", Up: "4G->5G", Down: "5G->4G",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("String(%v) = %q", int(k), k.String())
		}
	}
}

func TestUEAttachesAndServes(t *testing.T) {
	ue, drive := testUE(t, radio.Verizon, 1)
	ue.SetTraffic(deploy.HeavyDL, drive.State().Time, drive.State().Waypoint)
	states := runFor(ue, drive, 2*time.Minute)
	withCell, withCap := 0, 0
	for _, s := range states {
		if s.CellID != "" {
			withCell++
		}
		if s.CapacityDL > 0 {
			withCap++
		}
	}
	if float64(withCell) < 0.9*float64(len(states)) {
		t.Errorf("attached in %d/%d ticks", withCell, len(states))
	}
	if float64(withCap) < 0.8*float64(len(states)) {
		t.Errorf("nonzero DL capacity in %d/%d ticks", withCap, len(states))
	}
}

func TestLinkStateFieldsSane(t *testing.T) {
	ue, drive := testUE(t, radio.TMobile, 2)
	ue.SetTraffic(deploy.HeavyDL, drive.State().Time, drive.State().Waypoint)
	for _, s := range runFor(ue, drive, 5*time.Minute) {
		if s.MCS < 0 || s.MCS > radio.MaxMCS {
			t.Fatalf("MCS out of range: %d", s.MCS)
		}
		if s.BLER < 0 || s.BLER > 0.6 {
			t.Fatalf("BLER out of range: %v", s.BLER)
		}
		if s.Load < 0 || s.Load > 0.92 {
			t.Fatalf("load out of range: %v", s.Load)
		}
		if s.CapacityDL < 0 || s.CapacityUL < 0 {
			t.Fatal("negative capacity")
		}
		if s.CCDL < 1 || s.CCUL < 1 {
			t.Fatalf("CC below 1: %d/%d", s.CCDL, s.CCUL)
		}
		if s.CellID != "" && (s.RSRP > -40 || s.RSRP < -140) {
			t.Fatalf("implausible RSRP %v", s.RSRP)
		}
	}
}

func TestHandoversHappenAndInterrupt(t *testing.T) {
	ue, drive := testUE(t, radio.Verizon, 3)
	ue.SetTraffic(deploy.HeavyDL, drive.State().Time, drive.State().Waypoint)
	states := runFor(ue, drive, 20*time.Minute)
	hos := ue.Handovers()
	if len(hos) == 0 {
		t.Fatal("no handovers in 20 minutes of driving")
	}
	// During handover execution the link carries nothing.
	sawInHO := false
	for _, s := range states {
		if s.InHandover {
			sawInHO = true
			if s.CapacityDL != 0 || s.CapacityUL != 0 {
				t.Fatal("capacity nonzero during handover")
			}
		}
	}
	if !sawInHO {
		t.Error("no tick observed inside a handover window")
	}
}

func TestHandoverDurationsMatchPaperScale(t *testing.T) {
	for _, op := range radio.Operators() {
		ue, drive := testUE(t, op, 4)
		ue.SetTraffic(deploy.HeavyDL, drive.State().Time, drive.State().Waypoint)
		runFor(ue, drive, 30*time.Minute)
		hos := ue.Handovers()
		if len(hos) < 5 {
			t.Fatalf("%v: only %d handovers", op, len(hos))
		}
		var durs []float64
		for _, h := range hos {
			ms := unit.Milliseconds(h.Duration)
			if ms <= 5 || ms > 2000 {
				t.Fatalf("%v: handover duration %v ms implausible", op, ms)
			}
			durs = append(durs, ms)
		}
		med := median(durs)
		// Fig 11b: medians 53/76/58 ms. Allow wide sampling tolerance.
		if med < 25 || med > 160 {
			t.Errorf("%v: median HO duration %.0f ms, want paper scale", op, med)
		}
	}
}

func TestTMobileHandoversSlowerThanVerizon(t *testing.T) {
	if hoMedian(radio.TMobile) <= hoMedian(radio.Verizon) {
		t.Error("T-Mobile HO median should exceed Verizon's (Fig 11b)")
	}
}

func TestHandoverEventsWellFormed(t *testing.T) {
	ue, drive := testUE(t, radio.ATT, 5)
	ue.SetTraffic(deploy.HeavyDL, drive.State().Time, drive.State().Waypoint)
	runFor(ue, drive, 20*time.Minute)
	prev := time.Time{}
	for _, h := range ue.Handovers() {
		if h.Start.Before(prev) {
			t.Fatal("handover events out of order")
		}
		prev = h.Start
		if h.ToCell == "" {
			t.Error("handover with empty target cell")
		}
		if h.Duration <= 0 {
			t.Error("non-positive handover duration")
		}
	}
}

func TestVerticalHandoversOccur(t *testing.T) {
	// T-Mobile's fragmented midband forces 4G<->5G transitions once the
	// drive leaves the contiguous urban 5G blanket.
	ue, drive := testUE(t, radio.TMobile, 6)
	ue.SetTraffic(deploy.HeavyDL, drive.State().Time, drive.State().Waypoint)
	runFor(ue, drive, 3*time.Hour)
	kinds := map[HandoverKind]int{}
	for _, h := range ue.Handovers() {
		kinds[h.Kind()]++
	}
	if kinds[Up] == 0 && kinds[Down] == 0 {
		t.Errorf("no vertical handovers: %v", kinds)
	}
}

func TestHandoversSince(t *testing.T) {
	ue, drive := testUE(t, radio.Verizon, 7)
	ue.SetTraffic(deploy.HeavyDL, drive.State().Time, drive.State().Waypoint)
	runFor(ue, drive, 10*time.Minute)
	all := ue.Handovers()
	if len(all) < 2 {
		t.Skip("not enough handovers for slicing test")
	}
	cut := all[len(all)/2].Start
	since := ue.HandoversSince(cut)
	for _, h := range since {
		if h.Start.Before(cut) {
			t.Fatal("HandoversSince returned early event")
		}
	}
	if len(since) == 0 || len(since) >= len(all) {
		t.Errorf("HandoversSince returned %d of %d", len(since), len(all))
	}
}

func TestUniqueCellsGrow(t *testing.T) {
	ue, drive := testUE(t, radio.Verizon, 8)
	ue.SetTraffic(deploy.HeavyDL, drive.State().Time, drive.State().Waypoint)
	runFor(ue, drive, 10*time.Minute)
	early := ue.UniqueCells()
	runFor(ue, drive, 30*time.Minute)
	late := ue.UniqueCells()
	if early == 0 {
		t.Fatal("no cells seen")
	}
	if late <= early {
		t.Errorf("unique cells did not grow: %d -> %d", early, late)
	}
}

func TestTrafficElevationChangesTech(t *testing.T) {
	// AT&T idle never uses 5G; heavy DL in a 5G fragment does.
	route := geo.DefaultRoute()
	rng := simrand.New(9)
	m := deploy.NewMap(radio.ATT, route, rng)
	// Find a 5G-low fragment midpoint.
	frags := m.Fragments(radio.NRLow)
	if len(frags) == 0 {
		t.Skip("no 5G-low coverage generated")
	}
	mid := (frags[0].Start + frags[0].End) / 2
	wp := route.At(mid)
	ue := NewUE(UEConfig{Op: radio.ATT, Map: m}, rng)
	now := time.Date(2022, 8, 10, 12, 0, 0, 0, time.UTC)

	ue.Step(now, wp, 30, tick)
	if ue.Tech().Is5G() {
		t.Fatalf("idle AT&T UE on %v", ue.Tech())
	}
	ue.SetTraffic(deploy.HeavyDL, now, wp)
	st := ue.Step(now.Add(tick), wp, 30, tick)
	if !st.Tech.Is5G() {
		t.Errorf("heavy DL in 5G-low fragment served by %v", st.Tech)
	}
}

func TestStateAccessors(t *testing.T) {
	s := LinkState{CapacityDL: 100 * unit.Mbps, CapacityUL: 10 * unit.Mbps, CCDL: 3, CCUL: 1}
	if s.Capacity(radio.Downlink) != 100*unit.Mbps || s.Capacity(radio.Uplink) != 10*unit.Mbps {
		t.Error("Capacity accessor wrong")
	}
	if s.CC(radio.Downlink) != 3 || s.CC(radio.Uplink) != 1 {
		t.Error("CC accessor wrong")
	}
}

func TestUEDeterministic(t *testing.T) {
	mkrun := func() []LinkState {
		ue, drive := testUE(t, radio.TMobile, 42)
		ue.SetTraffic(deploy.HeavyDL, drive.State().Time, drive.State().Waypoint)
		return runFor(ue, drive, 5*time.Minute)
	}
	a, b := mkrun(), mkrun()
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("tick %d diverged: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestFadesReduceCapacity(t *testing.T) {
	ue, drive := testUE(t, radio.Verizon, 10)
	ue.SetTraffic(deploy.HeavyDL, drive.State().Time, drive.State().Waypoint)
	states := runFor(ue, drive, 30*time.Minute)
	var sum float64
	var n int
	lows := 0
	for _, s := range states {
		if s.CellID == "" || s.InHandover {
			continue
		}
		sum += s.CapacityDL.Mbps()
		n++
		if s.CapacityDL < 5*unit.Mbps {
			lows++
		}
	}
	if n == 0 {
		t.Fatal("no attached ticks")
	}
	if lows == 0 {
		t.Error("no deep-fade ticks below 5 Mbps — the paper sees 35% of samples there")
	}
}

func median(xs []float64) float64 {
	cp := append([]float64(nil), xs...)
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	return cp[len(cp)/2]
}
