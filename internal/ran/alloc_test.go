package ran

import (
	"testing"
	"time"

	"github.com/nuwins/cellwheels/internal/deploy"
	"github.com/nuwins/cellwheels/internal/geo"
	"github.com/nuwins/cellwheels/internal/radio"
	"github.com/nuwins/cellwheels/internal/simrand"
)

// TestStepSteadyStateAllocs pins the hotalloc fixes on the per-tick RAN
// path: once a stationary UE has seen its serving cell (cellsSeen, the
// lazy OU load process, and the CA state are warm), Step must not
// allocate — hashNormal's inlined FNV, drawCC's stack-array weights, and
// the closure-free deploy searches are what this guards.
func TestStepSteadyStateAllocs(t *testing.T) {
	route := geo.DefaultRoute()
	rng := simrand.New(11)
	m := deploy.NewMap(radio.Verizon, route, rng)
	ue := NewUE(UEConfig{Op: radio.Verizon, Map: m}, rng)

	now := time.Date(2022, 8, 12, 9, 0, 0, 0, time.UTC)
	wp := route.At(5 * 1000) // parked 5 km along the route
	for i := 0; i < 400; i++ {
		ue.Step(now, wp, 0, tick)
		now = now.Add(tick)
	}

	avg := testing.AllocsPerRun(500, func() {
		ue.Step(now, wp, 0, tick)
		now = now.Add(tick)
	})
	if avg != 0 {
		t.Errorf("steady-state UE.Step allocates %.2f objects per tick, want 0", avg)
	}
}
