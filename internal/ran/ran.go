// Package ran simulates the radio access network as seen by one UE: which
// cell of which technology serves it at every instant, the A3-style
// handovers between cells and across technologies, per-cell background
// load, fast-fading bursts, and the resulting instantaneous link capacity
// in both directions.
//
// The UE is the meeting point of three substrates: deploy (what is built
// where, and the elevation policy), radio (propagation and capacity
// physics), and geo (where the vehicle is and how fast it moves). The
// transport and application layers consume the per-tick LinkState this
// package produces; the XCAL recorder samples it at 500 ms.
package ran

import (
	"math"
	"time"

	"github.com/nuwins/cellwheels/internal/deploy"
	"github.com/nuwins/cellwheels/internal/geo"
	"github.com/nuwins/cellwheels/internal/radio"
	"github.com/nuwins/cellwheels/internal/simrand"
	"github.com/nuwins/cellwheels/internal/unit"
)

// HandoverKind classifies a handover by the technology transition, the
// split Fig 12 analyses.
type HandoverKind int

// Handover kinds.
const (
	Horizontal4G HandoverKind = iota // 4G -> 4G
	Horizontal5G                     // 5G -> 5G
	Up                               // 4G -> 5G
	Down                             // 5G -> 4G
)

// String implements fmt.Stringer using the paper's arrow labels.
func (k HandoverKind) String() string {
	switch k {
	case Horizontal4G:
		return "4G->4G"
	case Horizontal5G:
		return "5G->5G"
	case Up:
		return "4G->5G"
	default:
		return "5G->4G"
	}
}

// KindOf classifies a technology transition.
func KindOf(from, to radio.Technology) HandoverKind {
	switch {
	case !from.Is5G() && !to.Is5G():
		return Horizontal4G
	case from.Is5G() && to.Is5G():
		return Horizontal5G
	case !from.Is5G():
		return Up
	default:
		return Down
	}
}

// HandoverEvent records one handover.
type HandoverEvent struct {
	Start    time.Time
	Duration time.Duration
	FromTech radio.Technology
	ToTech   radio.Technology
	FromCell string
	ToCell   string
	Odometer unit.Meters
}

// Kind reports the event's technology-transition class.
func (e HandoverEvent) Kind() HandoverKind { return KindOf(e.FromTech, e.ToTech) }

// LinkState is the per-tick observable state of the UE's serving link —
// exactly the KPI surface XCAL Solo taps (§3).
type LinkState struct {
	Time       time.Time
	Tech       radio.Technology
	CellID     string
	RSRP       unit.DBm
	SINR       unit.DB
	MCS        int
	BLER       float64
	CCDL       int
	CCUL       int
	Load       float64
	CapacityDL unit.BitRate
	CapacityUL unit.BitRate
	InHandover bool
}

// Capacity reports the state's capacity in the given direction.
func (s LinkState) Capacity(d radio.Direction) unit.BitRate {
	if d == radio.Uplink {
		return s.CapacityUL
	}
	return s.CapacityDL
}

// CC reports the carrier-aggregation count in the given direction.
func (s LinkState) CC(d radio.Direction) int {
	if d == radio.Uplink {
		return s.CCUL
	}
	return s.CCDL
}

// LoadBackend supplies serving-cell background load from an external
// model. The crowd registry (internal/ue) implements it with per-cell
// aggregate demand; a nil backend keeps the per-UE Ornstein–Uhlenbeck
// stand-in, byte-identical to the historical behavior.
type LoadBackend interface {
	// CellLoad reports the cell's background load in [0, 1) at the given
	// instant.
	CellLoad(c *deploy.Cell, now time.Time) float64
}

// UEConfig configures a simulated phone's RAN attachment.
type UEConfig struct {
	Op  radio.Operator
	Map *deploy.Map
	// ForceBest bypasses the traffic-aware elevation policy and always
	// serves from the best deployed technology — the policy ablation.
	ForceBest bool
	// Load, when non-nil, replaces the per-UE OU load stand-in with an
	// external demand-driven backend.
	Load LoadBackend
}

// Tunables of the attachment model. These are the calibration knobs
// DESIGN.md's ablation benches exercise.
const (
	// hysteresis is the A3 margin a neighbour must clear to trigger a
	// handover.
	hysteresis = 3.0 // dB
	// staticSearch is how far a parked tester roams to find the best
	// base station for a baseline test.
	staticSearch = 12 * unit.Kilometer
	// shadowBucket is the spatial granularity of the shadowing field.
	shadowBucket = 75 * unit.Meter
	// caRedrawEvery is how often the network reconfigures carrier
	// aggregation.
	caRedrawEvery = 2 * time.Second
	// fadeMeanGap is the mean time between deep-fade events at highway
	// speed; fades are rarer when slow.
	fadeMeanGap = 8 * time.Second
)

// hoMedian is the per-operator median handover duration in ms,
// calibrated to Fig 11b (V 53, T 76, A 58 for downlink).
func hoMedian(op radio.Operator) float64 {
	switch op {
	case radio.Verizon:
		return 52
	case radio.TMobile:
		return 75
	default:
		return 57
	}
}

// UE is one phone's RAN state machine.
type UE struct {
	cfg UEConfig

	policyRNG *simrand.Source
	caRNG     *simrand.Source
	fadeRNG   *simrand.Source
	hoRNG     *simrand.Source
	loadRNG   *simrand.Source

	traffic   deploy.Traffic
	lastAvail deploy.TechSet
	tech      radio.Technology
	cellIdx   int // index into map cells of s.tech; -1 if unattached
	attached  bool

	// handover execution window
	hoUntil time.Time

	// carrier aggregation state
	ccDL, ccUL int
	caNext     time.Time

	// deep-fade state
	fadeUntil time.Time
	fadeDepth float64 // multiplier on capacity during fade

	// per-cell load processes, created lazily
	loads map[string]*simrand.OU

	handovers  []HandoverEvent
	cellsSeen  map[string]bool
	state      LinkState
	everTicked bool
	staticMode bool
}

// NewUE attaches a new phone to an operator's network.
func NewUE(cfg UEConfig, rng *simrand.Source) *UE {
	src := rng.Fork("ue/" + cfg.Op.Short())
	return &UE{
		cfg:       cfg,
		policyRNG: src.Fork("policy"),
		caRNG:     src.Fork("ca"),
		fadeRNG:   src.Fork("fade"),
		hoRNG:     src.Fork("ho"),
		loadRNG:   src.Fork("load"),
		traffic:   deploy.Idle,
		tech:      radio.LTE,
		cellIdx:   -1,
		ccDL:      1,
		ccUL:      1,
		loads:     map[string]*simrand.OU{},
		cellsSeen: map[string]bool{},
	}
}

// SetTraffic updates the offered-traffic profile. The serving technology
// is re-evaluated: traffic turning heavy can elevate the UE; traffic
// turning idle keeps the elevated technology with probability
// deploy.StickyRetainProb (the mechanism that puts a few mmWave points on
// the paper's ping plots).
func (u *UE) SetTraffic(tr deploy.Traffic, now time.Time, wp geo.Waypoint) {
	if tr == u.traffic {
		return
	}
	goingIdle := tr == deploy.Idle
	u.traffic = tr
	if goingIdle && u.policyRNG.Bool(deploy.StickyRetainProb) {
		return // retain the elevated technology for now
	}
	u.reselectTech(now, wp)
}

// Traffic reports the current offered-traffic profile.
func (u *UE) Traffic() deploy.Traffic { return u.traffic }

// reselectTech runs the elevation policy and performs a vertical
// handover if the serving technology changes.
func (u *UE) reselectTech(now time.Time, wp geo.Waypoint) {
	avail := u.availAt(wp.Odometer)
	u.lastAvail = avail
	chosen := u.choose(avail, wp)
	if chosen == u.tech && u.attached {
		return
	}
	fromTech := u.tech
	fromCell := u.state.CellID
	u.tech = chosen
	u.cellIdx = u.bestCell(wp.Odometer, chosen)
	toCell := u.cellName()
	if u.attached && u.everTicked {
		u.recordHandover(now, fromTech, chosen, fromCell, toCell, wp.Odometer)
	}
	u.attached = true
	u.redrawCA(now)
}

// choose applies the elevation policy, honouring the ForceBest ablation
// and static mode. A parked tester facing the base station with heavy
// traffic always gets the best technology; idle (ICMP) traffic follows
// the normal conservative policy even when static, which is why the
// paper's static AT&T RTT tests ran over LTE (§5.1).
func (u *UE) choose(avail deploy.TechSet, wp geo.Waypoint) radio.Technology {
	if u.cfg.ForceBest || (u.staticMode && u.traffic != deploy.Idle) {
		return avail.Best()
	}
	return deploy.ChooseTech(u.cfg.Op, avail, u.traffic, wp.Timezone, u.policyRNG)
}

// availAt reports deployed technologies, searching city-wide in static
// mode.
func (u *UE) availAt(odo unit.Meters) deploy.TechSet {
	if u.staticMode {
		return u.cfg.Map.AvailableWithin(odo, staticSearch)
	}
	return u.cfg.Map.Available(odo)
}

// SetStaticMode marks the UE as parked for a baseline test battery: the
// tester positions the phone near the serving site with line of sight
// (§5.1 "facing the BS"), so distance is favourable, shadowing and deep
// fades vanish, and heavy traffic is always served by the best deployed
// technology.
func (u *UE) SetStaticMode(on bool) {
	u.staticMode = on
	if on {
		u.fadeUntil = time.Time{}
	}
}

// bestCell picks the strongest cell of a technology near the position.
// Returns -1 if none is in range (possible for thinly covered techs).
func (u *UE) bestCell(odo unit.Meters, t radio.Technology) int {
	window := 3 * radio.Band(t).CellRadius
	if u.staticMode && window < staticSearch {
		window = staticSearch
	}
	best, bestIdx := math.Inf(-1), -1
	lo, hi := u.cfg.Map.CellRange(odo, t, window)
	for i := lo; i < hi; i++ {
		c := u.cfg.Map.CellAt(t, i)
		r := float64(u.rsrpOf(c, odo))
		if r > best {
			best, bestIdx = r, i
		}
	}
	return bestIdx
}

// rsrpOf computes the RSRP of a cell at a position, with a shadowing
// field that is deterministic in (cell, position bucket) so the same
// stretch of road always fades the same way.
func (u *UE) rsrpOf(c *deploy.Cell, odo unit.Meters) unit.DBm {
	b := radio.Band(c.Tech)
	if u.staticMode {
		d := c.Distance(odo)
		if d > 60*unit.Meter {
			d = 60 * unit.Meter
		}
		return radio.RSRP(c.Tech, d, 0, radio.BeamGain(u.cfg.Op, c.Tech))
	}
	bucket := int64(odo / shadowBucket)
	shadow := unit.DB(hashNormal(c.ID, bucket) * b.ShadowSigma)
	return radio.RSRP(c.Tech, c.Distance(odo), shadow, radio.BeamGain(u.cfg.Op, c.Tech))
}

// FNV-1a constants, inlined below so the per-tick shadow-fading draw
// costs no allocation (fnv.New64a returns its state behind a hash.Hash64
// interface, and []byte(key) copies the key).
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

// hashNormal derives a deterministic standard-normal draw from a key and
// bucket via Box–Muller over two hash-derived uniforms. The hash is
// FNV-1a over the key bytes followed by the bucket's 8 little-endian
// bytes — bit-identical to the hash/fnv version it replaces.
func hashNormal(key string, bucket int64) float64 {
	x := fnvOffset64
	for i := 0; i < len(key); i++ {
		x ^= uint64(key[i])
		x *= fnvPrime64
	}
	v := uint64(bucket)
	for i := 0; i < 8; i++ {
		x ^= uint64(byte(v >> (8 * i)))
		x *= fnvPrime64
	}
	// splitmix64 to decorrelate the two uniforms
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	u1 := float64(x>>11) / float64(1<<53)
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	u2 := float64(x>>11) / float64(1<<53)
	if u1 < 1e-12 {
		u1 = 1e-12
	}
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

func (u *UE) cellName() string {
	if u.cellIdx < 0 {
		return ""
	}
	return u.cfg.Map.CellAt(u.tech, u.cellIdx).ID
}

// recordHandover logs an event and starts the execution window during
// which the link carries no traffic.
func (u *UE) recordHandover(now time.Time, fromTech, toTech radio.Technology, fromCell, toCell string, odo unit.Meters) {
	dur := unit.DurationFromMS(u.hoRNG.LogNormalMedian(hoMedian(u.cfg.Op), 0.35))
	u.handovers = append(u.handovers, HandoverEvent{
		Start: now, Duration: dur,
		FromTech: fromTech, ToTech: toTech,
		FromCell: fromCell, ToCell: toCell,
		Odometer: odo,
	})
	u.hoUntil = now.Add(dur)
}

// redrawCA samples a fresh carrier-aggregation configuration.
func (u *UE) redrawCA(now time.Time) {
	u.ccDL = drawCC(u.cfg.Op, u.tech, radio.Downlink, u.caRNG)
	u.ccUL = drawCC(u.cfg.Op, u.tech, radio.Uplink, u.caRNG)
	u.caNext = now.Add(caRedrawEvery)
}

// drawCC samples the number of aggregated carriers. Verizon rarely
// aggregates uplink carriers; T-Mobile often runs 2 (§5.5's CA analysis).
func drawCC(op radio.Operator, t radio.Technology, d radio.Direction, rng *simrand.Source) int {
	max := radio.Link(op, t, d).MaxCC
	if max <= 1 {
		return 1
	}
	if d == radio.Uplink {
		// Per-operator two-carrier probability; a switch rather than a map
		// literal because CA is redrawn on the per-tick path.
		var p2 float64
		switch op {
		case radio.Verizon:
			p2 = 0.05
		case radio.TMobile:
			p2 = 0.60
		case radio.ATT:
			p2 = 0.30
		}
		if rng.Bool(p2) {
			return 2
		}
		return 1
	}
	// Downlink: favour high aggregation, with a spread. The weights live
	// in a fixed-size stack array — the link table caps MaxCC at 8.
	var wbuf [8]float64
	if max > len(wbuf) {
		max = len(wbuf)
	}
	weights := wbuf[:max]
	for i := range weights {
		weights[i] = float64(i + 1)
	}
	return rng.Pick(weights) + 1
}

// loadOf returns the serving cell's background load: the external
// backend when configured, else the per-UE OU stand-in, stepped. The
// backend check comes before any RNG or map state is touched, so the
// nil-backend path draws exactly the historical sequence.
func (u *UE) loadOf(c *deploy.Cell, now time.Time) float64 {
	if u.cfg.Load != nil {
		return u.cfg.Load.CellLoad(c, now)
	}
	p, ok := u.loads[c.ID]
	if !ok {
		p = &simrand.OU{Mean: c.LoadMean, Revert: 0.003, Sigma: 0.006, Min: 0, Max: 0.92}
		u.loads[c.ID] = p
	}
	return p.Step(u.loadRNG)
}

// seedTargetLoad biases a handover target the UE has not visited yet
// toward a below-average load: mobility load balancing steers UEs to
// less-loaded neighbours, which is part of why post-handover throughput
// usually recovers or improves (§6). With an external backend the load
// is cell state, not per-UE state, so there is nothing to seed.
func (u *UE) seedTargetLoad(c *deploy.Cell) {
	if u.cfg.Load != nil {
		return
	}
	if _, ok := u.loads[c.ID]; ok {
		return
	}
	p := &simrand.OU{Mean: c.LoadMean, Revert: 0.003, Sigma: 0.006, Min: 0, Max: 0.92}
	p.Seed(c.LoadMean * u.loadRNG.Uniform(0.55, 0.95))
	u.loads[c.ID] = p
}

// Step advances the UE by dt at the given vehicle state and returns the
// new link state.
//
//lint:hotroot — the RAN model's per-tick entry point
func (u *UE) Step(now time.Time, wp geo.Waypoint, speedMPH float64, dt time.Duration) LinkState {
	avail := u.availAt(wp.Odometer)
	if !u.attached || avail != u.lastAvail || (u.cellIdx >= 0 && !avail.Has(u.tech)) {
		u.lastAvail = avail
		u.reselectTechOnCoverageChange(now, wp, avail)
	}

	// Horizontal handover: a neighbour beats the serving cell by the
	// hysteresis margin.
	if u.cellIdx >= 0 && now.After(u.hoUntil) {
		u.maybeHandover(now, wp)
	}

	// Carrier aggregation reconfiguration.
	if now.After(u.caNext) {
		u.redrawCA(now)
	}

	// Deep-fade process: underpasses, blockage, terrain. More frequent
	// at speed; suppressed in static mode (the operator parked with line
	// of sight to the serving site).
	if !u.staticMode && now.After(u.fadeUntil) {
		rate := (0.3 + speedMPH/70) / fadeMeanGap.Seconds() // events per second
		if u.fadeRNG.Bool(rate * dt.Seconds()) {
			u.fadeUntil = now.Add(time.Duration(u.fadeRNG.Uniform(3, 14) * float64(time.Second)))
			u.fadeDepth = u.fadeRNG.Uniform(0.005, 0.18)
		}
	}

	st := LinkState{Time: now, Tech: u.tech, CCDL: u.ccDL, CCUL: u.ccUL}
	if u.cellIdx >= 0 {
		c := u.cfg.Map.CellAt(u.tech, u.cellIdx)
		st.CellID = c.ID
		u.cellsSeen[c.ID] = true
		st.RSRP = u.rsrpOf(c, wp.Odometer)
		st.Load = u.loadOf(c, now)
		st.SINR = radio.SINR(u.tech, st.RSRP, st.Load)
		st.MCS = radio.MCSFromSINR(st.SINR)
		burst := 0.0
		if now.Before(u.fadeUntil) {
			// The capacity collapse of a fade is modeled separately; the
			// BLER the UE reports rises only modestly because HARQ keeps
			// retransmitting through it.
			burst = 0.02
		}
		st.BLER = radio.BLER(speedMPH, burst, u.fadeRNG.Float64())
		st.CapacityDL = radio.Capacity(u.cfg.Op, u.tech, radio.Downlink, u.ccDL, st.SINR, st.BLER, st.Load)
		st.CapacityUL = radio.Capacity(u.cfg.Op, u.tech, radio.Uplink, u.ccUL, st.SINR, st.BLER, st.Load)
		if now.Before(u.fadeUntil) {
			st.CapacityDL = unit.BitRate(float64(st.CapacityDL) * u.fadeDepth)
			st.CapacityUL = unit.BitRate(float64(st.CapacityUL) * u.fadeDepth)
		}
	} else {
		// Out of range of every cell of the serving technology: no
		// capacity until coverage changes.
		st.RSRP = -140
		st.SINR = -10
		st.MCS = 0
		st.BLER = 0.6
	}
	if now.Before(u.hoUntil) {
		st.InHandover = true
		st.CapacityDL, st.CapacityUL = 0, 0
	}
	u.state = st
	u.everTicked = true
	return st
}

// reselectTechOnCoverageChange re-runs the policy when the deployed set
// under the UE changes (fragment boundary) or on first attach.
func (u *UE) reselectTechOnCoverageChange(now time.Time, wp geo.Waypoint, avail deploy.TechSet) {
	chosen := u.choose(avail, wp)
	if chosen == u.tech && u.attached {
		// Same technology still; make sure we are attached to a cell.
		if u.cellIdx < 0 {
			u.cellIdx = u.bestCell(wp.Odometer, u.tech)
		}
		return
	}
	fromTech, fromCell := u.tech, u.state.CellID
	u.tech = chosen
	u.cellIdx = u.bestCell(wp.Odometer, chosen)
	if u.attached && u.everTicked && u.cellIdx >= 0 {
		u.recordHandover(now, fromTech, chosen, fromCell, u.cellName(), wp.Odometer)
	}
	u.attached = true
	u.redrawCA(now)
}

// maybeHandover checks the A3 condition against nearby cells.
func (u *UE) maybeHandover(now time.Time, wp geo.Waypoint) {
	serving := u.cfg.Map.CellAt(u.tech, u.cellIdx)
	servingRSRP := float64(u.rsrpOf(serving, wp.Odometer))
	window := 3 * radio.Band(u.tech).CellRadius
	best, bestIdx := servingRSRP+hysteresis, -1
	lo, hi := u.cfg.Map.CellRange(wp.Odometer, u.tech, window)
	for i := lo; i < hi; i++ {
		if i == u.cellIdx {
			continue
		}
		c := u.cfg.Map.CellAt(u.tech, i)
		if r := float64(u.rsrpOf(c, wp.Odometer)); r > best {
			best, bestIdx = r, i
		}
	}
	if bestIdx >= 0 {
		fromCell := serving.ID
		u.cellIdx = bestIdx
		u.seedTargetLoad(u.cfg.Map.CellAt(u.tech, bestIdx))
		u.recordHandover(now, u.tech, u.tech, fromCell, u.cellName(), wp.Odometer)
	}
}

// Handovers returns all handover events so far, in order.
func (u *UE) Handovers() []HandoverEvent {
	return append([]HandoverEvent(nil), u.handovers...)
}

// HandoverCount reports the number of handovers so far without copying.
func (u *UE) HandoverCount() int { return len(u.handovers) }

// HandoversFrom returns a view of the events starting at index i. The
// returned slice is borrowed from the UE's internal log: callers must not
// modify it and must not hold it across further Steps.
func (u *UE) HandoversFrom(i int) []HandoverEvent {
	if i < 0 || i > len(u.handovers) {
		return nil
	}
	return u.handovers[i:]
}

// HandoversSince reports events starting at or after t.
func (u *UE) HandoversSince(t time.Time) []HandoverEvent {
	var out []HandoverEvent
	for _, e := range u.handovers {
		if !e.Start.Before(t) {
			out = append(out, e)
		}
	}
	return out
}

// UniqueCells reports how many distinct cells the UE has connected to —
// Table 1's "# of unique cells connected".
func (u *UE) UniqueCells() int { return len(u.cellsSeen) }

// State reports the last computed link state.
func (u *UE) State() LinkState { return u.state }

// Tech reports the current serving technology.
func (u *UE) Tech() radio.Technology { return u.tech }
