package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
	"time"

	"github.com/nuwins/cellwheels"
	"github.com/nuwins/cellwheels/internal/atomicio"
	"github.com/nuwins/cellwheels/internal/fleetsync"
	"github.com/nuwins/cellwheels/internal/obs"
)

// followInterval paces the streaming progress endpoint.
const followInterval = 500 * time.Millisecond

// Config parameterizes a daemon.
type Config struct {
	// DataDir is the daemon's state root; each job owns
	// <DataDir>/jobs/<id>/ and artifacts are served from there.
	DataDir string
	// Workers caps how many queued jobs execute concurrently
	// (0 = GOMAXPROCS). Collect jobs run outside this pool — they are
	// servers, not computations.
	Workers int
	// CacheSize bounds the precomputed-timeline cache (0 = 4 entries).
	CacheSize int
	// Obs receives daemon-level counters (submissions, dedups, cache
	// traffic). Per-job metrics go to each job's own recorder. May be
	// nil.
	Obs *obs.Recorder
	// TestHookRun, when non-nil, runs at the start of every pooled job
	// on its worker goroutine — the test-only seam for injecting
	// failures and panics through the real execution path. Production
	// callers leave it nil.
	TestHookRun func(*Job)
}

// Server is the daemon: a FIFO job queue drained by a bounded worker
// pool, a shared timeline cache, at most one live fleetsync collector,
// and the HTTP API over all of it. Jobs are in-memory state; artifacts
// are files. A Server survives any job outcome — panics included — and
// drains cleanly on Shutdown.
type Server struct {
	cfg     Config
	jobsDir string
	rec     *obs.Recorder
	cache   *timelineCache

	mu       sync.Mutex
	cond     *sync.Cond // signals queue growth and drain start
	jobs     map[string]*Job
	order    []string // submission order, for listing
	queue    []*Job   // FIFO of queued pooled jobs
	draining bool

	// The mounted collector, when a collect job is live. Mounting is
	// exclusive: the /fleetsync/v1 path can only mean one reduction.
	collect        *Job
	collectCol     *fleetsync.Collector
	collectHandler http.Handler

	stop      chan struct{} // closed on Shutdown; interrupts the collect wait
	workerWG  sync.WaitGroup
	collectWG sync.WaitGroup
}

// New builds a Server and starts its worker pool.
func New(cfg Config) (*Server, error) {
	if cfg.DataDir == "" {
		return nil, fmt.Errorf("serve: DataDir is required")
	}
	jobsDir := filepath.Join(cfg.DataDir, "jobs")
	if err := os.MkdirAll(jobsDir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	cacheSize := cfg.CacheSize
	if cacheSize <= 0 {
		cacheSize = 4
	}
	s := &Server{
		cfg:     cfg,
		jobsDir: jobsDir,
		rec:     cfg.Obs,
		cache:   newTimelineCache(cacheSize, cfg.Obs, nil),
		jobs:    map[string]*Job{},
		stop:    make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	for i := 0; i < workers; i++ {
		s.workerWG.Add(1)
		go s.worker()
	}
	return s, nil
}

// Shutdown drains the daemon: no new submissions are accepted, every
// already-accepted job still runs to completion (the whole queue, not
// just in-flight work — an accepted job's artifacts are a promise), and
// a live collect job finalizes with whatever runs have arrived. Returns
// ctx.Err if the drain outlives the context.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.stop)
		s.cond.Broadcast()
	}
	s.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		s.workerWG.Wait()
		s.collectWG.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: shutdown interrupted with jobs still running")
	}
}

// Handler returns the daemon's HTTP interface.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/progress", s.handleProgress)
	mux.HandleFunc("GET /v1/jobs/{id}/artifacts/{name}", s.handleArtifact)
	mux.HandleFunc(fleetsync.BasePath+"/", s.handleFleetsync)
	return mux
}

// handleSubmit accepts a job. Submissions are content-addressed: an ID
// collision is the same job, answered with its current status instead
// of a second execution — re-submitting is always safe.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	spec, id, err := ParseJobSpec(io.LimitReader(r.Body, 8<<20))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		http.Error(w, "daemon is draining", http.StatusServiceUnavailable)
		return
	}
	if j, ok := s.jobs[id]; ok {
		s.mu.Unlock()
		s.rec.Counter("serve/jobs_deduped").Add(1)
		writeJSON(w, http.StatusOK, j.Status())
		return
	}
	j := newJob(id, spec, filepath.Join(s.jobsDir, id))
	if err := os.MkdirAll(j.dir, 0o755); err != nil {
		s.mu.Unlock()
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if spec.Kind == KindCollect {
		if code, err := s.startCollectLocked(j); err != nil {
			s.mu.Unlock()
			http.Error(w, err.Error(), code)
			return
		}
	} else {
		s.queue = append(s.queue, j)
		s.cond.Signal()
	}
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.mu.Unlock()

	s.rec.Counter("serve/jobs_submitted").Add(1)
	writeJSON(w, http.StatusCreated, j.Status())
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	out := make([]JobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.Status()
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) lookup(w http.ResponseWriter, r *http.Request) *Job {
	s.mu.Lock()
	j := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if j == nil {
		http.Error(w, "no such job", http.StatusNotFound)
	}
	return j
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	if j := s.lookup(w, r); j != nil {
		writeJSON(w, http.StatusOK, j.Status())
	}
}

// handleProgress reports a job's live obs snapshot. With ?follow=1 it
// streams NDJSON — one snapshot per tick — until the job finishes or
// the client goes away, ending with the terminal snapshot.
func (s *Server) handleProgress(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	if r.URL.Query().Get("follow") == "" {
		writeJSON(w, http.StatusOK, j.progress())
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	tick := time.NewTicker(followInterval)
	defer tick.Stop()
	for {
		if err := writeNDJSON(w, flusher, j.progress()); err != nil {
			return
		}
		select {
		case <-j.Done():
			_ = writeNDJSON(w, flusher, j.progress())
			return
		case <-r.Context().Done():
			return
		case <-tick.C:
		}
	}
}

// handleArtifact serves one published artifact file. The name must be
// on the job's published list — the daemon never serves an unlisted
// path, which also closes every traversal spelling.
func (s *Server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	name := r.PathValue("name")
	if !j.hasArtifact(name) {
		http.Error(w, "no such artifact", http.StatusNotFound)
		return
	}
	http.ServeFile(w, r, filepath.Join(j.dir, name))
}

// handleFleetsync routes the fleetsync protocol to the live collect
// job's collector. Without one the push endpoints answer 503 — the
// status a fleetrun worker treats as "collector not ready, retry".
func (s *Server) handleFleetsync(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	h := s.collectHandler
	s.mu.Unlock()
	if h == nil {
		http.Error(w, "no active collect job", http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

// worker drains the FIFO queue. On drain it keeps popping until the
// queue is empty, then exits — accepted jobs always run.
func (s *Server) worker() {
	defer s.workerWG.Done()
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.draining {
			s.cond.Wait()
		}
		if len(s.queue) == 0 {
			s.mu.Unlock()
			return
		}
		j := s.queue[0]
		s.queue = s.queue[1:]
		s.mu.Unlock()
		s.runJob(j)
	}
}

// runJob executes one pooled job with panic containment: a panicking
// campaign fails its own job and nothing else — the worker survives to
// take the next one.
//
//lint:cold — runs once per job; the hot loops are inside the campaign it dispatches, already rooted at the lane engine
func (s *Server) runJob(j *Job) {
	j.setRunning()
	err := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("job panicked: %v", r)
			}
		}()
		if s.cfg.TestHookRun != nil {
			s.cfg.TestHookRun(j)
		}
		switch j.Spec.Kind {
		case KindCampaign:
			return s.runCampaign(j)
		case KindFleet:
			return s.runFleet(j)
		default:
			return fmt.Errorf("unknown job kind %q", j.Spec.Kind)
		}
	}()
	j.finish(err)
	if err != nil {
		s.rec.Counter("serve/jobs_failed").Add(1)
	} else {
		s.rec.Counter("serve/jobs_done").Add(1)
	}
}

// runCampaign executes a campaign job: timeline from the shared cache,
// then exactly the drivetest artifact set — dataset.json (the bytes of
// Study.WriteJSON), report.txt, optional CSV tables, and the job's obs
// manifest last so it carries every phase.
//
//lint:cold — once per job; per-tick work lives in the campaign, not the daemon
func (s *Server) runCampaign(j *Job) error {
	cfg := *j.Spec.Config
	cfg.Obs = nil
	cfg.SharedTimeline = nil
	tl, err := s.cache.get(cfg.Fingerprint(), cfg)
	if err != nil {
		return err
	}
	cfg.Obs = j.rec
	cfg.SharedTimeline = tl
	study, err := cellwheels.Run(cfg)
	if err != nil {
		return err
	}
	if err := study.WriteJSONFile(filepath.Join(j.dir, "dataset.json")); err != nil {
		return err
	}
	j.addArtifact("dataset.json")
	if err := writeText(filepath.Join(j.dir, "report.txt"), study.Report()); err != nil {
		return err
	}
	j.addArtifact("report.txt")
	if j.Spec.CSV {
		if err := study.WriteCSV(j.dir); err != nil {
			return err
		}
		for _, name := range []string{"throughput.csv", "rtt.csv", "handovers.csv", "appruns.csv"} {
			j.addArtifact(name)
		}
	}
	return s.writeObsManifest(j)
}

// runFleet executes a fleet job in-process, producing fleetrun's
// artifact pair. Failed runs fail the job but keep its artifacts — the
// manifest is exactly where the failures are recorded.
//
//lint:cold — once per job; per-tick work lives in the fleet's campaigns, not the daemon
func (s *Server) runFleet(j *Job) error {
	cfg := *j.Spec.Scenario
	cfg.Obs = j.rec
	res, err := cellwheels.RunFleet(cfg)
	if err != nil {
		return err
	}
	if err := s.writeFleetArtifacts(j, res.Report(), res.WriteManifest); err != nil {
		return err
	}
	if res.Failed() > 0 {
		return fmt.Errorf("%d of %d runs failed (see fleet-manifest.json)", res.Failed(), res.Runs())
	}
	return nil
}

// startCollectLocked mounts a collect job: builds its reducer, store,
// and collector, publishes the handler at /fleetsync/v1, and parks a
// goroutine on the completion wait. Callers hold s.mu. Exclusive: a
// second collect job while one is live is a conflict.
func (s *Server) startCollectLocked(j *Job) (int, error) {
	if s.collect != nil {
		return http.StatusConflict, fmt.Errorf("a collect job is already active (%s)", s.collect.ID)
	}
	red, err := cellwheels.FleetReducer(*j.Spec.Scenario)
	if err != nil {
		return http.StatusBadRequest, err
	}
	store, err := fleetsync.OpenStore(filepath.Join(j.dir, "sync"))
	if err != nil {
		return http.StatusInternalServerError, err
	}
	col, err := fleetsync.NewCollector(j.Spec.Fingerprint, red, store, j.rec)
	if err != nil {
		return http.StatusBadRequest, err
	}
	s.collect = j
	s.collectCol = col
	s.collectHandler = col.Handler()
	j.setRunning()
	s.collectWG.Add(1)
	go s.collectLoop(j, col)
	return 0, nil
}

// collectLoop waits for the collector to complete — or for Shutdown —
// then unmounts it and finalizes the job with the reduction as it
// stands. An interrupted collection still writes its partial fold (the
// report over received runs plus the manifest) and fails the job with
// the receive count, mirroring fleetrun -serve killed mid-fleet.
func (s *Server) collectLoop(j *Job, col *fleetsync.Collector) {
	defer s.collectWG.Done()
	select {
	case <-col.Done():
	case <-s.stop:
	}
	s.mu.Lock()
	s.collect = nil
	s.collectCol = nil
	s.collectHandler = nil
	s.mu.Unlock()

	res := col.Result()
	err := s.writeFleetArtifacts(j, res.Report(), res.Manifest.WriteJSON)
	if err == nil {
		man := col.Manifest()
		switch {
		case !col.Complete():
			err = fmt.Errorf("interrupted: %d of %d runs collected", man.Received, man.Total)
		case res.Manifest.Failed > 0:
			err = fmt.Errorf("%d of %d runs failed (see fleet-manifest.json)", res.Manifest.Failed, len(res.Manifest.Runs))
		}
	}
	j.finish(err)
	if err != nil {
		s.rec.Counter("serve/jobs_failed").Add(1)
	} else {
		s.rec.Counter("serve/jobs_done").Add(1)
	}
}

// writeFleetArtifacts installs the fleet artifact set shared by fleet
// and collect jobs: report, fleet manifest, obs manifest.
func (s *Server) writeFleetArtifacts(j *Job, report string, writeManifest func(io.Writer) error) error {
	if err := writeText(filepath.Join(j.dir, "fleet-report.txt"), report); err != nil {
		return err
	}
	j.addArtifact("fleet-report.txt")
	if err := atomicio.WriteFile(filepath.Join(j.dir, "fleet-manifest.json"), 0o644, writeManifest); err != nil {
		return err
	}
	j.addArtifact("fleet-manifest.json")
	return s.writeObsManifest(j)
}

// writeObsManifest archives the job's observability manifest as its
// last artifact. It carries wall-clock fields, so it is the one
// artifact not expected to be byte-identical across runs.
func (s *Server) writeObsManifest(j *Job) error {
	j.rec.SetLabel("job_id", j.ID)
	j.rec.SetLabel("job_kind", j.Spec.Kind)
	if err := atomicio.WriteFile(filepath.Join(j.dir, "manifest.json"), 0o644, j.rec.WriteManifest); err != nil {
		return err
	}
	j.addArtifact("manifest.json")
	return nil
}

// Snapshot reports the daemon's own obs registry plus queue gauges —
// what wheelsd -metrics serializes on exit.
func (s *Server) Snapshot() obs.Snapshot {
	s.mu.Lock()
	queued := len(s.queue)
	total := len(s.jobs)
	s.mu.Unlock()
	s.rec.Gauge("serve/jobs_queued").Set(float64(queued))
	s.rec.Gauge("serve/jobs_total").Set(float64(total))
	return s.rec.Snapshot()
}

func writeText(path, text string) error {
	return atomicio.WriteFile(path, 0o644, func(w io.Writer) error {
		_, err := io.WriteString(w, text)
		return err
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(data)+1))
	w.WriteHeader(code)
	if _, err := w.Write(append(data, '\n')); err != nil {
		return // client went away
	}
}

func writeNDJSON(w io.Writer, flusher http.Flusher, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if _, err := w.Write(append(data, '\n')); err != nil {
		return err
	}
	if flusher != nil {
		flusher.Flush()
	}
	return nil
}
