package serve

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/nuwins/cellwheels"
	"github.com/nuwins/cellwheels/internal/obs"
)

// countingBuild is an injectable timeline builder that counts real
// builds and hands out distinct Timeline pointers per call.
func countingBuild(calls *atomic.Int64, delay time.Duration, fail func(cellwheels.Config) error) func(cellwheels.Config) (*cellwheels.Timeline, error) {
	return func(cfg cellwheels.Config) (*cellwheels.Timeline, error) {
		calls.Add(1)
		if delay > 0 {
			time.Sleep(delay)
		}
		if fail != nil {
			if err := fail(cfg); err != nil {
				return nil, err
			}
		}
		return &cellwheels.Timeline{}, nil
	}
}

// TestCacheSingleFlight: many concurrent requests for one key trigger
// exactly one build, and every waiter receives the same timeline.
func TestCacheSingleFlight(t *testing.T) {
	var calls atomic.Int64
	c := newTimelineCache(4, obs.New(), countingBuild(&calls, 30*time.Millisecond, nil))

	const waiters = 12
	got := make([]*cellwheels.Timeline, waiters)
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tl, err := c.get("same-key", cellwheels.Config{})
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
				return
			}
			got[i] = tl
		}(i)
	}
	wg.Wait()
	if n := calls.Load(); n != 1 {
		t.Fatalf("want exactly 1 build for one key, got %d", n)
	}
	for i := 1; i < waiters; i++ {
		if got[i] != got[0] {
			t.Fatalf("waiter %d received a different timeline pointer", i)
		}
	}
}

// TestCacheDistinctKeys: different fingerprints never share a build or
// a timeline.
func TestCacheDistinctKeys(t *testing.T) {
	var calls atomic.Int64
	c := newTimelineCache(4, obs.New(), countingBuild(&calls, 0, nil))
	a, err := c.get("key-a", cellwheels.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.get("key-b", cellwheels.Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 2 {
		t.Fatalf("want 2 builds for 2 keys, got %d", calls.Load())
	}
	if a == b {
		t.Fatal("distinct keys shared one timeline")
	}
}

// TestCacheEviction: the cache never holds more than its capacity; an
// evicted key is rebuilt on its next use.
func TestCacheEviction(t *testing.T) {
	var calls atomic.Int64
	c := newTimelineCache(2, obs.New(), countingBuild(&calls, 0, nil))
	for i := 0; i < 5; i++ {
		key := fmt.Sprintf("key-%d", i)
		if _, err := c.get(key, cellwheels.Config{}); err != nil {
			t.Fatal(err)
		}
		if n := c.len(); n > 2 {
			t.Fatalf("cache holds %d entries, capacity is 2", n)
		}
	}
	if calls.Load() != 5 {
		t.Fatalf("want 5 builds for 5 distinct keys, got %d", calls.Load())
	}
	// key-0 was evicted long ago: rebuild. key-4 is resident: hit.
	if _, err := c.get("key-0", cellwheels.Config{}); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 6 {
		t.Fatalf("evicted key should rebuild (want 6 builds, got %d)", calls.Load())
	}
	if _, err := c.get("key-4", cellwheels.Config{}); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 6 {
		t.Fatalf("resident key should hit (want 6 builds, got %d)", calls.Load())
	}
}

// TestCacheLRUOrder: touching an old entry protects it; the eviction
// victim is the least recently used key, not the oldest inserted.
func TestCacheLRUOrder(t *testing.T) {
	var calls atomic.Int64
	c := newTimelineCache(2, obs.New(), countingBuild(&calls, 0, nil))
	mustGet := func(key string) {
		t.Helper()
		if _, err := c.get(key, cellwheels.Config{}); err != nil {
			t.Fatal(err)
		}
	}
	mustGet("a")
	mustGet("b")
	mustGet("a")         // refresh a; b is now LRU
	mustGet("c")         // evicts b
	calls.Store(0)
	mustGet("a")
	if calls.Load() != 0 {
		t.Fatal("a was evicted despite being recently used")
	}
	mustGet("b")
	if calls.Load() != 1 {
		t.Fatal("b should have been the eviction victim and rebuilt")
	}
}

// TestCacheErrorNotCached: a failed build is reported to its waiters
// but never poisons the key — the next request rebuilds.
func TestCacheErrorNotCached(t *testing.T) {
	var calls atomic.Int64
	failFirst := func(cellwheels.Config) error {
		if calls.Load() == 1 {
			return fmt.Errorf("transient build failure")
		}
		return nil
	}
	c := newTimelineCache(4, obs.New(), countingBuild(&calls, 0, failFirst))
	if _, err := c.get("key", cellwheels.Config{}); err == nil {
		t.Fatal("want the injected failure")
	}
	tl, err := c.get("key", cellwheels.Config{})
	if err != nil {
		t.Fatalf("retry after failed build: %v", err)
	}
	if tl == nil {
		t.Fatal("retry returned no timeline")
	}
	if calls.Load() != 2 {
		t.Fatalf("want 2 builds (fail, then rebuild), got %d", calls.Load())
	}
}
