// Package serve is the service mode of cellwheels: a long-lived daemon
// (cmd/wheelsd) that runs campaigns, fleets, and fleetsync collections
// as jobs behind an HTTP/JSON API. The daemon adds scheduling, caching,
// and transport around the library — never simulation semantics: every
// artifact a job produces is byte-identical to the equivalent
// drivetest/fleetrun invocation, pinned by tests under -race.
package serve

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"github.com/nuwins/cellwheels"
	"github.com/nuwins/cellwheels/internal/obs"
)

// Job kinds.
const (
	KindCampaign = "campaign" // one cellwheels.Run; artifacts dataset.json, report.txt, manifest.json
	KindFleet    = "fleet"    // one cellwheels.RunFleet; artifacts fleet-report.txt, fleet-manifest.json, manifest.json
	KindCollect  = "collect"  // host a fleetsync collector until its run matrix completes
)

// Job states.
const (
	StateQueued  = "queued"
	StateRunning = "running"
	StateDone    = "done"
	StateFailed  = "failed"
)

// JobSpec is the submission body of POST /v1/jobs. Decoding is strict
// (unknown keys are errors), mirroring the CLI's scenario parsing: a
// typo fails at submission, not after queueing.
type JobSpec struct {
	// Kind selects what the job runs: "campaign", "fleet", or "collect".
	Kind string `json:"kind"`
	// Config is the campaign configuration (kind "campaign" only).
	Config *cellwheels.Config `json:"config,omitempty"`
	// CSV additionally exports the campaign's per-table CSV artifacts
	// (kind "campaign" only).
	CSV bool `json:"csv,omitempty"`
	// Scenario is the fleet scenario (kinds "fleet" and "collect"),
	// with the ParseFleetScenario layout.
	Scenario *cellwheels.FleetConfig `json:"scenario,omitempty"`
	// Fingerprint is the scenario fingerprint a collect job's workers
	// must present (kind "collect" only). fleetrun -push fingerprints
	// the scenario file's exact bytes (sha256), so submitters pushing
	// from the CLI pass that hash here. Empty means the sha256 of the
	// scenario's canonical parsed form — fine when every pusher is
	// another wheelsd client, wrong for CLI workers.
	Fingerprint string `json:"fingerprint,omitempty"`
}

// ParseJobSpec strictly decodes, validates, and canonicalizes a job
// submission, returning the spec and its deterministic job ID: the
// sha256 of the spec's canonical re-marshalled form (fixed field order,
// parsed values). Two submissions that parse to the same spec — however
// their JSON was formatted — get the same ID, which is what makes
// re-submission idempotent.
func ParseJobSpec(r io.Reader) (JobSpec, string, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var spec JobSpec
	if err := dec.Decode(&spec); err != nil {
		return JobSpec{}, "", fmt.Errorf("bad job spec: %w", err)
	}
	if err := validateSpec(&spec); err != nil {
		return JobSpec{}, "", err
	}
	canonical, err := json.Marshal(spec)
	if err != nil {
		return JobSpec{}, "", fmt.Errorf("bad job spec: %w", err)
	}
	return spec, fmt.Sprintf("%x", sha256.Sum256(canonical)), nil
}

// validateSpec rejects malformed submissions and fills derivable
// defaults (a collect job's fingerprint) before the ID is computed.
func validateSpec(spec *JobSpec) error {
	switch spec.Kind {
	case KindCampaign:
		if spec.Config == nil {
			return fmt.Errorf("campaign job needs a config")
		}
		if spec.Scenario != nil || spec.Fingerprint != "" {
			return fmt.Errorf("campaign job takes only config and csv")
		}
		if err := spec.Config.Validate(); err != nil {
			return err
		}
	case KindFleet, KindCollect:
		if spec.Scenario == nil {
			return fmt.Errorf("%s job needs a scenario", spec.Kind)
		}
		if spec.Config != nil || spec.CSV {
			return fmt.Errorf("%s job takes a scenario, not a campaign config", spec.Kind)
		}
		if spec.Kind == KindFleet && spec.Fingerprint != "" {
			return fmt.Errorf("fingerprint only makes sense for collect jobs")
		}
		if spec.Scenario.ArchiveDir != "" {
			return fmt.Errorf("archive_dir is not supported in service jobs; artifacts are served per job")
		}
		if err := spec.Scenario.Validate(); err != nil {
			return err
		}
		if spec.Kind == KindCollect && spec.Fingerprint == "" {
			canonical, err := json.Marshal(spec.Scenario)
			if err != nil {
				return fmt.Errorf("bad scenario: %w", err)
			}
			spec.Fingerprint = fmt.Sprintf("%x", sha256.Sum256(canonical))
		}
	case "":
		return fmt.Errorf("job spec needs a kind (campaign, fleet, or collect)")
	default:
		return fmt.Errorf("unknown job kind %q (want campaign, fleet, or collect)", spec.Kind)
	}
	return nil
}

// Job is one unit of daemon work. Identity is content-addressed (see
// ParseJobSpec), execution state is guarded by mu, and every job owns a
// directory its artifacts are atomically written into plus a private
// obs recorder the progress endpoint snapshots live.
type Job struct {
	ID   string
	Spec JobSpec
	dir  string
	rec  *obs.Recorder
	done chan struct{} // closed on done or failed

	mu        sync.Mutex
	state     string
	errMsg    string
	artifacts []string
}

func newJob(id string, spec JobSpec, dir string) *Job {
	return &Job{
		ID:    id,
		Spec:  spec,
		dir:   dir,
		rec:   obs.New(),
		done:  make(chan struct{}),
		state: StateQueued,
	}
}

// Done is closed once the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

func (j *Job) setRunning() {
	j.mu.Lock()
	j.state = StateRunning
	j.mu.Unlock()
}

// finish moves the job to its terminal state and wakes progress
// followers. Artifacts recorded before a failure stay downloadable —
// a fleet job with failed runs still serves its manifest.
func (j *Job) finish(err error) {
	j.mu.Lock()
	if err != nil {
		j.state = StateFailed
		j.errMsg = err.Error()
	} else {
		j.state = StateDone
	}
	j.mu.Unlock()
	close(j.done)
}

// addArtifact publishes one downloadable file (already written into the
// job directory) under its bare name.
func (j *Job) addArtifact(name string) {
	j.mu.Lock()
	j.artifacts = append(j.artifacts, name)
	j.mu.Unlock()
}

// hasArtifact reports whether name was published by addArtifact — the
// only gate the artifact endpoint serves through, so nothing outside
// the published list (and no path-traversal spelling of anything) is
// reachable.
func (j *Job) hasArtifact(name string) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	for _, a := range j.artifacts {
		if a == name {
			return true
		}
	}
	return false
}

// JobStatus is the wire form of a job in GET /v1/jobs responses.
type JobStatus struct {
	ID        string   `json:"id"`
	Kind      string   `json:"kind"`
	State     string   `json:"state"`
	Error     string   `json:"error,omitempty"`
	Artifacts []string `json:"artifacts,omitempty"`
}

// Status snapshots the job for the API.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	arts := make([]string, len(j.artifacts))
	copy(arts, j.artifacts)
	return JobStatus{
		ID:        j.ID,
		Kind:      j.Spec.Kind,
		State:     j.state,
		Error:     j.errMsg,
		Artifacts: arts,
	}
}

// Progress is the wire form of GET /v1/jobs/{id}/progress: the job's
// state plus a live snapshot of its obs registry — the same counters and
// gauges the -progress CLI reporter renders.
type Progress struct {
	ID    string       `json:"id"`
	State string       `json:"state"`
	Error string       `json:"error,omitempty"`
	Obs   obs.Snapshot `json:"obs"`
}

// progress snapshots the job's live counters. Safe at any state: a
// queued job reports an empty snapshot.
func (j *Job) progress() Progress {
	j.mu.Lock()
	state, errMsg := j.state, j.errMsg
	j.mu.Unlock()
	return Progress{ID: j.ID, State: state, Error: errMsg, Obs: j.rec.Snapshot()}
}
