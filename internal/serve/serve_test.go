package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/nuwins/cellwheels"
	"github.com/nuwins/cellwheels/internal/fleetsync"
	"github.com/nuwins/cellwheels/internal/obs"
)

// quickConfig is a campaign small enough to run many times in tests but
// still exercising the full drive pipeline.
func quickConfig(seed int64) cellwheels.Config {
	return cellwheels.Config{Seed: seed, LimitKm: 6, SkipApps: true, SkipStatic: true, SkipPassive: true}
}

func quickSpec(seed int64) string {
	return fmt.Sprintf(`{"kind":"campaign","config":{"seed":%d,"limit_km":6,"skip_apps":true,"skip_static":true,"skip_passive":true}}`, seed)
}

// startServer builds a daemon on a temp DataDir plus an httptest server
// over its handler, both torn down with the test.
func startServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.DataDir == "" {
		cfg.DataDir = t.TempDir()
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
	})
	return s, ts
}

// submit POSTs a job spec and decodes the response status.
func submit(t *testing.T, ts *httptest.Server, body string) (JobStatus, int) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("submit read: %v", err)
	}
	var st JobStatus
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusCreated {
		if err := json.Unmarshal(raw, &st); err != nil {
			t.Fatalf("submit decode %q: %v", raw, err)
		}
	} else {
		st.Error = strings.TrimSpace(string(raw))
	}
	return st, resp.StatusCode
}

// waitJob polls the job endpoint until the job is terminal.
func waitJob(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatalf("poll: %v", err)
		}
		var st JobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("poll decode: %v", err)
		}
		if st.State == StateDone || st.State == StateFailed {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after deadline", id, st.State)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// fetch downloads one artifact.
func fetch(t *testing.T, ts *httptest.Server, id, name string) []byte {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/artifacts/" + name)
	if err != nil {
		t.Fatalf("fetch %s: %v", name, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fetch %s: status %d", name, resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("fetch %s: %v", name, err)
	}
	return data
}

// TestCampaignJobsByteIdenticalConcurrent is the service-mode
// acceptance pin: concurrent submissions — including duplicate
// re-submits racing the originals — produce artifacts byte-identical to
// direct library runs, under -race.
func TestCampaignJobsByteIdenticalConcurrent(t *testing.T) {
	seeds := []int64{21, 22}
	wantData := make(map[int64][]byte)
	wantReport := make(map[int64]string)
	for _, seed := range seeds {
		study, err := cellwheels.Run(quickConfig(seed))
		if err != nil {
			t.Fatalf("direct run: %v", err)
		}
		var buf bytes.Buffer
		if err := study.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		wantData[seed] = buf.Bytes()
		wantReport[seed] = study.Report()
	}

	_, ts := startServer(t, Config{Workers: 2})
	var wg sync.WaitGroup
	ids := make(map[int64]string)
	var mu sync.Mutex
	for _, seed := range seeds {
		for dup := 0; dup < 2; dup++ { // each spec submitted twice, racing
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				st, code := submit(t, ts, quickSpec(seed))
				if code != http.StatusCreated && code != http.StatusOK {
					t.Errorf("submit seed %d: status %d (%s)", seed, code, st.Error)
					return
				}
				mu.Lock()
				if prev, ok := ids[seed]; ok && prev != st.ID {
					t.Errorf("seed %d: duplicate submit got a different job ID", seed)
				}
				ids[seed] = st.ID
				mu.Unlock()
			}(seed)
		}
	}
	wg.Wait()

	for _, seed := range seeds {
		st := waitJob(t, ts, ids[seed])
		if st.State != StateDone {
			t.Fatalf("seed %d: job %s: %s", seed, st.State, st.Error)
		}
		if got := fetch(t, ts, st.ID, "dataset.json"); !bytes.Equal(got, wantData[seed]) {
			t.Errorf("seed %d: daemon dataset differs from direct run", seed)
		}
		if got := fetch(t, ts, st.ID, "report.txt"); string(got) != wantReport[seed] {
			t.Errorf("seed %d: daemon report differs from direct run", seed)
		}
	}
}

// TestIdempotentResubmit: a terminal job re-submitted byte-for-byte (or
// reformatted — IDs hash the parsed spec) is answered from memory, not
// re-executed.
func TestIdempotentResubmit(t *testing.T) {
	var runs atomic.Int64
	_, ts := startServer(t, Config{Workers: 1, TestHookRun: func(*Job) { runs.Add(1) }})

	st1, code := submit(t, ts, quickSpec(31))
	if code != http.StatusCreated {
		t.Fatalf("first submit: status %d", code)
	}
	if done := waitJob(t, ts, st1.ID); done.State != StateDone {
		t.Fatalf("job failed: %s", done.Error)
	}
	first := fetch(t, ts, st1.ID, "dataset.json")

	// Same spec, different JSON spelling: reordered keys, extra space.
	reformatted := `{ "config":{"skip_static":true,"skip_passive":true,"seed":31,"limit_km":6,"skip_apps":true}, "kind":"campaign" }`
	st2, code := submit(t, ts, reformatted)
	if code != http.StatusOK {
		t.Fatalf("resubmit: want 200 (dedup), got %d", code)
	}
	if st2.ID != st1.ID {
		t.Fatalf("resubmit changed the job ID: %s vs %s", st2.ID, st1.ID)
	}
	if st2.State != StateDone {
		t.Fatalf("resubmit should answer with the finished job, got %s", st2.State)
	}
	if runs.Load() != 1 {
		t.Fatalf("resubmit re-executed the job: %d runs", runs.Load())
	}
	if again := fetch(t, ts, st2.ID, "dataset.json"); !bytes.Equal(again, first) {
		t.Error("artifact changed across resubmit")
	}
}

// TestTimelineSharedAcrossJobs: two jobs with the same config
// fingerprint (differing only in CSV export) build the drive timeline
// once, concurrently, through the cache's single flight.
func TestTimelineSharedAcrossJobs(t *testing.T) {
	var builds atomic.Int64
	s, ts := startServer(t, Config{Workers: 2})
	s.cache.build = func(cfg cellwheels.Config) (*cellwheels.Timeline, error) {
		builds.Add(1)
		return cellwheels.PrecomputeTimeline(cfg)
	}

	specPlain := quickSpec(41)
	specCSV := `{"kind":"campaign","csv":true,"config":{"seed":41,"limit_km":6,"skip_apps":true,"skip_static":true,"skip_passive":true}}`
	var wg sync.WaitGroup
	var idPlain, idCSV string
	wg.Add(2)
	go func() { defer wg.Done(); st, _ := submit(t, ts, specPlain); idPlain = st.ID }()
	go func() { defer wg.Done(); st, _ := submit(t, ts, specCSV); idCSV = st.ID }()
	wg.Wait()
	if idPlain == idCSV {
		t.Fatal("csv flag should change the job ID")
	}
	p := waitJob(t, ts, idPlain)
	c := waitJob(t, ts, idCSV)
	if p.State != StateDone || c.State != StateDone {
		t.Fatalf("jobs failed: %s / %s", p.Error, c.Error)
	}
	if builds.Load() != 1 {
		t.Fatalf("same-fingerprint jobs built the timeline %d times, want 1", builds.Load())
	}
	if !bytes.Equal(fetch(t, ts, idPlain, "dataset.json"), fetch(t, ts, idCSV, "dataset.json")) {
		t.Error("same config produced different datasets")
	}
	for _, name := range []string{"throughput.csv", "rtt.csv", "handovers.csv", "appruns.csv"} {
		if len(fetch(t, ts, idCSV, name)) == 0 {
			t.Errorf("csv artifact %s is empty", name)
		}
	}
}

func fleetScenario() cellwheels.FleetConfig {
	return cellwheels.FleetConfig{
		MasterSeed: 9,
		Replicates: 1,
		Base:       quickConfig(0),
		Sweep: []cellwheels.SweepAxis{{
			Field:  "disable_edge",
			Values: []json.RawMessage{json.RawMessage("false"), json.RawMessage("true")},
		}},
	}
}

const fleetScenarioJSON = `{"master_seed":9,"replicates":1,"base":{"seed":0,"limit_km":6,"skip_apps":true,"skip_static":true,"skip_passive":true},"sweep":[{"field":"disable_edge","values":[false,true]}]}`

// TestFleetJobByteIdentical: a fleet job's report and manifest match an
// in-process RunFleet over the same scenario.
func TestFleetJobByteIdentical(t *testing.T) {
	res, err := cellwheels.RunFleet(fleetScenario())
	if err != nil {
		t.Fatalf("direct fleet: %v", err)
	}
	wantReport := res.Report()
	var wantManifest bytes.Buffer
	if err := res.WriteManifest(&wantManifest); err != nil {
		t.Fatal(err)
	}

	_, ts := startServer(t, Config{Workers: 2})
	st, code := submit(t, ts, `{"kind":"fleet","scenario":`+fleetScenarioJSON+`}`)
	if code != http.StatusCreated {
		t.Fatalf("submit: status %d (%s)", code, st.Error)
	}
	done := waitJob(t, ts, st.ID)
	if done.State != StateDone {
		t.Fatalf("fleet job failed: %s", done.Error)
	}
	if got := fetch(t, ts, st.ID, "fleet-report.txt"); string(got) != wantReport {
		t.Error("daemon fleet report differs from RunFleet")
	}
	if got := fetch(t, ts, st.ID, "fleet-manifest.json"); !bytes.Equal(got, wantManifest.Bytes()) {
		t.Error("daemon fleet manifest differs from RunFleet")
	}
}

// TestCollectJob: a collect job hosts the fleetsync protocol; a worker
// pushing through the daemon's mount yields the single-process fleet
// outputs, byte-identical.
func TestCollectJob(t *testing.T) {
	res, err := cellwheels.RunFleet(fleetScenario())
	if err != nil {
		t.Fatalf("direct fleet: %v", err)
	}
	wantReport := res.Report()

	_, ts := startServer(t, Config{Workers: 1})
	const fp = "test-scenario-fingerprint"
	st, code := submit(t, ts, `{"kind":"collect","fingerprint":"`+fp+`","scenario":`+fleetScenarioJSON+`}`)
	if code != http.StatusCreated {
		t.Fatalf("submit collect: status %d (%s)", code, st.Error)
	}
	if st.State != StateRunning {
		t.Fatalf("collect job should mount immediately, got %s", st.State)
	}

	// A second collect while one is mounted is a conflict.
	if _, code := submit(t, ts, `{"kind":"collect","fingerprint":"other","scenario":`+fleetScenarioJSON+`}`); code != http.StatusConflict {
		t.Fatalf("second collect: want 409, got %d", code)
	}

	p, err := fleetsync.NewPusher(fleetsync.PusherConfig{BaseURL: ts.URL, Scenario: fp, Obs: obs.New()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Status(); err != nil {
		t.Fatalf("status through daemon mount: %v", err)
	}
	worker := fleetScenario()
	worker.OnRun = p.PushRun
	if _, err := cellwheels.RunFleet(worker); err != nil {
		t.Fatalf("worker fleet: %v", err)
	}

	done := waitJob(t, ts, st.ID)
	if done.State != StateDone {
		t.Fatalf("collect job failed: %s", done.Error)
	}
	if got := fetch(t, ts, st.ID, "fleet-report.txt"); string(got) != wantReport {
		t.Error("collected report differs from single-process fleet")
	}
	// The mount is released: pushes now answer 503.
	resp, err := http.Get(ts.URL + fleetsync.BasePath + "/status")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("unmounted fleetsync: want 503, got %d", resp.StatusCode)
	}
}

// TestCollectInterrupted: shutting down mid-collection finalizes the
// partial fold — artifacts exist, the job fails with the receive count.
func TestCollectInterrupted(t *testing.T) {
	s, err := New(Config{DataDir: t.TempDir(), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const fp = "interrupt-fingerprint"
	st, code := submit(t, ts, `{"kind":"collect","fingerprint":"`+fp+`","scenario":`+fleetScenarioJSON+`}`)
	if code != http.StatusCreated {
		t.Fatalf("submit: status %d", code)
	}

	// Push only cell 0 of 2, then shut down.
	p, err := fleetsync.NewPusher(fleetsync.PusherConfig{BaseURL: ts.URL, Scenario: fp, Obs: obs.New()})
	if err != nil {
		t.Fatal(err)
	}
	worker := fleetScenario()
	worker.OnRun = p.PushRun
	worker.CellFilter = func(i int, _ string) bool { return i == 0 }
	if _, err := cellwheels.RunFleet(worker); err != nil {
		t.Fatalf("worker fleet: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	done := waitJob(t, ts, st.ID)
	if done.State != StateFailed || !strings.Contains(done.Error, "interrupted: 1 of 2") {
		t.Fatalf("want interrupted failure, got %s (%s)", done.State, done.Error)
	}
	if got := fetch(t, ts, st.ID, "fleet-report.txt"); len(got) == 0 {
		t.Error("partial fold produced no report")
	}
}

// TestPanicContainmentAndFIFO: with one worker, queued jobs run in
// submission order; a panicking job fails alone and the worker survives
// to run the rest.
func TestPanicContainmentAndFIFO(t *testing.T) {
	var mu sync.Mutex
	var order []int64
	release := make(chan struct{})
	hook := func(j *Job) {
		mu.Lock()
		order = append(order, j.Spec.Config.Seed)
		mu.Unlock()
		<-release
		if j.Spec.Config.Seed == 52 {
			panic("injected job panic")
		}
	}
	_, ts := startServer(t, Config{Workers: 1, TestHookRun: hook})

	var ids []string
	for _, seed := range []int64{51, 52, 53} {
		st, code := submit(t, ts, quickSpec(seed))
		if code != http.StatusCreated {
			t.Fatalf("submit seed %d: status %d", seed, code)
		}
		ids = append(ids, st.ID)
	}
	close(release)

	states := make([]JobStatus, len(ids))
	for i, id := range ids {
		states[i] = waitJob(t, ts, id)
	}
	if states[0].State != StateDone || states[2].State != StateDone {
		t.Fatalf("sibling jobs should survive a panic: %+v %+v", states[0], states[2])
	}
	if states[1].State != StateFailed || !strings.Contains(states[1].Error, "job panicked") {
		t.Fatalf("panicking job should fail with containment, got %+v", states[1])
	}
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 3 || order[0] != 51 || order[1] != 52 || order[2] != 53 {
		t.Fatalf("jobs ran out of FIFO order: %v", order)
	}
}

// TestShutdownDrainsQueue: Shutdown refuses new submissions but runs
// every accepted job to completion, artifacts included.
func TestShutdownDrainsQueue(t *testing.T) {
	dir := t.TempDir()
	started := make(chan struct{})
	block := make(chan struct{})
	var once sync.Once
	hook := func(j *Job) {
		if j.Spec.Config.Seed == 61 {
			once.Do(func() { close(started) })
			<-block
		}
	}
	s, err := New(Config{DataDir: dir, Workers: 1, TestHookRun: hook})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	st1, _ := submit(t, ts, quickSpec(61))
	st2, _ := submit(t, ts, quickSpec(62))
	<-started // job 1 is on the worker; job 2 is queued

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		defer cancel()
		shutdownErr <- s.Shutdown(ctx)
	}()

	// Draining flips synchronously at the start of Shutdown; poll until
	// a fresh submission is refused.
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, code := submit(t, ts, quickSpec(63))
		if code == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("submissions never refused during drain")
		}
		time.Sleep(10 * time.Millisecond)
	}

	close(block)
	if err := <-shutdownErr; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	for _, st := range []JobStatus{waitJob(t, ts, st1.ID), waitJob(t, ts, st2.ID)} {
		if st.State != StateDone {
			t.Fatalf("accepted job not drained: %+v", st)
		}
		if _, err := os.Stat(filepath.Join(dir, "jobs", st.ID, "dataset.json")); err != nil {
			t.Errorf("drained job %s left no dataset on disk: %v", st.ID, err)
		}
	}
}

// TestProgressEndpoint: the one-shot snapshot carries the job's live
// obs registry, and follow mode streams NDJSON ending in the terminal
// state.
func TestProgressEndpoint(t *testing.T) {
	_, ts := startServer(t, Config{Workers: 1})
	st, _ := submit(t, ts, quickSpec(71))

	// Follow the stream to completion.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/progress?follow=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("follow content type: %s", ct)
	}
	var last Progress
	var lines int
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		lines++
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			t.Fatalf("bad NDJSON line: %v", err)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines == 0 {
		t.Fatal("follow stream produced no lines")
	}
	if last.State != StateDone {
		t.Fatalf("stream should end at the terminal state, got %s (%s)", last.State, last.Error)
	}

	// One-shot snapshot after completion: counters from the run.
	var p Progress
	resp2, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/progress")
	if err != nil {
		t.Fatal(err)
	}
	err = json.NewDecoder(resp2.Body).Decode(&p)
	resp2.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if p.State != StateDone {
		t.Fatalf("snapshot state: %s", p.State)
	}
	if len(p.Obs.Counters) == 0 {
		t.Error("finished campaign reported no obs counters")
	}
}

// TestBadRequests: malformed specs fail at submission, unknown jobs and
// unlisted artifact names are 404s — including traversal spellings.
func TestBadRequests(t *testing.T) {
	_, ts := startServer(t, Config{Workers: 1})
	for _, tc := range []struct {
		name, body string
	}{
		{"unknown kind", `{"kind":"sabotage"}`},
		{"no kind", `{}`},
		{"unknown key", `{"kind":"campaign","config":{"seed":1},"sudo":true}`},
		{"campaign without config", `{"kind":"campaign"}`},
		{"fleet without scenario", `{"kind":"fleet"}`},
		{"bad load model", `{"kind":"campaign","config":{"seed":1,"load_model":"psychic"}}`},
		{"bad sweep field", `{"kind":"fleet","scenario":{"master_seed":1,"base":{"seed":0},"sweep":[{"field":"nope","values":[1]}]}}`,},
		{"archive_dir rejected", `{"kind":"fleet","scenario":{"master_seed":1,"archive_dir":"/tmp/x","base":{"seed":0}}}`},
	} {
		if _, code := submit(t, ts, tc.body); code != http.StatusBadRequest {
			t.Errorf("%s: want 400, got %d", tc.name, code)
		}
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/doesnotexist")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: want 404, got %d", resp.StatusCode)
	}

	st, _ := submit(t, ts, quickSpec(81))
	if done := waitJob(t, ts, st.ID); done.State != StateDone {
		t.Fatalf("job failed: %s", done.Error)
	}
	for _, name := range []string{"secrets.txt", "..%2F..%2Fetc%2Fpasswd", "%2e%2e%2fdataset.json"} {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/artifacts/" + name)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("artifact %q: want 404, got %d", name, resp.StatusCode)
		}
	}
}
