package serve

import (
	"sync"

	"github.com/nuwins/cellwheels"
	"github.com/nuwins/cellwheels/internal/obs"
)

// timelineCache shares precomputed drive schedules between jobs. Keys
// are Obs-free config fingerprints (cellwheels.Config.Fingerprint), so a
// hit is guaranteed valid: equal fingerprints mean an identical route
// scan. Two properties matter for a daemon:
//
//   - single-flight construction: concurrent requests for the same key
//     trigger exactly one PrecomputeTimeline; the rest block on the
//     builder's ready channel and share its result.
//   - bounded memory: at most capacity entries are retained, evicted in
//     least-recently-used order, so a daemon fed a stream of distinct
//     configs cannot grow without bound.
//
// Failed builds are never cached — the error is returned to every waiter
// of that flight and the key is removed, so a transient failure does not
// poison the cache.
type timelineCache struct {
	capacity int
	build    func(cellwheels.Config) (*cellwheels.Timeline, error)
	obs      *obs.Recorder

	mu      sync.Mutex
	entries map[string]*cacheEntry
	clock   int64 // LRU clock; bumped on every touch
}

// cacheEntry is one cached (or in-flight) timeline build.
type cacheEntry struct {
	ready   chan struct{} // closed when tl/err are set
	tl      *cellwheels.Timeline
	err     error
	lastUse int64
}

// newTimelineCache builds a cache; capacity values below 1 mean 1.
// build defaults to cellwheels.PrecomputeTimeline (tests inject a
// counting stub).
func newTimelineCache(capacity int, rec *obs.Recorder, build func(cellwheels.Config) (*cellwheels.Timeline, error)) *timelineCache {
	if capacity < 1 {
		capacity = 1
	}
	if build == nil {
		build = cellwheels.PrecomputeTimeline
	}
	return &timelineCache{
		capacity: capacity,
		build:    build,
		obs:      rec,
		entries:  map[string]*cacheEntry{},
	}
}

// get returns the timeline for key, building it (once) from cfg on a
// miss. cfg must be the config key fingerprints; callers pass it with
// side channels cleared.
func (c *timelineCache) get(key string, cfg cellwheels.Config) (*cellwheels.Timeline, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.clock++
		e.lastUse = c.clock
		c.mu.Unlock()
		c.obs.Counter("serve/timeline/hits").Add(1)
		<-e.ready
		return e.tl, e.err
	}
	e := &cacheEntry{ready: make(chan struct{})}
	c.clock++
	e.lastUse = c.clock
	c.entries[key] = e
	c.evictLocked(e)
	c.mu.Unlock()

	c.obs.Counter("serve/timeline/misses").Add(1)
	tl, err := c.build(cfg)
	e.tl, e.err = tl, err
	close(e.ready)
	if err != nil {
		c.mu.Lock()
		// Only remove our own failed flight; the key may have been
		// evicted and rebuilt meanwhile.
		if c.entries[key] == e {
			delete(c.entries, key)
		}
		c.mu.Unlock()
	} else {
		c.obs.Counter("serve/timeline/builds").Add(1)
	}
	return tl, err
}

// evictLocked drops least-recently-used entries until the cache fits its
// capacity, never evicting keep (the entry the caller just inserted).
// In-flight entries can be evicted: their waiters already hold the entry
// pointer and still receive the result; the cache just forgets it.
func (c *timelineCache) evictLocked(keep *cacheEntry) {
	for len(c.entries) > c.capacity {
		var oldestKey string
		var oldest *cacheEntry
		for k, e := range c.entries {
			if e == keep {
				continue
			}
			if oldest == nil || e.lastUse < oldest.lastUse {
				oldestKey, oldest = k, e
			}
		}
		if oldest == nil {
			return
		}
		delete(c.entries, oldestKey)
		c.obs.Counter("serve/timeline/evictions").Add(1)
	}
}

// len reports the number of retained entries (tests).
func (c *timelineCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
