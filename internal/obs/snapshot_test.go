package obs

import (
	"bytes"
	"reflect"
	"testing"
)

// TestSnapshotMatchesManifest pins the satellite contract: the metric
// sections of a written manifest are exactly what Snapshot returns — the
// daemon's progress endpoint and the -metrics file can never disagree
// about the registry's contents.
func TestSnapshotMatchesManifest(t *testing.T) {
	r := New()
	r.SetLabel("seed", "42")
	r.Counter("lane/v/ticks").Add(7)
	r.Counter("fleetsync/pushes").Add(2)
	r.Gauge("lane/v/odometer_km").Set(12.5)
	r.Histogram("skew_ms", []float64{1, 10, 100}).Observe(3)
	r.Histogram("skew_ms", nil).Observe(250)
	stop := r.StartPhase("run")
	stop()

	snap := r.Snapshot()
	var buf bytes.Buffer
	if err := r.WriteManifest(&buf); err != nil {
		t.Fatalf("WriteManifest: %v", err)
	}
	man, err := ReadManifest(&buf)
	if err != nil {
		t.Fatalf("ReadManifest: %v", err)
	}

	if !reflect.DeepEqual(snap.Labels, man.Labels) {
		t.Errorf("labels: snapshot %v != manifest %v", snap.Labels, man.Labels)
	}
	if !reflect.DeepEqual(snap.Counters, man.Counters) {
		t.Errorf("counters: snapshot %v != manifest %v", snap.Counters, man.Counters)
	}
	if !reflect.DeepEqual(snap.Gauges, man.Gauges) {
		t.Errorf("gauges: snapshot %v != manifest %v", snap.Gauges, man.Gauges)
	}
	if !reflect.DeepEqual(snap.Histograms, man.Histograms) {
		t.Errorf("histograms: snapshot %v != manifest %v", snap.Histograms, man.Histograms)
	}
	// Phase durations accumulate between the two reads only if a phase is
	// still open; here all phases are closed, so the values must agree.
	if !reflect.DeepEqual(snap.PhaseMS, man.PhaseMS) {
		t.Errorf("phases: snapshot %v != manifest %v", snap.PhaseMS, man.PhaseMS)
	}
}

// TestSnapshotNilAndSideEffectFree: a nil recorder snapshots empty, and
// snapshotting never creates registry entries.
func TestSnapshotNilAndSideEffectFree(t *testing.T) {
	var nilRec *Recorder
	s := nilRec.Snapshot()
	if len(s.Counters) != 0 || s.Counters == nil {
		t.Errorf("nil recorder snapshot: want empty non-nil maps, got %#v", s)
	}

	r := New()
	r.Counter("only").Add(1)
	_ = r.Snapshot()
	if got := r.Snapshot().Counters; len(got) != 1 {
		t.Errorf("snapshot created entries: %v", got)
	}
}
