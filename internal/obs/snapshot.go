package obs

import "time"

// Snapshot is the read-only view of the registry at one instant: every
// counter, gauge, histogram, label, and accumulated phase duration, in
// the exact shape the run manifest serializes them. It is the single
// snapshot primitive both consumers build on — the -metrics manifest
// wraps it with run-level facts (schema, Go version, wall clock), and
// live readers (the -progress reporter, the wheelsd progress endpoint)
// serve it directly. Reading a name that was never written yields the
// zero value without creating a registry entry, so snapshotting is
// side-effect free.
type Snapshot struct {
	Labels     map[string]string            `json:"labels,omitempty"`
	PhaseMS    map[string]float64           `json:"phase_wall_ms,omitempty"`
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies the registry's current state. Callable at any point,
// from any goroutine, any number of times; a nil Recorder yields an
// empty (but non-nil-mapped) snapshot.
func (r *Recorder) Snapshot() Snapshot {
	s := Snapshot{
		Labels:     map[string]string{},
		PhaseMS:    map[string]float64{},
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for k, v := range r.labels {
		s.Labels[k] = v
	}
	for k, d := range r.phases {
		s.PhaseMS[k] = float64(d) / float64(time.Millisecond)
	}
	for k, c := range r.counters {
		s.Counters[k] = c.Value()
	}
	for k, g := range r.gauges {
		s.Gauges[k] = g.Value()
	}
	for k, h := range r.hists {
		s.Histograms[k] = h.snapshot()
	}
	return s
}
