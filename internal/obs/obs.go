// Package obs is the campaign's observability side channel: a metrics
// registry (counters, gauges, histograms), wall-clock phase timers, a
// periodic progress reporter, and a machine-readable run manifest.
//
// The package exists because a multi-week measurement campaign is only
// trustworthy if the testbed is continuously monitored — and because the
// simulation it monitors is specified to be a pure function of
// (Config, seed). Those two needs collide: monitoring wants wall-clock
// time, the simulation must never see it. The contract that reconciles
// them, enforced by the lintwheels `nondet` rule's package exemption and
// by the obs-on-vs-off byte-identity regression tests, is:
//
//   - obs is write-only from the simulation's point of view. Instrumented
//     code pushes values in; nothing in this package is ever read back
//     into a simulation decision.
//   - all wall-clock reads (time.Now / time.Since / tickers) live inside
//     this package. Instrumented packages call StartPhase or StartProgress
//     and stay clean under the nondet rule without per-site allows.
//   - a nil *Recorder is a valid, zero-cost no-op: every method checks its
//     receiver, so the instrumentation can stay wired permanently and the
//     obs-off path does no work and allocates nothing.
//
// Counters and gauges are updated with atomics, so concurrent operator
// lanes can instrument themselves without coordination.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Recorder is one run's metric registry plus its wall-clock bookkeeping.
// The zero value is not usable; construct with New. A nil Recorder is a
// no-op on every method.
type Recorder struct {
	start     time.Time
	startWall time.Time // identical to start; kept for manifest clarity

	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	phases   map[string]time.Duration
	labels   map[string]string

	progress *progressLoop
}

// New starts a recorder; the creation instant anchors Elapsed and the
// manifest's start timestamp.
func New() *Recorder {
	now := time.Now()
	return &Recorder{
		start:     now,
		startWall: now.UTC(),
		counters:  map[string]*Counter{},
		gauges:    map[string]*Gauge{},
		hists:     map[string]*Histogram{},
		phases:    map[string]time.Duration{},
		labels:    map[string]string{},
	}
}

// Elapsed reports the wall clock spent since New. The only sanctioned way
// for a command to print "finished in Xs" without its own time.Now.
func (r *Recorder) Elapsed() time.Duration {
	if r == nil {
		return 0
	}
	return time.Since(r.start)
}

// SetLabel attaches a string fact (seed, config hash, dataset path) to
// the manifest.
func (r *Recorder) SetLabel(key, value string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.labels[key] = value
	r.mu.Unlock()
}

// Counter returns the named counter, creating it on first use. Returns
// nil (a valid no-op counter) on a nil recorder.
func (r *Recorder) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Recorder) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// upper bucket bounds on first use (later bounds are ignored).
func (r *Recorder) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// StartPhase opens a named wall-clock span and returns the closure that
// ends it. Re-entered phases accumulate. Safe from concurrent goroutines
// (each lane times itself).
func (r *Recorder) StartPhase(name string) func() {
	if r == nil {
		return func() {}
	}
	begin := time.Now()
	return func() {
		d := time.Since(begin)
		r.mu.Lock()
		r.phases[name] += d
		r.mu.Unlock()
	}
}

// Counter is a monotonically increasing int64, safe for concurrent use.
// A nil Counter drops everything.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value reads the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-write-wins float64, safe for concurrent use. A nil
// Gauge drops everything.
type Gauge struct{ bits atomic.Uint64 }

// Set records the gauge's current value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value reads the last value set (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed upper-bound buckets plus an
// overflow bucket, and tracks count/sum/min/max. Guarded by a mutex; the
// hot simulation paths use counters, histograms sit on merge-time paths.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // ascending upper bounds
	counts []int64   // len(bounds)+1; last is overflow
	count  int64
	sum    float64
	min    float64
	max    float64
}

func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]int64, len(bs)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
}

// HistogramSnapshot is a histogram's state as serialized in the manifest.
type HistogramSnapshot struct {
	// Bounds are the ascending bucket upper bounds; Counts has one extra
	// trailing entry for observations above the last bound.
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
	Min    float64   `json:"min"`
	Max    float64   `json:"max"`
}

func (h *Histogram) snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	return HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: append([]int64(nil), h.counts...),
		Count:  h.count,
		Sum:    h.sum,
		Min:    h.min,
		Max:    h.max,
	}
}
