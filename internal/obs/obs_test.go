package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilRecorderIsNoOp pins the wiring contract: instrumented code holds
// a possibly-nil *Recorder permanently, so every method must be callable
// through nil without panicking or doing work.
func TestNilRecorderIsNoOp(t *testing.T) {
	var r *Recorder
	r.Counter("x").Add(3)
	if got := r.Counter("x").Value(); got != 0 {
		t.Errorf("nil counter value = %d", got)
	}
	r.Gauge("g").Set(1.5)
	if got := r.Gauge("g").Value(); got != 0 {
		t.Errorf("nil gauge value = %v", got)
	}
	r.Histogram("h", []float64{1, 2}).Observe(1)
	r.SetLabel("k", "v")
	r.StartPhase("p")()
	r.EnableProgress(&bytes.Buffer{}, time.Millisecond)
	r.StartProgress(ProgressInfo{})()
	if r.Elapsed() != 0 {
		t.Error("nil Elapsed != 0")
	}
	m := r.Manifest()
	if m.Schema != ManifestSchema || len(m.Counters) != 0 {
		t.Errorf("nil manifest = %+v", m)
	}
}

func TestCountersAndGaugesConcurrent(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("ticks")
			for i := 0; i < 1000; i++ {
				c.Add(1)
				r.Gauge("odo").Set(float64(i))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("ticks").Value(); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := New()
	h := r.Histogram("skew_ms", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 0.9, 5, 50, 500, 5000} {
		h.Observe(v)
	}
	s := h.snapshot()
	want := []int64{2, 1, 1, 2} // <=1, <=10, <=100, overflow
	for i, n := range want {
		if s.Counts[i] != n {
			t.Errorf("bucket %d = %d, want %d (all: %v)", i, s.Counts[i], n, s.Counts)
		}
	}
	if s.Count != 6 || s.Min != 0.5 || s.Max != 5000 {
		t.Errorf("count/min/max = %d/%v/%v", s.Count, s.Min, s.Max)
	}
}

func TestPhasesAccumulate(t *testing.T) {
	r := New()
	stop := r.StartPhase("work")
	time.Sleep(2 * time.Millisecond)
	stop()
	r.StartPhase("work")() // immediate re-entry adds ~0
	m := r.Manifest()
	if m.PhaseMS["work"] <= 0 {
		t.Errorf("phase wall = %v", m.PhaseMS["work"])
	}
}

func TestManifestRoundTrip(t *testing.T) {
	r := New()
	r.SetLabel("seed", "42")
	r.Counter("table/rtt").Add(7)
	r.Gauge("route/total_km").Set(150)
	r.Histogram("skew", []float64{10}).Observe(3)

	var buf bytes.Buffer
	if err := r.WriteManifest(&buf); err != nil {
		t.Fatal(err)
	}
	m, err := ReadManifest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m.Schema != ManifestSchema || m.Labels["seed"] != "42" ||
		m.Counters["table/rtt"] != 7 || m.Gauges["route/total_km"] != 150 ||
		m.Histograms["skew"].Count != 1 {
		t.Errorf("round trip mangled manifest: %+v", m)
	}
	if m.GoVersion == "" || m.GOMAXPROCS < 1 {
		t.Errorf("missing runtime facts: %+v", m)
	}
	if _, err := ReadManifest(strings.NewReader("{")); err == nil {
		t.Error("bad manifest accepted")
	}
}

// TestProgressReports drives the reporter against synthetic lane metrics
// and checks the line shape.
func TestProgressReports(t *testing.T) {
	r := New()
	var buf bytes.Buffer
	r.EnableProgress(&buf, time.Millisecond)
	r.Counter("lane/V/ticks").Add(50)
	r.Gauge("lane/V/odometer_km").Set(12.5)
	stop := r.StartProgress(ProgressInfo{TotalTicks: 100, TotalKm: 25, Lanes: []string{"V"}})
	time.Sleep(5 * time.Millisecond)
	stop()
	out := buf.String()
	if !strings.Contains(out, "obs: 12.5/25.0 km 50.0%") {
		t.Errorf("progress output %q lacks expected line", out)
	}
	if !strings.Contains(out, "ticks 50/100") {
		t.Errorf("progress output %q lacks tick fraction", out)
	}
}

// TestProgressReportsCrowd pins the crowd figures on the status line:
// with ProgressInfo.Crowd set the reporter appends the attached-UE count
// and event rate read from the crowd counters/gauges; without it the
// line stays in its historical shape.
func TestProgressReportsCrowd(t *testing.T) {
	r := New()
	var buf bytes.Buffer
	r.EnableProgress(&buf, time.Millisecond)
	r.Counter("lane/V/ticks").Add(50)
	r.Gauge("lane/V/odometer_km").Set(12.5)
	r.Counter("crowd/V/events").Add(4000)
	r.Gauge("crowd/V/attached").Set(95000)
	stop := r.StartProgress(ProgressInfo{TotalTicks: 100, TotalKm: 25, Lanes: []string{"V"}, Crowd: true})
	time.Sleep(5 * time.Millisecond)
	stop()
	out := buf.String()
	if !strings.Contains(out, "crowd 95.0k att") {
		t.Errorf("progress output %q lacks attached crowd figure", out)
	}
	if !strings.Contains(out, "ev/s") {
		t.Errorf("progress output %q lacks event rate", out)
	}

	buf.Reset()
	r2 := New()
	r2.EnableProgress(&buf, time.Millisecond)
	stop = r2.StartProgress(ProgressInfo{TotalTicks: 100, TotalKm: 25, Lanes: []string{"V"}})
	time.Sleep(3 * time.Millisecond)
	stop()
	if strings.Contains(buf.String(), "crowd") {
		t.Errorf("progress output %q mentions crowd without Crowd set", buf.String())
	}
}

// TestProgressDisabledWithoutEnable pins that StartProgress without
// EnableProgress (the -metrics-only path) spawns nothing.
func TestProgressDisabledWithoutEnable(t *testing.T) {
	r := New()
	stop := r.StartProgress(ProgressInfo{TotalTicks: 1, Lanes: []string{"V"}})
	stop() // must not hang or panic
}

func TestFingerprintStable(t *testing.T) {
	type cfg struct{ Seed int64 }
	a, b := Fingerprint(cfg{7}), Fingerprint(cfg{7})
	if a != b {
		t.Errorf("same value hashed differently: %s vs %s", a, b)
	}
	if a == Fingerprint(cfg{8}) {
		t.Error("different values share a fingerprint")
	}
	if len(a) != 64 {
		t.Errorf("fingerprint length %d", len(a))
	}
}
