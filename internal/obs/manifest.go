package obs

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"
)

// ManifestSchema identifies the manifest layout; bump on breaking change.
const ManifestSchema = 1

// Manifest is the machine-readable run record written by -metrics: what
// was run (labels: seed, config hash), on what (Go version, GOMAXPROCS),
// how long each phase took, and what it produced (counters, gauges,
// histograms — including the per-table sample counts the dataset writers
// must agree with). encoding/json sorts map keys, so a manifest is
// deterministic up to the wall-clock fields (start_utc, wall_ms,
// phase_wall_ms).
type Manifest struct {
	Schema     int                          `json:"schema"`
	GoVersion  string                       `json:"go_version"`
	GOMAXPROCS int                          `json:"gomaxprocs"`
	StartUTC   time.Time                    `json:"start_utc"`
	WallMS     float64                      `json:"wall_ms"`
	Labels     map[string]string            `json:"labels,omitempty"`
	PhaseMS    map[string]float64           `json:"phase_wall_ms,omitempty"`
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Manifest snapshots the registry. Callable at any point; typically once,
// after the dataset is written. The metric sections are exactly
// Snapshot's — the manifest only adds the run-level wrapper facts
// (schema, Go version, GOMAXPROCS, wall clock).
func (r *Recorder) Manifest() Manifest {
	if r == nil {
		return Manifest{Schema: ManifestSchema}
	}
	wall := time.Since(r.start)
	snap := r.Snapshot()
	return Manifest{
		Schema:     ManifestSchema,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		StartUTC:   r.startWall,
		WallMS:     float64(wall) / float64(time.Millisecond),
		Labels:     snap.Labels,
		PhaseMS:    snap.PhaseMS,
		Counters:   snap.Counters,
		Gauges:     snap.Gauges,
		Histograms: snap.Histograms,
	}
}

// WriteManifest serializes the manifest as indented JSON.
func (r *Recorder) WriteManifest(w io.Writer) error {
	data, err := json.MarshalIndent(r.Manifest(), "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// ReadManifest parses a manifest written by WriteManifest.
func ReadManifest(rd io.Reader) (Manifest, error) {
	var m Manifest
	if err := json.NewDecoder(rd).Decode(&m); err != nil {
		return Manifest{}, fmt.Errorf("obs: manifest: %w", err)
	}
	return m, nil
}

// Fingerprint hashes any value's verbose Go representation to a stable
// hex digest — used to stamp the manifest with a config hash so two
// manifests can be compared for "same run?" without diffing configs.
// Values containing pointers or maps are the caller's responsibility to
// zero or avoid; the cellwheels.Config passed in practice is plain data.
func Fingerprint(v any) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("%#v", v)))
	return hex.EncodeToString(sum[:])
}
