package obs

import (
	"fmt"
	"io"
	"time"
)

// ProgressInfo tells the reporter what "done" looks like and which lanes
// to watch. Lanes are the operator short codes; each lane is expected to
// maintain the counter "lane/<code>/ticks" and the gauge
// "lane/<code>/odometer_km".
type ProgressInfo struct {
	// TotalTicks is the tick count each lane will replay.
	TotalTicks int64
	// TotalKm is the planned driven distance.
	TotalKm float64
	// Lanes are the operator short codes being simulated.
	Lanes []string
	// Crowd adds the background-UE figures (attached count, events/s) to
	// the status line, read from the "crowd/<code>/events" counters and
	// "crowd/<code>/attached" gauges.
	Crowd bool
}

// EnableProgress arms the periodic reporter: once armed, StartProgress
// spawns a goroutine printing one status line to w every interval. An
// interval <= 0 defaults to one second. Without this call StartProgress
// is a no-op, so metrics collection and progress printing are
// independently switchable.
func (r *Recorder) EnableProgress(w io.Writer, interval time.Duration) {
	if r == nil || w == nil {
		return
	}
	if interval <= 0 {
		interval = time.Second
	}
	r.mu.Lock()
	r.progress = &progressLoop{w: w, interval: interval}
	r.mu.Unlock()
}

// StartProgress begins periodic reporting (if armed via EnableProgress)
// and returns the function that stops it. The loop only reads the
// registry and writes to the configured writer — it can never feed state
// back into the simulation.
func (r *Recorder) StartProgress(info ProgressInfo) func() {
	if r == nil {
		return func() {}
	}
	r.mu.Lock()
	p := r.progress
	r.mu.Unlock()
	if p == nil || p.running {
		return func() {}
	}
	p.running = true
	p.stop = make(chan struct{})
	p.done = make(chan struct{})
	go p.run(r, info)
	return func() {
		close(p.stop)
		<-p.done
		r.mu.Lock()
		p.running = false
		r.mu.Unlock()
	}
}

// progressLoop is the reporter's goroutine state.
type progressLoop struct {
	w        io.Writer
	interval time.Duration
	running  bool
	stop     chan struct{}
	done     chan struct{}
}

func (p *progressLoop) run(r *Recorder, info ProgressInfo) {
	defer close(p.done)
	tick := time.NewTicker(p.interval)
	defer tick.Stop()
	begin := time.Now()
	var lastTicks, lastEvents int64
	lastAt := begin
	for {
		select {
		case <-p.stop:
			// One final line so short runs still report something.
			p.report(r, info, begin, &lastTicks, &lastEvents, &lastAt)
			return
		case <-tick.C:
			p.report(r, info, begin, &lastTicks, &lastEvents, &lastAt)
		}
	}
}

// report prints one status line:
//
//	obs: 123.4/500.0 km 24.7% | ticks 250000/1012345 | 310k ticks/s | eta 12s
//
// With info.Crowd set the line also carries the background-UE registry's
// attached population and event throughput:
//
//	obs: ... | eta 12s | crowd 99.2k att 1.3M ev/s
func (p *progressLoop) report(r *Recorder, info ProgressInfo, begin time.Time, lastTicks, lastEvents *int64, lastAt *time.Time) {
	now := time.Now()
	// One consistent read of the registry per status line — the same
	// read-only view the manifest and the wheelsd progress endpoint use.
	snap := r.Snapshot()
	minTicks := int64(-1)
	minOdo := 0.0
	var sumTicks, sumEvents int64
	attached := 0.0
	for i, lane := range info.Lanes {
		t := snap.Counters["lane/"+lane+"/ticks"]
		odo := snap.Gauges["lane/"+lane+"/odometer_km"]
		sumTicks += t
		if i == 0 || t < minTicks {
			minTicks = t
		}
		if i == 0 || odo < minOdo {
			minOdo = odo
		}
		if info.Crowd {
			sumEvents += snap.Counters["crowd/"+lane+"/events"]
			attached += snap.Gauges["crowd/"+lane+"/attached"]
		}
	}
	if minTicks < 0 {
		minTicks = 0
	}

	rate := 0.0
	evRate := 0.0
	if dt := now.Sub(*lastAt).Seconds(); dt > 0 {
		rate = float64(sumTicks-*lastTicks) / dt
		evRate = float64(sumEvents-*lastEvents) / dt
	}
	*lastTicks, *lastEvents, *lastAt = sumTicks, sumEvents, now

	frac := 0.0
	if info.TotalTicks > 0 {
		frac = float64(minTicks) / float64(info.TotalTicks)
	}
	eta := "?"
	if frac > 0 && frac < 1 {
		elapsed := now.Sub(begin)
		rem := time.Duration(float64(elapsed)/frac - float64(elapsed))
		eta = rem.Round(time.Second).String()
	} else if frac >= 1 {
		eta = "0s"
	}
	crowd := ""
	if info.Crowd {
		crowd = fmt.Sprintf(" | crowd %s att %s ev/s", fmtRate(attached), fmtRate(evRate))
	}
	fmt.Fprintf(p.w, "obs: %.1f/%.1f km %.1f%% | ticks %d/%d | %s ticks/s | eta %s%s\n",
		minOdo, info.TotalKm, 100*frac, minTicks, info.TotalTicks, fmtRate(rate), eta, crowd)
}

// fmtRate renders a per-second rate compactly (312, 4.1k, 2.3M).
func fmtRate(v float64) string {
	switch {
	case v >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fk", v/1e3)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}
