// Package atomicio is the repo's one atomic file writer: artifacts that
// must never exist truncated — datasets, manifests, reports, baselines,
// synced blobs — are staged in a temp file next to the target and renamed
// into place only after a complete write.
//
// The package replaces the per-command copies of this pattern, which had
// two shared bugs: a failed os.Rename leaked the temp file, and the
// installed artifact kept os.CreateTemp's private 0600 mode instead of a
// normal artifact mode. WriteFile removes the temp on every failure path
// and chmods it to the requested mode before the rename, so the installed
// file has the permissions the caller asked for on every platform that
// honors them.
package atomicio

import (
	"io"
	"io/fs"
	"os"
	"path/filepath"
)

// WriteFile atomically writes path: write streams the content into a temp
// file staged in path's directory, the temp is chmodded to perm and
// renamed over path only after write and Close both succeed. On any
// failure — including a failed rename — the temp file is removed and path
// is left untouched (either absent or holding its previous content).
func WriteFile(path string, perm fs.FileMode, write func(io.Writer) error) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	werr := write(tmp)
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	// CreateTemp opens at 0600; artifacts install at the caller's mode.
	if werr == nil {
		werr = os.Chmod(tmp.Name(), perm)
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), path)
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return werr
	}
	return nil
}

// WriteFileBytes is WriteFile for callers that already hold the full
// content in memory.
func WriteFileBytes(path string, perm fs.FileMode, data []byte) error {
	return WriteFile(path, perm, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}
