package atomicio

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

// leftovers lists dir's entries besides the named survivors — a write
// must never leave its staging temp behind.
func leftovers(t *testing.T, dir string, keep ...string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	kept := map[string]bool{}
	for _, k := range keep {
		kept[k] = true
	}
	var extra []string
	for _, e := range ents {
		if !kept[e.Name()] {
			extra = append(extra, e.Name())
		}
	}
	return extra
}

func TestWriteFileSuccess(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "artifact.json")
	if err := WriteFileBytes(path, 0o644, []byte("hello\n")); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "hello\n" {
		t.Errorf("content = %q", data)
	}
	if runtime.GOOS != "windows" {
		st, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if got := st.Mode().Perm(); got != 0o644 {
			t.Errorf("installed mode = %o, want 644 (CreateTemp's 0600 must not leak through)", got)
		}
	}
	if extra := leftovers(t, dir, "artifact.json"); len(extra) != 0 {
		t.Errorf("temp files left behind: %v", extra)
	}
}

func TestWriteFileOverwritesAtomically(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "artifact.json")
	if err := WriteFileBytes(path, 0o644, []byte("old")); err != nil {
		t.Fatal(err)
	}
	wantErr := errors.New("mid-write failure")
	err := WriteFile(path, 0o644, func(w io.Writer) error {
		if _, werr := io.WriteString(w, "partial"); werr != nil {
			return werr
		}
		return wantErr
	})
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v, want the write error", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "old" {
		t.Errorf("failed write replaced the target: %q", data)
	}
	if extra := leftovers(t, dir, "artifact.json"); len(extra) != 0 {
		t.Errorf("temp files left behind after failed write: %v", extra)
	}
}

func TestWriteFileFailedWriteLeavesNothing(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "artifact.json")
	if err := WriteFile(path, 0o644, func(io.Writer) error {
		return errors.New("boom")
	}); err == nil {
		t.Fatal("want error")
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("target exists after failed write: %v", err)
	}
	if extra := leftovers(t, dir); len(extra) != 0 {
		t.Errorf("temp files left behind: %v", extra)
	}
}

// TestWriteFileRenameFailureRemovesTemp pins the bug the shared helper
// exists for: when the final rename fails (here: the target path is an
// existing directory), the staged temp must be cleaned up, not leaked.
func TestWriteFileRenameFailureRemovesTemp(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "occupied")
	if err := os.MkdirAll(filepath.Join(path, "child"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileBytes(path, 0o644, []byte("data")); err == nil {
		t.Fatal("want rename failure onto a non-empty directory")
	}
	if extra := leftovers(t, dir, "occupied"); len(extra) != 0 {
		t.Errorf("temp files leaked after rename failure: %v", extra)
	}
}
