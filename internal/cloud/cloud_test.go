package cloud

import (
	"strings"
	"testing"
	"time"

	"github.com/nuwins/cellwheels/internal/geo"
	"github.com/nuwins/cellwheels/internal/radio"
	"github.com/nuwins/cellwheels/internal/unit"
)

func TestFleetComposition(t *testing.T) {
	fleet := Fleet()
	var clouds, edges, gpus int
	names := map[string]bool{}
	for _, s := range fleet {
		if names[s.Name] {
			t.Errorf("duplicate server name %q", s.Name)
		}
		names[s.Name] = true
		switch s.Kind {
		case Cloud:
			clouds++
		case Edge:
			edges++
		}
		if s.Role == GPU {
			gpus++
		}
	}
	if clouds != 4 {
		t.Errorf("cloud servers = %d, want 4 (2 regions × 2 roles)", clouds)
	}
	if edges != 10 {
		t.Errorf("edge servers = %d, want 10 (5 cities × 2 roles)", edges)
	}
	if gpus != 7 {
		t.Errorf("gpu servers = %d, want 7", gpus)
	}
}

func TestFleetEdgeCitiesMatchPaper(t *testing.T) {
	want := map[string]bool{
		"Los Angeles": true, "Las Vegas": true, "Denver": true, "Chicago": true, "Boston": true,
	}
	for _, s := range Fleet() {
		if s.Kind == Edge && !want[s.City] {
			t.Errorf("unexpected edge city %q", s.City)
		}
	}
}

func TestKindRoleStrings(t *testing.T) {
	if Cloud.String() != "cloud" || Edge.String() != "edge" {
		t.Error("kind strings wrong")
	}
	if General.String() != "general" || GPU.String() != "gpu" {
		t.Error("role strings wrong")
	}
	if s := (Server{Name: "x", Kind: Edge, Role: GPU}).String(); !strings.Contains(s, "edge") || !strings.Contains(s, "gpu") {
		t.Errorf("server String = %q", s)
	}
}

func TestSelectVerizonEdgeInCity(t *testing.T) {
	fleet := Fleet()
	route := geo.DefaultRoute()
	wp := route.At(0) // Los Angeles
	s := Select(fleet, wp, radio.Verizon, General)
	if s.Kind != Edge || s.City != "Los Angeles" {
		t.Errorf("Verizon in LA selected %v", s)
	}
	gpu := Select(fleet, wp, radio.Verizon, GPU)
	if gpu.Kind != Edge || gpu.Role != GPU {
		t.Errorf("Verizon GPU in LA selected %v", gpu)
	}
}

func TestSelectOtherOperatorsNeverEdge(t *testing.T) {
	fleet := Fleet()
	wp := geo.DefaultRoute().At(0)
	for _, op := range []radio.Operator{radio.TMobile, radio.ATT} {
		if s := Select(fleet, wp, op, General); s.Kind != Cloud {
			t.Errorf("%v selected %v, want cloud", op, s)
		}
	}
}

func TestSelectCloudRegionByTimezone(t *testing.T) {
	fleet := Fleet()
	route := geo.DefaultRoute()
	// Mid-Mountain timezone (no edge city nearby): California.
	var mountainWP, centralWP geo.Waypoint
	for odo := unit.Meters(0); odo < route.Total(); odo += 10 * unit.Kilometer {
		wp := route.At(odo)
		if wp.Timezone == geo.Mountain && wp.CityDistance > EdgeRadius && mountainWP.City == "" {
			mountainWP = wp
		}
		if wp.Timezone == geo.Central && wp.CityDistance > EdgeRadius && centralWP.City == "" {
			centralWP = wp
		}
	}
	if s := Select(fleet, mountainWP, radio.Verizon, General); s.City != "California" {
		t.Errorf("Mountain selected %v, want California", s)
	}
	if s := Select(fleet, centralWP, radio.TMobile, General); s.City != "Ohio" {
		t.Errorf("Central selected %v, want Ohio", s)
	}
}

func TestSelectVerizonOutsideEdgeRadiusUsesCloud(t *testing.T) {
	fleet := Fleet()
	route := geo.DefaultRoute()
	for odo := unit.Meters(0); odo < route.Total(); odo += 10 * unit.Kilometer {
		wp := route.At(odo)
		if wp.CityDistance > EdgeRadius {
			if s := Select(fleet, wp, radio.Verizon, General); s.Kind != Cloud {
				t.Fatalf("Verizon at %v (city dist %v) selected %v", odo, wp.CityDistance, s)
			}
			return
		}
	}
	t.Fatal("no waypoint outside edge radius found")
}

func TestBaseRTTEdgeBelowCloud(t *testing.T) {
	fleet := Fleet()
	la := geo.MajorCities()[0].Loc
	var edge, cld Server
	for _, s := range fleet {
		if s.Kind == Edge && s.City == "Los Angeles" && s.Role == General {
			edge = s
		}
		if s.Kind == Cloud && s.City == "California" && s.Role == General {
			cld = s
		}
	}
	e, c := BaseRTT(edge, la), BaseRTT(cld, la)
	if e >= c {
		t.Errorf("edge RTT %v not below cloud RTT %v", e, c)
	}
	if e < time.Millisecond || e > 10*time.Millisecond {
		t.Errorf("in-city edge RTT = %v, want a few ms", e)
	}
}

func TestBaseRTTGrowsWithDistance(t *testing.T) {
	oh := Server{Name: "oh", Kind: Cloud, Loc: geo.LatLon{Lat: 39.96, Lon: -83.00}}
	near := BaseRTT(oh, geo.LatLon{Lat: 41.5, Lon: -81.7}) // Cleveland
	far := BaseRTT(oh, geo.LatLon{Lat: 34.05, Lon: -118.24})
	if near >= far {
		t.Errorf("RTT near %v not below far %v", near, far)
	}
	// Cross-country cloud RTT should be tens of ms, not seconds.
	if far < 30*time.Millisecond || far > 120*time.Millisecond {
		t.Errorf("cross-country RTT = %v", far)
	}
}
