// Package cloud models the study's server side: AWS EC2 cloud instances
// in California and Ohio, and the five Amazon Wavelength edge servers
// deployed inside Verizon's network in Los Angeles, Las Vegas, Denver,
// Chicago, and Boston (§3).
//
// The base round-trip time between the UE's position and a server is the
// wireline part of every RTT in the study: fiber propagation over an
// inflated route plus a fixed peering/processing overhead that is much
// smaller for edge servers — the mechanism behind the paper's "edge
// computing is critical" finding (§5.2).
package cloud

import (
	"fmt"
	"time"

	"github.com/nuwins/cellwheels/internal/geo"
	"github.com/nuwins/cellwheels/internal/radio"
	"github.com/nuwins/cellwheels/internal/unit"
)

// Kind distinguishes remote cloud regions from in-network edge sites.
type Kind int

// Server kinds.
const (
	Cloud Kind = iota
	Edge
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	if k == Edge {
		return "edge"
	}
	return "cloud"
}

// Role describes the instance family, mirroring §B's two EC2 families.
type Role int

// Server roles.
const (
	General Role = iota // t3.xlarge-class Linux instance
	GPU                 // g4dn.2xlarge-class gaming/inference instance
)

// String implements fmt.Stringer.
func (r Role) String() string {
	if r == GPU {
		return "gpu"
	}
	return "general"
}

// Server is one deployed application server.
type Server struct {
	Name string
	Kind Kind
	Role Role
	City string // nearest city label, for reports
	Loc  geo.LatLon
}

// String implements fmt.Stringer.
func (s Server) String() string {
	return fmt.Sprintf("%s(%s,%s)", s.Name, s.Kind, s.Role)
}

// Fleet returns the study's full server deployment: general and GPU
// cloud instances in both regions, plus the five Verizon Wavelength edge
// sites (general and GPU roles colocated).
func Fleet() []Server {
	ca := geo.LatLon{Lat: 37.77, Lon: -122.42} // us-west-1
	oh := geo.LatLon{Lat: 39.96, Lon: -83.00}  // us-east-2
	fleet := []Server{
		{Name: "ec2-ca-general", Kind: Cloud, Role: General, City: "California", Loc: ca},
		{Name: "ec2-ca-gpu", Kind: Cloud, Role: GPU, City: "California", Loc: ca},
		{Name: "ec2-oh-general", Kind: Cloud, Role: General, City: "Ohio", Loc: oh},
		{Name: "ec2-oh-gpu", Kind: Cloud, Role: GPU, City: "Ohio", Loc: oh},
	}
	for _, c := range geo.MajorCities() {
		if !c.HasEdge {
			continue
		}
		fleet = append(fleet,
			Server{Name: "wl-" + short(c.Name) + "-general", Kind: Edge, Role: General, City: c.Name, Loc: c.Loc},
			Server{Name: "wl-" + short(c.Name) + "-gpu", Kind: Edge, Role: GPU, City: c.Name, Loc: c.Loc},
		)
	}
	return fleet
}

func short(city string) string {
	switch city {
	case "Los Angeles":
		return "lax"
	case "Las Vegas":
		return "las"
	case "Denver":
		return "den"
	case "Chicago":
		return "chi"
	case "Boston":
		return "bos"
	default:
		return "xxx"
	}
}

// EdgeRadius is how close to an edge city the UE must be for tests to use
// its Wavelength server.
const EdgeRadius = 60 * unit.Kilometer

// Select picks the server a test at the given waypoint uses, following
// §3's methodology: Verizon tests near one of the five edge cities use
// that city's Wavelength server; everything else uses the cloud region of
// the current half of the country (California for Pacific/Mountain, Ohio
// for Central/Eastern).
func Select(fleet []Server, wp geo.Waypoint, op radio.Operator, role Role) Server {
	if op == radio.Verizon && wp.CityHasEdge && wp.CityDistance < EdgeRadius {
		for _, s := range fleet {
			if s.Kind == Edge && s.Role == role && s.City == wp.City {
				return s
			}
		}
	}
	region := "California"
	if wp.Timezone == geo.Central || wp.Timezone == geo.Eastern {
		region = "Ohio"
	}
	for _, s := range fleet {
		if s.Kind == Cloud && s.Role == role && s.City == region {
			return s
		}
	}
	// A fleet without cloud servers is a configuration error; fall back
	// to anything rather than panic mid-campaign.
	return fleet[0]
}

// Propagation and overhead constants for BaseRTT.
const (
	fiberSpeed     = 2.0e8 // m/s in glass
	routeInflation = 1.7   // fiber paths are longer than great circles
	cloudOverhead  = 16 * time.Millisecond
	edgeOverhead   = 2 * time.Millisecond
)

// BaseRTT reports the wireline round-trip time between a UE position and
// the server: two-way fiber propagation over an inflated path plus
// peering/processing overhead. The radio access latency is added by the
// transport layer, not here.
func BaseRTT(s Server, loc geo.LatLon) time.Duration {
	d := float64(geo.Haversine(loc, s.Loc)) * routeInflation
	prop := time.Duration(2 * d / fiberSpeed * float64(time.Second))
	if s.Kind == Edge {
		return prop + edgeOverhead
	}
	return prop + cloudOverhead
}
