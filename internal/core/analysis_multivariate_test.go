package core

import (
	"math"
	"strings"
	"testing"

	"github.com/nuwins/cellwheels/internal/dataset"
	"github.com/nuwins/cellwheels/internal/radio"
)

func TestAnalyzeMultivariate(t *testing.T) {
	db := quickDB(t)
	m := AnalyzeMultivariate(db)
	fitted := 0
	for _, op := range radio.Operators() {
		for _, dir := range radio.Directions() {
			k := opDir{op, dir}
			if _, bad := m.Errors[k]; bad {
				continue
			}
			fit := m.Fit[k]
			fitted++
			if fit.R2 < 0 || fit.R2 > 1 {
				t.Errorf("%v %v: R² = %v", op, dir, fit.R2)
			}
			if len(fit.Coef) != 6 || len(fit.StdCoef) != 6 {
				t.Errorf("%v %v: %d coefficients", op, dir, len(fit.Coef))
			}
			for _, c := range fit.StdCoef {
				if math.IsNaN(c) {
					t.Errorf("%v %v: NaN std coefficient", op, dir)
				}
			}
			if m.DominantKPI(op, dir) == "" {
				t.Errorf("%v %v: no dominant KPI", op, dir)
			}
		}
	}
	if fitted == 0 {
		t.Fatal("no combination could be fitted")
	}
	out := m.Render()
	if !strings.Contains(out, "Multivariate") || !strings.Contains(out, "R²") {
		t.Errorf("render = %q", out[:80])
	}
}

func TestMultivariateJointBeatsMarginals(t *testing.T) {
	// The joint fit must explain at least as much variance as the single
	// strongest Pearson correlation squared (in-sample OLS property).
	db := quickDB(t)
	m := AnalyzeMultivariate(db)
	corr := TableKPICorrelation(db)
	for _, op := range radio.Operators() {
		for _, dir := range radio.Directions() {
			k := opDir{op, dir}
			fit, ok := m.Fit[k]
			if !ok {
				continue
			}
			best := 0.0
			for _, r := range corr.R[op][dir] {
				if r*r > best {
					best = r * r
				}
			}
			if fit.R2 < best-1e-6 {
				t.Errorf("%v %v: joint R²=%.3f below best single r²=%.3f", op, dir, fit.R2, best)
			}
		}
	}
}

func TestMultivariateEmptyDB(t *testing.T) {
	m := AnalyzeMultivariate(&dataset.DB{})
	if len(m.Fit) != 0 {
		t.Error("fit on empty dataset")
	}
	if len(m.Errors) == 0 {
		t.Error("no error notes on empty dataset")
	}
	_ = m.Render()
	if m.DominantKPI(radio.Verizon, radio.Downlink) != "" {
		t.Error("dominant KPI on empty dataset")
	}
}
