package core

import (
	"fmt"

	"github.com/nuwins/cellwheels/internal/dataset"
	"github.com/nuwins/cellwheels/internal/radio"
	"github.com/nuwins/cellwheels/internal/stats"
)

// SpeedScatter regenerates Figs 7 and 8: throughput and RTT against the
// vehicle's speed, broken down by technology and speed bin.
type SpeedScatter struct {
	// Tput[opDir][speedBin][tech] summarizes driving throughput.
	Tput map[opDir]map[string]map[radio.Technology]stats.Summary
	// RTT[op][speedBin][tech] in ms.
	RTT map[radio.Operator]map[string]map[radio.Technology]stats.Summary
}

// FigureSpeedScatter computes Figs 7 and 8.
func FigureSpeedScatter(db *dataset.DB) SpeedScatter {
	bins := stats.SpeedBins()
	out := SpeedScatter{
		Tput: map[opDir]map[string]map[radio.Technology]stats.Summary{},
		RTT:  map[radio.Operator]map[string]map[radio.Technology]stats.Summary{},
	}
	tputVals := map[opDir]map[string]map[radio.Technology][]float64{}
	for _, s := range db.Throughput {
		if s.Static {
			continue
		}
		k := opDir{s.Op, s.Dir}
		if tputVals[k] == nil {
			tputVals[k] = map[string]map[radio.Technology][]float64{}
		}
		lbl := bins.Label(s.SpeedMPH)
		if tputVals[k][lbl] == nil {
			tputVals[k][lbl] = map[radio.Technology][]float64{}
		}
		tputVals[k][lbl][s.Tech] = append(tputVals[k][lbl][s.Tech], s.Mbps)
	}
	for k, byBin := range tputVals {
		out.Tput[k] = map[string]map[radio.Technology]stats.Summary{}
		for lbl, byTech := range byBin {
			out.Tput[k][lbl] = map[radio.Technology]stats.Summary{}
			for tech, vals := range byTech {
				out.Tput[k][lbl][tech] = summarizeOrZero(vals)
			}
		}
	}

	rttVals := map[radio.Operator]map[string]map[radio.Technology][]float64{}
	for _, s := range db.RTT {
		if s.Static || s.Lost {
			continue
		}
		if rttVals[s.Op] == nil {
			rttVals[s.Op] = map[string]map[radio.Technology][]float64{}
		}
		lbl := bins.Label(s.SpeedMPH)
		if rttVals[s.Op][lbl] == nil {
			rttVals[s.Op][lbl] = map[radio.Technology][]float64{}
		}
		rttVals[s.Op][lbl][s.Tech] = append(rttVals[s.Op][lbl][s.Tech], s.RTTMS)
	}
	for op, byBin := range rttVals {
		out.RTT[op] = map[string]map[radio.Technology]stats.Summary{}
		for lbl, byTech := range byBin {
			out.RTT[op][lbl] = map[radio.Technology]stats.Summary{}
			for tech, vals := range byTech {
				out.RTT[op][lbl][tech] = summarizeOrZero(vals)
			}
		}
	}
	return out
}

// Render formats Figs 7 and 8.
func (r SpeedScatter) Render() string {
	bins := stats.SpeedBins()
	header := []string{"operator", "dir", "bin", "tech", "n", "med", "p90"}
	var rows [][]string
	for _, op := range radio.Operators() {
		for _, dir := range radio.Directions() {
			for _, lbl := range bins.Labels {
				for _, tech := range radio.Technologies() {
					sum, ok := r.Tput[opDir{op, dir}][lbl][tech]
					if !ok || sum.N == 0 {
						continue
					}
					rows = append(rows, []string{
						op.String(), dir.String(), lbl, tech.String(),
						fmt.Sprintf("%d", sum.N), f1(sum.Median), f1(sum.P90),
					})
				}
			}
		}
	}
	s := renderTable("Figure 7: throughput vs speed by technology (Mbps)", header, rows)

	rows = rows[:0]
	for _, op := range radio.Operators() {
		for _, lbl := range bins.Labels {
			for _, tech := range radio.Technologies() {
				sum, ok := r.RTT[op][lbl][tech]
				if !ok || sum.N == 0 {
					continue
				}
				rows = append(rows, []string{
					op.String(), lbl, tech.String(),
					fmt.Sprintf("%d", sum.N), f1(sum.Median), f1(sum.P90),
				})
			}
		}
	}
	s += renderTable("Figure 8: RTT vs speed by technology (ms)",
		[]string{"operator", "bin", "tech", "n", "med", "p90"}, rows)
	return s
}

// KPIName enumerates Table 2's columns.
type KPIName string

// Table 2's KPI columns.
const (
	KPIRSRP  KPIName = "RSRP"
	KPIMCS   KPIName = "MCS"
	KPICA    KPIName = "CA"
	KPIBLER  KPIName = "BLER"
	KPISpeed KPIName = "Speed"
	KPIHO    KPIName = "HO"
)

// KPINames returns the columns in Table 2's order.
func KPINames() []KPIName {
	return []KPIName{KPIRSRP, KPIMCS, KPICA, KPIBLER, KPISpeed, KPIHO}
}

// KPICorrelation regenerates Table 2: Pearson correlation of 500 ms
// throughput with each KPI, per operator and direction.
type KPICorrelation struct {
	// R[op][dir][kpi]; NaN-free (pairs with zero variance report 0).
	R map[radio.Operator]map[radio.Direction]map[KPIName]float64
	N map[opDir]int
}

// TableKPICorrelation computes Table 2.
func TableKPICorrelation(db *dataset.DB) KPICorrelation {
	out := KPICorrelation{
		R: map[radio.Operator]map[radio.Direction]map[KPIName]float64{},
		N: map[opDir]int{},
	}
	for _, op := range radio.Operators() {
		out.R[op] = map[radio.Direction]map[KPIName]float64{}
		for _, dir := range radio.Directions() {
			sel := db.ThroughputWhere(func(s dataset.ThroughputSample) bool {
				return s.Op == op && s.Dir == dir && !s.Static
			})
			tput := make([]float64, len(sel))
			cols := map[KPIName][]float64{}
			for _, k := range KPINames() {
				cols[k] = make([]float64, len(sel))
			}
			for i, s := range sel {
				tput[i] = s.Mbps
				cols[KPIRSRP][i] = s.RSRP
				cols[KPIMCS][i] = float64(s.MCS)
				cols[KPICA][i] = float64(s.CC)
				cols[KPIBLER][i] = s.BLER
				cols[KPISpeed][i] = s.SpeedMPH
				cols[KPIHO][i] = float64(s.Handovers)
			}
			rs := map[KPIName]float64{}
			for _, k := range KPINames() {
				r, err := stats.Pearson(cols[k], tput)
				if err != nil {
					r = 0
				}
				rs[k] = r
			}
			out.R[op][dir] = rs
			out.N[opDir{op, dir}] = len(sel)
		}
	}
	return out
}

// Render formats Table 2.
func (r KPICorrelation) Render() string {
	header := []string{"operator", "dir", "RSRP", "MCS", "CA", "BLER", "Speed", "HO", "n"}
	var rows [][]string
	for _, op := range radio.Operators() {
		for _, dir := range radio.Directions() {
			m := r.R[op][dir]
			rows = append(rows, []string{
				op.String(), dir.String(),
				f2(m[KPIRSRP]), f2(m[KPIMCS]), f2(m[KPICA]),
				f2(m[KPIBLER]), f2(m[KPISpeed]), f2(m[KPIHO]),
				fmt.Sprintf("%d", r.N[opDir{op, dir}]),
			})
		}
	}
	return renderTable("Table 2: Pearson correlation of throughput with KPIs", header, rows)
}

// MaxAbsR reports the largest |r| across all cells — used to verify the
// paper's "no KPI has a strong correlation with throughput".
func (r KPICorrelation) MaxAbsR() float64 {
	max := 0.0
	for _, byDir := range r.R {
		for _, m := range byDir {
			for _, v := range m {
				if v < 0 {
					v = -v
				}
				if v > max {
					max = v
				}
			}
		}
	}
	return max
}
