package core

import (
	"strings"

	"github.com/nuwins/cellwheels/internal/dataset"
	"github.com/nuwins/cellwheels/internal/geo"
	"github.com/nuwins/cellwheels/internal/radio"
	"github.com/nuwins/cellwheels/internal/stats"
)

// StaticVsDriving regenerates Fig 3: overall throughput and RTT under the
// static city baselines versus driving.
type StaticVsDriving struct {
	// Throughput[opDir][0] is static, [1] is driving.
	Throughput map[opDir][2]stats.Summary
	// RTT[op][0] static, [1] driving (ms).
	RTT map[radio.Operator][2]stats.Summary
	// FracBelow5 is the share of driving samples below 5 Mbps per
	// direction, pooled over operators — the paper's 35% headline.
	FracBelow5 map[radio.Direction]float64
}

// FigureStaticVsDriving computes Fig 3.
func FigureStaticVsDriving(db *dataset.DB) StaticVsDriving {
	out := StaticVsDriving{
		Throughput: map[opDir][2]stats.Summary{},
		RTT:        map[radio.Operator][2]stats.Summary{},
		FracBelow5: map[radio.Direction]float64{},
	}
	for _, op := range radio.Operators() {
		for _, dir := range radio.Directions() {
			sel := func(static bool) []float64 {
				return dataset.Mbps(db.ThroughputWhere(func(s dataset.ThroughputSample) bool {
					return s.Op == op && s.Dir == dir && s.Static == static
				}))
			}
			out.Throughput[opDir{op, dir}] = [2]stats.Summary{
				summarizeOrZero(sel(true)),
				summarizeOrZero(sel(false)),
			}
		}
		rtt := func(static bool) []float64 {
			return dataset.RTTValues(db.RTTWhere(func(s dataset.RTTSample) bool {
				return s.Op == op && s.Static == static
			}))
		}
		out.RTT[op] = [2]stats.Summary{summarizeOrZero(rtt(true)), summarizeOrZero(rtt(false))}
	}
	for _, dir := range radio.Directions() {
		xs := dataset.Mbps(db.ThroughputWhere(func(s dataset.ThroughputSample) bool {
			return s.Dir == dir && !s.Static
		}))
		out.FracBelow5[dir] = stats.NewCDF(xs).FracBelow(5)
	}
	return out
}

// ThroughputOf reports the summary for one operator/direction; static
// selects the baseline column.
func (r StaticVsDriving) ThroughputOf(op radio.Operator, dir radio.Direction, static bool) stats.Summary {
	pair := r.Throughput[opDir{op, dir}]
	if static {
		return pair[0]
	}
	return pair[1]
}

// RTTOf reports the RTT summary for one operator.
func (r StaticVsDriving) RTTOf(op radio.Operator, static bool) stats.Summary {
	pair := r.RTT[op]
	if static {
		return pair[0]
	}
	return pair[1]
}

// Render formats Fig 3.
func (r StaticVsDriving) Render() string {
	header := []string{"operator", "dir", "static med", "static max", "drive med", "drive p75", "drive max"}
	var rows [][]string
	for _, op := range radio.Operators() {
		for _, dir := range radio.Directions() {
			t := r.Throughput[opDir{op, dir}]
			rows = append(rows, []string{
				op.String(), dir.String(),
				f1(t[0].Median), f1(t[0].Max),
				f1(t[1].Median), f1(t[1].P75), f1(t[1].Max),
			})
		}
	}
	s := renderTable("Figure 3: static vs driving throughput (Mbps)", header, rows)

	rows = rows[:0]
	for _, op := range radio.Operators() {
		rt := r.RTT[op]
		rows = append(rows, []string{
			op.String(),
			f1(rt[0].Median), f1(rt[0].Max),
			f1(rt[1].Median), f1(rt[1].P90), f1(rt[1].Max),
		})
	}
	s += renderTable("Figure 3: static vs driving RTT (ms)",
		[]string{"operator", "static med", "static max", "drive med", "drive p90", "drive max"}, rows)
	s += renderTable("Figure 3: driving samples below 5 Mbps",
		[]string{"direction", "fraction"},
		[][]string{
			{"DL", pct(r.FracBelow5[radio.Downlink])},
			{"UL", pct(r.FracBelow5[radio.Uplink])},
		})
	return s
}

// PerTechnology regenerates Fig 4: driving throughput and RTT per
// technology, with Verizon's edge/cloud split.
type PerTechnology struct {
	// Throughput[op][tech][dir] summarizes driving samples.
	Throughput map[radio.Operator]map[radio.Technology]map[radio.Direction]stats.Summary
	// RTT[op][tech] in ms.
	RTT map[radio.Operator]map[radio.Technology]stats.Summary
	// VerizonEdge[tech][dir][0] is edge, [1] cloud.
	VerizonEdge map[radio.Technology]map[radio.Direction][2]stats.Summary
	// VerizonEdgeRTT[tech][0] edge, [1] cloud.
	VerizonEdgeRTT map[radio.Technology][2]stats.Summary
}

// FigurePerTechnology computes Fig 4.
func FigurePerTechnology(db *dataset.DB) PerTechnology {
	out := PerTechnology{
		Throughput:     map[radio.Operator]map[radio.Technology]map[radio.Direction]stats.Summary{},
		RTT:            map[radio.Operator]map[radio.Technology]stats.Summary{},
		VerizonEdge:    map[radio.Technology]map[radio.Direction][2]stats.Summary{},
		VerizonEdgeRTT: map[radio.Technology][2]stats.Summary{},
	}
	for _, op := range radio.Operators() {
		out.Throughput[op] = map[radio.Technology]map[radio.Direction]stats.Summary{}
		out.RTT[op] = map[radio.Technology]stats.Summary{}
		for _, tech := range radio.Technologies() {
			out.Throughput[op][tech] = map[radio.Direction]stats.Summary{}
			for _, dir := range radio.Directions() {
				xs := dataset.Mbps(db.ThroughputWhere(func(s dataset.ThroughputSample) bool {
					return s.Op == op && s.Dir == dir && s.Tech == tech && !s.Static
				}))
				out.Throughput[op][tech][dir] = summarizeOrZero(xs)
			}
			rt := dataset.RTTValues(db.RTTWhere(func(s dataset.RTTSample) bool {
				return s.Op == op && s.Tech == tech && !s.Static
			}))
			out.RTT[op][tech] = summarizeOrZero(rt)
		}
	}
	for _, tech := range radio.Technologies() {
		out.VerizonEdge[tech] = map[radio.Direction][2]stats.Summary{}
		for _, dir := range radio.Directions() {
			sel := func(edge bool) []float64 {
				return dataset.Mbps(db.ThroughputWhere(func(s dataset.ThroughputSample) bool {
					return s.Op == radio.Verizon && s.Dir == dir && s.Tech == tech && !s.Static && s.Edge == edge
				}))
			}
			out.VerizonEdge[tech][dir] = [2]stats.Summary{summarizeOrZero(sel(true)), summarizeOrZero(sel(false))}
		}
		rsel := func(edge bool) []float64 {
			return dataset.RTTValues(db.RTTWhere(func(s dataset.RTTSample) bool {
				return s.Op == radio.Verizon && s.Tech == tech && !s.Static && s.Edge == edge
			}))
		}
		out.VerizonEdgeRTT[tech] = [2]stats.Summary{summarizeOrZero(rsel(true)), summarizeOrZero(rsel(false))}
	}
	return out
}

// Render formats Fig 4.
func (r PerTechnology) Render() string {
	header := []string{"operator", "tech", "DL med", "DL p90", "DL max", "UL med", "UL max", "RTT med", "RTT p90"}
	var rows [][]string
	for _, op := range radio.Operators() {
		for _, tech := range radio.Technologies() {
			dl := r.Throughput[op][tech][radio.Downlink]
			ul := r.Throughput[op][tech][radio.Uplink]
			rt := r.RTT[op][tech]
			if dl.N == 0 && ul.N == 0 && rt.N == 0 {
				continue
			}
			rows = append(rows, []string{
				op.String(), tech.String(),
				f1(dl.Median), f1(dl.P90), f1(dl.Max),
				f1(ul.Median), f1(ul.Max),
				f1(rt.Median), f1(rt.P90),
			})
		}
	}
	s := renderTable("Figure 4: per-technology driving performance", header, rows)

	rows = rows[:0]
	for _, tech := range radio.Technologies() {
		for _, dir := range radio.Directions() {
			e := r.VerizonEdge[tech][dir]
			if e[0].N == 0 && e[1].N == 0 {
				continue
			}
			rt := r.VerizonEdgeRTT[tech]
			rows = append(rows, []string{
				tech.String(), dir.String(),
				f1(e[0].Median), f1(e[1].Median),
				f1(rt[0].Median), f1(rt[1].Median),
			})
		}
	}
	s += renderTable("Figure 4: Verizon edge vs cloud (medians)",
		[]string{"tech", "dir", "tput edge", "tput cloud", "rtt edge", "rtt cloud"}, rows)
	return s
}

// TimezonePerf regenerates Fig 5: throughput CDFs per timezone.
type TimezonePerf struct {
	// Summary[opDir][tz].
	Summary map[opDir]map[geo.Timezone]stats.Summary
}

// FigureTimezone computes Fig 5.
func FigureTimezone(db *dataset.DB) TimezonePerf {
	out := TimezonePerf{Summary: map[opDir]map[geo.Timezone]stats.Summary{}}
	for _, op := range radio.Operators() {
		for _, dir := range radio.Directions() {
			k := opDir{op, dir}
			out.Summary[k] = map[geo.Timezone]stats.Summary{}
			for tz := geo.Pacific; tz <= geo.Eastern; tz++ {
				xs := dataset.Mbps(db.ThroughputWhere(func(s dataset.ThroughputSample) bool {
					return s.Op == op && s.Dir == dir && s.Timezone == tz && !s.Static
				}))
				out.Summary[k][tz] = summarizeOrZero(xs)
			}
		}
	}
	return out
}

// Render formats Fig 5.
func (r TimezonePerf) Render() string {
	header := []string{"operator", "dir", "Pacific med", "Mountain med", "Central med", "Eastern med"}
	var rows [][]string
	for _, op := range radio.Operators() {
		for _, dir := range radio.Directions() {
			m := r.Summary[opDir{op, dir}]
			rows = append(rows, []string{
				op.String(), dir.String(),
				f1(m[geo.Pacific].Median), f1(m[geo.Mountain].Median),
				f1(m[geo.Central].Median), f1(m[geo.Eastern].Median),
			})
		}
	}
	return renderTable("Figure 5: driving throughput by timezone (Mbps)", header, rows)
}

// LongTimescale regenerates Fig 9: per-test means and in-test variability.
type LongTimescale struct {
	// MeanTput[opDir] summarizes per-test mean throughput.
	MeanTput map[opDir]stats.Summary
	// MeanRTT[op] summarizes per-test mean RTT.
	MeanRTT map[radio.Operator]stats.Summary
	// StdPct[opDir] summarizes per-test stddev as % of the mean.
	StdPct map[opDir]stats.Summary
	// RTTStdPct[op] likewise for RTT tests.
	RTTStdPct map[radio.Operator]stats.Summary
}

// FigureLongTimescale computes Fig 9 from per-test aggregates.
func FigureLongTimescale(db *dataset.DB) LongTimescale {
	out := LongTimescale{
		MeanTput:  map[opDir]stats.Summary{},
		MeanRTT:   map[radio.Operator]stats.Summary{},
		StdPct:    map[opDir]stats.Summary{},
		RTTStdPct: map[radio.Operator]stats.Summary{},
	}
	// Group throughput samples per test.
	byTest := map[int][]float64{}
	testInfo := map[int]dataset.Test{}
	for _, t := range db.Tests {
		testInfo[t.ID] = t
	}
	for _, s := range db.Throughput {
		if !s.Static {
			byTest[s.TestID] = append(byTest[s.TestID], s.Mbps)
		}
	}
	means := map[opDir][]float64{}
	stds := map[opDir][]float64{}
	// Walk tests in ID order, not map order: the per-test means are
	// accumulated into float slices whose summation order must be fixed
	// for the report to be byte-identical across runs.
	for _, id := range sortedTestIDs(byTest) {
		xs := byTest[id]
		t := testInfo[id]
		dir := radio.Downlink
		if t.Kind == dataset.ThroughputUL {
			dir = radio.Uplink
		} else if t.Kind != dataset.ThroughputDL {
			continue
		}
		sum := summarizeOrZero(xs)
		k := opDir{t.Op, dir}
		means[k] = append(means[k], sum.Mean)
		if sum.Mean > 0 {
			stds[k] = append(stds[k], 100*sum.Std/sum.Mean)
		}
	}
	for k, xs := range means {
		out.MeanTput[k] = summarizeOrZero(xs)
	}
	for k, xs := range stds {
		out.StdPct[k] = summarizeOrZero(xs)
	}

	rttByTest := map[int][]float64{}
	for _, s := range db.RTT {
		if !s.Lost && !s.Static {
			rttByTest[s.TestID] = append(rttByTest[s.TestID], s.RTTMS)
		}
	}
	rttMeans := map[radio.Operator][]float64{}
	rttStds := map[radio.Operator][]float64{}
	for _, id := range sortedTestIDs(rttByTest) {
		xs := rttByTest[id]
		t := testInfo[id]
		sum := summarizeOrZero(xs)
		rttMeans[t.Op] = append(rttMeans[t.Op], sum.Mean)
		if sum.Mean > 0 {
			rttStds[t.Op] = append(rttStds[t.Op], 100*sum.Std/sum.Mean)
		}
	}
	for op, xs := range rttMeans {
		out.MeanRTT[op] = summarizeOrZero(xs)
	}
	for op, xs := range rttStds {
		out.RTTStdPct[op] = summarizeOrZero(xs)
	}
	return out
}

// Render formats Fig 9.
func (r LongTimescale) Render() string {
	header := []string{"operator", "DL mean med", "UL mean med", "RTT mean med", "DL std% med", "UL std% med", "RTT std% med"}
	var rows [][]string
	for _, op := range radio.Operators() {
		rows = append(rows, []string{
			op.String(),
			f1(r.MeanTput[opDir{op, radio.Downlink}].Median),
			f1(r.MeanTput[opDir{op, radio.Uplink}].Median),
			f1(r.MeanRTT[op].Median),
			f1(r.StdPct[opDir{op, radio.Downlink}].Median),
			f1(r.StdPct[opDir{op, radio.Uplink}].Median),
			f1(r.RTTStdPct[op].Median),
		})
	}
	return renderTable("Figure 9: per-test means and variability", header, rows)
}

// HighSpeedShare regenerates Fig 10: per-test performance as a function
// of the share of test time spent on high-speed 5G.
type HighSpeedShare struct {
	// TputByBin[opDir][bin] with bins 0: <25%, 1: 25-75%, 2: >75% of the
	// test on mid/mmWave.
	TputByBin map[opDir][3]stats.Summary
	// RTTByBin[op][bin].
	RTTByBin map[radio.Operator][3]stats.Summary
}

// FigureHighSpeed5GShare computes Fig 10.
func FigureHighSpeed5GShare(db *dataset.DB) HighSpeedShare {
	out := HighSpeedShare{
		TputByBin: map[opDir][3]stats.Summary{},
		RTTByBin:  map[radio.Operator][3]stats.Summary{},
	}
	binOf := func(frac float64) int {
		switch {
		case frac < 0.25:
			return 0
		case frac <= 0.75:
			return 1
		default:
			return 2
		}
	}
	// Per-test high-speed share from samples.
	hsFrac := map[int]float64{}
	counts := map[int][2]int{} // [highspeed, total]
	for _, s := range db.Throughput {
		c := counts[s.TestID]
		c[1]++
		if s.Tech.IsHighSpeed() {
			c[0]++
		}
		counts[s.TestID] = c
	}
	for id, c := range counts {
		if c[1] > 0 {
			hsFrac[id] = float64(c[0]) / float64(c[1])
		}
	}
	testInfo := map[int]dataset.Test{}
	for _, t := range db.Tests {
		testInfo[t.ID] = t
	}

	tmp := map[opDir][3][]float64{}
	byTest := map[int][]float64{}
	for _, s := range db.Throughput {
		if !s.Static {
			byTest[s.TestID] = append(byTest[s.TestID], s.Mbps)
		}
	}
	for id, xs := range byTest {
		t := testInfo[id]
		dir := radio.Downlink
		if t.Kind == dataset.ThroughputUL {
			dir = radio.Uplink
		} else if t.Kind != dataset.ThroughputDL {
			continue
		}
		k := opDir{t.Op, dir}
		arr := tmp[k]
		b := binOf(hsFrac[id])
		arr[b] = append(arr[b], summarizeOrZero(xs).Mean)
		tmp[k] = arr
	}
	for k, arr := range tmp {
		out.TputByBin[k] = [3]stats.Summary{
			summarizeOrZero(arr[0]), summarizeOrZero(arr[1]), summarizeOrZero(arr[2]),
		}
	}

	// RTT tests: derive the high-speed share from RTT samples' tech.
	rttCounts := map[int][2]int{}
	rttByTest := map[int][]float64{}
	for _, s := range db.RTT {
		if s.Static {
			continue
		}
		c := rttCounts[s.TestID]
		c[1]++
		if s.Tech.IsHighSpeed() {
			c[0]++
		}
		rttCounts[s.TestID] = c
		if !s.Lost {
			rttByTest[s.TestID] = append(rttByTest[s.TestID], s.RTTMS)
		}
	}
	rtmp := map[radio.Operator][3][]float64{}
	for id, xs := range rttByTest {
		t := testInfo[id]
		c := rttCounts[id]
		frac := 0.0
		if c[1] > 0 {
			frac = float64(c[0]) / float64(c[1])
		}
		arr := rtmp[t.Op]
		b := binOf(frac)
		arr[b] = append(arr[b], summarizeOrZero(xs).Mean)
		rtmp[t.Op] = arr
	}
	for op, arr := range rtmp {
		out.RTTByBin[op] = [3]stats.Summary{
			summarizeOrZero(arr[0]), summarizeOrZero(arr[1]), summarizeOrZero(arr[2]),
		}
	}
	return out
}

// Render formats Fig 10.
func (r HighSpeedShare) Render() string {
	header := []string{"operator", "dir", "<25% hs med", "25-75% med", ">75% med"}
	var rows [][]string
	for _, op := range radio.Operators() {
		for _, dir := range radio.Directions() {
			a := r.TputByBin[opDir{op, dir}]
			rows = append(rows, []string{
				op.String(), dir.String(), f1(a[0].Median), f1(a[1].Median), f1(a[2].Median),
			})
		}
	}
	s := renderTable("Figure 10: per-test mean tput vs time on high-speed 5G", header, rows)
	rows = rows[:0]
	for _, op := range radio.Operators() {
		a := r.RTTByBin[op]
		rows = append(rows, []string{op.String(), f1(a[0].Median), f1(a[1].Median), f1(a[2].Median)})
	}
	s += renderTable("Figure 10: per-test mean RTT vs time on high-speed 5G (ms)",
		[]string{"operator", "<25% hs med", "25-75% med", ">75% med"}, rows)
	return s
}

// OoklaRow is one carrier's comparison line in Table 3.
type OoklaRow struct {
	OurDL, SpeedtestDL   float64
	OurUL, SpeedtestUL   float64
	OurRTT, SpeedtestRTT float64
}

// OoklaComparison regenerates Table 3: our driving medians against the
// medians Ookla SpeedTest reported for Q3 2022 (constants from the paper).
type OoklaComparison struct {
	Rows map[radio.Operator]OoklaRow
}

// ooklaQ32022 is Table 3's published Speedtest column.
var ooklaQ32022 = map[radio.Operator][3]float64{
	radio.Verizon: {58.64, 8.30, 59.00},
	radio.TMobile: {116.14, 10.91, 60.00},
	radio.ATT:     {57.94, 7.55, 61.00},
}

// TableOoklaComparison computes Table 3.
func TableOoklaComparison(db *dataset.DB) OoklaComparison {
	lt := FigureLongTimescale(db)
	out := OoklaComparison{Rows: map[radio.Operator]OoklaRow{}}
	for _, op := range radio.Operators() {
		ook := ooklaQ32022[op]
		out.Rows[op] = OoklaRow{
			OurDL: lt.MeanTput[opDir{op, radio.Downlink}].Median, SpeedtestDL: ook[0],
			OurUL: lt.MeanTput[opDir{op, radio.Uplink}].Median, SpeedtestUL: ook[1],
			OurRTT: lt.MeanRTT[op].Median, SpeedtestRTT: ook[2],
		}
	}
	return out
}

// Render formats Table 3.
func (r OoklaComparison) Render() string {
	header := []string{"operator", "our DL", "Ookla DL", "our UL", "Ookla UL", "our RTT", "Ookla RTT"}
	var rows [][]string
	for _, op := range radio.Operators() {
		x := r.Rows[op]
		rows = append(rows, []string{
			op.String(),
			f2(x.OurDL), f2(x.SpeedtestDL),
			f2(x.OurUL), f2(x.SpeedtestUL),
			f2(x.OurRTT), f2(x.SpeedtestRTT),
		})
	}
	return renderTable("Table 3: driving medians vs Ookla Q3-2022 (static crowdsourced)", header, rows) +
		strings.TrimSpace(`
Reading: driving DL well below the static crowd medians; UL slightly
above; RTT higher — the paper's degradation-under-driving signature.`) + "\n"
}
