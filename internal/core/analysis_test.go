package core

import (
	"math"
	"strings"
	"testing"

	"github.com/nuwins/cellwheels/internal/dataset"
	"github.com/nuwins/cellwheels/internal/geo"
	"github.com/nuwins/cellwheels/internal/radio"
)

func TestTableDatasetStats(t *testing.T) {
	db := quickDB(t)
	d := TableDatasetStats(db)
	if d.RouteKm < 100 || d.RouteKm > 200 {
		t.Errorf("driven km = %v, want ≈120 (the quick campaign's limit)", d.RouteKm)
	}
	if d.Timezones < 1 {
		t.Errorf("timezones = %d", d.Timezones)
	}
	if len(d.Operators) != 3 {
		t.Errorf("operators = %v", d.Operators)
	}
	if d.LogRecords == 0 {
		t.Error("no log records counted")
	}
	out := d.Render()
	for _, want := range []string{"Table 1", "Verizon", "Rx"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestFigureCoverageMaps(t *testing.T) {
	db := quickDB(t)
	m := FigureCoverageMaps(db, geo.DefaultRoute(), 80)
	for _, op := range radio.Operators() {
		s := m.Strip[op]
		if len(s[0]) != 80 || len(s[1]) != 80 {
			t.Fatalf("%v: strip lengths %d/%d", op, len(s[0]), len(s[1]))
		}
	}
	// The Fig 1 lesson: passive logging shows less 5G than active for
	// every operator with any active 5G.
	for _, op := range radio.Operators() {
		if m.Active5G[op] > 0.05 && m.Passive5G[op] > m.Active5G[op] {
			t.Errorf("%v: passive 5G %v above active %v", op, m.Passive5G[op], m.Active5G[op])
		}
	}
	// AT&T passive is pure 4G (Fig 1d).
	if m.Passive5G[radio.ATT] != 0 {
		t.Errorf("AT&T passive 5G share = %v, want 0", m.Passive5G[radio.ATT])
	}
	if !strings.Contains(m.Render(), "Figure 1") {
		t.Error("render missing title")
	}
}

func TestFigureCoverage(t *testing.T) {
	db := quickDB(t)
	c := FigureCoverage(db)
	for _, op := range radio.Operators() {
		total := 0.0
		for _, v := range c.Overall[op] {
			total += v
		}
		if math.Abs(total-1) > 1e-9 {
			t.Errorf("%v: shares sum to %v", op, total)
		}
	}
	// The quick campaign covers only the LA area, so exact Fig 2a values
	// don't apply, but the direction asymmetry must hold: high-speed 5G
	// share in UL must not exceed DL by much for any operator.
	for _, op := range radio.Operators() {
		dl := ShareHighSpeed(c.ByDirection[op][radio.Downlink])
		ul := ShareHighSpeed(c.ByDirection[op][radio.Uplink])
		if ul > dl+0.1 {
			t.Errorf("%v: UL high-speed %v above DL %v", op, ul, dl)
		}
	}
	out := c.Render()
	for _, want := range []string{"Figure 2a", "Figure 2b", "Figure 2c", "Figure 2d"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestFigureStaticVsDriving(t *testing.T) {
	db := quickDB(t)
	r := FigureStaticVsDriving(db)
	// Static DL beats driving DL for operators that ran baselines.
	for _, op := range radio.Operators() {
		k := opDir{op, radio.Downlink}
		st, dr := r.Throughput[k][0], r.Throughput[k][1]
		if st.N == 0 {
			continue // no baseline for this op in the quick area
		}
		if st.Median <= dr.Median {
			t.Errorf("%v: static median %v not above driving %v", op, st.Median, dr.Median)
		}
	}
	if r.FracBelow5[radio.Uplink] <= 0 {
		t.Error("no low uplink samples at all")
	}
	if !strings.Contains(r.Render(), "Figure 3") {
		t.Error("render missing title")
	}
}

func TestFigurePerTechnology(t *testing.T) {
	db := quickDB(t)
	r := FigurePerTechnology(db)
	// LTE is always present.
	anyLTE := false
	for _, op := range radio.Operators() {
		if r.Throughput[op][radio.LTE][radio.Downlink].N > 0 {
			anyLTE = true
		}
	}
	if !anyLTE {
		t.Error("no LTE downlink samples for any operator")
	}
	if !strings.Contains(r.Render(), "edge vs cloud") {
		t.Error("render missing Verizon split")
	}
}

func TestFigureTimezone(t *testing.T) {
	db := quickDB(t)
	r := FigureTimezone(db)
	// Quick campaign: everything Pacific.
	k := opDir{radio.Verizon, radio.Downlink}
	if r.Summary[k][geo.Pacific].N == 0 {
		t.Error("no Pacific samples")
	}
	if r.Summary[k][geo.Eastern].N != 0 {
		t.Error("Eastern samples in a 120 km LA campaign")
	}
	_ = r.Render()
}

func TestFigureOperatorDiversity(t *testing.T) {
	db := quickDB(t)
	r := FigureOperatorDiversity(db)
	for _, pair := range Pairs() {
		for _, dir := range radio.Directions() {
			pd := r.ByPair[pair][dir]
			if pd.N == 0 {
				t.Errorf("%v %v: no concurrent samples — phones should be in lock-step", pair, dir)
				continue
			}
			shares := 0.0
			for _, b := range []HTLTBin{HTHT, HTLT, LTHT, LTLT} {
				shares += pd.BinShare[b]
			}
			if math.Abs(shares-1) > 1e-9 {
				t.Errorf("%v %v: bin shares sum to %v", pair, dir, shares)
			}
			if pd.FracAPositive < 0 || pd.FracAPositive > 1 {
				t.Errorf("bad win fraction %v", pd.FracAPositive)
			}
		}
	}
	if !strings.Contains(r.Render(), "Figure 6a") {
		t.Error("render missing title")
	}
}

func TestFigureSpeedScatter(t *testing.T) {
	db := quickDB(t)
	r := FigureSpeedScatter(db)
	found := false
	for _, m := range r.Tput {
		for _, byTech := range m {
			for _, sum := range byTech {
				if sum.N > 0 {
					found = true
				}
			}
		}
	}
	if !found {
		t.Fatal("no speed-binned samples")
	}
	out := r.Render()
	if !strings.Contains(out, "Figure 7") || !strings.Contains(out, "Figure 8") {
		t.Error("render missing panels")
	}
}

func TestTableKPICorrelation(t *testing.T) {
	db := quickDB(t)
	r := TableKPICorrelation(db)
	for _, op := range radio.Operators() {
		for _, dir := range radio.Directions() {
			for _, k := range KPINames() {
				v := r.R[op][dir][k]
				if math.IsNaN(v) || v < -1 || v > 1 {
					t.Errorf("%v %v %v: r = %v", op, dir, k, v)
				}
			}
		}
	}
	// The paper's core finding: no KPI strongly correlates.
	if r.MaxAbsR() > 0.85 {
		t.Errorf("max |r| = %v; expected weak-to-medium correlations", r.MaxAbsR())
	}
	if !strings.Contains(r.Render(), "Table 2") {
		t.Error("render missing title")
	}
}

func TestKPIHandoverCorrelationNearZero(t *testing.T) {
	db := quickDB(t)
	r := TableKPICorrelation(db)
	for _, op := range radio.Operators() {
		for _, dir := range radio.Directions() {
			if v := math.Abs(r.R[op][dir][KPIHO]); v > 0.3 {
				t.Errorf("%v %v: |r(HO)| = %v; the paper finds none", op, dir, v)
			}
		}
	}
}

func TestFigureLongTimescale(t *testing.T) {
	db := quickDB(t)
	r := FigureLongTimescale(db)
	for _, op := range radio.Operators() {
		if r.MeanTput[opDir{op, radio.Downlink}].N == 0 {
			t.Errorf("%v: no per-test DL means", op)
		}
		if r.MeanRTT[op].N == 0 {
			t.Errorf("%v: no per-test RTT means", op)
		}
		// Variability within tests is substantial (Fig 9 lower row).
		if r.StdPct[opDir{op, radio.Downlink}].Median < 5 {
			t.Errorf("%v: DL std%% median %v implausibly low", op, r.StdPct[opDir{op, radio.Downlink}].Median)
		}
	}
	_ = r.Render()
}

func TestFigureHighSpeed5GShare(t *testing.T) {
	db := quickDB(t)
	r := FigureHighSpeed5GShare(db)
	n := 0
	for _, arr := range r.TputByBin {
		for _, s := range arr {
			n += s.N
		}
	}
	if n == 0 {
		t.Fatal("no per-test aggregates")
	}
	_ = r.Render()
}

func TestTableOoklaComparison(t *testing.T) {
	db := quickDB(t)
	r := TableOoklaComparison(db)
	for _, op := range radio.Operators() {
		row := r.Rows[op]
		if row.SpeedtestDL == 0 || row.SpeedtestRTT == 0 {
			t.Errorf("%v: missing Ookla constants", op)
		}
		if row.OurDL <= 0 {
			t.Errorf("%v: missing our medians", op)
		}
	}
	if !strings.Contains(r.Render(), "Ookla") {
		t.Error("render missing title")
	}
}

func TestFigureHandoverStats(t *testing.T) {
	db := quickDB(t)
	r := FigureHandoverStats(db)
	anyHO := false
	for _, dur := range r.Duration {
		if dur.N > 0 {
			anyHO = true
			// Fig 11b scale: tens of ms, not seconds.
			if dur.Median < 20 || dur.Median > 200 {
				t.Errorf("HO duration median %v ms", dur.Median)
			}
		}
	}
	if !anyHO {
		t.Error("no handover durations recorded")
	}
	_ = r.Render()
}

func TestFigureHandoverImpact(t *testing.T) {
	db := quickDB(t)
	r := FigureHandoverImpact(db)
	total := 0
	for k, sum := range r.DeltaT1 {
		total += sum.N
		fr := r.FracT1Negative[k]
		if fr < 0 || fr > 1 {
			t.Errorf("%v: ΔT1<0 fraction %v", k, fr)
		}
	}
	if total == 0 {
		t.Skip("no handovers with full ±2 sample context in quick run")
	}
	// §6: the HO window mostly loses throughput.
	neg := 0.0
	n := 0.0
	for k, sum := range r.DeltaT1 {
		neg += r.FracT1Negative[k] * float64(sum.N)
		n += float64(sum.N)
		_ = k
	}
	if n > 20 && neg/n < 0.5 {
		t.Errorf("pooled ΔT1<0 = %v, want majority", neg/n)
	}
	_ = r.Render()
}

func TestFigureARAndCAV(t *testing.T) {
	db := quickDB(t)
	ar := FigureARApp(db)
	cav := FigureCAVApp(db)
	for _, op := range radio.Operators() {
		// Compression reduces CAV E2E dramatically (§7.1.2).
		raw, comp := cav.E2E[op][0], cav.E2E[op][1]
		if raw.N > 2 && comp.N > 2 && comp.Median >= raw.Median {
			t.Errorf("%v: CAV compressed median %v not below raw %v", op, comp.Median, raw.Median)
		}
		// AR accuracy is bounded by Table 5's best value.
		if m := ar.MAP[op][1]; m.N > 0 && (m.Max > 38.45 || m.Min < 0) {
			t.Errorf("%v: AR mAP out of range: %+v", op, m)
		}
	}
	if !strings.Contains(ar.Render(), "Figure 13") || !strings.Contains(cav.Render(), "Figure 14") {
		t.Error("render titles wrong")
	}
}

func TestFigureVideo(t *testing.T) {
	db := quickDB(t)
	r := FigureVideo(db)
	for _, op := range radio.Operators() {
		if r.QoE[op].N == 0 {
			t.Errorf("%v: no video runs", op)
			continue
		}
		if r.Rebuffer[op].Min < 0 || r.Rebuffer[op].Max > 1 {
			t.Errorf("%v: rebuffer out of range", op)
		}
		if r.FracNegative[op] < 0 || r.FracNegative[op] > 1 {
			t.Errorf("%v: negative-QoE fraction %v", op, r.FracNegative[op])
		}
	}
	_ = r.Render()
}

func TestFigureGaming(t *testing.T) {
	db := quickDB(t)
	r := FigureGaming(db)
	for _, op := range radio.Operators() {
		if r.Bitrate[op].N == 0 {
			t.Errorf("%v: no gaming runs", op)
			continue
		}
		if r.Bitrate[op].Max > 100.01 {
			t.Errorf("%v: bitrate above Steam's 100 Mbps cap", op)
		}
		if r.Drops[op].Min < 0 || r.Drops[op].Max > 1 {
			t.Errorf("%v: drop fraction out of range", op)
		}
	}
	_ = r.Render()
}

func TestStaticTables(t *testing.T) {
	t4 := TableAppConfigs()
	for _, want := range []string{"Table 4", "450.00 KB", "2.00 MB", "44.0"} {
		if !strings.Contains(t4, want) {
			t.Errorf("Table 4 missing %q", want)
		}
	}
	t5 := TableMAP()
	for _, want := range []string{"Table 5", "38.45", "13.70", "29-30"} {
		if !strings.Contains(t5, want) {
			t.Errorf("Table 5 missing %q", want)
		}
	}
}

func TestFullReport(t *testing.T) {
	db := quickDB(t)
	maps := FigureCoverageMaps(db, geo.DefaultRoute(), 60)
	rep := Report(db, maps)
	for _, want := range []string{
		"Table 1", "Figure 1", "Figure 2a", "Figure 3", "Figure 4",
		"Figure 5", "Figure 6a", "Figure 7", "Figure 8", "Table 2",
		"Figure 9", "Figure 10", "Table 3", "Figure 11", "Figure 12",
		"Figure 13", "Figure 14", "Figure 15", "Figure 16", "Table 4", "Table 5",
	} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if len(rep) < 4000 {
		t.Errorf("report suspiciously short: %d bytes", len(rep))
	}
}

func TestAnalysisOnEmptyDB(t *testing.T) {
	db := &dataset.DB{}
	// None of the analysis functions may panic on an empty dataset.
	_ = TableDatasetStats(db).Render()
	_ = FigureCoverage(db).Render()
	_ = FigureStaticVsDriving(db).Render()
	_ = FigurePerTechnology(db).Render()
	_ = FigureTimezone(db).Render()
	_ = FigureOperatorDiversity(db).Render()
	_ = FigureSpeedScatter(db).Render()
	_ = TableKPICorrelation(db).Render()
	_ = FigureLongTimescale(db).Render()
	_ = FigureHighSpeed5GShare(db).Render()
	_ = TableOoklaComparison(db).Render()
	_ = FigureHandoverStats(db).Render()
	_ = FigureHandoverImpact(db).Render()
	_ = FigureARApp(db).Render()
	_ = FigureCAVApp(db).Render()
	_ = FigureVideo(db).Render()
	_ = FigureGaming(db).Render()
	_ = FigureCoverageMaps(db, geo.DefaultRoute(), 10).Render()
}
