package core

import (
	"fmt"
	"time"

	"github.com/nuwins/cellwheels/internal/dataset"
	"github.com/nuwins/cellwheels/internal/radio"
	"github.com/nuwins/cellwheels/internal/stats"
)

// OperatorPair names an ordered carrier pair, in the paper's ordering.
type OperatorPair struct {
	A, B radio.Operator
}

// String implements fmt.Stringer.
func (p OperatorPair) String() string { return p.A.String() + " - " + p.B.String() }

// Pairs returns the paper's three pairs.
func Pairs() []OperatorPair {
	return []OperatorPair{
		{radio.Verizon, radio.TMobile},
		{radio.TMobile, radio.ATT},
		{radio.ATT, radio.Verizon},
	}
}

// HTLTBin classifies a concurrent sample pair by each side's technology
// class: HT is high-speed 5G (mid/mmWave), LT everything else (§5.4).
type HTLTBin int

// Pair bins.
const (
	HTHT HTLTBin = iota
	HTLT
	LTHT
	LTLT
)

// String implements fmt.Stringer.
func (b HTLTBin) String() string {
	return [...]string{"HT-HT", "HT-LT", "LT-HT", "LT-LT"}[b]
}

func binOfPair(a, b radio.Technology) HTLTBin {
	switch {
	case a.IsHighSpeed() && b.IsHighSpeed():
		return HTHT
	case a.IsHighSpeed():
		return HTLT
	case b.IsHighSpeed():
		return LTHT
	default:
		return LTLT
	}
}

// PairDiff summarizes the concurrent throughput differences of one
// operator pair in one direction.
type PairDiff struct {
	N int
	// Diff summarizes A−B over all concurrent samples (Fig 6a).
	Diff stats.Summary
	// FracAPositive is the share of samples where A outperforms B.
	FracAPositive float64
	// BinShare is the fraction of samples in each HT/LT bin (Fig 6b).
	BinShare map[HTLTBin]float64
	// BinDiff summarizes A−B within each bin (Figs 6c, 6d).
	BinDiff map[HTLTBin]stats.Summary
	// BinFracAPositive is the A-wins share within each bin.
	BinFracAPositive map[HTLTBin]float64
}

// OperatorDiversity regenerates Fig 6.
type OperatorDiversity struct {
	// ByPair[pair][dir].
	ByPair map[OperatorPair]map[radio.Direction]PairDiff
}

// concurrencyWindow is the maximum skew between two samples counted as
// concurrent. The campaign runs the three phones' rotations in lock-step,
// so matched samples are nominally simultaneous.
const concurrencyWindow = 250 * time.Millisecond

// FigureOperatorDiversity computes Fig 6 from concurrent sample pairs.
func FigureOperatorDiversity(db *dataset.DB) OperatorDiversity {
	out := OperatorDiversity{ByPair: map[OperatorPair]map[radio.Direction]PairDiff{}}

	// Index samples by (op, dir) sorted by time. The merge already sorts
	// the throughput table by time.
	idx := map[opDir][]dataset.ThroughputSample{}
	for _, s := range db.Throughput {
		if s.Static {
			continue
		}
		k := opDir{s.Op, s.Dir}
		idx[k] = append(idx[k], s)
	}

	for _, pair := range Pairs() {
		out.ByPair[pair] = map[radio.Direction]PairDiff{}
		for _, dir := range radio.Directions() {
			as := idx[opDir{pair.A, dir}]
			bs := idx[opDir{pair.B, dir}]
			pd := PairDiff{
				BinShare:         map[HTLTBin]float64{},
				BinDiff:          map[HTLTBin]stats.Summary{},
				BinFracAPositive: map[HTLTBin]float64{},
			}
			var diffs []float64
			binVals := map[HTLTBin][]float64{}
			j := 0
			for _, a := range as {
				// advance j to the first b not far before a
				for j < len(bs) && bs[j].Time.Before(a.Time.Add(-concurrencyWindow)) {
					j++
				}
				if j >= len(bs) {
					break
				}
				b := bs[j]
				skew := b.Time.Sub(a.Time)
				if skew < 0 {
					skew = -skew
				}
				if skew > concurrencyWindow {
					continue
				}
				d := a.Mbps - b.Mbps
				diffs = append(diffs, d)
				bin := binOfPair(a.Tech, b.Tech)
				binVals[bin] = append(binVals[bin], d)
			}
			pd.N = len(diffs)
			pd.Diff = summarizeOrZero(diffs)
			pd.FracAPositive = fracPositive(diffs)
			for bin, vals := range binVals {
				pd.BinShare[bin] = float64(len(vals)) / float64(len(diffs))
				pd.BinDiff[bin] = summarizeOrZero(vals)
				pd.BinFracAPositive[bin] = fracPositive(vals)
			}
			out.ByPair[pair][dir] = pd
		}
	}
	return out
}

func fracPositive(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, x := range xs {
		if x > 0 {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// Render formats Fig 6.
func (r OperatorDiversity) Render() string {
	header := []string{"pair", "dir", "n", "diff med", "diff p10", "diff p90", "A wins"}
	var rows [][]string
	for _, pair := range Pairs() {
		for _, dir := range radio.Directions() {
			pd := r.ByPair[pair][dir]
			rows = append(rows, []string{
				pair.String(), dir.String(), fmt.Sprintf("%d", pd.N),
				f1(pd.Diff.Median), f1(pd.Diff.P25), f1(pd.Diff.P90), pct(pd.FracAPositive),
			})
		}
	}
	s := renderTable("Figure 6a: concurrent throughput difference (A−B, Mbps)", header, rows)

	rows = rows[:0]
	for _, pair := range Pairs() {
		for _, dir := range radio.Directions() {
			pd := r.ByPair[pair][dir]
			rows = append(rows, []string{
				pair.String(), dir.String(),
				pct(pd.BinShare[HTHT]), pct(pd.BinShare[HTLT]),
				pct(pd.BinShare[LTHT]), pct(pd.BinShare[LTLT]),
			})
		}
	}
	s += renderTable("Figure 6b: HT/LT bin shares",
		[]string{"pair", "dir", "HT-HT", "HT-LT", "LT-HT", "LT-LT"}, rows)

	rows = rows[:0]
	for _, pair := range Pairs() {
		for _, dir := range radio.Directions() {
			pd := r.ByPair[pair][dir]
			rows = append(rows, []string{
				pair.String(), dir.String(),
				f1(pd.BinDiff[LTLT].Median), pct(pd.BinFracAPositive[LTLT]),
				f1(pd.BinDiff[HTHT].Median), pct(pd.BinFracAPositive[HTHT]),
				pct(pd.BinFracAPositive[HTLT]), pct(pd.BinFracAPositive[LTHT]),
			})
		}
	}
	s += renderTable("Figures 6c/6d: per-bin differences",
		[]string{"pair", "dir", "LT-LT med", "LT-LT A-wins", "HT-HT med", "HT-HT A-wins", "HT-LT A-wins", "LT-HT A-wins"}, rows)
	return s
}
