package core

import (
	"testing"
	"time"

	"github.com/nuwins/cellwheels/internal/dataset"
	"github.com/nuwins/cellwheels/internal/radio"
	"github.com/nuwins/cellwheels/internal/unit"
)

// quickConfig is a small campaign used across the core tests: ~120 km of
// driving with shortened app tests, all subsystems on.
func quickConfig(seed int64) Config {
	return Config{
		Seed:           seed,
		Limit:          120 * unit.Kilometer,
		VideoDuration:  40 * time.Second,
		GamingDuration: 30 * time.Second,
	}
}

// sharedDB runs one quick campaign and caches it for all core tests.
var sharedDB *dataset.DB

func quickDB(t *testing.T) *dataset.DB {
	t.Helper()
	if sharedDB != nil {
		return sharedDB
	}
	db, err := NewCampaign(quickConfig(7)).RunAndMerge()
	if err != nil {
		t.Fatal(err)
	}
	sharedDB = db
	return db
}

func TestCampaignProducesAllRecordKinds(t *testing.T) {
	db := quickDB(t)
	if len(db.Tests) == 0 {
		t.Fatal("no tests")
	}
	if len(db.Throughput) == 0 {
		t.Error("no throughput samples")
	}
	if len(db.RTT) == 0 {
		t.Error("no RTT samples")
	}
	if len(db.AppRuns) == 0 {
		t.Error("no app runs")
	}
	if len(db.Passive) == 0 {
		t.Error("no passive coverage rows")
	}
	if len(db.Handovers) == 0 {
		t.Error("no handovers")
	}
}

func TestCampaignCoversAllKindsAndOperators(t *testing.T) {
	db := quickDB(t)
	kinds := map[dataset.TestKind]bool{}
	ops := map[radio.Operator]bool{}
	for _, test := range db.Tests {
		kinds[test.Kind] = true
		ops[test.Op] = true
	}
	for _, k := range dataset.Kinds() {
		if !kinds[k] {
			t.Errorf("kind %v never ran", k)
		}
	}
	for _, op := range radio.Operators() {
		if !ops[op] {
			t.Errorf("operator %v never tested", op)
		}
	}
}

func TestCampaignStaticBaselinesExist(t *testing.T) {
	db := quickDB(t)
	// 120 km from LA reaches only LA itself, but that is one city's
	// static battery.
	statics := db.TestsWhere(func(tt dataset.Test) bool { return tt.Static })
	if len(statics) == 0 {
		t.Fatal("no static baselines ran")
	}
	for _, tt := range statics {
		if tt.Miles() > 0.01 {
			t.Errorf("static test %d moved %v miles", tt.ID, tt.Miles())
		}
	}
}

func TestCampaignThroughputSamplesPlausible(t *testing.T) {
	db := quickDB(t)
	for _, s := range db.Throughput {
		if s.Mbps < 0 || s.Mbps > 3500 {
			t.Fatalf("implausible sample %v Mbps", s.Mbps)
		}
		if s.MCS < 0 || s.MCS > radio.MaxMCS {
			t.Fatalf("MCS %d", s.MCS)
		}
		if s.SpeedMPH < 0 || s.SpeedMPH > 95 {
			t.Fatalf("speed %v", s.SpeedMPH)
		}
	}
	// Downlink and uplink both present.
	dl := db.ThroughputWhere(func(s dataset.ThroughputSample) bool { return s.Dir == radio.Downlink })
	ul := db.ThroughputWhere(func(s dataset.ThroughputSample) bool { return s.Dir == radio.Uplink })
	if len(dl) == 0 || len(ul) == 0 {
		t.Errorf("dl=%d ul=%d samples", len(dl), len(ul))
	}
}

func TestCampaignRTTSamplesPlausible(t *testing.T) {
	db := quickDB(t)
	for _, s := range db.RTT {
		if s.Lost {
			continue
		}
		if s.RTTMS <= 0 || s.RTTMS > 3100 {
			t.Fatalf("RTT %v ms", s.RTTMS)
		}
	}
}

func TestCampaignEdgeOnlyVerizon(t *testing.T) {
	db := quickDB(t)
	edgeTests := db.TestsWhere(func(tt dataset.Test) bool { return tt.Edge })
	if len(edgeTests) == 0 {
		t.Fatal("no edge tests near LA (an edge city)")
	}
	for _, tt := range edgeTests {
		if tt.Op != radio.Verizon {
			t.Errorf("edge test on %v", tt.Op)
		}
	}
}

func TestCampaignMetaAccounting(t *testing.T) {
	db := quickDB(t)
	if db.Meta.BytesRx <= 0 || db.Meta.BytesTx <= 0 {
		t.Errorf("byte totals rx=%v tx=%v", db.Meta.BytesRx, db.Meta.BytesTx)
	}
	if db.Meta.BytesRx <= db.Meta.BytesTx {
		t.Error("downlink bytes should dominate (Table 1)")
	}
	for _, op := range radio.Operators() {
		if db.Meta.UniqueCells[op.String()] == 0 {
			t.Errorf("%v: zero unique cells", op)
		}
		if db.Meta.RuntimeByOp[op.String()] <= 0 {
			t.Errorf("%v: zero runtime", op)
		}
	}
}

func TestCampaignAppRunsCarryMetrics(t *testing.T) {
	db := quickDB(t)
	for _, r := range db.AppRuns {
		switch r.Kind {
		case dataset.AppAR:
			if r.MAP < 0 || r.MAP > 38.45 {
				t.Errorf("AR mAP %v", r.MAP)
			}
		case dataset.AppVideo:
			if r.RebufferFrac < 0 || r.RebufferFrac > 1 {
				t.Errorf("video rebuffer %v", r.RebufferFrac)
			}
		case dataset.AppGaming:
			if r.SendBitrate < 0 || r.SendBitrate > 100.01 {
				t.Errorf("gaming bitrate %v", r.SendBitrate)
			}
		}
		if r.HighSpeedFrac < 0 || r.HighSpeedFrac > 1 {
			t.Errorf("high-speed frac %v", r.HighSpeedFrac)
		}
	}
}

func TestCampaignDeterministic(t *testing.T) {
	cfg := Config{Seed: 11, Limit: 30 * unit.Kilometer, SkipApps: true, SkipStatic: true}
	a, err := NewCampaign(cfg).RunAndMerge()
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewCampaign(cfg).RunAndMerge()
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("summaries differ: %v vs %v", a, b)
	}
	if len(a.Throughput) != len(b.Throughput) {
		t.Fatal("sample counts differ")
	}
	for i := range a.Throughput {
		if a.Throughput[i] != b.Throughput[i] {
			t.Fatalf("sample %d differs", i)
		}
	}
}

func TestCampaignSeedsDiffer(t *testing.T) {
	cfg1 := Config{Seed: 1, Limit: 20 * unit.Kilometer, SkipApps: true, SkipStatic: true, SkipPassive: true}
	cfg2 := cfg1
	cfg2.Seed = 2
	a, err := NewCampaign(cfg1).RunAndMerge()
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewCampaign(cfg2).RunAndMerge()
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Throughput) > 0 && len(b.Throughput) > 0 &&
		len(a.Throughput) == len(b.Throughput) {
		same := true
		for i := range a.Throughput {
			if a.Throughput[i].Mbps != b.Throughput[i].Mbps {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical throughput traces")
		}
	}
}

func TestCampaignSkipFlags(t *testing.T) {
	cfg := Config{Seed: 3, Limit: 20 * unit.Kilometer, SkipApps: true, SkipStatic: true, SkipPassive: true}
	db, err := NewCampaign(cfg).RunAndMerge()
	if err != nil {
		t.Fatal(err)
	}
	if len(db.Passive) != 0 {
		t.Error("passive rows despite SkipPassive")
	}
	if n := len(db.AppRunsWhere(func(r dataset.AppRun) bool { return true })); n != 0 {
		t.Errorf("%d app runs despite SkipApps", n)
	}
	if n := len(db.TestsWhere(func(tt dataset.Test) bool { return tt.Static })); n != 0 {
		t.Errorf("%d static tests despite SkipStatic", n)
	}
}

func TestCampaignDisableEdge(t *testing.T) {
	cfg := Config{Seed: 4, Limit: 20 * unit.Kilometer, SkipApps: true, SkipStatic: true, SkipPassive: true, DisableEdge: true}
	db, err := NewCampaign(cfg).RunAndMerge()
	if err != nil {
		t.Fatal(err)
	}
	for _, tt := range db.Tests {
		if tt.Edge {
			t.Fatalf("edge test %d despite DisableEdge", tt.ID)
		}
	}
}

func TestCampaignTimesOrderedWithinTests(t *testing.T) {
	db := quickDB(t)
	for _, tt := range db.Tests {
		if tt.End.Before(tt.Start) {
			t.Errorf("test %d ends before it starts", tt.ID)
		}
	}
	for _, s := range db.Throughput {
		tt := db.TestByID(s.TestID)
		if tt == nil {
			t.Fatal("sample with unknown test")
		}
		if s.Time.Before(tt.Start.Add(-time.Second)) || s.Time.After(tt.End.Add(time.Second)) {
			t.Errorf("sample at %v outside test %d window [%v, %v]", s.Time, tt.ID, tt.Start, tt.End)
		}
	}
}
