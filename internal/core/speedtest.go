package core

import (
	"time"

	"github.com/nuwins/cellwheels/internal/dataset"
	"github.com/nuwins/cellwheels/internal/radio"
	"github.com/nuwins/cellwheels/internal/simrand"
	"github.com/nuwins/cellwheels/internal/speedtest"
)

// OoklaMeasured is Table 3 with the crowdsourced column *measured* by the
// speedtest simulation instead of copied from the published report —
// both columns produced by the same substrates, removing the paper's
// "take it with a grain of salt" caveats about methodology mismatch.
type OoklaMeasured struct {
	// Driving holds the campaign's per-test medians, as in Table 3.
	Driving map[radio.Operator]OoklaRow
	// Crowd holds the simulated static crowd (DL, UL, RTT medians).
	Crowd map[radio.Operator]speedtest.Summary
}

// MeasureSpeedtestCrowd produces the crowd column of the measured Table 3.
// With a crowd registry enabled it summarizes the results the measuring
// crowd UEs produced *during* Run — real concurrent flows against the
// registry's own demand — so Run must have been called first. Without a
// registry it falls back to the legacy post-hoc sampling over the
// deployments, where samples caps the per-operator draw count.
func (c *Campaign) MeasureSpeedtestCrowd(samples int) map[radio.Operator]speedtest.Summary {
	if c.cfg.crowdEnabled() {
		out := map[radio.Operator]speedtest.Summary{}
		for _, l := range c.lanes {
			out[l.op] = speedtest.Summarize(l.crowdResults)
		}
		return out
	}
	cfg := speedtest.DefaultConfig()
	if samples > 0 {
		cfg.Samples = samples
	}
	cfg.TestDuration = 8 * time.Second
	out := map[radio.Operator]speedtest.Summary{}
	rng := simrand.New(c.cfg.Seed).Fork("speedtest-crowd")
	for op, m := range c.maps {
		out[op] = speedtest.Summarize(speedtest.Crowd(c.route, m, cfg, rng))
	}
	return out
}

// CrowdResults exposes the raw per-operator results the measuring crowd
// collected during Run; empty maps mean no crowd (or Run not yet called).
func (c *Campaign) CrowdResults() map[radio.Operator][]speedtest.Result {
	out := map[radio.Operator][]speedtest.Result{}
	for _, l := range c.lanes {
		if len(l.crowdResults) > 0 {
			out[l.op] = l.crowdResults
		}
	}
	return out
}

// TableOoklaMeasured combines the campaign's driving medians with the
// measured crowd.
func TableOoklaMeasured(db *dataset.DB, crowd map[radio.Operator]speedtest.Summary) OoklaMeasured {
	base := TableOoklaComparison(db)
	return OoklaMeasured{Driving: base.Rows, Crowd: crowd}
}

// Render formats the measured Table 3.
func (r OoklaMeasured) Render() string {
	header := []string{"operator", "drive DL", "crowd DL", "drive UL", "crowd UL", "drive RTT", "crowd RTT"}
	var rows [][]string
	for _, op := range radio.Operators() {
		d := r.Driving[op]
		c := r.Crowd[op]
		rows = append(rows, []string{
			op.String(),
			f2(d.OurDL), f2(c.DL.Median),
			f2(d.OurUL), f2(c.UL.Median),
			f2(d.OurRTT), f2(c.RTT.Median),
		})
	}
	return renderTable("Table 3 (measured variant): driving vs simulated static crowd", header, rows)
}
