package core

import (
	"fmt"
	"sort"
	"strings"
	"text/tabwriter"

	"github.com/nuwins/cellwheels/internal/radio"
	"github.com/nuwins/cellwheels/internal/stats"
)

// Analysis functions in this file and its siblings each regenerate one
// table or figure of the paper from a consolidated dataset. Every result
// type has a Render method producing the textual equivalent of the
// paper's plot — the rows/series a reader would compare against the
// published figure.

// renderTable lays out rows with aligned columns.
func renderTable(title string, header []string, rows [][]string) string {
	var b strings.Builder
	b.WriteString(title)
	b.WriteString("\n")
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, strings.Join(header, "\t"))
	for _, r := range rows {
		fmt.Fprintln(w, strings.Join(r, "\t"))
	}
	w.Flush() //lint:allow uncheckederr — tabwriter over a strings.Builder cannot fail
	return b.String()
}

func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func pct(v float64) string { return fmt.Sprintf("%.0f%%", 100*v) }

// summarizeOrZero wraps stats.Summarize, returning a zero Summary for
// empty inputs so render code stays simple.
func summarizeOrZero(xs []float64) stats.Summary {
	s, err := stats.Summarize(xs)
	if err != nil {
		return stats.Summary{}
	}
	return s
}

// sortedTestIDs returns the keys of a per-test sample map in ascending
// ID order, so aggregation walks tests deterministically instead of in
// randomized map order.
func sortedTestIDs(m map[int][]float64) []int {
	ids := make([]int, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// techLetter is the single-character code used in coverage strips.
func techLetter(t radio.Technology) byte {
	switch t {
	case radio.LTE:
		return 'L'
	case radio.LTEA:
		return 'A'
	case radio.NRLow:
		return 'l'
	case radio.NRMid:
		return 'm'
	case radio.NRMmWave:
		return 'W'
	default:
		return '.'
	}
}

// opDir is a common (operator, direction) key.
type opDir struct {
	Op  radio.Operator
	Dir radio.Direction
}
