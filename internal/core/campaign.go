// Package core is the paper's primary contribution in executable form:
// the drive-test measurement campaign (§3's methodology — three carriers
// measured simultaneously through a round-robin of throughput, RTT, and
// application tests, with XCAL-style cross-layer logging, passive
// handover-logger phones, per-city static baselines, and edge/cloud server
// selection) and the full analysis suite that regenerates every table and
// figure of the evaluation.
//
// The engine is split into two layers, mirroring the physical testbed:
// a shared geo.Timeline — the deterministic drive schedule, including the
// fixed-budget static hold windows — and one lane per operator, each
// owning a phone, an XCAL recorder, a passive handover logger, and its
// deployment map. Lanes replay the timeline independently, so they run
// concurrently; outputs are merged in fixed operator order, which makes
// the result byte-identical for every worker count.
package core

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"github.com/nuwins/cellwheels/internal/apps/offload"
	"github.com/nuwins/cellwheels/internal/cloud"
	"github.com/nuwins/cellwheels/internal/dataset"
	"github.com/nuwins/cellwheels/internal/deploy"
	"github.com/nuwins/cellwheels/internal/geo"
	"github.com/nuwins/cellwheels/internal/logsync"
	"github.com/nuwins/cellwheels/internal/obs"
	"github.com/nuwins/cellwheels/internal/radio"
	"github.com/nuwins/cellwheels/internal/ran"
	"github.com/nuwins/cellwheels/internal/simrand"
	"github.com/nuwins/cellwheels/internal/speedtest"
	"github.com/nuwins/cellwheels/internal/transport"
	"github.com/nuwins/cellwheels/internal/ue"
	"github.com/nuwins/cellwheels/internal/unit"
	"github.com/nuwins/cellwheels/internal/xcal"
)

// Tick is the simulation step.
const Tick = 50 * time.Millisecond

// staticCityRadius is how close to a city center the vehicle must be to
// trigger that city's static baseline battery.
const staticCityRadius = 8 * unit.Kilometer

// staticSearchWindow is how far around the stop a static battery counts
// deployed technologies — the testers sought out the best site in the
// city, not the best site at the parking spot (§5.1).
const staticSearchWindow = 12 * unit.Kilometer

// Config parameterizes a campaign. The zero value (plus a seed) runs the
// paper's full methodology over the full route.
type Config struct {
	Seed  int64
	Drive geo.DriveConfig

	// Limit truncates the trip after this driven distance. Zero means
	// the full route. Tests and benches use small limits.
	Limit unit.Meters

	// Workers caps how many operator lanes are simulated concurrently.
	// Zero means GOMAXPROCS; values above the operator count are clamped.
	// Every value produces byte-identical output: lanes are individually
	// deterministic and their logs are merged in fixed operator order.
	Workers int

	// Durations of the individual tests; zero values take the paper's.
	ThroughputDuration time.Duration // 30 s (§5)
	RTTDuration        time.Duration // 20 s (§5)
	VideoDuration      time.Duration // 3 min (§D.1)
	GamingDuration     time.Duration // 90 s
	TestGap            time.Duration // idle gap between tests

	// Apps disables the four application workloads when false is
	// requested via SkipApps (kept inverted so the zero value runs all).
	SkipApps bool
	// SkipStatic disables the per-city static baselines.
	SkipStatic bool
	// SkipPassive disables the handover-logger phones.
	SkipPassive bool
	// DisableEdge removes the Wavelength servers (ablation).
	DisableEdge bool
	// DisablePolicy makes the elevation policy always pick the best
	// available technology regardless of traffic (ablation for the
	// passive-vs-active coverage finding).
	DisablePolicy bool

	// Transport tunes the TCP path model (bufferbloat ablation).
	Transport transport.Options

	// CrowdSize attaches this many background UEs per operator — the
	// metro-scale crowd (internal/ue). Zero runs the classic six-handset
	// campaign with no registry at all.
	CrowdSize int
	// CrowdSamples is how many of the crowd's UEs run speedtest
	// measurements during the campaign (Table 3's measured column). Zero
	// defaults to 120 when a crowd is enabled.
	CrowdSamples int
	// LoadModel selects the sector-load backend the handsets see:
	// LoadModelStandin (or empty) keeps the per-UE OU stand-in,
	// byte-identical to the historical campaign; LoadModelDemand couples
	// the handsets to the crowd registry's per-cell aggregate demand.
	// The crowd's own measurement flows always measure against the
	// registry, whatever the handsets use.
	LoadModel string

	// Operators to measure; nil means all three.
	Operators []radio.Operator

	// Obs is the observability side channel: lanes count ticks into it,
	// phases time themselves against it, and logsync records merge stats.
	// It is strictly write-only from the engine's point of view — nothing
	// read from it ever feeds a simulation decision — so a nil value (the
	// default) and any non-nil value produce byte-identical datasets.
	Obs *obs.Recorder

	// SharedTimeline, when non-nil, is a drive schedule precomputed by
	// PrecomputeTimeline for an identical config; NewCampaign replays it
	// instead of building its own. Timeline replay is stateless — every
	// cursor forks the same named stream — so any number of concurrent
	// campaigns can share one, and because simrand forks are positional
	// (path-named, never draw-ordered) the shared schedule is
	// byte-identical to a freshly built one. Callers are responsible for
	// matching configs; the cellwheels facade enforces it by fingerprint.
	SharedTimeline *geo.Timeline
}

func (c *Config) applyDefaults() {
	if c.ThroughputDuration <= 0 {
		c.ThroughputDuration = 30 * time.Second
	}
	if c.RTTDuration <= 0 {
		c.RTTDuration = 20 * time.Second
	}
	if c.VideoDuration <= 0 {
		c.VideoDuration = 3 * time.Minute
	}
	if c.GamingDuration <= 0 {
		c.GamingDuration = 90 * time.Second
	}
	if c.TestGap <= 0 {
		c.TestGap = 5 * time.Second
	}
	if len(c.Operators) == 0 {
		c.Operators = radio.Operators()
	}
	if c.CrowdSize > 0 && c.CrowdSamples == 0 {
		c.CrowdSamples = 120
	}
}

// Load model backends for Config.LoadModel.
const (
	LoadModelStandin = "standin"
	LoadModelDemand  = "demand"
)

// crowdEnabled reports whether the campaign builds per-lane registries:
// either a crowd population was requested or the demand backend is on
// (an empty registry still answers CellLoad with the base load).
func (c Config) crowdEnabled() bool {
	return c.CrowdSize > 0 || c.LoadModel == LoadModelDemand
}

// testSpec is one rotation slot.
type testSpec struct {
	kind       dataset.TestKind
	compressed bool // AR/CAV compression variant
}

// rotation builds the round-robin schedule of §3.
func (c Config) rotation() []testSpec {
	specs := []testSpec{
		{kind: dataset.ThroughputDL},
		{kind: dataset.ThroughputUL},
		{kind: dataset.RTTTest},
	}
	if !c.SkipApps {
		specs = append(specs,
			testSpec{kind: dataset.AppAR, compressed: true},
			testSpec{kind: dataset.AppAR, compressed: false},
			testSpec{kind: dataset.AppCAV, compressed: true},
			testSpec{kind: dataset.AppCAV, compressed: false},
			testSpec{kind: dataset.AppVideo},
			testSpec{kind: dataset.AppGaming},
		)
	}
	return specs
}

func (c Config) testDuration(k dataset.TestKind) time.Duration {
	switch k {
	case dataset.ThroughputDL, dataset.ThroughputUL:
		return c.ThroughputDuration
	case dataset.RTTTest:
		return c.RTTDuration
	case dataset.AppVideo:
		return c.VideoDuration
	case dataset.AppGaming:
		return c.GamingDuration
	default:
		return offload.ARConfig().RunDuration
	}
}

// staticHoldBudget is the fixed wall-clock length of one per-city static
// battery: exactly one full rotation — a gap plus a test per slot — in
// whole ticks. Deriving the budget from the configured durations alone
// keeps the shared timeline independent of any phone's runtime progress,
// which is what lets lanes replay it without waiting for each other.
func (c Config) staticHoldBudget() time.Duration {
	var ticks int64
	for _, s := range c.rotation() {
		ticks += ceilTicks(c.TestGap) + ceilTicks(c.testDuration(s.kind))
	}
	return time.Duration(ticks) * Tick
}

// ceilTicks converts a duration to whole simulation ticks, rounding up.
func ceilTicks(d time.Duration) int64 {
	return int64((d + Tick - 1) / Tick)
}

// Raw is the campaign's unmerged output: exactly what the instruments
// produced, before logsync reconstructs the database.
type Raw struct {
	Files  []xcal.File
	Apps   []logsync.AppLog
	Logger map[string][]xcal.LoggerRow
	Meta   dataset.Meta
	// PassiveHandovers counts the handover-logger phones' events, which
	// is what Table 1 reports.
	PassiveHandovers map[string]int
}

// Campaign is a configured, runnable measurement campaign.
type Campaign struct {
	cfg      Config
	route    *geo.Route
	maps     map[radio.Operator]*deploy.Map
	fleet    []cloud.Server
	lanes    []*lane
	timeline *geo.Timeline
}

// PrecomputeTimeline builds the drive schedule NewCampaign would build
// for cfg, without building anything else. The timeline is a pure
// function of (route, drive config, seed, tick, limit, hold rule): its
// cursors fork the "drive" stream positionally off a fresh root, so a
// timeline precomputed here and injected via Config.SharedTimeline
// replays byte-identically to one built inside NewCampaign. This is the
// cacheable half of campaign construction — wheelsd shares one across
// every concurrent job with the same config hash.
func PrecomputeTimeline(cfg Config) *geo.Timeline {
	cfg.applyDefaults()
	var hold geo.HoldRule
	if !cfg.SkipStatic {
		hold = geo.HoldRule{MaxCityDistance: staticCityRadius, Budget: cfg.staticHoldBudget()}
	}
	return geo.NewTimeline(geo.DefaultRoute(), cfg.Drive, simrand.New(cfg.Seed), geo.TimelineConfig{
		Tick:  Tick,
		Limit: cfg.Limit,
		Hold:  hold,
	})
}

// NewCampaign builds the testbed for a config.
func NewCampaign(cfg Config) *Campaign {
	cfg.applyDefaults()
	route := geo.DefaultRoute()
	rng := simrand.New(cfg.Seed)

	fleet := cloud.Fleet()
	if cfg.DisableEdge {
		var clouds []cloud.Server
		for _, s := range fleet {
			if s.Kind == cloud.Cloud {
				clouds = append(clouds, s)
			}
		}
		fleet = clouds
	}

	timeline := cfg.SharedTimeline
	if timeline == nil {
		timeline = PrecomputeTimeline(cfg)
	}

	c := &Campaign{
		cfg:      cfg,
		route:    route,
		maps:     map[radio.Operator]*deploy.Map{},
		fleet:    fleet,
		timeline: timeline,
	}
	for _, op := range cfg.Operators {
		m := deploy.NewMap(op, route, rng)
		c.maps[op] = m

		// The crowd registry and the demand-driven load backend. Each
		// lane owns its registry, so worker-count byte-identity needs no
		// cross-lane coordination; its seed is derived positionally from
		// (campaign seed, operator), RunSeed-style.
		var reg *ue.Registry
		var backend ran.LoadBackend
		if cfg.crowdEnabled() {
			span := route.Total()
			if cfg.Limit > 0 && cfg.Limit < span {
				span = cfg.Limit
			}
			reg = ue.NewRegistry(ue.Config{
				Op:           op,
				Map:          m,
				Route:        route,
				Size:         cfg.CrowdSize,
				Span:         span,
				Seed:         crowdSeed(cfg.Seed, op),
				Tick:         Tick,
				HorizonTicks: int64(c.timeline.Ticks()),
				MeasureSlots: cfg.CrowdSamples,
				MeasureTicks: crowdMeasureTicks(crowdSpeedtestConfig()),
				MeasureUnits: crowdMeasureUnits,
				Obs:          cfg.Obs,
			})
			if cfg.LoadModel == LoadModelDemand {
				backend = reg
			}
		}

		p := &phone{
			op:    op,
			ue:    ran.NewUE(ran.UEConfig{Op: op, Map: m, ForceBest: cfg.DisablePolicy, Load: backend}, rng.Fork("active")),
			rec:   xcal.NewRecorder(op),
			rng:   rng.Fork("phone/" + op.Short()),
			fleet: fleet,
			specs: cfg.rotation(),
		}
		p.gapLeft = cfg.TestGap
		var logger *xcal.HandoverLogger
		if !cfg.SkipPassive {
			logger = xcal.NewHandoverLogger(ran.UEConfig{Op: op, Map: m, ForceBest: cfg.DisablePolicy, Load: backend}, rng)
		}
		l := &lane{
			cfg:    &c.cfg,
			op:     op,
			phone:  p,
			logger: logger,
			m:      m,
			reg:    reg,
			// Nil-safe when observability is off: a nil Recorder hands out
			// nil counters/gauges whose methods are no-ops.
			obsTicks: cfg.Obs.Counter("lane/" + op.Short() + "/ticks"),
			obsOdoKm: cfg.Obs.Gauge("lane/" + op.Short() + "/odometer_km"),
		}
		if reg != nil {
			// Measuring crowd UEs run their flows inline at event time,
			// against the registry's own demand aggregates — Table 3's
			// measured column from actual concurrent flows. Results
			// accumulate per lane in deterministic event order.
			measSrc := rng.Fork("crowd-measure/" + op.Short())
			stCfg := crowdSpeedtestConfig()
			reg.OnMeasure = func(slot int, odo unit.Meters, now time.Time) {
				res := speedtest.MeasureAt(route, m, stCfg, odo, now, measSrc.Fork(fmt.Sprintf("slot=%d", slot)), reg)
				l.crowdResults = append(l.crowdResults, res)
			}
		}
		c.lanes = append(c.lanes, l)
	}
	return c
}

// crowdSeed derives one lane's registry seed positionally from the
// campaign seed — the same named-fork derivation fleet.RunSeed uses for
// replicate seeds, so registry identity is a pure function of
// (seed, operator), independent of lane construction or run order.
func crowdSeed(master int64, op radio.Operator) int64 {
	return simrand.New(master).Fork("crowd").Fork("op=" + op.Short()).Int63()
}

// crowdSpeedtestConfig is the measuring crowd's flow configuration —
// the same shape MeasureSpeedtestCrowd's post-hoc sampling uses.
func crowdSpeedtestConfig() speedtest.Config {
	cfg := speedtest.DefaultConfig()
	cfg.TestDuration = 8 * time.Second
	return cfg
}

// crowdMeasureTicks is how long one crowd measurement occupies its cell:
// the DL and UL transfers plus the 3 s ping burst, in whole ticks.
func crowdMeasureTicks(cfg speedtest.Config) int64 {
	return 2*ceilTicks(cfg.TestDuration) + ceilTicks(3*time.Second)
}

// crowdMeasureUnits is the demand one running measurement adds to its
// serving cell — a backlogged multi-flow test, heavier than a typical
// session (4..28 units).
const crowdMeasureUnits = 30

// Run executes the campaign and returns the raw logs. Lanes replay the
// shared timeline on up to Config.Workers goroutines; the raw logs are
// collected in fixed operator order, so the output does not depend on
// scheduling.
func (c *Campaign) Run() Raw {
	workers := c.cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(c.lanes) {
		workers = len(c.lanes)
	}
	if workers < 1 {
		workers = 1
	}

	rec := c.cfg.Obs
	defer rec.StartPhase("run")()
	rec.Gauge("route/total_km").Set(c.timeline.Final().Odometer.Km())
	rec.Counter("ticks/per_lane").Add(int64(c.timeline.Ticks()))
	lanes := make([]string, len(c.lanes))
	for i, l := range c.lanes {
		lanes[i] = l.op.Short()
	}
	stopProgress := rec.StartProgress(obs.ProgressInfo{
		TotalTicks: int64(c.timeline.Ticks()),
		TotalKm:    c.timeline.Final().Odometer.Km(),
		Lanes:      lanes,
		Crowd:      c.cfg.crowdEnabled(),
	})
	defer stopProgress()

	jobs := make(chan *lane)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for l := range jobs {
				stopLane := rec.StartPhase("lane/" + l.op.Short())
				l.run(c.timeline.Cursor())
				stopLane()
			}
		}()
	}
	for _, l := range c.lanes {
		jobs <- l
	}
	close(jobs)
	wg.Wait()

	return c.collect()
}

// collect gathers the raw outputs and meta accounting, iterating lanes in
// their fixed construction (operator) order.
func (c *Campaign) collect() Raw {
	final := c.timeline.Final()
	raw := Raw{
		Logger:           map[string][]xcal.LoggerRow{},
		PassiveHandovers: map[string]int{},
		Meta: dataset.Meta{
			Seed:          c.cfg.Seed,
			RouteKm:       final.Odometer.Km(),
			Days:          final.Day + 1,
			Start:         c.cfg.Drive.StartUTC,
			RuntimeByOp:   map[string]time.Duration{},
			UniqueCells:   map[string]int{},
			HandoverTotal: map[string]int{},
		},
	}
	rec := c.cfg.Obs
	for _, l := range c.lanes {
		p := l.phone
		raw.Files = append(raw.Files, p.files...)
		raw.Apps = append(raw.Apps, p.apps...)
		raw.Meta.BytesRx += p.bytesRx
		raw.Meta.BytesTx += p.bytesTx
		raw.Meta.RuntimeByOp[p.op.String()] = p.testTime
		raw.Meta.UniqueCells[p.op.String()] = p.ue.UniqueCells()
		rec.Counter("lane/" + l.op.Short() + "/files").Add(int64(len(p.files)))
		rec.Counter("lane/" + l.op.Short() + "/handovers").Add(int64(p.ue.HandoverCount()))
		rec.Counter("bytes/rx").Add(int64(p.bytesRx))
		rec.Counter("bytes/tx").Add(int64(p.bytesTx))
	}
	for _, l := range c.lanes {
		if l.logger == nil {
			continue
		}
		raw.Logger[l.op.Short()] = l.logger.Rows()
		raw.PassiveHandovers[l.op.String()] = len(l.logger.UE.Handovers())
		raw.Meta.HandoverTotal[l.op.String()] = len(l.logger.UE.Handovers())
		rec.Counter("lane/" + l.op.Short() + "/passive_handovers").Add(int64(len(l.logger.UE.Handovers())))
	}
	return raw
}

// Merge reconstructs the consolidated database from raw logs.
func (c *Campaign) Merge(raw Raw) (*dataset.DB, logsync.Report, error) {
	return logsync.Merge(logsync.Input{
		Route:  c.route,
		Files:  raw.Files,
		Apps:   raw.Apps,
		Logger: raw.Logger,
		Meta:   raw.Meta,
		Obs:    c.cfg.Obs,
	})
}

// RunAndMerge is the common path: execute and consolidate.
func (c *Campaign) RunAndMerge() (*dataset.DB, error) {
	raw := c.Run()
	db, rep, err := c.Merge(raw)
	if err != nil {
		return nil, err
	}
	if len(rep.UnmatchedFiles) > 0 {
		return nil, fmt.Errorf("core: %d XCAL files unmatched after sync: %v", len(rep.UnmatchedFiles), rep.UnmatchedFiles[:min(3, len(rep.UnmatchedFiles))])
	}
	return db, nil
}

// Timeline exposes the campaign's precomputed drive schedule.
func (c *Campaign) Timeline() *geo.Timeline { return c.timeline }

// Maps exposes the generated deployments (for examples and coverage
// analysis that needs ground truth).
func (c *Campaign) Maps() map[radio.Operator]*deploy.Map { return c.maps }

// Route exposes the campaign route.
func (c *Campaign) Route() *geo.Route { return c.route }
