// Package core is the paper's primary contribution in executable form:
// the drive-test measurement campaign (§3's methodology — three carriers
// measured simultaneously through a round-robin of throughput, RTT, and
// application tests, with XCAL-style cross-layer logging, passive
// handover-logger phones, per-city static baselines, and edge/cloud server
// selection) and the full analysis suite that regenerates every table and
// figure of the evaluation.
package core

import (
	"fmt"
	"time"

	"github.com/nuwins/cellwheels/internal/apps/gaming"
	"github.com/nuwins/cellwheels/internal/apps/offload"
	"github.com/nuwins/cellwheels/internal/apps/video"
	"github.com/nuwins/cellwheels/internal/cloud"
	"github.com/nuwins/cellwheels/internal/dataset"
	"github.com/nuwins/cellwheels/internal/deploy"
	"github.com/nuwins/cellwheels/internal/geo"
	"github.com/nuwins/cellwheels/internal/logsync"
	"github.com/nuwins/cellwheels/internal/radio"
	"github.com/nuwins/cellwheels/internal/ran"
	"github.com/nuwins/cellwheels/internal/simrand"
	"github.com/nuwins/cellwheels/internal/transport"
	"github.com/nuwins/cellwheels/internal/unit"
	"github.com/nuwins/cellwheels/internal/xcal"
)

// Tick is the simulation step.
const Tick = 50 * time.Millisecond

// Config parameterizes a campaign. The zero value (plus a seed) runs the
// paper's full methodology over the full route.
type Config struct {
	Seed  int64
	Drive geo.DriveConfig

	// Limit truncates the trip after this driven distance. Zero means
	// the full route. Tests and benches use small limits.
	Limit unit.Meters

	// Durations of the individual tests; zero values take the paper's.
	ThroughputDuration time.Duration // 30 s (§5)
	RTTDuration        time.Duration // 20 s (§5)
	VideoDuration      time.Duration // 3 min (§D.1)
	GamingDuration     time.Duration // 90 s
	TestGap            time.Duration // idle gap between tests

	// Apps disables the four application workloads when false is
	// requested via SkipApps (kept inverted so the zero value runs all).
	SkipApps bool
	// SkipStatic disables the per-city static baselines.
	SkipStatic bool
	// SkipPassive disables the handover-logger phones.
	SkipPassive bool
	// DisableEdge removes the Wavelength servers (ablation).
	DisableEdge bool
	// DisablePolicy makes the elevation policy always pick the best
	// available technology regardless of traffic (ablation for the
	// passive-vs-active coverage finding).
	DisablePolicy bool

	// Transport tunes the TCP path model (bufferbloat ablation).
	Transport transport.Options

	// Operators to measure; nil means all three.
	Operators []radio.Operator
}

func (c *Config) applyDefaults() {
	if c.ThroughputDuration <= 0 {
		c.ThroughputDuration = 30 * time.Second
	}
	if c.RTTDuration <= 0 {
		c.RTTDuration = 20 * time.Second
	}
	if c.VideoDuration <= 0 {
		c.VideoDuration = 3 * time.Minute
	}
	if c.GamingDuration <= 0 {
		c.GamingDuration = 90 * time.Second
	}
	if c.TestGap <= 0 {
		c.TestGap = 5 * time.Second
	}
	if len(c.Operators) == 0 {
		c.Operators = radio.Operators()
	}
}

// testSpec is one rotation slot.
type testSpec struct {
	kind       dataset.TestKind
	compressed bool // AR/CAV compression variant
}

// rotation builds the round-robin schedule of §3.
func (c Config) rotation() []testSpec {
	specs := []testSpec{
		{kind: dataset.ThroughputDL},
		{kind: dataset.ThroughputUL},
		{kind: dataset.RTTTest},
	}
	if !c.SkipApps {
		specs = append(specs,
			testSpec{kind: dataset.AppAR, compressed: true},
			testSpec{kind: dataset.AppAR, compressed: false},
			testSpec{kind: dataset.AppCAV, compressed: true},
			testSpec{kind: dataset.AppCAV, compressed: false},
			testSpec{kind: dataset.AppVideo},
			testSpec{kind: dataset.AppGaming},
		)
	}
	return specs
}

func (c Config) testDuration(k dataset.TestKind) time.Duration {
	switch k {
	case dataset.ThroughputDL, dataset.ThroughputUL:
		return c.ThroughputDuration
	case dataset.RTTTest:
		return c.RTTDuration
	case dataset.AppVideo:
		return c.VideoDuration
	case dataset.AppGaming:
		return c.GamingDuration
	default:
		return offload.ARConfig().RunDuration
	}
}

// phone is one active measurement handset (UE + XCAL Solo + test app).
type phone struct {
	op    radio.Operator
	ue    *ran.UE
	rec   *xcal.Recorder
	rng   *simrand.Source
	fleet []cloud.Server

	// rotation state
	specs   []testSpec
	specIdx int
	gapLeft time.Duration

	// current test state
	inTest    bool
	spec      testSpec
	testLeft  time.Duration
	testStart time.Time
	static    bool
	server    cloud.Server
	appLog    logsync.AppLog

	flow      *transport.Flow
	pinger    *transport.Pinger
	offRun    *offload.Runner
	vidRun    *video.Session
	gameRun   *gaming.Session
	prevApp   unit.Bytes
	hoSeen    int
	testTime  time.Duration // cumulative test runtime (Table 1)
	testsDone int

	files []xcal.File
	apps  []logsync.AppLog

	bytesRx unit.Bytes
	bytesTx unit.Bytes
}

// Raw is the campaign's unmerged output: exactly what the instruments
// produced, before logsync reconstructs the database.
type Raw struct {
	Files  []xcal.File
	Apps   []logsync.AppLog
	Logger map[string][]xcal.LoggerRow
	Meta   dataset.Meta
	// PassiveHandovers counts the handover-logger phones' events, which
	// is what Table 1 reports.
	PassiveHandovers map[string]int
}

// Campaign is a configured, runnable measurement campaign.
type Campaign struct {
	cfg    Config
	route  *geo.Route
	maps   map[radio.Operator]*deploy.Map
	fleet  []cloud.Server
	phones []*phone
	logger map[radio.Operator]*xcal.HandoverLogger
	drive  *geo.Drive
	rng    *simrand.Source
}

// NewCampaign builds the testbed for a config.
func NewCampaign(cfg Config) *Campaign {
	cfg.applyDefaults()
	route := geo.DefaultRoute()
	rng := simrand.New(cfg.Seed)

	fleet := cloud.Fleet()
	if cfg.DisableEdge {
		var clouds []cloud.Server
		for _, s := range fleet {
			if s.Kind == cloud.Cloud {
				clouds = append(clouds, s)
			}
		}
		fleet = clouds
	}

	c := &Campaign{
		cfg:    cfg,
		route:  route,
		maps:   map[radio.Operator]*deploy.Map{},
		fleet:  fleet,
		logger: map[radio.Operator]*xcal.HandoverLogger{},
		drive:  geo.NewDrive(route, cfg.Drive, rng),
		rng:    rng,
	}
	for _, op := range cfg.Operators {
		m := deploy.NewMap(op, route, rng)
		c.maps[op] = m
		p := &phone{
			op:    op,
			ue:    ran.NewUE(ran.UEConfig{Op: op, Map: m, ForceBest: cfg.DisablePolicy}, rng.Fork("active")),
			rec:   xcal.NewRecorder(op),
			rng:   rng.Fork("phone/" + op.Short()),
			fleet: fleet,
			specs: cfg.rotation(),
		}
		p.gapLeft = cfg.TestGap
		c.phones = append(c.phones, p)
		if !cfg.SkipPassive {
			c.logger[op] = xcal.NewHandoverLogger(ran.UEConfig{Op: op, Map: m, ForceBest: cfg.DisablePolicy}, rng)
		}
	}
	return c
}

// Run executes the campaign and returns the raw logs.
func (c *Campaign) Run() Raw {
	staticDone := map[string]bool{}
	limit := c.cfg.Limit
	if limit <= 0 || limit > c.route.Total() {
		limit = c.route.Total()
	}

	for {
		ds := c.drive.Step(Tick)
		c.tickAll(ds)

		// Static baseline battery on first arrival in each major city.
		wp := ds.Waypoint
		if !c.cfg.SkipStatic && wp.Region == geo.Urban && wp.CityDistance < 8*unit.Kilometer && !staticDone[wp.City] {
			staticDone[wp.City] = true
			c.runStaticBattery()
		}

		if ds.Done || ds.Odometer >= limit {
			break
		}
	}
	// Close any files still open at trip end.
	for _, p := range c.phones {
		if p.rec.Recording() {
			p.finishTest(c.drive.State())
		}
	}
	return c.collect()
}

// tickAll advances every phone and passive logger one tick.
func (c *Campaign) tickAll(ds geo.DriveState) {
	for _, p := range c.phones {
		p.tick(c, ds)
	}
	for _, l := range c.logger {
		l.Step(ds.Time, ds.Waypoint, ds.Speed.MPH(), Tick)
	}
}

// runStaticBattery holds the vehicle and runs one full rotation of tests
// marked static, mirroring the paper's per-city baselines. Carriers
// without high-speed 5G at the spot are skipped, as the paper skipped
// operator-city combinations without mmWave/midband connectivity.
func (c *Campaign) runStaticBattery() {
	var active []*phone
	for _, p := range c.phones {
		avail := c.maps[p.op].AvailableWithin(c.drive.State().Odometer, 12*unit.Kilometer)
		if avail.Has(radio.NRMmWave) || avail.Has(radio.NRMid) {
			if p.rec.Recording() {
				p.finishTest(c.drive.State())
			}
			p.static = true
			p.ue.SetStaticMode(true)
			p.specIdx = 0
			p.gapLeft = c.cfg.TestGap
			active = append(active, p)
		}
	}
	if len(active) == 0 {
		return
	}
	// Run until every active phone completes one full rotation, with a
	// generous tick budget as a backstop.
	want := map[*phone]int{}
	for _, p := range active {
		want[p] = p.testsDone + len(p.specs)
	}
	maxTicks := int((2 * time.Hour) / Tick)
	for i := 0; i < maxTicks; i++ {
		ds := c.drive.Hold(Tick)
		c.tickAll(ds)
		done := true
		for _, p := range active {
			if p.testsDone < want[p] {
				done = false
				break
			}
		}
		if done {
			break
		}
	}
	for _, p := range active {
		if p.rec.Recording() {
			p.finishTest(c.drive.State())
		}
		p.static = false
		p.ue.SetStaticMode(false)
	}
}

// collect gathers the raw outputs and meta accounting.
func (c *Campaign) collect() Raw {
	raw := Raw{
		Logger:           map[string][]xcal.LoggerRow{},
		PassiveHandovers: map[string]int{},
		Meta: dataset.Meta{
			Seed:          c.cfg.Seed,
			RouteKm:       c.drive.State().Odometer.Km(),
			Days:          c.drive.State().Day + 1,
			Start:         c.cfg.Drive.StartUTC,
			RuntimeByOp:   map[string]time.Duration{},
			UniqueCells:   map[string]int{},
			HandoverTotal: map[string]int{},
		},
	}
	for _, p := range c.phones {
		raw.Files = append(raw.Files, p.files...)
		raw.Apps = append(raw.Apps, p.apps...)
		raw.Meta.BytesRx += p.bytesRx
		raw.Meta.BytesTx += p.bytesTx
		raw.Meta.RuntimeByOp[p.op.String()] = p.testTime
		raw.Meta.UniqueCells[p.op.String()] = p.ue.UniqueCells()
	}
	for op, l := range c.logger {
		raw.Logger[op.Short()] = l.Rows()
		raw.PassiveHandovers[op.String()] = len(l.UE.Handovers())
		raw.Meta.HandoverTotal[op.String()] = len(l.UE.Handovers())
	}
	return raw
}

// Merge reconstructs the consolidated database from raw logs.
func (c *Campaign) Merge(raw Raw) (*dataset.DB, logsync.Report, error) {
	return logsync.Merge(logsync.Input{
		Route:  c.route,
		Files:  raw.Files,
		Apps:   raw.Apps,
		Logger: raw.Logger,
		Meta:   raw.Meta,
	})
}

// RunAndMerge is the common path: execute and consolidate.
func (c *Campaign) RunAndMerge() (*dataset.DB, error) {
	raw := c.Run()
	db, rep, err := c.Merge(raw)
	if err != nil {
		return nil, err
	}
	if len(rep.UnmatchedFiles) > 0 {
		return nil, fmt.Errorf("core: %d XCAL files unmatched after sync: %v", len(rep.UnmatchedFiles), rep.UnmatchedFiles[:min(3, len(rep.UnmatchedFiles))])
	}
	return db, nil
}

// Maps exposes the generated deployments (for examples and coverage
// analysis that needs ground truth).
func (c *Campaign) Maps() map[radio.Operator]*deploy.Map { return c.maps }

// Route exposes the campaign route.
func (c *Campaign) Route() *geo.Route { return c.route }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
