package core

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/nuwins/cellwheels/internal/dataset"
	"github.com/nuwins/cellwheels/internal/geo"
	"github.com/nuwins/cellwheels/internal/radio"
	"github.com/nuwins/cellwheels/internal/stats"
	"github.com/nuwins/cellwheels/internal/unit"
)

// DatasetStats regenerates Table 1: the campaign's dataset statistics.
type DatasetStats struct {
	RouteKm     float64
	Days        int
	Timezones   int
	Operators   []string
	UniqueCells map[string]int
	Handovers   map[string]int
	BytesRx     unit.Bytes
	BytesTx     unit.Bytes
	Runtime     map[string]time.Duration
	LogRecords  int
}

// TableDatasetStats computes Table 1 from a dataset.
func TableDatasetStats(db *dataset.DB) DatasetStats {
	zones := map[geo.Timezone]bool{}
	for _, s := range db.Throughput {
		zones[s.Timezone] = true
	}
	for _, p := range db.Passive {
		zones[p.Timezone] = true
	}
	var ops []string
	for _, op := range radio.Operators() {
		ops = append(ops, op.String())
	}
	return DatasetStats{
		RouteKm:     db.Meta.RouteKm,
		Days:        db.Meta.Days,
		Timezones:   len(zones),
		Operators:   ops,
		UniqueCells: db.Meta.UniqueCells,
		Handovers:   db.Meta.HandoverTotal,
		BytesRx:     db.Meta.BytesRx,
		BytesTx:     db.Meta.BytesTx,
		Runtime:     db.Meta.RuntimeByOp,
		LogRecords:  len(db.Throughput) + len(db.RTT) + len(db.Handovers) + len(db.Passive),
	}
}

// Render formats the statistics like Table 1.
func (d DatasetStats) Render() string {
	rows := [][]string{
		{"Total geographical distance", fmt.Sprintf("%.0f km", d.RouteKm)},
		{"Trip days", fmt.Sprintf("%d", d.Days)},
		{"Timezones traveled", fmt.Sprintf("%d", d.Timezones)},
		{"Operators", strings.Join(d.Operators, ", ")},
		{"# unique cells connected", kvInts(d.UniqueCells)},
		{"# handovers (passive loggers)", kvInts(d.Handovers)},
		{"Total cellular data used", fmt.Sprintf("%v (Rx), %v (Tx)", d.BytesRx, d.BytesTx)},
		{"Cumulative experiment runtime", kvDurations(d.Runtime)},
		{"Log records", fmt.Sprintf("%d", d.LogRecords)},
	}
	return renderTable("Table 1: dataset statistics", []string{"metric", "value"}, rows)
}

func kvInts(m map[string]int) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%d (%s)", m[k], k[:1]))
	}
	return strings.Join(parts, ", ")
}

func kvDurations(m map[string]time.Duration) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%.0f min (%s)", m[k].Minutes(), k[:1]))
	}
	return strings.Join(parts, ", ")
}

// CoverageMaps regenerates Fig 1: passive (handover-logger) vs active
// (XCAL under load) technology strips along the route, and the headline
// disparity between them.
type CoverageMaps struct {
	Bins int
	// Strip[op][0] is the passive strip, Strip[op][1] the active one.
	// Each byte is a technology letter, or '.' for no data in that bin.
	Strip map[radio.Operator][2]string
	// Passive5G and Active5G are the share of binned route with 5G
	// observed by each method.
	Passive5G map[radio.Operator]float64
	Active5G  map[radio.Operator]float64
}

// FigureCoverageMaps computes Fig 1 with the given number of route bins.
func FigureCoverageMaps(db *dataset.DB, route *geo.Route, bins int) CoverageMaps {
	if bins <= 0 {
		bins = 100
	}
	out := CoverageMaps{
		Bins:      bins,
		Strip:     map[radio.Operator][2]string{},
		Passive5G: map[radio.Operator]float64{},
		Active5G:  map[radio.Operator]float64{},
	}
	binOf := func(odo unit.Meters) int {
		b := int(float64(odo) / float64(route.Total()) * float64(bins))
		if b >= bins {
			b = bins - 1
		}
		if b < 0 {
			b = 0
		}
		return b
	}
	for _, op := range radio.Operators() {
		passive := make([]map[radio.Technology]int, bins)
		active := make([]map[radio.Technology]int, bins)
		for i := range passive {
			passive[i] = map[radio.Technology]int{}
			active[i] = map[radio.Technology]int{}
		}
		for _, p := range db.Passive {
			if p.Op == op {
				passive[binOf(p.Odometer)][p.Tech]++
			}
		}
		for _, s := range db.Throughput {
			if s.Op == op && !s.Static {
				active[binOf(s.Odometer)][s.Tech]++
			}
		}
		render := func(counts []map[radio.Technology]int) (string, float64) {
			strip := make([]byte, bins)
			fiveG, withData := 0, 0
			for i, c := range counts {
				best, bestN := radio.LTE, 0
				for tech, n := range c {
					if n > bestN {
						best, bestN = tech, n
					}
				}
				if bestN == 0 {
					strip[i] = '.'
					continue
				}
				withData++
				strip[i] = techLetter(best)
				if best.Is5G() {
					fiveG++
				}
			}
			share := 0.0
			if withData > 0 {
				share = float64(fiveG) / float64(withData)
			}
			return string(strip), share
		}
		p, pShare := render(passive)
		a, aShare := render(active)
		out.Strip[op] = [2]string{p, a}
		out.Passive5G[op] = pShare
		out.Active5G[op] = aShare
	}
	return out
}

// Render formats Fig 1 as labelled strips.
func (c CoverageMaps) Render() string {
	var b strings.Builder
	b.WriteString("Figure 1: coverage, passive handover-logger vs active XCAL\n")
	b.WriteString("legend: L=LTE A=LTE-A l=5G-low m=5G-mid W=5G-mmWave .=no data\n")
	for _, op := range radio.Operators() {
		s := c.Strip[op]
		fmt.Fprintf(&b, "%-8s passive [%s] 5G=%s\n", op, s[0], pct(c.Passive5G[op]))
		fmt.Fprintf(&b, "%-8s active  [%s] 5G=%s\n", op, s[1], pct(c.Active5G[op]))
	}
	return b.String()
}

// Coverage regenerates Fig 2: technology share of driven miles, overall
// (a), by direction (b), by timezone (c), and by speed bin (d).
type Coverage struct {
	// Overall[op][tech] is the share of driven distance (Fig 2a).
	Overall map[radio.Operator]map[radio.Technology]float64
	// ByDirection[op][dir][tech] (Fig 2b).
	ByDirection map[radio.Operator]map[radio.Direction]map[radio.Technology]float64
	// ByTimezone[op][tz][tech] (Fig 2c).
	ByTimezone map[radio.Operator]map[geo.Timezone]map[radio.Technology]float64
	// BySpeedBin[op][binLabel][tech] (Fig 2d).
	BySpeedBin map[radio.Operator]map[string]map[radio.Technology]float64
}

// Share5G sums the NR technologies of a share map.
func Share5G(m map[radio.Technology]float64) float64 {
	return m[radio.NRLow] + m[radio.NRMid] + m[radio.NRMmWave]
}

// ShareHighSpeed sums midband and mmWave.
func ShareHighSpeed(m map[radio.Technology]float64) float64 {
	return m[radio.NRMid] + m[radio.NRMmWave]
}

// FigureCoverage computes Fig 2 from the active throughput samples,
// weighting each 500 ms sample by the distance driven during it — the
// paper's "% of miles" denominator.
func FigureCoverage(db *dataset.DB) Coverage {
	cov := Coverage{
		Overall:     map[radio.Operator]map[radio.Technology]float64{},
		ByDirection: map[radio.Operator]map[radio.Direction]map[radio.Technology]float64{},
		ByTimezone:  map[radio.Operator]map[geo.Timezone]map[radio.Technology]float64{},
		BySpeedBin:  map[radio.Operator]map[string]map[radio.Technology]float64{},
	}
	speedBins := stats.SpeedBins()
	type acc map[radio.Technology]float64

	overall := map[radio.Operator]acc{}
	byDir := map[radio.Operator]map[radio.Direction]acc{}
	byTZ := map[radio.Operator]map[geo.Timezone]acc{}
	bySpeed := map[radio.Operator]map[string]acc{}
	for _, op := range radio.Operators() {
		overall[op] = acc{}
		byDir[op] = map[radio.Direction]acc{radio.Downlink: {}, radio.Uplink: {}}
		byTZ[op] = map[geo.Timezone]acc{}
		bySpeed[op] = map[string]acc{}
	}

	for _, s := range db.Throughput {
		if s.Static {
			continue
		}
		miles := s.SpeedMPH * 0.5 / 3600 // distance of the 500 ms window
		if miles <= 0 {
			miles = 1e-6 // keep stationary samples visible
		}
		overall[s.Op][s.Tech] += miles
		byDir[s.Op][s.Dir][s.Tech] += miles
		if byTZ[s.Op][s.Timezone] == nil {
			byTZ[s.Op][s.Timezone] = acc{}
		}
		byTZ[s.Op][s.Timezone][s.Tech] += miles
		label := speedBins.Label(s.SpeedMPH)
		if bySpeed[s.Op][label] == nil {
			bySpeed[s.Op][label] = acc{}
		}
		bySpeed[s.Op][label][s.Tech] += miles
	}

	norm := func(a acc) map[radio.Technology]float64 {
		total := 0.0
		for _, v := range a {
			total += v
		}
		out := map[radio.Technology]float64{}
		if total == 0 {
			return out
		}
		for k, v := range a {
			out[k] = v / total
		}
		return out
	}
	for _, op := range radio.Operators() {
		cov.Overall[op] = norm(overall[op])
		cov.ByDirection[op] = map[radio.Direction]map[radio.Technology]float64{
			radio.Downlink: norm(byDir[op][radio.Downlink]),
			radio.Uplink:   norm(byDir[op][radio.Uplink]),
		}
		cov.ByTimezone[op] = map[geo.Timezone]map[radio.Technology]float64{}
		for tz, a := range byTZ[op] {
			cov.ByTimezone[op][tz] = norm(a)
		}
		cov.BySpeedBin[op] = map[string]map[radio.Technology]float64{}
		for lbl, a := range bySpeed[op] {
			cov.BySpeedBin[op][lbl] = norm(a)
		}
	}
	return cov
}

// Render formats Fig 2's four panels.
func (c Coverage) Render() string {
	var b strings.Builder
	header := []string{"operator", "LTE", "LTE-A", "5G-low", "5G-mid", "5G-mmWave", "5G total", "high-speed"}
	row := func(label string, m map[radio.Technology]float64) []string {
		return []string{
			label,
			pct(m[radio.LTE]), pct(m[radio.LTEA]), pct(m[radio.NRLow]),
			pct(m[radio.NRMid]), pct(m[radio.NRMmWave]),
			pct(Share5G(m)), pct(ShareHighSpeed(m)),
		}
	}
	var rows [][]string
	for _, op := range radio.Operators() {
		rows = append(rows, row(op.String(), c.Overall[op]))
	}
	b.WriteString(renderTable("Figure 2a: technology share of driven miles", header, rows))

	rows = rows[:0]
	for _, op := range radio.Operators() {
		for _, dir := range radio.Directions() {
			rows = append(rows, row(op.String()+" "+dir.String(), c.ByDirection[op][dir]))
		}
	}
	b.WriteString(renderTable("Figure 2b: coverage by traffic direction", header, rows))

	rows = rows[:0]
	for _, op := range radio.Operators() {
		for tz := geo.Pacific; tz <= geo.Eastern; tz++ {
			if m, ok := c.ByTimezone[op][tz]; ok {
				rows = append(rows, row(op.String()+" "+tz.String(), m))
			}
		}
	}
	b.WriteString(renderTable("Figure 2c: coverage by timezone", header, rows))

	rows = rows[:0]
	for _, op := range radio.Operators() {
		for _, lbl := range stats.SpeedBins().Labels {
			if m, ok := c.BySpeedBin[op][lbl]; ok {
				rows = append(rows, row(op.String()+" "+lbl, m))
			}
		}
	}
	b.WriteString(renderTable("Figure 2d: coverage by speed bin", header, rows))
	return b.String()
}
