package core

import (
	"fmt"
	"runtime"
	"strings"
	"sync"

	"github.com/nuwins/cellwheels/internal/apps/offload"
	"github.com/nuwins/cellwheels/internal/dataset"
	"github.com/nuwins/cellwheels/internal/radio"
	"github.com/nuwins/cellwheels/internal/stats"
)

// OffloadAppResult regenerates Fig 13 (AR) or Fig 14 (CAV), with the
// per-operator variants of Figs 18–20.
type OffloadAppResult struct {
	Kind dataset.TestKind
	// E2E[op][compressed] summarizes driving E2E latency (ms);
	// index 0 = uncompressed, 1 = compressed.
	E2E map[radio.Operator][2]stats.Summary
	// StaticE2E[op][compressed] is the static-baseline mean E2E.
	StaticE2E map[radio.Operator][2]float64
	// FPS[op][compressed] summarizes offloaded frame rate.
	FPS map[radio.Operator][2]stats.Summary
	// MAP[op][compressed] summarizes detection accuracy (AR only).
	MAP map[radio.Operator][2]stats.Summary
	// ByHighSpeed[op] splits compressed-run E2E medians by the share of
	// the run on high-speed 5G: [<50%, >=50%].
	ByHighSpeed map[radio.Operator][2]float64
	// EdgeVsCloud[0] is the Verizon compressed-run E2E median on edge
	// servers, [1] on cloud.
	EdgeVsCloud [2]float64
	// HOCorrelation is Pearson r between a run's handover count and its
	// headline metric (mAP for AR, E2E for CAV).
	HOCorrelation map[radio.Operator]float64
}

// FigureARApp computes Fig 13 / 18–20 for the AR app.
func FigureARApp(db *dataset.DB) OffloadAppResult { return offloadFigure(db, dataset.AppAR) }

// FigureCAVApp computes Fig 14 / 18–20 for the CAV app.
func FigureCAVApp(db *dataset.DB) OffloadAppResult { return offloadFigure(db, dataset.AppCAV) }

func offloadFigure(db *dataset.DB, kind dataset.TestKind) OffloadAppResult {
	out := OffloadAppResult{
		Kind:          kind,
		E2E:           map[radio.Operator][2]stats.Summary{},
		StaticE2E:     map[radio.Operator][2]float64{},
		FPS:           map[radio.Operator][2]stats.Summary{},
		MAP:           map[radio.Operator][2]stats.Summary{},
		ByHighSpeed:   map[radio.Operator][2]float64{},
		HOCorrelation: map[radio.Operator]float64{},
	}
	for _, op := range radio.Operators() {
		var e2e, fps, mAP [2][]float64
		var static [2][]float64
		var hsLow, hsHigh []float64
		var hos, metric []float64
		for _, r := range db.AppRuns {
			if r.Kind != kind || r.Op != op {
				continue
			}
			ci := 0
			if r.Compressed {
				ci = 1
			}
			if r.Static {
				static[ci] = append(static[ci], r.E2EMS)
				continue
			}
			if r.E2EMS <= 0 {
				continue // run offloaded nothing
			}
			e2e[ci] = append(e2e[ci], r.E2EMS)
			fps[ci] = append(fps[ci], r.OffloadFPS)
			mAP[ci] = append(mAP[ci], r.MAP)
			if r.Compressed {
				if r.HighSpeedFrac < 0.5 {
					hsLow = append(hsLow, r.E2EMS)
				} else {
					hsHigh = append(hsHigh, r.E2EMS)
				}
				hos = append(hos, float64(r.Handovers))
				if kind == dataset.AppAR {
					metric = append(metric, r.MAP)
				} else {
					metric = append(metric, r.E2EMS)
				}
			}
		}
		out.E2E[op] = [2]stats.Summary{summarizeOrZero(e2e[0]), summarizeOrZero(e2e[1])}
		out.FPS[op] = [2]stats.Summary{summarizeOrZero(fps[0]), summarizeOrZero(fps[1])}
		out.MAP[op] = [2]stats.Summary{summarizeOrZero(mAP[0]), summarizeOrZero(mAP[1])}
		out.StaticE2E[op] = [2]float64{summarizeOrZero(static[0]).Min, summarizeOrZero(static[1]).Min}
		out.ByHighSpeed[op] = [2]float64{summarizeOrZero(hsLow).Median, summarizeOrZero(hsHigh).Median}
		if r, err := stats.Pearson(hos, metric); err == nil {
			out.HOCorrelation[op] = r
		}
	}

	var edge, cld []float64
	for _, r := range db.AppRuns {
		if r.Kind != kind || r.Op != radio.Verizon || !r.Compressed || r.Static || r.E2EMS <= 0 {
			continue
		}
		if r.Edge {
			edge = append(edge, r.E2EMS)
		} else {
			cld = append(cld, r.E2EMS)
		}
	}
	out.EdgeVsCloud = [2]float64{summarizeOrZero(edge).Median, summarizeOrZero(cld).Median}
	return out
}

// Render formats Fig 13 or Fig 14 plus the appendix breakdowns.
func (r OffloadAppResult) Render() string {
	name := "Figure 13 (AR app)"
	if r.Kind == dataset.AppCAV {
		name = "Figure 14 (CAV app)"
	}
	header := []string{"operator", "comp", "E2E med (ms)", "E2E p90", "static best E2E", "FPS med"}
	if r.Kind == dataset.AppAR {
		header = append(header, "mAP med")
	}
	var rows [][]string
	for _, op := range radio.Operators() {
		for ci, lbl := range []string{"no", "yes"} {
			row := []string{
				op.String(), lbl,
				f1(r.E2E[op][ci].Median), f1(r.E2E[op][ci].P90),
				f1(r.StaticE2E[op][ci]),
				f2(r.FPS[op][ci].Median),
			}
			if r.Kind == dataset.AppAR {
				row = append(row, f1(r.MAP[op][ci].Median))
			}
			rows = append(rows, row)
		}
	}
	s := renderTable(name+": offloading performance", header, rows)

	rows = rows[:0]
	for _, op := range radio.Operators() {
		hs := r.ByHighSpeed[op]
		rows = append(rows, []string{
			op.String(), f1(hs[0]), f1(hs[1]), f2(r.HOCorrelation[op]),
		})
	}
	s += renderTable(name+": context breakdowns (compressed runs)",
		[]string{"operator", "E2E med <50% hs", "E2E med >=50% hs", "r(HO, metric)"}, rows)
	s += fmt.Sprintf("Verizon edge vs cloud E2E median: %.1f vs %.1f ms\n",
		r.EdgeVsCloud[0], r.EdgeVsCloud[1])
	return s
}

// VideoResult regenerates Fig 15 (and Fig 21's per-operator variants).
type VideoResult struct {
	// QoE[op] over driving runs.
	QoE map[radio.Operator]stats.Summary
	// StaticQoE[op] is the best static run.
	StaticQoE map[radio.Operator]float64
	// Rebuffer[op] and Bitrate[op] over driving runs.
	Rebuffer map[radio.Operator]stats.Summary
	Bitrate  map[radio.Operator]stats.Summary
	// FracNegative is the share of driving runs with negative QoE.
	FracNegative map[radio.Operator]float64
	// HighSpeedQoE[op] is the median QoE of runs spent >=50% on
	// high-speed 5G vs below.
	HighSpeedQoE map[radio.Operator][2]float64
	// EdgeQoE[0] is the Verizon edge-run median, [1] cloud.
	EdgeQoE [2]float64
	// HOCorrelation is Pearson r between handovers and QoE.
	HOCorrelation map[radio.Operator]float64
}

// FigureVideo computes Fig 15 / 21.
func FigureVideo(db *dataset.DB) VideoResult {
	out := VideoResult{
		QoE:           map[radio.Operator]stats.Summary{},
		StaticQoE:     map[radio.Operator]float64{},
		Rebuffer:      map[radio.Operator]stats.Summary{},
		Bitrate:       map[radio.Operator]stats.Summary{},
		FracNegative:  map[radio.Operator]float64{},
		HighSpeedQoE:  map[radio.Operator][2]float64{},
		HOCorrelation: map[radio.Operator]float64{},
	}
	var edge, cld []float64
	for _, op := range radio.Operators() {
		var qoe, reb, rate, hos []float64
		var hsLow, hsHigh []float64
		staticBest := 0.0
		for _, r := range db.AppRuns {
			if r.Kind != dataset.AppVideo || r.Op != op {
				continue
			}
			if r.Static {
				if r.QoE > staticBest {
					staticBest = r.QoE
				}
				continue
			}
			qoe = append(qoe, r.QoE)
			reb = append(reb, r.RebufferFrac)
			rate = append(rate, r.AvgBitrate)
			hos = append(hos, float64(r.Handovers))
			if r.HighSpeedFrac < 0.5 {
				hsLow = append(hsLow, r.QoE)
			} else {
				hsHigh = append(hsHigh, r.QoE)
			}
			if op == radio.Verizon {
				if r.Edge {
					edge = append(edge, r.QoE)
				} else {
					cld = append(cld, r.QoE)
				}
			}
		}
		out.QoE[op] = summarizeOrZero(qoe)
		out.StaticQoE[op] = staticBest
		out.Rebuffer[op] = summarizeOrZero(reb)
		out.Bitrate[op] = summarizeOrZero(rate)
		out.FracNegative[op] = 1 - fracPositive(qoe)
		out.HighSpeedQoE[op] = [2]float64{summarizeOrZero(hsLow).Median, summarizeOrZero(hsHigh).Median}
		if r, err := stats.Pearson(hos, qoe); err == nil {
			out.HOCorrelation[op] = r
		}
	}
	out.EdgeQoE = [2]float64{summarizeOrZero(edge).Median, summarizeOrZero(cld).Median}
	return out
}

// Render formats Fig 15 / 21.
func (r VideoResult) Render() string {
	header := []string{"operator", "QoE med", "QoE<0 runs", "static best QoE", "rebuffer med", "rebuffer max", "bitrate med"}
	var rows [][]string
	for _, op := range radio.Operators() {
		rows = append(rows, []string{
			op.String(),
			f1(r.QoE[op].Median), pct(r.FracNegative[op]), f1(r.StaticQoE[op]),
			pct(r.Rebuffer[op].Median), pct(r.Rebuffer[op].Max),
			f1(r.Bitrate[op].Median),
		})
	}
	s := renderTable("Figure 15: 360° video streaming QoE", header, rows)
	rows = rows[:0]
	for _, op := range radio.Operators() {
		hs := r.HighSpeedQoE[op]
		rows = append(rows, []string{op.String(), f1(hs[0]), f1(hs[1]), f2(r.HOCorrelation[op])})
	}
	s += renderTable("Figure 15: breakdowns",
		[]string{"operator", "QoE med <50% hs", "QoE med >=50% hs", "r(HO, QoE)"}, rows)
	s += fmt.Sprintf("Verizon edge vs cloud QoE median: %.1f vs %.1f\n", r.EdgeQoE[0], r.EdgeQoE[1])
	return s
}

// GamingResult regenerates Fig 16 (and Fig 22).
type GamingResult struct {
	Bitrate map[radio.Operator]stats.Summary
	Latency map[radio.Operator]stats.Summary
	Drops   map[radio.Operator]stats.Summary
	// Static[op] is (bitrate, latency, drop) of the best static run.
	Static map[radio.Operator][3]float64
	// FracLatencyOver200 is the share of driving runs with mean network
	// latency above 200 ms.
	FracLatencyOver200 map[radio.Operator]float64
	HOCorrelation      map[radio.Operator]float64
}

// FigureGaming computes Fig 16 / 22.
func FigureGaming(db *dataset.DB) GamingResult {
	out := GamingResult{
		Bitrate:            map[radio.Operator]stats.Summary{},
		Latency:            map[radio.Operator]stats.Summary{},
		Drops:              map[radio.Operator]stats.Summary{},
		Static:             map[radio.Operator][3]float64{},
		FracLatencyOver200: map[radio.Operator]float64{},
		HOCorrelation:      map[radio.Operator]float64{},
	}
	for _, op := range radio.Operators() {
		var rate, lat, drop, hos []float64
		best := [3]float64{}
		for _, r := range db.AppRuns {
			if r.Kind != dataset.AppGaming || r.Op != op {
				continue
			}
			if r.Static {
				if r.SendBitrate > best[0] {
					best = [3]float64{r.SendBitrate, r.NetLatencyMS, r.FrameDropFrac}
				}
				continue
			}
			rate = append(rate, r.SendBitrate)
			lat = append(lat, r.NetLatencyMS)
			drop = append(drop, r.FrameDropFrac)
			hos = append(hos, float64(r.Handovers))
		}
		out.Bitrate[op] = summarizeOrZero(rate)
		out.Latency[op] = summarizeOrZero(lat)
		out.Drops[op] = summarizeOrZero(drop)
		out.Static[op] = best
		over := 0
		for _, l := range lat {
			if l > 200 {
				over++
			}
		}
		if len(lat) > 0 {
			out.FracLatencyOver200[op] = float64(over) / float64(len(lat))
		}
		if r, err := stats.Pearson(hos, drop); err == nil {
			out.HOCorrelation[op] = r
		}
	}
	return out
}

// Render formats Fig 16 / 22.
func (r GamingResult) Render() string {
	header := []string{"operator", "bitrate med", "static bitrate", "latency med (ms)", "lat>200ms runs", "drop med", "drop max", "static drop", "r(HO, drop)"}
	var rows [][]string
	for _, op := range radio.Operators() {
		rows = append(rows, []string{
			op.String(),
			f1(r.Bitrate[op].Median), f1(r.Static[op][0]),
			f1(r.Latency[op].Median), pct(r.FracLatencyOver200[op]),
			pct(r.Drops[op].Median), pct(r.Drops[op].Max), pct(r.Static[op][2]),
			f2(r.HOCorrelation[op]),
		})
	}
	return renderTable("Figure 16: cloud gaming performance", header, rows)
}

// TableAppConfigs renders Table 4 from the app packages' constants.
func TableAppConfigs() string {
	ar, cav := offload.ARConfig(), offload.CAVConfig()
	rows := [][]string{
		{"Frames per second", f1(ar.FPS), f1(cav.FPS)},
		{"Frame size (raw)", ar.RawBytes.String(), cav.RawBytes.String()},
		{"Frame size (compressed)", ar.CompressedBytes.String(), cav.CompressedBytes.String()},
		{"Frame compression time (ms)", f1(ar.CompressMS), f1(cav.CompressMS)},
		{"Server inference time (ms)", f1(ar.InferenceMS), f1(cav.InferenceMS)},
		{"Frame decompression time (ms)", f1(ar.DecompressMS), f1(cav.DecompressMS)},
		{"Duration of a run (s)", f1(ar.RunDuration.Seconds()), f1(cav.RunDuration.Seconds())},
	}
	return renderTable("Table 4: AR & CAV configurations", []string{"parameter", "AR", "CAV"}, rows)
}

// TableMAP renders Table 5 from the offload package's accuracy model.
func TableMAP() string {
	var rows [][]string
	for b := 0; b < offload.MAPBins(); b++ {
		rows = append(rows, []string{
			fmt.Sprintf("%d-%d", b, b+1),
			f2(offload.MAPForBin(b, false)),
			f2(offload.MAPForBin(b, true)),
		})
	}
	return renderTable("Table 5: mAP by E2E latency bin (frame times)",
		[]string{"bin", "mAP w/o comp", "mAP w/ comp"}, rows)
}

// Report renders every table and figure in paper order. The sections are
// independent reads of the database, so they render concurrently on a
// bounded worker pool; the join order is fixed, so the output is
// identical to a serial render.
func Report(db *dataset.DB, maps CoverageMaps) string {
	sections := []func() string{
		func() string { return TableDatasetStats(db).Render() },
		maps.Render,
		func() string { return FigureCoverage(db).Render() },
		func() string { return FigureStaticVsDriving(db).Render() },
		func() string { return FigurePerTechnology(db).Render() },
		func() string { return FigureTimezone(db).Render() },
		func() string { return FigureOperatorDiversity(db).Render() },
		func() string { return FigureSpeedScatter(db).Render() },
		func() string { return TableKPICorrelation(db).Render() },
		func() string { return FigureLongTimescale(db).Render() },
		func() string { return FigureHighSpeed5GShare(db).Render() },
		func() string { return TableOoklaComparison(db).Render() },
		func() string { return FigureHandoverStats(db).Render() },
		func() string { return FigureHandoverImpact(db).Render() },
		func() string { return FigureARApp(db).Render() },
		func() string { return FigureCAVApp(db).Render() },
		func() string { return FigureVideo(db).Render() },
		func() string { return FigureGaming(db).Render() },
		TableAppConfigs,
		TableMAP,
		func() string { return AnalyzeMultivariate(db).Render() },
	}

	rendered := make([]string, len(sections))
	jobs := make(chan int)
	var wg sync.WaitGroup
	workers := min(runtime.GOMAXPROCS(0), len(sections))
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				rendered[i] = sections[i]()
			}
		}()
	}
	for i := range sections {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	var b strings.Builder
	for _, s := range rendered {
		b.WriteString(s)
		b.WriteString("\n")
	}
	return b.String()
}
