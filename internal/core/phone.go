package core

import (
	"fmt"
	"time"

	"github.com/nuwins/cellwheels/internal/apps/gaming"
	"github.com/nuwins/cellwheels/internal/apps/offload"
	"github.com/nuwins/cellwheels/internal/apps/video"
	"github.com/nuwins/cellwheels/internal/cloud"
	"github.com/nuwins/cellwheels/internal/dataset"
	"github.com/nuwins/cellwheels/internal/deploy"
	"github.com/nuwins/cellwheels/internal/geo"
	"github.com/nuwins/cellwheels/internal/logsync"
	"github.com/nuwins/cellwheels/internal/radio"
	"github.com/nuwins/cellwheels/internal/ran"
	"github.com/nuwins/cellwheels/internal/simrand"
	"github.com/nuwins/cellwheels/internal/transport"
	"github.com/nuwins/cellwheels/internal/unit"
	"github.com/nuwins/cellwheels/internal/xcal"
)

// phone is one operator's active test handset: a UE, an XCAL recorder,
// and the round-robin rotation state. All of it is private to one lane.
type phone struct {
	op    radio.Operator
	ue    *ran.UE
	rec   *xcal.Recorder
	rng   *simrand.Source
	fleet []cloud.Server

	// rotation state
	specs   []testSpec
	specIdx int
	gapLeft time.Duration

	// current test state
	inTest    bool
	spec      testSpec
	testLeft  time.Duration
	testStart time.Time
	static    bool
	server    cloud.Server
	appLog    logsync.AppLog

	flow      *transport.Flow
	pinger    *transport.Pinger
	offRun    *offload.Runner
	vidRun    *video.Session
	gameRun   *gaming.Session
	prevApp   unit.Bytes
	hoSeen    int
	testTime  time.Duration // cumulative test runtime (Table 1)
	testsDone int

	files []xcal.File
	apps  []logsync.AppLog

	bytesRx unit.Bytes
	bytesTx unit.Bytes
}

// trafficFor maps a test kind to the offered-traffic profile the
// elevation policy sees.
func trafficFor(k dataset.TestKind) deploy.Traffic {
	switch k {
	case dataset.ThroughputDL, dataset.AppVideo, dataset.AppGaming:
		return deploy.HeavyDL
	case dataset.ThroughputUL, dataset.AppAR, dataset.AppCAV:
		return deploy.HeavyUL
	default: // RTT: ICMP only
		return deploy.Idle
	}
}

// stampFor picks the timestamp format each app's log uses — the paper's
// apps were inconsistent, which is exactly what logsync must handle.
func stampFor(k dataset.TestKind) logsync.StampKind {
	switch k {
	case dataset.RTTTest, dataset.AppVideo:
		return logsync.StampLocalNaive
	default:
		return logsync.StampUTC
	}
}

// tick advances the phone one simulation step.
func (p *phone) tick(cfg *Config, ds geo.DriveState) {
	if p.inTest {
		p.tickTest(cfg, ds)
		return
	}
	// Idle gap between tests: the UE stays attached under idle traffic.
	p.ue.Step(ds.Time, ds.Waypoint, ds.Speed.MPH(), Tick)
	p.gapLeft -= Tick
	if p.gapLeft <= 0 {
		p.startTest(cfg, ds)
	}
}

// startTest opens the next rotation slot.
//
//lint:cold — runs once per test (every ~30 s simulated), not per tick; setup allocations are amortized
func (p *phone) startTest(cfg *Config, ds geo.DriveState) {
	p.spec = p.specs[p.specIdx]
	p.specIdx = (p.specIdx + 1) % len(p.specs)

	kind := p.spec.kind
	role := cloud.General
	if kind == dataset.AppGaming || kind == dataset.AppAR || kind == dataset.AppCAV {
		role = cloud.GPU
	}
	p.server = cloud.Select(p.fleet, ds.Waypoint, p.op, role)

	p.ue.SetTraffic(trafficFor(kind), ds.Time, ds.Waypoint)

	p.inTest = true
	p.testLeft = cfg.testDuration(kind)
	p.testStart = ds.Time
	p.prevApp = 0
	p.flow = nil
	p.pinger = nil
	p.offRun = nil
	p.vidRun = nil
	p.gameRun = nil

	// Each test gets its own independent random stream; reusing one
	// stream name would replay the same loss pattern in every test.
	testRNG := p.rng.Fork(fmt.Sprintf("test/%d", p.testsDone+len(p.apps)))

	switch kind {
	case dataset.ThroughputDL, dataset.ThroughputUL:
		p.flow = transport.NewFlowOptions(testRNG.Fork("flow"), cfg.Transport)
	case dataset.RTTTest:
		p.pinger = transport.NewPinger(testRNG.Fork("ping"))
	case dataset.AppAR:
		p.offRun = offload.NewRunner(offload.ARConfig(), p.spec.compressed, testRNG.Fork("ar"))
	case dataset.AppCAV:
		p.offRun = offload.NewRunner(offload.CAVConfig(), p.spec.compressed, testRNG.Fork("cav"))
	case dataset.AppVideo:
		vcfg := video.DefaultConfig()
		vcfg.RunDuration = p.testLeft
		p.vidRun = video.NewSession(vcfg)
	case dataset.AppGaming:
		gcfg := gaming.DefaultConfig()
		gcfg.RunDuration = p.testLeft
		p.gameRun = gaming.NewSession(gcfg, testRNG.Fork("game"))
	}

	// App-side log skeleton. Its stamp format varies by kind.
	p.appLog = logsync.AppLog{
		Op:          p.op.Short(),
		Kind:        logsync.LabelOf(kind),
		Server:      p.server.Name,
		Edge:        p.server.Kind == cloud.Edge,
		Static:      p.static,
		Compressed:  p.spec.compressed,
		Stamp:       stampFor(kind),
		DurationSec: cfg.testDuration(kind).Seconds(),
	}
	switch p.appLog.Stamp {
	case logsync.StampUTC:
		p.appLog.StartStamp = ds.Time.UTC().Format(time.RFC3339Nano)
	default:
		z := ds.Waypoint.Timezone
		p.appLog.StartStamp = ds.Time.In(z.Location()).Format(xcal.LoggerFormat)
		p.appLog.Zone = z.String()
	}

	p.rec.StartFile(p.appLog.Kind, ds.Time, ds.Waypoint.Timezone)
	// Only handovers from the test window onward belong in this file.
	p.hoSeen = p.ue.HandoverCount()
}

// tickTest advances the active test by one tick.
func (p *phone) tickTest(cfg *Config, ds geo.DriveState) {
	st := p.ue.Step(ds.Time, ds.Waypoint, ds.Speed.MPH(), Tick)

	// Forward any new signaling events to the recorder.
	for _, ev := range p.ue.HandoversFrom(p.hoSeen) {
		p.rec.LogHandover(ev)
	}
	p.hoSeen = p.ue.HandoverCount()

	baseRTT := cloud.BaseRTT(p.server, ds.Waypoint.Loc) +
		unit.DurationFromMS(radio.BaseRadioRTT(st.Tech))

	var delivered unit.Bytes
	switch p.spec.kind {
	case dataset.ThroughputDL:
		res := p.flow.Step(Tick, st.CapacityDL, baseRTT, st.BLER)
		delivered = res.Delivered
		p.bytesRx += delivered
	case dataset.ThroughputUL:
		res := p.flow.Step(Tick, st.CapacityUL, baseRTT, st.BLER)
		delivered = res.Delivered
		p.bytesTx += delivered
	case dataset.RTTTest:
		for _, s := range p.pinger.Step(Tick, st.CapacityDL, baseRTT, st.Load, st.InHandover) {
			offset := ds.Time.Sub(p.testStart)
			p.appLog.RTTs = append(p.appLog.RTTs, logsync.RTTEntry{
				OffsetMS: unit.Milliseconds(offset),
				RTTMS:    unit.Milliseconds(s.RTT),
				Lost:     s.Lost,
			})
		}
	case dataset.AppAR, dataset.AppCAV:
		p.offRun.Step(Tick, st.CapacityUL, baseRTT)
		sent := p.offRun.BytesSent()
		delivered = sent - p.prevApp
		p.prevApp = sent
		p.bytesTx += delivered
	case dataset.AppVideo:
		p.vidRun.Step(Tick, st.CapacityDL)
		got := p.vidRun.BytesReceived()
		delivered = got - p.prevApp
		p.prevApp = got
		p.bytesRx += delivered
	case dataset.AppGaming:
		p.gameRun.Step(Tick, st.CapacityDL, baseRTT)
		got := p.gameRun.BytesReceived()
		delivered = got - p.prevApp
		p.prevApp = got
		p.bytesRx += delivered
	}

	p.rec.Observe(Tick, st, ds.Waypoint, ds.Speed.MPH(), delivered)

	p.testLeft -= Tick
	p.testTime += Tick
	if p.testLeft <= 0 {
		p.finishTest(cfg, ds)
	}
}

// finishTest closes the open test and queues its logs.
//
//lint:cold — runs once per test, not per tick; result assembly and log queuing are amortized
func (p *phone) finishTest(cfg *Config, ds geo.DriveState) {
	switch p.spec.kind {
	case dataset.AppAR, dataset.AppCAV:
		if p.offRun != nil {
			res := p.offRun.Result()
			p.appLog.Metrics = map[string]float64{
				"e2e_ms": res.MeanE2EMS,
				"fps":    res.OffloadFPS,
				"map":    res.MAP,
			}
		}
	case dataset.AppVideo:
		if p.vidRun != nil {
			res := p.vidRun.Result()
			p.appLog.Metrics = map[string]float64{
				"qoe":      res.AvgQoE,
				"bitrate":  res.AvgBitrate,
				"rebuffer": res.RebufferFrac,
			}
		}
	case dataset.AppGaming:
		if p.gameRun != nil {
			res := p.gameRun.Result()
			p.appLog.Metrics = map[string]float64{
				"send_bitrate":   res.MedianSendBitrate,
				"net_latency_ms": res.MeanNetLatencyMS,
				"frame_drop":     res.FrameDropFrac,
			}
		}
	}
	p.files = append(p.files, p.rec.CloseFile())
	p.apps = append(p.apps, p.appLog)
	p.inTest = false
	p.testsDone++
	p.gapLeft = cfg.TestGap
	// Between tests the phone goes idle; stickiness may retain the tech.
	p.ue.SetTraffic(deploy.Idle, ds.Time, ds.Waypoint)
}
