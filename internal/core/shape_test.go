package core

import (
	"strings"
	"testing"
	"time"

	"github.com/nuwins/cellwheels/internal/dataset"
	"github.com/nuwins/cellwheels/internal/geo"
	"github.com/nuwins/cellwheels/internal/radio"
	"github.com/nuwins/cellwheels/internal/unit"
)

// shapeDB runs a larger slice of the campaign (LA → past Las Vegas) used
// to assert the paper's qualitative findings. Built once.
var shapeData *dataset.DB

func shapeDB(t *testing.T) *dataset.DB {
	t.Helper()
	if testing.Short() {
		t.Skip("shape tests need a larger campaign; skipped with -short")
	}
	if shapeData != nil {
		return shapeData
	}
	cfg := Config{
		Seed:           3,
		Limit:          700 * unit.Kilometer,
		VideoDuration:  60 * time.Second,
		GamingDuration: 40 * time.Second,
	}
	db, err := NewCampaign(cfg).RunAndMerge()
	if err != nil {
		t.Fatal(err)
	}
	shapeData = db
	return db
}

func TestShapeDrivingFarBelowStatic(t *testing.T) {
	db := shapeDB(t)
	r := FigureStaticVsDriving(db)
	for _, op := range radio.Operators() {
		st := r.ThroughputOf(op, radio.Downlink, true)
		dr := r.ThroughputOf(op, radio.Downlink, false)
		if st.N == 0 {
			continue
		}
		// Fig 3b: driving medians are a few percent of static medians.
		if dr.Median > 0.4*st.Median {
			t.Errorf("%v: driving DL median %.1f not far below static %.1f", op, dr.Median, st.Median)
		}
	}
}

func TestShapeLowThroughputFraction(t *testing.T) {
	db := shapeDB(t)
	r := FigureStaticVsDriving(db)
	// "a significant fraction (35%) of very low throughput values (below
	// 5 Mbps) in both directions" — require a substantial fraction.
	if r.FracBelow5[radio.Uplink] < 0.15 {
		t.Errorf("UL below-5 fraction = %v, want substantial", r.FracBelow5[radio.Uplink])
	}
	if r.FracBelow5[radio.Downlink] < 0.08 {
		t.Errorf("DL below-5 fraction = %v, want substantial", r.FracBelow5[radio.Downlink])
	}
}

func TestShapeDrivingRTTRange(t *testing.T) {
	db := shapeDB(t)
	r := FigureStaticVsDriving(db)
	for _, op := range radio.Operators() {
		dr := r.RTTOf(op, false)
		// Fig 3b: medians 60–76 ms; allow a tolerant band.
		if dr.Median < 40 || dr.Median > 110 {
			t.Errorf("%v: driving RTT median %.1f ms outside paper band", op, dr.Median)
		}
		// Maxima reach seconds.
		if dr.Max < 500 {
			t.Errorf("%v: driving RTT max %.1f ms; paper sees 2-3 s tails", op, dr.Max)
		}
	}
}

func TestShapeUplinkElevationAsymmetry(t *testing.T) {
	db := shapeDB(t)
	c := FigureCoverage(db)
	// Fig 2b: high-speed 5G share higher for DL than UL for all carriers.
	for _, op := range radio.Operators() {
		dl := ShareHighSpeed(c.ByDirection[op][radio.Downlink])
		ul := ShareHighSpeed(c.ByDirection[op][radio.Uplink])
		if dl > 0.03 && ul >= dl {
			t.Errorf("%v: UL high-speed share %.2f not below DL %.2f", op, ul, dl)
		}
	}
}

func TestShapeTMobileCoverageLeads(t *testing.T) {
	db := shapeDB(t)
	c := FigureCoverage(db)
	tm := Share5G(c.Overall[radio.TMobile])
	if tm <= Share5G(c.Overall[radio.Verizon]) || tm <= Share5G(c.Overall[radio.ATT]) {
		t.Errorf("T-Mobile 5G share %.2f not dominant (V %.2f, A %.2f)",
			tm, Share5G(c.Overall[radio.Verizon]), Share5G(c.Overall[radio.ATT]))
	}
	// AT&T's high-speed share is marginal (Fig 2a: ~3%).
	if hs := ShareHighSpeed(c.Overall[radio.ATT]); hs > 0.12 {
		t.Errorf("AT&T high-speed share %.2f too high", hs)
	}
}

func TestShapeHandoverFrequency(t *testing.T) {
	db := shapeDB(t)
	r := FigureHandoverStats(db)
	for _, op := range radio.Operators() {
		pm := r.PerMileOf(op, radio.Downlink)
		if pm.N == 0 {
			t.Fatalf("%v: no DL tests with distance", op)
		}
		// Fig 11a: medians 1-3 HOs/mile, extremes past 20.
		if pm.Median > 8 {
			t.Errorf("%v: HO/mile median %.1f too high", op, pm.Median)
		}
		if pm.Max < 4 {
			t.Errorf("%v: HO/mile max %.1f too low", op, pm.Max)
		}
	}
	// Fig 11b: T-Mobile handovers are the slowest.
	tm := r.Duration[opDir{radio.TMobile, radio.Downlink}].Median
	vz := r.Duration[opDir{radio.Verizon, radio.Downlink}].Median
	if tm <= vz {
		t.Errorf("T-Mobile HO duration median %.1f not above Verizon %.1f", tm, vz)
	}
}

func TestShapeHandoverImpactSmallAndRecovering(t *testing.T) {
	db := shapeDB(t)
	r := FigureHandoverImpact(db)
	var t1n, t1tot, t2pos, t2tot float64
	for k, sum := range r.DeltaT1 {
		t1n += r.FracT1Negative[k] * float64(sum.N)
		t1tot += float64(sum.N)
	}
	for k, sum := range r.DeltaT2 {
		t2pos += r.FracT2Positive[k] * float64(sum.N)
		t2tot += float64(sum.N)
	}
	if t1tot < 30 {
		t.Skip("too few handover windows for shape assertions")
	}
	// §6: throughput drops during ~80% of HO windows.
	if frac := t1n / t1tot; frac < 0.55 {
		t.Errorf("ΔT1<0 fraction = %.2f, want a clear majority", frac)
	}
	// §6: post-HO throughput improves ~55-60% of the time.
	if frac := t2pos / t2tot; frac < 0.40 || frac > 0.80 {
		t.Errorf("ΔT2>0 fraction = %.2f, want ≈0.55-0.60", frac)
	}
}

func TestShapeEdgeBeatsCloudForVerizon(t *testing.T) {
	db := shapeDB(t)
	r := FigurePerTechnology(db)
	// §5.2: edge RTT below cloud RTT wherever both have samples.
	better, worse := 0, 0
	for _, tech := range radio.Technologies() {
		e := r.VerizonEdgeRTT[tech]
		if e[0].N < 20 || e[1].N < 20 {
			continue
		}
		if e[0].Median < e[1].Median {
			better++
		} else {
			worse++
		}
	}
	if better == 0 {
		t.Skip("no technology with enough edge and cloud RTT samples")
	}
	if worse > better {
		t.Errorf("edge beat cloud for %d technologies, lost for %d", better, worse)
	}
}

func TestShapeCompressionCutsCAVLatency(t *testing.T) {
	db := shapeDB(t)
	r := FigureCAVApp(db)
	for _, op := range radio.Operators() {
		raw, comp := r.E2E[op][0], r.E2E[op][1]
		if raw.N < 3 || comp.N < 3 {
			continue
		}
		// §7.1.2: compression cuts the median several-fold.
		if comp.Median > raw.Median/2 {
			t.Errorf("%v: CAV compressed median %.0f vs raw %.0f; want large cut", op, comp.Median, raw.Median)
		}
		// But never below the 100 ms bound.
		if comp.Median < 100 {
			t.Errorf("%v: CAV compressed median %.0f below the paper's 100 ms impossibility bound", op, comp.Median)
		}
	}
}

func TestShapeAppsHaveWeakHandoverCorrelation(t *testing.T) {
	db := shapeDB(t)
	for name, r := range map[string]map[radio.Operator]float64{
		"AR":    FigureARApp(db).HOCorrelation,
		"video": FigureVideo(db).HOCorrelation,
	} {
		for op, v := range r {
			if v > 0.6 || v < -0.6 {
				t.Errorf("%s %v: |r(HO)| = %.2f; the paper finds no strong correlation", name, op, v)
			}
		}
	}
}

func TestShapeGamingProtectsFrameRate(t *testing.T) {
	db := shapeDB(t)
	r := FigureGaming(db)
	for _, op := range radio.Operators() {
		if r.Drops[op].N == 0 {
			continue
		}
		// §7.3: the adapter keeps the drop rate low (median ~1.6%) by
		// sacrificing bitrate.
		if r.Drops[op].Median > 0.10 {
			t.Errorf("%v: frame drop median %.3f; adapter should protect frames", op, r.Drops[op].Median)
		}
		if r.Bitrate[op].Median > 80 {
			t.Errorf("%v: driving bitrate median %.1f suspiciously close to static ceiling", op, r.Bitrate[op].Median)
		}
	}
}

func TestShapeCoverageMapsDisparity(t *testing.T) {
	db := shapeDB(t)
	m := FigureCoverageMaps(db, geo.DefaultRoute(), 100)
	// Pooled across carriers, passive 5G is well below active 5G.
	var p, a float64
	for _, op := range radio.Operators() {
		p += m.Passive5G[op]
		a += m.Active5G[op]
	}
	if a < 0.2 {
		t.Skip("active 5G too scarce in this slice")
	}
	if p > 0.6*a {
		t.Errorf("pooled passive 5G %.2f not well below active %.2f", p, a)
	}
}

func TestShapeVideoDependsOnBandwidthMoreThanApps(t *testing.T) {
	db := shapeDB(t)
	vid := FigureVideo(db)
	// §7.2(3): runs mostly on high-speed 5G get better QoE.
	for _, op := range radio.Operators() {
		hs := vid.HighSpeedQoE[op]
		if hs[0] == 0 && hs[1] == 0 {
			continue
		}
		if hs[1] != 0 && hs[0] != 0 && hs[1] < hs[0]-30 {
			t.Errorf("%v: QoE on high-speed 5G (%.1f) far below low-tech runs (%.1f)", op, hs[1], hs[0])
		}
	}
}

func TestShapeATTRTTTestsMostlyOn4G(t *testing.T) {
	// §5.1: "most of the RTT tests over AT&T were run over LTE/LTE-A even
	// though the phone's screen showed 5G" — the idle ICMP traffic is not
	// elevated.
	db := shapeDB(t)
	on4G, total := 0, 0
	for _, s := range db.RTT {
		if s.Op != radio.ATT || s.Lost {
			continue
		}
		total++
		if !s.Tech.Is5G() {
			on4G++
		}
	}
	if total == 0 {
		t.Fatal("no AT&T RTT samples")
	}
	if frac := float64(on4G) / float64(total); frac < 0.8 {
		t.Errorf("AT&T RTT samples on 4G = %.2f, want the vast majority", frac)
	}
}

func TestShapeOoklaMeasuredSignature(t *testing.T) {
	// The measured Table 3 variant: the static crowd's DL medians sit far
	// above the driving DL medians; RTT sits below.
	if testing.Short() {
		t.Skip("needs the crowd simulation")
	}
	db := shapeDB(t)
	campaign := NewCampaign(Config{Seed: 3})
	crowd := campaign.MeasureSpeedtestCrowd(25)
	table := TableOoklaMeasured(db, crowd)
	for _, op := range radio.Operators() {
		d := table.Driving[op]
		c := table.Crowd[op]
		if c.DL.N == 0 {
			t.Fatalf("%v: no crowd samples", op)
		}
		if c.DL.Median <= d.OurDL {
			t.Errorf("%v: crowd DL %.1f not above driving %.1f", op, c.DL.Median, d.OurDL)
		}
		if c.RTT.Median >= d.OurRTT {
			t.Errorf("%v: crowd RTT %.1f not below driving %.1f", op, c.RTT.Median, d.OurRTT)
		}
	}
	if !strings.Contains(table.Render(), "measured variant") {
		t.Error("render missing title")
	}
}
