package core

import (
	"fmt"
	"time"

	"github.com/nuwins/cellwheels/internal/dataset"
	"github.com/nuwins/cellwheels/internal/radio"
	"github.com/nuwins/cellwheels/internal/ran"
	"github.com/nuwins/cellwheels/internal/stats"
)

// HandoverStats regenerates Fig 11: handovers per mile and handover
// durations during throughput tests, per operator and direction.
type HandoverStats struct {
	// PerMile[opDir] summarizes HOs/mile over the tests.
	PerMile map[opDir]stats.Summary
	// Duration[opDir] summarizes the HO execution time in ms.
	Duration map[opDir]stats.Summary
}

// FigureHandoverStats computes Fig 11.
func FigureHandoverStats(db *dataset.DB) HandoverStats {
	out := HandoverStats{
		PerMile:  map[opDir]stats.Summary{},
		Duration: map[opDir]stats.Summary{},
	}
	hosByTest := map[int][]dataset.Handover{}
	for _, h := range db.Handovers {
		hosByTest[h.TestID] = append(hosByTest[h.TestID], h)
	}
	perMile := map[opDir][]float64{}
	durations := map[opDir][]float64{}
	for _, t := range db.Tests {
		var dir radio.Direction
		switch t.Kind {
		case dataset.ThroughputDL:
			dir = radio.Downlink
		case dataset.ThroughputUL:
			dir = radio.Uplink
		default:
			continue
		}
		if t.Static {
			continue
		}
		miles := t.Miles()
		if miles <= 0.05 {
			continue
		}
		k := opDir{t.Op, dir}
		hos := hosByTest[t.ID]
		perMile[k] = append(perMile[k], float64(len(hos))/miles)
		for _, h := range hos {
			durations[k] = append(durations[k], h.DurationMS)
		}
	}
	for k, xs := range perMile {
		out.PerMile[k] = summarizeOrZero(xs)
	}
	for k, xs := range durations {
		out.Duration[k] = summarizeOrZero(xs)
	}
	return out
}

// PerMileOf reports the HOs/mile summary for one operator/direction.
func (r HandoverStats) PerMileOf(op radio.Operator, dir radio.Direction) stats.Summary {
	return r.PerMile[opDir{op, dir}]
}

// Render formats Fig 11.
func (r HandoverStats) Render() string {
	header := []string{"operator", "dir", "HO/mile med", "HO/mile p75", "HO/mile max", "dur med (ms)", "dur p75", "dur max"}
	var rows [][]string
	for _, op := range radio.Operators() {
		for _, dir := range radio.Directions() {
			k := opDir{op, dir}
			pm, du := r.PerMile[k], r.Duration[k]
			rows = append(rows, []string{
				op.String(), dir.String(),
				f1(pm.Median), f1(pm.P75), f1(pm.Max),
				f1(du.Median), f1(du.P75), f1(du.Max),
			})
		}
	}
	return renderTable("Figure 11: handover frequency and duration", header, rows)
}

// HandoverImpact regenerates Fig 12: ΔT₁ (throughput drop during a HO
// window) and ΔT₂ (post-HO minus pre-HO throughput), by direction and by
// handover type.
type HandoverImpact struct {
	// DeltaT1[opDir] summarizes T₃ − (T₂+T₄)/2 over HO windows.
	DeltaT1 map[opDir]stats.Summary
	// FracT1Negative is the share of HOs whose window lost throughput.
	FracT1Negative map[opDir]float64
	// DeltaT2[opDir] summarizes (T₄+T₅)/2 − (T₁+T₂)/2.
	DeltaT2 map[opDir]stats.Summary
	// FracT2Positive is the share of HOs that improved throughput.
	FracT2Positive map[opDir]float64
	// DeltaT2ByKind[kind] pools both directions and all operators.
	DeltaT2ByKind map[ran.HandoverKind]stats.Summary
	// FracT2PositiveByKind per kind.
	FracT2PositiveByKind map[ran.HandoverKind]float64
}

// FigureHandoverImpact computes Fig 12 using the paper's exact window
// construction (§6, Fig 11c): with 500 ms samples T₁..T₅ and a handover
// inside T₃'s window, ΔT₁ = T₃ − (T₂+T₄)/2 and ΔT₂ = (T₄+T₅)/2 − (T₁+T₂)/2.
func FigureHandoverImpact(db *dataset.DB) HandoverImpact {
	out := HandoverImpact{
		DeltaT1:              map[opDir]stats.Summary{},
		FracT1Negative:       map[opDir]float64{},
		DeltaT2:              map[opDir]stats.Summary{},
		FracT2Positive:       map[opDir]float64{},
		DeltaT2ByKind:        map[ran.HandoverKind]stats.Summary{},
		FracT2PositiveByKind: map[ran.HandoverKind]float64{},
	}

	// Index samples per test, ordered by time (already sorted globally).
	samplesByTest := map[int][]dataset.ThroughputSample{}
	for _, s := range db.Throughput {
		if !s.Static {
			samplesByTest[s.TestID] = append(samplesByTest[s.TestID], s)
		}
	}
	testInfo := map[int]dataset.Test{}
	for _, t := range db.Tests {
		testInfo[t.ID] = t
	}

	d1 := map[opDir][]float64{}
	d2 := map[opDir][]float64{}
	d2k := map[ran.HandoverKind][]float64{}

	for _, h := range db.Handovers {
		t, ok := testInfo[h.TestID]
		if !ok || t.Static {
			continue
		}
		var dir radio.Direction
		switch t.Kind {
		case dataset.ThroughputDL:
			dir = radio.Downlink
		case dataset.ThroughputUL:
			dir = radio.Uplink
		default:
			continue
		}
		ss := samplesByTest[h.TestID]
		// Find the sample window T₃ containing the HO.
		i := -1
		for j, s := range ss {
			if !h.Time.Before(s.Time) && h.Time.Before(s.Time.Add(500*time.Millisecond)) {
				i = j
				break
			}
		}
		// Need T₁..T₅ = indices i-2..i+2.
		if i < 2 || i+2 >= len(ss) {
			continue
		}
		t1, t2, t3, t4, t5 := ss[i-2].Mbps, ss[i-1].Mbps, ss[i].Mbps, ss[i+1].Mbps, ss[i+2].Mbps
		k := opDir{t.Op, dir}
		d1[k] = append(d1[k], t3-(t2+t4)/2)
		delta2 := (t4+t5)/2 - (t1+t2)/2
		d2[k] = append(d2[k], delta2)
		kind := ran.KindOf(h.FromTech, h.ToTech)
		d2k[kind] = append(d2k[kind], delta2)
	}

	for k, xs := range d1 {
		out.DeltaT1[k] = summarizeOrZero(xs)
		out.FracT1Negative[k] = 1 - fracPositive(xs)
	}
	for k, xs := range d2 {
		out.DeltaT2[k] = summarizeOrZero(xs)
		out.FracT2Positive[k] = fracPositive(xs)
	}
	for kind, xs := range d2k {
		out.DeltaT2ByKind[kind] = summarizeOrZero(xs)
		out.FracT2PositiveByKind[kind] = fracPositive(xs)
	}
	return out
}

// Render formats Fig 12.
func (r HandoverImpact) Render() string {
	header := []string{"operator", "dir", "n", "ΔT1 med", "ΔT1 min", "ΔT1<0", "ΔT2 med", "ΔT2 max", "ΔT2>0"}
	var rows [][]string
	for _, op := range radio.Operators() {
		for _, dir := range radio.Directions() {
			k := opDir{op, dir}
			a, b := r.DeltaT1[k], r.DeltaT2[k]
			rows = append(rows, []string{
				op.String(), dir.String(), fmt.Sprintf("%d", a.N),
				f1(a.Median), f1(a.Min), pct(r.FracT1Negative[k]),
				f1(b.Median), f1(b.Max), pct(r.FracT2Positive[k]),
			})
		}
	}
	s := renderTable("Figure 12: throughput impact of handovers (Mbps)", header, rows)

	rows = rows[:0]
	for _, kind := range []ran.HandoverKind{ran.Horizontal4G, ran.Horizontal5G, ran.Up, ran.Down} {
		sum := r.DeltaT2ByKind[kind]
		rows = append(rows, []string{
			kind.String(), fmt.Sprintf("%d", sum.N), f1(sum.Median), pct(r.FracT2PositiveByKind[kind]),
		})
	}
	s += renderTable("Figure 12: post−pre throughput by HO type",
		[]string{"type", "n", "ΔT2 med", "ΔT2>0"}, rows)
	return s
}
