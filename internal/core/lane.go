package core

import (
	"github.com/nuwins/cellwheels/internal/deploy"
	"github.com/nuwins/cellwheels/internal/geo"
	"github.com/nuwins/cellwheels/internal/obs"
	"github.com/nuwins/cellwheels/internal/radio"
	"github.com/nuwins/cellwheels/internal/speedtest"
	"github.com/nuwins/cellwheels/internal/ue"
	"github.com/nuwins/cellwheels/internal/xcal"
)

// lane is one operator's measurement rig: the active phone, its passive
// handover logger, the operator's deployment map, and (when enabled) the
// background-UE crowd registry. A lane replays the shared timeline
// independently of the other lanes — all its mutable state (UE,
// recorder, random streams, registry) is private, and the structures it
// shares (route, map, fleet) are read-only after construction — so lanes
// are safe to run on separate goroutines.
type lane struct {
	cfg    *Config
	op     radio.Operator
	phone  *phone
	logger *xcal.HandoverLogger
	m      *deploy.Map

	// reg is the lane's crowd; nil without one. crowdResults collects the
	// measuring crowd UEs' speedtest results in deterministic event order.
	reg          *ue.Registry
	crowdResults []speedtest.Result

	// Observability side channel (write-only; nil-safe when obs is off).
	obsTicks *obs.Counter
	obsOdoKm *obs.Gauge
}

// run replays the timeline through this lane's instruments. This loop
// is Campaign.Run's per-tick body — every 50 ms simulated step of every
// drive goes through it.
//
//lint:hotroot — the campaign tick loop; everything it reaches runs per 50 ms step
func (l *lane) run(cur *geo.Cursor) {
	p := l.phone
	inStatic := false
	var last geo.DriveState
	for {
		ts, ok := cur.Next()
		if !ok {
			break
		}
		// The crowd moves first, so the phone and logger read this tick's
		// demand aggregates. The lane owns the clock: tick→time is not
		// linear (overnight jumps between trip days), so the registry is
		// handed the timeline's instant rather than deriving its own.
		if l.reg != nil {
			l.reg.Advance(ts.Time)
		}
		if ts.HoldFirst {
			// Static baseline battery: carriers without high-speed 5G
			// near the stop are skipped, as the paper skipped
			// operator-city combinations without mmWave/midband.
			avail := l.m.AvailableWithin(ts.Odometer, staticSearchWindow)
			if avail.Has(radio.NRMmWave) || avail.Has(radio.NRMid) {
				if p.rec.Recording() {
					p.finishTest(l.cfg, ts.DriveState)
				}
				p.static = true
				p.ue.SetStaticMode(true)
				p.specIdx = 0
				p.gapLeft = l.cfg.TestGap
				inStatic = true
			}
		}

		p.tick(l.cfg, ts.DriveState)
		if l.logger != nil {
			l.logger.Step(ts.Time, ts.Waypoint, ts.Speed.MPH(), Tick)
		}

		if ts.HoldLast && inStatic {
			if p.rec.Recording() {
				p.finishTest(l.cfg, ts.DriveState)
			}
			p.static = false
			p.ue.SetStaticMode(false)
			inStatic = false
		}
		last = ts.DriveState
		l.obsTicks.Add(1)
		l.obsOdoKm.Set(ts.Odometer.Km())
	}
	// Close any file still open at trip end.
	if p.rec.Recording() {
		p.finishTest(l.cfg, last)
	}
}
