package core

import (
	"fmt"
	"sort"

	"github.com/nuwins/cellwheels/internal/dataset"
	"github.com/nuwins/cellwheels/internal/radio"
	"github.com/nuwins/cellwheels/internal/stats"
)

// Multivariate is the analysis the paper leaves as future work (§5.5):
// an OLS fit of 500 ms throughput on all of Table 2's KPIs at once,
// reporting how much variance the KPIs jointly explain (R²) and which
// predictors carry the weight (standardized coefficients).
type Multivariate struct {
	// Fit[opDir] is the joint regression.
	Fit map[opDir]stats.Regression
	// Errors notes combinations that could not be fitted.
	Errors map[opDir]string
}

// AnalyzeMultivariate fits throughput ~ RSRP + MCS + CA + BLER + Speed +
// HO per operator and direction over driving samples.
func AnalyzeMultivariate(db *dataset.DB) Multivariate {
	out := Multivariate{
		Fit:    map[opDir]stats.Regression{},
		Errors: map[opDir]string{},
	}
	names := []string{"RSRP", "MCS", "CA", "BLER", "Speed", "HO"}
	for _, op := range radio.Operators() {
		for _, dir := range radio.Directions() {
			sel := db.ThroughputWhere(func(s dataset.ThroughputSample) bool {
				return s.Op == op && s.Dir == dir && !s.Static
			})
			k := opDir{op, dir}
			if len(sel) < 20 {
				out.Errors[k] = "too few samples"
				continue
			}
			y := make([]float64, len(sel))
			cols := map[string][]float64{}
			for _, n := range names {
				cols[n] = make([]float64, len(sel))
			}
			for i, s := range sel {
				y[i] = s.Mbps
				cols["RSRP"][i] = s.RSRP
				cols["MCS"][i] = float64(s.MCS)
				cols["CA"][i] = float64(s.CC)
				cols["BLER"][i] = s.BLER
				cols["Speed"][i] = s.SpeedMPH
				cols["HO"][i] = float64(s.Handovers)
			}
			fit, err := stats.OLS(y, names, cols)
			if err != nil {
				out.Errors[k] = err.Error()
				continue
			}
			out.Fit[k] = fit
		}
	}
	return out
}

// DominantKPI reports the predictor with the largest |standardized
// coefficient| for one operator/direction, or "" if unfitted.
func (m Multivariate) DominantKPI(op radio.Operator, dir radio.Direction) string {
	fit, ok := m.Fit[opDir{op, dir}]
	if !ok {
		return ""
	}
	best, bestAbs := "", -1.0
	for j, name := range fit.Names {
		v := fit.StdCoef[j]
		if v < 0 {
			v = -v
		}
		if v > bestAbs {
			best, bestAbs = name, v
		}
	}
	return best
}

// Render formats the multivariate table.
func (m Multivariate) Render() string {
	header := []string{"operator", "dir", "R²", "n", "dominant KPI", "std coefficients"}
	var rows [][]string
	for _, op := range radio.Operators() {
		for _, dir := range radio.Directions() {
			k := opDir{op, dir}
			if msg, bad := m.Errors[k]; bad {
				rows = append(rows, []string{op.String(), dir.String(), "-", "-", "-", msg})
				continue
			}
			fit := m.Fit[k]
			parts := make([]string, len(fit.Names))
			for j, n := range fit.Names {
				parts[j] = fmt.Sprintf("%s=%.2f", n, fit.StdCoef[j])
			}
			sort.Strings(parts)
			rows = append(rows, []string{
				op.String(), dir.String(),
				f2(fit.R2), fmt.Sprintf("%d", fit.N),
				m.DominantKPI(op, dir),
				join(parts),
			})
		}
	}
	return renderTable("Multivariate (paper §5.5 future work): throughput ~ all KPIs", header, rows)
}

func join(parts []string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += " "
		}
		out += p
	}
	return out
}
