package geo

import (
	"testing"
	"time"

	"github.com/nuwins/cellwheels/internal/simrand"
	"github.com/nuwins/cellwheels/internal/unit"
)

func testTimeline(seed int64, limit unit.Meters, hold HoldRule) *Timeline {
	return NewTimeline(DefaultRoute(), DriveConfig{}, simrand.New(seed), TimelineConfig{
		Tick:  50 * time.Millisecond,
		Limit: limit,
		Hold:  hold,
	})
}

func TestTimelineCursorsIdentical(t *testing.T) {
	tl := testTimeline(11, 150*unit.Kilometer, HoldRule{MaxCityDistance: 8 * unit.Kilometer, Budget: 2 * time.Minute})
	a, b := tl.Cursor(), tl.Cursor()
	n := 0
	for {
		sa, oka := a.Next()
		sb, okb := b.Next()
		if oka != okb {
			t.Fatalf("cursors disagree on length at tick %d", n)
		}
		if !oka {
			break
		}
		if sa != sb {
			t.Fatalf("tick %d differs:\n  a=%+v\n  b=%+v", n, sa, sb)
		}
		n++
	}
	if n != tl.Ticks() {
		t.Fatalf("cursor produced %d ticks, Ticks() = %d", n, tl.Ticks())
	}
}

func TestTimelineMatchesPlainDrive(t *testing.T) {
	// Without holds the timeline must replay exactly what a bare Drive
	// from the same root rng produces.
	route := DefaultRoute()
	tl := NewTimeline(route, DriveConfig{}, simrand.New(5), TimelineConfig{
		Tick:  50 * time.Millisecond,
		Limit: 60 * unit.Kilometer,
	})
	drive := NewDrive(route, DriveConfig{}, simrand.New(5))
	cur := tl.Cursor()
	for i := 0; ; i++ {
		ts, ok := cur.Next()
		if !ok {
			break
		}
		if ts.Hold {
			t.Fatalf("hold tick %d without a hold rule", i)
		}
		ds := drive.Step(50 * time.Millisecond)
		if ts.DriveState != ds {
			t.Fatalf("tick %d: timeline %+v, drive %+v", i, ts.DriveState, ds)
		}
	}
}

func TestTimelineHoldWindows(t *testing.T) {
	const budget = 90 * time.Second
	tick := 50 * time.Millisecond
	tl := testTimeline(3, 700*unit.Kilometer, HoldRule{MaxCityDistance: 8 * unit.Kilometer, Budget: budget})
	holds := tl.Holds()
	if len(holds) == 0 {
		t.Fatal("no hold windows over 700 km (expected at least Los Angeles)")
	}
	wantTicks := int((budget + tick - 1) / tick)
	for _, h := range holds {
		if h.Ticks != wantTicks {
			t.Errorf("city %s: %d hold ticks, want %d", h.City, h.Ticks, wantTicks)
		}
		if h.City == "" {
			t.Error("hold window without a city")
		}
	}

	// Replay and check the annotations: odometer frozen, speed zero,
	// first/last flags bracketing exactly the advertised windows, and at
	// most one hold per city.
	cur := tl.Cursor()
	seen := map[string]int{}
	var inHold bool
	var holdOdo unit.Meters
	var holdTicks int
	for i := 0; ; i++ {
		ts, ok := cur.Next()
		if !ok {
			break
		}
		if !ts.Hold {
			if inHold {
				t.Fatalf("tick %d: hold ended without HoldLast", i)
			}
			continue
		}
		if ts.Speed != 0 {
			t.Fatalf("tick %d: moving at %v during hold", i, ts.Speed)
		}
		if ts.HoldFirst {
			if inHold {
				t.Fatalf("tick %d: nested hold", i)
			}
			inHold = true
			holdOdo = ts.Odometer
			holdTicks = 0
			seen[ts.HoldCity]++
		}
		if !inHold {
			t.Fatalf("tick %d: hold tick outside a window", i)
		}
		if ts.Odometer != holdOdo {
			t.Fatalf("tick %d: odometer moved during hold (%v -> %v)", i, holdOdo, ts.Odometer)
		}
		holdTicks++
		if ts.HoldLast {
			if holdTicks != wantTicks {
				t.Fatalf("window closed after %d ticks, want %d", holdTicks, wantTicks)
			}
			inHold = false
		}
	}
	if inHold {
		t.Fatal("timeline ended mid-hold")
	}
	if len(seen) != len(holds) {
		t.Fatalf("replay visited %d cities, scan advertised %d", len(seen), len(holds))
	}
	for city, n := range seen {
		if n != 1 {
			t.Errorf("city %s held %d times", city, n)
		}
	}
}

func TestTimelineRespectsLimit(t *testing.T) {
	limit := 40 * unit.Kilometer
	tl := testTimeline(7, limit, HoldRule{})
	final := tl.Final()
	if final.Odometer < limit {
		t.Fatalf("final odometer %v below limit %v", final.Odometer, limit)
	}
	// One tick of slack: the limit check runs after the step.
	if over := final.Odometer - limit; over > 200*unit.Meter {
		t.Fatalf("overshot limit by %v", over)
	}
}
