package geo

import (
	"time"

	"github.com/nuwins/cellwheels/internal/simrand"
	"github.com/nuwins/cellwheels/internal/unit"
)

// DriveConfig parameterizes the multi-day drive schedule.
type DriveConfig struct {
	// Days the trip is split across. The paper drove 8 days.
	Days int
	// DailyStartLocal is the local wall-clock hour each day's driving
	// begins.
	DailyStartLocal int
	// StartUTC is the UTC instant of the first day's departure. The
	// paper's trip started 2022-08-08 09:00 Pacific.
	StartUTC time.Time
	// Speed targets by region, in mph. Zero values take paper-plausible
	// defaults.
	UrbanMPH    float64
	SuburbanMPH float64
	HighwayMPH  float64
}

// DefaultDriveConfig mirrors the paper's 8-day August 2022 schedule.
func DefaultDriveConfig() DriveConfig {
	return DriveConfig{
		Days:            8,
		DailyStartLocal: 9,
		StartUTC:        time.Date(2022, 8, 8, 16, 0, 0, 0, time.UTC), // 09:00 PDT
		UrbanMPH:        14,
		SuburbanMPH:     45,
		HighwayMPH:      68,
	}
}

func (c *DriveConfig) applyDefaults() {
	d := DefaultDriveConfig()
	if c.Days <= 0 {
		c.Days = d.Days
	}
	if c.DailyStartLocal <= 0 {
		c.DailyStartLocal = d.DailyStartLocal
	}
	if c.StartUTC.IsZero() {
		c.StartUTC = d.StartUTC
	}
	if c.UrbanMPH <= 0 {
		c.UrbanMPH = d.UrbanMPH
	}
	if c.SuburbanMPH <= 0 {
		c.SuburbanMPH = d.SuburbanMPH
	}
	if c.HighwayMPH <= 0 {
		c.HighwayMPH = d.HighwayMPH
	}
}

// DriveState is the vehicle state at one simulated instant.
type DriveState struct {
	Time     time.Time // UTC
	Odometer unit.Meters
	Speed    unit.MetersPerSecond
	Waypoint Waypoint
	Day      int // 0-based trip day
	Done     bool
}

// LocalTime renders the state's instant in the local timezone of the
// vehicle's position.
func (s DriveState) LocalTime() time.Time {
	return s.Time.In(s.Waypoint.Timezone.Location())
}

// Drive advances a vehicle along a route with a region-dependent speed
// process: smooth wander around the region's target speed, full stops at
// urban lights, and overnight jumps between trip days.
type Drive struct {
	route *Route
	cfg   DriveConfig
	rng   *simrand.Source

	state     DriveState
	dayQuota  unit.Meters
	speedVar  simrand.OU
	stopUntil time.Time
}

// NewDrive starts a drive at the route origin.
func NewDrive(r *Route, cfg DriveConfig, rng *simrand.Source) *Drive {
	cfg.applyDefaults()
	d := &Drive{
		route: r,
		cfg:   cfg,
		rng:   rng.Fork("drive"),
		speedVar: simrand.OU{
			Mean: 1.0, Revert: 0.02, Sigma: 0.02, Min: 0.55, Max: 1.25,
		},
	}
	d.dayQuota = unit.Meters(float64(r.Total()) / float64(cfg.Days))
	d.state = DriveState{
		Time:     cfg.StartUTC,
		Waypoint: r.At(0),
	}
	return d
}

// State reports the current state without advancing.
func (d *Drive) State() DriveState { return d.state }

// Hold advances simulated time by dt with the vehicle stationary, for
// static baseline tests in cities.
func (d *Drive) Hold(dt time.Duration) DriveState {
	d.state.Time = d.state.Time.Add(dt)
	d.state.Speed = 0
	return d.state
}

// targetSpeed reports the mean speed for a region.
func (d *Drive) targetSpeed(r Region) unit.MetersPerSecond {
	switch r {
	case Urban:
		return unit.SpeedFromMPH(d.cfg.UrbanMPH)
	case Suburban:
		return unit.SpeedFromMPH(d.cfg.SuburbanMPH)
	default:
		return unit.SpeedFromMPH(d.cfg.HighwayMPH)
	}
}

// Step advances the drive by dt and returns the new state. Once the
// route is exhausted the returned state has Done set and no longer
// changes.
func (d *Drive) Step(dt time.Duration) DriveState {
	if d.state.Done {
		return d.state
	}

	// Day boundary: once the day's quota is covered, jump to the next
	// morning at the configured local start hour.
	doneDays := unit.Meters(float64(d.state.Day+1)) * d.dayQuota
	if d.state.Odometer >= doneDays && d.state.Day < d.cfg.Days-1 {
		d.state.Day++
		local := d.state.Time.In(d.state.Waypoint.Timezone.Location())
		next := time.Date(local.Year(), local.Month(), local.Day()+1,
			d.cfg.DailyStartLocal, 0, 0, 0, local.Location())
		d.state.Time = next.UTC()
		d.state.Speed = 0
	}

	d.state.Time = d.state.Time.Add(dt)

	// Urban stop lights: while stopped, speed is zero.
	if d.state.Time.Before(d.stopUntil) {
		d.state.Speed = 0
		d.state.Waypoint = d.route.At(d.state.Odometer)
		return d.state
	}
	region := d.state.Waypoint.Region
	if region == Urban && d.rng.Bool(dt.Seconds()/180) {
		// Roughly one stop per ~3 urban minutes, 15–45 s long.
		d.stopUntil = d.state.Time.Add(time.Duration(d.rng.Uniform(15, 45) * float64(time.Second)))
		d.state.Speed = 0
		return d.state
	}

	// Smooth speed around the regional target.
	target := float64(d.targetSpeed(region)) * d.speedVar.Step(d.rng)
	cur := float64(d.state.Speed)
	// Limit acceleration to ±2.5 m/s² so speed traces look vehicular.
	maxDelta := 2.5 * dt.Seconds()
	cur += unit.Clamp(target-cur, -maxDelta, maxDelta)
	if cur < 0 {
		cur = 0
	}
	d.state.Speed = unit.MetersPerSecond(cur)
	d.state.Odometer += d.state.Speed.DistanceIn(dt)

	if d.state.Odometer >= d.route.Total() {
		d.state.Odometer = d.route.Total()
		d.state.Done = true
		d.state.Speed = 0
	}
	d.state.Waypoint = d.route.At(d.state.Odometer)
	return d.state
}
