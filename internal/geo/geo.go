// Package geo models the paper's cross-continental drive: the LA→Boston
// route through the ten major cities listed in §3, the four timezones it
// crosses, the urban/suburban/highway segmentation that §5.5 uses to
// explain speed-dependent performance, and the day-by-day drive schedule.
//
// The route is pure geography: it is identical for every campaign seed.
// Only the Drive — speed noise, urban stops — consumes campaign randomness.
package geo

import (
	"errors"
	"fmt"
	"math"
	"time"

	"github.com/nuwins/cellwheels/internal/simrand"
	"github.com/nuwins/cellwheels/internal/unit"
)

// LatLon is a WGS-84 coordinate in degrees.
type LatLon struct {
	Lat float64
	Lon float64
}

// String renders the coordinate as "lat,lon".
func (p LatLon) String() string { return fmt.Sprintf("%.4f,%.4f", p.Lat, p.Lon) }

const earthRadius = 6371e3 // meters

// Haversine reports the great-circle distance between two coordinates.
func Haversine(a, b LatLon) unit.Meters {
	la1, lo1 := a.Lat*math.Pi/180, a.Lon*math.Pi/180
	la2, lo2 := b.Lat*math.Pi/180, b.Lon*math.Pi/180
	dla, dlo := la2-la1, lo2-lo1
	h := math.Sin(dla/2)*math.Sin(dla/2) + math.Cos(la1)*math.Cos(la2)*math.Sin(dlo/2)*math.Sin(dlo/2)
	return unit.Meters(2 * earthRadius * math.Asin(math.Min(1, math.Sqrt(h))))
}

// Timezone is one of the four US timezones the route crosses.
type Timezone int

// The route's four timezones, west to east.
const (
	Pacific Timezone = iota
	Mountain
	Central
	Eastern
	numTimezones
)

// NumTimezones is the number of timezones along the route.
const NumTimezones = int(numTimezones)

// String implements fmt.Stringer.
func (z Timezone) String() string {
	switch z {
	case Pacific:
		return "Pacific"
	case Mountain:
		return "Mountain"
	case Central:
		return "Central"
	case Eastern:
		return "Eastern"
	default:
		//lint:allow hotbox — diagnostic fallback for invalid values; never taken for the four real zones
		return fmt.Sprintf("Timezone(%d)", int(z))
	}
}

// UTCOffset reports the UTC offset under daylight-saving time, which was
// in effect during the paper's August 2022 trip.
func (z Timezone) UTCOffset() time.Duration {
	switch z {
	case Pacific:
		return -7 * time.Hour
	case Mountain:
		return -6 * time.Hour
	case Central:
		return -5 * time.Hour
	default:
		return -4 * time.Hour
	}
}

// Location returns a fixed-offset *time.Location for the zone.
func (z Timezone) Location() *time.Location {
	return time.FixedZone(z.String(), int(z.UTCOffset().Seconds()))
}

// TimezoneAt classifies a longitude into the timezone it falls in along
// the I-15/I-80/I-90 corridor. Boundaries approximate the NV/UT, NE
// panhandle, and Indiana crossings.
func TimezoneAt(lon float64) Timezone {
	switch {
	case lon < -114.04:
		return Pacific
	case lon < -101.5:
		return Mountain
	case lon < -86.2:
		return Central
	default:
		return Eastern
	}
}

// Region is the paper's three-way segmentation of the route.
type Region int

// Region kinds. The paper's speed bins act as proxies for these: low
// speeds in cities, medium in suburbs, high on inter-state highways.
const (
	Urban Region = iota
	Suburban
	Highway
)

// String implements fmt.Stringer.
func (r Region) String() string {
	switch r {
	case Urban:
		return "urban"
	case Suburban:
		return "suburban"
	default:
		return "highway"
	}
}

// City is a major city on the route.
type City struct {
	Name    string
	Loc     LatLon
	HasEdge bool // a Verizon Wavelength edge server is deployed here (§3)
}

// MajorCities returns the ten cities of the paper's route, west to east.
// The five edge-server cities match §3: LA, Las Vegas, Denver, Chicago,
// and Boston.
func MajorCities() []City {
	return []City{
		{Name: "Los Angeles", Loc: LatLon{34.0522, -118.2437}, HasEdge: true},
		{Name: "Las Vegas", Loc: LatLon{36.1699, -115.1398}, HasEdge: true},
		{Name: "Salt Lake City", Loc: LatLon{40.7608, -111.8910}},
		{Name: "Denver", Loc: LatLon{39.7392, -104.9903}, HasEdge: true},
		{Name: "Omaha", Loc: LatLon{41.2565, -95.9345}},
		{Name: "Chicago", Loc: LatLon{41.8781, -87.6298}, HasEdge: true},
		{Name: "Indianapolis", Loc: LatLon{39.7684, -86.1581}},
		{Name: "Cleveland", Loc: LatLon{41.4993, -81.6944}},
		{Name: "Rochester", Loc: LatLon{43.1566, -77.6088}},
		{Name: "Boston", Loc: LatLon{42.3601, -71.0589}, HasEdge: true},
	}
}

// PaperRouteLength is the road distance the paper reports (Table 1).
const PaperRouteLength = 5711 * unit.Kilometer

// Classification radii.
const (
	urbanRadius    = 12 * unit.Kilometer
	suburbanRadius = 35 * unit.Kilometer
	townRadius     = 8 * unit.Kilometer
	townSpacing    = 150 * unit.Kilometer
)

// Route is the fixed LA→Boston drive path. It maps an odometer reading
// to a position, region class, timezone, and nearest city.
type Route struct {
	cities   []City
	cumGC    []unit.Meters // cumulative great-circle distance at each city
	factor   float64       // road distance / great-circle distance
	total    unit.Meters   // road distance
	towns    []unit.Meters // odometer positions of small towns
	townLocs []LatLon
}

// NewRoute builds a route through the given cities with the given total
// road length. At least two cities are required and the road length must
// be at least the great-circle length.
func NewRoute(cities []City, roadLength unit.Meters) (*Route, error) {
	if len(cities) < 2 {
		return nil, errors.New("geo: route needs at least two cities")
	}
	cum := make([]unit.Meters, len(cities))
	for i := 1; i < len(cities); i++ {
		cum[i] = cum[i-1] + Haversine(cities[i-1].Loc, cities[i].Loc)
	}
	gc := cum[len(cum)-1]
	if gc <= 0 {
		return nil, errors.New("geo: degenerate route")
	}
	if roadLength < gc {
		return nil, fmt.Errorf("geo: road length %v below great-circle %v", roadLength, gc)
	}
	r := &Route{
		cities: append([]City(nil), cities...),
		cumGC:  cum,
		factor: float64(roadLength) / float64(gc),
		total:  roadLength,
	}
	r.placeTowns()
	return r, nil
}

// DefaultRoute returns the paper's LA→Boston route at its 5,711 km road
// length.
func DefaultRoute() *Route {
	r, err := NewRoute(MajorCities(), PaperRouteLength)
	if err != nil {
		panic(err) // static construction cannot fail
	}
	return r
}

// placeTowns drops small towns at quasi-regular intervals. Towns are part
// of the fixed geography, so they use a route-local deterministic stream
// rather than campaign randomness.
func (r *Route) placeTowns() {
	rng := simrand.New(1815).Fork("geo/towns")
	for odo := townSpacing; odo < r.total; odo += townSpacing {
		jitter := unit.Meters(rng.Uniform(-40e3, 40e3))
		pos := odo + jitter
		if pos <= 0 || pos >= r.total {
			continue
		}
		loc, _ := r.interpolate(pos)
		// Skip towns that fall inside a major city's suburban ring; they
		// would not change classification there.
		if d, _ := r.nearestCity(loc); d < suburbanRadius {
			continue
		}
		r.towns = append(r.towns, pos)
		r.townLocs = append(r.townLocs, loc)
	}
}

// Total reports the road length of the route.
func (r *Route) Total() unit.Meters { return r.total }

// Cities returns the route's major cities, west to east.
func (r *Route) Cities() []City { return append([]City(nil), r.cities...) }

// interpolate maps an odometer reading to a coordinate and the index of
// the preceding city.
func (r *Route) interpolate(odo unit.Meters) (LatLon, int) {
	gc := unit.Meters(float64(odo) / r.factor)
	last := len(r.cumGC) - 1
	if gc <= 0 {
		return r.cities[0].Loc, 0
	}
	if gc >= r.cumGC[last] {
		return r.cities[last].Loc, last - 1
	}
	seg := 0
	for i := 1; i <= last; i++ {
		if gc < r.cumGC[i] {
			seg = i - 1
			break
		}
	}
	span := r.cumGC[seg+1] - r.cumGC[seg]
	f := float64(gc-r.cumGC[seg]) / float64(span)
	a, b := r.cities[seg].Loc, r.cities[seg+1].Loc
	return LatLon{
		Lat: a.Lat + f*(b.Lat-a.Lat),
		Lon: a.Lon + f*(b.Lon-a.Lon),
	}, seg
}

// nearestCity reports the distance to and index of the closest major city.
func (r *Route) nearestCity(loc LatLon) (unit.Meters, int) {
	best := unit.Meters(math.Inf(1))
	bestIdx := 0
	for i, c := range r.cities {
		if d := Haversine(loc, c.Loc); d < best {
			best, bestIdx = d, i
		}
	}
	return best, bestIdx
}

// nearestTown reports the distance to the closest town along the route.
func (r *Route) nearestTown(odo unit.Meters) unit.Meters {
	best := unit.Meters(math.Inf(1))
	for _, t := range r.towns {
		d := odo - t
		if d < 0 {
			d = -d
		}
		if d < best {
			best = d
		}
	}
	return best
}

// Waypoint describes one point along the route.
type Waypoint struct {
	Odometer     unit.Meters
	Loc          LatLon
	Region       Region
	Timezone     Timezone
	City         string // nearest major city
	CityDistance unit.Meters
	CityHasEdge  bool
}

// At maps an odometer reading (clamped to [0, Total]) to a Waypoint.
func (r *Route) At(odo unit.Meters) Waypoint {
	if odo < 0 {
		odo = 0
	}
	if odo > r.total {
		odo = r.total
	}
	loc, _ := r.interpolate(odo)
	cityDist, cityIdx := r.nearestCity(loc)
	region := Highway
	switch {
	case cityDist < urbanRadius:
		region = Urban
	case cityDist < suburbanRadius, r.nearestTown(odo) < townRadius:
		region = Suburban
	}
	return Waypoint{
		Odometer:     odo,
		Loc:          loc,
		Region:       region,
		Timezone:     TimezoneAt(loc.Lon),
		City:         r.cities[cityIdx].Name,
		CityDistance: cityDist,
		CityHasEdge:  r.cities[cityIdx].HasEdge,
	}
}

// OdometerOf maps a coordinate back to the closest odometer position on
// the route — the post-processing step that joins GPS rows from the logs
// to route positions. The inverse of At up to projection error.
func (r *Route) OdometerOf(loc LatLon) unit.Meters {
	best := math.Inf(1)
	var bestOdo unit.Meters
	for i := 0; i+1 < len(r.cities); i++ {
		a, b := r.cities[i].Loc, r.cities[i+1].Loc
		// Flat-earth projection within a segment, with longitude scaled
		// by cos(latitude) so axes are commensurate.
		scale := math.Cos(a.Lat * math.Pi / 180)
		ax, ay := a.Lon*scale, a.Lat
		bx, by := b.Lon*scale, b.Lat
		px, py := loc.Lon*scale, loc.Lat
		dx, dy := bx-ax, by-ay
		den := dx*dx + dy*dy
		t := 0.0
		if den > 0 {
			t = ((px-ax)*dx + (py-ay)*dy) / den
		}
		if t < 0 {
			t = 0
		} else if t > 1 {
			t = 1
		}
		proj := LatLon{Lat: a.Lat + t*(b.Lat-a.Lat), Lon: a.Lon + t*(b.Lon-a.Lon)}
		if d := float64(Haversine(loc, proj)); d < best {
			best = d
			gc := r.cumGC[i] + unit.Meters(t*float64(r.cumGC[i+1]-r.cumGC[i]))
			bestOdo = unit.Meters(float64(gc) * r.factor)
		}
	}
	return bestOdo
}

// RegionShares reports the fraction of route length in each region,
// sampled at the given step.
func (r *Route) RegionShares(step unit.Meters) map[Region]float64 {
	if step <= 0 {
		step = unit.Kilometer
	}
	counts := map[Region]int{}
	n := 0
	for odo := unit.Meters(0); odo <= r.total; odo += step {
		counts[r.At(odo).Region]++
		n++
	}
	out := map[Region]float64{}
	for k, c := range counts {
		out[k] = float64(c) / float64(n)
	}
	return out
}
