package geo

import (
	"encoding/json"
	"testing"

	"github.com/nuwins/cellwheels/internal/unit"
)

func TestRouteGeoJSON(t *testing.T) {
	r := DefaultRoute()
	out, err := r.GeoJSON(100 * unit.Kilometer)
	if err != nil {
		t.Fatal(err)
	}
	var fc struct {
		Type     string `json:"type"`
		Features []struct {
			Type       string         `json:"type"`
			Properties map[string]any `json:"properties"`
			Geometry   struct {
				Type        string          `json:"type"`
				Coordinates json.RawMessage `json:"coordinates"`
			} `json:"geometry"`
		} `json:"features"`
	}
	if err := json.Unmarshal(out, &fc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if fc.Type != "FeatureCollection" {
		t.Errorf("type = %q", fc.Type)
	}
	// One route line + 10 city points.
	if len(fc.Features) != 11 {
		t.Fatalf("features = %d, want 11", len(fc.Features))
	}
	if fc.Features[0].Geometry.Type != "LineString" {
		t.Errorf("first feature = %q", fc.Features[0].Geometry.Type)
	}
	var line [][2]float64
	if err := json.Unmarshal(fc.Features[0].Geometry.Coordinates, &line); err != nil {
		t.Fatal(err)
	}
	if len(line) < 50 {
		t.Errorf("polyline has %d points", len(line))
	}
	// GeoJSON is lon,lat: first point is LA.
	if got := line[0]; got[0] > -118 || got[1] < 33 || got[1] > 35 {
		t.Errorf("first point = %v, want ≈(-118.24, 34.05)", got)
	}
	edges := 0
	for _, f := range fc.Features[1:] {
		if f.Geometry.Type != "Point" {
			t.Errorf("city feature type %q", f.Geometry.Type)
		}
		if e, ok := f.Properties["edge"].(bool); ok && e {
			edges++
		}
	}
	if edges != 5 {
		t.Errorf("edge cities = %d", edges)
	}
}

func TestSegmentsGeoJSON(t *testing.T) {
	r := DefaultRoute()
	segs := [][2]unit.Meters{
		{100 * unit.Kilometer, 160 * unit.Kilometer},
		{2000 * unit.Kilometer, 2010 * unit.Kilometer},
	}
	out, err := r.SegmentsGeoJSON("T 5G-mid", segs, 5*unit.Kilometer)
	if err != nil {
		t.Fatal(err)
	}
	var fc struct {
		Features []struct {
			Properties map[string]any `json:"properties"`
			Geometry   struct {
				Type string `json:"type"`
			} `json:"geometry"`
		} `json:"features"`
	}
	if err := json.Unmarshal(out, &fc); err != nil {
		t.Fatal(err)
	}
	if len(fc.Features) != 2 {
		t.Fatalf("features = %d", len(fc.Features))
	}
	for _, f := range fc.Features {
		if f.Properties["label"] != "T 5G-mid" {
			t.Errorf("label = %v", f.Properties["label"])
		}
		if f.Geometry.Type != "LineString" {
			t.Errorf("geometry = %q", f.Geometry.Type)
		}
	}
}

func TestSegmentsGeoJSONSkipsDegenerate(t *testing.T) {
	r := DefaultRoute()
	out, err := r.SegmentsGeoJSON("x", [][2]unit.Meters{{500, 500}}, unit.Kilometer)
	if err != nil {
		t.Fatal(err)
	}
	var fc struct {
		Features []json.RawMessage `json:"features"`
	}
	if err := json.Unmarshal(out, &fc); err != nil {
		t.Fatal(err)
	}
	if len(fc.Features) != 0 {
		t.Errorf("degenerate segment produced %d features", len(fc.Features))
	}
}
