package geo

import (
	"testing"
	"time"

	"github.com/nuwins/cellwheels/internal/simrand"
	"github.com/nuwins/cellwheels/internal/unit"
)

func testDrive(t *testing.T, seed int64) *Drive {
	t.Helper()
	return NewDrive(DefaultRoute(), DefaultDriveConfig(), simrand.New(seed))
}

func TestDriveCompletesRoute(t *testing.T) {
	d := testDrive(t, 1)
	const dt = time.Second
	steps := 0
	for !d.State().Done {
		d.Step(dt)
		steps++
		if steps > 60*60*24*20 { // 20 simulated days of 1 s steps
			t.Fatal("drive never finished")
		}
	}
	if got := d.State().Odometer; got != DefaultRoute().Total() {
		t.Errorf("final odometer = %v, want %v", got, DefaultRoute().Total())
	}
}

func TestDriveOdometerMonotone(t *testing.T) {
	d := testDrive(t, 2)
	prev := unit.Meters(0)
	for i := 0; i < 100000 && !d.State().Done; i++ {
		s := d.Step(time.Second)
		if s.Odometer < prev {
			t.Fatalf("odometer went backwards: %v after %v", s.Odometer, prev)
		}
		prev = s.Odometer
	}
}

func TestDriveTimeMonotone(t *testing.T) {
	d := testDrive(t, 3)
	prev := d.State().Time
	for i := 0; i < 100000 && !d.State().Done; i++ {
		s := d.Step(time.Second)
		if s.Time.Before(prev) {
			t.Fatalf("time went backwards: %v after %v", s.Time, prev)
		}
		prev = s.Time
	}
}

func TestDriveSpansConfiguredDays(t *testing.T) {
	d := testDrive(t, 4)
	maxDay := 0
	for !d.State().Done {
		s := d.Step(2 * time.Second)
		if s.Day > maxDay {
			maxDay = s.Day
		}
	}
	if maxDay != 7 {
		t.Errorf("max day index = %d, want 7 (8-day trip)", maxDay)
	}
}

func TestDriveSpeedsPlausible(t *testing.T) {
	d := testDrive(t, 5)
	var regionMax = map[Region]float64{}
	sawHighwayFast := false
	for !d.State().Done {
		s := d.Step(time.Second)
		mph := s.Speed.MPH()
		if mph < 0 || mph > 95 {
			t.Fatalf("implausible speed %v mph", mph)
		}
		if mph > regionMax[s.Waypoint.Region] {
			regionMax[s.Waypoint.Region] = mph
		}
		if s.Waypoint.Region == Highway && mph > 60 {
			sawHighwayFast = true
		}
	}
	if !sawHighwayFast {
		t.Error("never exceeded 60 mph on highway")
	}
	// Transitional samples entering a city may still carry highway speed,
	// but sustained urban driving stays moderate.
	if regionMax[Urban] > 62 {
		t.Errorf("urban max speed %v mph too high", regionMax[Urban])
	}
}

func TestDriveUrbanStopsHappen(t *testing.T) {
	d := testDrive(t, 6)
	stops := 0
	for i := 0; i < 3600*4 && !d.State().Done; i++ { // first ~4 h covers LA + Vegas
		s := d.Step(time.Second)
		if s.Waypoint.Region == Urban && s.Speed == 0 && s.Odometer > 0 {
			stops++
		}
	}
	if stops == 0 {
		t.Error("no urban stops observed")
	}
}

func TestDriveHold(t *testing.T) {
	d := testDrive(t, 7)
	d.Step(time.Second)
	before := d.State()
	after := d.Hold(30 * time.Second)
	if got := after.Time.Sub(before.Time); got != 30*time.Second {
		t.Errorf("Hold advanced %v, want 30s", got)
	}
	if after.Odometer != before.Odometer {
		t.Error("Hold moved the vehicle")
	}
	if after.Speed != 0 {
		t.Error("Hold left nonzero speed")
	}
}

func TestDriveDeterministicPerSeed(t *testing.T) {
	a, b := testDrive(t, 42), testDrive(t, 42)
	for i := 0; i < 5000; i++ {
		sa, sb := a.Step(time.Second), b.Step(time.Second)
		if sa.Odometer != sb.Odometer || sa.Speed != sb.Speed || !sa.Time.Equal(sb.Time) {
			t.Fatalf("step %d: drives diverged", i)
		}
	}
}

func TestDriveSeedsDiffer(t *testing.T) {
	a, b := testDrive(t, 1), testDrive(t, 2)
	same := true
	for i := 0; i < 1000; i++ {
		if a.Step(time.Second).Speed != b.Step(time.Second).Speed {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical speed traces")
	}
}

func TestDriveDoneIsSticky(t *testing.T) {
	d := testDrive(t, 8)
	for !d.State().Done {
		d.Step(5 * time.Second)
	}
	end := d.State()
	after := d.Step(time.Second)
	if !after.Done || after.Odometer != end.Odometer {
		t.Errorf("state changed after Done: %+v", after)
	}
}

func TestDriveLocalTime(t *testing.T) {
	d := testDrive(t, 9)
	s := d.Step(time.Second)
	local := s.LocalTime()
	if local.Hour() != 9 {
		t.Errorf("local start hour = %d, want 9", local.Hour())
	}
	if name, _ := local.Zone(); name != "Pacific" {
		t.Errorf("zone = %q, want Pacific", name)
	}
}

func TestDriveDailyRestartHour(t *testing.T) {
	d := testDrive(t, 10)
	prevDay := 0
	for !d.State().Done {
		s := d.Step(2 * time.Second)
		if s.Day != prevDay {
			local := s.LocalTime()
			if local.Hour() != 9 {
				t.Errorf("day %d restart at local hour %d, want 9", s.Day, local.Hour())
			}
			prevDay = s.Day
		}
	}
}

func TestDriveConfigDefaults(t *testing.T) {
	var cfg DriveConfig
	cfg.applyDefaults()
	if cfg.Days != 8 || cfg.DailyStartLocal != 9 {
		t.Errorf("defaults = %+v", cfg)
	}
	if cfg.StartUTC.IsZero() {
		t.Error("StartUTC not defaulted")
	}
}
