package geo

import (
	"encoding/json"

	"github.com/nuwins/cellwheels/internal/unit"
)

// GeoJSON rendering of the route, for dropping the study onto a real
// map. The output is a FeatureCollection with one LineString for the
// route (sampled at the given step) and one Point per major city.

// geoJSONFeature is a minimal GeoJSON feature.
type geoJSONFeature struct {
	Type       string          `json:"type"`
	Properties map[string]any  `json:"properties"`
	Geometry   geoJSONGeometry `json:"geometry"`
}

type geoJSONGeometry struct {
	Type        string `json:"type"`
	Coordinates any    `json:"coordinates"`
}

type geoJSONCollection struct {
	Type     string           `json:"type"`
	Features []geoJSONFeature `json:"features"`
}

// GeoJSON renders the route as a GeoJSON FeatureCollection. step
// controls the polyline sampling; zero means 10 km.
func (r *Route) GeoJSON(step unit.Meters) ([]byte, error) {
	if step <= 0 {
		step = 10 * unit.Kilometer
	}
	var line [][2]float64
	for odo := unit.Meters(0); ; odo += step {
		clamped := odo
		if clamped > r.Total() {
			clamped = r.Total()
		}
		wp := r.At(clamped)
		line = append(line, [2]float64{wp.Loc.Lon, wp.Loc.Lat})
		if clamped == r.Total() {
			break
		}
	}
	fc := geoJSONCollection{
		Type: "FeatureCollection",
		Features: []geoJSONFeature{{
			Type: "Feature",
			Properties: map[string]any{
				"name":    "LA-Boston drive route",
				"road_km": r.Total().Km(),
			},
			Geometry: geoJSONGeometry{Type: "LineString", Coordinates: line},
		}},
	}
	for _, c := range r.Cities() {
		fc.Features = append(fc.Features, geoJSONFeature{
			Type: "Feature",
			Properties: map[string]any{
				"name": c.Name,
				"edge": c.HasEdge,
			},
			Geometry: geoJSONGeometry{
				Type:        "Point",
				Coordinates: [2]float64{c.Loc.Lon, c.Loc.Lat},
			},
		})
	}
	return json.MarshalIndent(fc, "", "  ")
}

// SegmentsGeoJSON renders labelled odometer intervals (e.g. one
// operator's coverage fragments for one technology) as a
// MultiLineString FeatureCollection. Each segment is a [start, end)
// odometer pair with a label carried into the feature properties.
func (r *Route) SegmentsGeoJSON(label string, segments [][2]unit.Meters, step unit.Meters) ([]byte, error) {
	if step <= 0 {
		step = 5 * unit.Kilometer
	}
	var features []geoJSONFeature
	for _, seg := range segments {
		var line [][2]float64
		for odo := seg[0]; ; odo += step {
			clamped := odo
			if clamped > seg[1] {
				clamped = seg[1]
			}
			wp := r.At(clamped)
			line = append(line, [2]float64{wp.Loc.Lon, wp.Loc.Lat})
			if clamped == seg[1] {
				break
			}
		}
		if len(line) < 2 {
			continue
		}
		features = append(features, geoJSONFeature{
			Type: "Feature",
			Properties: map[string]any{
				"label":    label,
				"start_km": seg[0].Km(),
				"end_km":   seg[1].Km(),
			},
			Geometry: geoJSONGeometry{Type: "LineString", Coordinates: line},
		})
	}
	return json.MarshalIndent(geoJSONCollection{Type: "FeatureCollection", Features: features}, "", "  ")
}
