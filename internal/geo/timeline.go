package geo

import (
	"time"

	"github.com/nuwins/cellwheels/internal/simrand"
	"github.com/nuwins/cellwheels/internal/unit"
)

// TickState is one instant of the shared drive timeline: the vehicle state
// plus the hold annotations phone lanes react to. The timeline is pure
// mobility — it knows when the vehicle parks for a static battery and for
// how long, but nothing about phones, tests, or operators.
type TickState struct {
	DriveState
	// Hold marks a tick inside a static-battery hold window: the vehicle
	// is parked and simulated time advances with the odometer frozen.
	Hold bool
	// HoldFirst and HoldLast mark the window's first and last tick, so a
	// consumer can set up and tear down static state without tracking the
	// previous tick.
	HoldFirst bool
	HoldLast  bool
	// HoldCity names the city that triggered the window.
	HoldCity string
}

// HoldRule decides where the timeline inserts static-battery hold windows
// and how long they last. The budget is fixed up front — derived from the
// configured test rotation, not from any phone's runtime progress — so
// every consumer of the timeline sees identical hold windows and lanes
// never need to wait for each other.
type HoldRule struct {
	// MaxCityDistance is how close to a major city's center the vehicle
	// must be (in an urban region) to trigger that city's one-time hold.
	MaxCityDistance unit.Meters
	// Budget is the hold duration. Zero disables holds entirely.
	Budget time.Duration
}

// TimelineConfig parameterizes a Timeline.
type TimelineConfig struct {
	// Tick is the simulation step.
	Tick time.Duration
	// Limit truncates the trip after this driven distance; zero or
	// out-of-range values mean the full route.
	Limit unit.Meters
	// Hold inserts per-city static hold windows.
	Hold HoldRule
}

// HoldWindow describes one static hold of the precomputed timeline.
type HoldWindow struct {
	City      string
	StartTick int // index of the window's first tick
	Ticks     int
}

// Timeline is the precomputed, shared drive schedule of a campaign: the
// deterministic sequence of tick states every phone lane replays. The
// sequence itself is not materialized — a Cursor regenerates it on demand
// from the same forked random stream, so any number of lanes can replay it
// concurrently in O(1) memory while observing byte-identical states.
type Timeline struct {
	route *Route
	dcfg  DriveConfig
	rng   *simrand.Source // parent stream; every cursor forks "drive" off it
	cfg   TimelineConfig

	ticks int
	holds []HoldWindow
	final DriveState
}

// NewTimeline precomputes the drive schedule. The rng is the campaign's
// root stream: cursors fork the same "drive" child the serial engine used,
// so the mobility trace is a pure function of (route, config, seed).
func NewTimeline(route *Route, dcfg DriveConfig, rng *simrand.Source, cfg TimelineConfig) *Timeline {
	if cfg.Tick <= 0 {
		cfg.Tick = 50 * time.Millisecond
	}
	if cfg.Limit <= 0 || cfg.Limit > route.Total() {
		cfg.Limit = route.Total()
	}
	t := &Timeline{route: route, dcfg: dcfg, rng: rng, cfg: cfg}
	t.scan()
	return t
}

// scan replays one cursor to the end, recording the hold windows, total
// tick count, and final vehicle state.
func (t *Timeline) scan() {
	cur := t.Cursor()
	i := 0
	for {
		ts, ok := cur.Next()
		if !ok {
			break
		}
		if ts.HoldFirst {
			t.holds = append(t.holds, HoldWindow{City: ts.HoldCity, StartTick: i, Ticks: t.holdTicks()})
		}
		t.final = ts.DriveState
		i++
	}
	t.ticks = i
}

// holdTicks is the hold budget in whole ticks, rounded up.
func (t *Timeline) holdTicks() int {
	if t.cfg.Hold.Budget <= 0 {
		return 0
	}
	return int((t.cfg.Hold.Budget + t.cfg.Tick - 1) / t.cfg.Tick)
}

// Ticks reports the total number of tick states a cursor produces.
func (t *Timeline) Ticks() int { return t.ticks }

// Holds returns the precomputed static hold windows, in trip order.
func (t *Timeline) Holds() []HoldWindow { return append([]HoldWindow(nil), t.holds...) }

// Final reports the vehicle state at the end of the timeline.
func (t *Timeline) Final() DriveState { return t.final }

// Tick reports the simulation step.
func (t *Timeline) Tick() time.Duration { return t.cfg.Tick }

// Cursor returns a fresh replay of the timeline from its first tick.
// Cursors are independent: each owns a private Drive seeded from the same
// forked stream, so concurrent cursors produce identical sequences without
// sharing any mutable state.
func (t *Timeline) Cursor() *Cursor {
	return &Cursor{
		t:          t,
		drive:      NewDrive(t.route, t.dcfg, t.rng),
		citiesDone: map[string]bool{},
	}
}

// Cursor iterates one replay of a Timeline.
type Cursor struct {
	t     *Timeline
	drive *Drive

	citiesDone map[string]bool
	holdLeft   int
	holdTotal  int
	holdCity   string
	endPending bool // limit reached; finish the open hold, then stop
	ended      bool
}

// Next produces the next tick state, or ok=false once the trip is over.
func (c *Cursor) Next() (TickState, bool) {
	if c.ended {
		return TickState{}, false
	}
	if c.holdLeft > 0 {
		ds := c.drive.Hold(c.t.cfg.Tick)
		c.holdLeft--
		ts := TickState{
			DriveState: ds,
			Hold:       true,
			HoldFirst:  c.holdLeft == c.holdTotal-1,
			HoldLast:   c.holdLeft == 0,
			HoldCity:   c.holdCity,
		}
		if ts.HoldLast {
			c.holdCity = ""
			if c.endPending {
				c.ended = true
			}
		}
		return ts, true
	}

	ds := c.drive.Step(c.t.cfg.Tick)
	ts := TickState{DriveState: ds}

	// First arrival at a major city's core schedules a hold window that
	// begins on the next tick, mirroring the serial engine's "tick, then
	// park" order.
	wp := ds.Waypoint
	if budget := c.t.holdTicks(); budget > 0 &&
		wp.Region == Urban && wp.CityDistance < c.t.cfg.Hold.MaxCityDistance && !c.citiesDone[wp.City] {
		c.citiesDone[wp.City] = true
		c.holdLeft = budget
		c.holdTotal = budget
		c.holdCity = wp.City
	}

	if ds.Done || ds.Odometer >= c.t.cfg.Limit {
		if c.holdLeft > 0 {
			c.endPending = true
		} else {
			c.ended = true
		}
	}
	return ts, true
}
