package geo

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"github.com/nuwins/cellwheels/internal/unit"
)

func TestHaversineKnownDistance(t *testing.T) {
	la := LatLon{34.0522, -118.2437}
	boston := LatLon{42.3601, -71.0589}
	d := Haversine(la, boston)
	// LA–Boston great circle is ≈ 4,170 km.
	if d.Km() < 4100 || d.Km() > 4250 {
		t.Errorf("LA-Boston = %.0f km, want ≈4170", d.Km())
	}
}

func TestHaversineProperties(t *testing.T) {
	f := func(lat1, lon1, lat2, lon2 float64) bool {
		a := LatLon{math.Mod(lat1, 90), math.Mod(lon1, 180)}
		b := LatLon{math.Mod(lat2, 90), math.Mod(lon2, 180)}
		if math.IsNaN(a.Lat) || math.IsNaN(a.Lon) || math.IsNaN(b.Lat) || math.IsNaN(b.Lon) {
			return true
		}
		ab, ba := Haversine(a, b), Haversine(b, a)
		if ab < 0 {
			return false
		}
		if math.Abs(float64(ab-ba)) > 1e-6 {
			return false // symmetry
		}
		return Haversine(a, a) < 1e-6 // identity
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTimezoneAt(t *testing.T) {
	cases := []struct {
		lon  float64
		want Timezone
	}{
		{-118.24, Pacific}, // LA
		{-115.14, Pacific}, // Las Vegas
		{-111.89, Mountain},
		{-104.99, Mountain}, // Denver
		{-95.93, Central},   // Omaha
		{-87.63, Central},   // Chicago
		{-86.16, Eastern},   // Indianapolis (EDT)
		{-71.06, Eastern},   // Boston
	}
	for _, c := range cases {
		if got := TimezoneAt(c.lon); got != c.want {
			t.Errorf("TimezoneAt(%v) = %v, want %v", c.lon, got, c.want)
		}
	}
}

func TestTimezoneOffsets(t *testing.T) {
	if Pacific.UTCOffset() != -7*time.Hour {
		t.Errorf("Pacific offset = %v", Pacific.UTCOffset())
	}
	if Eastern.UTCOffset() != -4*time.Hour {
		t.Errorf("Eastern offset = %v", Eastern.UTCOffset())
	}
	// Offsets ascend west to east by one hour.
	for z := Pacific; z < Eastern; z++ {
		if (z+1).UTCOffset()-z.UTCOffset() != time.Hour {
			t.Errorf("offset step at %v", z)
		}
	}
}

func TestTimezoneStrings(t *testing.T) {
	for z, want := range map[Timezone]string{
		Pacific: "Pacific", Mountain: "Mountain", Central: "Central", Eastern: "Eastern",
	} {
		if z.String() != want {
			t.Errorf("String(%d) = %q", int(z), z.String())
		}
	}
}

func TestMajorCities(t *testing.T) {
	cities := MajorCities()
	if len(cities) != 10 {
		t.Fatalf("city count = %d, want 10", len(cities))
	}
	if cities[0].Name != "Los Angeles" || cities[9].Name != "Boston" {
		t.Errorf("endpoints = %q, %q", cities[0].Name, cities[9].Name)
	}
	edges := 0
	for _, c := range cities {
		if c.HasEdge {
			edges++
		}
	}
	if edges != 5 {
		t.Errorf("edge cities = %d, want 5 (§3)", edges)
	}
	// Cities should run roughly west to east.
	for i := 1; i < len(cities); i++ {
		if cities[i].Loc.Lon < cities[i-1].Loc.Lon-3 {
			t.Errorf("city %q is far west of its predecessor", cities[i].Name)
		}
	}
}

func TestNewRouteValidation(t *testing.T) {
	if _, err := NewRoute(MajorCities()[:1], PaperRouteLength); err == nil {
		t.Error("single-city route not rejected")
	}
	if _, err := NewRoute(MajorCities(), 100*unit.Kilometer); err == nil {
		t.Error("road shorter than great-circle not rejected")
	}
}

func TestDefaultRouteLength(t *testing.T) {
	r := DefaultRoute()
	if got := r.Total(); got != PaperRouteLength {
		t.Errorf("Total = %v, want %v", got, PaperRouteLength)
	}
}

func TestRouteAtEndpoints(t *testing.T) {
	r := DefaultRoute()
	start := r.At(0)
	if start.City != "Los Angeles" || start.Region != Urban {
		t.Errorf("start = %+v", start)
	}
	end := r.At(r.Total())
	if end.City != "Boston" || end.Region != Urban {
		t.Errorf("end = %+v", end)
	}
	if start.Timezone != Pacific || end.Timezone != Eastern {
		t.Errorf("timezones = %v, %v", start.Timezone, end.Timezone)
	}
}

func TestRouteAtClamps(t *testing.T) {
	r := DefaultRoute()
	if got := r.At(-5 * unit.Kilometer).Odometer; got != 0 {
		t.Errorf("negative odometer clamped to %v", got)
	}
	if got := r.At(r.Total() + unit.Kilometer).Odometer; got != r.Total() {
		t.Errorf("overlong odometer clamped to %v", got)
	}
}

func TestRouteTimezonesMonotone(t *testing.T) {
	r := DefaultRoute()
	prev := Pacific
	for odo := unit.Meters(0); odo <= r.Total(); odo += 10 * unit.Kilometer {
		z := r.At(odo).Timezone
		if z < prev {
			t.Fatalf("timezone went backwards at %v: %v after %v", odo, z, prev)
		}
		prev = z
	}
	if prev != Eastern {
		t.Errorf("final timezone = %v, want Eastern", prev)
	}
}

func TestRouteVisitsAllTimezones(t *testing.T) {
	r := DefaultRoute()
	seen := map[Timezone]bool{}
	for odo := unit.Meters(0); odo <= r.Total(); odo += 10 * unit.Kilometer {
		seen[r.At(odo).Timezone] = true
	}
	if len(seen) != 4 {
		t.Errorf("visited %d timezones, want 4 (Table 1)", len(seen))
	}
}

func TestRouteRegionShares(t *testing.T) {
	r := DefaultRoute()
	shares := r.RegionShares(2 * unit.Kilometer)
	// Most of the paper's data comes from highways (§5.5); cities are a
	// small fraction.
	if shares[Highway] < 0.55 {
		t.Errorf("highway share = %.2f, want > 0.55", shares[Highway])
	}
	if shares[Urban] > 0.15 {
		t.Errorf("urban share = %.2f, want < 0.15", shares[Urban])
	}
	if shares[Suburban] < 0.05 {
		t.Errorf("suburban share = %.2f, want > 0.05", shares[Suburban])
	}
	total := shares[Urban] + shares[Suburban] + shares[Highway]
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("shares sum to %v", total)
	}
}

func TestRouteNearCityIsUrban(t *testing.T) {
	r := DefaultRoute()
	// Find the odometer position closest to Denver.
	var best unit.Meters = math.MaxFloat64
	var bestOdo unit.Meters
	denver := LatLon{39.7392, -104.9903}
	for odo := unit.Meters(0); odo <= r.Total(); odo += unit.Kilometer {
		if d := Haversine(r.At(odo).Loc, denver); d < best {
			best, bestOdo = d, odo
		}
	}
	wp := r.At(bestOdo)
	if wp.Region != Urban || wp.City != "Denver" {
		t.Errorf("closest approach to Denver: %+v (dist %v)", wp, best)
	}
	if !wp.CityHasEdge {
		t.Error("Denver should have an edge server")
	}
}

func TestRouteDeterministic(t *testing.T) {
	a, b := DefaultRoute(), DefaultRoute()
	for odo := unit.Meters(0); odo <= a.Total(); odo += 100 * unit.Kilometer {
		wa, wb := a.At(odo), b.At(odo)
		if wa != wb {
			t.Fatalf("routes diverge at %v: %+v vs %+v", odo, wa, wb)
		}
	}
}

func TestOdometerOfInvertsAt(t *testing.T) {
	r := DefaultRoute()
	for odo := unit.Meters(0); odo <= r.Total(); odo += 250 * unit.Kilometer {
		wp := r.At(odo)
		back := r.OdometerOf(wp.Loc)
		if diff := math.Abs(float64(back - odo)); diff > 25e3 {
			t.Errorf("OdometerOf(At(%v)) = %v; off by %v m", odo, back, diff)
		}
	}
}

func TestOdometerOfOffRoutePoint(t *testing.T) {
	r := DefaultRoute()
	// A point well north of the route still projects somewhere sane.
	odo := r.OdometerOf(LatLon{46.0, -100.0})
	if odo < 0 || odo > r.Total() {
		t.Errorf("projection out of range: %v", odo)
	}
}

func TestOdometerOfEndpoints(t *testing.T) {
	r := DefaultRoute()
	if got := r.OdometerOf(MajorCities()[0].Loc); got.Km() > 10 {
		t.Errorf("LA projects to %v", got)
	}
	if got := r.OdometerOf(MajorCities()[9].Loc); (r.Total() - got).Km() > 10 {
		t.Errorf("Boston projects to %v of %v", got, r.Total())
	}
}
