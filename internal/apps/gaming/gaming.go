// Package gaming models the paper's cloud-gaming workload (§7.3, §E):
// a Steam-Remote-Play-style session streaming 60 FPS video from a GPU
// cloud server, with a bitrate adapter capped at 100 Mbps, frame-rate
// adaptation that prefers dropping bitrate over dropping frames, and the
// three metrics the paper reports — send bitrate, network latency, and
// frame drop rate.
package gaming

import (
	"time"

	"github.com/nuwins/cellwheels/internal/simrand"
	"github.com/nuwins/cellwheels/internal/unit"
)

// Config describes a gaming session.
type Config struct {
	// MaxBitrateMbps is the adapter's ceiling (Steam's is 100).
	MaxBitrateMbps float64
	// MinBitrateMbps is the floor before the stream gives up quality
	// entirely.
	MinBitrateMbps float64
	// FPS is the target frame rate.
	FPS float64
	// RunDuration is the session length.
	RunDuration time.Duration
}

// DefaultConfig mirrors §E.1: 4K at 60 FPS over Steam Remote Play.
func DefaultConfig() Config {
	return Config{
		MaxBitrateMbps: 100,
		MinBitrateMbps: 1,
		FPS:            60,
		RunDuration:    90 * time.Second,
	}
}

// Result summarizes one session.
type Result struct {
	MedianSendBitrate float64 // Mbps
	MeanNetLatencyMS  float64
	MaxNetLatencyMS   float64
	FrameDropFrac     float64
}

// Session is one cloud-gaming run over a stepped downlink.
type Session struct {
	cfg Config
	rng *simrand.Source

	elapsed time.Duration
	rate    float64 // current send bitrate, Mbps
	est     float64 // smoothed capacity estimate, Mbps

	bitrates  []float64
	latSum    float64
	latMax    float64
	latN      int
	frames    float64
	dropped   float64
	received  unit.Bytes
	sinceStat time.Duration
}

// NewSession starts a run.
func NewSession(cfg Config, rng *simrand.Source) *Session {
	return &Session{cfg: cfg, rng: rng.Fork("gaming"), rate: cfg.MaxBitrateMbps / 2, est: cfg.MaxBitrateMbps / 2}
}

// Done reports whether the session is over.
func (s *Session) Done() bool { return s.elapsed >= s.cfg.RunDuration }

// Step advances the session by dt at the given downlink capacity and
// base RTT.
func (s *Session) Step(dt time.Duration, dl unit.BitRate, baseRTT time.Duration) {
	if s.Done() {
		return
	}
	s.elapsed += dt
	sec := dt.Seconds()
	capMbps := dl.Mbps()

	// Smoothed capacity estimate drives the adapter: quick to back off,
	// slow to ramp — Steam's behaviour of protecting frame rate first.
	if capMbps < s.est {
		s.est += (capMbps - s.est) * min(1, sec*6)
	} else {
		s.est += (capMbps - s.est) * min(1, sec*0.4)
	}
	target := clamp(0.65*s.est, s.cfg.MinBitrateMbps, s.cfg.MaxBitrateMbps)
	s.rate += (target - s.rate) * min(1, sec*3)

	// Stream bytes actually carried this tick.
	carried := s.rate
	if capMbps < carried {
		carried = capMbps
	}
	s.received += unit.BitRate(carried * 1e6).BytesIn(dt)

	// Frame accounting: frames are dropped when the instant capacity
	// cannot carry the stream.
	nFrames := s.cfg.FPS * sec
	s.frames += nFrames
	if capMbps < s.rate {
		shortfall := 1 - capMbps/max(s.rate, 1e-9)
		s.dropped += nFrames * clamp(shortfall, 0, 1)
	}

	// Latency report once per second, like the Steam server log.
	s.sinceStat += dt
	if s.sinceStat >= time.Second {
		s.sinceStat -= time.Second
		lat := unit.Milliseconds(baseRTT)
		// Operating near the capacity edge queues frames.
		util := s.rate / max(capMbps, 1e-9)
		switch {
		case capMbps <= 0:
			lat += 800 + s.rng.Uniform(0, 400)
		case util > 1:
			lat += clamp((util-1)*400, 0, 900) + s.rng.Uniform(0, 80)
		case util > 0.9:
			lat += s.rng.Uniform(3, 25)
		default:
			lat += s.rng.Uniform(0, 8)
		}
		s.latSum += lat
		s.latN++
		if lat > s.latMax {
			s.latMax = lat
		}
		s.bitrates = append(s.bitrates, s.rate)
	}
}

// BytesReceived reports the stream bytes delivered so far.
func (s *Session) BytesReceived() unit.Bytes { return s.received }

// Result computes the session summary.
func (s *Session) Result() Result {
	r := Result{}
	if len(s.bitrates) > 0 {
		r.MedianSendBitrate = median(s.bitrates)
	}
	if s.latN > 0 {
		r.MeanNetLatencyMS = s.latSum / float64(s.latN)
		r.MaxNetLatencyMS = s.latMax
	}
	if s.frames > 0 {
		r.FrameDropFrac = s.dropped / s.frames
	}
	return r
}

func median(xs []float64) float64 {
	cp := append([]float64(nil), xs...)
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	return cp[len(cp)/2]
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

