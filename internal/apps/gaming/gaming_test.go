package gaming

import (
	"testing"
	"time"

	"github.com/nuwins/cellwheels/internal/simrand"
	"github.com/nuwins/cellwheels/internal/unit"
)

const tick = 50 * time.Millisecond

func runConstant(seed int64, dl unit.BitRate, rtt time.Duration) Result {
	s := NewSession(DefaultConfig(), simrand.New(seed))
	for !s.Done() {
		s.Step(tick, dl, rtt)
	}
	return s.Result()
}

func TestDefaultConfig(t *testing.T) {
	c := DefaultConfig()
	if c.MaxBitrateMbps != 100 {
		t.Errorf("max bitrate = %v, want Steam's 100 (§E.1)", c.MaxBitrateMbps)
	}
	if c.FPS != 60 {
		t.Errorf("FPS = %v, want 60", c.FPS)
	}
}

func TestFastLinkApproachesStaticBaseline(t *testing.T) {
	// §7.3: best static run sends ≈98.5 Mbps with ≈0.5% drops and low
	// latency.
	res := runConstant(1, 500*unit.Mbps, 15*time.Millisecond)
	if res.MedianSendBitrate < 90 {
		t.Errorf("send bitrate = %v, want ≈98", res.MedianSendBitrate)
	}
	if res.FrameDropFrac > 0.01 {
		t.Errorf("drop frac = %v, want ≈0.005", res.FrameDropFrac)
	}
	if res.MeanNetLatencyMS < 15 || res.MeanNetLatencyMS > 50 {
		t.Errorf("latency = %v ms", res.MeanNetLatencyMS)
	}
}

func TestAdapterNeverExceedsCeiling(t *testing.T) {
	s := NewSession(DefaultConfig(), simrand.New(2))
	for !s.Done() {
		s.Step(tick, 2*unit.Gbps, 10*time.Millisecond)
		if s.rate > DefaultConfig().MaxBitrateMbps+1e-9 {
			t.Fatalf("rate %v above ceiling", s.rate)
		}
	}
}

func TestSlowLinkAdaptsDown(t *testing.T) {
	res := runConstant(3, 20*unit.Mbps, 60*time.Millisecond)
	if res.MedianSendBitrate > 20 {
		t.Errorf("send bitrate %v above capacity", res.MedianSendBitrate)
	}
	if res.MedianSendBitrate < 5 {
		t.Errorf("send bitrate %v over-conservative", res.MedianSendBitrate)
	}
	// Adapting down protects the frame rate (§7.3 observation 2).
	if res.FrameDropFrac > 0.1 {
		t.Errorf("drop frac = %v", res.FrameDropFrac)
	}
}

func TestCapacityCollapseDropsFramesAndInflatesLatency(t *testing.T) {
	s := NewSession(DefaultConfig(), simrand.New(4))
	for i := 0; !s.Done(); i++ {
		dl := 80 * unit.Mbps
		if (i/100)%4 == 3 { // periodic 5 s collapses
			dl = 500 * unit.Kbps
		}
		s.Step(tick, dl, 50*time.Millisecond)
	}
	res := s.Result()
	if res.FrameDropFrac <= 0.005 {
		t.Errorf("drop frac = %v, want visible drops", res.FrameDropFrac)
	}
	if res.MaxNetLatencyMS < 150 {
		t.Errorf("max latency = %v ms, want inflation during collapse", res.MaxNetLatencyMS)
	}
}

func TestZeroCapacity(t *testing.T) {
	res := runConstant(5, 0, 50*time.Millisecond)
	if res.FrameDropFrac < 0.5 {
		t.Errorf("drop frac on dead link = %v", res.FrameDropFrac)
	}
	if res.MeanNetLatencyMS < 500 {
		t.Errorf("latency on dead link = %v ms", res.MeanNetLatencyMS)
	}
}

func TestDropFracBounded(t *testing.T) {
	for _, seed := range []int64{6, 7, 8} {
		res := runConstant(seed, 3*unit.Mbps, 80*time.Millisecond)
		if res.FrameDropFrac < 0 || res.FrameDropFrac > 1 {
			t.Errorf("drop frac = %v outside [0,1]", res.FrameDropFrac)
		}
	}
}

func TestDeterministic(t *testing.T) {
	a := runConstant(42, 40*unit.Mbps, 60*time.Millisecond)
	b := runConstant(42, 40*unit.Mbps, 60*time.Millisecond)
	if a != b {
		t.Errorf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestDoneStopsStepping(t *testing.T) {
	s := NewSession(DefaultConfig(), simrand.New(9))
	for !s.Done() {
		s.Step(tick, 50*unit.Mbps, 40*time.Millisecond)
	}
	before := s.Result()
	s.Step(tick, 50*unit.Mbps, 40*time.Millisecond)
	if got := s.Result(); got != before {
		t.Error("result changed after Done")
	}
}
