// Package offload implements the paper's canonical edge-assisted AR/CAV
// benchmark app (§7.1, §C): an uplink-centric client that offloads camera
// frames or LIDAR point clouds to a GPU server for DNN-based object
// detection, in a best-effort manner — when one offload completes, the
// next available frame is taken.
//
// The configuration constants are Table 4 verbatim; the object-detection
// accuracy model is Table 5 verbatim (mAP as a function of end-to-end
// latency in frame times, with and without lossy compression, measured on
// Argoverse with Faster R-CNN plus on-device local tracking).
package offload

import (
	"math"
	"time"

	"github.com/nuwins/cellwheels/internal/simrand"
	"github.com/nuwins/cellwheels/internal/unit"
)

// Config describes one offloading app, per Table 4.
type Config struct {
	Name            string
	FPS             float64    // incoming frame rate
	RawBytes        unit.Bytes // uncompressed frame size
	CompressedBytes unit.Bytes
	CompressMS      float64 // frame compression time
	InferenceMS     float64 // server inference time (A100)
	DecompressMS    float64
	RunDuration     time.Duration
	HasMAP          bool // AR estimates detection accuracy; CAV does not
}

// ARConfig is Table 4's AR column.
func ARConfig() Config {
	return Config{
		Name: "AR", FPS: 30,
		RawBytes: 450 * unit.KB, CompressedBytes: 50 * unit.KB,
		CompressMS: 6.3, InferenceMS: 24.9, DecompressMS: 1.0,
		RunDuration: 20 * time.Second, HasMAP: true,
	}
}

// CAVConfig is Table 4's CAV column.
func CAVConfig() Config {
	return Config{
		Name: "CAV", FPS: 10,
		RawBytes: 2000 * unit.KB, CompressedBytes: 38 * unit.KB,
		CompressMS: 34.8, InferenceMS: 44.0, DecompressMS: 19.1,
		RunDuration: 20 * time.Second, HasMAP: false,
	}
}

// FrameMS is the frame interval in milliseconds.
func (c Config) FrameMS() float64 { return 1000 / c.FPS }

// FrameBytes reports the on-the-wire frame size.
func (c Config) FrameBytes(compressed bool) unit.Bytes {
	if compressed {
		return c.CompressedBytes
	}
	return c.RawBytes
}

// mapTable is Table 5: object detection accuracy (mAP, %) by E2E latency
// bin in frame times; columns are without/with compression.
var mapTable = [][2]float64{
	{38.45, 38.45}, {37.22, 36.14}, {36.04, 34.75}, {34.65, 33.12},
	{33.36, 31.82}, {32.20, 30.50}, {31.08, 29.53}, {28.03, 26.99},
	{27.01, 25.73}, {25.62, 25.21}, {25.77, 24.35}, {23.29, 22.44},
	{22.75, 21.56}, {22.48, 21.64}, {21.59, 21.16}, {20.59, 20.35},
	{20.11, 19.69}, {19.53, 18.95}, {18.40, 17.61}, {18.01, 17.85},
	{17.52, 17.00}, {16.96, 16.55}, {16.59, 15.97}, {15.41, 15.16},
	{15.78, 14.94}, {15.86, 15.37}, {14.81, 14.71}, {14.70, 13.77},
	{14.44, 13.62}, {14.05, 13.70},
}

// MAPBins reports the number of latency bins in Table 5.
func MAPBins() int { return len(mapTable) }

// MAPForBin reports Table 5's accuracy for a latency bin index, clamped
// to the table range.
func MAPForBin(bin int, compressed bool) float64 {
	if bin < 0 {
		bin = 0
	}
	if bin >= len(mapTable) {
		bin = len(mapTable) - 1
	}
	if compressed {
		return mapTable[bin][1]
	}
	return mapTable[bin][0]
}

// MAPFor estimates detection accuracy for an E2E latency given the app's
// frame interval, per §C.2: accuracy is constant within each whole-frame
// latency bin.
func MAPFor(e2eMS, frameMS float64, compressed bool) float64 {
	if frameMS <= 0 {
		return MAPForBin(len(mapTable)-1, compressed)
	}
	return MAPForBin(int(e2eMS/frameMS), compressed)
}

// Result summarizes one 20 s run.
type Result struct {
	FramesOffloaded int
	MeanE2EMS       float64
	OffloadFPS      float64
	MAP             float64 // mean over offloaded frames; 0 if !HasMAP
}

// phase is the runner's pipeline stage.
type phase int

const (
	waitFrame phase = iota
	compressing
	uploading
	serving // inference + result return + decompression
)

// Runner executes one offloading run over a stepped uplink. The pipeline
// advances continuously within each simulation tick, so phases far
// shorter than the tick (compression, inference) keep exact timing.
type Runner struct {
	cfg        Config
	compressed bool
	rng        *simrand.Source

	elapsedMS float64
	phase     phase
	phaseLeft float64 // ms remaining in timed phases
	bytesLeft float64 // uploading
	frameAt   float64 // ms timestamp when current frame was captured
	sent      float64 // total bytes uploaded

	e2es []float64
}

// NewRunner starts a run.
func NewRunner(cfg Config, compressed bool, rng *simrand.Source) *Runner {
	return &Runner{cfg: cfg, compressed: compressed, rng: rng.Fork("offload/" + cfg.Name)}
}

// Done reports whether the run duration has elapsed.
func (r *Runner) Done() bool {
	return r.elapsedMS >= float64(r.cfg.RunDuration)/float64(time.Millisecond)
}

// Step advances the run by dt given the instantaneous uplink capacity and
// base network RTT, both treated as constant within the tick.
func (r *Runner) Step(dt time.Duration, ul unit.BitRate, baseRTT time.Duration) {
	if r.Done() {
		return
	}
	remain := float64(dt) / float64(time.Millisecond)
	ulBytesPerMS := float64(ul) / 8 / 1000

	for remain > 1e-9 && !r.Done() {
		switch r.phase {
		case waitFrame:
			fi := r.cfg.FrameMS()
			next := math.Ceil(r.elapsedMS/fi) * fi
			if next <= r.elapsedMS {
				next = r.elapsedMS
			}
			wait := next - r.elapsedMS
			if wait > remain {
				r.elapsedMS += remain
				return
			}
			r.elapsedMS = next
			remain -= wait
			r.frameAt = next
			if r.compressed {
				r.phase = compressing
				r.phaseLeft = r.cfg.CompressMS
			} else {
				r.phase = uploading
				r.bytesLeft = float64(r.cfg.FrameBytes(false))
			}
		case compressing:
			take := math.Min(r.phaseLeft, remain)
			r.phaseLeft -= take
			r.elapsedMS += take
			remain -= take
			if r.phaseLeft <= 1e-9 {
				r.phase = uploading
				r.bytesLeft = float64(r.cfg.FrameBytes(true))
			}
		case uploading:
			if ulBytesPerMS <= 0 {
				// No uplink this tick; the upload stalls.
				r.elapsedMS += remain
				return
			}
			need := r.bytesLeft / ulBytesPerMS
			take := math.Min(need, remain)
			r.bytesLeft -= ulBytesPerMS * take
			r.sent += ulBytesPerMS * take
			r.elapsedMS += take
			remain -= take
			if r.bytesLeft <= 1e-9 {
				// Inference, result return over the network RTT, then
				// local decompression of the result if the frame was
				// compressed.
				r.phase = serving
				r.phaseLeft = r.cfg.InferenceMS + unit.Milliseconds(baseRTT)
				if r.compressed {
					r.phaseLeft += r.cfg.DecompressMS
				}
			}
		case serving:
			take := math.Min(r.phaseLeft, remain)
			r.phaseLeft -= take
			r.elapsedMS += take
			remain -= take
			if r.phaseLeft <= 1e-9 {
				e2e := r.elapsedMS - r.frameAt
				if e2e < 1 {
					e2e = 1
				}
				r.e2es = append(r.e2es, e2e)
				r.phase = waitFrame
			}
		}
	}
}

// BytesSent reports the total bytes uploaded so far.
func (r *Runner) BytesSent() unit.Bytes { return unit.Bytes(r.sent) }

// Result computes the run summary.
func (r *Runner) Result() Result {
	res := Result{FramesOffloaded: len(r.e2es)}
	if len(r.e2es) == 0 {
		if r.cfg.HasMAP {
			res.MAP = 0
		}
		return res
	}
	var sum, mapSum float64
	for _, e := range r.e2es {
		sum += e
		if r.cfg.HasMAP {
			mapSum += MAPFor(e, r.cfg.FrameMS(), r.compressed)
		}
	}
	res.MeanE2EMS = sum / float64(len(r.e2es))
	res.OffloadFPS = float64(len(r.e2es)) / r.cfg.RunDuration.Seconds()
	if r.cfg.HasMAP {
		res.MAP = mapSum / float64(len(r.e2es))
	}
	return res
}
