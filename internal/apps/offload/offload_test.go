package offload

import (
	"testing"
	"time"

	"github.com/nuwins/cellwheels/internal/simrand"
	"github.com/nuwins/cellwheels/internal/unit"
)

const tick = 50 * time.Millisecond

// runConstant executes a full run over a constant link.
func runConstant(cfg Config, compressed bool, ul unit.BitRate, rtt time.Duration) Result {
	r := NewRunner(cfg, compressed, simrand.New(1))
	for !r.Done() {
		r.Step(tick, ul, rtt)
	}
	return r.Result()
}

func TestConfigsMatchTable4(t *testing.T) {
	ar := ARConfig()
	if ar.FPS != 30 || ar.RawBytes != 450*unit.KB || ar.CompressedBytes != 50*unit.KB {
		t.Errorf("AR config = %+v", ar)
	}
	if ar.CompressMS != 6.3 || ar.InferenceMS != 24.9 || ar.DecompressMS != 1.0 {
		t.Errorf("AR times = %+v", ar)
	}
	cav := CAVConfig()
	if cav.FPS != 10 || cav.RawBytes != 2000*unit.KB || cav.CompressedBytes != 38*unit.KB {
		t.Errorf("CAV config = %+v", cav)
	}
	if cav.CompressMS != 34.8 || cav.InferenceMS != 44.0 || cav.DecompressMS != 19.1 {
		t.Errorf("CAV times = %+v", cav)
	}
	if ar.RunDuration != 20*time.Second || cav.RunDuration != 20*time.Second {
		t.Error("run durations wrong")
	}
	if !ar.HasMAP || cav.HasMAP {
		t.Error("MAP flags wrong")
	}
}

func TestFrameMS(t *testing.T) {
	if got := ARConfig().FrameMS(); got != 1000.0/30 {
		t.Errorf("AR frame interval = %v", got)
	}
	if got := CAVConfig().FrameMS(); got != 100 {
		t.Errorf("CAV frame interval = %v", got)
	}
}

func TestMAPTableMatchesTable5(t *testing.T) {
	if MAPBins() != 30 {
		t.Fatalf("bins = %d, want 30", MAPBins())
	}
	// Spot-check values straight from Table 5.
	if MAPForBin(0, false) != 38.45 || MAPForBin(0, true) != 38.45 {
		t.Error("bin 0 wrong")
	}
	if MAPForBin(6, false) != 31.08 || MAPForBin(6, true) != 29.53 {
		t.Error("bin 6 wrong")
	}
	if MAPForBin(29, false) != 14.05 || MAPForBin(29, true) != 13.70 {
		t.Error("bin 29 wrong")
	}
	// Clamping.
	if MAPForBin(-1, false) != 38.45 || MAPForBin(99, false) != 14.05 {
		t.Error("clamp wrong")
	}
}

func TestMAPMostlyDecreasesWithLatency(t *testing.T) {
	// Table 5 is not perfectly monotone (bins 9/10, 23/24), but across
	// any 3-bin gap accuracy falls.
	for b := 0; b+3 < MAPBins(); b++ {
		if MAPForBin(b+3, true) >= MAPForBin(b, true) {
			t.Errorf("mAP did not fall from bin %d to %d", b, b+3)
		}
	}
}

func TestMAPForBinning(t *testing.T) {
	fm := ARConfig().FrameMS() // 33.3 ms
	if got := MAPFor(10, fm, false); got != 38.45 {
		t.Errorf("MAPFor(10ms) = %v", got)
	}
	if got := MAPFor(214, fm, true); got != MAPForBin(6, true) {
		t.Errorf("MAPFor(214ms) = %v, want bin 6 value %v", got, MAPForBin(6, true))
	}
}

func TestARGoodLinkApproachesStaticBaseline(t *testing.T) {
	// §7.1.1: best static scenario gives E2E ≈68 ms, ≈12.5 FPS, mAP ≈36.5.
	res := runConstant(ARConfig(), true, 167*unit.Mbps, 25*time.Millisecond)
	if res.MeanE2EMS < 40 || res.MeanE2EMS > 100 {
		t.Errorf("static-like AR E2E = %v ms, want ≈68", res.MeanE2EMS)
	}
	if res.OffloadFPS < 8 || res.OffloadFPS > 18 {
		t.Errorf("static-like AR FPS = %v, want ≈12.5", res.OffloadFPS)
	}
	if res.MAP < 33 || res.MAP > 38.45 {
		t.Errorf("static-like AR mAP = %v, want ≈36.5", res.MAP)
	}
}

func TestARBadLinkDegrades(t *testing.T) {
	good := runConstant(ARConfig(), true, 100*unit.Mbps, 25*time.Millisecond)
	bad := runConstant(ARConfig(), true, 2*unit.Mbps, 80*time.Millisecond)
	if bad.MeanE2EMS <= good.MeanE2EMS {
		t.Error("bad link did not raise E2E")
	}
	if bad.OffloadFPS >= good.OffloadFPS {
		t.Error("bad link did not lower FPS")
	}
	if bad.MAP >= good.MAP {
		t.Error("bad link did not lower mAP")
	}
}

func TestCompressionHelpsOnSlowLinks(t *testing.T) {
	// §7.1.2: compression cuts CAV median E2E by ~8×.
	raw := runConstant(CAVConfig(), false, 10*unit.Mbps, 50*time.Millisecond)
	comp := runConstant(CAVConfig(), true, 10*unit.Mbps, 50*time.Millisecond)
	if comp.MeanE2EMS >= raw.MeanE2EMS/3 {
		t.Errorf("compression: %v ms vs raw %v ms; want large reduction", comp.MeanE2EMS, raw.MeanE2EMS)
	}
	if comp.FramesOffloaded <= raw.FramesOffloaded {
		t.Error("compression did not increase offloaded frames")
	}
}

func TestCAVCannotReach100msE2E(t *testing.T) {
	// §7.1.2 finding 1: even compressed on a fine link, compression +
	// inference + decompression alone nearly exhaust the 100 ms budget.
	res := runConstant(CAVConfig(), true, 200*unit.Mbps, 15*time.Millisecond)
	if res.MeanE2EMS < 100 {
		t.Errorf("CAV E2E = %v ms; the paper argues <100 ms is unreachable", res.MeanE2EMS)
	}
}

func TestZeroCapacityOffloadsNothing(t *testing.T) {
	res := runConstant(ARConfig(), true, 0, 25*time.Millisecond)
	if res.FramesOffloaded != 0 {
		t.Errorf("offloaded %d frames with zero uplink", res.FramesOffloaded)
	}
	if res.OffloadFPS != 0 || res.MeanE2EMS != 0 {
		t.Errorf("result = %+v", res)
	}
}

func TestRunnerDoneStopsStepping(t *testing.T) {
	r := NewRunner(ARConfig(), true, simrand.New(2))
	for !r.Done() {
		r.Step(tick, 50*unit.Mbps, 30*time.Millisecond)
	}
	before := r.Result().FramesOffloaded
	r.Step(tick, 50*unit.Mbps, 30*time.Millisecond)
	if r.Result().FramesOffloaded != before {
		t.Error("stepping after Done changed the result")
	}
}

func TestCAVNoMAP(t *testing.T) {
	res := runConstant(CAVConfig(), true, 50*unit.Mbps, 30*time.Millisecond)
	if res.MAP != 0 {
		t.Errorf("CAV reported mAP %v", res.MAP)
	}
	if res.FramesOffloaded == 0 {
		t.Error("CAV offloaded nothing on a good link")
	}
}

func TestE2EAlwaysPositive(t *testing.T) {
	r := NewRunner(ARConfig(), true, simrand.New(3))
	for !r.Done() {
		r.Step(tick, 500*unit.Mbps, time.Millisecond)
	}
	for _, e := range r.e2es {
		if e <= 0 {
			t.Fatalf("non-positive E2E %v", e)
		}
	}
}
