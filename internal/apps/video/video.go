// Package video implements the paper's 360° video streaming application
// (§7.2, §D): a chunk-based client streaming from a Puffer-style media
// server, with the buffer-based BBA adaptation algorithm choosing among
// four quality ladders, and the control-theoretic QoE metric
// QoE_k = B_k − λ·|B_k − B_{k−1}| − μ·T_k with λ=1, μ=100.
package video

import (
	"time"

	"github.com/nuwins/cellwheels/internal/unit"
)

// Config describes a streaming session, per §D.1.
type Config struct {
	// Ladder is the available bitrates in Mbps, ascending.
	Ladder []float64
	// ChunkSeconds is the media duration of one chunk.
	ChunkSeconds float64
	// RunDuration is the playback session length.
	RunDuration time.Duration
	// Lambda and Mu are the QoE weights.
	Lambda float64
	Mu     float64
	// Reservoir and Cushion are BBA's buffer thresholds in seconds: below
	// the reservoir the client picks the lowest rung; above
	// reservoir+cushion, the highest; linear in between.
	Reservoir float64
	Cushion   float64
	// MaxBufferSeconds caps prefetching.
	MaxBufferSeconds float64
}

// DefaultConfig mirrors the paper's setup: 2 s chunks encoded at 100, 50,
// 10, and 5 Mbps, 3-minute sessions.
func DefaultConfig() Config {
	return Config{
		Ladder:           []float64{5, 10, 50, 100},
		ChunkSeconds:     2,
		RunDuration:      3 * time.Minute,
		Lambda:           1,
		Mu:               100,
		Reservoir:        2,
		Cushion:          5,
		MaxBufferSeconds: 8,
	}
}

// PerfectQoE is the theoretical best average QoE for a config: the top
// rung with no stalls and no switches.
func (c Config) PerfectQoE() float64 { return c.Ladder[len(c.Ladder)-1] }

// bbaPick chooses a ladder rung from the current buffer level.
func (c Config) bbaPick(bufferSec float64) int {
	if bufferSec <= c.Reservoir {
		return 0
	}
	top := len(c.Ladder) - 1
	if bufferSec >= c.Reservoir+c.Cushion {
		return top
	}
	frac := (bufferSec - c.Reservoir) / c.Cushion
	idx := int(frac * float64(len(c.Ladder)))
	if idx > top {
		idx = top
	}
	return idx
}

// Result summarizes one session.
type Result struct {
	AvgQoE       float64
	AvgBitrate   float64 // Mbps of downloaded chunks
	RebufferFrac float64 // stall time / session time
	Chunks       int
	Switches     int
}

// Session is one playback run over a stepped downlink.
type Session struct {
	cfg Config

	elapsed    time.Duration
	buffer     float64 // seconds of media buffered
	rebufferMS float64

	downloading bool
	rung        int
	bytesLeft   unit.Bytes
	chunkStall  float64 // stall seconds attributed to the current chunk

	received unit.Bytes

	prevRate float64
	qoeSum   float64
	rateSum  float64
	chunks   int
	switches int
	started  bool
}

// NewSession starts a playback session.
func NewSession(cfg Config) *Session {
	return &Session{cfg: cfg}
}

// Done reports whether the session is over.
func (s *Session) Done() bool { return s.elapsed >= s.cfg.RunDuration }

// Step advances playback by dt at the given downlink capacity.
func (s *Session) Step(dt time.Duration, dl unit.BitRate) {
	if s.Done() {
		return
	}
	s.elapsed += dt
	sec := dt.Seconds()

	// Start a chunk download whenever none is in flight and the buffer
	// has room.
	if !s.downloading && s.buffer < s.cfg.MaxBufferSeconds-s.cfg.ChunkSeconds {
		s.rung = s.cfg.bbaPick(s.buffer)
		s.bytesLeft = unit.Bytes(s.cfg.Ladder[s.rung] * 1e6 / 8 * s.cfg.ChunkSeconds)
		s.downloading = true
		s.chunkStall = 0
	}

	if s.downloading {
		got := dl.BytesIn(dt)
		if got > s.bytesLeft {
			got = s.bytesLeft
		}
		s.received += got
		s.bytesLeft -= dl.BytesIn(dt)
		if s.bytesLeft <= 0 {
			s.completeChunk()
		}
	}

	// Playback drains the buffer; an empty buffer is a stall.
	if s.started {
		if s.buffer >= sec {
			s.buffer -= sec
		} else {
			stall := sec - s.buffer
			s.buffer = 0
			s.rebufferMS += stall * 1000
			s.chunkStall += stall
		}
	} else if s.buffer >= 2*s.cfg.ChunkSeconds {
		// Startup: begin playing after two chunks are buffered.
		s.started = true
	}
}

func (s *Session) completeChunk() {
	rate := s.cfg.Ladder[s.rung]
	qoe := rate - s.cfg.Lambda*abs(rate-s.prevRate) - s.cfg.Mu*s.chunkStall
	if s.chunks > 0 && rate != s.prevRate {
		s.switches++
	}
	s.qoeSum += qoe
	s.rateSum += rate
	s.chunks++
	s.prevRate = rate
	s.buffer += s.cfg.ChunkSeconds
	s.downloading = false
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// BytesReceived reports the media bytes downloaded so far.
func (s *Session) BytesReceived() unit.Bytes { return s.received }

// Result computes the session summary.
func (s *Session) Result() Result {
	r := Result{Chunks: s.chunks, Switches: s.switches}
	if s.chunks > 0 {
		r.AvgQoE = s.qoeSum / float64(s.chunks)
		r.AvgBitrate = s.rateSum / float64(s.chunks)
	} else {
		// A session that never completed a chunk is all stall.
		r.AvgQoE = -s.cfg.Mu
	}
	if s.elapsed > 0 {
		r.RebufferFrac = s.rebufferMS / 1000 / s.elapsed.Seconds()
	}
	return r
}
