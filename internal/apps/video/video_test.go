package video

import (
	"testing"
	"time"

	"github.com/nuwins/cellwheels/internal/unit"
)

const tick = 50 * time.Millisecond

func runConstant(dl unit.BitRate) Result {
	s := NewSession(DefaultConfig())
	for !s.Done() {
		s.Step(tick, dl)
	}
	return s.Result()
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	c := DefaultConfig()
	if len(c.Ladder) != 4 {
		t.Fatalf("ladder = %v, want 4 rungs (§D.1)", c.Ladder)
	}
	want := []float64{5, 10, 50, 100}
	for i, r := range c.Ladder {
		if r != want[i] {
			t.Errorf("ladder[%d] = %v, want %v", i, r, want[i])
		}
	}
	if c.ChunkSeconds != 2 || c.RunDuration != 3*time.Minute {
		t.Errorf("config = %+v", c)
	}
	if c.Lambda != 1 || c.Mu != 100 {
		t.Errorf("QoE weights λ=%v μ=%v, want 1/100", c.Lambda, c.Mu)
	}
	if c.PerfectQoE() != 100 {
		t.Errorf("PerfectQoE = %v", c.PerfectQoE())
	}
}

func TestBBAPick(t *testing.T) {
	c := DefaultConfig()
	if got := c.bbaPick(0); got != 0 {
		t.Errorf("empty buffer rung = %d", got)
	}
	if got := c.bbaPick(3); got != 0 {
		t.Errorf("below reservoir rung = %d", got)
	}
	if got := c.bbaPick(25); got != 3 {
		t.Errorf("full cushion rung = %d", got)
	}
	// Monotone in buffer level.
	prev := -1
	for b := 0.0; b <= 30; b += 0.5 {
		r := c.bbaPick(b)
		if r < prev {
			t.Fatalf("rung decreased at buffer %v", b)
		}
		prev = r
	}
}

func TestFastLinkHighQoE(t *testing.T) {
	// A clean 300 Mbps link should play the top rung with no stalls —
	// approaching the paper's best static QoE of 96.29.
	res := runConstant(300 * unit.Mbps)
	if res.AvgQoE < 85 {
		t.Errorf("QoE on fast link = %v, want ≈96", res.AvgQoE)
	}
	if res.RebufferFrac > 0.01 {
		t.Errorf("rebuffering on fast link = %v", res.RebufferFrac)
	}
	if res.AvgBitrate < 85 {
		t.Errorf("avg bitrate = %v", res.AvgBitrate)
	}
}

func TestSlowLinkNegativeQoE(t *testing.T) {
	// Below the lowest rung the session stalls constantly; §7.2 sees 40%
	// of driving runs with negative QoE.
	res := runConstant(2 * unit.Mbps)
	if res.AvgQoE >= 0 {
		t.Errorf("QoE on 2 Mbps link = %v, want negative", res.AvgQoE)
	}
	if res.RebufferFrac < 0.3 {
		t.Errorf("rebuffer frac = %v, want heavy stalling", res.RebufferFrac)
	}
}

func TestMidLinkPicksMidRung(t *testing.T) {
	res := runConstant(30 * unit.Mbps)
	if res.AvgBitrate < 5 || res.AvgBitrate > 50 {
		t.Errorf("avg bitrate on 30 Mbps = %v", res.AvgBitrate)
	}
	if res.RebufferFrac > 0.25 {
		t.Errorf("rebuffer frac = %v", res.RebufferFrac)
	}
}

func TestZeroLinkAllStall(t *testing.T) {
	res := runConstant(0)
	if res.Chunks != 0 {
		t.Errorf("chunks on dead link = %d", res.Chunks)
	}
	if res.AvgQoE >= 0 {
		t.Errorf("QoE on dead link = %v", res.AvgQoE)
	}
}

func TestQoEPenalizesSwitches(t *testing.T) {
	// Alternate capacity to force rate switching; the average QoE must
	// fall below the average bitrate because of the |ΔB| term.
	s := NewSession(DefaultConfig())
	for i := 0; !s.Done(); i++ {
		dl := 120 * unit.Mbps
		if (i/200)%2 == 1 {
			dl = 8 * unit.Mbps
		}
		s.Step(tick, dl)
	}
	res := s.Result()
	if res.Switches == 0 {
		t.Fatal("no rate switches under oscillating capacity")
	}
	if res.AvgQoE >= res.AvgBitrate {
		t.Errorf("QoE %v not penalized below bitrate %v", res.AvgQoE, res.AvgBitrate)
	}
}

func TestRebufferBounded(t *testing.T) {
	res := runConstant(1 * unit.Mbps)
	if res.RebufferFrac < 0 || res.RebufferFrac > 1 {
		t.Errorf("rebuffer frac = %v outside [0,1]", res.RebufferFrac)
	}
}

func TestDoneStopsStepping(t *testing.T) {
	s := NewSession(DefaultConfig())
	for !s.Done() {
		s.Step(tick, 50*unit.Mbps)
	}
	before := s.Result()
	s.Step(tick, 50*unit.Mbps)
	if got := s.Result(); got != before {
		t.Error("result changed after Done")
	}
}
