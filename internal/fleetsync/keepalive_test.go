package fleetsync

import (
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"github.com/nuwins/cellwheels/internal/fleet"
)

// TestPushReusesOneConnection pins the client's body-drain discipline:
// every response body is drained before Close, so the transport can
// return the connection to its idle pool and a whole worker's push —
// announces, probes, uploads, dozens of requests — rides ONE TCP
// connection. If a handler path stops being drained, the transport
// opens a fresh connection for the next request and the count here
// climbs past one.
func TestPushReusesOneConnection(t *testing.T) {
	red, err := fleet.NewReducer(77, 3, testAxes(), nil, []string{"thr", "rtt"})
	if err != nil {
		t.Fatal(err)
	}
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	col, err := NewCollector(testScenarioFP, red, store, nil)
	if err != nil {
		t.Fatal(err)
	}

	var newConns, requests atomic.Int64
	srv := httptest.NewUnstartedServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		requests.Add(1)
		col.Handler().ServeHTTP(w, r)
	}))
	srv.Config.ConnState = func(_ net.Conn, st http.ConnState) {
		if st == http.StateNew {
			newConns.Add(1)
		}
	}
	srv.Start()
	t.Cleanup(srv.Close)

	// A dedicated transport isolates the count from other tests sharing
	// http.DefaultTransport's idle pool.
	tr := &http.Transport{}
	t.Cleanup(tr.CloseIdleConnections)
	p := mustPusher(t, srv.URL, nil, func(cfg *PusherConfig) { cfg.Transport = tr })

	cfg := testConfig()
	cfg.Workers = 1 // sequential pushes: reuse failure would force conn #2
	cfg.OnRun = p.PushRun
	if _, err := fleet.Run(cfg); err != nil {
		t.Fatalf("worker fleet: %v", err)
	}

	if got := requests.Load(); got < 10 {
		t.Fatalf("push made only %d requests; the reuse assertion below would be vacuous", got)
	}
	if got := newConns.Load(); got != 1 {
		t.Errorf("worker push opened %d TCP connections, want 1 (requests=%d); a response body is not being drained before Close",
			got, requests.Load())
	}
}
